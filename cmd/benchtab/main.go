// Command benchtab regenerates every table and figure of the paper's
// evaluation from the simulated CHASE-CI ecosystem:
//
//	benchtab -table1      Table I  (resource summary, full archive scale)
//	benchtab -fig3        Figure 3 (download orchestration, 10 workers)
//	benchtab -fig4        Figure 4 (network usage during download)
//	benchtab -fig5        Figure 5 (training phases)
//	benchtab -fig6        Figure 6 (inference utilization)
//	benchtab -fig1        Figure 1 (distributed storage placement + healing)
//	benchtab -sweep       extension: inference GPU-count scaling sweep
//	benchtab -all         everything above
//
// Add -scale N to slice the archive to N granules (default: full 112,249).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chaseci/internal/core"
	"chaseci/internal/gpusim"
	"chaseci/internal/merra"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "regenerate Table I")
		fig1   = flag.Bool("fig1", false, "regenerate Figure 1 (storage)")
		fig3   = flag.Bool("fig3", false, "regenerate Figure 3")
		fig4   = flag.Bool("fig4", false, "regenerate Figure 4")
		fig5   = flag.Bool("fig5", false, "regenerate Figure 5")
		fig6   = flag.Bool("fig6", false, "regenerate Figure 6")
		sweep  = flag.Bool("sweep", false, "inference GPU scaling sweep")
		all    = flag.Bool("all", false, "everything")
		scale  = flag.Int("scale", 0, "slice the archive to N granules (0 = full)")
	)
	flag.Parse()
	if *all {
		*table1, *fig1, *fig3, *fig4, *fig5, *fig6, *sweep = true, true, true, true, true, true, true
	}
	if !*table1 && !*fig1 && !*fig3 && !*fig4 && !*fig5 && !*fig6 && !*sweep {
		flag.Usage()
		os.Exit(2)
	}

	if *fig1 {
		runFig1()
	}

	needRun := *table1 || *fig3 || *fig4 || *fig5 || *fig6
	if needRun {
		cfg := core.PaperConnectConfig()
		if *scale > 0 {
			cfg.Archive = merra.MERRA2().Slice(*scale)
		}
		eco := core.BuildNautilus(core.DefaultNautilus())
		run, err := eco.NewConnectWorkflow(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("running the CONNECT workflow at %d granules (virtual time)...\n\n",
			cfg.Archive.NumFiles())
		start := time.Now()
		if _, err := run.Execute(); err != nil {
			fatal(err)
		}
		fmt.Printf("simulated %v of cluster time in %v of wall time\n\n",
			eco.Clock.Now().Round(time.Minute), time.Since(start).Round(time.Millisecond))
		if *table1 {
			fmt.Println(run.Table1())
		}
		if *fig3 {
			fmt.Println(run.Fig3(60))
		}
		if *fig4 {
			fmt.Println(run.Fig4(72, 10))
		}
		if *fig5 {
			fmt.Println(run.Fig5(60))
		}
		if *fig6 {
			fmt.Println(run.Fig6(72, 8))
		}
	}

	if *sweep {
		runSweep(*scale)
	}
}

func runFig1() {
	fmt.Println("Fig 1 — Kubernetes/Rook/Ceph on PRP: distributed PB+ storage")
	eco := core.BuildNautilus(core.DefaultNautilus())
	fmt.Printf("  %d OSDs across %d sites, %.1f PB raw, %dx replication\n",
		len(eco.Storage.OSDs()), len(eco.Config.Sites),
		eco.StorageBytes()/1e15, eco.Storage.Replicas())
	// Place a science dataset and show distribution.
	for i := 0; i < 200; i++ {
		eco.Storage.Put("science-data", fmt.Sprintf("granule-%04d", i), 4e9, nil)
	}
	for _, osd := range eco.Storage.OSDs() {
		fmt.Printf("  %-18s %6.1f GB\n", osd.ID, osd.Used()/1e9)
	}
	// Fail an OSD, show healing.
	recover, _ := eco.Storage.FailOSD("ucsd-osd-00")
	fmt.Printf("  failed ucsd-osd-00: %.1f GB re-replicating...\n", recover/1e9)
	eco.Clock.Run()
	h := eco.Storage.HealthReport()
	fmt.Printf("  after recovery: %d/%d PGs active, health OK=%v\n\n",
		h.PGsActive, h.PGsTotal, h.OK())
}

func runSweep(scale int) {
	fmt.Println("Extension — inference time vs GPU count (paper §III-C: \"can scale to any number\")")
	gpu := gpusim.GTX1080Ti()
	cpu := gpusim.SingleCPU()
	w := gpusim.Paper()
	voxels := w.InferVoxels
	if scale > 0 {
		voxels *= float64(scale) / float64(merra.MERRA2().NumFiles())
	}
	fmt.Printf("  %-8s %14s %10s\n", "GPUs", "time", "speedup")
	t1 := gpu.ShardedInferTime(voxels, 1)
	for _, g := range []int{1, 2, 5, 10, 25, 50, 100, 200} {
		tg := gpu.ShardedInferTime(voxels, g)
		fmt.Printf("  %-8d %14v %9.1fx\n", g, tg.Round(time.Minute), gpusim.Speedup(t1, tg))
	}
	fmt.Printf("  %-8s %14v (MATLAB-era single-CPU baseline)\n", "CPU",
		cpu.InferTime(voxels).Round(time.Hour))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
