// Command chased (CHASE-CI daemon) is the HTTP/JSON job gateway over the
// repository's compute kernels — FFN segmentation, CONNECT labelling, MERRA
// IVT derivation, FFN training, measured PPoDS workflows, and streamed
// IVT->segment->label pipelines — plus the client for its content-addressed
// dataset plane: volumes upload once into the service's objstore-backed
// dataset store and jobs submit 64-hex refs instead of megabytes of inline
// JSON.
//
//	chased serve -addr localhost:8434      run the gateway (default command)
//	chased serve -cluster                  run it over the simulated CHASE-CI
//	                                       fabric: jobs place by data gravity
//	chased dataset put  [-dims DxHxW] FILE upload a dataset, print its ref
//	chased dataset get  -out FILE REF      download a dataset's encoded bytes
//	chased dataset ls                      list visible datasets
//	chased submit [-mode ref|inline] FILE  submit a job request (JSON file or
//	                                       "-" for stdin); -wait polls it
//	chased nodes [ls]                      list fabric nodes (cluster mode)
//	chased nodes drain|restore NODE        kill / restore a fabric node
//	chased scenario ls                     list the builtin chaos scripts
//	chased scenario run [-seed N] [NAME]   replay chaos scenarios, checking
//	                                       bit-exactness and leak invariants
//
// Client commands take -server (default http://localhost:8434) and -token
// (bearer token from POST /v1/login). `submit` defaults result_mode to
// "ref" — by-reference is the data plane's native mode; pass -mode inline
// to embed bulk payloads in result JSON.
//
// See README.md for the endpoint walkthrough.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/dataset"
	"chaseci/internal/queue"
	"chaseci/internal/scenario"
	"chaseci/internal/sched"
	"chaseci/internal/service"
)

func main() {
	args := os.Args[1:]
	// Bare flags (or nothing) keep the original server invocation working.
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		serve(args)
		return
	}
	switch args[0] {
	case "serve":
		serve(args[1:])
	case "dataset":
		datasetCmd(args[1:])
	case "submit":
		submitCmd(args[1:])
	case "nodes":
		nodesCmd(args[1:])
	case "scenario":
		scenarioCmd(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "chased: unknown command %q (want serve, dataset, submit, nodes, or scenario)\n", args[0])
		os.Exit(2)
	}
}

// scenarioCmd runs the chaos-replay engine locally: `scenario ls` lists the
// builtin fault matrix, `scenario run [-seed N] [NAME ...]` executes scripts
// (all of them by default) and exits non-zero on any invariant violation.
func scenarioCmd(args []string) {
	if len(args) == 0 {
		fatalf("usage: chased scenario ls | chased scenario run [-seed N] [-v] [NAME ...]")
	}
	switch args[0] {
	case "ls":
		for _, sc := range scenario.Builtin() {
			fmt.Printf("%-22s %d jobs, %d events  %s\n", sc.Name, len(sc.Jobs), len(sc.Events), sc.Description)
		}
	case "run":
		scenarioRun(args[1:])
	default:
		fatalf("chased scenario: unknown subcommand %q (want ls or run)", args[0])
	}
}

func scenarioRun(args []string) {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "RNG seed; a failure reproduces exactly from its seed")
	verbose := fs.Bool("v", false, "log each scripted event as it applies")
	fs.Parse(args)
	var scripts []scenario.Script
	if fs.NArg() == 0 {
		scripts = scenario.Builtin()
	} else {
		for _, name := range fs.Args() {
			sc, err := scenario.Lookup(name)
			if err != nil {
				fatalf("%v", err)
			}
			scripts = append(scripts, sc)
		}
	}
	failed := 0
	for _, sc := range scripts {
		opt := scenario.Options{Seed: *seed}
		if *verbose {
			opt.Log = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
		}
		res, err := scenario.Run(sc, opt)
		if err != nil {
			fatalf("scenario %s (seed %d): %v", sc.Name, *seed, err)
		}
		status := "ok"
		if !res.Passed() {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-22s %-4s seed=%d jobs=%d wall=%v fp=%s\n",
			sc.Name, status, *seed, len(res.Jobs), res.Wall.Round(time.Millisecond), res.Fingerprint[:12])
		for _, v := range res.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
	}
	if failed > 0 {
		fatalf("%d of %d scenarios violated invariants (seed %d)", failed, len(scripts), *seed)
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", "localhost:8434", "HTTP listen address")
		clusterOn = fs.Bool("cluster", false, "place jobs on the simulated CHASE-CI fabric by data gravity")
		workers   = fs.Int("workers", 4, "job worker pool size (per node with -cluster)")
		anon      = fs.Bool("anon", true, "allow unauthenticated requests")
		providers = fs.String("providers", "ucsd.edu=UCSD,sdsc.edu=SDSC,example.edu=Example",
			"comma-separated domain=name identity providers")
		ttl = fs.Duration("ttl", 12*time.Hour, "bearer token lifetime")
		// Serving-hardening knobs: registry sharding, admission bounds,
		// weighted-fair tenant shares, and the per-tenant submit rate limit.
		shards           = fs.Int("shards", 0, "job registry lock stripes, rounded up to a power of two (0 = default)")
		maxPending       = fs.Int("max-pending", 0, "global pending-job bound; submits past it shed with 429 (0 = default, -1 = unlimited)")
		maxPendingTenant = fs.Int("max-pending-tenant", 0, "per-tenant pending-job bound (0 = default, -1 = unlimited)")
		tenantWeights    = fs.String("tenant-weights", "", "comma-separated tenant=weight fair-dispatch shares (unlisted tenants weigh 1)")
		rateLimit        = fs.Float64("rate-limit", 0, "per-tenant submit rate limit in requests/second (0 = off)")
		rateBurst        = fs.Int("rate-burst", 0, "per-tenant submit burst on top of -rate-limit (0 = 2x the rate)")
	)
	fs.Parse(args)

	provMap := make(map[string]string)
	for _, pair := range strings.Split(*providers, ",") {
		domain, name, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || domain == "" || name == "" {
			fmt.Fprintf(os.Stderr, "chased: bad -providers entry %q (want domain=name)\n", pair)
			os.Exit(2)
		}
		provMap[domain] = name
	}
	weights := make(map[string]int)
	if *tenantWeights != "" {
		for _, pair := range strings.Split(*tenantWeights, ",") {
			tenant, w, ok := strings.Cut(strings.TrimSpace(pair), "=")
			n, err := strconv.Atoi(w)
			if !ok || tenant == "" || err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "chased: bad -tenant-weights entry %q (want tenant=positive-int)\n", pair)
				os.Exit(2)
			}
			weights[tenant] = n
		}
	}

	cfg := service.RunnerConfig{
		Workers:             *workers,
		Shards:              *shards,
		MaxPending:          *maxPending,
		MaxPendingPerTenant: *maxPendingTenant,
		TenantWeights:       weights,
	}
	store := queue.NewStore()
	var runner *service.Runner
	if *clusterOn {
		fab := sched.DefaultFabric()
		runner = service.NewClusterRunnerConfigured(service.DefaultRegistry(), store, fab, cfg)
	} else {
		runner = service.NewRunnerConfigured(service.DefaultRegistry(), store, cfg)
	}
	defer runner.Close()
	gw := service.NewGateway(runner, service.GatewayOptions{
		Providers:      provMap,
		TokenTTL:       *ttl,
		AllowAnonymous: *anon,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
	})

	srv := &http.Server{Addr: *addr, Handler: gw}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("chased: Job API v1 on http://%s (workers=%d anon=%v)\n", *addr, *workers, *anon)
	fmt.Printf("chased: kinds: segment label ivt train train_dist sweep workflow pipeline — POST /v1/jobs, PUT/GET /v1/datasets/{id}\n")
	if *clusterOn {
		fmt.Printf("chased: cluster mode — %d fabric nodes, jobs place by data gravity (GET /v1/nodes)\n", len(runner.Nodes()))
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "chased:", err)
		os.Exit(1)
	}
}

// clientFlags adds the flags every client subcommand shares.
func clientFlags(fs *flag.FlagSet) (server, token *string) {
	server = fs.String("server", "http://localhost:8434", "gateway base URL")
	token = fs.String("token", "", "bearer token (POST /v1/login)")
	return
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chased: "+format+"\n", args...)
	os.Exit(1)
}

// doRequest issues an authenticated request and fails the process on
// transport errors or non-2xx replies (printing the gateway's error body).
func doRequest(method, url, token string, body io.Reader) *http.Response {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		fatalf("%v", err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("%v", err)
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		var e api.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			fatalf("%s %s: %s: %s", method, url, resp.Status, e.Error)
		}
		fatalf("%s %s: %s", method, url, resp.Status)
	}
	return resp
}

func datasetCmd(args []string) {
	if len(args) == 0 {
		fatalf("dataset needs a subcommand: put, get, or ls")
	}
	switch args[0] {
	case "put":
		datasetPut(args[1:])
	case "get":
		datasetGet(args[1:])
	case "ls":
		datasetLs(args[1:])
	default:
		fatalf("unknown dataset subcommand %q (want put, get, or ls)", args[0])
	}
}

// parseDims parses "DxHxW".
func parseDims(s string) (d, h, w int, err error) {
	if _, err = fmt.Sscanf(s, "%dx%dx%d", &d, &h, &w); err != nil {
		return 0, 0, 0, fmt.Errorf("bad -dims %q (want DxHxW)", s)
	}
	return d, h, w, nil
}

// datasetPut uploads FILE: CDS1-encoded bytes as-is, or — with -dims — a
// raw little-endian float32 volume (or -mask, a 0/1 float32 field) that is
// encoded client-side first.
func datasetPut(args []string) {
	fs := flag.NewFlagSet("dataset put", flag.ExitOnError)
	server, token := clientFlags(fs)
	dims := fs.String("dims", "", "DxHxW dims when FILE is raw little-endian float32 (not CDS1)")
	mask := fs.Bool("mask", false, "with -dims: encode as a 1-bit mask instead of a float32 volume")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("dataset put needs exactly one FILE argument")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}

	enc := raw
	if *dims != "" {
		d, h, w, err := parseDims(*dims)
		if err != nil {
			fatalf("%v", err)
		}
		if len(raw)%4 != 0 {
			fatalf("raw float32 file length %d is not a multiple of 4", len(raw))
		}
		data := make([]float32, len(raw)/4)
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		if *mask {
			enc, err = dataset.EncodeMask(d, h, w, data)
		} else {
			enc, err = dataset.EncodeVolume(d, h, w, data)
		}
		if err != nil {
			fatalf("%v", err)
		}
	} else if _, _, _, _, err := dataset.DecodeHeader(raw); err != nil {
		fatalf("%s is not a CDS1 dataset (pass -dims DxHxW for raw float32): %v", fs.Arg(0), err)
	}

	id := dataset.ID(enc)
	resp := doRequest("PUT", *server+"/v1/datasets/"+id, *token, bytes.NewReader(enc))
	defer resp.Body.Close()
	var info dataset.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		fatalf("decode reply: %v", err)
	}
	fmt.Printf("%s  %s %dx%dx%d  %d bytes\n", info.ID, info.Kind, info.D, info.H, info.W, info.Bytes)
}

func datasetGet(args []string) {
	fs := flag.NewFlagSet("dataset get", flag.ExitOnError)
	server, token := clientFlags(fs)
	out := fs.String("out", "", "write the encoded dataset to this file (required)")
	fs.Parse(args)
	if fs.NArg() != 1 || *out == "" {
		fatalf("dataset get needs -out FILE and exactly one REF argument")
	}
	resp := doRequest("GET", *server+"/v1/datasets/"+fs.Arg(0), *token, nil)
	defer resp.Body.Close()
	enc, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("%v", err)
	}
	if got := dataset.ID(enc); got != fs.Arg(0) {
		fatalf("downloaded bytes hash to %s, not the requested ref (corrupt transfer?)", got)
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("%v", err)
	}
	kind, d, h, w, _ := dataset.DecodeHeader(enc)
	fmt.Printf("%s: %s %dx%dx%d, %d bytes -> %s\n", fs.Arg(0)[:12], kind, d, h, w, len(enc), *out)
}

func datasetLs(args []string) {
	fs := flag.NewFlagSet("dataset ls", flag.ExitOnError)
	server, token := clientFlags(fs)
	fs.Parse(args)
	resp := doRequest("GET", *server+"/v1/datasets", *token, nil)
	defer resp.Body.Close()
	var list []dataset.Info
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		fatalf("decode reply: %v", err)
	}
	for _, info := range list {
		owner := info.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Printf("%s  %-6s %4dx%4dx%4d %12d  %s\n", info.ID, info.Kind, info.D, info.H, info.W, info.Bytes, owner)
	}
}

// defaultKindRequest builds a ready-to-run request for the training kinds,
// so `chased submit -kind train_dist` / `-kind sweep` works without
// authoring JSON: a ref source when -ref is given, else a small synthetic
// IVT volume.
func defaultKindRequest(kind, ref, resume string, workers, rounds int, threshold float64) *api.JobRequest {
	src := api.VolumeSource{Ref: ref}
	if ref == "" {
		src = api.VolumeSource{Synth: &api.SynthSpec{NLon: 32, NLat: 24, NLev: 6, Steps: 8, Seed: 11}}
	}
	switch kind {
	case "train_dist":
		spec := &api.TrainDistSpec{
			Source:    src,
			Threshold: float32(threshold),
			Workers:   workers,
			Rounds:    rounds,
		}
		if resume != "" {
			spec.ResumeFrom = resume // the checkpoint carries net, seeds, batch
		} else {
			spec.BatchPerRound = 8
			spec.Net = &api.NetConfig{FOV: [3]int{3, 7, 7}, Features: 6, MoveStep: [3]int{1, 2, 2}}
			spec.NetSeed = 7
			spec.SampleSeed = 7
			spec.CheckpointEvery = 5
		}
		return &api.JobRequest{Kind: api.KindTrainDist, TrainDist: spec}
	case "sweep":
		return &api.JobRequest{Kind: api.KindSweep, Sweep: &api.SweepSpec{
			Source:        src,
			Threshold:     float32(threshold),
			TrainFraction: 0.75,
			LRs:           []float32{0.01, 0.03},
			Momentums:     []float32{0.9},
			Features:      []int{4, 6},
			Modules:       []int{1, 2},
			TrainSteps:    []int{100},
			Parallel:      workers,
			EarlyStop:     true,
			Seed:          7,
		}}
	default:
		fatalf("unknown -kind %q (want train_dist or sweep)", kind)
		return nil
	}
}

// submitCmd posts a JobRequest read from a JSON file (or stdin with "-"),
// defaulting result_mode to "ref". With -kind it generates the request
// instead.
func submitCmd(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server, token := clientFlags(fs)
	mode := fs.String("mode", "", "result_mode override: ref or inline (default ref unless the file sets one)")
	wait := fs.Bool("wait", false, "poll until terminal and print the result envelope")
	kind := fs.String("kind", "", "generate a default train_dist or sweep request instead of reading FILE")
	ref := fs.String("ref", "", "with -kind: dataset ref to train on (default: a small synthetic IVT volume)")
	resume := fs.String("resume", "", "with -kind train_dist: checkpoint ref to resume from")
	workers := fs.Int("workers", 4, "with -kind: data-parallel width (train_dist) or candidate parallelism (sweep)")
	rounds := fs.Int("rounds", 20, "with -kind train_dist: total synchronous rounds")
	threshold := fs.Float64("threshold", 120, "with -kind: label threshold over the raw field")
	fs.Parse(args)
	var req api.JobRequest
	if *kind != "" {
		if fs.NArg() != 0 {
			fatalf("submit -kind generates the request; drop the FILE argument")
		}
		req = *defaultKindRequest(*kind, *ref, *resume, *workers, *rounds, *threshold)
	} else {
		if fs.NArg() != 1 {
			fatalf("submit needs exactly one FILE argument (or - for stdin), or -kind")
		}
		var raw []byte
		var err error
		if fs.Arg(0) == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(fs.Arg(0))
		}
		if err != nil {
			fatalf("%v", err)
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			fatalf("parse job request: %v", err)
		}
	}
	switch {
	case *mode != "":
		req.ResultMode = api.ResultMode(*mode)
	case req.ResultMode == "":
		// By-reference results are the data plane's native mode.
		req.ResultMode = api.ResultModeRef
	}
	body, err := json.Marshal(&req)
	if err != nil {
		fatalf("%v", err)
	}
	resp := doRequest("POST", *server+"/v1/jobs", *token, bytes.NewReader(body))
	var sub api.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		fatalf("decode reply: %v", err)
	}
	fmt.Printf("job %s %s\n", sub.ID, sub.State)
	if !*wait {
		return
	}
	for {
		resp := doRequest("GET", *server+"/v1/jobs/"+sub.ID, *token, nil)
		var st api.JobStatus
		err := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			fatalf("decode status: %v", err)
		}
		if st.State.Terminal() {
			resp := doRequest("GET", *server+"/v1/jobs/"+sub.ID+"/result", *token, nil)
			env, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fatalf("%v", err)
			}
			os.Stdout.Write(env)
			fmt.Println()
			if st.State != api.StateSucceeded {
				os.Exit(1)
			}
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// nodesCmd talks to the cluster-mode node endpoints: `nodes` / `nodes ls`
// lists the fabric inventory, `nodes drain NODE` simulates losing a node
// (its OSD fails and its jobs requeue onto surviving replicas), and
// `nodes restore NODE` brings it back.
func nodesCmd(args []string) {
	sub, rest := "ls", args
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, rest = args[0], args[1:]
	}
	switch sub {
	case "ls":
		nodesLs(rest)
	case "drain", "restore":
		nodesLifecycle(sub, rest)
	default:
		fatalf("unknown nodes subcommand %q (want ls, drain, or restore)", sub)
	}
}

func nodesLs(args []string) {
	fs := flag.NewFlagSet("nodes ls", flag.ExitOnError)
	server, token := clientFlags(fs)
	fs.Parse(args)
	resp := doRequest("GET", *server+"/v1/nodes", *token, nil)
	defer resp.Body.Close()
	var nodes []api.NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		fatalf("decode reply: %v", err)
	}
	fmt.Printf("%-14s %-6s %-8s %-24s %-16s %s\n",
		"NODE", "SITE", "READY", "ALLOC CPU/MEM/GPU", "OSD", "JOBS")
	for _, n := range nodes {
		ready := "ready"
		if !n.Ready {
			ready = "down"
		}
		osd := "-"
		if n.OSD != "" {
			osd = n.OSD
			if !n.OSDUp {
				osd += "(down)"
			}
		}
		fmt.Printf("%-14s %-6s %-8s %2d/%2d %4s/%4s %d/%d GPU  %-16s %d\n",
			n.Name, n.Site, ready,
			n.AllocCPU, n.CPU, gbString(n.AllocMemoryBytes), gbString(n.MemoryBytes),
			n.AllocGPUs, n.GPUs, osd, n.BoundJobs)
	}
}

func gbString(b int64) string {
	return fmt.Sprintf("%dG", b/(1<<30))
}

func nodesLifecycle(verb string, args []string) {
	fs := flag.NewFlagSet("nodes "+verb, flag.ExitOnError)
	server, token := clientFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("nodes %s needs exactly one NODE argument", verb)
	}
	resp := doRequest("POST", *server+"/v1/nodes/"+fs.Arg(0)+"/"+verb, *token, nil)
	defer resp.Body.Close()
	var out struct {
		Node string `json:"node"`
		OK   bool   `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fatalf("decode reply: %v", err)
	}
	fmt.Printf("node %s: %s ok\n", out.Node, verb)
}
