// Command chased (CHASE-CI daemon) is the HTTP/JSON job gateway over the
// repository's compute kernels: FFN segmentation, CONNECT labelling, MERRA
// IVT derivation, FFN training, measured PPoDS workflows, and streamed
// IVT->segment->label pipelines all submit through one versioned Job API
// (internal/api) and execute on a shared worker pool (internal/service)
// with context cancellation, progress streaming, and job state persisted
// in the simulated-Redis store.
//
//	chased -addr localhost:8434            listen address
//	chased -workers 4                      job worker pool size
//	chased -anon=false                     require bearer tokens (see -providers)
//	chased -providers ucsd.edu=UCSD,...    identity providers for /v1/login
//	chased -ttl 12h                        token lifetime
//
// See README.md for the endpoint walkthrough.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"chaseci/internal/queue"
	"chaseci/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8434", "HTTP listen address")
		workers   = flag.Int("workers", 4, "job worker pool size")
		anon      = flag.Bool("anon", true, "allow unauthenticated requests")
		providers = flag.String("providers", "ucsd.edu=UCSD,sdsc.edu=SDSC,example.edu=Example",
			"comma-separated domain=name identity providers")
		ttl = flag.Duration("ttl", 12*time.Hour, "bearer token lifetime")
	)
	flag.Parse()

	provMap := make(map[string]string)
	for _, pair := range strings.Split(*providers, ",") {
		domain, name, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || domain == "" || name == "" {
			fmt.Fprintf(os.Stderr, "chased: bad -providers entry %q (want domain=name)\n", pair)
			os.Exit(2)
		}
		provMap[domain] = name
	}

	store := queue.NewStore()
	runner := service.NewRunner(service.DefaultRegistry(), store, *workers)
	defer runner.Close()
	gw := service.NewGateway(runner, service.GatewayOptions{
		Providers:      provMap,
		TokenTTL:       *ttl,
		AllowAnonymous: *anon,
	})

	srv := &http.Server{Addr: *addr, Handler: gw}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("chased: Job API v1 on http://%s (workers=%d anon=%v)\n", *addr, *workers, *anon)
	fmt.Printf("chased: kinds: segment label ivt train workflow pipeline — POST /v1/jobs, GET /v1/jobs/{id}\n")
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "chased:", err)
		os.Exit(1)
	}
}
