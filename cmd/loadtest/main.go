// Command loadtest drives a chased gateway at a sustained open-loop RPS
// and reports submit/end-to-end latency quantiles and the
// accepted/shed/failed split — the million-user serving harness behind the
// serve_sustained_* benchjson series and the CI smoke.
//
//	loadtest -url http://localhost:8434 -rps 500 -duration 10s -tenants 4
//	loadtest -selfserve -rps 200 -duration 2s -wait
//
// -selfserve starts an in-process gateway (with the full kernel registry)
// on a loopback listener, so the harness exercises the real HTTP serving
// stack without an external daemon — that is what CI runs. The job body
// defaults to a 1ms one-step workflow; pass -body FILE for any JSON
// api.JobRequest.
//
// Exit status is non-zero when any request failed outright (transport
// error or an unexpected status); 429 sheds are expected under overload
// and only reported.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"os/signal"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/loadtest"
	"chaseci/internal/queue"
	"chaseci/internal/service"
)

func main() {
	var (
		url      = flag.String("url", "", "gateway base URL (empty with -selfserve)")
		rps      = flag.Float64("rps", 200, "open-loop arrival rate across all tenants")
		duration = flag.Duration("duration", 5*time.Second, "arrival window")
		tenants  = flag.Int("tenants", 0, "tenant identities logging in as loadN@ucsd.edu (0 = anonymous)")
		wait     = flag.Bool("wait", false, "poll each accepted job to terminal and record end-to-end latency")
		inflight = flag.Int("max-inflight", 0, "bound on outstanding requests (0 = 4096)")
		bodyPath = flag.String("body", "", "JSON api.JobRequest file (default: 1ms one-step workflow)")

		selfserve = flag.Bool("selfserve", false, "run an in-process gateway instead of targeting -url")
		workers   = flag.Int("workers", 4, "selfserve worker pool size")
		shards    = flag.Int("shards", 0, "selfserve registry lock stripes (0 = default)")
		maxPend   = flag.Int("max-pending", 0, "selfserve global pending bound (0 = default, -1 = unlimited)")
		maxPendT  = flag.Int("max-pending-tenant", 0, "selfserve per-tenant pending bound (0 = default, -1 = unlimited)")
		rateLimit = flag.Float64("rate-limit", 0, "selfserve per-tenant submit rate limit (0 = off)")
		rateBurst = flag.Int("rate-burst", 0, "selfserve rate-limit burst (0 = 2x the rate)")
	)
	flag.Parse()

	base := *url
	if *selfserve {
		runner := service.NewRunnerConfigured(service.DefaultRegistry(), queue.NewStore(), service.RunnerConfig{
			Workers:             *workers,
			Shards:              *shards,
			MaxPending:          *maxPend,
			MaxPendingPerTenant: *maxPendT,
		})
		defer runner.Close()
		srv := httptest.NewServer(service.NewGateway(runner, service.GatewayOptions{
			Providers:      map[string]string{"ucsd.edu": "UCSD", "sdsc.edu": "SDSC"},
			TokenTTL:       time.Hour,
			AllowAnonymous: true,
			PollInterval:   2 * time.Millisecond,
			RateLimit:      *rateLimit,
			RateBurst:      *rateBurst,
		}))
		defer srv.Close()
		base = srv.URL
		fmt.Fprintf(os.Stderr, "loadtest: selfserve gateway on %s (workers=%d shards=%d)\n",
			base, *workers, *shards)
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "loadtest: -url or -selfserve required")
		os.Exit(2)
	}

	body := []byte(nil)
	if *bodyPath != "" {
		raw, err := os.ReadFile(*bodyPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			os.Exit(2)
		}
		body = raw
	} else {
		body, _ = json.Marshal(&api.JobRequest{
			Kind: api.KindWorkflow,
			Name: "loadtest",
			Workflow: &api.WorkflowSpec{
				Name:  "loadtest",
				Steps: []api.WorkflowStep{{Name: "s", DurationMS: 1}},
			},
		})
	}

	var ids []loadtest.Tenant
	if *tenants > 0 {
		users := make([]string, *tenants)
		for i := range users {
			users[i] = fmt.Sprintf("load%d@ucsd.edu", i)
		}
		var err error
		ids, err = loadtest.Login(base, nil, users...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := loadtest.Run(ctx, loadtest.Config{
		BaseURL:      base,
		RPS:          *rps,
		Duration:     *duration,
		Tenants:      ids,
		Body:         body,
		WaitTerminal: *wait,
		MaxInFlight:  *inflight,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(2)
	}
	fmt.Print(rep)
	for name, ts := range rep.Tenants {
		fmt.Printf("tenant %-20s sent %d  accepted %d  shed %d  failed %d\n",
			name, ts.Sent, ts.Accepted, ts.Shed, ts.Failed)
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %d requests failed\n", rep.Failed)
		os.Exit(1)
	}
	if *wait && rep.Completed != rep.Accepted {
		fmt.Fprintf(os.Stderr, "loadtest: %d accepted jobs never reached terminal\n", rep.Accepted-rep.Completed)
		os.Exit(1)
	}
}
