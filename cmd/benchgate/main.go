// Command benchgate compares a fresh benchjson report against a checked-in
// baseline (BENCH_PR*.json) and fails when the performance trajectory
// regresses — CI's guard against quietly losing the kernel wins each PR
// records.
//
//	benchgate -baseline BENCH_PR6.json -current bench.json
//
// Two checks run:
//
//   - Time: every pinned series (see -pinned) must stay within -max-slowdown
//     (default 1.25x) of the baseline's ns/op. Pinned series that depend on
//     a CPU capability (SIMD span kernels, int8 VNNI) are skipped when the
//     baseline and the current machine disagree on that capability — a
//     scalar-only runner can't hold a SIMD machine's numbers.
//   - Allocations: every series present in both reports must not allocate
//     more per op than the baseline. Alloc counts are deterministic, so this
//     check has no tolerance and no capability exemption.
//   - Invariants: any series reporting a "violations" metric (the chaos
//     scenario series) must report exactly 0 — a scenario run that broke
//     bit-exactness or leaked pins fails the gate regardless of timing.
//
// Exit status 0 when every check passes or is skipped, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Result and Report mirror cmd/benchjson's output document.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type Report struct {
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	SpanKernels bool     `json:"span_kernels"`
	Int8VNNI    bool     `json:"int8_vnni"`
	Timestamp   string   `json:"timestamp"`
	Results     []Result `json:"results"`
}

// defaultPinned is the series list whose ns/op trajectory the gate holds.
// Service-level series (pipelines, HTTP submit, chaos scenarios) stay
// unpinned: their times are dominated by scheduling noise on shared CI
// runners. The sched series are pure in-process simulation (no kernels, no
// HTTP), so they pin fine. scenario_nodeloss_pipeline is gated through its
// violations metric instead of its time.
const defaultPinned = "conv3d_into,conv3d_span,conv3d_scalar,conv3d_int8," +
	"conv3d_batch8_into,conv3d_batch8_relu_into,ffn_train_step," +
	"segment_batch8,segment_int8,ivt_computation," +
	"sched_place_64cubed,sched_requeue_nodeloss," +
	"train_dist_4w,sweep_grid8"

// capability names a CPU feature a series needs before its baseline time is
// comparable across machines.
var capability = map[string]string{
	"conv3d_span":  "span_kernels",
	"conv3d_int8":  "int8_vnni",
	"segment_int8": "int8_vnni",
}

func load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func (r *Report) index() map[string]Result {
	m := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		m[res.Name] = res
	}
	return m
}

func (r *Report) hasCapability(name string) bool {
	switch name {
	case "span_kernels":
		return r.SpanKernels
	case "int8_vnni":
		return r.Int8VNNI
	}
	return false
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "checked-in benchjson baseline (required)")
		currentPath  = flag.String("current", "", "fresh benchjson report (required)")
		maxSlowdown  = flag.Float64("max-slowdown", 1.25, "fail a pinned series when current ns/op exceeds baseline by this factor")
		pinned       = flag.String("pinned", defaultPinned, "comma-separated series whose ns/op is gated")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	baseIdx, curIdx := base.index(), cur.index()

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL  "+format+"\n", args...)
	}

	for _, name := range strings.Split(*pinned, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if capName, ok := capability[name]; ok {
			if !base.hasCapability(capName) || !cur.hasCapability(capName) {
				fmt.Printf("skip  %-28s needs %s (baseline %v, current %v)\n",
					name, capName, base.hasCapability(capName), cur.hasCapability(capName))
				continue
			}
		}
		b, okB := baseIdx[name]
		c, okC := curIdx[name]
		if !okB {
			fmt.Printf("skip  %-28s not in baseline\n", name)
			continue
		}
		if !okC {
			fail("%-28s missing from current report", name)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok  "
		if ratio > *maxSlowdown {
			failed = true
			status = "FAIL"
		}
		fmt.Printf("%s  %-28s %12.0f -> %12.0f ns/op  (%.2fx, limit %.2fx)\n",
			status, name, b.NsPerOp, c.NsPerOp, ratio, *maxSlowdown)
	}

	for _, c := range cur.Results {
		b, ok := baseIdx[c.Name]
		if !ok {
			continue
		}
		// The serve_* series' "op" is a fixed wall-clock load window, so its
		// alloc count scales with how many polls and goroutines fit into the
		// window — time-dependent, not deterministic. Those series are gated
		// through their violations metric instead.
		if strings.HasPrefix(c.Name, "serve_") {
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			fail("%-28s allocs/op regressed: %d -> %d", c.Name, b.AllocsPerOp, c.AllocsPerOp)
		}
	}

	for _, c := range cur.Results {
		if v, ok := c.Metrics["violations"]; ok && v != 0 {
			fail("%-28s reported %g invariant violations, want 0", c.Name, v)
		}
	}

	if failed {
		fmt.Println("benchgate: regression detected")
		os.Exit(1)
	}
	fmt.Println("benchgate: trajectory holds")
}
