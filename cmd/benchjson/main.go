// Command benchjson runs the repository's kernel and service
// micro-benchmarks through testing.Benchmark and emits machine-readable
// JSON — the format BENCH_PR*.json files and the CI bench artifact use to
// track the performance trajectory across PRs.
//
//	benchjson                 run everything, JSON to stdout
//	benchjson -bench conv     substring filter on benchmark names
//	benchjson -out bench.json write to a file instead of stdout
//	benchjson -list           print benchmark names and exit
//
// Each benchmark runs with the testing package's default 1s target time;
// results carry ns/op, B/op, allocs/op, and any custom b.ReportMetric
// values (the pipeline entries report their segmentation step counts so
// divergence between modes is visible in the trajectory, not just time).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/connect"
	"chaseci/internal/dataset"
	"chaseci/internal/ffn"
	"chaseci/internal/gpusim"
	"chaseci/internal/loadtest"
	"chaseci/internal/merra"
	"chaseci/internal/netsim"
	"chaseci/internal/queue"
	"chaseci/internal/scenario"
	"chaseci/internal/sched"
	"chaseci/internal/service"
	"chaseci/internal/sim"
	"chaseci/internal/tensor"
)

// Result is one benchmark's machine-readable outcome.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full output document.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPU capability flags for the SIMD kernel series: benchgate skips
	// SIMD-dependent comparisons when baseline and current machine disagree.
	SpanKernels bool     `json:"span_kernels"`
	Int8VNNI    bool     `json:"int8_vnni"`
	Timestamp   string   `json:"timestamp"`
	Results     []Result `json:"results"`
}

type benchCase struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	var (
		filter = flag.String("bench", "", "run only benchmarks whose name contains this substring")
		out    = flag.String("out", "", "write JSON to this file (default stdout)")
		list   = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	cases := benchCases()
	if *list {
		for _, c := range cases {
			fmt.Println(c.name)
		}
		return
	}

	rep := Report{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SpanKernels: tensor.SpanKernelsActive(),
		Int8VNNI:    tensor.QuantAsmActive(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	for _, c := range cases {
		if *filter != "" && !strings.Contains(c.name, *filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", c.name)
		r := testing.Benchmark(c.fn)
		res := Result{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		rep.Results = append(rep.Results, res)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchConvBatch8 is the shared batch-8 f32 conv workload behind the
// conv3d_span / conv3d_scalar pair.
func benchConvBatch8(b *testing.B) {
	rng := sim.NewRNG(1)
	in := tensor.New(8, 6, 3, 7, 7)
	in.Randomize(rng, 27)
	w := tensor.New(6, 6, 3, 3, 3)
	w.Randomize(rng, 6*27)
	bias := make([]float32, 6)
	out := tensor.New(8, 6, 3, 7, 7)
	tensor.Conv3DBatchInto(out, in, w, bias, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv3DBatchInto(out, in, w, bias, 0)
	}
}

// segmentSceneInt8 is segmentScene with quantized inference enabled.
func segmentSceneInt8(floodBatch int) (*ffn.Network, *ffn.Volume, [][3]int) {
	net, img, seeds := segmentScene(floodBatch)
	cfg := net.Config()
	cfg.Precision = ffn.PrecisionInt8
	qnet, err := ffn.NewNetwork(cfg, 3)
	if err != nil {
		panic(err)
	}
	return qnet, img, seeds
}

// segmentScene builds the shared flood-fill benchmark scene (the same
// geometry bench_test.go's BenchmarkSegmentWorkers uses).
func segmentScene(floodBatch int) (*ffn.Network, *ffn.Volume, [][3]int) {
	g := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	gen := merra.NewGenerator(g, 11)
	vol := merra.IVTVolume(gen, merra.PressureLevels(g.NLev), 20, 6)
	img := &ffn.Volume{D: 6, H: g.NLat, W: g.NLon, Data: append([]float32(nil), vol.Data...)}
	img.Normalize()
	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 6
	cfg.MoveStep = [3]int{1, 2, 2}
	cfg.FloodBatch = floodBatch
	net, err := ffn.NewNetwork(cfg, 3)
	if err != nil {
		panic(err)
	}
	seeds := ffn.GridSeeds(img, cfg.FOV, [3]int{1, 4, 4}, 1.0)
	return net, img, seeds
}

// pipelineRequest builds the overlap-vs-sequential pipeline benchmark job.
func pipelineRequest(sequential bool) *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindPipeline,
		Pipeline: &api.PipelineSpec{
			Synth:      api.SynthSpec{NLon: 72, NLat: 48, NLev: 24, Steps: 12, Seed: 11},
			SlabSteps:  3,
			Threshold:  120,
			Net:        &api.NetConfig{FOV: [3]int{3, 9, 9}, Features: 6, MoveProb: 0.6},
			SeedStride: [3]int{1, 4, 4},
			Sequential: sequential,
		},
	}
}

func benchCases() []benchCase {
	return []benchCase{
		{"conv3d_into", func(b *testing.B) {
			rng := sim.NewRNG(1)
			in := tensor.New(6, 3, 7, 7)
			w := tensor.New(6, 6, 3, 3, 3)
			w.Randomize(rng, 6*27)
			bias := make([]float32, 6)
			out := tensor.New(6, 3, 7, 7)
			tensor.Conv3DInto(out, in, w, bias)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Conv3DInto(out, in, w, bias)
			}
		}},
		{"conv3d_batch8_into", func(b *testing.B) {
			rng := sim.NewRNG(1)
			in := tensor.New(8, 6, 3, 7, 7)
			w := tensor.New(6, 6, 3, 3, 3)
			w.Randomize(rng, 6*27)
			bias := make([]float32, 6)
			out := tensor.New(8, 6, 3, 7, 7)
			tensor.Conv3DBatchInto(out, in, w, bias, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Conv3DBatchInto(out, in, w, bias, 0)
			}
		}},
		{"conv3d_batch8_relu_into", func(b *testing.B) {
			rng := sim.NewRNG(1)
			in := tensor.New(8, 6, 3, 7, 7)
			w := tensor.New(6, 6, 3, 3, 3)
			w.Randomize(rng, 6*27)
			bias := make([]float32, 6)
			out := tensor.New(8, 6, 3, 7, 7)
			tensor.Conv3DBatchReLUInto(out, in, w, bias, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Conv3DBatchReLUInto(out, in, w, bias, 0)
			}
		}},
		{"conv3d_span", func(b *testing.B) {
			// The batch8 workload with the SIMD span kernels pinned on: the
			// series PR 6's >=1.5x span-vs-scalar bar is measured against.
			if !tensor.SpanKernelsActive() {
				b.Skip("span kernels unavailable on this CPU")
			}
			benchConvBatch8(b)
		}},
		{"conv3d_scalar", func(b *testing.B) {
			// The same workload through the bit-exact scalar fallback — the
			// denominator of the span speedup, runnable on any machine.
			prev := tensor.SetSpanKernels(false)
			defer tensor.SetSpanKernels(prev)
			benchConvBatch8(b)
		}},
		{"conv3d_int8", func(b *testing.B) {
			if !tensor.QuantAsmActive() {
				b.Skip("int8 VNNI kernel unavailable on this CPU")
			}
			rng := sim.NewRNG(1)
			in := tensor.New(8, 6, 3, 7, 7)
			in.Randomize(rng, 27)
			w := tensor.New(6, 6, 3, 3, 3)
			w.Randomize(rng, 6*27)
			qw := tensor.QuantizeWeights(w)
			bias := make([]float32, 6)
			out := tensor.New(8, 6, 3, 7, 7)
			tensor.Conv3DBatchQInto(out, in, qw, bias, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Conv3DBatchQInto(out, in, qw, bias, 0)
			}
		}},
		{"ffn_train_step", func(b *testing.B) {
			cfg := ffn.DefaultConfig()
			cfg.FOV = [3]int{3, 7, 7}
			cfg.Features = 6
			net, err := ffn.NewNetwork(cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			opt := tensor.NewSGD(0.01, 0.9)
			img := tensor.New(1, 3, 7, 7)
			lab := tensor.New(1, 3, 7, 7)
			net.TrainStep(opt, img, lab)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.TrainStep(opt, img, lab)
			}
		}},
		{"segment_batch1", func(b *testing.B) {
			net, img, seeds := segmentScene(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Segment(img, seeds, 0)
			}
		}},
		{"segment_batch8", func(b *testing.B) {
			net, img, seeds := segmentScene(8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Segment(img, seeds, 0)
			}
		}},
		{"segment_int8", func(b *testing.B) {
			// The same flood as segment_batch8 with Precision int8: PR 6's
			// >=1.3x quantized-vs-f32 bar is segment_batch8 / segment_int8.
			if !tensor.QuantAsmActive() {
				b.Skip("int8 VNNI kernel unavailable on this CPU")
			}
			net, img, seeds := segmentSceneInt8(8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Segment(img, seeds, 0)
			}
		}},
		{"ivt_computation", func(b *testing.B) {
			g := merra.Grid{NLon: 96, NLat: 64, NLev: 16}
			gen := merra.NewGenerator(g, 3)
			st := gen.State(0)
			levels := merra.PressureLevels(g.NLev)
			merra.IVT(st, levels)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				merra.IVT(st, levels)
			}
		}},
		{"connect_label", func(b *testing.B) {
			rng := sim.NewRNG(2)
			v := connect.NewVolume(16, 64, 64)
			for i := range v.Data {
				if rng.Float64() < 0.2 {
					v.Data[i] = 1
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				connect.Label(v, connect.Conn26, 0)
			}
		}},
		{"status_poll", func(b *testing.B) {
			r := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 1)
			defer r.Close()
			st, err := r.Submit(&api.JobRequest{Kind: api.KindWorkflow, Workflow: &api.WorkflowSpec{
				Name:  "poll",
				Steps: []api.WorkflowStep{{Name: "s", DurationMS: 1}},
			}}, "")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := r.Status(st.ID); !ok {
					b.Fatal("job disappeared")
				}
			}
		}},
		{"pipeline_overlapped", func(b *testing.B) {
			benchPipeline(b, pipelineRequest(false))
		}},
		{"pipeline_sequential", func(b *testing.B) {
			benchPipeline(b, pipelineRequest(true))
		}},
		{"job_submit_inline_64cubed", func(b *testing.B) {
			benchSubmit(b, false)
		}},
		{"job_submit_ref_64cubed", func(b *testing.B) {
			benchSubmit(b, true)
		}},
		{"sched_place_64cubed", benchSchedPlace},
		{"sched_requeue_nodeloss", benchSchedRequeue},
		{"train_dist_4w", benchTrainDist4w},
		{"sweep_grid8", benchSweepGrid8},
		{"scenario_nodeloss_pipeline", benchScenarioNodeLoss},
		{"serve_sustained_200rps", benchServeSustained},
		{"serve_overload_shed", benchServeOverload},
		{"registry_poll_parallel_sharded", func(b *testing.B) {
			benchRegistryPollParallel(b, 32)
		}},
		{"registry_poll_parallel_single", func(b *testing.B) {
			benchRegistryPollParallel(b, 1)
		}},
	}
}

// tinyWorkflowBody is the cheapest valid job the registry accepts — the
// sustained-serving payload (1ms of virtual step time).
func tinyWorkflowBody() []byte {
	body, _ := json.Marshal(&api.JobRequest{
		Kind: api.KindWorkflow,
		Name: "sustained",
		Workflow: &api.WorkflowSpec{
			Name:  "sustained",
			Steps: []api.WorkflowStep{{Name: "s", DurationMS: 1}},
		},
	})
	return body
}

// reportServe publishes a loadtest report as benchjson metrics. violations
// is the gate: a sustained run must never fail a request or lose an
// accepted job, and an overload run must actually shed.
func reportServe(b *testing.B, rep *loadtest.Report, violations float64) {
	b.ReportMetric(rep.AcceptedRPS, "accepted-rps")
	b.ReportMetric(float64(rep.Shed), "shed")
	b.ReportMetric(float64(rep.SubmitP50.Microseconds()), "submit-p50-us")
	b.ReportMetric(float64(rep.SubmitP99.Microseconds()), "submit-p99-us")
	b.ReportMetric(float64(rep.E2EP50.Microseconds()), "e2e-p50-us")
	b.ReportMetric(float64(rep.E2EP99.Microseconds()), "e2e-p99-us")
	b.ReportMetric(violations, "violations")
}

// benchServeSustained is the serving headline: an open-loop 200 RPS run
// with 4 tenant identities against the full in-process gateway, every
// accepted job polled to terminal. Its ns/op is just the window length;
// the payload is the latency-quantile metrics, and the violations metric
// pins "nothing failed, everything accepted completed".
func benchServeSustained(b *testing.B) {
	runner := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 4)
	defer runner.Close()
	srv := httptest.NewServer(service.NewGateway(runner, service.GatewayOptions{
		Providers:    map[string]string{"ucsd.edu": "UCSD", "sdsc.edu": "SDSC"},
		TokenTTL:     time.Hour,
		PollInterval: 2 * time.Millisecond,
		TokenSeed:    1,
	}))
	defer srv.Close()
	tenants, err := loadtest.Login(srv.URL, nil,
		"a@ucsd.edu", "b@ucsd.edu", "c@sdsc.edu", "d@sdsc.edu")
	if err != nil {
		b.Fatal(err)
	}
	body := tinyWorkflowBody()

	var rep *loadtest.Report
	var violations float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = loadtest.Run(context.Background(), loadtest.Config{
			BaseURL:      srv.URL,
			RPS:          200,
			Duration:     300 * time.Millisecond,
			Tenants:      tenants,
			Body:         body,
			WaitTerminal: true,
			PollInterval: 2 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		violations += float64(rep.Failed) + float64(rep.Accepted-rep.Completed)
	}
	b.StopTimer()
	reportServe(b, rep, violations)
}

// benchServeOverload floods a deliberately tiny deployment (1 worker, 8/16
// pending bounds, 5ms wall-time jobs) far past capacity: the gateway must
// shed with 429 while the pending queue stays at its bound. violations
// counts runs that failed a request, didn't shed, or let the queue grow
// past the bound.
func benchServeOverload(b *testing.B) {
	var rep *loadtest.Report
	var violations float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh stack per iteration: leftover backlog must not leak into
		// the next window's shed profile.
		reg := service.NewRegistry()
		reg.Register(api.KindWorkflow, func(jc *service.JobContext) (any, error) {
			select {
			case <-time.After(5 * time.Millisecond):
				return nil, nil
			case <-jc.Ctx().Done():
				return nil, jc.Ctx().Err()
			}
		})
		runner := service.NewRunnerConfigured(reg, queue.NewStore(), service.RunnerConfig{
			Workers: 1, MaxPendingPerTenant: 8, MaxPending: 16,
		})
		srv := httptest.NewServer(service.NewGateway(runner, service.GatewayOptions{
			AllowAnonymous: true,
			PollInterval:   2 * time.Millisecond,
			TokenSeed:      1,
		}))
		var err error
		rep, err = loadtest.Run(context.Background(), loadtest.Config{
			BaseURL:  srv.URL,
			RPS:      500,
			Duration: 300 * time.Millisecond,
			Body:     tinyWorkflowBody(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 || rep.Shed == 0 || runner.PendingTotal() > 16 {
			violations++
		}
		srv.Close()
		runner.Close()
	}
	b.StopTimer()
	reportServe(b, rep, violations)
}

// benchRegistryPollParallel measures the status-poll fast path under
// parallel load (8 goroutines per GOMAXPROCS) for a given registry stripe
// count: the sharded/single pair quantifies the lock-striping win, and
// allocs/op pins the poll path at zero allocations even under contention.
func benchRegistryPollParallel(b *testing.B, shardCount int) {
	r := service.NewRunnerConfigured(service.DefaultRegistry(), queue.NewStore(), service.RunnerConfig{
		Workers: 2, Shards: shardCount,
	})
	defer r.Close()
	ids := make([]string, 256)
	for i := range ids {
		st, err := r.Submit(&api.JobRequest{Kind: api.KindWorkflow, Workflow: &api.WorkflowSpec{
			Name:  "seed",
			Steps: []api.WorkflowStep{{Name: "s", DurationMS: 1}},
		}}, "bench@ucsd.edu")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = st.ID
	}
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, ok := r.Status(ids[(i*7)&255]); !ok {
				b.Fatal("job disappeared")
			}
		}
	})
}

// benchScenarioNodeLoss runs a full chaos replay per iteration: a pipeline
// job is held mid-execution, its node is killed and restored, and the engine
// verifies bit-exactness against an undisturbed baseline world. ns/op is the
// end-to-end recover-and-verify latency; violations/op must stay 0.
func benchScenarioNodeLoss(b *testing.B) {
	sc := scenario.Script{
		Name: "nodeloss_pipeline",
		Jobs: []scenario.JobSpec{{Kind: "pipeline", Deferred: true}},
		Events: []scenario.Action{
			{Kind: scenario.ActHoldNext, Count: 1},
			{Kind: scenario.ActSubmit, Job: 0},
			{Kind: scenario.ActAwaitHold},
			{Kind: scenario.ActKillNode, Job: 0},
			{Kind: scenario.ActRestoreNode},
		},
	}
	var violations float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(sc, scenario.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		violations += float64(len(res.Violations))
	}
	b.ReportMetric(violations, "violations")
}

// benchFabric builds the two-site/two-OSD fabric the scheduler benchmarks
// score against and uploads one 64^3 volume (replicated on both OSDs).
func benchFabric(b *testing.B) (*sched.Fabric, string) {
	b.Helper()
	f := sched.NewFabric(sched.FabricConfig{Replicas: 2})
	f.AddSite("ucsd")
	f.AddSite("sdsu")
	f.AddLink("ucsd", "sdsu", netsim.Gbps(40), 2*time.Millisecond)
	for i, site := range []string{"ucsd", "sdsu"} {
		err := f.AddNode(sched.NodeSpec{
			Name:     fmt.Sprintf("fiona-%d", i),
			Site:     site,
			Capacity: cluster.FIONA8Capacity(),
			Model:    gpusim.Powered1080Ti(),
			OSD:      "osd-" + site,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	const n = 64
	data := make([]float32, n*n*n)
	for i := range data {
		data[i] = float32(i%251) * 0.7
	}
	enc, err := dataset.EncodeVolume(n, n, n, data)
	if err != nil {
		b.Fatal(err)
	}
	info, err := f.Datasets.Put(enc, "")
	if err != nil {
		b.Fatal(err)
	}
	return f, info.ID
}

// benchSchedPlace measures one data-gravity placement decision for a 64^3
// ref-mode segment job: resolve replicas, score both nodes, claim, release.
// locality-hits/op pins that every decision stays replica-local.
func benchSchedPlace(b *testing.B) {
	f, ref := benchFabric(b)
	s := sched.New(f)
	w := &sched.Workload{
		JobID: "bench", Kind: api.KindSegment, Owner: "bench",
		Refs: []string{ref}, Voxels: 64 * 64 * 64,
	}
	var hits float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl, err := s.Place(w)
		if err != nil || pl == nil {
			b.Fatalf("place: %v %v", pl, err)
		}
		if pl.Locality == api.LocalityReplicaLocal {
			hits = 1
		}
		s.Release(w.JobID)
	}
	b.ReportMetric(hits, "locality-hits/op")
}

// benchSchedRequeue measures the full node-loss cycle: the bound node (and
// its OSD) fails, the job re-places against the surviving replica holder,
// and the dead node returns. ns/op is the requeue latency the EXPERIMENTS
// table tracks.
func benchSchedRequeue(b *testing.B) {
	f, ref := benchFabric(b)
	s := sched.New(f)
	s.OnDrain(func(string, []string) {}) // service-layer requeue is the Place below
	w := &sched.Workload{
		JobID: "bench", Kind: api.KindSegment, Owner: "bench",
		Refs: []string{ref}, Voxels: 64 * 64 * 64,
	}
	pl, err := s.Place(w)
	if err != nil || pl == nil {
		b.Fatalf("place: %v %v", pl, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := pl.Node
		if err := s.KillNode(victim); err != nil {
			b.Fatal(err)
		}
		pl, err = s.Place(w)
		if err != nil || pl == nil {
			b.Fatalf("requeue place: %v %v", pl, err)
		}
		if pl.Node == victim {
			b.Fatalf("requeued onto the dead node %s", victim)
		}
		if err := s.RestoreNode(victim); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSubmit measures the data plane's acceptance quantity: gateway bytes
// per 64^3 segment job submitted inline versus by content-addressed ref
// (the volume uploaded once, untimed). The wire-bytes/op metric is the
// ratio BENCH_PR4.json tracks; the bar is >= 5x fewer for ref.
func benchSubmit(b *testing.B, byRef bool) {
	runner := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 2)
	defer runner.Close()
	gw := service.NewGateway(runner, service.GatewayOptions{AllowAnonymous: true, TokenSeed: 1})
	srv := httptest.NewServer(gw)
	defer srv.Close()

	const n = 64
	data := make([]float32, n*n*n)
	for i := range data {
		data[i] = float32(i%251) * 0.7
	}
	spec := &api.SegmentSpec{
		Seeds:      [][3]int{{32, 32, 32}},
		MaxSteps:   1,
		ReturnMask: true,
	}
	req := &api.JobRequest{Kind: api.KindSegment, Segment: spec}
	if byRef {
		enc, err := dataset.EncodeVolume(n, n, n, data)
		if err != nil {
			b.Fatal(err)
		}
		info, err := runner.Datasets().Put(enc, "")
		if err != nil {
			b.Fatal(err)
		}
		spec.Source = api.VolumeSource{Ref: info.ID}
		req.ResultMode = api.ResultModeRef
	} else {
		spec.Source = api.VolumeSource{D: n, H: n, W: n, Data: data}
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}

	var wire int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = int64(len(body))
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		ack, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		wire += int64(len(ack))
		var sub api.SubmitResponse
		if err := json.Unmarshal(ack, &sub); err != nil || sub.ID == "" {
			b.Fatalf("submit failed: %s", ack)
		}
		st := waitTerminal(runner, sub.ID)
		if st.State != api.StateSucceeded {
			b.Fatalf("job %s: %s (%s)", sub.ID, st.State, st.Error)
		}
		resp, err = http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/result")
		if err != nil {
			b.Fatal(err)
		}
		env, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		wire += int64(len(env))
	}
	b.ReportMetric(float64(wire), "wire-bytes/op")
}

// benchTrainDist4w runs one 4-worker data-parallel training job end to end
// per iteration — the EXPERIMENTS scaling row divides this against a
// 1-worker run of the same spec. loss-tail pins that the measured workload
// actually learns; comm-mbytes is the modeled ring all-reduce traffic.
func benchTrainDist4w(b *testing.B) {
	r := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 4)
	defer r.Close()
	req := &api.JobRequest{
		Kind: api.KindTrainDist,
		TrainDist: &api.TrainDistSpec{
			Source:        api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:     130,
			Workers:       4,
			Rounds:        12,
			BatchPerRound: 16,
			Net:           &api.NetConfig{FOV: [3]int{3, 7, 7}, Features: 6, MoveStep: [3]int{1, 2, 2}},
			NetSeed:       7,
			SampleSeed:    7,
		},
	}
	var res api.TrainDistResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := r.Submit(req, "")
		if err != nil {
			b.Fatal(err)
		}
		final := waitTerminal(r, st.ID)
		if final.State != api.StateSucceeded {
			b.Fatalf("train_dist state %s: %s", final.State, final.Error)
		}
		raw, _, _ := r.Result(st.ID)
		if err := json.Unmarshal(raw, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LossTail, "loss-tail")
	b.ReportMetric(res.CommBytes/1e6, "comm-mbytes")
}

// benchSweepGrid8 fans an 8-candidate hyperparameter grid through the fair
// queue per iteration (no early stop, so the workload is fixed); the
// EXPERIMENTS sweep-throughput row is 8 candidates divided by ns/op.
func benchSweepGrid8(b *testing.B) {
	r := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 4)
	defer r.Close()
	req := &api.JobRequest{
		Kind: api.KindSweep,
		Sweep: &api.SweepSpec{
			Source:        api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:     130,
			TrainFraction: 0.67,
			LRs:           []float32{0.01, 0.03},
			Momentums:     []float32{0.9},
			Features:      []int{4, 6},
			Modules:       []int{1, 2},
			TrainSteps:    []int{30},
			Parallel:      4,
			Seed:          5,
		},
	}
	var res api.SweepResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := r.Submit(req, "")
		if err != nil {
			b.Fatal(err)
		}
		final := waitTerminal(r, st.ID)
		if final.State != api.StateSucceeded {
			b.Fatalf("sweep state %s: %s", final.State, final.Error)
		}
		raw, _, _ := r.Result(st.ID)
		if err := json.Unmarshal(raw, &res); err != nil {
			b.Fatal(err)
		}
		if res.Candidates != 8 {
			b.Fatalf("sweep expanded %d candidates, want 8", res.Candidates)
		}
	}
	b.ReportMetric(float64(res.Candidates), "candidates")
	b.ReportMetric(res.Best.F1, "best-f1")
}

// benchPipeline runs a pipeline job end to end per iteration through an
// in-process runner and reports its segmentation step count so the
// overlapped/sequential entries are verifiably the same workload.
func benchPipeline(b *testing.B, req *api.JobRequest) {
	r := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 4)
	defer r.Close()
	var segSteps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := r.Submit(req, "")
		if err != nil {
			b.Fatal(err)
		}
		final := waitTerminal(r, st.ID)
		if final.State != api.StateSucceeded {
			b.Fatalf("pipeline state %s: %s", final.State, final.Error)
		}
		raw, _, _ := r.Result(st.ID)
		var res api.PipelineResult
		if err := json.Unmarshal(raw, &res); err != nil {
			b.Fatal(err)
		}
		segSteps = float64(res.SegSteps)
	}
	b.ReportMetric(segSteps, "seg-steps")
}

func waitTerminal(r *service.Runner, id string) api.JobStatus {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for {
		st, ok := r.Status(id)
		if ok && st.State.Terminal() {
			return st
		}
		select {
		case <-ctx.Done():
			return st
		case <-time.After(2 * time.Millisecond):
		}
	}
}
