// Command connectwf runs the Section III case study end to end: the 4-step
// CONNECT object-segmentation workflow (THREDDS download -> FFN training ->
// distributed multi-GPU inference -> visualization) on a simulated Nautilus
// cluster, with the real FFN/CONNECT computation embedded at experiment
// scale.
//
//	connectwf -plan            print the workflow step graph (Fig 2) and exit
//	connectwf -scale N         slice the archive to N granules (default 2000)
//	connectwf -full            run at the paper's full 112,249-granule scale
//	connectwf -real=false      skip the real FFN/CONNECT computation
//	connectwf -ui              serve the PPoDS status page while running
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chaseci/internal/core"
	"chaseci/internal/merra"
	"chaseci/internal/workflow"
)

func main() {
	var (
		plan  = flag.Bool("plan", false, "print the workflow plan and exit")
		scale = flag.Int("scale", 2000, "archive granules to process")
		full  = flag.Bool("full", false, "use the full 112,249-granule archive")
		real  = flag.Bool("real", true, "run the real FFN/CONNECT compute path")
		ui    = flag.Bool("ui", false, "serve the web status page (Section VI) while running")
	)
	flag.Parse()

	cfg := core.PaperConnectConfig()
	if !*full {
		cfg.Archive = merra.MERRA2().Slice(*scale)
	}
	if *real {
		cfg.Real = core.DefaultRealCompute()
	}

	eco := core.BuildNautilus(core.DefaultNautilus())
	run, err := eco.NewConnectWorkflow(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "connectwf:", err)
		os.Exit(1)
	}

	if *plan {
		fmt.Print(run.Workflow.RenderPlan())
		return
	}

	fmt.Printf("CONNECT workflow: %d granules (%.1f GB subset), %d download workers, %d inference GPUs\n\n",
		cfg.Archive.NumFiles(), cfg.Archive.TotalBytes(true)/1e9,
		cfg.DownloadWorkers, cfg.InferenceGPUs)

	var status *workflow.StatusServer
	if *ui {
		var err error
		status, err = workflow.ServeStatus(run.Workflow, "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "connectwf:", err)
			os.Exit(1)
		}
		defer status.Close()
		fmt.Printf("PPoDS status page: http://%s/\n\n", status.Addr())
	}

	start := time.Now()
	if err := run.Workflow.Run(nil); err != nil {
		fmt.Fprintln(os.Stderr, "connectwf:", err)
		os.Exit(1)
	}
	for !run.Workflow.Done() {
		eco.Clock.RunFor(5 * time.Minute)
		if status != nil {
			status.Update(run.Workflow)
		}
	}
	if status != nil {
		status.Update(run.Workflow)
	}
	report := run.Workflow.Report()
	if run.Workflow.Failed() {
		fmt.Fprintln(os.Stderr, "connectwf: workflow failed")
		os.Exit(1)
	}
	fmt.Printf("completed %v of cluster time in %v wall time\n\n",
		eco.Clock.Now().Round(time.Second), time.Since(start).Round(time.Millisecond))

	fmt.Println(report.RenderTable())
	for _, s := range report.Steps {
		fmt.Printf("  %-14s %-10s %v\n", s.Name, s.Status, s.Duration.Round(time.Second))
	}

	if rr := run.RealResult; rr != nil {
		fmt.Println("\nreal-compute results (pure-Go FFN on synthetic MERRA-2 IVT):")
		fmt.Printf("  training loss %.3f -> %.3f over %d SGD steps\n",
			rr.TrainLossHead, rr.TrainLossTail, cfg.Real.TrainSteps)
		fmt.Printf("  segmentation precision %.2f, recall %.2f, IoU %.2f\n",
			rr.Precision, rr.Recall, rr.IoU)
		fmt.Printf("  FFN found %d objects; CONNECT baseline found %d\n",
			rr.FFNObjects, rr.CONNObjects)
		fmt.Printf("  model artifact: %d bytes in ceph://connect-models/ffn-model.bin\n", rr.ModelBytes)
		fmt.Println("\n" + rr.ReportText)
	}
}
