// Command nautilus boots a simulated Nautilus cluster and prints its state:
// nodes and GPU inventory per site, Ceph storage health, network topology,
// and (with -storage) a storage placement and self-healing demonstration, or
// (with -failover) a node-loss rescheduling demonstration.
package main

import (
	"flag"
	"fmt"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/core"
)

func main() {
	var (
		storage  = flag.Bool("storage", false, "demonstrate Ceph placement and healing")
		failover = flag.Bool("failover", false, "demonstrate node-loss pod rescheduling")
	)
	flag.Parse()

	eco := core.BuildNautilus(core.DefaultNautilus())
	fmt.Println("Nautilus — simulated CHASE-CI hyperconverged cluster")
	fmt.Printf("  %d nodes, %d GPUs, %.1f PB raw storage, %d network sites\n\n",
		len(eco.Cluster.Nodes()), eco.TotalGPUs(), eco.StorageBytes()/1e15,
		len(eco.Config.Sites))

	fmt.Print(eco.Cluster.FormatNodes())
	h := eco.Storage.HealthReport()
	fmt.Printf("\n  ceph: %d OSDs, %d/%d PGs active, %dx replication\n",
		len(eco.Storage.OSDs()), h.PGsActive, h.PGsTotal, eco.Storage.Replicas())

	if *storage {
		demoStorage(eco)
	}
	if *failover {
		demoFailover(eco)
	}
}

func demoStorage(eco *core.Ecosystem) {
	fmt.Println("\n-- storage demo: place 100 granules, fail an OSD, heal --")
	for i := 0; i < 100; i++ {
		eco.Storage.Put("demo", fmt.Sprintf("g-%03d", i), 1e9, nil)
	}
	fmt.Printf("  stored %.0f GB logical (%.0f GB raw)\n",
		eco.Storage.BucketSize("demo")/1e9, eco.Storage.TotalUsed()/1e9)
	recov, _ := eco.Storage.FailOSD("calit2-osd-01")
	fmt.Printf("  killed calit2-osd-01; %.0f GB degraded\n", recov/1e9)
	start := eco.Clock.Now()
	eco.Clock.RunWhile(func() bool { return eco.Storage.Recovering() })
	fmt.Printf("  re-replication completed in %v of cluster time; health OK=%v\n",
		(eco.Clock.Now() - start).Round(time.Second), eco.Storage.HealthReport().OK())
}

func demoFailover(eco *core.Ecosystem) {
	fmt.Println("\n-- failover demo: 8 long-running GPU pods, then kill a node --")
	eco.Cluster.CreateNamespace("demo", nil)
	job, err := eco.Cluster.CreateJob(cluster.JobSpec{
		Name: "train", Namespace: "demo", Parallelism: 8,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 2, Memory: 8e9, GPUs: 2},
			Run: func(pc *cluster.PodCtx) {
				pc.After(2*time.Hour, pc.Succeed)
			},
		},
	})
	if err != nil {
		panic(err)
	}
	eco.Clock.RunFor(time.Minute)
	var victim string
	for _, n := range eco.Cluster.Nodes() {
		if n.Allocated().GPUs > 0 {
			victim = n.Name
			break
		}
	}
	fmt.Printf("  killing node %s with %d pods on it\n",
		victim, eco.Cluster.Node(victim).Allocated().GPUs/2)
	eco.Cluster.KillNode(victim)
	eco.Clock.Run()
	fmt.Printf("  job done=%v: %d succeeded, %d pods created (respawns after node loss)\n",
		job.Done(), job.Succeeded(), len(job.Pods()))
	fmt.Println("\n  event log tail:")
	events := eco.Cluster.Events()
	for _, e := range events[len(events)-6:] {
		fmt.Printf("   %8s %-14s %-24s %s\n", e.At.Round(time.Second), e.Kind, e.Object, e.Message)
	}
}
