package ffn

import (
	"chaseci/internal/tensor"
)

// Volume is a simple (D, H, W) float32 volume used for whole-dataset images,
// label masks, and inference canvases. D is the time axis for the IVT
// workload.
type Volume struct {
	D, H, W int
	Data    []float32
}

// NewVolume allocates a zero volume.
func NewVolume(d, h, w int) *Volume {
	return &Volume{D: d, H: h, W: w, Data: make([]float32, d*h*w)}
}

// At returns the voxel at (z, y, x).
func (v *Volume) At(z, y, x int) float32 { return v.Data[(z*v.H+y)*v.W+x] }

// Set writes the voxel at (z, y, x).
func (v *Volume) Set(z, y, x int, val float32) { v.Data[(z*v.H+y)*v.W+x] = val }

// Size returns the voxel count.
func (v *Volume) Size() int { return v.D * v.H * v.W }

// Normalize scales the volume to zero mean, unit variance in place and
// returns it (standard FFN input conditioning).
func (v *Volume) Normalize() *Volume {
	n := float64(len(v.Data))
	if n == 0 {
		return v
	}
	var sum, sumsq float64
	for _, x := range v.Data {
		sum += float64(x)
		sumsq += float64(x) * float64(x)
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	std := 1.0
	if variance > 1e-12 {
		std = sqrt(variance)
	}
	for i := range v.Data {
		v.Data[i] = float32((float64(v.Data[i]) - mean) / std)
	}
	return v
}

func sqrt(x float64) float64 {
	// Newton iterations; avoids importing math twice for one call site and
	// keeps Volume free of float64 surprises.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// extractFOV copies the FOV centered at (cz, cy, cx) from a volume into a
// (1,D,H,W) tensor. The center must be in-bounds for the full FOV.
func extractFOV(v *Volume, fov [3]int, cz, cy, cx int) *tensor.Tensor {
	d, h, w := fov[0], fov[1], fov[2]
	out := tensor.New(1, d, h, w)
	z0, y0, x0 := cz-d/2, cy-h/2, cx-w/2
	i := 0
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			base := ((z0+z)*v.H + y0 + y) * v.W
			copy(out.Data[i:i+w], v.Data[base+x0:base+x0+w])
			i += w
		}
	}
	return out
}

// writeFOV stores a (1,D,H,W) tensor back into the canvas at the FOV
// position.
func writeFOV(v *Volume, t *tensor.Tensor, cz, cy, cx int) {
	d, h, w := t.Shape[1], t.Shape[2], t.Shape[3]
	z0, y0, x0 := cz-d/2, cy-h/2, cx-w/2
	i := 0
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			base := ((z0+z)*v.H + y0 + y) * v.W
			copy(v.Data[base+x0:base+x0+w], t.Data[i:i+w])
			i += w
		}
	}
}

// InferenceStats summarizes one flood-fill run.
type InferenceStats struct {
	Steps       int // network applications
	Moves       int // FOV relocations enqueued
	MaskVoxels  int // voxels above SegmentProb in the final mask
	SeedsUsed   int
	VoxelsTotal int
}

// Segment runs flood-filling inference over an image volume. Seeds are
// (z, y, x) starting points (typically local IVT maxima); each flood fills
// outward until no face of the FOV exceeds MoveProb. maxSteps bounds total
// network applications (0 means no bound). The result is a binary mask
// volume and run statistics.
func (n *Network) Segment(image *Volume, seeds [][3]int, maxSteps int) (*Volume, InferenceStats) {
	cfg := n.cfg
	canvas := NewVolume(image.D, image.H, image.W)
	padLogit := logit(cfg.PadProb)
	for i := range canvas.Data {
		canvas.Data[i] = padLogit
	}
	moveLogit := logit(cfg.MoveProb)
	segLogit := logit(cfg.SegmentProb)

	stats := InferenceStats{VoxelsTotal: image.Size()}
	visited := make(map[int]bool)
	keyOf := func(z, y, x int) int { return (z*image.H+y)*image.W + x }
	inBounds := func(z, y, x int) bool {
		return z-cfg.FOV[0]/2 >= 0 && z+cfg.FOV[0]/2 < image.D &&
			y-cfg.FOV[1]/2 >= 0 && y+cfg.FOV[1]/2 < image.H &&
			x-cfg.FOV[2]/2 >= 0 && x+cfg.FOV[2]/2 < image.W
	}

	type pos struct{ z, y, x int }
	var queue []pos
	for _, s := range seeds {
		if inBounds(s[0], s[1], s[2]) && !visited[keyOf(s[0], s[1], s[2])] {
			queue = append(queue, pos{s[0], s[1], s[2]})
			visited[keyOf(s[0], s[1], s[2])] = true
			canvas.Set(s[0], s[1], s[2], logit(cfg.SeedProb))
			stats.SeedsUsed++
		}
	}

	for len(queue) > 0 {
		if maxSteps > 0 && stats.Steps >= maxSteps {
			break
		}
		p := queue[0]
		queue = queue[1:]
		img := extractFOV(image, cfg.FOV, p.z, p.y, p.x)
		// Each application is conditioned on a fresh seed POM (pad
		// probability everywhere, seed probability at the center) so the
		// network sees exactly the input distribution it was trained on;
		// the canvas serves as the aggregation buffer across FOVs. This is
		// the single-step simplification of FFN's recurrent POM, documented
		// in DESIGN.md.
		out := n.Apply(img, n.SeedPOM())
		// Merge by element-wise max, and only within the central core of the
		// FOV: zero-padded convolution borders make edge predictions
		// unreliable, and strong object evidence should accumulate rather
		// than saturate across overlapping applications.
		merged := extractFOV(canvas, cfg.FOV, p.z, p.y, p.x)
		mz, my, mx := cfg.FOV[0]/4, cfg.FOV[1]/4, cfg.FOV[2]/4
		for z := mz; z < cfg.FOV[0]-mz; z++ {
			for y := my; y < cfg.FOV[1]-my; y++ {
				for x := mx; x < cfg.FOV[2]-mx; x++ {
					i := (z*cfg.FOV[1]+y)*cfg.FOV[2] + x
					if out.Data[i] > merged.Data[i] {
						merged.Data[i] = out.Data[i]
					}
				}
			}
		}
		writeFOV(canvas, merged, p.z, p.y, p.x)
		stats.Steps++

		// Probe the raw network output at the six move-target offsets
		// (center +/- MoveStep along each axis); these sit inside the
		// reliable core of the FOV prediction.
		steps := [][3]int{
			{-cfg.MoveStep[0], 0, 0}, {cfg.MoveStep[0], 0, 0},
			{0, -cfg.MoveStep[1], 0}, {0, cfg.MoveStep[1], 0},
			{0, 0, -cfg.MoveStep[2]}, {0, 0, cfg.MoveStep[2]},
		}
		for _, off := range steps {
			fz := cfg.FOV[0]/2 + off[0]
			fy := cfg.FOV[1]/2 + off[1]
			fx := cfg.FOV[2]/2 + off[2]
			v := out.Data[(fz*cfg.FOV[1]+fy)*cfg.FOV[2]+fx]
			if v < moveLogit {
				continue
			}
			nz, ny, nx := p.z+off[0], p.y+off[1], p.x+off[2]
			if !inBounds(nz, ny, nx) || visited[keyOf(nz, ny, nx)] {
				continue
			}
			visited[keyOf(nz, ny, nx)] = true
			queue = append(queue, pos{nz, ny, nx})
			stats.Moves++
		}
	}

	// Threshold the canvas into a binary mask.
	mask := NewVolume(image.D, image.H, image.W)
	for i, v := range canvas.Data {
		if v >= segLogit {
			mask.Data[i] = 1
			stats.MaskVoxels++
		}
	}
	return mask, stats
}

// GridSeeds produces seed positions on a regular lattice wherever the image
// exceeds threshold — the seed policy used when no object detector is
// available.
func GridSeeds(image *Volume, fov [3]int, stride [3]int, threshold float32) [][3]int {
	var out [][3]int
	for z := fov[0] / 2; z+fov[0]/2 < image.D; z += stride[0] {
		for y := fov[1] / 2; y+fov[1]/2 < image.H; y += stride[1] {
			for x := fov[2] / 2; x+fov[2]/2 < image.W; x += stride[2] {
				if image.At(z, y, x) >= threshold {
					out = append(out, [3]int{z, y, x})
				}
			}
		}
	}
	return out
}
