package ffn

import (
	"context"
	"math"
	"sync/atomic"

	"chaseci/internal/parallel"
	"chaseci/internal/tensor"
)

// Volume is a simple (D, H, W) float32 volume used for whole-dataset images,
// label masks, and inference canvases. D is the time axis for the IVT
// workload.
type Volume struct {
	D, H, W int
	Data    []float32
}

// NewVolume allocates a zero volume.
func NewVolume(d, h, w int) *Volume {
	return &Volume{D: d, H: h, W: w, Data: make([]float32, d*h*w)}
}

// At returns the voxel at (z, y, x).
func (v *Volume) At(z, y, x int) float32 { return v.Data[(z*v.H+y)*v.W+x] }

// Set writes the voxel at (z, y, x).
func (v *Volume) Set(z, y, x int, val float32) { v.Data[(z*v.H+y)*v.W+x] = val }

// Size returns the voxel count.
func (v *Volume) Size() int { return v.D * v.H * v.W }

// Normalize scales the volume to zero mean, unit variance in place and
// returns it (standard FFN input conditioning).
func (v *Volume) Normalize() *Volume {
	n := float64(len(v.Data))
	if n == 0 {
		return v
	}
	var sum, sumsq float64
	for _, x := range v.Data {
		sum += float64(x)
		sumsq += float64(x) * float64(x)
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	std := 1.0
	if variance > 1e-12 {
		std = math.Sqrt(variance)
	}
	for i := range v.Data {
		v.Data[i] = float32((float64(v.Data[i]) - mean) / std)
	}
	return v
}

// extractFOV copies the FOV centered at (cz, cy, cx) from a volume into a
// (1,D,H,W) tensor. The center must be in-bounds for the full FOV.
func extractFOV(v *Volume, fov [3]int, cz, cy, cx int) *tensor.Tensor {
	out := tensor.New(1, fov[0], fov[1], fov[2])
	extractFOVInto(out, v, fov, cz, cy, cx)
	return out
}

// extractFOVInto copies the FOV centered at (cz, cy, cx) into the caller's
// (1,D,H,W) tensor, allocating nothing.
func extractFOVInto(out *tensor.Tensor, v *Volume, fov [3]int, cz, cy, cx int) {
	extractFOVIntoSlice(out.Data, v, fov, cz, cy, cx)
}

// extractFOVIntoSlice copies the FOV centered at (cz, cy, cx) into dst
// (row-major (D,H,W) layout) — the shared core of the tensor-target and
// batched-slot extract paths.
func extractFOVIntoSlice(dst []float32, v *Volume, fov [3]int, cz, cy, cx int) {
	d, h, w := fov[0], fov[1], fov[2]
	z0, y0, x0 := cz-d/2, cy-h/2, cx-w/2
	i := 0
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			base := ((z0+z)*v.H + y0 + y) * v.W
			copy(dst[i:i+w], v.Data[base+x0:base+x0+w])
			i += w
		}
	}
}

// InferenceStats summarizes one flood-fill run.
type InferenceStats struct {
	Steps       int // network applications
	Moves       int // FOV relocations enqueued
	MaskVoxels  int // voxels above SegmentProb in the final mask
	SeedsUsed   int
	VoxelsTotal int
}

// inferScratch holds one flood-fill worker's reusable buffers: the FOV
// image extract, the packed 2-channel input, the activation cache, and the
// output logits. One scratch serves one goroutine.
type inferScratch struct {
	cache *fwdCache
	pom   *tensor.Tensor
	img   *tensor.Tensor // (1,D,H,W) FOV extract
	in    *tensor.Tensor // (2,D,H,W) packed input
	out   *tensor.Tensor // (1,D,H,W) output logits
}

func (n *Network) newInferScratch() *inferScratch {
	d, h, w := n.cfg.FOV[0], n.cfg.FOV[1], n.cfg.FOV[2]
	return &inferScratch{
		cache: n.newCache(),
		pom:   n.SeedPOM(),
		img:   tensor.New(1, d, h, w),
		in:    tensor.New(2, d, h, w),
		out:   tensor.New(1, d, h, w),
	}
}

// applyFOV runs one network application on the FOV centered at (cz, cy, cx),
// reusing the scratch buffers. The returned tensor is s.out. Each
// application is conditioned on a fresh seed POM (pad probability
// everywhere, seed probability at the center) so the network sees exactly
// the input distribution it was trained on; the canvas serves as the
// aggregation buffer across FOVs. This is the single-step simplification of
// FFN's recurrent POM, documented in DESIGN.md.
func (n *Network) applyFOV(s *inferScratch, image *Volume, cz, cy, cx int) *tensor.Tensor {
	extractFOVInto(s.img, image, n.cfg.FOV, cz, cy, cx)
	packInputInto(s.in, s.img, s.pom)
	n.forwardInto(s.cache, s.in, s.out)
	return s.out
}

// mergeCore max-merges the core of an output FOV centered at p into canvas.
// Only the central core of the FOV is merged: zero-padded convolution
// borders make edge predictions unreliable, and strong object evidence
// should accumulate rather than saturate across overlapping applications.
// Element-wise max is commutative and associative, so the merged canvas is
// independent of application order — the property the parallel path relies
// on for determinism.
func mergeCore(canvas []float32, H, W int, fov [3]int, out []float32, pz, py, px int) {
	mz, my, mx := fov[0]/4, fov[1]/4, fov[2]/4
	z0, y0, x0 := pz-fov[0]/2, py-fov[1]/2, px-fov[2]/2
	for z := mz; z < fov[0]-mz; z++ {
		for y := my; y < fov[1]-my; y++ {
			base := ((z0+z)*H + y0 + y) * W
			row := out[(z*fov[1]+y)*fov[2]:]
			for x := mx; x < fov[2]-mx; x++ {
				if v := row[x]; v > canvas[base+x0+x] {
					canvas[base+x0+x] = v
				}
			}
		}
	}
}

type fovPos struct{ z, y, x int }

// fovInBounds reports whether the full FOV centered at (z, y, x) fits
// inside the volume — the single definition used for seed acceptance and
// flood expansion alike.
func (cfg *Config) fovInBounds(v *Volume, z, y, x int) bool {
	return z-cfg.FOV[0]/2 >= 0 && z+cfg.FOV[0]/2 < v.D &&
		y-cfg.FOV[1]/2 >= 0 && y+cfg.FOV[1]/2 < v.H &&
		x-cfg.FOV[2]/2 >= 0 && x+cfg.FOV[2]/2 < v.W
}

// Segment runs flood-filling inference over an image volume. Seeds are
// (z, y, x) starting points (typically local IVT maxima); each flood fills
// outward until no face of the FOV exceeds MoveProb. maxSteps bounds total
// network applications (0 means no bound). The result is a binary mask
// volume and run statistics.
//
// With maxSteps == 0 and more than one worker (parallel.Workers()), seeds
// are sharded across workers: floods claim FOV centers through a shared
// atomic visited array (each center is expanded exactly once, as in the
// serial multi-source BFS) and merge into worker-private canvases that are
// max-reduced afterwards. Workers drain ready centers in batches of
// Config.FloodBatch through the batched forward path (weights stream once
// per batch, activations fused into the conv writes). Because each
// application's output depends only on the image and the center — never on
// the canvas — the mask and statistics are identical to the serial per-FOV
// path at every batch size and worker count.
func (n *Network) Segment(image *Volume, seeds [][3]int, maxSteps int) (*Volume, InferenceStats) {
	mask, stats, _ := n.SegmentCtx(context.Background(), image, seeds, maxSteps, nil)
	return mask, stats
}

// floodProgress counts network applications across all flood workers and
// fires the user callback every progressEvery applications. A nil
// *floodProgress disables both, costing the flood loops nothing.
type floodProgress struct {
	steps atomic.Int64
	fn    func(steps int)
}

// progressEvery is the callback cadence in network applications; a power of
// two so the hot-loop check is a mask.
const progressEvery = 32

func (p *floodProgress) bump() {
	if p == nil {
		return
	}
	if n := p.steps.Add(1); n&(progressEvery-1) == 0 {
		p.fn(int(n))
	}
}

// SegmentCtx is the context-aware Segment: cancellation is checked before
// every network application in the serial flood and before every batch in
// the batched flood, so a cancelled context stops the run within one FOV
// batch (FloodBatch applications) per worker.
// On cancellation the partial canvas is still thresholded and returned with
// the statistics accumulated so far and ctx.Err(). progress (may be nil) is
// called with the running application count every progressEvery
// applications; under the sharded flood it fires concurrently from multiple
// workers, so the callback must be safe for concurrent use. With a
// background context the mask and statistics are identical to Segment's.
func (n *Network) SegmentCtx(ctx context.Context, image *Volume, seeds [][3]int, maxSteps int, progress func(steps int)) (*Volume, InferenceStats, error) {
	cfg := n.cfg
	stats := InferenceStats{VoxelsTotal: image.Size()}
	keyOf := func(z, y, x int) int { return (z*image.H+y)*image.W + x }
	var prog *floodProgress
	if progress != nil {
		prog = &floodProgress{fn: progress}
	}

	// Accept in-bounds, deduplicated seeds; claimed doubles as the visited
	// set for the flood (1 = already claimed by some flood).
	claimed := make([]int32, image.Size())
	var accepted []fovPos
	for _, s := range seeds {
		if cfg.fovInBounds(image, s[0], s[1], s[2]) && claimed[keyOf(s[0], s[1], s[2])] == 0 {
			claimed[keyOf(s[0], s[1], s[2])] = 1
			accepted = append(accepted, fovPos{s[0], s[1], s[2]})
			stats.SeedsUsed++
		}
	}

	moveLogit := logit(cfg.MoveProb)
	padLogit := logit(cfg.PadProb)
	seedLogit := logit(cfg.SeedProb)

	// Build the quantized weight cache before any fan-out: flood workers
	// share it read-only.
	if n.int8Inference() {
		n.quantized()
	}

	canvas := NewVolume(image.D, image.H, image.W)
	for i := range canvas.Data {
		canvas.Data[i] = padLogit
	}
	for _, s := range accepted {
		canvas.Data[keyOf(s.z, s.y, s.x)] = seedLogit
	}

	shards := parallel.Ranges(len(accepted))
	batch := cfg.effectiveFloodBatch()
	if maxSteps > 0 {
		// The bounded-step flood stays per-FOV FIFO, so which applications
		// spend the budget is unchanged by the batch setting.
		n.floodSerial(ctx, image, accepted, claimed, canvas.Data, moveLogit, maxSteps, &stats, prog)
	} else if len(shards) <= 1 {
		if batch > 1 {
			n.floodShardBatch(ctx, image, accepted, claimed, canvas.Data, moveLogit, &stats, prog)
		} else {
			n.floodSerial(ctx, image, accepted, claimed, canvas.Data, moveLogit, 0, &stats, prog)
		}
	} else {
		// Worker-private canvases, max-reduced in shard order afterwards
		// (order is irrelevant for max, but keep it fixed anyway).
		canvases := make([][]float32, len(shards))
		shardStats := make([]InferenceStats, len(shards))
		parallel.For(len(shards), func(s0, s1 int) {
			for k := s0; k < s1; k++ {
				wc := make([]float32, image.Size())
				for i := range wc {
					wc[i] = padLogit
				}
				canvases[k] = wc
				if batch > 1 {
					n.floodShardBatch(ctx, image, accepted[shards[k][0]:shards[k][1]], claimed, wc, moveLogit, &shardStats[k], prog)
				} else {
					n.floodShard(ctx, image, accepted[shards[k][0]:shards[k][1]], claimed, wc, moveLogit, &shardStats[k], prog)
				}
			}
		})
		for k := range canvases {
			for i, v := range canvases[k] {
				if v > canvas.Data[i] {
					canvas.Data[i] = v
				}
			}
			stats.Steps += shardStats[k].Steps
			stats.Moves += shardStats[k].Moves
		}
	}

	// Report the final application count: the every-N cadence above skips
	// the tail (and short floods entirely), and the terminal progress
	// should agree with the returned statistics.
	if prog != nil {
		progress(int(prog.steps.Load()))
	}

	// Threshold the canvas into a binary mask. On cancellation this reports
	// the partial flood: whatever cores were merged before the stop.
	segLogit := logit(cfg.SegmentProb)
	mask := NewVolume(image.D, image.H, image.W)
	for i, v := range canvas.Data {
		if v >= segLogit {
			mask.Data[i] = 1
			stats.MaskVoxels++
		}
	}
	return mask, stats, ctx.Err()
}

// moveOffsets returns the six move-target displacements (center +/-
// MoveStep along each axis); these sit inside the reliable core of the FOV
// prediction.
func (cfg *Config) moveOffsets() [6][3]int {
	return [6][3]int{
		{-cfg.MoveStep[0], 0, 0}, {cfg.MoveStep[0], 0, 0},
		{0, -cfg.MoveStep[1], 0}, {0, cfg.MoveStep[1], 0},
		{0, 0, -cfg.MoveStep[2]}, {0, 0, cfg.MoveStep[2]},
	}
}

// floodSerial is the single-goroutine flood: a multi-source BFS over FOV
// centers with an optional step budget and cooperative cancellation checked
// before every application.
func (n *Network) floodSerial(ctx context.Context, image *Volume, seeds []fovPos, claimed []int32, canvas []float32, moveLogit float32, maxSteps int, stats *InferenceStats, prog *floodProgress) {
	cfg := n.cfg
	ap := n.newFOVApplier()
	defer ap.release()
	offsets := cfg.moveOffsets()
	queue := append([]fovPos(nil), seeds...)
	for len(queue) > 0 {
		if maxSteps > 0 && stats.Steps >= maxSteps {
			break
		}
		if ctx.Err() != nil {
			return
		}
		p := queue[0]
		queue = queue[1:]
		out := ap.apply(image, p)
		mergeCore(canvas, image.H, image.W, cfg.FOV, out, p.z, p.y, p.x)
		stats.Steps++
		prog.bump()

		for _, off := range offsets {
			fz := cfg.FOV[0]/2 + off[0]
			fy := cfg.FOV[1]/2 + off[1]
			fx := cfg.FOV[2]/2 + off[2]
			v := out[(fz*cfg.FOV[1]+fy)*cfg.FOV[2]+fx]
			if v < moveLogit {
				continue
			}
			nz, ny, nx := p.z+off[0], p.y+off[1], p.x+off[2]
			if !cfg.fovInBounds(image, nz, ny, nx) {
				continue
			}
			key := (nz*image.H+ny)*image.W + nx
			if claimed[key] != 0 {
				continue
			}
			claimed[key] = 1
			queue = append(queue, fovPos{nz, ny, nx})
			stats.Moves++
		}
	}
}

// floodShard floods one worker's seed shard, claiming centers through the
// shared atomic visited array and merging into a worker-private canvas.
// Cancellation is checked before every application, as in floodSerial.
func (n *Network) floodShard(ctx context.Context, image *Volume, seeds []fovPos, claimed []int32, canvas []float32, moveLogit float32, stats *InferenceStats, prog *floodProgress) {
	cfg := n.cfg
	ap := n.newFOVApplier()
	defer ap.release()
	offsets := cfg.moveOffsets()
	queue := append([]fovPos(nil), seeds...)
	for len(queue) > 0 {
		if ctx.Err() != nil {
			return
		}
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		out := ap.apply(image, p)
		mergeCore(canvas, image.H, image.W, cfg.FOV, out, p.z, p.y, p.x)
		stats.Steps++
		prog.bump()

		for _, off := range offsets {
			fz := cfg.FOV[0]/2 + off[0]
			fy := cfg.FOV[1]/2 + off[1]
			fx := cfg.FOV[2]/2 + off[2]
			v := out[(fz*cfg.FOV[1]+fy)*cfg.FOV[2]+fx]
			if v < moveLogit {
				continue
			}
			nz, ny, nx := p.z+off[0], p.y+off[1], p.x+off[2]
			if !cfg.fovInBounds(image, nz, ny, nx) {
				continue
			}
			key := (nz*image.H+ny)*image.W + nx
			if !atomic.CompareAndSwapInt32(&claimed[key], 0, 1) {
				continue
			}
			queue = append(queue, fovPos{nz, ny, nx})
			stats.Moves++
		}
	}
}

// GridSeeds produces seed positions on a regular lattice wherever the image
// exceeds threshold — the seed policy used when no object detector is
// available.
func GridSeeds(image *Volume, fov [3]int, stride [3]int, threshold float32) [][3]int {
	var out [][3]int
	for z := fov[0] / 2; z+fov[0]/2 < image.D; z += stride[0] {
		for y := fov[1] / 2; y+fov[1]/2 < image.H; y += stride[1] {
			for x := fov[2] / 2; x+fov[2]/2 < image.W; x += stride[2] {
				if image.At(z, y, x) >= threshold {
					out = append(out, [3]int{z, y, x})
				}
			}
		}
	}
	return out
}
