package ffn

import (
	"errors"

	"chaseci/internal/tensor"
)

// Data-parallel training support for the Section III-E2 extension
// ("Tensorflow does support distributed training and we want to take
// advantage of this"): workers compute gradients on their own shards, the
// gradients are averaged (the all-reduce), and every replica applies the
// same update. ComputeGrads/AverageGrads/ApplyGrads decompose TrainStep so
// a coordinator — core's distributed trainer, running on the simulated
// ReplicaSet — can drive the cycle.

// ParamGrads is an opaque gradient bundle for one network architecture.
type ParamGrads struct {
	g     *grads
	count int
}

// ComputeGrads runs forward+backward on one FOV example and returns the BCE
// loss and the parameter gradients, without touching the weights.
func (n *Network) ComputeGrads(image, label *tensor.Tensor) (float64, *ParamGrads) {
	pom := n.SeedPOM()
	in := packInput(image, pom)
	logits, cache := n.forward(in)
	loss, gradLogits := tensor.LogitBCE(logits, label, nil)
	return loss, &ParamGrads{g: n.backward(cache, gradLogits), count: 1}
}

// ErrNoGrads indicates AverageGrads was called with an empty slice.
var ErrNoGrads = errors.New("ffn: no gradients to average")

// AverageGrads combines per-worker gradients into their mean — the
// all-reduce result every worker applies. The inputs must come from
// networks with identical architecture.
func AverageGrads(list []*ParamGrads) (*ParamGrads, error) {
	if len(list) == 0 {
		return nil, ErrNoGrads
	}
	sum := list[0].clone()
	for _, pg := range list[1:] {
		sum.add(pg)
	}
	scale := float32(1) / float32(sum.count)
	sum.g.wIn.Scale(scale)
	scaleBias(sum.g.bIn, scale)
	for _, m := range sum.g.mods {
		m.w1.Scale(scale)
		scaleBias(m.b1, scale)
		m.w2.Scale(scale)
		scaleBias(m.b2, scale)
	}
	sum.g.wOut.Scale(scale)
	scaleBias(sum.g.bOut, scale)
	sum.count = 1
	return sum, nil
}

func (pg *ParamGrads) clone() *ParamGrads {
	out := &ParamGrads{count: pg.count, g: &grads{
		wIn:  pg.g.wIn.Clone(),
		bIn:  append([]float32(nil), pg.g.bIn...),
		wOut: pg.g.wOut.Clone(),
		bOut: append([]float32(nil), pg.g.bOut...),
	}}
	for _, m := range pg.g.mods {
		out.g.mods = append(out.g.mods, &module{
			w1: m.w1.Clone(), b1: append([]float32(nil), m.b1...),
			w2: m.w2.Clone(), b2: append([]float32(nil), m.b2...),
		})
	}
	return out
}

func (pg *ParamGrads) add(o *ParamGrads) {
	pg.count += o.count
	pg.g.wIn.AddInPlace(o.g.wIn)
	addBias(pg.g.bIn, o.g.bIn)
	for i, m := range pg.g.mods {
		m.w1.AddInPlace(o.g.mods[i].w1)
		addBias(m.b1, o.g.mods[i].b1)
		m.w2.AddInPlace(o.g.mods[i].w2)
		addBias(m.b2, o.g.mods[i].b2)
	}
	pg.g.wOut.AddInPlace(o.g.wOut)
	addBias(pg.g.bOut, o.g.bOut)
}

func addBias(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func scaleBias(b []float32, s float32) {
	for i := range b {
		b[i] *= s
	}
}

// ApplyGrads steps every parameter with the (averaged) gradients.
func (n *Network) ApplyGrads(opt *tensor.SGD, pg *ParamGrads) {
	n.applySGD(opt, pg.g)
}

// GradBytes returns the wire size of one gradient exchange (float32 per
// parameter), the quantity each all-reduce moves per worker pair.
func (n *Network) GradBytes() float64 { return float64(n.ParamCount()) * 4 }
