package ffn

import (
	"fmt"
	"math"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/tensor"
)

// int8Scene is batchScene with quantized inference enabled.
func int8Scene(t testing.TB, floodBatch int) (*Network, *Volume, [][3]int) {
	t.Helper()
	img := synthVolume(42, 6, 20, 22)
	img.Normalize()
	cfg := DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 4
	cfg.MoveStep = [3]int{1, 2, 2}
	cfg.MoveProb = 0.55
	cfg.FloodBatch = floodBatch
	cfg.Precision = PrecisionInt8
	net, err := NewNetwork(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	seeds := GridSeeds(img, cfg.FOV, [3]int{1, 3, 3}, -10)
	if len(seeds) < 4 {
		t.Fatalf("want several seeds, got %d", len(seeds))
	}
	return net, img, seeds
}

// TestSegmentInt8Invariance requires the int8 flood to produce bit-identical
// masks and statistics across batch sizes 1/2/8 and worker counts 1/2/8:
// activations quantize per FOV slot, so the quantized forward — like the f32
// one — depends only on the image and the center.
func TestSegmentInt8Invariance(t *testing.T) {
	refNet, img, seeds := int8Scene(t, 1)
	prev := parallel.SetWorkers(1)
	refMask, refStats := refNet.Segment(img, seeds, 0)
	parallel.SetWorkers(prev)
	if refStats.Steps == 0 || refStats.MaskVoxels == 0 {
		t.Fatalf("degenerate int8 reference run: %+v", refStats)
	}

	for _, batch := range []int{1, 2, 8} {
		net, _, _ := int8Scene(t, batch)
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("batch=%d/workers=%d", batch, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				mask, stats := net.Segment(img, seeds, 0)
				if stats != refStats {
					t.Fatalf("stats diverge: %+v, want %+v", stats, refStats)
				}
				for i := range refMask.Data {
					if mask.Data[i] != refMask.Data[i] {
						t.Fatalf("mask voxel %d diverges", i)
					}
				}
			})
		}
	}
}

// TestSegmentInt8MaxStepsMatchesUnbounded pins the bounded-step int8 flood
// (the serial FIFO path) against the same positions the unbounded flood
// would visit first — i.e. the budget is honored and the quantized applier
// runs under it too.
func TestSegmentInt8MaxSteps(t *testing.T) {
	net, img, seeds := int8Scene(t, 8)
	_, stats := net.Segment(img, seeds, 7)
	if stats.Steps != 7 {
		t.Fatalf("bounded int8 flood ran %d steps, want 7", stats.Steps)
	}
}

// TestForwardBatchQLogitError bounds the max-abs logit error of the int8
// forward against the f32 forward over a batch of FOVs. The bound is
// empirical (measured ~0.09 for this scene) with ~3x headroom; a regression
// past it means the quantization pipeline broke, not that the model drifted.
const maxAbsLogitErr = 0.25

func TestForwardBatchQLogitError(t *testing.T) {
	net, img, seeds := int8Scene(t, 8)
	s := net.getBatchScratch()
	defer net.putBatchScratch(s)
	fov := net.cfg.FOV
	fovN := fov[0] * fov[1] * fov[2]
	k := cap(s.pos)
	if k > len(seeds) {
		k = len(seeds)
	}
	for i := 0; i < k; i++ {
		p := seeds[i]
		extractFOVIntoSlice(s.in.Data[2*i*fovN:][:fovN], img, fov, p[0], p[1], p[2])
	}
	f32out := tensor.New(k, 1, fov[0], fov[1], fov[2])
	net.forwardBatchInto(s, k)
	copy(f32out.Data, s.out.Data[:k*fovN])
	net.forwardBatchQInto(s, k)

	var maxErr float64
	for i := 0; i < k*fovN; i++ {
		if d := math.Abs(float64(s.out.Data[i]) - float64(f32out.Data[i])); d > maxErr {
			maxErr = d
		}
	}
	t.Logf("int8 max-abs logit error over %d FOVs: %.4f", k, maxErr)
	if maxErr > maxAbsLogitErr {
		t.Fatalf("int8 max-abs logit error %.4f exceeds bound %.2f", maxErr, maxAbsLogitErr)
	}
	if maxErr == 0 {
		t.Fatal("int8 forward identical to f32 — quantization is not active")
	}
}

// TestSegmentInt8ErrorBounded bounds the end-to-end mask disagreement
// between int8 and f32 segmentation on the same scene. The bound is
// empirical (measured 0% here) with wide headroom; logit errors only
// flip mask voxels whose f32 logit sits within the error band of the
// threshold.
const maxMaskDisagreeRate = 0.02

func TestSegmentInt8ErrorBounded(t *testing.T) {
	f32net, img, seeds := batchScene(t, 8)
	i8net, _, _ := int8Scene(t, 8)
	f32mask, f32stats := f32net.Segment(img, seeds, 0)
	i8mask, i8stats := i8net.Segment(img, seeds, 0)
	if i8stats.Steps == 0 || i8stats.MaskVoxels == 0 {
		t.Fatalf("degenerate int8 run: %+v", i8stats)
	}
	var diff int
	for i := range f32mask.Data {
		if f32mask.Data[i] != i8mask.Data[i] {
			diff++
		}
	}
	rate := float64(diff) / float64(len(f32mask.Data))
	t.Logf("int8 vs f32: %d/%d mask voxels disagree (%.4f%%), steps %d vs %d",
		diff, len(f32mask.Data), 100*rate, i8stats.Steps, f32stats.Steps)
	if rate > maxMaskDisagreeRate {
		t.Fatalf("mask disagreement rate %.4f exceeds bound %.3f", rate, maxMaskDisagreeRate)
	}
}

// TestInt8QuantCacheInvalidation: training must invalidate the quantized
// weight cache so the next Segment re-quantizes the updated weights.
func TestInt8QuantCacheInvalidation(t *testing.T) {
	net, img, seeds := int8Scene(t, 8)
	before, _ := net.Segment(img, seeds, 0)
	if net.qn == nil {
		t.Fatal("segment did not build the quantized cache")
	}
	opt := tensor.NewSGD(0.05, 0.9)
	fov := net.cfg.FOV
	image := extractFOV(img, fov, fov[0]/2, fov[1]/2, fov[2]/2)
	label := tensor.New(1, fov[0], fov[1], fov[2])
	for i := 0; i < 8; i++ {
		net.TrainStep(opt, image, label)
	}
	if net.qn != nil {
		t.Fatal("TrainStep left a stale quantized cache")
	}
	after, _ := net.Segment(img, seeds, 0)
	same := true
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mask unchanged after training — quantized weights look stale")
	}
}

// TestPrecisionValidation rejects unknown precisions and accepts the two
// documented ones.
func TestPrecisionValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Precision = "fp16"
	if _, err := NewNetwork(cfg, 1); err == nil {
		t.Fatal("want error for unknown precision")
	}
	for _, p := range []Precision{"", PrecisionF32, PrecisionInt8} {
		cfg.Precision = p
		if _, err := NewNetwork(cfg, 1); err != nil {
			t.Fatalf("precision %q rejected: %v", p, err)
		}
	}
}
