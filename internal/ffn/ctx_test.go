package ffn

import (
	"context"
	"errors"
	"testing"

	"chaseci/internal/parallel"
)

// segCtxScene builds a permissive flood scene with many seeds so runs take
// enough applications to observe mid-flight cancellation.
func segCtxScene(t *testing.T) (*Network, *Volume, [][3]int) {
	t.Helper()
	img := synthVolume(7, 6, 20, 22)
	img.Normalize()
	cfg := DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 4
	cfg.MoveStep = [3]int{1, 2, 2}
	cfg.MoveProb = 0.55
	net, err := NewNetwork(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	seeds := GridSeeds(img, cfg.FOV, [3]int{1, 3, 3}, -10)
	return net, img, seeds
}

// TestSegmentCtxMatchesSegment requires the context-aware entrypoint with a
// background context to reproduce Segment bit-exactly, serial and sharded.
func TestSegmentCtxMatchesSegment(t *testing.T) {
	net, img, seeds := segCtxScene(t)
	for _, workers := range []int{1, 4} {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		wantMask, wantStats := net.Segment(img, seeds, 0)
		var lastProgress int
		mask, stats, err := net.SegmentCtx(context.Background(), img, seeds, 0,
			func(steps int) { lastProgress = steps })
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
		for i := range wantMask.Data {
			if mask.Data[i] != wantMask.Data[i] {
				t.Fatalf("workers=%d: mask voxel %d diverges", workers, i)
			}
		}
		if stats.Steps >= progressEvery && lastProgress == 0 {
			t.Fatalf("workers=%d: progress callback never fired over %d steps", workers, stats.Steps)
		}
	}
}

// TestSegmentCtxCancelMidFlood cancels from inside the progress callback —
// a deterministic mid-flight cancellation — and expects a prompt stop with
// partial statistics.
func TestSegmentCtxCancelMidFlood(t *testing.T) {
	net, img, seeds := segCtxScene(t)
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	_, full := net.Segment(img, seeds, 0)
	if full.Steps < 3*progressEvery {
		t.Fatalf("scene too small to cancel mid-flight: %d steps", full.Steps)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mask, stats, err := net.SegmentCtx(ctx, img, seeds, 0, func(steps int) {
		if steps >= progressEvery {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Steps == 0 || stats.Steps >= full.Steps {
		t.Fatalf("cancelled run took %d steps, want in (0, %d)", stats.Steps, full.Steps)
	}
	if mask == nil {
		t.Fatal("cancelled run must still return the partial mask")
	}
}

// TestSegmentCtxCancelSharded covers the seed-sharded flood: every worker
// must stop promptly after cancellation.
func TestSegmentCtxCancelSharded(t *testing.T) {
	net, img, seeds := segCtxScene(t)
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)
	_, full := net.Segment(img, seeds, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, stats, err := net.SegmentCtx(ctx, img, seeds, 0, func(steps int) {
		if steps >= progressEvery {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Steps == 0 || stats.Steps >= full.Steps {
		t.Fatalf("cancelled sharded run took %d steps, want in (0, %d)", stats.Steps, full.Steps)
	}
}

// TestTrainOnVolumeCtxCancel cancels after a fixed number of optimizer
// steps and expects exactly the losses taken so far.
func TestTrainOnVolumeCtxCancel(t *testing.T) {
	img, lbl := buildARScene(t, 4)
	net, err := NewNetwork(smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(net, 0.03, 0.9, 99)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 7
	losses, err := tr.TrainOnVolumeCtx(ctx, img, lbl, 100, func(step int) {
		if step == stopAt {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(losses) != stopAt {
		t.Fatalf("got %d losses, want %d", len(losses), stopAt)
	}
}

// TestTrainOnVolumeCtxMatchesPlain pins the wrapper equivalence: same
// seeds, same loss sequence.
func TestTrainOnVolumeCtxMatchesPlain(t *testing.T) {
	img, lbl := buildARScene(t, 4)
	mk := func() *Trainer {
		net, err := NewNetwork(smallConfig(), 3)
		if err != nil {
			t.Fatal(err)
		}
		return NewTrainer(net, 0.03, 0.9, 99)
	}
	want, err := mk().TrainOnVolume(img, lbl, 25)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mk().TrainOnVolumeCtx(context.Background(), img, lbl, 25, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loss %d diverges: %v vs %v", i, got[i], want[i])
		}
	}
}
