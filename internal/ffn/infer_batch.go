package ffn

import (
	"context"
	"sync/atomic"

	"chaseci/internal/tensor"
)

// Batched flood-fill inference. Instead of running one network application
// per ready FOV center, a flood worker drains up to FloodBatch positions
// from its queue and pushes them through the batched forward path in one
// dispatch: the shared weights are streamed from memory once per batch
// rather than once per application, and the fused conv epilogues
// (tensor.Conv3DBatchReLUInto / Conv3DBatchResReLUInto) fold each layer's
// activation and residual into the conv output write. Because every
// application's output depends only on the image and the center — never on
// the canvas or on other in-flight applications — batching any subset of
// ready positions produces bit-exact masks and statistics at every batch
// size and worker count (the claimed set stays the multi-source closure,
// and the canvas merge is an order-independent element-wise max).

// DefaultFloodBatch is the FOV batch size used when Config.FloodBatch is 0.
const DefaultFloodBatch = 8

// MaxFloodBatch caps the batch (and therefore the batched scratch size).
// The api schema layer enforces the same cap at validation time.
const MaxFloodBatch = 256

// effectiveFloodBatch resolves the configured batch size.
func (c *Config) effectiveFloodBatch() int {
	b := c.FloodBatch
	if b <= 0 {
		b = DefaultFloodBatch
	}
	if b > MaxFloodBatch {
		b = MaxFloodBatch
	}
	return b
}

// batchScratch holds one flood worker's reusable batched buffers: the
// packed (B,2,D,H,W) input (POM channels prefilled once — they are the
// constant seed POM), ping-pong activation tensors, the module hidden
// buffer, and the output logits. Scratches recycle through the Network's
// pool, so steady-state batched floods allocate nothing per batch.
type batchScratch struct {
	in     *tensor.Tensor // (B, 2, D, H, W) packed image+POM
	x0, x1 *tensor.Tensor // (B, F, D, H, W) activations (ping-pong)
	hid    *tensor.Tensor // (B, F, D, H, W) module hidden
	out    *tensor.Tensor // (B, 1, D, H, W) output logits
	pos    []fovPos       // live batch positions
}

func (n *Network) newBatchScratch() *batchScratch {
	B := n.cfg.effectiveFloodBatch()
	f := n.cfg.Features
	d, h, w := n.cfg.FOV[0], n.cfg.FOV[1], n.cfg.FOV[2]
	s := &batchScratch{
		in:  tensor.New(B, 2, d, h, w),
		x0:  tensor.New(B, f, d, h, w),
		x1:  tensor.New(B, f, d, h, w),
		hid: tensor.New(B, f, d, h, w),
		out: tensor.New(B, 1, d, h, w),
		pos: make([]fovPos, 0, B),
	}
	// The POM channel of every slot is the constant seed POM: fill once.
	pom := n.SeedPOM()
	fovN := d * h * w
	for b := 0; b < B; b++ {
		copy(s.in.Data[(2*b+1)*fovN:(2*b+2)*fovN], pom.Data)
	}
	return s
}

// maxIdleBatchScratch bounds the network's idle scratch list: enough for a
// fully fanned-out flood (one scratch per worker, and worker counts beyond
// the machine add nothing), without pinning unbounded memory after a burst.
const maxIdleBatchScratch = 64

// getBatchScratch borrows a scratch from the network's free list. The list
// is a mutex-guarded LIFO rather than a sync.Pool: scratches must survive
// between floods deterministically (the runtime may drop pool entries at
// any GC, and the race detector drops them eagerly), and a flood borrows at
// most once per worker, so the lock is nowhere near any hot path.
func (n *Network) getBatchScratch() *batchScratch {
	n.bsMu.Lock()
	if k := len(n.bsFree); k > 0 {
		s := n.bsFree[k-1]
		n.bsFree[k-1] = nil
		n.bsFree = n.bsFree[:k-1]
		n.bsMu.Unlock()
		return s
	}
	n.bsMu.Unlock()
	return n.newBatchScratch()
}

func (n *Network) putBatchScratch(s *batchScratch) {
	n.bsMu.Lock()
	if len(n.bsFree) < maxIdleBatchScratch {
		n.bsFree = append(n.bsFree, s)
	}
	n.bsMu.Unlock()
}

// forwardBatchInto runs the inference-only forward pass over the first k
// batch slots with fused activations: conv+ReLU for the input layer and
// module hidden, conv+residual+ReLU for the module tail, plain conv for the
// final 1x1x1 logit layer (its bias epilogue is the logit itself). Results
// land in s.out and are bit-exact with forwardInto per slot.
func (n *Network) forwardBatchInto(s *batchScratch, k int) {
	tensor.Conv3DBatchReLUInto(s.x0, s.in, n.wIn, n.bIn, k)
	cur, nxt := s.x0, s.x1
	for _, m := range n.mods {
		tensor.Conv3DBatchReLUInto(s.hid, cur, m.w1, m.b1, k)
		tensor.Conv3DBatchResReLUInto(nxt, s.hid, m.w2, m.b2, cur, k)
		cur, nxt = nxt, cur
	}
	tensor.Conv3DBatchInto(s.out, cur, n.wOut, n.bOut, k)
}

// floodShardBatch floods one worker's seed shard in batches of up to B FOV
// positions, claiming centers through the shared atomic visited array and
// max-merging output cores into canvas (worker-private under the sharded
// flood, the shared canvas when single-shard). Cancellation is checked
// before every batch, so a cancelled context stops the run within one batch
// per worker.
func (n *Network) floodShardBatch(ctx context.Context, image *Volume, seeds []fovPos, claimed []int32, canvas []float32, moveLogit float32, stats *InferenceStats, prog *floodProgress) {
	cfg := n.cfg
	s := n.getBatchScratch()
	defer n.putBatchScratch(s)
	B := cap(s.pos)
	fov := cfg.FOV
	fovN := fov[0] * fov[1] * fov[2]
	offsets := cfg.moveOffsets()
	queue := append([]fovPos(nil), seeds...)
	for len(queue) > 0 {
		if ctx.Err() != nil {
			return
		}
		k := B
		if len(queue) < k {
			k = len(queue)
		}
		s.pos = append(s.pos[:0], queue[len(queue)-k:]...)
		queue = queue[:len(queue)-k]
		for i, p := range s.pos {
			extractFOVIntoSlice(s.in.Data[2*i*fovN:][:fovN], image, fov, p.z, p.y, p.x)
		}
		if n.int8Inference() {
			n.forwardBatchQInto(s, k)
		} else {
			n.forwardBatchInto(s, k)
		}
		for i, p := range s.pos {
			out := s.out.Data[i*fovN:][:fovN]
			mergeCore(canvas, image.H, image.W, fov, out, p.z, p.y, p.x)
			stats.Steps++
			prog.bump()
			for _, off := range offsets {
				fz := fov[0]/2 + off[0]
				fy := fov[1]/2 + off[1]
				fx := fov[2]/2 + off[2]
				if out[(fz*fov[1]+fy)*fov[2]+fx] < moveLogit {
					continue
				}
				nz, ny, nx := p.z+off[0], p.y+off[1], p.x+off[2]
				if !cfg.fovInBounds(image, nz, ny, nx) {
					continue
				}
				key := (nz*image.H+ny)*image.W + nx
				if !atomic.CompareAndSwapInt32(&claimed[key], 0, 1) {
					continue
				}
				queue = append(queue, fovPos{nz, ny, nx})
				stats.Moves++
			}
		}
	}
}
