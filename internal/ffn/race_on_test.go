//go:build race

package ffn

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool intentionally drops items to expose races — making
// steady-state allocation pins meaningless. Alloc-guard tests skip there;
// the normal CI test job still enforces them.
const raceEnabled = true
