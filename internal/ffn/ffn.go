// Package ffn implements a Flood-Filling Network (Januszewski et al., Nature
// Methods 2018), the model the CHASE-CI case study uses for rapid object
// segmentation of NASA IVT volumes. The network is a stack of residual 3-D
// convolution modules that reads a field-of-view (FOV) of the image together
// with its own current probability-of-object map (POM) and emits a logit
// update; inference repeatedly applies the network while moving the FOV
// toward places where the object probability crosses a movement threshold,
// flooding outward from a seed until the object is covered. Training and
// inference are real (pure Go, laptop-scale volumes); cluster-scale timing is
// projected via internal/gpusim.
package ffn

import (
	"fmt"
	"math"
	"sync"

	"chaseci/internal/sim"
	"chaseci/internal/tensor"
)

// Config declares the network geometry and flood-fill policy.
type Config struct {
	// FOV is the field-of-view (depth, height, width); all odd. The paper's
	// FFN uses 33x33x17-class FOVs; experiment-scale defaults are smaller.
	FOV [3]int
	// Features is the channel count of hidden conv layers.
	Features int
	// Modules is the number of residual conv modules.
	Modules int
	// MoveStep is the FOV displacement (dz, dy, dx) when flooding.
	MoveStep [3]int
	// MoveProb: flood to a neighbor when the POM at the corresponding FOV
	// face center exceeds this probability (paper uses 0.9).
	MoveProb float32
	// SegmentProb: final mask threshold (paper uses 0.6).
	SegmentProb float32
	// PadProb / SeedProb initialize the POM: everything starts at PadProb;
	// the seed voxel is clamped to SeedProb (paper: 0.05 / 0.95).
	PadProb  float32
	SeedProb float32
	// FloodBatch is how many ready FOV positions a flood worker pushes
	// through the batched forward path per dispatch (0 = default 8; 1 =
	// per-FOV applications). Masks and statistics are bit-exact at every
	// batch size.
	FloodBatch int
	// Precision selects the Segment inference arithmetic: "" or "f32" is
	// the reference float32 path; "int8" runs quantized inference (see
	// quant.go). Training always stays f32.
	Precision Precision
}

// DefaultConfig returns an experiment-scale configuration.
func DefaultConfig() Config {
	return Config{
		FOV:         [3]int{5, 9, 9},
		Features:    8,
		Modules:     2,
		MoveStep:    [3]int{1, 3, 3},
		MoveProb:    0.80,
		SegmentProb: 0.60,
		PadProb:     0.05,
		SeedProb:    0.95,
	}
}

func (c *Config) validate() error {
	for _, d := range c.FOV {
		if d <= 0 || d%2 == 0 {
			return fmt.Errorf("ffn: FOV dims must be positive odd, got %v", c.FOV)
		}
	}
	if c.Features <= 0 || c.Modules <= 0 {
		return fmt.Errorf("ffn: Features/Modules must be positive")
	}
	if c.MoveProb <= 0 || c.MoveProb >= 1 || c.SegmentProb <= 0 || c.SegmentProb >= 1 {
		return fmt.Errorf("ffn: probabilities must be in (0,1)")
	}
	if c.FloodBatch < 0 {
		return fmt.Errorf("ffn: FloodBatch must be non-negative, got %d", c.FloodBatch)
	}
	switch c.Precision {
	case "", PrecisionF32, PrecisionInt8:
	default:
		return fmt.Errorf("ffn: Precision must be %q or %q, got %q", PrecisionF32, PrecisionInt8, c.Precision)
	}
	return nil
}

// logit converts a probability to a logit.
func logit(p float32) float32 {
	return float32(math.Log(float64(p) / (1 - float64(p))))
}

// module is one residual block: conv-ReLU-conv, output added to input.
type module struct {
	w1, w2 *tensor.Tensor
	b1, b2 []float32
}

// Network is the FFN model.
type Network struct {
	cfg Config

	wIn  *tensor.Tensor // (F, 2, 3, 3, 3): image + POM channels in
	bIn  []float32
	mods []*module
	wOut *tensor.Tensor // (1, F, 1, 1, 1)
	bOut []float32

	ts     *trainScratch   // lazily built per-network training buffers
	bsMu   sync.Mutex      // guards bsFree
	bsFree []*batchScratch // bounded LIFO of idle batched-flood scratches
	qn     *quantNet       // lazily built quantized weights (nil after training)
}

// NewNetwork initializes a model with He-initialized weights from seed.
func NewNetwork(cfg Config, seed uint64) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(seed)
	f := cfg.Features
	n := &Network{
		cfg:  cfg,
		wIn:  tensor.New(f, 2, 3, 3, 3),
		bIn:  make([]float32, f),
		wOut: tensor.New(1, f, 1, 1, 1),
		bOut: make([]float32, 1),
	}
	n.wIn.Randomize(rng, 2*27)
	n.wOut.Randomize(rng, f)
	for m := 0; m < cfg.Modules; m++ {
		mod := &module{
			w1: tensor.New(f, f, 3, 3, 3), b1: make([]float32, f),
			w2: tensor.New(f, f, 3, 3, 3), b2: make([]float32, f),
		}
		mod.w1.Randomize(rng, f*27)
		mod.w2.Randomize(rng, f*27)
		n.mods = append(n.mods, mod)
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := n.wIn.Size() + len(n.bIn) + n.wOut.Size() + len(n.bOut)
	for _, m := range n.mods {
		total += m.w1.Size() + len(m.b1) + m.w2.Size() + len(m.b2)
	}
	return total
}

// fwdCache stores activations needed for backprop. Caches are reusable:
// every tensor except input is preallocated by newCache and overwritten by
// each forwardInto call, so steady-state training and inference allocate
// nothing on the forward path.
type fwdCache struct {
	input   *tensor.Tensor // (2, D, H, W); set by forwardInto, caller-owned
	preIn   *tensor.Tensor // pre-ReLU of input conv
	actIn   *tensor.Tensor
	modPre1 []*tensor.Tensor
	modAct1 []*tensor.Tensor
	modPre2 []*tensor.Tensor // pre-residual-add sums fed to next ReLU
	modOut  []*tensor.Tensor // post residual + ReLU
}

// newCache preallocates every activation tensor for this architecture.
func (n *Network) newCache() *fwdCache {
	f := n.cfg.Features
	d, h, w := n.cfg.FOV[0], n.cfg.FOV[1], n.cfg.FOV[2]
	c := &fwdCache{
		preIn: tensor.New(f, d, h, w),
		actIn: tensor.New(f, d, h, w),
	}
	for range n.mods {
		c.modPre1 = append(c.modPre1, tensor.New(f, d, h, w))
		c.modAct1 = append(c.modAct1, tensor.New(f, d, h, w))
		c.modPre2 = append(c.modPre2, tensor.New(f, d, h, w))
		c.modOut = append(c.modOut, tensor.New(f, d, h, w))
	}
	return c
}

// forwardInto runs the network on a 2-channel FOV (image, POM logits),
// writing activations into cache and the logit update into delta.
func (n *Network) forwardInto(cache *fwdCache, in, delta *tensor.Tensor) {
	cache.input = in
	tensor.Conv3DInto(cache.preIn, in, n.wIn, n.bIn)
	tensor.ReLUInto(cache.actIn, cache.preIn)
	cur := cache.actIn
	for i, m := range n.mods {
		tensor.Conv3DInto(cache.modPre1[i], cur, m.w1, m.b1)
		tensor.ReLUInto(cache.modAct1[i], cache.modPre1[i])
		tensor.Conv3DInto(cache.modPre2[i], cache.modAct1[i], m.w2, m.b2)
		cache.modPre2[i].AddInPlace(cur) // residual connection
		tensor.ReLUInto(cache.modOut[i], cache.modPre2[i])
		cur = cache.modOut[i]
	}
	tensor.Conv3DInto(delta, cur, n.wOut, n.bOut)
}

// forward is the allocating wrapper around forwardInto for callers that
// keep the cache (ComputeGrads) or need a fresh output tensor (Apply).
func (n *Network) forward(in *tensor.Tensor) (*tensor.Tensor, *fwdCache) {
	cache := n.newCache()
	d, h, w := n.cfg.FOV[0], n.cfg.FOV[1], n.cfg.FOV[2]
	delta := tensor.New(1, d, h, w)
	n.forwardInto(cache, in, delta)
	return delta, cache
}

// Apply runs one inference step: given image and POM logits over a FOV, it
// returns the network's predicted object logits for the FOV. The POM channel
// conditions the prediction (telling the network where the seed/current
// object is); the output is absolute logits rather than an additive update,
// which keeps repeated applications over overlapping FOVs from saturating.
func (n *Network) Apply(image, pom *tensor.Tensor) *tensor.Tensor {
	in := packInput(image, pom)
	out, _ := n.forward(in)
	return out
}

// packInput stacks (1,D,H,W) image and POM into a (2,D,H,W) tensor.
func packInput(image, pom *tensor.Tensor) *tensor.Tensor {
	d, h, w := image.Shape[1], image.Shape[2], image.Shape[3]
	in := tensor.New(2, d, h, w)
	packInputInto(in, image, pom)
	return in
}

// packInputInto stacks image and POM into the caller's (2,D,H,W) tensor.
func packInputInto(in, image, pom *tensor.Tensor) {
	copy(in.Data[:image.Size()], image.Data)
	copy(in.Data[image.Size():], pom.Data)
}

// grads mirrors the parameter structure.
type grads struct {
	wIn  *tensor.Tensor
	bIn  []float32
	mods []*module
	wOut *tensor.Tensor
	bOut []float32
}

// backward computes parameter gradients given the cache and dLoss/dDelta.
func (n *Network) backward(cache *fwdCache, gradDelta *tensor.Tensor) *grads {
	g := &grads{}
	last := cache.actIn
	if len(cache.modOut) > 0 {
		last = cache.modOut[len(cache.modOut)-1]
	}
	gradCur, gWOut, gBOut := tensor.Conv3DBackward(last, n.wOut, gradDelta)
	g.wOut, g.bOut = gWOut, gBOut

	for i := len(n.mods) - 1; i >= 0; i-- {
		m := n.mods[i]
		prev := cache.actIn
		if i > 0 {
			prev = cache.modOut[i-1]
		}
		// Through the output ReLU of the module.
		gradSum := tensor.ReLUBackward(cache.modPre2[i], gradCur)
		// Residual: gradient flows both into conv2 branch and skip path.
		gradAct1, gW2, gB2 := tensor.Conv3DBackward(cache.modAct1[i], m.w2, gradSum)
		gradPre1 := tensor.ReLUBackward(cache.modPre1[i], gradAct1)
		gradPrev, gW1, gB1 := tensor.Conv3DBackward(prev, m.w1, gradPre1)
		gradPrev.AddInPlace(gradSum) // skip connection
		g.mods = append([]*module{{w1: gW1, b1: gB1, w2: gW2, b2: gB2}}, g.mods...)
		gradCur = gradPrev
	}
	gradPreIn := tensor.ReLUBackward(cache.preIn, gradCur)
	_, gWIn, gBIn := tensor.Conv3DBackward(cache.input, n.wIn, gradPreIn)
	g.wIn, g.bIn = gWIn, gBIn
	return g
}

// applySGD steps every parameter with the optimizer.
func (n *Network) applySGD(opt *tensor.SGD, g *grads) {
	opt.Step(n.wIn, g.wIn)
	opt.StepBias(&n.bIn, g.bIn)
	for i, m := range n.mods {
		opt.Step(m.w1, g.mods[i].w1)
		opt.StepBias(&m.b1, g.mods[i].b1)
		opt.Step(m.w2, g.mods[i].w2)
		opt.StepBias(&m.b2, g.mods[i].b2)
	}
	opt.Step(n.wOut, g.wOut)
	opt.StepBias(&n.bOut, g.bOut)
}

// trainScratch holds every buffer one SGD step needs, so steady-state
// training allocates nothing. It lives on the Network (training already
// mutates the weights, so a Network must not be trained concurrently).
type trainScratch struct {
	cache      *fwdCache
	pom        *tensor.Tensor // constant seed POM
	in         *tensor.Tensor // packed (2,D,H,W) input
	delta      *tensor.Tensor // (1,D,H,W) output logits
	gradLogits *tensor.Tensor
	g          *grads // parameter gradients, reused each step
	// Backward temporaries, all (F,D,H,W) except gradInput (2,D,H,W).
	gradCur, gradPrev, gradSum, gradAct1 *tensor.Tensor
	gradInput                            *tensor.Tensor
}

func (n *Network) trainScratchBufs() *trainScratch {
	if n.ts != nil {
		return n.ts
	}
	f := n.cfg.Features
	d, h, w := n.cfg.FOV[0], n.cfg.FOV[1], n.cfg.FOV[2]
	ts := &trainScratch{
		cache:      n.newCache(),
		pom:        n.SeedPOM(),
		in:         tensor.New(2, d, h, w),
		delta:      tensor.New(1, d, h, w),
		gradLogits: tensor.New(1, d, h, w),
		gradCur:    tensor.New(f, d, h, w),
		gradPrev:   tensor.New(f, d, h, w),
		gradSum:    tensor.New(f, d, h, w),
		gradAct1:   tensor.New(f, d, h, w),
		gradInput:  tensor.New(2, d, h, w),
	}
	g := &grads{
		wIn:  tensor.New(f, 2, 3, 3, 3),
		bIn:  make([]float32, f),
		wOut: tensor.New(1, f, 1, 1, 1),
		bOut: make([]float32, 1),
	}
	for range n.mods {
		g.mods = append(g.mods, &module{
			w1: tensor.New(f, f, 3, 3, 3), b1: make([]float32, f),
			w2: tensor.New(f, f, 3, 3, 3), b2: make([]float32, f),
		})
	}
	ts.g = g
	n.ts = ts
	return ts
}

// backwardInto computes parameter gradients into ts.g using only the
// scratch temporaries (no allocation).
func (n *Network) backwardInto(ts *trainScratch, gradDelta *tensor.Tensor) {
	cache, g := ts.cache, ts.g
	last := cache.actIn
	if len(cache.modOut) > 0 {
		last = cache.modOut[len(cache.modOut)-1]
	}
	tensor.Conv3DBackwardInto(ts.gradCur, g.wOut, g.bOut, last, n.wOut, gradDelta)

	for i := len(n.mods) - 1; i >= 0; i-- {
		m := n.mods[i]
		prev := cache.actIn
		if i > 0 {
			prev = cache.modOut[i-1]
		}
		// Through the output ReLU of the module.
		tensor.ReLUBackwardInto(ts.gradSum, cache.modPre2[i], ts.gradCur)
		// Residual: gradient flows both into conv2 branch and skip path.
		tensor.Conv3DBackwardInto(ts.gradAct1, g.mods[i].w2, g.mods[i].b2, cache.modAct1[i], m.w2, ts.gradSum)
		tensor.ReLUBackwardInto(ts.gradAct1, cache.modPre1[i], ts.gradAct1)
		tensor.Conv3DBackwardInto(ts.gradPrev, g.mods[i].w1, g.mods[i].b1, prev, m.w1, ts.gradAct1)
		ts.gradPrev.AddInPlace(ts.gradSum) // skip connection
		ts.gradCur, ts.gradPrev = ts.gradPrev, ts.gradCur
	}
	tensor.ReLUBackwardInto(ts.gradCur, cache.preIn, ts.gradCur)
	tensor.Conv3DBackwardInto(ts.gradInput, g.wIn, g.bIn, cache.input, n.wIn, ts.gradCur)
}

// TrainStep runs one optimization step on a single FOV example: image and
// label are (1,D,H,W) FOV tensors; the POM starts from the seed state. It
// returns the BCE loss before the update. All intermediate buffers are
// reused across calls, so steady-state steps allocate nothing.
func (n *Network) TrainStep(opt *tensor.SGD, image, label *tensor.Tensor) float64 {
	ts := n.trainScratchBufs()
	packInputInto(ts.in, image, ts.pom)
	n.forwardInto(ts.cache, ts.in, ts.delta)
	loss := tensor.LogitBCEInto(ts.gradLogits, ts.delta, label, nil)
	n.backwardInto(ts, ts.gradLogits)
	n.applySGD(opt, ts.g)
	n.qn = nil // weights changed; quantized cache is stale
	return loss
}

// SeedPOM builds the initial POM for a FOV: PadProb everywhere, SeedProb at
// the center — the input state both training and each flood-fill
// application condition on.
func (n *Network) SeedPOM() *tensor.Tensor {
	d, h, w := n.cfg.FOV[0], n.cfg.FOV[1], n.cfg.FOV[2]
	pom := tensor.New(1, d, h, w)
	pom.Fill(logit(n.cfg.PadProb))
	center := (d/2*h+h/2)*w + w/2
	pom.Data[center] = logit(n.cfg.SeedProb)
	return pom
}
