package ffn

import (
	"fmt"
	"math"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

func synthVolume(seed uint64, d, h, w int) *Volume {
	rng := sim.NewRNG(seed)
	v := NewVolume(d, h, w)
	for i := range v.Data {
		v.Data[i] = float32(rng.NormFloat64())
	}
	return v
}

// TestSegmentParallelDeterministic requires Segment to produce a bit-exact
// identical mask and identical statistics at worker counts 1 (serial path),
// 2, and 8 (seed-sharded path): applications depend only on the image and
// the FOV center, the claimed set is the multi-source reachable set at any
// schedule, and the canvas merge is an order-independent element-wise max.
func TestSegmentParallelDeterministic(t *testing.T) {
	for _, shape := range [][3]int{{6, 20, 22}, {5, 17, 19}} {
		img := synthVolume(42, shape[0], shape[1], shape[2])
		img.Normalize()
		cfg := DefaultConfig()
		cfg.FOV = [3]int{3, 7, 7}
		cfg.Features = 4
		cfg.MoveStep = [3]int{1, 2, 2}
		cfg.MoveProb = 0.55 // permissive: force floods to overlap and spread
		net, err := NewNetwork(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		seeds := GridSeeds(img, cfg.FOV, [3]int{1, 3, 3}, -10) // accept everywhere
		if len(seeds) < 4 {
			t.Fatalf("want several seeds, got %d", len(seeds))
		}

		var refMask *Volume
		var refStats InferenceStats
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("shape=%v/workers=%d", shape, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				mask, stats := net.Segment(img, seeds, 0)
				if workers == 1 {
					refMask, refStats = mask, stats
					if stats.Steps == 0 || stats.MaskVoxels == 0 {
						t.Fatalf("degenerate reference run: %+v", stats)
					}
					return
				}
				if stats != refStats {
					t.Fatalf("stats diverge: workers=%d %+v, serial %+v", workers, stats, refStats)
				}
				for i := range refMask.Data {
					if mask.Data[i] != refMask.Data[i] {
						t.Fatalf("mask voxel %d diverges at workers=%d", i, workers)
					}
				}
			})
		}
	}
}

// TestSegmentMaxStepsStaysSerial checks the bounded-step path still honors
// the budget regardless of the worker setting.
func TestSegmentMaxStepsStaysSerial(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)
	img := synthVolume(9, 5, 16, 16)
	img.Normalize()
	cfg := DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 4
	cfg.MoveStep = [3]int{1, 2, 2}
	cfg.MoveProb = 0.5
	net, err := NewNetwork(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeds := GridSeeds(img, cfg.FOV, [3]int{1, 2, 2}, -10)
	_, stats := net.Segment(img, seeds, 3)
	if stats.Steps > 3 {
		t.Fatalf("maxSteps=3 exceeded: %d steps", stats.Steps)
	}
}

// TestNormalizeMatchesReference pins Normalize to the direct float64
// mean/std computation (the hand-rolled Newton sqrt it replaced converged
// to the same value within 1e-6).
func TestNormalizeMatchesReference(t *testing.T) {
	v := synthVolume(3, 4, 6, 5)
	raw := append([]float32(nil), v.Data...)
	v.Normalize()

	n := float64(len(raw))
	var sum, sumsq float64
	for _, x := range raw {
		sum += float64(x)
		sumsq += float64(x) * float64(x)
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	for i, x := range raw {
		want := (float64(x) - mean) / std
		if diff := math.Abs(float64(v.Data[i]) - want); diff > 1e-6 {
			t.Fatalf("voxel %d: got %v, want %v", i, v.Data[i], want)
		}
	}
}

// The training-path allocation guard lives in batch_test.go
// (TestTrainStepAllocFree), tightened to exactly zero steady-state allocs.
