package ffn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Model serialization: after step 2 the paper saves "the trained FFN model
// ... in the Ceph Object Store, including all parameters and configurations
// needed to do inference on new NASA data". This file provides that byte
// format.

var modelMagic = [8]byte{'F', 'F', 'N', 'M', 'O', 'D', 'L', 1}

// ErrBadModel indicates the bytes are not a serialized FFN model.
var ErrBadModel = errors.New("ffn: not a serialized model")

// Save serializes the network (config + every weight) to w.
func (n *Network) Save(w io.Writer) error {
	if _, err := w.Write(modelMagic[:]); err != nil {
		return err
	}
	cfg := []int32{
		int32(n.cfg.FOV[0]), int32(n.cfg.FOV[1]), int32(n.cfg.FOV[2]),
		int32(n.cfg.Features), int32(n.cfg.Modules),
		int32(n.cfg.MoveStep[0]), int32(n.cfg.MoveStep[1]), int32(n.cfg.MoveStep[2]),
	}
	if err := binary.Write(w, binary.LittleEndian, cfg); err != nil {
		return err
	}
	probs := []float32{n.cfg.MoveProb, n.cfg.SegmentProb, n.cfg.PadProb, n.cfg.SeedProb}
	if err := binary.Write(w, binary.LittleEndian, probs); err != nil {
		return err
	}
	write := func(data []float32) error {
		return binary.Write(w, binary.LittleEndian, data)
	}
	if err := write(n.wIn.Data); err != nil {
		return err
	}
	if err := write(n.bIn); err != nil {
		return err
	}
	for _, m := range n.mods {
		for _, d := range [][]float32{m.w1.Data, m.b1, m.w2.Data, m.b2} {
			if err := write(d); err != nil {
				return err
			}
		}
	}
	if err := write(n.wOut.Data); err != nil {
		return err
	}
	return write(n.bOut)
}

// SaveBytes returns the serialized model.
func (n *Network) SaveBytes() []byte {
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// Load reconstructs a network from r.
func Load(r io.Reader) (*Network, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != modelMagic {
		return nil, ErrBadModel
	}
	cfgInts := make([]int32, 8)
	if err := binary.Read(r, binary.LittleEndian, cfgInts); err != nil {
		return nil, err
	}
	probs := make([]float32, 4)
	if err := binary.Read(r, binary.LittleEndian, probs); err != nil {
		return nil, err
	}
	cfg := Config{
		FOV:      [3]int{int(cfgInts[0]), int(cfgInts[1]), int(cfgInts[2])},
		Features: int(cfgInts[3]), Modules: int(cfgInts[4]),
		MoveStep: [3]int{int(cfgInts[5]), int(cfgInts[6]), int(cfgInts[7])},
		MoveProb: probs[0], SegmentProb: probs[1], PadProb: probs[2], SeedProb: probs[3],
	}
	n, err := NewNetwork(cfg, 0)
	if err != nil {
		return nil, fmt.Errorf("ffn: bad config in model: %w", err)
	}
	read := func(data []float32) error {
		return binary.Read(r, binary.LittleEndian, data)
	}
	if err := read(n.wIn.Data); err != nil {
		return nil, err
	}
	if err := read(n.bIn); err != nil {
		return nil, err
	}
	for _, m := range n.mods {
		for _, d := range [][]float32{m.w1.Data, m.b1, m.w2.Data, m.b2} {
			if err := read(d); err != nil {
				return nil, err
			}
		}
	}
	if err := read(n.wOut.Data); err != nil {
		return nil, err
	}
	if err := read(n.bOut); err != nil {
		return nil, err
	}
	return n, nil
}

// LoadBytes reconstructs a network from serialized bytes.
func LoadBytes(data []byte) (*Network, error) { return Load(bytes.NewReader(data)) }
