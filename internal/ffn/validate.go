package ffn

import (
	"context"
	"encoding/json"
	"fmt"
)

// Section III-E3 support ("Hyperparameters and Validation Datasets"): the
// paper separates training from test data ("the training volume is removed
// from the test data volume for all validation metrics") and plans a Redis
// queue of "model training/testing validation split methodologies and
// parameter sets to be used in multi-model validation". This file provides
// the split, the parameter sets, and the evaluation; core wires them to the
// cluster and queue.

// Split divides a volume along the time axis: the first trainSteps slices
// train, the rest test. It panics if the split leaves either side empty,
// since that is always a mis-sized experiment.
func Split(img, lbl *Volume, trainSteps int) (trainImg, trainLbl, testImg, testLbl *Volume) {
	if trainSteps <= 0 || trainSteps >= img.D {
		panic(fmt.Sprintf("ffn: Split(%d) on %d-step volume leaves an empty side", trainSteps, img.D))
	}
	cut := trainSteps * img.H * img.W
	mk := func(src *Volume, from, to int, d int) *Volume {
		return &Volume{D: d, H: src.H, W: src.W, Data: src.Data[from:to]}
	}
	return mk(img, 0, cut, trainSteps), mk(lbl, 0, cut, trainSteps),
		mk(img, cut, len(img.Data), img.D-trainSteps), mk(lbl, cut, len(lbl.Data), img.D-trainSteps)
}

// Hyperparams is one candidate configuration for multi-model validation.
type Hyperparams struct {
	LR         float32 `json:"lr"`
	Momentum   float32 `json:"momentum"`
	Features   int     `json:"features"`
	Modules    int     `json:"modules"`
	TrainSteps int     `json:"train_steps"`
}

// Encode serializes the parameter set for the Redis queue.
func (h Hyperparams) Encode() string {
	b, err := json.Marshal(h)
	if err != nil {
		panic(err) // static struct cannot fail to marshal
	}
	return string(b)
}

// DecodeHyperparams parses a queue message back into a parameter set.
func DecodeHyperparams(s string) (Hyperparams, error) {
	var h Hyperparams
	if err := json.Unmarshal([]byte(s), &h); err != nil {
		return Hyperparams{}, fmt.Errorf("ffn: bad hyperparameter message: %w", err)
	}
	return h, nil
}

// Grid expands the cartesian product of candidate values. An empty modules
// list sweeps the historical default depth of 2.
func Grid(lrs []float32, moms []float32, features []int, modules []int, steps []int) []Hyperparams {
	if len(modules) == 0 {
		modules = []int{2}
	}
	var out []Hyperparams
	for _, lr := range lrs {
		for _, m := range moms {
			for _, f := range features {
				for _, mod := range modules {
					for _, s := range steps {
						out = append(out, Hyperparams{
							LR: lr, Momentum: m, Features: f, Modules: mod, TrainSteps: s,
						})
					}
				}
			}
		}
	}
	return out
}

// ValidationResult records one candidate's held-out performance.
type ValidationResult struct {
	Params    Hyperparams `json:"params"`
	TrainLoss float64     `json:"train_loss"`
	Precision float64     `json:"precision"`
	Recall    float64     `json:"recall"`
	F1        float64     `json:"f1"`
	IoU       float64     `json:"iou"`
}

// Better reports whether r beats o on F1 (ties broken by IoU).
func (r ValidationResult) Better(o ValidationResult) bool {
	if r.F1 != o.F1 {
		return r.F1 > o.F1
	}
	return r.IoU > o.IoU
}

// Evaluate trains a fresh model with h on the training split and scores it
// on the held-out split: the unit of work each sweep pod executes.
func Evaluate(h Hyperparams, trainImg, trainLbl, testImg, testLbl *Volume, seed uint64) (ValidationResult, error) {
	return EvaluateCtx(context.Background(), h, trainImg, trainLbl, testImg, testLbl, seed)
}

// EvaluateCtx is Evaluate with cancellation. A failed or cancelled held-out
// segmentation fails the candidate: an all-zero mask from an aborted flood
// must never score as a legitimate (if terrible) model.
func EvaluateCtx(ctx context.Context, h Hyperparams, trainImg, trainLbl, testImg, testLbl *Volume, seed uint64) (ValidationResult, error) {
	cfg := DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = h.Features
	if h.Modules > 0 {
		cfg.Modules = h.Modules
	}
	cfg.MoveStep = [3]int{1, 2, 2}
	net, err := NewNetwork(cfg, seed)
	if err != nil {
		return ValidationResult{}, err
	}
	tr := NewTrainer(net, h.LR, h.Momentum, seed^0xabcd)
	losses, err := tr.TrainOnVolumeCtx(ctx, trainImg, trainLbl, h.TrainSteps, nil)
	if err != nil {
		return ValidationResult{}, err
	}
	seeds := GridSeeds(testImg, cfg.FOV, [3]int{1, 4, 4}, 1.0)
	mask, _, err := net.SegmentCtx(ctx, testImg, seeds, 0, nil)
	if err != nil {
		return ValidationResult{}, fmt.Errorf("ffn: held-out segmentation: %w", err)
	}
	prec, rec := PrecisionRecall(mask, testLbl)
	f1 := 0.0
	if prec+rec > 0 {
		f1 = 2 * prec * rec / (prec + rec)
	}
	return ValidationResult{
		Params:    h,
		TrainLoss: MeanTail(losses, 0.2),
		Precision: prec,
		Recall:    rec,
		F1:        f1,
		IoU:       IoU(mask, testLbl),
	}, nil
}
