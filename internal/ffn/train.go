package ffn

import (
	"context"
	"errors"

	"chaseci/internal/sim"
	"chaseci/internal/tensor"
)

// Trainer drives FFN optimization on a labelled volume, sampling FOV
// examples centered on object voxels (positive-biased sampling, as FFN
// training does) and applying SGD steps.
type Trainer struct {
	Net *Network
	Opt *tensor.SGD
	// PositiveBias is the fraction of samples whose center voxel is inside
	// an object (default 0.5; balanced sampling keeps flood-fill precision
	// high when the seed assertion is wrong).
	PositiveBias float64

	rng *sim.RNG
}

// NewTrainer builds a trainer with the given learning rate and momentum.
func NewTrainer(net *Network, lr, momentum float32, seed uint64) *Trainer {
	return &Trainer{
		Net:          net,
		Opt:          tensor.NewSGD(lr, momentum),
		PositiveBias: 0.5,
		rng:          sim.NewRNG(seed),
	}
}

// ErrNoExamples indicates the label volume has no usable training centers.
var ErrNoExamples = errors.New("ffn: no valid training centers in volume")

// TrainOnVolume runs `steps` optimization steps against (image, labels),
// returning the per-step losses. Labels are a binary volume.
func (t *Trainer) TrainOnVolume(image, labels *Volume, steps int) ([]float64, error) {
	return t.TrainOnVolumeCtx(context.Background(), image, labels, steps, nil)
}

// TrainOnVolumeCtx is the context-aware TrainOnVolume: cancellation is
// checked before every optimizer step, and a cancelled context returns the
// losses of the steps already taken together with ctx.Err(). progress (may
// be nil) is called with the completed step count after each step. With a
// background context the loss sequence is identical to TrainOnVolume's
// (the RNG draw order is unchanged).
func (t *Trainer) TrainOnVolumeCtx(ctx context.Context, image, labels *Volume, steps int, progress func(step int)) ([]float64, error) {
	pos, neg := collectCenters(labels, t.Net.cfg.FOV)
	if len(pos) == 0 && len(neg) == 0 {
		return nil, ErrNoExamples
	}
	losses := make([]float64, 0, steps)
	fov := t.Net.cfg.FOV
	// FOV extracts are reused across steps: TrainStep copies them into its
	// own packed input before touching the network, so mutation is safe.
	img := tensor.New(1, fov[0], fov[1], fov[2])
	lab := tensor.New(1, fov[0], fov[1], fov[2])
	for s := 0; s < steps; s++ {
		if err := ctx.Err(); err != nil {
			return losses, err
		}
		var c [3]int
		usePos := len(pos) > 0 && (len(neg) == 0 || t.rng.Float64() < t.PositiveBias)
		if usePos {
			c = pos[t.rng.Intn(len(pos))]
		} else {
			c = neg[t.rng.Intn(len(neg))]
		}
		extractFOVInto(img, image, fov, c[0], c[1], c[2])
		extractFOVInto(lab, labels, fov, c[0], c[1], c[2])
		losses = append(losses, t.Net.TrainStep(t.Opt, img, lab))
		if progress != nil {
			progress(s + 1)
		}
	}
	return losses, nil
}

// collectCenters lists in-bounds FOV centers, split by label polarity.
func collectCenters(labels *Volume, fov [3]int) (pos, neg [][3]int) {
	for z := fov[0] / 2; z+fov[0]/2 < labels.D; z++ {
		for y := fov[1] / 2; y+fov[1]/2 < labels.H; y++ {
			for x := fov[2] / 2; x+fov[2]/2 < labels.W; x++ {
				if labels.At(z, y, x) > 0.5 {
					pos = append(pos, [3]int{z, y, x})
				} else {
					neg = append(neg, [3]int{z, y, x})
				}
			}
		}
	}
	return pos, neg
}

// MeanTail returns the mean of the final frac (0..1] of xs — a convergence
// summary used by tests and EXPERIMENTS.md.
func MeanTail(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := int(float64(len(xs)) * frac)
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, v := range xs[len(xs)-n:] {
		sum += v
	}
	return sum / float64(n)
}

// IoU computes intersection-over-union between two binary volumes.
func IoU(a, b *Volume) float64 {
	inter, union := 0, 0
	for i := range a.Data {
		av, bv := a.Data[i] > 0.5, b.Data[i] > 0.5
		if av && bv {
			inter++
		}
		if av || bv {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// PrecisionRecall computes segmentation precision and recall of pred against
// truth.
func PrecisionRecall(pred, truth *Volume) (precision, recall float64) {
	tp, fp, fn := 0, 0, 0
	for i := range pred.Data {
		p, g := pred.Data[i] > 0.5, truth.Data[i] > 0.5
		switch {
		case p && g:
			tp++
		case p && !g:
			fp++
		case !p && g:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}
