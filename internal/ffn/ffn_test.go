package ffn

import (
	"math"
	"testing"

	"chaseci/internal/merra"
	"chaseci/internal/tensor"
)

func smallConfig() Config {
	return Config{
		FOV:         [3]int{3, 7, 7},
		Features:    6,
		Modules:     2,
		MoveStep:    [3]int{1, 2, 2},
		MoveProb:    0.8,
		SegmentProb: 0.6,
		PadProb:     0.05,
		SeedProb:    0.95,
	}
}

func TestNewNetworkValidation(t *testing.T) {
	bad := smallConfig()
	bad.FOV = [3]int{4, 7, 7} // even
	if _, err := NewNetwork(bad, 1); err == nil {
		t.Fatal("even FOV accepted")
	}
	bad = smallConfig()
	bad.MoveProb = 1.5
	if _, err := NewNetwork(bad, 1); err == nil {
		t.Fatal("MoveProb > 1 accepted")
	}
	if _, err := NewNetwork(smallConfig(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkDeterministicInit(t *testing.T) {
	a, _ := NewNetwork(smallConfig(), 42)
	b, _ := NewNetwork(smallConfig(), 42)
	for i := range a.wIn.Data {
		if a.wIn.Data[i] != b.wIn.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestParamCount(t *testing.T) {
	n, _ := NewNetwork(smallConfig(), 1)
	f := 6
	want := f*2*27 + f                    // input conv
	want += 2 * (f*f*27 + f + f*f*27 + f) // two modules
	want += f + 1                         // output conv 1x1x1 + bias
	if got := n.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestApplyShapes(t *testing.T) {
	n, _ := NewNetwork(smallConfig(), 1)
	img := tensor.New(1, 3, 7, 7)
	pom := n.SeedPOM()
	out := n.Apply(img, pom)
	if !tensor.SameShape(out, pom) {
		t.Fatalf("Apply output shape %v, want %v", out.Shape, pom.Shape)
	}
}

func TestTrainStepReducesLossOnFixedExample(t *testing.T) {
	n, _ := NewNetwork(smallConfig(), 7)
	opt := tensor.NewSGD(0.05, 0.9)
	img := tensor.New(1, 3, 7, 7)
	lab := tensor.New(1, 3, 7, 7)
	// Object occupies the left half of the FOV; image correlates with label.
	for z := 0; z < 3; z++ {
		for y := 0; y < 7; y++ {
			for x := 0; x < 4; x++ {
				idx := (z*7+y)*7 + x
				img.Data[idx] = 2
				lab.Data[idx] = 1
			}
		}
	}
	first := n.TrainStep(opt, img, lab)
	var last float64
	for i := 0; i < 120; i++ {
		last = n.TrainStep(opt, img, lab)
	}
	if last >= first/2 {
		t.Fatalf("loss did not halve: first=%v last=%v", first, last)
	}
}

// buildARScene produces a small synthetic IVT scene with labels: image and
// binary labels from the merra generator at test scale.
func buildARScene(t *testing.T, steps int) (*Volume, *Volume) {
	t.Helper()
	g := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	gen := merra.NewGenerator(g, 11)
	levels := merra.PressureLevels(g.NLev)
	vol := merra.IVTVolume(gen, levels, 20, steps)
	// Threshold at a high quantile to label intense transport.
	flat := merra.Field2D{NLon: vol.Grid.NLon * vol.Grid.NLat, NLat: vol.Grid.NLev, Data: vol.Data}
	th := flat.Quantile(0.90)
	img := &Volume{D: steps, H: g.NLat, W: g.NLon, Data: vol.Data}
	lbl := NewVolume(steps, g.NLat, g.NLon)
	for i, v := range vol.Data {
		if v >= th {
			lbl.Data[i] = 1
		}
	}
	imgCopy := &Volume{D: img.D, H: img.H, W: img.W, Data: append([]float32(nil), img.Data...)}
	imgCopy.Normalize()
	return imgCopy, lbl
}

func TestTrainerConvergesOnSyntheticIVT(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	n, _ := NewNetwork(smallConfig(), 3)
	tr := NewTrainer(n, 0.03, 0.9, 99)
	losses, err := tr.TrainOnVolume(img, lbl, 300)
	if err != nil {
		t.Fatal(err)
	}
	head := MeanTail(losses[:50], 1)
	tail := MeanTail(losses, 0.2)
	if tail >= head {
		t.Fatalf("training did not reduce loss: head=%v tail=%v", head, tail)
	}
}

func TestSegmentFloodFillsObject(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	n, _ := NewNetwork(smallConfig(), 3)
	tr := NewTrainer(n, 0.03, 0.9, 99)
	if _, err := tr.TrainOnVolume(img, lbl, 400); err != nil {
		t.Fatal(err)
	}
	seeds := GridSeeds(img, n.cfg.FOV, [3]int{1, 4, 4}, 1.0)
	if len(seeds) == 0 {
		t.Fatal("no seeds above threshold")
	}
	mask, stats := n.Segment(img, seeds, 0)
	if stats.Steps == 0 {
		t.Fatal("no inference steps ran")
	}
	if stats.MaskVoxels == 0 {
		t.Fatal("empty segmentation")
	}
	prec, rec := PrecisionRecall(mask, lbl)
	if prec < 0.6 || rec < 0.4 {
		t.Fatalf("segmentation quality too low: precision=%.2f recall=%.2f", prec, rec)
	}
}

func TestSegmentRespectsMaxSteps(t *testing.T) {
	img, _ := buildARScene(t, 6)
	n, _ := NewNetwork(smallConfig(), 3)
	seeds := GridSeeds(img, n.cfg.FOV, [3]int{1, 3, 3}, -10) // everything seeds
	_, stats := n.Segment(img, seeds, 5)
	if stats.Steps > 5 {
		t.Fatalf("Steps = %d, exceeded maxSteps 5", stats.Steps)
	}
}

func TestSegmentIgnoresOutOfBoundsSeeds(t *testing.T) {
	img, _ := buildARScene(t, 6)
	n, _ := NewNetwork(smallConfig(), 3)
	_, stats := n.Segment(img, [][3]int{{0, 0, 0}, {100, 100, 100}}, 0)
	if stats.SeedsUsed != 0 {
		t.Fatalf("out-of-bounds seeds used: %d", stats.SeedsUsed)
	}
}

func TestGridSeedsInBounds(t *testing.T) {
	img := NewVolume(8, 16, 16)
	for i := range img.Data {
		img.Data[i] = 1
	}
	fov := [3]int{3, 5, 5}
	seeds := GridSeeds(img, fov, [3]int{2, 4, 4}, 0.5)
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	for _, s := range seeds {
		if s[0]-fov[0]/2 < 0 || s[0]+fov[0]/2 >= img.D ||
			s[1]-fov[1]/2 < 0 || s[1]+fov[1]/2 >= img.H ||
			s[2]-fov[2]/2 < 0 || s[2]+fov[2]/2 >= img.W {
			t.Fatalf("seed %v leaves FOV out of bounds", s)
		}
	}
}

func TestVolumeNormalize(t *testing.T) {
	v := NewVolume(2, 2, 2)
	for i := range v.Data {
		v.Data[i] = float32(i) * 10
	}
	v.Normalize()
	var sum, sumsq float64
	for _, x := range v.Data {
		sum += float64(x)
		sumsq += float64(x) * float64(x)
	}
	mean := sum / 8
	variance := sumsq/8 - mean*mean
	if math.Abs(mean) > 1e-5 || math.Abs(variance-1) > 1e-4 {
		t.Fatalf("normalize: mean=%v var=%v", mean, variance)
	}
}

func TestIoUMetrics(t *testing.T) {
	a, b := NewVolume(1, 1, 4), NewVolume(1, 1, 4)
	a.Data = []float32{1, 1, 0, 0}
	b.Data = []float32{1, 0, 1, 0}
	if got := IoU(a, b); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("IoU = %v, want 1/3", got)
	}
	empty1, empty2 := NewVolume(1, 1, 4), NewVolume(1, 1, 4)
	if IoU(empty1, empty2) != 1 {
		t.Fatal("IoU of empty masks should be 1")
	}
	p, r := PrecisionRecall(a, b)
	if p != 0.5 || r != 0.5 {
		t.Fatalf("precision/recall = %v/%v, want 0.5/0.5", p, r)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n, _ := NewNetwork(smallConfig(), 13)
	data := n.SaveBytes()
	back, err := LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.cfg != n.cfg {
		t.Fatalf("config mismatch: %+v vs %+v", back.cfg, n.cfg)
	}
	// Identical weights => identical inference.
	img := tensor.New(1, 3, 7, 7)
	for i := range img.Data {
		img.Data[i] = float32(i%5) - 2
	}
	a := n.Apply(img, n.SeedPOM())
	b := back.Apply(img, back.SeedPOM())
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadBytes([]byte("definitely not a model")); err != ErrBadModel {
		t.Fatalf("err = %v, want ErrBadModel", err)
	}
}

func TestTrainOnVolumeNoExamples(t *testing.T) {
	n, _ := NewNetwork(smallConfig(), 1)
	tr := NewTrainer(n, 0.01, 0.9, 1)
	tiny := NewVolume(1, 1, 1) // smaller than FOV: no centers
	if _, err := tr.TrainOnVolume(tiny, tiny, 10); err != ErrNoExamples {
		t.Fatalf("err = %v, want ErrNoExamples", err)
	}
}
