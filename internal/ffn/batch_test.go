package ffn

import (
	"fmt"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/tensor"
)

// batchScene builds a flood scene large enough that batches actually fill.
func batchScene(t testing.TB, floodBatch int) (*Network, *Volume, [][3]int) {
	t.Helper()
	img := synthVolume(42, 6, 20, 22)
	img.Normalize()
	cfg := DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 4
	cfg.MoveStep = [3]int{1, 2, 2}
	cfg.MoveProb = 0.55
	cfg.FloodBatch = floodBatch
	net, err := NewNetwork(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	seeds := GridSeeds(img, cfg.FOV, [3]int{1, 3, 3}, -10)
	if len(seeds) < 4 {
		t.Fatalf("want several seeds, got %d", len(seeds))
	}
	return net, img, seeds
}

// TestSegmentBatchedMatchesPerFOV requires the batched flood to reproduce
// the per-FOV path bit-exactly (mask and statistics) across batch sizes
// 1/2/8 and worker counts 1/2/8 — the equivalence the batched engine's
// "output depends only on image and center" argument promises.
func TestSegmentBatchedMatchesPerFOV(t *testing.T) {
	// Reference: per-FOV path (FloodBatch=1), serial.
	refNet, img, seeds := batchScene(t, 1)
	prev := parallel.SetWorkers(1)
	refMask, refStats := refNet.Segment(img, seeds, 0)
	parallel.SetWorkers(prev)
	if refStats.Steps == 0 || refStats.MaskVoxels == 0 {
		t.Fatalf("degenerate reference run: %+v", refStats)
	}

	for _, batch := range []int{1, 2, 8} {
		net, _, _ := batchScene(t, batch)
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("batch=%d/workers=%d", batch, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				mask, stats := net.Segment(img, seeds, 0)
				if stats != refStats {
					t.Fatalf("stats diverge: %+v, want %+v", stats, refStats)
				}
				for i := range refMask.Data {
					if mask.Data[i] != refMask.Data[i] {
						t.Fatalf("mask voxel %d diverges", i)
					}
				}
			})
		}
	}
}

// TestForwardBatchMatchesForwardInto pins the fused batched forward against
// the training-path forwardInto slot by slot.
func TestForwardBatchMatchesForwardInto(t *testing.T) {
	net, img, seeds := batchScene(t, 8)
	cfg := net.Config()
	fov := cfg.FOV
	fovN := fov[0] * fov[1] * fov[2]
	bs := net.getBatchScratch()
	defer net.putBatchScratch(bs)
	k := cap(bs.pos)
	if len(seeds) < k {
		t.Fatalf("need %d seeds, have %d", k, len(seeds))
	}
	for i := 0; i < k; i++ {
		s := seeds[i]
		extractFOVIntoSlice(bs.in.Data[2*i*fovN:][:fovN], img, fov, s[0], s[1], s[2])
	}
	net.forwardBatchInto(bs, k)

	ref := net.newInferScratch()
	for i := 0; i < k; i++ {
		s := seeds[i]
		out := net.applyFOV(ref, img, s[0], s[1], s[2])
		got := bs.out.Data[i*fovN:][:fovN]
		for j := range out.Data {
			if got[j] != out.Data[j] {
				t.Fatalf("slot %d logit %d: got %v, want %v (not bit-exact)", i, j, got[j], out.Data[j])
			}
		}
	}
}

// TestFloodBatchScratchAllocFree pins the batched flood hot loop: with a
// warmed scratch, extract + batched forward + merge allocates nothing.
func TestFloodBatchScratchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc pins run in the non-race job")
	}
	net, img, seeds := batchScene(t, 8)
	cfg := net.Config()
	fov := cfg.FOV
	fovN := fov[0] * fov[1] * fov[2]
	canvas := make([]float32, img.Size())
	bs := net.getBatchScratch()
	defer net.putBatchScratch(bs)
	k := cap(bs.pos)
	run := func() {
		for i := 0; i < k; i++ {
			s := seeds[i]
			extractFOVIntoSlice(bs.in.Data[2*i*fovN:][:fovN], img, fov, s[0], s[1], s[2])
		}
		net.forwardBatchInto(bs, k)
		for i := 0; i < k; i++ {
			s := seeds[i]
			mergeCore(canvas, img.H, img.W, fov, bs.out.Data[i*fovN:][:fovN], s[0], s[1], s[2])
		}
	}
	run() // warm dispatch pools
	allocs := testing.AllocsPerRun(20, run)
	if allocs != 0 {
		t.Fatalf("batched flood steady-state allocs/op = %v, want 0", allocs)
	}
}

// TestSegmentReusesBatchScratch verifies repeated Segment calls recycle the
// batched scratch through the network's free list instead of rebuilding it.
// The free list is a mutex-guarded LIFO, not a sync.Pool, so reuse is
// deterministic and this test holds under the race detector too.
func TestSegmentReusesBatchScratch(t *testing.T) {
	net, img, seeds := batchScene(t, 8)
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	net.Segment(img, seeds, 0)
	s1 := net.getBatchScratch()
	data := &s1.in.Data[0]
	net.putBatchScratch(s1)
	net.Segment(img, seeds, 0)
	s2 := net.getBatchScratch()
	defer net.putBatchScratch(s2)
	if &s2.in.Data[0] != data {
		t.Fatal("batched scratch was not recycled through the pool")
	}
}

// TestConfigFloodBatchValidation covers the new knob's validation.
func TestConfigFloodBatchValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FloodBatch = -1
	if _, err := NewNetwork(cfg, 1); err == nil {
		t.Fatal("negative FloodBatch must be rejected")
	}
	cfg.FloodBatch = 10 * MaxFloodBatch
	if cfg.effectiveFloodBatch() != MaxFloodBatch {
		t.Fatalf("oversized FloodBatch not capped: %d", cfg.effectiveFloodBatch())
	}
	cfg.FloodBatch = 0
	if cfg.effectiveFloodBatch() != DefaultFloodBatch {
		t.Fatalf("default FloodBatch = %d, want %d", cfg.effectiveFloodBatch(), DefaultFloodBatch)
	}
}

// BenchmarkSegmentBatch tracks flood-fill inference across batch sizes on
// one network geometry (results are identical; only wall-clock changes).
func BenchmarkSegmentBatch(b *testing.B) {
	img := synthVolume(42, 6, 24, 36)
	img.Normalize()
	for _, batch := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.FOV = [3]int{3, 7, 7}
		cfg.Features = 6
		cfg.MoveStep = [3]int{1, 2, 2}
		cfg.FloodBatch = batch
		net, err := NewNetwork(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		seeds := GridSeeds(img, cfg.FOV, [3]int{1, 4, 4}, -10)
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net.Segment(img, seeds, 0)
			}
		})
	}
}

// TestTrainStepAllocFree pins the training hot path at zero steady-state
// heap allocations (tightened from the earlier <= 2 guard: the scratch and
// optimizer state are fully preallocated after the first step).
func TestTrainStepAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc pins run in the non-race job")
	}
	cfg := DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 4
	net, err := NewNetwork(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := tensor.NewSGD(0.01, 0.9)
	img := synthVolume(8, 3, 7, 7)
	lab := NewVolume(3, 7, 7)
	it := extractFOV(img, cfg.FOV, 1, 3, 3)
	lt := extractFOV(lab, cfg.FOV, 1, 3, 3)
	net.TrainStep(opt, it, lt) // warm scratch + velocity maps
	allocs := testing.AllocsPerRun(50, func() {
		net.TrainStep(opt, it, lt)
	})
	if allocs != 0 {
		t.Fatalf("TrainStep steady-state allocs/op = %v, want 0", allocs)
	}
}
