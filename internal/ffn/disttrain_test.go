package ffn

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// distScene builds a labelled scene plus a fresh trainer at the given
// width; every trainer in a test shares seeds so loss curves are comparable
// bit for bit.
func distTrainer(t *testing.T, img, lbl *Volume, workers int) *DistTrainer {
	t.Helper()
	net, err := NewNetwork(smallConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDistTrainer(net, 0.05, 0.9, img, lbl, 77, 8, workers)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runRounds(t *testing.T, tr *DistTrainer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := tr.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistTrainerWorkerCountInvariance is the tentpole's core promise: the
// per-round loss sequence is bit-identical at any data-parallel width.
func TestDistTrainerWorkerCountInvariance(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	base := distTrainer(t, img, lbl, 1)
	runRounds(t, base, 10)
	for _, w := range []int{2, 3, 4, 16} {
		tr := distTrainer(t, img, lbl, w)
		runRounds(t, tr, 10)
		for r, l := range tr.Losses() {
			if l != base.Losses()[r] {
				t.Fatalf("workers=%d round %d: loss %v != single-worker %v", w, r, l, base.Losses()[r])
			}
		}
	}
}

// TestDistTrainerElasticInvariance: adding and removing workers between
// rounds never changes the losses, only the modeled comm volume.
func TestDistTrainerElasticInvariance(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	base := distTrainer(t, img, lbl, 1)
	runRounds(t, base, 9)

	tr := distTrainer(t, img, lbl, 2)
	for r := 0; r < 9; r++ {
		switch r {
		case 3:
			if err := tr.SetWorkers(4); err != nil {
				t.Fatal(err)
			}
		case 6:
			if err := tr.SetWorkers(1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Round(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for r, l := range tr.Losses() {
		if l != base.Losses()[r] {
			t.Fatalf("elastic round %d: loss %v != steady %v", r, l, base.Losses()[r])
		}
	}
	if tr.Workers() != 1 {
		t.Fatalf("final width = %d, want 1", tr.Workers())
	}
	if err := tr.SetWorkers(0); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("SetWorkers(0) = %v, want ErrNoWorkers", err)
	}
}

// TestDistTrainerCommModel checks the ring all-reduce accounting: zero at
// width 1, 2*(W-1)*GradBytes across the ring otherwise.
func TestDistTrainerCommModel(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	tr := distTrainer(t, img, lbl, 1)
	if got := tr.CommBytesPerRound(); got != 0 {
		t.Fatalf("1-worker comm = %v, want 0", got)
	}
	tr.SetWorkers(4)
	want := 2 * 3 * tr.Net.GradBytes()
	if got := tr.CommBytesPerRound(); got != want {
		t.Fatalf("4-worker comm = %v, want %v", got, want)
	}
}

// TestCheckpointRoundTrip: encode -> decode -> encode is the identity, and
// the decoded trainer state matches the original.
func TestCheckpointRoundTrip(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	tr := distTrainer(t, img, lbl, 2)
	runRounds(t, tr, 4)

	raw := tr.CheckpointBytes()
	ck, err := DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Round != 4 || ck.BatchPerRound != 8 || ck.SampleSeed != 77 || len(ck.Losses) != 4 {
		t.Fatalf("decoded header = round %d batch %d seed %d losses %d",
			ck.Round, ck.BatchPerRound, ck.SampleSeed, len(ck.Losses))
	}
	for i, l := range ck.Losses {
		if l != tr.Losses()[i] {
			t.Fatalf("loss[%d] = %v, want %v", i, l, tr.Losses()[i])
		}
	}
	if again := ck.EncodeBytes(); !bytes.Equal(raw, again) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(raw), len(again))
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
	img, lbl := buildARScene(t, 6)
	tr := distTrainer(t, img, lbl, 1)
	raw := tr.CheckpointBytes()
	if _, err := DecodeCheckpoint(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestDistTrainerResumeBitExact is the checkpoint -> restore -> continue
// acceptance check: a run interrupted at round 5 and resumed at a different
// width reproduces the uninterrupted loss curve exactly, and the snapshot
// does not disturb the trainer that took it.
func TestDistTrainerResumeBitExact(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	base := distTrainer(t, img, lbl, 1)
	runRounds(t, base, 12)

	tr := distTrainer(t, img, lbl, 2)
	runRounds(t, tr, 5)
	ck, err := DecodeCheckpoint(tr.CheckpointBytes())
	if err != nil {
		t.Fatal(err)
	}
	// The snapshotted trainer keeps running: its curve must stay on the
	// baseline too (the checkpoint is a copy, not a handoff).
	runRounds(t, tr, 7)

	resumed, err := ResumeDistTrainer(ck, img, lbl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.RoundIndex() != 5 || len(resumed.Losses()) != 5 {
		t.Fatalf("resume starts at round %d with %d losses, want 5/5",
			resumed.RoundIndex(), len(resumed.Losses()))
	}
	runRounds(t, resumed, 7)

	for r, want := range base.Losses() {
		if tr.Losses()[r] != want {
			t.Fatalf("snapshotted trainer round %d: %v != %v", r, tr.Losses()[r], want)
		}
		if resumed.Losses()[r] != want {
			t.Fatalf("resumed trainer round %d: %v != %v", r, resumed.Losses()[r], want)
		}
	}
}

func TestDistTrainerRoundCancelled(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	tr := distTrainer(t, img, lbl, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Round(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Round on cancelled ctx = %v, want context.Canceled", err)
	}
	if tr.RoundIndex() != 0 || len(tr.Losses()) != 0 {
		t.Fatalf("cancelled round mutated state: round %d, %d losses", tr.RoundIndex(), len(tr.Losses()))
	}
}

// TestEvaluateCtxPropagatesSegmentError is the regression for the silent
// error drop this PR fixes: a cancelled held-out segmentation must fail the
// candidate, never score its all-zero mask as a legitimate model.
func TestEvaluateCtxPropagatesSegmentError(t *testing.T) {
	img, lbl := buildARScene(t, 6)
	trImg, trLbl, teImg, teLbl := Split(img, lbl, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Zero train steps skip the (also cancellable) training loop, so the
	// first ctx check the evaluation hits is inside the segmentation.
	h := Hyperparams{LR: 0.03, Momentum: 0.9, Features: 4, Modules: 1, TrainSteps: 0}
	_, err := EvaluateCtx(ctx, h, trImg, trLbl, teImg, teLbl, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	// The untouched path still works end to end.
	h.TrainSteps = 30
	res, err := Evaluate(h, trImg, trLbl, teImg, teLbl, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params != h || res.TrainLoss <= 0 {
		t.Fatalf("evaluation result = %+v", res)
	}
}
