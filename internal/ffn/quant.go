package ffn

import (
	"chaseci/internal/tensor"
)

// Int8 quantized inference. Config.Precision == PrecisionInt8 routes every
// Segment flood path (serial FIFO, sharded LIFO, batched) through
// tensor's quantized conv kernels: 3x3x3 weights are quantized once per
// weight state (per-output-channel symmetric int8), activations are
// quantized dynamically per FOV slot, and the 1x1x1 logit head stays f32.
// Because activation quantization is per slot, the int8 mask is
// bit-identical at every batch size and worker count, exactly like the f32
// path. Accuracy versus f32 is error-bounded rather than exact: quant_test.go
// pins the max-abs logit error and the mask disagreement rate.

// Precision selects the inference arithmetic for Segment.
type Precision string

const (
	// PrecisionF32 (or empty) runs the reference float32 kernels.
	PrecisionF32 Precision = "f32"
	// PrecisionInt8 runs quantized inference: int8 weights and uint8
	// activations with int32 accumulation, requantized to f32 between
	// layers. Training always stays f32.
	PrecisionInt8 Precision = "int8"
)

// quantNet caches the quantized form of the network's 3x3x3 conv weights.
// It is rebuilt lazily after every training step (weights changed).
type quantNet struct {
	wIn  *tensor.QuantizedWeights
	mods []*quantModule
}

type quantModule struct {
	q1, q2 *tensor.QuantizedWeights
}

// int8Inference reports whether Segment should run the quantized path.
func (n *Network) int8Inference() bool { return n.cfg.Precision == PrecisionInt8 }

// quantized returns the cached quantized weights, building them on first
// use. Not safe for concurrent first call — SegmentCtx builds it before
// fanning out flood workers.
func (n *Network) quantized() *quantNet {
	if n.qn == nil {
		qn := &quantNet{wIn: tensor.QuantizeWeights(n.wIn)}
		for _, m := range n.mods {
			qn.mods = append(qn.mods, &quantModule{
				q1: tensor.QuantizeWeights(m.w1),
				q2: tensor.QuantizeWeights(m.w2),
			})
		}
		n.qn = qn
	}
	return n.qn
}

// forwardBatchQInto is the int8 counterpart of forwardBatchInto: quantized
// conv+ReLU for the input layer and module hidden, quantized
// conv+residual+ReLU for the module tail, and the f32 1x1x1 logit head.
// Results land in s.out; per-slot activation quantization makes them
// bit-identical per slot at every batch size and worker count.
func (n *Network) forwardBatchQInto(s *batchScratch, k int) {
	qn := n.quantized()
	tensor.Conv3DBatchQReLUInto(s.x0, s.in, qn.wIn, n.bIn, k)
	cur, nxt := s.x0, s.x1
	for i, m := range n.mods {
		qm := qn.mods[i]
		tensor.Conv3DBatchQReLUInto(s.hid, cur, qm.q1, m.b1, k)
		tensor.Conv3DBatchQResReLUInto(nxt, s.hid, qm.q2, m.b2, cur, k)
		cur, nxt = nxt, cur
	}
	tensor.Conv3DBatchInto(s.out, cur, n.wOut, n.bOut, k)
}

// fovApplier abstracts one-FOV network application over the active
// precision: the f32 path uses the per-worker inferScratch, the int8 path
// drives the first slot of a pooled batchScratch through the quantized
// batched forward. One applier serves one goroutine.
type fovApplier struct {
	n  *Network
	s  *inferScratch // f32 path
	bs *batchScratch // int8 path (slot 0)
}

func (n *Network) newFOVApplier() *fovApplier {
	a := &fovApplier{n: n}
	if n.int8Inference() {
		a.bs = n.getBatchScratch()
	} else {
		a.s = n.newInferScratch()
	}
	return a
}

// apply runs the network on the FOV centered at p and returns the logit
// FOV, valid until the next apply call.
func (a *fovApplier) apply(image *Volume, p fovPos) []float32 {
	if a.bs != nil {
		fov := a.n.cfg.FOV
		fovN := fov[0] * fov[1] * fov[2]
		extractFOVIntoSlice(a.bs.in.Data[:fovN], image, fov, p.z, p.y, p.x)
		a.n.forwardBatchQInto(a.bs, 1)
		return a.bs.out.Data[:fovN]
	}
	return a.n.applyFOV(a.s, image, p.z, p.y, p.x).Data
}

// release returns pooled resources (the int8 path's batch scratch).
func (a *fovApplier) release() {
	if a.bs != nil {
		a.n.putBatchScratch(a.bs)
		a.bs = nil
	}
}
