package ffn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"chaseci/internal/tensor"
)

// Training checkpoints for the train_dist job kind: the full state a
// data-parallel run needs to continue bit-exactly — model weights (the
// FFNMODL format), optimizer momentum buffers, the sampling seed and batch
// geometry, the next round index, and the loss history so far. Sampling is
// stateless per round (each round derives its RNG from SampleSeed and the
// round index), so no RNG state needs to survive the round boundary: a run
// resumed from round R replays rounds R..N exactly as the uninterrupted run
// would have.

var ckptMagic = [8]byte{'F', 'F', 'N', 'C', 'K', 'P', 'T', 1}

// ErrBadCheckpoint indicates the bytes are not a serialized checkpoint.
var ErrBadCheckpoint = errors.New("ffn: not a serialized training checkpoint")

// Checkpoint is the resumable state of a distributed training run at a
// round boundary.
type Checkpoint struct {
	Net *Network
	Opt *tensor.SGD
	// SampleSeed is the run's sampling seed; each round r draws from
	// sim.NewRNG(SampleSeed ^ (r+1)*phi) independently of worker count.
	SampleSeed uint64
	// BatchPerRound is the global number of FOV examples per round.
	BatchPerRound int
	// Round is the next round index to execute (== len(Losses)).
	Round int
	// Losses is the per-round mean loss history up to Round.
	Losses []float64
}

// walkVelocities visits the optimizer momentum buffer of every parameter in
// the network's canonical order (wIn, bIn, per-module w1/b1/w2/b2, wOut,
// bOut) — the same walk applySGD and Save use.
func walkVelocities(n *Network, opt *tensor.SGD, visit func(data []float32) error) error {
	if err := visit(opt.VelocityFor(n.wIn).Data); err != nil {
		return err
	}
	if err := visit(opt.VelocityBiasFor(&n.bIn)); err != nil {
		return err
	}
	for _, m := range n.mods {
		for _, v := range [][]float32{
			opt.VelocityFor(m.w1).Data, opt.VelocityBiasFor(&m.b1),
			opt.VelocityFor(m.w2).Data, opt.VelocityBiasFor(&m.b2),
		} {
			if err := visit(v); err != nil {
				return err
			}
		}
	}
	if err := visit(opt.VelocityFor(n.wOut).Data); err != nil {
		return err
	}
	return visit(opt.VelocityBiasFor(&n.bOut))
}

// Encode serializes the checkpoint to w.
func (c *Checkpoint) Encode(w io.Writer) error {
	if _, err := w.Write(ckptMagic[:]); err != nil {
		return err
	}
	model := c.Net.SaveBytes()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(model))); err != nil {
		return err
	}
	if _, err := w.Write(model); err != nil {
		return err
	}
	hdr := []any{
		c.Opt.LR, c.Opt.Momentum,
		c.SampleSeed,
		uint32(c.BatchPerRound), uint32(c.Round), uint32(len(c.Losses)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, c.Losses); err != nil {
		return err
	}
	return walkVelocities(c.Net, c.Opt, func(data []float32) error {
		return binary.Write(w, binary.LittleEndian, data)
	})
}

// EncodeBytes returns the serialized checkpoint.
func (c *Checkpoint) EncodeBytes() []byte {
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	return buf.Bytes()
}

// DecodeCheckpoint reconstructs a checkpoint (network, optimizer with
// momentum state, loss history) from serialized bytes.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, ErrBadCheckpoint
	}
	if magic != ckptMagic {
		return nil, ErrBadCheckpoint
	}
	var modelLen uint32
	if err := binary.Read(r, binary.LittleEndian, &modelLen); err != nil {
		return nil, fmt.Errorf("%w: truncated model length", ErrBadCheckpoint)
	}
	if int(modelLen) > r.Len() {
		return nil, fmt.Errorf("%w: model length %d exceeds payload", ErrBadCheckpoint, modelLen)
	}
	model := make([]byte, modelLen)
	if _, err := io.ReadFull(r, model); err != nil {
		return nil, err
	}
	net, err := LoadBytes(model)
	if err != nil {
		return nil, fmt.Errorf("checkpoint model: %w", err)
	}
	var (
		lr, momentum float32
		sampleSeed   uint64
		batch, round uint32
		nLosses      uint32
	)
	for _, v := range []any{&lr, &momentum, &sampleSeed, &batch, &round, &nLosses} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadCheckpoint)
		}
	}
	if int(nLosses)*8 > r.Len() {
		return nil, fmt.Errorf("%w: loss count %d exceeds payload", ErrBadCheckpoint, nLosses)
	}
	losses := make([]float64, nLosses)
	if err := binary.Read(r, binary.LittleEndian, losses); err != nil {
		return nil, err
	}
	opt := tensor.NewSGD(lr, momentum)
	err = walkVelocities(net, opt, func(dst []float32) error {
		return binary.Read(r, binary.LittleEndian, dst)
	})
	if err != nil {
		return nil, fmt.Errorf("%w: truncated velocities", ErrBadCheckpoint)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, r.Len())
	}
	return &Checkpoint{
		Net: net, Opt: opt,
		SampleSeed:    sampleSeed,
		BatchPerRound: int(batch),
		Round:         int(round),
		Losses:        losses,
	}, nil
}
