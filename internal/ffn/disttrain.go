package ffn

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"chaseci/internal/sim"
	"chaseci/internal/tensor"
)

// DistTrainer runs synchronous data-parallel SGD with a worker-count-
// invariant sampling scheme. Every round draws one global batch of FOV
// centers from an RNG derived only from (SampleSeed, round index); the
// examples are sharded across W worker goroutines that compute gradients
// concurrently against the shared network (ComputeGrads is read-only), and
// the all-reduce averages the per-sample gradients in global sample order.
// The resulting loss sequence is therefore bit-identical at any worker
// count, under elastic worker changes between rounds, and across a
// checkpoint/restore boundary.
type DistTrainer struct {
	Net *Network
	Opt *tensor.SGD
	// PositiveBias matches Trainer's balanced sampling (default 0.5).
	PositiveBias float64

	img, lbl *Volume
	pos, neg [][3]int

	sampleSeed uint64
	batch      int
	workers    int
	round      int
	losses     []float64
}

// ErrNoWorkers indicates a non-positive worker count.
var ErrNoWorkers = errors.New("ffn: distributed trainer needs >= 1 worker")

// NewDistTrainer builds a distributed trainer over a labelled volume.
func NewDistTrainer(net *Network, lr, momentum float32, img, lbl *Volume, sampleSeed uint64, batchPerRound, workers int) (*DistTrainer, error) {
	return newDistTrainer(net, tensor.NewSGD(lr, momentum), img, lbl, sampleSeed, batchPerRound, workers, 0, nil)
}

// ResumeDistTrainer continues a checkpointed run on a (bit-identical)
// labelled volume: the next Round executes exactly the round the
// interrupted run would have executed.
func ResumeDistTrainer(ck *Checkpoint, img, lbl *Volume, workers int) (*DistTrainer, error) {
	return newDistTrainer(ck.Net, ck.Opt, img, lbl, ck.SampleSeed, ck.BatchPerRound, workers,
		ck.Round, append([]float64(nil), ck.Losses...))
}

func newDistTrainer(net *Network, opt *tensor.SGD, img, lbl *Volume, sampleSeed uint64, batchPerRound, workers, round int, losses []float64) (*DistTrainer, error) {
	if workers < 1 {
		return nil, ErrNoWorkers
	}
	if batchPerRound < 1 {
		return nil, fmt.Errorf("ffn: batch per round %d, want >= 1", batchPerRound)
	}
	pos, neg := collectCenters(lbl, net.cfg.FOV)
	if len(pos) == 0 && len(neg) == 0 {
		return nil, ErrNoExamples
	}
	return &DistTrainer{
		Net: net, Opt: opt, PositiveBias: 0.5,
		img: img, lbl: lbl, pos: pos, neg: neg,
		sampleSeed: sampleSeed, batch: batchPerRound, workers: workers,
		round: round, losses: losses,
	}, nil
}

// Workers returns the current data-parallel width.
func (t *DistTrainer) Workers() int { return t.workers }

// SetWorkers changes the data-parallel width before the next round — the
// elastic add/remove path. Results are unaffected by construction.
func (t *DistTrainer) SetWorkers(n int) error {
	if n < 1 {
		return ErrNoWorkers
	}
	t.workers = n
	return nil
}

// RoundIndex returns the next round to execute (== completed rounds).
func (t *DistTrainer) RoundIndex() int { return t.round }

// Losses returns the per-round mean loss history (caller must not mutate).
func (t *DistTrainer) Losses() []float64 { return t.losses }

// CommBytesPerRound models one synchronous ring all-reduce at the current
// width: each of W workers moves 2*(W-1)/W gradient payloads per round
// (reduce-scatter + all-gather). A single worker moves nothing.
func (t *DistTrainer) CommBytesPerRound() float64 {
	w := float64(t.workers)
	if w <= 1 {
		return 0
	}
	return w * 2 * (w - 1) / w * t.Net.GradBytes()
}

// roundRNG derives round r's sampling stream. Independent of worker count
// and of how many prior rounds ran in this process.
func (t *DistTrainer) roundRNG(r int) *sim.RNG {
	return sim.NewRNG(t.sampleSeed ^ (uint64(r)+1)*0x9e3779b97f4a7c15)
}

// Round executes one synchronous data-parallel round and returns its global
// mean loss.
func (t *DistTrainer) Round(ctx context.Context) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	rng := t.roundRNG(t.round)
	centers := make([][3]int, t.batch)
	for i := range centers {
		usePos := len(t.pos) > 0 && (len(t.neg) == 0 || rng.Float64() < t.PositiveBias)
		if usePos {
			centers[i] = t.pos[rng.Intn(len(t.pos))]
		} else {
			centers[i] = t.neg[rng.Intn(len(t.neg))]
		}
	}

	w := t.workers
	if w > t.batch {
		w = t.batch
	}
	grads := make([]*ParamGrads, t.batch)
	sampleLoss := make([]float64, t.batch)
	fov := t.Net.cfg.FOV
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		// Contiguous shard: worker wi takes samples [lo, hi).
		lo := wi * t.batch / w
		hi := (wi + 1) * t.batch / w
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			img := tensor.New(1, fov[0], fov[1], fov[2])
			lab := tensor.New(1, fov[0], fov[1], fov[2])
			for i := lo; i < hi; i++ {
				c := centers[i]
				extractFOVInto(img, t.img, fov, c[0], c[1], c[2])
				extractFOVInto(lab, t.lbl, fov, c[0], c[1], c[2])
				sampleLoss[i], grads[i] = t.Net.ComputeGrads(img, lab)
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}

	// The all-reduce: average in global sample order, so the result does not
	// depend on which worker produced which gradient.
	avg, err := AverageGrads(grads)
	if err != nil {
		return 0, err
	}
	t.Net.ApplyGrads(t.Opt, avg)
	t.Net.qn = nil // weights changed; quantized cache is stale
	loss := 0.0
	for _, l := range sampleLoss {
		loss += l
	}
	loss /= float64(t.batch)
	t.losses = append(t.losses, loss)
	t.round++
	return loss, nil
}

// CheckpointBytes serializes the run's state at the current round boundary.
// The bytes are a full snapshot — the trainer can keep running afterwards.
func (t *DistTrainer) CheckpointBytes() []byte {
	ck := &Checkpoint{
		Net: t.Net, Opt: t.Opt,
		SampleSeed:    t.sampleSeed,
		BatchPerRound: t.batch,
		Round:         t.round,
		Losses:        t.losses,
	}
	return ck.EncodeBytes()
}
