package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/ffn"
	"chaseci/internal/gpusim"
	"chaseci/internal/merra"
	"chaseci/internal/queue"
	"chaseci/internal/service"
	"chaseci/internal/tensor"
)

// DistTrainConfig drives the Section III-E2 extension as running code: a
// Kubernetes ReplicaSet of TensorFlow-style training workers discovered
// through a Service. Since PR 10 the actual data-parallel SGD is the
// chased/v1 train_dist job kind — this entry point is a thin wrapper that
// submits one such job to an in-process runner and keeps the virtual-time
// ecosystem (pod topology, GPU compute time, WAN ring all-reduce traffic)
// as the surrounding test harness.
type DistTrainConfig struct {
	Namespace string
	Workers   int
	Rounds    int // synchronous update rounds
	// BatchPerWorker is FOV examples per worker per round.
	BatchPerWorker int
	GPU            gpusim.Model
	// VoxelsPerRound is the modeled GPU work per worker per round, used for
	// virtual compute time.
	VoxelsPerRound float64
	// Scene sizes the real training data.
	Scene *RealComputeConfig
	// LR / Momentum are the optimizer settings.
	LR, Momentum float32
	Seed         uint64
}

// DefaultDistTrain returns a 4-worker setup at experiment scale.
func DefaultDistTrainConfig() DistTrainConfig {
	return DistTrainConfig{
		Namespace:      "dist-train",
		Workers:        4,
		Rounds:         60,
		BatchPerWorker: 4,
		GPU:            gpusim.GTX1080Ti(),
		VoxelsPerRound: 5e5,
		Scene:          DefaultRealCompute(),
		LR:             0.03,
		Momentum:       0.9,
		Seed:           7,
	}
}

// DistTrainResult reports one distributed-training run.
type DistTrainResult struct {
	Workers     int
	Losses      []float64 // mean loss per round across workers
	VirtualTime time.Duration
	// CommBytes is the total gradient traffic moved over the WAN.
	CommBytes float64
	// Endpoints are the worker pod names the Service resolved.
	Endpoints []string
}

// FinalLoss returns the mean of the last fifth of the loss curve.
func (r *DistTrainResult) FinalLoss() float64 { return ffn.MeanTail(r.Losses, 0.2) }

// awaitJob polls an in-process runner until the job is terminal, returning
// its result payload. Failure and cancellation surface as errors.
func awaitJob(r *service.Runner, id string) (json.RawMessage, error) {
	for {
		raw, st, ok := r.Result(id)
		if !ok {
			return nil, fmt.Errorf("core: job %s vanished from the runner", id)
		}
		if st.State.Terminal() {
			if st.State != api.StateSucceeded {
				return nil, fmt.Errorf("core: job %s %s: %s", id, st.State, st.Error)
			}
			return raw, nil
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// RunDistributedTraining executes the extension: it spawns the ReplicaSet
// and Service on the ecosystem, submits the training itself as one
// train_dist job (real gradients, worker-count-invariant losses), then
// replays the per-round compute and ring all-reduce cost on the virtual
// clock.
func (e *Ecosystem) RunDistributedTraining(cfg DistTrainConfig) (*DistTrainResult, error) {
	if cfg.Workers <= 0 || cfg.Rounds <= 0 {
		return nil, errors.New("core: Workers and Rounds must be positive")
	}
	if cfg.Scene == nil {
		cfg.Scene = DefaultRealCompute()
	}
	if cfg.BatchPerWorker <= 0 {
		cfg.BatchPerWorker = 4
	}
	if _, err := e.Cluster.CreateNamespace(cfg.Namespace, nil); err != nil && err != cluster.ErrDuplicate {
		return nil, err
	}

	// ReplicaSet + Service: the Kubernetes topology §III-E2 describes.
	rs, err := e.Cluster.CreateReplicaSet(cluster.ReplicaSetSpec{
		Name: "tf-train", Namespace: cfg.Namespace, Replicas: cfg.Workers,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 2, Memory: 8e9, GPUs: 1},
			Labels:   map[string]string{"app": "tf-train"},
			Run:      func(pc *cluster.PodCtx) {}, // long-running worker
		},
	})
	if err != nil {
		return nil, err
	}
	svc := e.Cluster.CreateService("tf-train", cfg.Namespace, map[string]string{"app": "tf-train"})
	e.Clock.RunFor(time.Second) // let the scheduler bind the replicas
	eps := svc.Endpoints()
	if len(eps) != cfg.Workers {
		rs.Delete()
		return nil, fmt.Errorf("core: service resolved %d endpoints, want %d", len(eps), cfg.Workers)
	}

	res := &DistTrainResult{Workers: cfg.Workers}
	for _, p := range eps {
		res.Endpoints = append(res.Endpoints, p.Spec.Name)
	}

	// One training code path: the train_dist job kind does the real SGD.
	src, th := sceneSource(cfg.Scene)
	runner := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 1)
	defer runner.Close()
	st, err := runner.Submit(&api.JobRequest{
		Kind: api.KindTrainDist,
		Name: "tf-train",
		TrainDist: &api.TrainDistSpec{
			Source:        src,
			Threshold:     th,
			Workers:       cfg.Workers,
			Rounds:        cfg.Rounds,
			BatchPerRound: cfg.Workers * cfg.BatchPerWorker,
			LR:            cfg.LR,
			Momentum:      cfg.Momentum,
			Net: &api.NetConfig{
				FOV: [3]int{3, 7, 7}, Features: 6, MoveStep: [3]int{1, 2, 2},
			},
			NetSeed:    cfg.Seed,
			SampleSeed: cfg.Seed,
		},
	}, "core")
	if err != nil {
		rs.Delete()
		return nil, err
	}
	raw, err := awaitJob(runner, st.ID)
	if err != nil {
		rs.Delete()
		return nil, err
	}
	var tr api.TrainDistResult
	if err := json.Unmarshal(raw, &tr); err != nil {
		rs.Delete()
		return nil, fmt.Errorf("core: train_dist result: %w", err)
	}
	res.Losses = tr.Losses

	// Replay the run on the virtual clock: per round, parallel GPU compute
	// plus the ring all-reduce over the WAN between the worker pods' sites.
	start := e.Clock.Now()
	for round := 0; round < len(tr.Losses); round++ {
		e.Clock.RunFor(cfg.GPU.TrainTime(cfg.VoxelsPerRound))
		if cfg.Workers > 1 {
			res.CommBytes += run2ringAllReduce(e, eps, tr.GradBytes)
		}
	}
	res.VirtualTime = e.Clock.Now() - start
	rs.Delete()
	e.Clock.RunFor(time.Second)
	return res, nil
}

// run2ringAllReduce moves one ring all-reduce's traffic between consecutive
// endpoints' sites in virtual time and returns the bytes moved.
func run2ringAllReduce(e *Ecosystem, eps []*cluster.Pod, gradBytes float64) float64 {
	// Ring all-reduce: each worker sends 2*(g-1)/g of the gradient size per
	// phase pair; model it as simultaneous neighbor transfers.
	g := len(eps)
	per := 2 * float64(g-1) / float64(g) * gradBytes
	total := 0.0
	pending := 0
	for i, p := range eps {
		next := eps[(i+1)%g]
		a := e.Cluster.Node(p.Node)
		b := e.Cluster.Node(next.Node)
		if a == nil || b == nil {
			continue
		}
		pending++
		total += per
		e.Net.Transfer(a.Site, b.Site, per, func() { pending-- })
	}
	e.Clock.RunWhile(func() bool { return pending > 0 })
	return total
}

// sceneSource renders a RealComputeConfig as an inline chased/v1 volume
// source plus the quantile threshold that binarizes it — the raw form the
// training job kinds consume (they threshold and normalize themselves,
// exactly as buildScene does).
func sceneSource(rc *RealComputeConfig) (api.VolumeSource, float32) {
	gen := merra.NewGenerator(rc.Grid, rc.Seed)
	levels := merra.PressureLevels(rc.Grid.NLev)
	vol := merra.IVTVolume(gen, levels, 20, rc.TimeSteps)
	flat := merra.Field2D{NLon: len(vol.Data), NLat: 1, Data: vol.Data}
	th := flat.Quantile(rc.Quantile)
	return api.VolumeSource{
		D: rc.TimeSteps, H: rc.Grid.NLat, W: rc.Grid.NLon,
		Data: append([]float32(nil), vol.Data...),
	}, th
}

// buildScene renders the shared training data for a RealComputeConfig.
func buildScene(rc *RealComputeConfig) (*ffn.Volume, *ffn.Volume) {
	gen := merra.NewGenerator(rc.Grid, rc.Seed)
	levels := merra.PressureLevels(rc.Grid.NLev)
	vol := merra.IVTVolume(gen, levels, 20, rc.TimeSteps)
	flat := merra.Field2D{NLon: len(vol.Data), NLat: 1, Data: vol.Data}
	th := flat.Quantile(rc.Quantile)
	img := &ffn.Volume{D: rc.TimeSteps, H: rc.Grid.NLat, W: rc.Grid.NLon,
		Data: append([]float32(nil), vol.Data...)}
	img.Normalize()
	lbl := ffn.NewVolume(rc.TimeSteps, rc.Grid.NLat, rc.Grid.NLon)
	for i, v := range vol.Data {
		if v >= th {
			lbl.Data[i] = 1
		}
	}
	return img, lbl
}

// trainingCenters lists in-bounds FOV centers split by label polarity.
func trainingCenters(lbl *ffn.Volume, fov [3]int) (pos, neg [][3]int) {
	for z := fov[0] / 2; z+fov[0]/2 < lbl.D; z++ {
		for y := fov[1] / 2; y+fov[1]/2 < lbl.H; y++ {
			for x := fov[2] / 2; x+fov[2]/2 < lbl.W; x++ {
				if lbl.At(z, y, x) > 0.5 {
					pos = append(pos, [3]int{z, y, x})
				} else {
					neg = append(neg, [3]int{z, y, x})
				}
			}
		}
	}
	return pos, neg
}

// extractVolumeFOV copies a FOV around center c into a (1,D,H,W) tensor.
func extractVolumeFOV(v *ffn.Volume, fov [3]int, c [3]int) *tensor.Tensor {
	out := tensor.New(1, fov[0], fov[1], fov[2])
	i := 0
	for z := c[0] - fov[0]/2; z <= c[0]+fov[0]/2; z++ {
		for y := c[1] - fov[1]/2; y <= c[1]+fov[1]/2; y++ {
			for x := c[2] - fov[2]/2; x <= c[2]+fov[2]/2; x++ {
				out.Data[i] = v.At(z, y, x)
				i++
			}
		}
	}
	return out
}
