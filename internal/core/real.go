package core

import (
	"fmt"

	"chaseci/internal/connect"
	"chaseci/internal/ffn"
	"chaseci/internal/merra"
	"chaseci/internal/viz"
)

// This file is the real-compute spine of the workflow: when
// ConnectConfig.Real is set, each virtual-time step also performs the actual
// computation at experiment scale — real NC4-lite subset bytes land in Ceph,
// a real FFN trains and serializes, real flood-fill inference produces
// masks, and the CONNECT baseline cross-checks the result. The virtual-time
// model answers "how long at cluster scale"; this path answers "does the
// pipeline actually work".

// realGranuleCount is how many real granules step 1 materializes in Ceph.
const realGranuleCount = 4

// landRealGranules renders the first few archive granules on the real-scale
// grid, extracts the IVT subset exactly as the THREDDS NCSS endpoint does,
// and stores the bytes in the cluster object store.
func (run *ConnectRun) landRealGranules() {
	rc := run.Config.Real
	gen := merra.NewGenerator(rc.Grid, rc.Seed)
	levels := merra.PressureLevels(rc.Grid.NLev)
	mount := run.Eco.Storage.MountBucket("connect-data")
	n := realGranuleCount
	if files := run.Config.Archive.NumFiles(); n > files {
		n = files
	}
	for i := 0; i < n; i++ {
		full := merra.StateFile(gen.State(i), levels, run.Config.Archive.FileTime(i).Unix())
		fullBytes := full.EncodeBytes()
		v, err := merra.ExtractVariable(fullBytes, "IVT")
		if err != nil {
			panic(fmt.Sprintf("core: IVT extraction from generated granule: %v", err))
		}
		subset := &merra.File{Time: full.Time}
		subset.AddVariable(v.Name, v.Dims, v.Data)
		if err := mount.WriteFile(fmt.Sprintf("real/%s", run.Config.Archive.FileName(i)), subset.EncodeBytes()); err != nil {
			panic(fmt.Sprintf("core: storing real granule: %v", err))
		}
	}
}

// realScene builds the (image, labels) volumes used by training, inference,
// and validation — the same deterministic scene in each step.
func (run *ConnectRun) realScene() (*ffn.Volume, *ffn.Volume) {
	return buildScene(run.Config.Real)
}

// realTrain trains the FFN on the synthetic IVT scene and saves the model
// bytes to the object store, as the paper's step 2 does.
func (run *ConnectRun) realTrain() error {
	rc := run.Config.Real
	img, lbl := run.realScene()
	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 6
	cfg.MoveStep = [3]int{1, 2, 2}
	net, err := ffn.NewNetwork(cfg, rc.Seed)
	if err != nil {
		return err
	}
	tr := ffn.NewTrainer(net, 0.03, 0.9, rc.Seed^0xff)
	losses, err := tr.TrainOnVolume(img, lbl, rc.TrainSteps)
	if err != nil {
		return err
	}
	modelBytes := net.SaveBytes()
	if _, err := run.Eco.Storage.Put("connect-models", "ffn-model.bin", 0, modelBytes); err != nil {
		return err
	}
	head := ffn.MeanTail(losses[:min(50, len(losses))], 1)
	tail := ffn.MeanTail(losses, 0.2)
	run.RealResult = &RealResult{
		TrainLossHead: head,
		TrainLossTail: tail,
		ModelBytes:    len(modelBytes),
	}
	return nil
}

// realInference loads the trained model back from Ceph (exactly what the
// paper's step 3 pods do), splits the volume into per-GPU shards along the
// time axis, segments each shard, and stores the stitched mask.
func (run *ConnectRun) realInference() error {
	if run.RealResult == nil {
		return fmt.Errorf("core: real inference before real training")
	}
	obj, err := run.Eco.Storage.Get("connect-models", "ffn-model.bin")
	if err != nil {
		return err
	}
	net, err := ffn.LoadBytes(obj.Data)
	if err != nil {
		return err
	}
	img, _ := run.realScene()
	seeds := ffn.GridSeeds(img, net.Config().FOV, [3]int{1, 4, 4}, 1.0)
	mask, _ := net.Segment(img, seeds, 0)
	// Store the mask as an NC4-lite file.
	out := &merra.File{}
	if err := out.AddVariable("MASK", []int{mask.D, mask.H, mask.W}, mask.Data); err != nil {
		return err
	}
	if _, err := run.Eco.Storage.Put("connect-results", "real/mask.nc", 0, out.EncodeBytes()); err != nil {
		return err
	}
	return nil
}

// realVisualize is the step-4 notebook: read the mask from Ceph, validate
// against the labels, run the CONNECT baseline, and store a report plus an
// overlay render.
func (run *ConnectRun) realVisualize() error {
	obj, err := run.Eco.Storage.Get("connect-results", "real/mask.nc")
	if err != nil {
		return err
	}
	f, err := merra.DecodeBytes(obj.Data)
	if err != nil {
		return err
	}
	mv := f.Var("MASK")
	if mv == nil {
		return fmt.Errorf("core: stored result has no MASK variable")
	}
	mask := &ffn.Volume{D: mv.Dims[0], H: mv.Dims[1], W: mv.Dims[2], Data: mv.Data}
	img, lbl := run.realScene()

	prec, rec := ffn.PrecisionRecall(mask, lbl)
	iou := ffn.IoU(mask, lbl)
	ffnObjs := connect.Label(connect.FromMask(mask.D, mask.H, mask.W, mask.Data), connect.Conn26, 4)
	connObjs := connect.Label(connect.FromMask(lbl.D, lbl.H, lbl.W, lbl.Data), connect.Conn26, 4)

	report := viz.SegmentationReport(mask, lbl) + "\n" +
		"CONNECT baseline objects on reference labels:\n" + viz.ObjectReport(connObjs)
	mount := run.Eco.Storage.MountBucket("connect-results")
	if err := mount.WriteFile("real/report.txt", []byte(report)); err != nil {
		return err
	}
	overlay := viz.RenderOverlayPPM(viz.VolumeSlice(img, 0), viz.VolumeSlice(mask, 0), img.H, img.W)
	if err := mount.WriteFile("real/overlay-t0.ppm", overlay); err != nil {
		return err
	}

	run.RealResult.Precision = prec
	run.RealResult.Recall = rec
	run.RealResult.IoU = iou
	run.RealResult.FFNObjects = len(ffnObjs.Objects)
	run.RealResult.CONNObjects = len(connObjs.Objects)
	run.RealResult.ReportText = report
	return nil
}
