package core

import (
	"bytes"
	"testing"
)

func TestCAVERenderAssemblesWall(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultCAVE()
	res, err := eco.RunCAVERender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tiles != cfg.Rows*cfg.Cols {
		t.Fatalf("tiles = %d, want %d", res.Tiles, cfg.Rows*cfg.Cols)
	}
	if !bytes.HasPrefix(res.WallPGM, []byte("P5\n")) {
		t.Fatal("wall is not a PGM image")
	}
	if res.NodesUsed < 2 {
		t.Fatalf("render used %d nodes; expected distribution across the cluster", res.NodesUsed)
	}
	if res.BytesMoved <= 0 || res.VirtualTime <= 0 {
		t.Fatalf("traffic=%v time=%v", res.BytesMoved, res.VirtualTime)
	}
	// The assembled wall is stored for the display host.
	if _, err := eco.Storage.Get("suncave", "wall.pgm"); err != nil {
		t.Fatal("wall not stored:", err)
	}
}

func TestCAVERenderHonorsNodeSelector(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultCAVE()
	cfg.NodeSelector = map[string]string{"site": "ucsd"}
	res, err := eco.RunCAVERender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All render pods must have landed on ucsd nodes; 12 tiles over 8 ucsd
	// FIONA8s runs fine.
	if res.Tiles != 12 {
		t.Fatalf("tiles = %d", res.Tiles)
	}
	for _, e := range eco.Cluster.Events() {
		if e.Kind == "PodScheduled" && len(e.Object) > 8 && e.Object[:8] == "suncave/" {
			if !bytes.Contains([]byte(e.Message), []byte("ucsd")) {
				t.Fatalf("render pod scheduled off-site: %s", e.Message)
			}
		}
	}
}

func TestCAVERenderValidation(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultCAVE()
	cfg.Rows = 0
	if _, err := eco.RunCAVERender(cfg); err == nil {
		t.Fatal("zero-row wall accepted")
	}
}
