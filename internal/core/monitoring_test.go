package core

import (
	"strings"
	"testing"
	"time"

	"chaseci/internal/metrics"
)

func TestMonitoringExportsNodeUp(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	mon, err := eco.DeployMonitoring(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	eco.Clock.RunFor(2 * time.Minute)
	up := eco.Metrics.Select("node_up", nil)
	if len(up) != 24 {
		t.Fatalf("node_up series = %d, want 24", len(up))
	}
	for _, s := range up {
		if s.Last().Value != 1 {
			t.Fatalf("node %s reports down on healthy cluster", s.Labels["node"])
		}
	}
	mon.Stop()
}

func TestMonitoringDetectsNodeLoss(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	if _, err := eco.DeployMonitoring(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	eco.Clock.RunFor(time.Minute)
	eco.Cluster.KillNode("ucsd-fiona8-03")
	eco.Clock.RunFor(time.Minute)
	s := eco.Metrics.Select("node_up", metrics.Labels{"node": "ucsd-fiona8-03"})
	if len(s) != 1 || s[0].Last().Value != 0 {
		t.Fatal("lost node still reports up")
	}
	// Restore: exporter redeploys and the gauge recovers.
	eco.Cluster.RestoreNode("ucsd-fiona8-03")
	eco.Clock.RunFor(time.Minute)
	if s[0].Last().Value != 1 {
		t.Fatal("restored node does not report up")
	}
}

func TestMonitoringTracksAllocation(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	if _, err := eco.DeployMonitoring(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Run the workflow; GPU allocation gauges must reflect the inference
	// plateau on at least one node.
	run, _ := eco.NewConnectWorkflow(scaledConfig())
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, s := range eco.Metrics.Select("node_gpus_allocated", nil) {
		for _, smp := range s.Samples {
			if smp.Value > peak {
				peak = smp.Value
			}
		}
	}
	if peak < 1 {
		t.Fatalf("no node ever showed GPU allocation (peak=%v)", peak)
	}
}

func TestHealthDashboardRenders(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	mon, err := eco.DeployMonitoring(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	eco.Clock.RunFor(5 * time.Minute)
	page := mon.HealthDashboard(40, 5)
	for _, want := range []string{"Nautilus cluster health", "nodes up", "GPUs allocated"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, page)
		}
	}
}
