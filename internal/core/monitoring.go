package core

import (
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/metrics"
)

// Monitoring is the deployed health stack of Section II-A's closing
// paragraph: "Nautilus needs software to monitor the health, availability,
// and performance of resources" — a node-exporter DaemonSet feeding
// per-node gauges into the Prometheus-like registry, ready for the Grafana
// renderers.
type Monitoring struct {
	DaemonSet *cluster.DaemonSet

	eco    *Ecosystem
	ticker interface{ Stop() }
}

// DeployMonitoring installs the monitoring namespace and a node-exporter
// DaemonSet. Every scrape interval each live exporter publishes its node's
// allocation gauges and node_up=1; nodes without a live exporter (lost, or
// just joined and not yet covered) read node_up=0.
func (e *Ecosystem) DeployMonitoring(scrapeEvery time.Duration) (*Monitoring, error) {
	if scrapeEvery <= 0 {
		scrapeEvery = 30 * time.Second
	}
	if _, err := e.Cluster.CreateNamespace("monitoring", nil); err != nil && err != cluster.ErrDuplicate {
		return nil, err
	}
	ds, err := e.Cluster.CreateDaemonSet(cluster.DaemonSetSpec{
		Name: "node-exporter", Namespace: "monitoring",
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 0.1, Memory: 1e8},
			Labels:   map[string]string{"app": "node-exporter"},
			Run:      func(pc *cluster.PodCtx) { /* scraped by the ticker below */ },
		},
	})
	if err != nil {
		return nil, err
	}
	m := &Monitoring{DaemonSet: ds, eco: e}
	m.ticker = e.Clock.Every(scrapeEvery, m.scrape)
	m.scrapeAt0()
	return m, nil
}

// scrapeAt0 records an initial sample so dashboards have a t=0 point.
func (m *Monitoring) scrapeAt0() { m.scrape() }

// scrape publishes one round of per-node samples.
func (m *Monitoring) scrape() {
	reg := m.eco.Metrics
	for _, n := range m.eco.Cluster.Nodes() {
		labels := metrics.Labels{"node": n.Name, "site": n.Site}
		up := 0.0
		if exp := m.DaemonSet.PodOn(n.Name); exp != nil && n.Ready {
			up = 1
		}
		reg.Gauge("node_up", labels).Set(up)
		if up == 1 {
			alloc := n.Allocated()
			reg.Gauge("node_cpu_allocated", labels).Set(alloc.CPU)
			reg.Gauge("node_mem_allocated_bytes", labels).Set(alloc.Memory)
			reg.Gauge("node_gpus_allocated", labels).Set(float64(alloc.GPUs))
		}
	}
}

// Stop halts scraping and removes the exporters.
func (m *Monitoring) Stop() {
	m.ticker.Stop()
	m.DaemonSet.Delete()
}

// HealthDashboard renders a Grafana-style page of node_up and GPU
// allocation across the cluster.
func (m *Monitoring) HealthDashboard(width, height int) string {
	reg := m.eco.Metrics
	d := metrics.NewDashboard("Nautilus cluster health")
	now := m.eco.Clock.Now()
	upSeries := reg.Select("node_up", nil)
	if len(upSeries) > 0 {
		sum := metrics.SumSeries(upSeries, 0, now, 30*time.Second)
		d.AddPanel(sum, metrics.ChartOptions{
			Width: width, Height: height, Title: "nodes up", Unit: "",
		})
	}
	gpuSeries := reg.Select("node_gpus_allocated", nil)
	if len(gpuSeries) > 0 {
		sum := metrics.SumSeries(gpuSeries, 0, now, 30*time.Second)
		d.AddPanel(sum, metrics.ChartOptions{
			Width: width, Height: height, Title: "GPUs allocated", Unit: "",
		})
	}
	return d.Render()
}
