package core

import (
	"strings"
	"testing"
)

// completedRun caches one reduced-scale run for the figure-rendering tests.
func completedRun(t *testing.T) *ConnectRun {
	t.Helper()
	eco := BuildNautilus(DefaultNautilus())
	run, err := eco.NewConnectWorkflow(scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	return run
}

func TestFig3Rendering(t *testing.T) {
	run := completedRun(t)
	out := run.Fig3(40)
	if !strings.Contains(out, "Fig 3") {
		t.Fatalf("missing title:\n%s", out)
	}
	// One sparkline row per worker.
	if got := strings.Count(out, "download-"); got != 10 {
		t.Fatalf("worker rows = %d, want 10:\n%s", got, out)
	}
	if !strings.Contains(out, "total run time") {
		t.Fatal("missing totals line")
	}
}

func TestFig4Rendering(t *testing.T) {
	run := completedRun(t)
	out := run.Fig4(40, 6)
	for _, want := range []string{"Fig 4", "peak", "mean", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Rendering(t *testing.T) {
	run := completedRun(t)
	out := run.Fig5(40)
	for _, want := range []string{"Fig 5", "prep 56m0s", "training 4h10m0s", "p", "T"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Rendering(t *testing.T) {
	run := completedRun(t)
	out := run.Fig6(40, 5)
	for _, want := range []string{"Fig 6", "CPUs in use", "memory in use", "GPUs in use"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	run := completedRun(t)
	out := run.Table1()
	for _, want := range []string{"Table I", "1-download", "2-train", "3-inference", "4-visualize", "pods"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestStepDurationUnknownStep(t *testing.T) {
	run := completedRun(t)
	if d := run.StepDuration("no-such-step"); d != 0 {
		t.Fatalf("unknown step duration = %v, want 0", d)
	}
}
