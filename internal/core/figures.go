package core

import (
	"fmt"
	"strings"
	"time"

	"chaseci/internal/metrics"
	"chaseci/internal/workflow"
)

// This file turns a completed ConnectRun's metric series into the paper's
// figures: the per-worker download dashboard (Fig 3), the network usage
// chart (Fig 4), the training phases (Fig 5), and the inference utilization
// series (Fig 6). cmd/benchtab and bench_test.go both render through these.

// Fig3 renders the download-job orchestration dashboard: per-worker CPU
// sparklines over the step-1 window plus totals, the shape of the paper's
// Figure 3.
func (run *ConnectRun) Fig3(width int) string {
	if width <= 0 {
		width = 60
	}
	reg := run.Eco.Metrics
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3 — Kubernetes data download job orchestration (%d workers, Redis queue)\n",
		run.Config.DownloadWorkers)
	series := reg.Select("connect_worker_cpu", nil)
	for _, s := range series {
		fmt.Fprintf(&b, "  %-14s %s\n", s.Labels["pod"], metrics.Sparkline(s.Samples, width))
	}
	report := run.Workflow.Report()
	dl := stepByName(report, "1-download")
	fmt.Fprintf(&b, "  total run time %v, %.0f GB transferred (%d NetCDF files)\n",
		dl.Duration.Round(time.Minute), run.BytesDownloaded.Value()/1e9,
		run.Config.Archive.NumFiles())
	return b.String()
}

// Fig4 renders network usage during the download with peak statistics, the
// shape of the paper's Figure 4.
func (run *ConnectRun) Fig4(width, height int) string {
	reg := run.Eco.Metrics
	rate := reg.Select("connect_download_rate_bytes", nil)
	var b strings.Builder
	b.WriteString("Fig 4 — network usage during download job\n")
	if len(rate) == 0 || len(rate[0].Samples) == 0 {
		b.WriteString("(no samples)\n")
		return b.String()
	}
	s := rate[0]
	b.WriteString(metrics.Chart(s.Samples, metrics.ChartOptions{
		Width: width, Height: height, Title: "aggregate download rate", Unit: "B/s",
	}))
	peak := metrics.MaxOf(s.Samples)
	mean := metrics.MeanOf(s.Samples)
	fmt.Fprintf(&b, "  peak %.0f MB/s, mean %.0f MB/s (paper: max 593 MB/s bursts; fluid model reports sustained rate)\n",
		peak/1e6, mean/1e6)
	return b.String()
}

// Fig5 renders the training-job phase timeline: data preparation then FFN
// optimization, the shape of the paper's Figure 5.
func (run *ConnectRun) Fig5(width int) string {
	reg := run.Eco.Metrics
	var b strings.Builder
	b.WriteString("Fig 5 — training job: data preparation (phase 1) then FFN training (phase 2)\n")
	phases := reg.Select("connect_train_phase", nil)
	if len(phases) == 0 {
		b.WriteString("(no samples)\n")
		return b.String()
	}
	s := phases[0]
	var prepStart, trainStart, trainEnd time.Duration
	for _, sm := range s.Samples {
		switch sm.Value {
		case 1:
			prepStart = sm.At
		case 2:
			trainStart = sm.At
		case 0:
			trainEnd = sm.At
		}
	}
	prep := trainStart - prepStart
	train := trainEnd - trainStart
	total := prep + train
	if total > 0 {
		prepCols := int(float64(width) * float64(prep) / float64(total))
		fmt.Fprintf(&b, "  [%s%s]\n", strings.Repeat("p", prepCols), strings.Repeat("T", width-prepCols))
	}
	fmt.Fprintf(&b, "  prep %v, training %v, total %v (paper: 306m total on one 1080ti)\n",
		prep.Round(time.Minute), train.Round(time.Minute), (prep + train).Round(time.Minute))
	return b.String()
}

// Fig6 renders the inference job's resource series: CPUs, memory and GPUs in
// use over the whole run, the shape of the paper's Figure 6 (three stacked
// panels).
func (run *ConnectRun) Fig6(width, height int) string {
	reg := run.Eco.Metrics
	var b strings.Builder
	b.WriteString("Fig 6 — inference job utilization\n")
	for _, panel := range []struct {
		metric, title, unit string
	}{
		{"k8s_cpu_in_use", "CPUs in use", ""},
		{"k8s_mem_in_use_bytes", "memory in use", "B"},
		{"k8s_gpus_in_use", "GPUs in use", ""},
	} {
		ss := reg.Select(panel.metric, nil)
		if len(ss) == 0 {
			continue
		}
		b.WriteString(metrics.Chart(ss[0].Samples, metrics.ChartOptions{
			Width: width, Height: height, Title: "  " + panel.title, Unit: panel.unit,
		}))
	}
	return b.String()
}

// Table1 renders the resource summary table in the paper's Table I layout.
func (run *ConnectRun) Table1() string {
	report := run.Workflow.Report()
	var b strings.Builder
	b.WriteString("Table I — Nautilus resource summary for all steps in the workflow\n")
	b.WriteString(report.RenderTable())
	return b.String()
}

func stepByName(r workflow.Report, name string) workflow.StepReport {
	for _, s := range r.Steps {
		if s.Name == name {
			return s
		}
	}
	return workflow.StepReport{}
}

// StepDuration returns a named step's measured duration from the run.
func (run *ConnectRun) StepDuration(name string) time.Duration {
	return stepByName(run.Workflow.Report(), name).Duration
}
