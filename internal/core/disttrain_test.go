package core

import (
	"testing"

	"chaseci/internal/ffn"
	"chaseci/internal/tensor"
)

func TestDistributedTrainingConverges(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultDistTrainConfig()
	res, err := eco.RunDistributedTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != cfg.Rounds {
		t.Fatalf("got %d loss rounds, want %d", len(res.Losses), cfg.Rounds)
	}
	head := ffn.MeanTail(res.Losses[:10], 1)
	tail := res.FinalLoss()
	if tail >= head {
		t.Fatalf("distributed training did not converge: %v -> %v", head, tail)
	}
	if len(res.Endpoints) != cfg.Workers {
		t.Fatalf("endpoints = %v, want %d workers", res.Endpoints, cfg.Workers)
	}
	if res.CommBytes <= 0 {
		t.Fatal("no all-reduce traffic recorded")
	}
	if res.VirtualTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	// Workers' pods must be torn down afterwards.
	if got := eco.Cluster.PodsInPhase(cfg.Namespace, 1 /* PodRunning */); got != 0 {
		t.Fatalf("%d training pods still running after teardown", got)
	}
}

func TestDistributedTrainingSingleWorkerNoComm(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultDistTrainConfig()
	cfg.Workers = 1
	cfg.Rounds = 10
	res, err := eco.RunDistributedTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes != 0 {
		t.Fatalf("single worker moved %v comm bytes, want 0", res.CommBytes)
	}
}

func TestDistributedTrainingMoreWorkersLowerLossPerRound(t *testing.T) {
	// With a bigger effective batch (more workers), the loss after a fixed
	// number of rounds should be at least as good, and virtual time per
	// round should not grow with compute (it is parallel) beyond comm cost.
	run := func(workers int) *DistTrainResult {
		eco := BuildNautilus(DefaultNautilus())
		cfg := DefaultDistTrainConfig()
		cfg.Workers = workers
		cfg.Rounds = 40
		res, err := eco.RunDistributedTraining(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r8 := run(8)
	// Same number of rounds: 8 workers see 8x the examples. Allow slack but
	// demand it not be dramatically worse.
	if r8.FinalLoss() > r1.FinalLoss()*1.5 {
		t.Fatalf("8-worker loss %v much worse than 1-worker %v", r8.FinalLoss(), r1.FinalLoss())
	}
	// Comm bytes scale with workers and rounds.
	if r8.CommBytes <= 0 {
		t.Fatal("8-worker run has no comm traffic")
	}
}

func TestDistributedTrainingValidation(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultDistTrainConfig()
	cfg.Workers = 0
	if _, err := eco.RunDistributedTraining(cfg); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestAverageGradsMatchesSerialTrainStep(t *testing.T) {
	// One worker, batch 1: ComputeGrads + ApplyGrads must equal TrainStep.
	mk := func() *ffn.Network {
		cfg := ffn.DefaultConfig()
		cfg.FOV = [3]int{3, 7, 7}
		cfg.Features = 6
		cfg.MoveStep = [3]int{1, 2, 2}
		n, err := ffn.NewNetwork(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := mk(), mk()
	img, lbl := buildScene(DefaultRealCompute())
	fov := [3]int{3, 7, 7}
	c := [3]int{1, 8, 8}
	fi := extractVolumeFOV(img, fov, c)
	fl := extractVolumeFOV(lbl, fov, c)

	optA := tensor.NewSGD(0.03, 0.9)
	optB := tensor.NewSGD(0.03, 0.9)
	lossA := a.TrainStep(optA, fi, fl)
	lossB, g := b.ComputeGrads(fi, fl)
	avg, err := ffn.AverageGrads([]*ffn.ParamGrads{g})
	if err != nil {
		t.Fatal(err)
	}
	b.ApplyGrads(optB, avg)
	if lossA != lossB {
		t.Fatalf("losses differ: %v vs %v", lossA, lossB)
	}
	// After identical updates, both predict identically.
	pa := a.Apply(fi, a.SeedPOM())
	pb := b.Apply(fi, b.SeedPOM())
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			t.Fatal("distributed single-worker update diverged from serial TrainStep")
		}
	}
}
