package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/merra"
	"chaseci/internal/viz"
)

// CAVEConfig drives the Section III-E4 extension: render a result field on
// the SunCAVE tiled display wall by fanning tile-render pods out across
// labeled GPU nodes ("Kubernetes object labeling conventions enabled
// straightforward targeting of specific nodes") and streaming the tiles over
// the PRP to the display site.
type CAVEConfig struct {
	Namespace string
	// Rows x Cols is the display-wall tiling (the related-work demo drove 11
	// remote GPU nodes; defaults give a 3x4 = 12-tile wall).
	Rows, Cols int
	// DisplaySite is where the wall lives (tiles stream here).
	DisplaySite string
	// NodeSelector restricts render pods to specific nodes.
	NodeSelector map[string]string
	// Scene selects the field to render (IVT at its first time step).
	Scene *RealComputeConfig
}

// DefaultCAVE returns a 12-tile wall driven from UCSD-labeled GPU nodes.
func DefaultCAVE() CAVEConfig {
	return CAVEConfig{
		Namespace:    "suncave",
		Rows:         3,
		Cols:         4,
		DisplaySite:  "ucsd",
		NodeSelector: map[string]string{"gpu": "1080ti"},
		Scene:        DefaultRealCompute(),
	}
}

// CAVEResult reports a wall render.
type CAVEResult struct {
	WallPGM     []byte        // assembled P5 image
	Tiles       int           // tiles rendered
	NodesUsed   int           // distinct nodes that hosted render pods
	VirtualTime time.Duration // submit -> wall assembled
	BytesMoved  float64       // tile traffic into the display site
}

// RunCAVERender renders the scene's IVT field (t=0) on the wall: one pod per
// tile does the real rasterization, writes its tile to Ceph, and streams it
// to the display site over the WAN; the display assembles the wall.
func (e *Ecosystem) RunCAVERender(cfg CAVEConfig) (*CAVEResult, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, errors.New("core: CAVE tiling must be positive")
	}
	if cfg.Scene == nil {
		cfg.Scene = DefaultRealCompute()
	}
	if _, err := e.Cluster.CreateNamespace(cfg.Namespace, nil); err != nil && err != cluster.ErrDuplicate {
		return nil, err
	}

	// The field to display: IVT at the scene's first step.
	gen := merra.NewGenerator(cfg.Scene.Grid, cfg.Scene.Seed)
	levels := merra.PressureLevels(cfg.Scene.Grid.NLev)
	field := merra.IVT(gen.State(20), levels)
	grid := viz.TileGrid{Rows: cfg.Rows, Cols: cfg.Cols, H: field.NLat, W: field.NLon}
	lo, hi := float32(0), field.Max()

	mount := e.Storage.MountBucket("suncave")
	start := e.Clock.Now()
	bytesMoved := 0.0
	nodes := make(map[string]bool)

	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "tile-render", Namespace: cfg.Namespace,
		Parallelism: cfg.Rows * cfg.Cols,
		Template: cluster.PodTemplate{
			Requests:     cluster.Resources{CPU: 1, Memory: 4e9, GPUs: 1},
			NodeSelector: cfg.NodeSelector,
			Labels:       map[string]string{"app": "suncave"},
			Run: func(pc *cluster.PodCtx) {
				idx := pc.Index()
				r, c := idx/cfg.Cols, idx%cfg.Cols
				// Real rasterization of this pod's tile.
				tile := viz.RenderTile(field.Data, grid, r, c, lo, hi)
				meta, err := json.Marshal(tile)
				if err != nil {
					pc.Fail(err.Error())
					return
				}
				if err := mount.WriteFile(fmt.Sprintf("tiles/%d-%d.json", r, c), meta); err != nil {
					pc.Fail(err.Error())
					return
				}
				// Stream the tile to the display site over the PRP.
				node := e.Cluster.Node(pc.NodeName())
				nodes[node.Name] = true
				sz := float64(len(tile.Pixels))
				bytesMoved += sz
				e.Net.Transfer(node.Site, cfg.DisplaySite, sz, func() {
					if pc.Alive() {
						pc.Succeed()
					}
				})
			},
		},
	})
	if err != nil {
		return nil, err
	}
	done := false
	job.OnComplete(func(ok bool) { done = true })
	e.Clock.RunWhile(func() bool { return !done })
	if job.Failed() {
		return nil, errors.New("core: tile render job failed")
	}

	// The display host assembles the wall from the stored tiles.
	var tiles []viz.Tile
	for _, key := range mount.Glob("tiles/") {
		data, err := mount.ReadFile(key)
		if err != nil {
			return nil, err
		}
		var t viz.Tile
		if err := json.Unmarshal(data, &t); err != nil {
			return nil, err
		}
		tiles = append(tiles, t)
	}
	wall, err := viz.AssembleWall(grid, tiles)
	if err != nil {
		return nil, err
	}
	if err := mount.WriteFile("wall.pgm", wall); err != nil {
		return nil, err
	}
	return &CAVEResult{
		WallPGM:     wall,
		Tiles:       len(tiles),
		NodesUsed:   len(nodes),
		VirtualTime: e.Clock.Now() - start,
		BytesMoved:  bytesMoved,
	}, nil
}
