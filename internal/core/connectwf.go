package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/gpusim"
	"chaseci/internal/merra"
	"chaseci/internal/metrics"
	"chaseci/internal/netsim"
	"chaseci/internal/workflow"
)

// ConnectConfig parameterizes the Section III case study. The defaults
// reproduce the paper's runs exactly; benches vary individual fields
// (worker counts, GPU counts, subsetting) for the scaling and ablation
// experiments.
type ConnectConfig struct {
	Namespace string
	// Archive is the granule catalog to move (use merra.MERRA2() for the
	// paper's full run, .Slice(n) for scaled runs).
	Archive merra.ArchiveSpec
	// Subset selects the THREDDS single-variable subset (246 GB) instead of
	// whole granules (455 GB).
	Subset bool
	// DownloadWorkers is the number of queue-consuming pods (paper: 10).
	DownloadWorkers int
	// ParallelStreams is aria2's concurrent download count per worker
	// (paper: 20).
	ParallelStreams int
	// URLsPerMessage is how many granule URLs each Redis message carries.
	URLsPerMessage int
	// InferenceGPUs is the pod/GPU count of step 3 (paper: 50).
	InferenceGPUs int
	// GPU is the accelerator timing model.
	GPU gpusim.Model
	// TrainVoxels / InferVoxels are the modeled workload sizes; zero means
	// derive from the paper's constants scaled by the archive slice.
	TrainVoxels float64
	InferVoxels float64
	// MergeBytesPerSec is each worker's NetCDF->HDF merge throughput.
	MergeBytesPerSec float64
	// SampleEvery is the Grafana scrape interval for figure series.
	SampleEvery time.Duration
	// Real enables the real-compute path (FFN + CONNECT on synthetic IVT at
	// the configured grid scale) alongside the virtual-time run.
	Real *RealComputeConfig
}

// RealComputeConfig sizes the real FFN/CONNECT computation embedded in the
// workflow.
type RealComputeConfig struct {
	Grid       merra.Grid
	Seed       uint64
	TrainSteps int // SGD steps
	TimeSteps  int // IVT volume depth (the paper's "240 3-hourly images")
	Quantile   float64
}

// DefaultRealCompute returns a laptop-scale real-compute setup.
func DefaultRealCompute() *RealComputeConfig {
	return &RealComputeConfig{
		Grid:       merra.Grid{NLon: 36, NLat: 24, NLev: 6},
		Seed:       11,
		TrainSteps: 300,
		TimeSteps:  6,
		Quantile:   0.90,
	}
}

// PaperConnectConfig returns the exact configuration of the paper's run.
func PaperConnectConfig() ConnectConfig {
	w := gpusim.Paper()
	return ConnectConfig{
		Namespace:       "connect",
		Archive:         merra.MERRA2(),
		Subset:          true,
		DownloadWorkers: 10,
		ParallelStreams: 20,
		URLsPerMessage:  250,
		InferenceGPUs:   w.InferGPUs,
		GPU:             gpusim.GTX1080Ti(),
		// TrainVoxels/InferVoxels left zero: defaults() derives them from
		// the paper constants, scaling inference with any archive slice.
		MergeBytesPerSec: 500e6,
		SampleEvery:      30 * time.Second,
	}
}

func (c *ConnectConfig) defaults() {
	if c.Namespace == "" {
		c.Namespace = "connect"
	}
	if c.DownloadWorkers <= 0 {
		c.DownloadWorkers = 10
	}
	if c.ParallelStreams <= 0 {
		c.ParallelStreams = 20
	}
	if c.URLsPerMessage <= 0 {
		c.URLsPerMessage = 250
	}
	if c.InferenceGPUs <= 0 {
		c.InferenceGPUs = 50
	}
	if c.GPU.InferVoxelsPerSec == 0 {
		c.GPU = gpusim.GTX1080Ti()
	}
	if c.MergeBytesPerSec <= 0 {
		c.MergeBytesPerSec = 500e6
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 30 * time.Second
	}
	w := gpusim.Paper()
	frac := float64(c.Archive.NumFiles()) / float64(merra.MERRA2().NumFiles())
	if c.TrainVoxels == 0 {
		c.TrainVoxels = w.TrainVoxels // training volume is fixed (30 days)
	}
	if c.InferVoxels == 0 {
		c.InferVoxels = w.InferVoxels * frac
	}
}

// ConnectRun is a handle on one execution of the case-study workflow.
type ConnectRun struct {
	Workflow *workflow.Workflow
	Eco      *Ecosystem
	Config   ConnectConfig

	// BytesDownloaded counts payload bytes landed by step 1.
	BytesDownloaded *metrics.Counter
	// Real-compute artifacts (nil unless Config.Real was set).
	RealResult *RealResult

	dlCurrentMsg map[uint64]string // pod UID -> in-flight queue message
}

// RealResult carries the real-compute outputs of the run.
type RealResult struct {
	TrainLossHead float64
	TrainLossTail float64
	Precision     float64
	Recall        float64
	IoU           float64
	FFNObjects    int
	CONNObjects   int
	ModelBytes    int
	ReportText    string
}

const queueKey = "connect:urls"

// NewConnectWorkflow assembles the 4-step workflow on an ecosystem. The
// returned run's Workflow must be driven by the ecosystem clock; use
// Execute for the common run-to-completion case.
func (e *Ecosystem) NewConnectWorkflow(cfg ConnectConfig) (*ConnectRun, error) {
	cfg.defaults()
	if _, err := e.Cluster.CreateNamespace(cfg.Namespace, nil); err != nil && err != cluster.ErrDuplicate {
		return nil, err
	}
	run := &ConnectRun{
		Eco: e, Config: cfg,
		BytesDownloaded: e.Metrics.Counter("connect_bytes_downloaded", nil),
		dlCurrentMsg:    make(map[uint64]string),
	}
	wf := workflow.New("connect-segmentation", e.Clock)
	run.Workflow = wf

	wf.AddStep(workflow.StepSpec{
		Name: "1-download",
		Run:  run.stepDownload,
	})
	wf.AddStep(workflow.StepSpec{
		Name: "2-train", DependsOn: []string{"1-download"},
		Run: run.stepTrain,
	})
	wf.AddStep(workflow.StepSpec{
		Name: "3-inference", DependsOn: []string{"2-train"},
		Run: run.stepInference,
	})
	wf.AddStep(workflow.StepSpec{
		Name: "4-visualize", DependsOn: []string{"3-inference"},
		Run: run.stepVisualize,
	})

	// Re-queue in-flight download messages when a worker's node is lost, so
	// the workflow is exactly-once per message even under failures.
	e.Cluster.OnPodPhase(func(p *cluster.Pod) {
		if p.Phase == cluster.PodFailed && p.Reason == "NodeLost" {
			if msg, ok := run.dlCurrentMsg[p.UID]; ok {
				delete(run.dlCurrentMsg, p.UID)
				e.Queue.LPush(queueKey, msg)
			}
		}
	})
	return run, nil
}

// Execute runs the workflow to completion in virtual time and returns the
// measured report. It fails if any step failed.
func (run *ConnectRun) Execute() (workflow.Report, error) {
	if err := run.Workflow.Run(nil); err != nil {
		return workflow.Report{}, err
	}
	run.Eco.Clock.RunWhile(func() bool { return !run.Workflow.Done() })
	if run.Workflow.Failed() {
		return run.Workflow.Report(), fmt.Errorf("core: workflow failed")
	}
	return run.Workflow.Report(), nil
}

// --- Step 1: THREDDS download ----------------------------------------------

// perFileBytes returns the modeled size of one fetched granule.
func (run *ConnectRun) perFileBytes() float64 {
	if run.Config.Subset {
		return run.Config.Archive.SubsetFileBytes
	}
	return run.Config.Archive.FullFileBytes
}

func (run *ConnectRun) stepDownload(ctx *workflow.Ctx) {
	e := run.Eco
	cfg := run.Config
	files := cfg.Archive.NumFiles()
	totalBytes := run.perFileBytes() * float64(files)

	// Populate the Redis queue: messages of the form "msg-<i>:<nfiles>",
	// each standing for a list file of URLs, exactly the paper's structure.
	nMsgs := (files + cfg.URLsPerMessage - 1) / cfg.URLsPerMessage
	for i := 0; i < nMsgs; i++ {
		n := cfg.URLsPerMessage
		if i == nMsgs-1 {
			n = files - i*cfg.URLsPerMessage
		}
		e.Queue.LPush(queueKey, fmt.Sprintf("msg-%d:%d", i, n))
	}

	// Table I row: 14 pods / 42 CPUs / 225 GB — 10 workers (3 CPU, 16 GB),
	// 3 download-handler images (4 CPU, 21 GB), 1 Redis pod (0 CPU, 2 GB).
	ctx.Record("pods", float64(cfg.DownloadWorkers+4))
	ctx.Record("cpus", float64(cfg.DownloadWorkers*3+12))
	ctx.Record("gpus", 0)
	ctx.Record("data_bytes", totalBytes)
	ctx.Record("memory_bytes", float64(cfg.DownloadWorkers)*16e9+3*21e9+2e9)

	// Grafana sampling of the download (Figures 3 and 4).
	rateGauge := e.Metrics.Gauge("connect_download_rate_bytes", nil)
	tick := e.Clock.Every(cfg.SampleEvery, func() {
		sum := 0.0
		for _, site := range e.Config.Sites {
			sum += e.Net.AggregateRate(site.Name)
		}
		rateGauge.Set(sum)
	})

	// Auxiliary pods: Redis + 3 handler images.
	aux, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "download-aux", Namespace: cfg.Namespace,
		Parallelism: 4,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 3, Memory: 16.25e9},
			Run:      func(pc *cluster.PodCtx) { /* long-running; deleted with the job */ },
		},
	})
	if err != nil {
		tick.Stop()
		ctx.Done(err)
		return
	}

	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "download-worker", Namespace: cfg.Namespace,
		Parallelism: cfg.DownloadWorkers,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 3, Memory: 16e9},
			Labels:   map[string]string{"app": "download"},
			Run:      func(pc *cluster.PodCtx) { run.downloadWorker(pc) },
		},
	})
	if err != nil {
		tick.Stop()
		ctx.Done(err)
		return
	}
	job.OnComplete(func(ok bool) {
		tick.Stop()
		rateGauge.Set(0)
		// Tear down the long-running aux pods.
		for _, p := range aux.Pods() {
			e.Cluster.DeletePod(p)
		}
		if !ok {
			ctx.Done(fmt.Errorf("download job failed"))
			return
		}
		// Real-compute path: land actual IVT subset bytes for the first few
		// granules in Ceph, demonstrating the data plane end to end.
		if cfg.Real != nil {
			run.landRealGranules()
		}
		ctx.Done(nil)
	})
}

// downloadWorker is the per-pod state machine: pop a message, fetch its
// URLs with bounded parallel streams, merge to HDF, store to Ceph, repeat.
func (run *ConnectRun) downloadWorker(pc *cluster.PodCtx) {
	e := run.Eco
	cfg := run.Config
	node := e.Cluster.Node(pc.NodeName())
	site := node.Site
	podLabel := metrics.Labels{"pod": fmt.Sprintf("download-%d", pc.Index())}
	cpuGauge := e.Metrics.Gauge("connect_worker_cpu", podLabel)
	memGauge := e.Metrics.Gauge("connect_worker_mem_bytes", podLabel)

	var processMsg func()
	processMsg = func() {
		if !pc.Alive() {
			return
		}
		msg, ok := e.Queue.RPop(queueKey)
		if !ok {
			cpuGauge.Set(0)
			memGauge.Set(0)
			delete(run.dlCurrentMsg, pc.Pod().UID)
			pc.Succeed()
			return
		}
		run.dlCurrentMsg[pc.Pod().UID] = msg
		nFiles := parseMsgCount(msg)
		perFile := run.perFileBytes()
		streams := min(cfg.ParallelStreams, nFiles)
		cpuGauge.Set(2.6) // aria2 + unpacking keeps ~2.6 of 3 cores busy
		memGauge.Set(4e9 + perFile*float64(streams))

		// Each aria2 stream pulls its share of the message's files
		// back-to-back; one fluid flow per stream carries that share. This
		// preserves the fair-sharing dynamics (workers x streams concurrent
		// flows) at stream granularity.
		inFlight := streams
		var flows []*netsim.Flow
		onStreamDone := func(streamBytes float64) func() {
			return func() {
				if !pc.Alive() {
					for _, f := range flows {
						f.Cancel()
					}
					return
				}
				run.BytesDownloaded.Add(streamBytes)
				inFlight--
				if inFlight > 0 {
					return
				}
				// All streams landed: merge into an HDF aggregate, store it.
				msgBytes := perFile * float64(nFiles)
				mergeTime := time.Duration(msgBytes / cfg.MergeBytesPerSec * float64(time.Second))
				cpuGauge.Set(3.0) // merge is CPU-saturated
				pc.After(mergeTime, func() {
					key := fmt.Sprintf("merged/%s.h5", strings.ReplaceAll(msg, ":", "-"))
					if _, err := e.Storage.Put("connect-data", key, msgBytes, nil); err != nil {
						pc.Fail(err.Error())
						return
					}
					delete(run.dlCurrentMsg, pc.Pod().UID)
					cpuGauge.Set(2.6)
					processMsg()
				})
			}
		}
		base := nFiles / streams
		extra := nFiles % streams
		for s := 0; s < streams; s++ {
			cnt := base
			if s < extra {
				cnt++
			}
			bytes := perFile * float64(cnt)
			flows = append(flows, e.Net.Transfer(e.Config.ThreddsSite, site, bytes, onStreamDone(bytes)))
		}
	}
	processMsg()
}

func parseMsgCount(msg string) int {
	if i := strings.LastIndexByte(msg, ':'); i >= 0 {
		if n, err := strconv.Atoi(msg[i+1:]); err == nil {
			return n
		}
	}
	return 1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Step 2: model training -------------------------------------------------

func (run *ConnectRun) stepTrain(ctx *workflow.Ctx) {
	e := run.Eco
	cfg := run.Config
	// Table I row: 1 pod, 1 CPU, 1 GPU, 381 MB data, 14.8 GB memory.
	ctx.Record("pods", 1)
	ctx.Record("cpus", 1)
	ctx.Record("gpus", 1)
	ctx.Record("data_bytes", 381e6)
	ctx.Record("memory_bytes", 14.8e9)

	phase := e.Metrics.Gauge("connect_train_phase", nil) // 1 = prep, 2 = train
	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "ffn-train", Namespace: cfg.Namespace,
		Parallelism: 1,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 1, Memory: 14.8e9, GPUs: 1},
			Labels:   map[string]string{"app": "train"},
			Run: func(pc *cluster.PodCtx) {
				// Phase 1: data preparation (NetCDF -> protobuf), Fig 5 purple.
				phase.Set(1)
				pc.After(cfg.GPU.PrepTime(cfg.TrainVoxels), func() {
					// Phase 2: FFN optimization, Fig 5 green.
					phase.Set(2)
					pc.After(cfg.GPU.TrainTime(cfg.TrainVoxels), func() {
						phase.Set(0)
						pc.Succeed()
					})
				})
			},
		},
	})
	if err != nil {
		ctx.Done(err)
		return
	}
	job.OnComplete(func(ok bool) {
		if !ok {
			ctx.Done(fmt.Errorf("training job failed"))
			return
		}
		if cfg.Real != nil {
			if err := run.realTrain(); err != nil {
				ctx.Done(err)
				return
			}
		} else {
			// Store the model artifact (weights + config) in Ceph.
			if _, err := e.Storage.Put("connect-models", "ffn-model.bin", 10e6, nil); err != nil {
				ctx.Done(err)
				return
			}
		}
		ctx.Done(nil)
	})
}

// --- Step 3: distributed inference ------------------------------------------

func (run *ConnectRun) stepInference(ctx *workflow.Ctx) {
	e := run.Eco
	cfg := run.Config
	gpus := cfg.InferenceGPUs
	totalBytes := run.perFileBytes() * float64(cfg.Archive.NumFiles())
	// Results are sparse object masks: the paper's step 4 reads 5.8 GB out
	// of 246 GB of inputs, a ~2.4% output ratio.
	const resultRatio = 5.8 / 246

	ctx.Record("pods", float64(gpus))
	ctx.Record("cpus", float64(gpus))
	ctx.Record("gpus", float64(gpus))
	ctx.Record("data_bytes", totalBytes)
	ctx.Record("memory_bytes", float64(gpus)*12e9)

	shardVoxels := cfg.InferVoxels / float64(gpus)
	shardBytes := totalBytes / float64(gpus)

	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "ffn-infer", Namespace: cfg.Namespace,
		Parallelism: gpus,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 1, Memory: 12e9, GPUs: 1},
			Labels:   map[string]string{"app": "infer"},
			Run: func(pc *cluster.PodCtx) {
				node := e.Cluster.Node(pc.NodeName())
				// Read the shard from Ceph over the WAN, then run the GPU.
				srcSite := node.Site
				if s, ok := e.Storage.PrimarySite("connect-data", firstKey(e.Storage.List("connect-data"))); ok {
					srcSite = s
				}
				idx := pc.Index()
				e.Net.Transfer(srcSite, node.Site, shardBytes, func() {
					if !pc.Alive() {
						return
					}
					pc.After(cfg.GPU.InferTime(shardVoxels), func() {
						key := fmt.Sprintf("results/shard-%03d.bin", idx)
						if _, err := e.Storage.Put("connect-results", key, shardBytes*resultRatio, nil); err != nil {
							pc.Fail(err.Error())
							return
						}
						pc.Succeed()
					})
				})
			},
		},
	})
	if err != nil {
		ctx.Done(err)
		return
	}
	job.OnComplete(func(ok bool) {
		if !ok {
			ctx.Done(fmt.Errorf("inference job failed"))
			return
		}
		if cfg.Real != nil {
			if err := run.realInference(); err != nil {
				ctx.Done(err)
				return
			}
		}
		ctx.Done(nil)
	})
}

func firstKey(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// --- Step 4: JupyterLab visualization ----------------------------------------

func (run *ConnectRun) stepVisualize(ctx *workflow.Ctx) {
	e := run.Eco
	cfg := run.Config
	resultBytes := e.Storage.BucketSize("connect-results")
	ctx.Record("pods", 1)
	ctx.Record("cpus", 1)
	ctx.Record("gpus", 1)
	ctx.Record("data_bytes", resultBytes)
	ctx.Record("memory_bytes", 12e9)

	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "jupyterlab", Namespace: cfg.Namespace,
		Parallelism: 1,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 1, Memory: 12e9, GPUs: 1},
			Labels:   map[string]string{"app": "viz"},
			Run: func(pc *cluster.PodCtx) {
				node := e.Cluster.Node(pc.NodeName())
				// Mount Ceph and read the results into the notebook.
				srcSite := node.Site
				if s, ok := e.Storage.PrimarySite("connect-results", firstKey(e.Storage.List("connect-results"))); ok {
					srcSite = s
				}
				e.Net.Transfer(srcSite, node.Site, resultBytes, func() {
					if pc.Alive() {
						pc.Succeed()
					}
				})
			},
		},
	})
	if err != nil {
		ctx.Done(err)
		return
	}
	job.OnComplete(func(ok bool) {
		if !ok {
			ctx.Done(fmt.Errorf("visualization pod failed"))
			return
		}
		if cfg.Real != nil {
			if err := run.realVisualize(); err != nil {
				ctx.Done(err)
				return
			}
		}
		ctx.Done(nil)
	})
}
