package core

import (
	"fmt"
	"testing"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/merra"
)

// The related-work claim: "graphics and machine learning processes can
// cohabitate, as remote researchers have the ability to run GPU compute jobs
// on the same hardware which is being used locally for visualization."

func TestCohabitationInferencePlusCAVE(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())

	// Foreground science: the inference-heavy workflow at reduced scale.
	cfg := PaperConnectConfig()
	cfg.Archive = merra.MERRA2().Slice(2000)
	run, err := eco.NewConnectWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Workflow.Run(nil); err != nil {
		t.Fatal(err)
	}

	// Drive the workflow until inference is in flight (GPUs busy), then run
	// the visualization wall on the same cluster.
	eco.Clock.RunWhile(func() bool {
		return run.Workflow.Status("3-inference").String() != "Running"
	})
	eco.Clock.RunFor(time.Minute)
	cave, err := eco.RunCAVERender(DefaultCAVE())
	if err != nil {
		t.Fatalf("CAVE render failed while inference held 50 GPUs: %v", err)
	}
	if cave.Tiles != 12 {
		t.Fatalf("tiles = %d", cave.Tiles)
	}

	// The workflow must still complete.
	eco.Clock.RunWhile(func() bool { return !run.Workflow.Done() })
	if run.Workflow.Failed() {
		t.Fatal("workflow failed while cohabiting with visualization")
	}
}

func TestCohabitationBackgroundWANTraffic(t *testing.T) {
	// Science DMZ: heavy tenant traffic between other campuses must not
	// materially slow the download (the THREDDS uplink is the bottleneck,
	// and the backbone is overprovisioned).
	baseline := func(load bool) time.Duration {
		eco := BuildNautilus(DefaultNautilus())
		if load {
			// 40 tenant flows hammering the calit2 and sdsc uplinks.
			eco.Net.StartLoad("ucsd", "calit2", 20, 1e12)
			eco.Net.StartLoad("sdsc", "ucmerced", 20, 1e12)
		}
		cfg := PaperConnectConfig()
		cfg.Archive = merra.MERRA2().Slice(4000)
		run, err := eco.NewConnectWorkflow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := run.Workflow.Run(nil); err != nil {
			t.Fatal(err)
		}
		eco.Clock.RunWhile(func() bool {
			return run.Workflow.Status("1-download").String() != "Succeeded"
		})
		return run.StepDuration("1-download")
	}
	quiet := baseline(false)
	busy := baseline(true)
	slowdown := float64(busy) / float64(quiet)
	if slowdown > 1.10 {
		t.Fatalf("download slowed %.2fx under background WAN load; Science DMZ model broken", slowdown)
	}
}

func TestNamespaceQuotaIsolatesTenants(t *testing.T) {
	// A greedy tenant with a quota cannot starve the workflow namespace.
	eco := BuildNautilus(DefaultNautilus())
	greedyQuota := cluster.Resources{CPU: 40, Memory: 200e9, GPUs: 20}
	eco.Cluster.CreateNamespace("greedy", &greedyQuota)
	// Greedy tenant asks for far more than its quota.
	for i := 0; i < 30; i++ {
		eco.Cluster.CreatePod(cluster.PodSpec{
			Name:      fmt.Sprintf("hog-%d", i),
			Namespace: "greedy",
			Requests:  cluster.Resources{CPU: 8, Memory: 32e9, GPUs: 4},
			Run:       func(pc *cluster.PodCtx) { /* holds resources forever */ },
		})
	}
	cfg := PaperConnectConfig()
	cfg.Archive = merra.MERRA2().Slice(1000)
	run, err := eco.NewConnectWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := run.Execute()
	if err != nil {
		t.Fatalf("workflow failed under greedy tenant: %v", err)
	}
	if len(report.Steps) != 4 {
		t.Fatal("incomplete report")
	}
	// Greedy namespace stayed within quota the whole time.
	used := eco.Cluster.Namespace("greedy").Used()
	if !used.Fits(greedyQuota) {
		t.Fatalf("greedy namespace used %v beyond quota %v", used, greedyQuota)
	}
}
