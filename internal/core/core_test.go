package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"chaseci/internal/merra"
)

func TestBuildNautilusShape(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	if got := e.TotalGPUs(); got != 192 {
		t.Fatalf("GPUs = %d, want 192 (24 FIONA8s)", got)
	}
	if got := e.StorageBytes(); got < 1e15 {
		t.Fatalf("storage = %v bytes, want PB+ as in Fig 1", got)
	}
	if e.Net.Path("ucsd", "ucmerced") == nil {
		t.Fatal("no network path between campuses")
	}
	if e.Net.Path("thredds-dtn", "ucsd") == nil {
		t.Fatal("no path from the THREDDS DTN")
	}
}

func TestNautilusAuthProviders(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	tok, err := e.Auth.Login("sellars@ucsd.edu")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Auth.Validate(tok); err != nil {
		t.Fatal(err)
	}
}

// scaledConfig returns a fast-running workflow at 1/56 archive scale.
func scaledConfig() ConnectConfig {
	cfg := PaperConnectConfig()
	cfg.Archive = merra.MERRA2().Slice(2000)
	return cfg
}

func TestWorkflowCompletesAtReducedScale(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	run, err := e.NewConnectWorkflow(scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != 4 {
		t.Fatalf("report has %d steps", len(report.Steps))
	}
	for _, s := range report.Steps {
		if s.Duration <= 0 {
			t.Fatalf("step %s has zero duration", s.Name)
		}
	}
	// All queue messages consumed.
	if n := e.Queue.LLen(queueKey); n != 0 {
		t.Fatalf("queue has %d leftover messages", n)
	}
	// Downloaded bytes match the subset archive slice.
	want := run.Config.Archive.TotalBytes(true)
	got := run.BytesDownloaded.Value()
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("downloaded %v bytes, want %v", got, want)
	}
	// Merged data in Ceph matches too.
	if stored := e.Storage.BucketSize("connect-data"); math.Abs(stored-want)/want > 0.01 {
		t.Fatalf("stored %v bytes, want %v", stored, want)
	}
}

func TestWorkflowStepDurationsScaleSensibly(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	run, _ := e.NewConnectWorkflow(scaledConfig())
	report, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]time.Duration{}
	for _, s := range report.Steps {
		byName[s.Name] = s.Duration
	}
	// Training volume is fixed: full 306 minutes even in a sliced run.
	if d := byName["2-train"]; d < 300*time.Minute || d > 312*time.Minute {
		t.Fatalf("train = %v, want ~306m", d)
	}
	// Download and inference scale with the slice (2000/112249).
	if d := byName["1-download"]; d < 20*time.Second || d > 5*time.Minute {
		t.Fatalf("download = %v, want tens of seconds at 1/56 scale", d)
	}
	if d := byName["3-inference"]; d < 10*time.Minute || d > 40*time.Minute {
		t.Fatalf("inference = %v, want ~20m at 1/56 scale", d)
	}
}

func TestPaperScaleTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-archive simulation")
	}
	e := BuildNautilus(DefaultNautilus())
	run, err := e.NewConnectWorkflow(PaperConnectConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := run.Execute()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]time.Duration{}
	for _, s := range report.Steps {
		byName[s.Name] = s.Duration
	}
	check := func(step string, want time.Duration, tolFrac float64) {
		got := byName[step]
		lo := time.Duration(float64(want) * (1 - tolFrac))
		hi := time.Duration(float64(want) * (1 + tolFrac))
		if got < lo || got > hi {
			t.Errorf("%s = %v, paper %v (tolerance %.0f%%)", step, got.Round(time.Minute), want, tolFrac*100)
		}
	}
	check("1-download", 37*time.Minute, 0.15)
	check("2-train", 306*time.Minute, 0.03)
	check("3-inference", 1133*time.Minute, 0.05)

	table := report.RenderTable()
	for _, want := range []string{"1-download", "246", "Total Time"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestWorkflowSurvivesNodeFailure(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	run, _ := e.NewConnectWorkflow(scaledConfig())
	if err := run.Workflow.Run(nil); err != nil {
		t.Fatal(err)
	}
	// Let the download get going, then kill two nodes hosting workers.
	e.Clock.RunFor(10 * time.Second)
	killed := 0
	for _, n := range e.Cluster.Nodes() {
		if killed >= 2 {
			break
		}
		if n.Allocated().CPU > 0 {
			e.Cluster.KillNode(n.Name)
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("no busy nodes to kill — test setup broken")
	}
	e.Clock.RunWhile(func() bool { return !run.Workflow.Done() })
	if run.Workflow.Failed() {
		t.Fatal("workflow failed after node loss")
	}
	// Every message processed exactly once despite the failure: stored
	// bytes equal the archive subset.
	want := run.Config.Archive.TotalBytes(true)
	stored := e.Storage.BucketSize("connect-data")
	if math.Abs(stored-want)/want > 0.01 {
		t.Fatalf("stored %v bytes after failures, want %v", stored, want)
	}
}

func TestRealComputeWorkflow(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	cfg := scaledConfig()
	cfg.Archive = merra.MERRA2().Slice(500)
	cfg.Real = DefaultRealCompute()
	run, err := e.NewConnectWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	rr := run.RealResult
	if rr == nil {
		t.Fatal("no real-compute result")
	}
	if rr.TrainLossTail >= rr.TrainLossHead {
		t.Fatalf("real training did not converge: %v -> %v", rr.TrainLossHead, rr.TrainLossTail)
	}
	if rr.Precision < 0.5 || rr.Recall < 0.3 {
		t.Fatalf("real segmentation quality: precision=%.2f recall=%.2f", rr.Precision, rr.Recall)
	}
	if rr.ModelBytes == 0 {
		t.Fatal("model not serialized")
	}
	if rr.FFNObjects == 0 || rr.CONNObjects == 0 {
		t.Fatalf("object counts: ffn=%d connect=%d", rr.FFNObjects, rr.CONNObjects)
	}
	// Real artifacts present in Ceph.
	if _, err := e.Storage.Get("connect-results", "real/report.txt"); err != nil {
		t.Fatal("report not stored:", err)
	}
	if _, err := e.Storage.Get("connect-results", "real/overlay-t0.ppm"); err != nil {
		t.Fatal("overlay not stored:", err)
	}
	if _, err := e.Storage.Get("connect-models", "ffn-model.bin"); err != nil {
		t.Fatal("model not stored:", err)
	}
	// Real subset granules landed.
	mount := e.Storage.MountBucket("connect-data")
	if got := len(mount.Glob("real/")); got != realGranuleCount {
		t.Fatalf("real granules stored = %d, want %d", got, realGranuleCount)
	}
}

func TestSubsettingAblationDirection(t *testing.T) {
	// Full-file download must move ~1.85x the bytes and take ~1.85x longer.
	mk := func(subset bool) time.Duration {
		e := BuildNautilus(DefaultNautilus())
		cfg := scaledConfig()
		cfg.Subset = subset
		run, _ := e.NewConnectWorkflow(cfg)
		report, err := run.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return report.Steps[0].Duration
	}
	sub, full := mk(true), mk(false)
	ratio := float64(full) / float64(sub)
	if ratio < 1.6 || ratio > 2.1 {
		t.Fatalf("full/subset download ratio = %.2f, want ~1.85 (455/246)", ratio)
	}
}

func TestWorkflowPlanRendering(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	run, _ := e.NewConnectWorkflow(scaledConfig())
	plan := run.Workflow.RenderPlan()
	for _, want := range []string{"1-download", "2-train <- 1-download", "3-inference <- 2-train", "4-visualize <- 3-inference"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestFigureSeriesRecorded(t *testing.T) {
	e := BuildNautilus(DefaultNautilus())
	run, _ := e.NewConnectWorkflow(scaledConfig())
	if _, err := run.Execute(); err != nil {
		t.Fatal(err)
	}
	// Fig 3: per-worker CPU series exist.
	workers := e.Metrics.Select("connect_worker_cpu", nil)
	if len(workers) != 10 {
		t.Fatalf("worker CPU series = %d, want 10", len(workers))
	}
	// Fig 4: download rate series has a nonzero peak.
	rate := e.Metrics.Select("connect_download_rate_bytes", nil)
	if len(rate) != 1 {
		t.Fatal("no download rate series")
	}
	peak := 0.0
	for _, s := range rate[0].Samples {
		if s.Value > peak {
			peak = s.Value
		}
	}
	if peak <= 0 {
		t.Fatal("download rate never sampled above zero")
	}
	// Fig 5: training phase marker hit both phases.
	phases := e.Metrics.Select("connect_train_phase", nil)[0]
	saw := map[float64]bool{}
	for _, s := range phases.Samples {
		saw[s.Value] = true
	}
	if !saw[1] || !saw[2] {
		t.Fatalf("train phases seen: %v, want prep(1) and train(2)", saw)
	}
	// Fig 6: cluster GPU gauge peaked at 50 during inference.
	gpus := e.Metrics.Select("k8s_gpus_in_use", nil)[0]
	maxGPU := 0.0
	for _, s := range gpus.Samples {
		if s.Value > maxGPU {
			maxGPU = s.Value
		}
	}
	if maxGPU < 50 {
		t.Fatalf("peak GPUs in use = %v, want >= 50", maxGPU)
	}
}
