package core

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"

	"chaseci/internal/ffn"
	"chaseci/internal/merra"
	"chaseci/internal/objstore"
	"chaseci/internal/queue"
	"chaseci/internal/thredds"
)

// TestRealSocketsEndToEnd drives the whole data path over actual TCP/HTTP on
// localhost, no virtual time: granule URLs flow through the Redis-protocol
// queue, the aria2-style client subsets them from the THREDDS server, the
// decoded IVT trains an FFN, and the serialized model round-trips through
// the S3 gateway of the Ceph-like store.
func TestRealSocketsEndToEnd(t *testing.T) {
	grid := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	const granules = 6

	// THREDDS over HTTP.
	spec := merra.MERRA2().Slice(granules)
	catalog := thredds.NewCatalog(spec, merra.NewGenerator(grid, 11))
	tsrv, err := thredds.Serve(catalog, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tsrv.Close()

	// Redis over TCP.
	qsrv, err := queue.Serve(queue.NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer qsrv.Close()
	qc, err := queue.Dial(qsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	// S3 gateway over the replicated store.
	eco := BuildNautilus(DefaultNautilus())
	s3, err := objstore.ServeGateway(eco.Storage, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()

	// Queue the subset URLs, drain them, download in parallel.
	for i := 0; i < granules; i++ {
		if _, err := qc.LPush("urls", tsrv.SubsetURL(spec.FileName(i), "IVT")); err != nil {
			t.Fatal(err)
		}
	}
	var urls []string
	for {
		u, err := qc.RPop("urls")
		if err == queue.ErrNil {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, u)
	}
	if len(urls) != granules {
		t.Fatalf("queue delivered %d urls, want %d", len(urls), granules)
	}
	dl := &thredds.Downloader{Parallel: 3}
	fields := make([][]float32, 0, granules)
	results, _ := dl.Fetch(context.Background(), urls, func(url string, body []byte) {
		f, err := merra.DecodeBytes(body)
		if err != nil {
			t.Errorf("decode %s: %v", url, err)
			return
		}
		fields = append(fields, f.Vars[0].Data)
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	// Assemble the downloaded IVT into a volume and train briefly.
	img := ffn.NewVolume(granules, grid.NLat, grid.NLon)
	for i, f := range fields {
		copy(img.Data[i*grid.NLat*grid.NLon:], f)
	}
	flat := merra.Field2D{NLon: len(img.Data), NLat: 1, Data: append([]float32(nil), img.Data...)}
	th := flat.Quantile(0.9)
	lbl := ffn.NewVolume(granules, grid.NLat, grid.NLon)
	for i, v := range img.Data {
		if v >= th {
			lbl.Data[i] = 1
		}
	}
	img.Normalize()
	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 4
	net, err := ffn.NewNetwork(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := ffn.NewTrainer(net, 0.03, 0.9, 2)
	losses, err := tr.TrainOnVolume(img, lbl, 80)
	if err != nil {
		t.Fatal(err)
	}
	if ffn.MeanTail(losses, 0.2) >= ffn.MeanTail(losses[:20], 1) {
		t.Fatal("training on socket-delivered data did not reduce loss")
	}

	// Round-trip the model through the S3 gateway.
	model := net.SaveBytes()
	url := s3.BaseURL() + "/connect-models/e2e/ffn.bin"
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(model))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("S3 PUT status %s", resp.Status)
	}
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	back, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(back, model) {
		t.Fatal("model corrupted through the S3 gateway")
	}
	loaded, err := ffn.LoadBytes(back)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ParamCount() != net.ParamCount() {
		t.Fatal("loaded model has wrong architecture")
	}
	// The replicated store holds the object with full redundancy.
	if locs := eco.Storage.Locations("connect-models", "e2e/ffn.bin"); len(locs) != 3 {
		t.Fatalf("model replicas = %d, want 3", len(locs))
	}
}
