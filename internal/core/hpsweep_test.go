package core

import (
	"testing"

	"chaseci/internal/ffn"
)

func TestHyperparameterSweepFindsBest(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultSweep()
	res, err := eco.RunHyperparameterSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(cfg.Candidates) {
		t.Fatalf("results = %d, want %d", len(res.Results), len(cfg.Candidates))
	}
	for _, r := range res.Results {
		if !res.Best.Better(r) && res.Best != r {
			t.Fatalf("best %+v is not >= %+v", res.Best, r)
		}
	}
	if res.Best.F1 <= 0 {
		t.Fatalf("best F1 = %v, want > 0 (validation must find a working model)", res.Best.F1)
	}
	if res.VirtualTime <= 0 {
		t.Fatal("sweep consumed no virtual time")
	}
	// Held-out evaluation results stored in Ceph.
	if got := len(eco.Storage.MountBucket("hp-sweep").Glob("results/")); got != len(cfg.Candidates) {
		t.Fatalf("stored results = %d, want %d", got, len(cfg.Candidates))
	}
}

func TestHyperparameterSweepEmptyGrid(t *testing.T) {
	eco := BuildNautilus(DefaultNautilus())
	cfg := DefaultSweep()
	cfg.Candidates = nil
	if _, err := eco.RunHyperparameterSweep(cfg); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestSplitSeparatesTrainAndTest(t *testing.T) {
	img, lbl := buildScene(defaultSweepScene())
	trImg, trLbl, teImg, teLbl := ffn.Split(img, lbl, 6)
	if trImg.D != 6 || teImg.D != img.D-6 {
		t.Fatalf("split depths = %d/%d", trImg.D, teImg.D)
	}
	if trLbl.D != 6 || teLbl.D != lbl.D-6 {
		t.Fatalf("label depths = %d/%d", trLbl.D, teLbl.D)
	}
	// The two views must not overlap: mutate train, test unchanged.
	trImg.Data[0] = 999
	if teImg.Data[0] == 999 {
		t.Fatal("train and test views share the same leading voxel")
	}
}

func TestSplitPanicsOnDegenerate(t *testing.T) {
	img, lbl := buildScene(defaultSweepScene())
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate split did not panic")
		}
	}()
	ffn.Split(img, lbl, img.D)
}

func TestHyperparamsRoundTrip(t *testing.T) {
	h := ffn.Hyperparams{LR: 0.03, Momentum: 0.9, Features: 6, Modules: 2, TrainSteps: 300}
	back, err := ffn.DecodeHyperparams(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip = %+v, want %+v", back, h)
	}
	if _, err := ffn.DecodeHyperparams("not json"); err == nil {
		t.Fatal("garbage message accepted")
	}
}

func TestGridCartesianProduct(t *testing.T) {
	g := ffn.Grid([]float32{0.01, 0.03}, []float32{0.8, 0.9}, []int{4}, []int{1, 2}, []int{100, 200, 300})
	if len(g) != 24 {
		t.Fatalf("grid size = %d, want 24", len(g))
	}
	// An empty modules axis sweeps the historical default depth of 2.
	g = ffn.Grid([]float32{0.01}, []float32{0.9}, []int{4}, nil, []int{100})
	if len(g) != 1 || g[0].Modules != 2 {
		t.Fatalf("default modules grid = %+v, want one candidate with Modules 2", g)
	}
}
