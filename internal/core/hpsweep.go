package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/ffn"
	"chaseci/internal/gpusim"
	"chaseci/internal/queue"
	"chaseci/internal/service"
)

// SweepConfig drives the Section III-E3 extension: a Redis queue of
// hyperparameter sets consumed by a pool of single-GPU validation pods.
// Since PR 10 each popped candidate is evaluated by the chased/v1 train job
// kind (train with a held-out slab, score precision/recall/F1/IoU) — the
// same code path the sweep job kind fans out over — so this entry point
// keeps only the queue mechanics, pod topology, and virtual GPU time as the
// surrounding test harness.
type SweepConfig struct {
	Namespace string
	// Candidates is the parameter grid to evaluate.
	Candidates []ffn.Hyperparams
	// Workers is the validation pod count.
	Workers int
	// Scene sizes the real data; TrainFraction of its time steps train, the
	// remainder validate.
	Scene         *RealComputeConfig
	TrainFraction float64
	GPU           gpusim.Model
	Seed          uint64
}

// DefaultSweep returns a small grid at experiment scale. Module depth is a
// grid axis alongside the learning rate, so the sweep compares shallow and
// default-depth networks instead of hardcoding Modules: 2.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Namespace: "hp-sweep",
		Candidates: ffn.Grid(
			[]float32{0.01, 0.03},
			[]float32{0.9},
			[]int{6},
			[]int{1, 2},
			[]int{200},
		),
		Workers:       4,
		Scene:         defaultSweepScene(),
		TrainFraction: 0.67,
		GPU:           gpusim.GTX1080Ti(),
		Seed:          5,
	}
}

func defaultSweepScene() *RealComputeConfig {
	rc := DefaultRealCompute()
	rc.TimeSteps = 9 // room for a 6/3 train/test split
	return rc
}

// SweepResult reports the sweep.
type SweepResult struct {
	Results     []ffn.ValidationResult
	Best        ffn.ValidationResult
	VirtualTime time.Duration
	PodsUsed    int
}

const sweepQueueKey = "hp-sweep:params"

// RunHyperparameterSweep executes the sweep on the cluster: candidates are
// queued, worker pods pop them and submit each as a holdout-scored train
// job on an in-process runner, and write the JSON results to the object
// store; the best candidate by F1 wins.
func (e *Ecosystem) RunHyperparameterSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Candidates) == 0 {
		return nil, errors.New("core: no sweep candidates")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Scene == nil {
		cfg.Scene = defaultSweepScene()
	}
	if cfg.TrainFraction <= 0 || cfg.TrainFraction >= 1 {
		cfg.TrainFraction = 0.67
	}
	if cfg.GPU.TrainVoxelsPerSec == 0 {
		cfg.GPU = gpusim.GTX1080Ti()
	}
	if _, err := e.Cluster.CreateNamespace(cfg.Namespace, nil); err != nil && err != cluster.ErrDuplicate {
		return nil, err
	}

	// Build the scene once; every pod validates on the same held-out steps,
	// as §III-E3 requires (the train job splits off the trailing slab).
	src, th := sceneSource(cfg.Scene)
	trainSteps := int(float64(src.D) * cfg.TrainFraction)
	if trainSteps < 1 {
		trainSteps = 1
	}
	if trainSteps >= src.D {
		trainSteps = src.D - 1
	}
	holdout := src.D - trainSteps
	trainVoxels := trainSteps * src.H * src.W

	// Queue the parameter sets.
	for _, h := range cfg.Candidates {
		e.Queue.LPush(sweepQueueKey, h.Encode())
	}

	runner := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), cfg.Workers)
	defer runner.Close()

	mount := e.Storage.MountBucket("hp-sweep")
	start := e.Clock.Now()
	var evalErr error

	evaluate := func(h ffn.Hyperparams) (ffn.ValidationResult, error) {
		st, err := runner.Submit(&api.JobRequest{
			Kind: api.KindTrain,
			Name: "validate",
			Train: &api.TrainSpec{
				Source:       src,
				Threshold:    th,
				Steps:        h.TrainSteps,
				LR:           h.LR,
				Momentum:     h.Momentum,
				NetSeed:      cfg.Seed,
				SampleSeed:   cfg.Seed ^ 0xabcd,
				HoldoutSteps: holdout,
				Net: &api.NetConfig{
					FOV:      [3]int{3, 7, 7},
					Features: h.Features,
					Modules:  h.Modules,
					MoveStep: [3]int{1, 2, 2},
				},
			},
		}, "core")
		if err != nil {
			return ffn.ValidationResult{}, err
		}
		raw, err := awaitJob(runner, st.ID)
		if err != nil {
			return ffn.ValidationResult{}, err
		}
		var tr api.TrainResult
		if err := json.Unmarshal(raw, &tr); err != nil {
			return ffn.ValidationResult{}, fmt.Errorf("core: train result: %w", err)
		}
		return ffn.ValidationResult{
			Params:    h,
			TrainLoss: tr.LossTail,
			Precision: tr.Precision,
			Recall:    tr.Recall,
			F1:        tr.F1,
			IoU:       tr.IoU,
		}, nil
	}

	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "validate", Namespace: cfg.Namespace,
		Parallelism: cfg.Workers,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 2, Memory: 8e9, GPUs: 1},
			Labels:   map[string]string{"app": "hp-sweep"},
			Run: func(pc *cluster.PodCtx) {
				var next func()
				next = func() {
					if !pc.Alive() {
						return
					}
					msg, ok := e.Queue.RPop(sweepQueueKey)
					if !ok {
						pc.Succeed()
						return
					}
					h, err := ffn.DecodeHyperparams(msg)
					if err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					// Real evaluation through the job kind; GPU time modeled
					// from the training volume x steps actually run.
					res, err := evaluate(h)
					if err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					out, err := json.Marshal(res)
					if err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					key := fmt.Sprintf("results/%s.json", h.Encode())
					if err := mount.WriteFile(key, out); err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					voxels := float64(trainVoxels) * float64(h.TrainSteps) / 100
					pc.After(cfg.GPU.TrainTime(voxels), next)
				}
				next()
			},
		},
	})
	if err != nil {
		return nil, err
	}
	done := false
	job.OnComplete(func(ok bool) { done = true })
	e.Clock.RunWhile(func() bool { return !done })
	if job.Failed() {
		if evalErr != nil {
			return nil, evalErr
		}
		return nil, errors.New("core: sweep job failed")
	}

	// Collect results from the object store.
	res := &SweepResult{VirtualTime: e.Clock.Now() - start, PodsUsed: len(job.Pods())}
	for _, key := range mount.Glob("results/") {
		data, err := mount.ReadFile(key)
		if err != nil {
			return nil, err
		}
		var vr ffn.ValidationResult
		if err := json.Unmarshal(data, &vr); err != nil {
			return nil, err
		}
		res.Results = append(res.Results, vr)
	}
	if len(res.Results) != len(cfg.Candidates) {
		return nil, fmt.Errorf("core: sweep produced %d results for %d candidates",
			len(res.Results), len(cfg.Candidates))
	}
	res.Best = res.Results[0]
	for _, r := range res.Results[1:] {
		if r.Better(res.Best) {
			res.Best = r
		}
	}
	return res, nil
}
