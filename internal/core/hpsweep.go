package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/ffn"
	"chaseci/internal/gpusim"
)

// SweepConfig drives the Section III-E3 extension: a Redis queue of
// hyperparameter sets consumed by a pool of single-GPU validation pods, each
// training a real model on the training split and scoring it on the
// held-out split. Exactly the paper's plan ("a Redis queue is being
// developed to store model training/testing validation split methodologies
// and parameter sets to be used in multi-model validation") as running code.
type SweepConfig struct {
	Namespace string
	// Candidates is the parameter grid to evaluate.
	Candidates []ffn.Hyperparams
	// Workers is the validation pod count.
	Workers int
	// Scene sizes the real data; TrainFraction of its time steps train, the
	// remainder validate.
	Scene         *RealComputeConfig
	TrainFraction float64
	GPU           gpusim.Model
	Seed          uint64
}

// DefaultSweep returns a small grid at experiment scale.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Namespace: "hp-sweep",
		Candidates: ffn.Grid(
			[]float32{0.01, 0.03},
			[]float32{0.9},
			[]int{4, 6},
			[]int{200},
		),
		Workers:       4,
		Scene:         defaultSweepScene(),
		TrainFraction: 0.67,
		GPU:           gpusim.GTX1080Ti(),
		Seed:          5,
	}
}

func defaultSweepScene() *RealComputeConfig {
	rc := DefaultRealCompute()
	rc.TimeSteps = 9 // room for a 6/3 train/test split
	return rc
}

// SweepResult reports the sweep.
type SweepResult struct {
	Results     []ffn.ValidationResult
	Best        ffn.ValidationResult
	VirtualTime time.Duration
	PodsUsed    int
}

const sweepQueueKey = "hp-sweep:params"

// RunHyperparameterSweep executes the sweep on the cluster: candidates are
// queued, worker pods pop and evaluate them (real training + validation) and
// write JSON results to the object store; the best candidate by F1 wins.
func (e *Ecosystem) RunHyperparameterSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Candidates) == 0 {
		return nil, errors.New("core: no sweep candidates")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Scene == nil {
		cfg.Scene = defaultSweepScene()
	}
	if cfg.TrainFraction <= 0 || cfg.TrainFraction >= 1 {
		cfg.TrainFraction = 0.67
	}
	if cfg.GPU.TrainVoxelsPerSec == 0 {
		cfg.GPU = gpusim.GTX1080Ti()
	}
	if _, err := e.Cluster.CreateNamespace(cfg.Namespace, nil); err != nil && err != cluster.ErrDuplicate {
		return nil, err
	}

	// Build and split the scene once; every pod validates on the same
	// held-out steps, as §III-E3 requires.
	img, lbl := buildScene(cfg.Scene)
	trainSteps := int(float64(img.D) * cfg.TrainFraction)
	if trainSteps < 1 {
		trainSteps = 1
	}
	if trainSteps >= img.D {
		trainSteps = img.D - 1
	}
	trImg, trLbl, teImg, teLbl := ffn.Split(img, lbl, trainSteps)

	// Queue the parameter sets.
	for _, h := range cfg.Candidates {
		e.Queue.LPush(sweepQueueKey, h.Encode())
	}

	mount := e.Storage.MountBucket("hp-sweep")
	start := e.Clock.Now()
	var evalErr error

	job, err := e.Cluster.CreateJob(cluster.JobSpec{
		Name: "validate", Namespace: cfg.Namespace,
		Parallelism: cfg.Workers,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 2, Memory: 8e9, GPUs: 1},
			Labels:   map[string]string{"app": "hp-sweep"},
			Run: func(pc *cluster.PodCtx) {
				var next func()
				next = func() {
					if !pc.Alive() {
						return
					}
					msg, ok := e.Queue.RPop(sweepQueueKey)
					if !ok {
						pc.Succeed()
						return
					}
					h, err := ffn.DecodeHyperparams(msg)
					if err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					// Real evaluation; GPU time modeled from the training
					// volume x steps actually run.
					res, err := ffn.Evaluate(h, trImg, trLbl, teImg, teLbl, cfg.Seed)
					if err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					out, err := json.Marshal(res)
					if err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					key := fmt.Sprintf("results/%s.json", h.Encode())
					if err := mount.WriteFile(key, out); err != nil {
						evalErr = err
						pc.Fail(err.Error())
						return
					}
					voxels := float64(trImg.Size()) * float64(h.TrainSteps) / 100
					pc.After(cfg.GPU.TrainTime(voxels), next)
				}
				next()
			},
		},
	})
	if err != nil {
		return nil, err
	}
	done := false
	job.OnComplete(func(ok bool) { done = true })
	e.Clock.RunWhile(func() bool { return !done })
	if job.Failed() {
		if evalErr != nil {
			return nil, evalErr
		}
		return nil, errors.New("core: sweep job failed")
	}

	// Collect results from the object store.
	res := &SweepResult{VirtualTime: e.Clock.Now() - start, PodsUsed: len(job.Pods())}
	for _, key := range mount.Glob("results/") {
		data, err := mount.ReadFile(key)
		if err != nil {
			return nil, err
		}
		var vr ffn.ValidationResult
		if err := json.Unmarshal(data, &vr); err != nil {
			return nil, err
		}
		res.Results = append(res.Results, vr)
	}
	if len(res.Results) != len(cfg.Candidates) {
		return nil, fmt.Errorf("core: sweep produced %d results for %d candidates",
			len(res.Results), len(cfg.Candidates))
	}
	res.Best = res.Results[0]
	for _, r := range res.Results[1:] {
		if r.Better(res.Best) {
			res.Best = r
		}
	}
	return res, nil
}
