// Package core is the paper's primary contribution assembled: the CHASE-CI
// ecosystem (Kubernetes-managed GPU appliances and Ceph storage on the PRP
// WAN, with Prometheus/Grafana-style monitoring, a Redis work queue, and
// CILogon-style federated auth) plus the workflow-driven machine-learning
// case study of Section III — the 4-step CONNECT object-segmentation
// workflow with per-step measurement. Everything runs in virtual time on a
// single sim.Clock; the FFN/CONNECT compute paths run for real at
// experiment scale.
package core

import (
	"fmt"
	"time"

	"chaseci/internal/auth"
	"chaseci/internal/cluster"
	"chaseci/internal/metrics"
	"chaseci/internal/netsim"
	"chaseci/internal/objstore"
	"chaseci/internal/queue"
	"chaseci/internal/sim"
)

// SiteSpec describes one PRP campus in the Nautilus build-out.
type SiteSpec struct {
	Name string
	// FIONA8s is the number of 8-GPU appliances at the site.
	FIONA8s int
	// StorageOSDs is the number of Ceph OSDs (storage FIONAs) at the site.
	StorageOSDs int
	// OSDCapacity is the capacity of each OSD in bytes.
	OSDCapacity float64
	// UplinkGbps is the site's link into the PRP backbone.
	UplinkGbps float64
	// LatencyMS is the one-way backbone latency to the site.
	LatencyMS float64
}

// NautilusConfig declares a whole cluster build.
type NautilusConfig struct {
	Sites []SiteSpec
	// ThreddsSite hosts the THREDDS DTN serving the NASA archive; it is
	// added as a network site with its own uplink.
	ThreddsSite string
	// ThreddsUplinkGbps bounds the data server's effective serving rate
	// (disk + subsetting pipeline), the observed bottleneck of the paper's
	// step 1.
	ThreddsUplinkGbps float64
	// Replicas is the Ceph replication factor.
	Replicas int
	Seed     uint64
}

// DefaultNautilus returns a cluster shaped like the paper's description: a
// handful of UC campuses with multi-tenant FIONA8s, over a petabyte of
// distributed storage, 10-100 Gbps links. 24 FIONA8s x 8 = 192 GPUs covers
// the case study's 50-GPU inference with multi-tenant headroom.
func DefaultNautilus() NautilusConfig {
	mk := func(name string, f8, osds int, gbps, lat float64) SiteSpec {
		return SiteSpec{
			Name: name, FIONA8s: f8, StorageOSDs: osds,
			OSDCapacity: 100e12, UplinkGbps: gbps, LatencyMS: lat,
		}
	}
	return NautilusConfig{
		Sites: []SiteSpec{
			mk("ucsd", 8, 4, 100, 0.5),
			mk("calit2", 6, 3, 100, 0.5),
			mk("sdsc", 4, 3, 100, 0.5),
			mk("ucmerced", 3, 1, 40, 4),
			mk("ucsc", 2, 1, 10, 3),
			mk("uci", 1, 1, 10, 2),
		},
		ThreddsSite:       "thredds-dtn",
		ThreddsUplinkGbps: 0.94, // calibrated: 246 GB in ~37 min sustained
		Replicas:          3,
		Seed:              1,
	}
}

// Ecosystem is a fully wired CHASE-CI instance.
type Ecosystem struct {
	Clock   *sim.Clock
	Metrics *metrics.Registry
	Net     *netsim.Network
	Cluster *cluster.Cluster
	Storage *objstore.Store
	Queue   *queue.Store
	Auth    *auth.Federation

	Config NautilusConfig
}

// BuildNautilus constructs the simulated cluster: backbone star topology
// around a core exchange, FIONA8 nodes registered with Kubernetes, OSDs
// registered with Ceph, CILogon providers for each campus.
func BuildNautilus(cfg NautilusConfig) *Ecosystem {
	clk := sim.NewClock()
	reg := metrics.NewRegistry(clk)
	net := netsim.NewNetwork(clk, reg)
	cl := cluster.New(clk, reg)
	store := objstore.NewStore(clk, reg, objstore.Config{
		Replicas: cfg.Replicas,
		PGs:      512,
	})
	fed := auth.NewFederation(clk, 12*time.Hour, cfg.Seed)

	// PRP backbone: a core optical exchange every site uplinks into.
	const backbone = "prp-core"
	net.AddSite(backbone)
	for _, site := range cfg.Sites {
		net.AddSite(site.Name)
		net.AddLink(site.Name, backbone, netsim.Gbps(site.UplinkGbps),
			time.Duration(site.LatencyMS*float64(time.Millisecond)))
		fed.RegisterProvider(site.Name+" SSO", site.Name+".edu")
		for i := 0; i < site.FIONA8s; i++ {
			name := fmt.Sprintf("%s-fiona8-%02d", site.Name, i)
			if _, err := cl.AddNode(name, site.Name, cluster.FIONA8Capacity(),
				map[string]string{"site": site.Name, "gpu": "1080ti"}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < site.StorageOSDs; i++ {
			store.AddOSD(fmt.Sprintf("%s-osd-%02d", site.Name, i), site.Name,
				site.OSDCapacity, 1)
		}
	}
	if cfg.ThreddsSite != "" {
		net.AddSite(cfg.ThreddsSite)
		net.AddLink(cfg.ThreddsSite, backbone, netsim.Gbps(cfg.ThreddsUplinkGbps),
			time.Millisecond)
	}

	return &Ecosystem{
		Clock:   clk,
		Metrics: reg,
		Net:     net,
		Cluster: cl,
		Storage: store,
		Queue:   queue.NewStore(),
		Auth:    fed,
		Config:  cfg,
	}
}

// Backbone returns the core exchange site name.
func (e *Ecosystem) Backbone() string { return "prp-core" }

// TotalGPUs returns the schedulable GPU count.
func (e *Ecosystem) TotalGPUs() int { return e.Cluster.TotalCapacity().GPUs }

// StorageBytes returns the raw Ceph capacity across up OSDs.
func (e *Ecosystem) StorageBytes() float64 { return e.Storage.TotalCapacity() }
