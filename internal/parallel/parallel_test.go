package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		prev := SetWorkers(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, func(s, e int) {
				for i := s; i < e; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestRangesMatchInvokeChunking(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	for _, n := range []int{1, 3, 4, 5, 17, 100} {
		rs := Ranges(n)
		if len(rs) == 0 || rs[0][0] != 0 || rs[len(rs)-1][1] != n {
			t.Fatalf("n=%d: bad range cover %v", n, rs)
		}
		for i := 1; i < len(rs); i++ {
			if rs[i][0] != rs[i-1][1] {
				t.Fatalf("n=%d: ranges not contiguous: %v", n, rs)
			}
		}
		if len(rs) > 4 {
			t.Fatalf("n=%d: %d ranges exceeds worker count", n, len(rs))
		}
	}
}

func TestForGrainKeepsSmallWorkSerial(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	var chunks atomic.Int32
	ForGrain(10, 10, func(s, e int) { chunks.Add(1) })
	if chunks.Load() != 1 {
		t.Fatalf("grain 10 over n=10 should run as 1 chunk, got %d", chunks.Load())
	}
	chunks.Store(0)
	ForGrain(40, 10, func(s, e int) { chunks.Add(1) })
	if c := chunks.Load(); c < 1 || c > 4 {
		t.Fatalf("grain 10 over n=40 should use at most 4 chunks, got %d", c)
	}
}

// TestNestedInvokeDoesNotDeadlock exercises fan-out from inside a worker
// chunk: the inner Invoke must complete (inline or dispatched), never block.
func TestNestedInvokeDoesNotDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var total atomic.Int64
	For(16, func(s, e int) {
		for i := s; i < e; i++ {
			For(100, func(is, ie int) {
				total.Add(int64(ie - is))
			})
		}
	})
	if total.Load() != 1600 {
		t.Fatalf("nested fan-out covered %d of 1600 indices", total.Load())
	}
}

func TestConcurrentInvokes(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local atomic.Int64
			For(500, func(s, e int) { local.Add(int64(e - s)) })
			if local.Load() != 500 {
				t.Errorf("concurrent invoke covered %d of 500", local.Load())
			}
		}()
	}
	wg.Wait()
}

func TestSetWorkersRestore(t *testing.T) {
	prev := SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	if back := SetWorkers(prev); back != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", back)
	}
}
