// Package parallel is the shared compute fan-out substrate for the repo's
// hot kernels (tensor convolutions, FFN flood-fill inference, CONNECT
// labelling, MERRA IVT integration). It provides deterministic chunked
// fan-out over a small pool of persistent worker goroutines, bounded by
// GOMAXPROCS (overridable for tests and benchmarks via SetWorkers).
//
// Design constraints, in priority order:
//
//  1. Determinism: chunk boundaries depend only on (n, worker count), never
//     on scheduling, so kernels that are bit-exact per element stay bit-exact
//     at every worker count, and kernels that reduce per-chunk partials can
//     do so in a fixed chunk order.
//  2. Zero steady-state allocation: dispatch reuses pooled WaitGroups and
//     sends plain structs on pre-created channels, so an Invoke with a
//     caller-pooled Task allocates nothing once warm. This is what lets
//     tensor.Conv3DInto report 0 allocs/op under -benchmem.
//  3. No deadlock under nesting: dispatch never blocks. If a worker lane is
//     busy (e.g. a parallel Segment shard calls a parallel convolution), the
//     chunk runs inline on the caller instead of queueing, so nested
//     parallelism degrades to sequential execution rather than deadlock.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one kernel's chunk executor: Run processes the half-open index
// range [start, end). Implementations that want zero-allocation dispatch
// should be pointer receivers recycled through a sync.Pool.
type Task interface {
	Run(start, end int)
}

// workerOverride holds the SetWorkers value; 0 means "use GOMAXPROCS".
var workerOverride atomic.Int32

// Workers returns the current fan-out width: the SetWorkers override if one
// is in effect, else runtime.GOMAXPROCS(0).
func Workers() int {
	if w := workerOverride.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the fan-out width (n <= 0 restores the GOMAXPROCS
// default) and returns the previous override (0 if none was set). It is
// intended for tests and benchmarks sweeping worker counts; changing it
// while kernels are in flight changes only future Invoke calls.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int32(n)))
}

// job is one dispatched chunk.
type job struct {
	t          Task
	start, end int
	wg         *sync.WaitGroup
}

var (
	laneMu sync.Mutex
	lanes  []chan job // persistent workers; grown on demand, never shrunk
)

// ensureLanes returns a snapshot of at least k worker lanes.
func ensureLanes(k int) []chan job {
	laneMu.Lock()
	for len(lanes) < k {
		// Unbuffered: a send succeeds only when the worker is idle and
		// receiving. Buffering would let a nested Invoke park a job on its
		// own (busy) lane and then deadlock waiting for it.
		c := make(chan job)
		lanes = append(lanes, c)
		go func() {
			for j := range c {
				j.t.Run(j.start, j.end)
				j.wg.Done()
			}
		}()
	}
	ls := lanes
	laneMu.Unlock()
	return ls
}

var wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// Invoke fans t out over [0, n) in at most Workers() contiguous chunks.
// Chunk 0 always runs on the calling goroutine.
func Invoke(n int, t Task) { InvokeGrain(n, 1, t) }

// InvokeGrain is Invoke with a minimum chunk size: no chunk is smaller than
// grain indices, so tiny problems stay serial and dispatch overhead is
// amortized. Chunk boundaries are chunk c = [c*n/w, (c+1)*n/w) for the
// deterministic w = min(Workers(), ceil(n/grain)).
func InvokeGrain(n, grain int, t Task) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if mc := (n + grain - 1) / grain; w > mc {
		w = mc
	}
	if w <= 1 {
		t.Run(0, n)
		return
	}
	ls := ensureLanes(w - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	for c := 1; c < w; c++ {
		s, e := c*n/w, (c+1)*n/w
		wg.Add(1)
		select {
		case ls[c-1] <- job{t, s, e, wg}:
		default:
			// Lane busy (concurrent or nested Invoke): run inline rather
			// than block, which keeps nested fan-out deadlock-free.
			t.Run(s, e)
			wg.Done()
		}
	}
	t.Run(0, n/w)
	wg.Wait()
	wgPool.Put(wg)
}

// funcTask adapts a closure to Task for the convenience wrappers. The
// interface conversion allocates, so hot allocation-free kernels implement
// Task directly instead of using For.
type funcTask struct {
	fn func(start, end int)
}

func (f *funcTask) Run(s, e int) { f.fn(s, e) }

// For runs fn over [0, n) in at most Workers() deterministic contiguous
// chunks (fn receives [start, end) and must be safe to call concurrently).
func For(n int, fn func(start, end int)) {
	Invoke(n, &funcTask{fn})
}

// ForGrain is For with a minimum chunk size.
func ForGrain(n, grain int, fn func(start, end int)) {
	InvokeGrain(n, grain, &funcTask{fn})
}

// Ranges splits [0, n) into the same deterministic chunks Invoke would use
// (at most Workers(), each non-empty). Kernels that reduce per-chunk
// partials use it to size their partial buffers and to reduce in a fixed
// chunk order regardless of scheduling.
func Ranges(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for c := 0; c < w; c++ {
		s, e := c*n/w, (c+1)*n/w
		if s < e {
			out = append(out, [2]int{s, e})
		}
	}
	return out
}
