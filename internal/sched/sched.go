package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/metrics"
	"chaseci/internal/objstore"
)

// Errors returned by Place.
var (
	// ErrUnschedulable means no fabric node can ever satisfy the workload
	// (pin/site/taint/capacity/static constraints), so parking is pointless.
	ErrUnschedulable = errors.New("sched: no node can satisfy the placement constraints")
	// ErrQuotaExceeded means the owner's quota cannot admit the request.
	ErrQuotaExceeded = errors.New("sched: owner quota exceeded")
)

// Workload is the scheduler's view of one service job.
type Workload struct {
	JobID string
	Kind  api.Kind
	Owner string
	// Refs are the dataset ids whose replica placement defines the job's
	// data gravity. Empty means no gravity (locality "any").
	Refs []string
	// Voxels sizes the energy estimate (0 = unknown, no estimate).
	Voxels float64
	// Req is the resource request; zero-valued fields are defaulted by
	// RequestFor.
	Req cluster.Resources
	// Spec carries the caller's optional placement constraints.
	Spec *api.PlacementSpec
}

// RequestFor derives a default resource request for a job kind: GPU kinds
// (segment, train, pipeline) take one board; memory scales with the working
// set (float volume plus overheads), floored at 1 GB.
func RequestFor(kind api.Kind, voxels float64) cluster.Resources {
	mem := voxels * 4 * 6
	if mem < 1e9 {
		mem = 1e9
	}
	r := cluster.Resources{CPU: 2, Memory: mem}
	switch kind {
	case api.KindSegment, api.KindTrain, api.KindPipeline:
		r.GPUs = 1
	}
	return r
}

// binding records where a placed workload lives.
type binding struct {
	node string
	w    *Workload
}

// Scheduler is the data-gravity placement engine. It owns the fabric's
// control plane: all node lifecycle (KillNode/RestoreNode) and all placement
// traffic must go through it so the cluster's node-event callbacks always
// fire with s.mu held.
//
// Callbacks (bind/drain/restore) are never invoked under s.mu: mutating
// paths collect them and dispatch after unlock, so the service layer may
// re-enter the scheduler from a callback without deadlocking.
type Scheduler struct {
	mu  sync.Mutex
	fab *Fabric

	bound     map[string]*binding // jobID -> binding
	parked    []*Workload         // admitted but unplaceable right now, FIFO
	requeues  map[string]int      // jobID -> times drained off a lost node
	ownerUsed map[string]cluster.Resources
	downOSDs  map[string]bool

	// cbs accumulates deferred callbacks while s.mu is held.
	cbs []func()

	bindFn    func(jobID string, pl *api.Placement)
	drainFn   func(node string, jobIDs []string)
	restoreFn func(node string)

	counters map[string]*metrics.Counter
	gauges   map[string]*metrics.Gauge
}

// New builds a scheduler over the fabric and subscribes to its node events.
// The fabric must be fully populated first: AddNode fires node events, and
// after New those events must originate from this scheduler's own
// KillNode/RestoreNode calls (which hold s.mu).
func New(fab *Fabric) *Scheduler {
	s := &Scheduler{
		fab:       fab,
		bound:     make(map[string]*binding),
		requeues:  make(map[string]int),
		ownerUsed: make(map[string]cluster.Resources),
		downOSDs:  make(map[string]bool),
		counters:  make(map[string]*metrics.Counter),
		gauges:    make(map[string]*metrics.Gauge),
	}
	fab.Cluster.OnNodeEvent(s.onNodeEvent)
	return s
}

// OnBind registers the callback fired (outside s.mu) when a parked workload
// is later placed. Placements returned directly from Place do not fire it.
func (s *Scheduler) OnBind(fn func(jobID string, pl *api.Placement)) { s.bindFn = fn }

// OnDrain registers the callback fired (outside s.mu) when a node loss
// unbinds jobs; jobIDs is sorted.
func (s *Scheduler) OnDrain(fn func(node string, jobIDs []string)) { s.drainFn = fn }

// OnRestore registers the callback fired (outside s.mu) when a node returns.
func (s *Scheduler) OnRestore(fn func(node string)) { s.restoreFn = fn }

// Place admits and, if possible, binds a workload. Returns:
//   - (pl, nil): bound; pl is the decision.
//   - (nil, nil): admitted but parked — every candidate is busy or down; it
//     binds later via the OnBind callback.
//   - (nil, ErrUnschedulable | ErrQuotaExceeded): rejected.
func (s *Scheduler) Place(w *Workload) (*api.Placement, error) {
	s.mu.Lock()
	pl, err := s.placeLocked(w, true)
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
	if errors.Is(err, errRetry) {
		err = nil // parked, not rejected
	}
	return pl, err
}

// Release frees a job's binding (or parked slot) and retries parked work.
// Safe to call for unknown ids. Must not be called with service locks that
// the bind callback also takes... it dispatches callbacks after unlock.
func (s *Scheduler) Release(jobID string) {
	s.mu.Lock()
	if b, ok := s.bound[jobID]; ok {
		delete(s.bound, jobID)
		s.fab.Cluster.ReleaseClaim(b.node, jobID)
		s.ownerSub(b.w.Owner, b.w.Req)
		s.nodeGaugesLocked(b.node)
	} else {
		for i, p := range s.parked {
			if p.JobID == jobID {
				s.parked = append(s.parked[:i], s.parked[i+1:]...)
				break
			}
		}
	}
	delete(s.requeues, jobID)
	s.tryParkedLocked()
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
}

// KillNode simulates losing a fabric node: its co-located OSD (if any) fails
// first so re-resolution sees only surviving replicas, then the cluster node
// goes down, dropping claims and draining bound jobs via OnDrain.
func (s *Scheduler) KillNode(name string) error {
	s.mu.Lock()
	spec := s.fab.nodes[name]
	if spec == nil {
		s.mu.Unlock()
		return cluster.ErrNodeUnknown
	}
	if spec.OSD != "" && !s.downOSDs[spec.OSD] {
		// Manager.mu nests under sched.mu by the fabric lock order.
		if err := s.fab.Datasets.FailOSD(spec.OSD); err == nil {
			s.downOSDs[spec.OSD] = true
		}
	}
	err := s.fab.Cluster.KillNode(name) // fires onNodeEvent inline, s.mu held
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
	return err
}

// RestoreNode reverses KillNode: the OSD rejoins placement and parked work
// is retried.
func (s *Scheduler) RestoreNode(name string) error {
	s.mu.Lock()
	spec := s.fab.nodes[name]
	if spec == nil {
		s.mu.Unlock()
		return cluster.ErrNodeUnknown
	}
	if spec.OSD != "" && s.downOSDs[spec.OSD] {
		if err := s.fab.Datasets.RecoverOSD(spec.OSD); err == nil {
			delete(s.downOSDs, spec.OSD)
		}
	}
	err := s.fab.Cluster.RestoreNode(name) // fires onNodeEvent inline
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
	return err
}

// Requeues returns how many times the job has been drained and re-placed.
func (s *Scheduler) Requeues(jobID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requeues[jobID]
}

// BoundNode returns the node a job is bound to ("" if parked or unknown).
func (s *Scheduler) BoundNode(jobID string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.bound[jobID]; ok {
		return b.node
	}
	return ""
}

// Nodes reports the fabric inventory for the gateway's /v1/nodes endpoint.
func (s *Scheduler) Nodes() []api.NodeStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.NodeStatus, 0, len(s.fab.nodeNames))
	for _, name := range s.fab.nodeNames {
		spec := s.fab.nodes[name]
		n := s.fab.Cluster.Node(name)
		alloc := n.Allocated()
		st := api.NodeStatus{
			Name: name, Site: spec.Site, Ready: n.Ready,
			CPU: int(n.Capacity.CPU), MemoryBytes: int64(n.Capacity.Memory), GPUs: n.Capacity.GPUs,
			AllocCPU: int(alloc.CPU), AllocMemoryBytes: int64(alloc.Memory), AllocGPUs: alloc.GPUs,
			OSD: spec.OSD,
		}
		if spec.OSD != "" {
			st.OSDUp = !s.downOSDs[spec.OSD]
		}
		for _, b := range s.bound {
			if b.node == name {
				st.BoundJobs++
			}
		}
		out = append(out, st)
	}
	return out
}

// MetricsText renders the fabric registry (scheduler gauges/counters plus
// the cluster's k8s_* and netsim's link series) in the same one-line format
// the service layer uses.
func (s *Scheduler) MetricsText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, series := range s.fab.reg.Select("", nil) {
		fmt.Fprintf(&b, "%s%s %g\n", series.Name, series.Labels, series.Last().Value)
	}
	return b.String()
}

// --- Internals --------------------------------------------------------------

func dispatch(cbs []func()) {
	for _, cb := range cbs {
		cb()
	}
}

func (s *Scheduler) takeCallbacks() []func() {
	cbs := s.cbs
	s.cbs = nil
	return cbs
}

func (s *Scheduler) ownerAdd(owner string, r cluster.Resources) {
	s.ownerUsed[owner] = s.ownerUsed[owner].Add(r)
}

func (s *Scheduler) ownerSub(owner string, r cluster.Resources) {
	u := s.ownerUsed[owner].Sub(r)
	if u.IsZero() {
		delete(s.ownerUsed, owner)
	} else {
		s.ownerUsed[owner] = u
	}
}

// refInfo caches one ref's size and replica set for a placement pass.
type refInfo struct {
	id    string
	bytes float64
	reps  []objstore.Replica
}

// placeLocked runs one placement attempt. firstTry distinguishes admission
// (errors reject the job) from parked retries (errors keep it parked).
// s.mu held.
func (s *Scheduler) placeLocked(w *Workload, firstTry bool) (*api.Placement, error) {
	if w.Req.IsZero() {
		w.Req = RequestFor(w.Kind, w.Voxels)
	}
	// Quota admission: the owner's total placed footprint must fit.
	if q := s.fab.cfg.OwnerQuota; q != nil {
		if !s.ownerUsed[w.Owner].Add(w.Req).Fits(*q) {
			if firstTry {
				return nil, ErrQuotaExceeded
			}
			return nil, errRetry
		}
	}

	// Static filter: constraints no amount of waiting will fix.
	var static []string
	for _, name := range s.fab.nodeNames {
		n := s.fab.Cluster.Node(name)
		if w.Spec != nil {
			if w.Spec.Node != "" && w.Spec.Node != name {
				continue
			}
			if w.Spec.Site != "" && w.Spec.Site != n.Site {
				continue
			}
		}
		var tol map[string]string
		if w.Spec != nil {
			tol = w.Spec.Tolerations
		}
		if !cluster.Tolerates(tol, n.Taints()) {
			continue
		}
		if !w.Req.Fits(n.Capacity) {
			continue
		}
		static = append(static, name)
	}
	if len(static) == 0 {
		if firstTry {
			return nil, ErrUnschedulable
		}
		return nil, errRetry
	}

	// Resolve each ref's size and replica set once per pass. A ref with no
	// up replica anywhere is data loss, not congestion: fail fast so the
	// service layer can go terminal instead of parking the job forever.
	refs := make([]refInfo, 0, len(w.Refs))
	for _, id := range w.Refs {
		ri := refInfo{id: id}
		if info, ok := s.fab.Datasets.Stat(id); ok {
			ri.bytes = float64(info.Bytes)
		}
		ri.reps = s.fab.Datasets.Placement(id)
		up := false
		for _, rep := range ri.reps {
			if rep.Up {
				up = true
				break
			}
		}
		if !up {
			if firstTry {
				return nil, fmt.Errorf("%w: ref %s has %d replicas, none up", ErrNoReplicas, id, len(ri.reps))
			}
			return nil, errRetry
		}
		refs = append(refs, ri)
	}

	// Dynamic filter + gravity scoring.
	type cand struct {
		name     string
		costMS   float64
		locality string
		loadFrac float64
	}
	var best *cand
	for _, name := range static {
		n := s.fab.Cluster.Node(name)
		if !n.Ready || !w.Req.Fits(n.Available()) {
			continue
		}
		costMS, locality, ok := s.gravityLocked(refs, name, n.Site)
		if !ok {
			continue
		}
		c := cand{name: name, costMS: costMS, locality: locality,
			loadFrac: n.Allocated().CPU / n.Capacity.CPU}
		if best == nil ||
			c.costMS < best.costMS-1e-12 ||
			(c.costMS < best.costMS+1e-12 && (c.loadFrac < best.loadFrac-1e-12 ||
				(c.loadFrac < best.loadFrac+1e-12 && c.name < best.name))) {
			best = &c
		}
	}
	if best == nil {
		if firstTry {
			s.parked = append(s.parked, w)
		}
		return nil, errRetry
	}

	if err := s.fab.Cluster.Claim(best.name, w.JobID, w.Req); err != nil {
		// Lost a race with concurrent state change; park rather than fail.
		if firstTry {
			s.parked = append(s.parked, w)
		}
		return nil, errRetry
	}
	s.ownerAdd(w.Owner, w.Req)
	s.bound[w.JobID] = &binding{node: best.name, w: w}

	spec := s.fab.nodes[best.name]
	pl := &api.Placement{
		Node:       best.name,
		Site:       spec.Site,
		Locality:   best.locality,
		Score:      -best.costMS,
		TransferMS: best.costMS,
		EstJoules:  s.estJoules(w, spec),
		Requeues:   s.requeues[w.JobID],
	}
	s.countLocked("sched_placements", metrics.Labels{"locality": best.locality})
	s.nodeGaugesLocked(best.name)
	return pl, nil
}

// errRetry is the internal "not now" sentinel: parked retries that still
// cannot place return it so tryParkedLocked keeps them parked. It never
// escapes the package (Place maps parked admissions to (nil, nil)).
var errRetry = errors.New("sched: retry later")

// gravityLocked scores staging the refs onto node: 0 for replica-local, the
// LAN for same-site, and latency + size/bottleneck over the netsim path for
// remote replicas. ok=false means some ref has no reachable up replica from
// this node. s.mu held.
func (s *Scheduler) gravityLocked(refs []refInfo, node, site string) (costMS float64, locality string, ok bool) {
	if len(refs) == 0 {
		return 0, api.LocalityAny, true
	}
	locality = api.LocalityReplicaLocal
	for _, ri := range refs {
		refCost, refClass, reachable := s.refGravityLocked(ri, node, site)
		if !reachable {
			return 0, "", false
		}
		costMS += refCost
		// The job's class is its worst ref's class.
		if rank(refClass) > rank(locality) {
			locality = refClass
		}
	}
	return costMS, locality, true
}

func rank(class string) int {
	switch class {
	case api.LocalityReplicaLocal:
		return 0
	case api.LocalitySameSite:
		return 1
	default:
		return 2
	}
}

func (s *Scheduler) refGravityLocked(ri refInfo, node, site string) (costMS float64, class string, ok bool) {
	bestRemote := -1.0
	sameSite := false
	for _, rep := range ri.reps {
		if !rep.Up {
			continue
		}
		if s.fab.osdNode[rep.OSD] == node {
			return 0, api.LocalityReplicaLocal, true
		}
		if rep.Site == site {
			sameSite = true
			continue
		}
		// Remote: pay path latency plus serialization at the bottleneck.
		path := s.fab.Net.Path(rep.Site, site)
		if path == nil {
			continue
		}
		ms := 0.0
		bottleneck := -1.0
		for _, l := range path {
			ms += float64(l.Latency) / float64(time.Millisecond)
			if cap := l.EffectiveCapacity(); bottleneck < 0 || cap < bottleneck {
				bottleneck = cap
			}
		}
		if bottleneck <= 0 {
			// Path exists but is fully degraded (down or 100% loss): the
			// replica is unreachable for staging purposes.
			continue
		}
		ms += ri.bytes / bottleneck * 1000
		if bestRemote < 0 || ms < bestRemote {
			bestRemote = ms
		}
	}
	if sameSite {
		return ri.bytes / s.fab.cfg.LANBytesPerSec * 1000, api.LocalitySameSite, true
	}
	if bestRemote >= 0 {
		return bestRemote, api.LocalityRemote, true
	}
	return 0, "", false
}

// estJoules estimates board energy for the workload on the node's device.
func (s *Scheduler) estJoules(w *Workload, spec *NodeSpec) float64 {
	if w.Voxels <= 0 {
		return 0
	}
	devices := w.Req.GPUs
	if devices < 1 {
		devices = 1
	}
	switch w.Kind {
	case api.KindTrain:
		return spec.Model.TrainEnergyJoules(w.Voxels, devices)
	case api.KindSegment, api.KindPipeline:
		return spec.Model.InferEnergyJoules(w.Voxels, devices)
	default:
		return spec.Model.EnergyJoules(spec.Model.PrepTime(w.Voxels), 1)
	}
}

// onNodeEvent handles cluster node transitions. It only ever fires from
// Cluster calls made by this scheduler, so s.mu is already held.
func (s *Scheduler) onNodeEvent(ev cluster.NodeEvent) {
	if ev.Ready {
		// Restore callback first, parked retries second: observers recreate
		// the node's worker pool in the restore callback, and a bind
		// delivered ahead of it would land on a node with no pool and
		// strand the job.
		if s.restoreFn != nil {
			fn, node := s.restoreFn, ev.Node
			s.cbs = append(s.cbs, func() { fn(node) })
		}
		s.tryParkedLocked()
		return
	}
	var drained []string
	for _, id := range ev.DroppedClaims {
		b, ok := s.bound[id]
		if !ok {
			continue
		}
		delete(s.bound, id)
		s.ownerSub(b.w.Owner, b.w.Req)
		s.requeues[id]++
		s.countLocked("sched_requeues", nil)
		drained = append(drained, id)
	}
	sort.Strings(drained)
	s.nodeGaugesLocked(ev.Node)
	if s.drainFn != nil {
		// Fire even with no drained jobs: observers tear down per-node
		// worker pools on any node loss.
		fn, node := s.drainFn, ev.Node
		s.cbs = append(s.cbs, func() { fn(node, drained) })
	}
}

// tryParkedLocked retries parked workloads FIFO; placed ones leave the lot
// and notify via OnBind. s.mu held.
func (s *Scheduler) tryParkedLocked() {
	if len(s.parked) == 0 {
		return
	}
	var still []*Workload
	for _, w := range s.parked {
		pl, err := s.placeLocked(w, false)
		if err != nil || pl == nil {
			still = append(still, w)
			continue
		}
		if s.bindFn != nil {
			fn, id := s.bindFn, w.JobID
			s.cbs = append(s.cbs, func() { fn(id, pl) })
		}
	}
	s.parked = still
}

// --- Metrics ----------------------------------------------------------------

func (s *Scheduler) countLocked(name string, labels metrics.Labels) {
	key := name + "/" + labels["locality"]
	c := s.counters[key]
	if c == nil {
		c = s.fab.reg.Counter(name, labels)
		s.counters[key] = c
	}
	c.Inc()
}

// nodeGaugesLocked refreshes the per-node allocation gauges after any
// claim/release on the node. s.mu held.
func (s *Scheduler) nodeGaugesLocked(node string) {
	n := s.fab.Cluster.Node(node)
	if n == nil {
		return
	}
	alloc := n.Allocated()
	s.gaugeLocked("sched_node_alloc_cpu", node).Set(alloc.CPU)
	s.gaugeLocked("sched_node_alloc_mem_bytes", node).Set(alloc.Memory)
	s.gaugeLocked("sched_node_alloc_gpus", node).Set(float64(alloc.GPUs))
	bound := 0
	for _, b := range s.bound {
		if b.node == node {
			bound++
		}
	}
	s.gaugeLocked("sched_jobs_bound", node).Set(float64(bound))
}

func (s *Scheduler) gaugeLocked(name, node string) *metrics.Gauge {
	key := name + "/" + node
	g := s.gauges[key]
	if g == nil {
		g = s.fab.reg.Gauge(name, metrics.Labels{"node": node})
		s.gauges[key] = g
	}
	return g
}
