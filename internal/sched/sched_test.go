package sched

import (
	"errors"
	"strings"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/dataset"
	"chaseci/internal/gpusim"
	"chaseci/internal/netsim"
)

// testFabric builds a 3-site topology with a known replica layout:
// site-a holds nodes a0 (osd-a) and a1, site-b holds b0 (osd-b), site-c
// holds c0 with no storage. Replication factor 2 puts every dataset on
// osd-a and osd-b, so a0 and b0 are the replica-local nodes.
func testFabric(t *testing.T, cfg FabricConfig) *Fabric {
	t.Helper()
	cfg.Replicas = 2
	f := NewFabric(cfg)
	for _, s := range []string{"site-a", "site-b", "site-c"} {
		f.AddSite(s)
	}
	f.AddLink("site-a", "site-b", netsim.Gbps(40), 2*time.Millisecond)
	f.AddLink("site-b", "site-c", netsim.Gbps(10), 3*time.Millisecond)
	f.AddLink("site-a", "site-c", netsim.Gbps(10), 5*time.Millisecond)
	add := func(name, site, osd string) {
		t.Helper()
		err := f.AddNode(NodeSpec{
			Name: name, Site: site, Capacity: cluster.FIONA8Capacity(),
			Model: gpusim.Powered1080Ti(), OSD: osd,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("a0", "site-a", "osd-a")
	add("a1", "site-a", "")
	add("b0", "site-b", "osd-b")
	add("c0", "site-c", "")
	return f
}

func putVolume(t *testing.T, f *Fabric, fill float32) string {
	t.Helper()
	data := make([]float32, 4*4*4)
	for i := range data {
		data[i] = fill
	}
	enc, err := dataset.EncodeVolume(4, 4, 4, data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := f.Datasets.Put(enc, "tester")
	if err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func segJob(id, ref string) *Workload {
	w := &Workload{JobID: id, Kind: api.KindSegment, Owner: "tester", Voxels: 64}
	if ref != "" {
		w.Refs = []string{ref}
	}
	return w
}

func TestPlacementPrefersReplicaLocal(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 1)

	pl, err := s.Place(segJob("j1", ref))
	if err != nil || pl == nil {
		t.Fatalf("Place: pl=%v err=%v", pl, err)
	}
	if pl.Node != "a0" || pl.Locality != api.LocalityReplicaLocal {
		t.Fatalf("want a0/replica-local, got %s/%s", pl.Node, pl.Locality)
	}
	if pl.TransferMS != 0 || pl.Score != 0 {
		t.Fatalf("replica-local placement should be free, got transfer=%v score=%v", pl.TransferMS, pl.Score)
	}
	if pl.EstJoules <= 0 {
		t.Fatalf("segment on a powered GPU should have an energy estimate, got %v", pl.EstJoules)
	}
	// Second identical job: a0 now carries load, so the other replica holder
	// b0 wins on the load tiebreak at equal (zero) cost.
	pl2, err := s.Place(segJob("j2", ref))
	if err != nil || pl2 == nil {
		t.Fatalf("Place j2: %v %v", pl2, err)
	}
	if pl2.Node != "b0" || pl2.Locality != api.LocalityReplicaLocal {
		t.Fatalf("want b0/replica-local, got %s/%s", pl2.Node, pl2.Locality)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 2)
	var first *api.Placement
	for i := 0; i < 25; i++ {
		pl, err := s.Place(segJob("job", ref))
		if err != nil || pl == nil {
			t.Fatalf("iter %d: pl=%v err=%v", i, pl, err)
		}
		if first == nil {
			first = pl
		} else if *pl != *first {
			t.Fatalf("iter %d: placement drifted: %+v vs %+v", i, *pl, *first)
		}
		s.Release("job")
	}
}

func TestLocalityDegradesUnderLoad(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 3)
	whole := cluster.FIONA8Capacity()

	// Saturate both replica-local nodes: next job must fall back to a1
	// (same site as the osd-a replica).
	for _, n := range []string{"a0", "b0"} {
		if err := f.Cluster.Claim(n, "block-"+n, whole); err != nil {
			t.Fatal(err)
		}
	}
	pl, err := s.Place(segJob("j-site", ref))
	if err != nil || pl == nil {
		t.Fatalf("Place: %v %v", pl, err)
	}
	if pl.Node != "a1" || pl.Locality != api.LocalitySameSite {
		t.Fatalf("want a1/same-site, got %s/%s", pl.Node, pl.Locality)
	}
	if pl.TransferMS <= 0 {
		t.Fatal("same-site staging should cost LAN time")
	}

	// Saturate a1 too: only c0 remains, and it must pay the WAN.
	if err := f.Cluster.Claim("a1", "block-a1", whole.Sub(RequestFor(api.KindSegment, 64))); err != nil {
		t.Fatal(err)
	}
	pl2, err := s.Place(segJob("j-remote", ref))
	if err != nil || pl2 == nil {
		t.Fatalf("Place remote: %v %v", pl2, err)
	}
	if pl2.Node != "c0" || pl2.Locality != api.LocalityRemote {
		t.Fatalf("want c0/remote, got %s/%s", pl2.Node, pl2.Locality)
	}
	if pl2.TransferMS < 3 {
		t.Fatalf("remote staging should include WAN latency, got %vms", pl2.TransferMS)
	}
}

func TestTaintsRejectAndTolerate(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	for _, n := range f.NodeNames() {
		if err := f.Cluster.TaintNode(n, cluster.Taint{Key: "reserved", Value: "viz"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Place(segJob("j1", "")); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("tainted fleet should be unschedulable, got %v", err)
	}
	w := segJob("j2", "")
	w.Spec = &api.PlacementSpec{Tolerations: map[string]string{"reserved": "viz"}}
	if pl, err := s.Place(w); err != nil || pl == nil {
		t.Fatalf("tolerating job should place: %v %v", pl, err)
	}
	// A pin to a node that doesn't exist is statically impossible.
	w3 := segJob("j3", "")
	w3.Spec = &api.PlacementSpec{Node: "nope"}
	if _, err := s.Place(w3); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("bad pin should be unschedulable, got %v", err)
	}
}

func TestOwnerQuota(t *testing.T) {
	f := testFabric(t, FabricConfig{
		OwnerQuota: &cluster.Resources{CPU: 4, Memory: cluster.GB(8), GPUs: 1},
	})
	s := New(f)
	if pl, err := s.Place(segJob("j1", "")); err != nil || pl == nil {
		t.Fatalf("first job within quota should place: %v %v", pl, err)
	}
	if _, err := s.Place(segJob("j2", "")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second GPU job should bust the 1-GPU quota, got %v", err)
	}
	other := segJob("j3", "")
	other.Owner = "someone-else"
	if pl, err := s.Place(other); err != nil || pl == nil {
		t.Fatalf("quota is per-owner; other owner should place: %v %v", pl, err)
	}
	// Releasing frees the quota.
	s.Release("j1")
	if pl, err := s.Place(segJob("j4", "")); err != nil || pl == nil {
		t.Fatalf("after release, owner should place again: %v %v", pl, err)
	}
}

func TestParkAndBindOnRelease(t *testing.T) {
	f := NewFabric(FabricConfig{Replicas: 1})
	f.AddSite("s")
	if err := f.AddNode(NodeSpec{
		Name: "only", Site: "s", Capacity: cluster.FIONA8Capacity(),
		Model: gpusim.Powered1080Ti(), OSD: "osd-0",
	}); err != nil {
		t.Fatal(err)
	}
	s := New(f)
	var boundID string
	var boundPl *api.Placement
	s.OnBind(func(id string, pl *api.Placement) { boundID, boundPl = id, pl })

	whole := segJob("big", "")
	whole.Req = cluster.FIONA8Capacity()
	if pl, err := s.Place(whole); err != nil || pl == nil {
		t.Fatalf("big job should place: %v %v", pl, err)
	}
	pl, err := s.Place(segJob("waiter", ""))
	if err != nil || pl != nil {
		t.Fatalf("full node: want parked (nil, nil), got %v %v", pl, err)
	}
	if boundID != "" {
		t.Fatal("bind fired early")
	}
	s.Release("big")
	if boundID != "waiter" || boundPl == nil || boundPl.Node != "only" {
		t.Fatalf("parked job should bind on release: id=%q pl=%+v", boundID, boundPl)
	}
}

func TestKillNodeDrainsAndRequeuesReplicaLocal(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 4)

	var drainedNode string
	var drainedIDs []string
	s.OnDrain(func(node string, ids []string) { drainedNode, drainedIDs = node, ids })

	pl, err := s.Place(segJob("j1", ref))
	if err != nil || pl == nil || pl.Node != "a0" {
		t.Fatalf("setup: %v %v", pl, err)
	}
	if err := s.KillNode("a0"); err != nil {
		t.Fatal(err)
	}
	if drainedNode != "a0" || len(drainedIDs) != 1 || drainedIDs[0] != "j1" {
		t.Fatalf("drain callback: node=%q ids=%v", drainedNode, drainedIDs)
	}
	if got := s.Requeues("j1"); got != 1 {
		t.Fatalf("requeues = %d, want 1", got)
	}
	// Re-place, as the service layer would: osd-a is down, so the surviving
	// replica holder b0 must win — and still as replica-local, because the
	// objstore remapped placement to survivors.
	pl2, err := s.Place(segJob("j1", ref))
	if err != nil || pl2 == nil {
		t.Fatalf("re-place: %v %v", pl2, err)
	}
	if pl2.Node != "b0" || pl2.Locality != api.LocalityReplicaLocal {
		t.Fatalf("want b0/replica-local after failover, got %s/%s", pl2.Node, pl2.Locality)
	}
	if pl2.Requeues != 1 {
		t.Fatalf("placement should carry the requeue count, got %d", pl2.Requeues)
	}

	// Restore: a0 is schedulable again and its OSD rejoins placement.
	var restored string
	s.OnRestore(func(node string) { restored = node })
	if err := s.RestoreNode("a0"); err != nil {
		t.Fatal(err)
	}
	if restored != "a0" {
		t.Fatalf("restore callback got %q", restored)
	}
	for _, st := range s.Nodes() {
		if st.Name == "a0" && (!st.Ready || !st.OSDUp) {
			t.Fatalf("a0 should be ready with OSD up: %+v", st)
		}
	}
}

func TestNodesInventoryAndMetrics(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 5)
	if _, err := s.Place(segJob("j1", ref)); err != nil {
		t.Fatal(err)
	}
	var a0 *api.NodeStatus
	for _, st := range s.Nodes() {
		if st.Name == "a0" {
			cp := st
			a0 = &cp
		}
	}
	if a0 == nil {
		t.Fatal("a0 missing from inventory")
	}
	if a0.BoundJobs != 1 || a0.AllocGPUs != 1 || a0.OSD != "osd-a" || !a0.OSDUp {
		t.Fatalf("a0 inventory wrong: %+v", *a0)
	}
	text := s.MetricsText()
	for _, want := range []string{
		`sched_placements{locality="replica-local"} 1`,
		`sched_jobs_bound{node="a0"} 1`,
		`sched_node_alloc_gpus{node="a0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestFailOSDNoReplicasTerminal(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 6)

	// Both replica holders die: placement must fail fast with ErrNoReplicas
	// (data loss), not park the job forever.
	if err := s.FailOSD("osd-a"); err != nil {
		t.Fatal(err)
	}
	if err := s.FailOSD("osd-b"); err != nil {
		t.Fatal(err)
	}
	pl, err := s.Place(segJob("j1", ref))
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("want ErrNoReplicas, got pl=%v err=%v", pl, err)
	}
	if !strings.Contains(err.Error(), ref) {
		t.Fatalf("error should name the ref: %v", err)
	}

	// One replica comes back: the job places replica-local on the survivor.
	if err := s.RecoverOSD("osd-b"); err != nil {
		t.Fatal(err)
	}
	pl, err = s.Place(segJob("j1", ref))
	if err != nil || pl == nil || pl.Node != "b0" || pl.Locality != api.LocalityReplicaLocal {
		t.Fatalf("after recover want b0/replica-local, got pl=%+v err=%v", pl, err)
	}
}

func TestPartitionParksAndHealBinds(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)
	ref := putVolume(t, f, 7)

	// Saturate every node that holds or can reach data locally, so the only
	// free capacity is c0 — which needs the WAN to stage the ref.
	for _, n := range []string{"a0", "a1", "b0"} {
		w := segJob("fill-"+n, "")
		w.Req = cluster.FIONA8Capacity()
		pl, err := s.Place(w)
		if err != nil || pl == nil {
			t.Fatalf("fill %s: %v %v", n, pl, err)
		}
	}

	cut := s.PartitionSite("site-c")
	if len(cut) != 2 {
		t.Fatalf("site-c touches 2 links, cut %v", cut)
	}
	var boundID string
	s.OnBind(func(id string, pl *api.Placement) { boundID = id })
	pl, err := s.Place(segJob("j1", ref))
	if err != nil || pl != nil {
		t.Fatalf("partitioned: want parked (nil, nil), got %v %v", pl, err)
	}

	// Heal: the parked job binds onto c0 across the restored WAN.
	s.HealSite("site-c")
	if boundID != "j1" {
		t.Fatalf("heal should bind parked job, bound=%q", boundID)
	}
}

func TestRunTransferTraceAndStall(t *testing.T) {
	f := testFabric(t, FabricConfig{})
	s := New(f)

	// 40 Gbps a<->b link collapses to 1/100th for 2s mid-transfer.
	cap := netsim.Gbps(40)
	err := s.ApplyLinkTrace("site-a", "site-b", []netsim.TracePoint{
		{At: 1 * time.Second, Change: netsim.CapacityBps(cap / 100)},
		{At: 3 * time.Second, Change: netsim.CapacityBps(cap)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2s of full rate, of which 2s ran at 1% — the collapse stretches the
	// transfer by ~1.98s beyond the undisturbed 2s.
	rep, err := s.RunTransfer("site-a", "site-b", 2*cap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalled || rep.Transferred != 2*cap {
		t.Fatalf("transfer should complete: %+v", rep)
	}
	want := 3982 * time.Millisecond // 1s full + 2s at 1% + 0.98s full + 2ms path latency
	if rep.Elapsed < want-time.Millisecond || rep.Elapsed > want+time.Millisecond {
		t.Fatalf("elapsed = %v, want ~%v", rep.Elapsed, want)
	}

	// A link that dies with no heal scheduled stalls the flow; RunTransfer
	// reports partial progress instead of spinning.
	if err := s.SetLink("site-a", "site-b", netsim.LinkDown(true)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLink("site-a", "site-c", netsim.LinkDown(true)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunTransfer("site-a", "site-b", cap); err == nil {
		t.Fatal("no path: want error")
	}
}
