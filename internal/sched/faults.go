package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"chaseci/internal/netsim"
)

// ErrNoReplicas means some required dataset ref has no up replica anywhere
// in the fabric — no amount of waiting for capacity can place the job, and
// unlike ErrUnschedulable the condition is data loss, not geometry. The
// service layer turns it into a terminal failure instead of requeueing
// forever.
var ErrNoReplicas = errors.New("sched: no up replica holds a required dataset")

// The fault-injection surface. Every entrypoint takes s.mu so scripted
// adversity serializes against placement exactly like node lifecycle does:
// a scenario can never observe (or create) a half-applied fault.

// FailOSD fails a storage daemon without touching its host node — the
// "disk died, machine fine" case. Placement groups remap to survivors
// immediately; placement scoring sees only up replicas afterwards.
func (s *Scheduler) FailOSD(osd string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.downOSDs[osd] {
		return nil
	}
	if err := s.fab.Datasets.FailOSD(osd); err != nil {
		return err
	}
	s.downOSDs[osd] = true
	return nil
}

// RecoverOSD brings a failed daemon back and retries parked work (replicas
// that were unreachable may be resolvable again).
func (s *Scheduler) RecoverOSD(osd string) error {
	s.mu.Lock()
	if !s.downOSDs[osd] {
		s.mu.Unlock()
		return nil
	}
	err := s.fab.Datasets.RecoverOSD(osd)
	if err == nil {
		delete(s.downOSDs, osd)
		s.tryParkedLocked()
	}
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
	return err
}

// SetLink applies a condition change (capacity, latency, loss, down) to a
// WAN link. Restoring a link retries parked work: a replica that was
// unreachable across a dead path may be reachable now.
func (s *Scheduler) SetLink(a, b string, ch netsim.LinkChange) error {
	s.mu.Lock()
	err := s.fab.Net.SetLink(a, b, ch)
	if err == nil {
		s.tryParkedLocked()
	}
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
	return err
}

// ApplyLinkTrace schedules a recorded condition trace on a link; points fire
// when the fabric's control clock reaches their virtual times (RunTransfer
// advances it).
func (s *Scheduler) ApplyLinkTrace(a, b string, trace []netsim.TracePoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fab.Net.ApplyTrace(a, b, trace)
}

// PartitionSite takes down every WAN link touching the site, isolating it
// from the rest of the fabric: remote replicas there become unreachable for
// placement, and new jobs that can only run against them park until HealSite.
// Jobs already bound at the site keep running — their data is local.
// Returns the partitioned link pairs (sorted) so the caller can heal exactly
// what it cut.
func (s *Scheduler) PartitionSite(site string) [][2]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cut [][2]string
	for _, l := range s.fab.Net.Links() {
		if (l.A == site || l.B == site) && !l.Down {
			s.fab.Net.SetLink(l.A, l.B, netsim.LinkDown(true))
			cut = append(cut, [2]string{l.A, l.B})
		}
	}
	sort.Slice(cut, func(i, j int) bool {
		return cut[i][0]+cut[i][1] < cut[j][0]+cut[j][1]
	})
	return cut
}

// HealSite restores every down link touching the site and retries parked
// work — the partition's other half.
func (s *Scheduler) HealSite(site string) {
	s.mu.Lock()
	healed := false
	for _, l := range s.fab.Net.Links() {
		if (l.A == site || l.B == site) && l.Down {
			s.fab.Net.SetLink(l.A, l.B, netsim.LinkDown(false))
			healed = true
		}
	}
	if healed {
		s.tryParkedLocked()
	}
	cbs := s.takeCallbacks()
	s.mu.Unlock()
	dispatch(cbs)
}

// LiveClaims snapshots outstanding resource claims per node (node -> claim
// ids, only nodes with live claims). Once every job is terminal this must be
// empty — anything left is a leaked reservation.
func (s *Scheduler) LiveClaims() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]string)
	for _, n := range s.fab.Cluster.Nodes() {
		if ids := s.fab.Cluster.Claims(n.Name); len(ids) > 0 {
			out[n.Name] = ids
		}
	}
	return out
}

// TransferReport describes one simulated bulk transfer (RunTransfer).
type TransferReport struct {
	Src, Dst string
	Bytes    float64
	// Elapsed is the transfer's virtual duration. When Stalled, it covers
	// only the progress made before the fabric went quiet.
	Elapsed time.Duration
	// Transferred is the bytes actually moved (== Bytes unless Stalled).
	Transferred float64
	// Stalled reports that the flow could make no further progress (e.g. a
	// link went down with no scheduled heal) and was abandoned.
	Stalled bool
}

// RunTransfer moves size bytes between two sites through the netsim
// fluid-flow model, advancing the fabric's control clock until the flow
// completes — scheduled link traces fire along the way, so the report's
// virtual elapsed time reflects collapses, loss storms, and heals exactly as
// scripted. Deterministic: same topology + same traces = same elapsed, to
// the nanosecond.
func (s *Scheduler) RunTransfer(src, dst string, size float64) (TransferReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := TransferReport{Src: src, Dst: dst, Bytes: size}
	net := s.fab.Net
	if src != dst && net.Path(src, dst) == nil {
		return rep, fmt.Errorf("sched: no path %s -> %s", src, dst)
	}
	clk := s.fab.Cluster.Clock()
	start := clk.Now()
	done := false
	f := net.Transfer(src, dst, size, func() { done = true })
	// A generous runaway bound: a real transfer over any scripted trace
	// settles in far fewer events.
	for steps := 0; !done; steps++ {
		if steps > 1<<22 {
			f.Cancel()
			return rep, fmt.Errorf("sched: transfer %s -> %s did not settle", src, dst)
		}
		if !clk.Step() {
			// Event queue drained with bytes still pending: the flow is
			// stalled (down link, no heal scheduled). Abandon it.
			rep.Stalled = true
			rep.Elapsed = clk.Now() - start
			rep.Transferred = f.Transferred()
			f.Cancel()
			return rep, nil
		}
	}
	rep.Elapsed = clk.Now() - start
	rep.Transferred = size
	return rep, nil
}
