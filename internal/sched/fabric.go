// Package sched is the data-gravity placement layer of the simulated
// CHASE-CI fabric: it decides which cluster node a ref-mode service job runs
// on by weighing where the job's dataset replicas physically live (Ceph OSD
// placement) against node capacity, taints, and per-owner quotas. The paper's
// thesis — "move the computation to the data" across the PRP's FIONA sites —
// becomes a concrete scoring rule here: a node co-located with an up replica
// of every input costs nothing, a same-site node pays the LAN, and anything
// else pays a simulated WAN transfer over the netsim topology.
package sched

import (
	"fmt"
	"sort"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/dataset"
	"chaseci/internal/gpusim"
	"chaseci/internal/metrics"
	"chaseci/internal/netsim"
	"chaseci/internal/objstore"
	"chaseci/internal/sim"
)

// NodeSpec declares one fabric node: a FIONA appliance at a site, with a
// device model for energy estimates and optionally a co-located Ceph OSD
// (the paper's converged compute+storage FIONAs).
type NodeSpec struct {
	Name     string
	Site     string
	Capacity cluster.Resources
	Model    gpusim.PoweredModel
	// OSD, when non-empty, co-locates a storage daemon of that id on the
	// node; jobs whose refs land on this OSD score replica-local here.
	OSD    string
	Labels map[string]string
}

// FabricConfig tunes fabric construction.
type FabricConfig struct {
	// Replicas is the objstore replication factor (default 2).
	Replicas int
	// OwnerQuota, when non-nil, caps the summed resource requests any one
	// owner may hold placed at once.
	OwnerQuota *cluster.Resources
	// LANBytesPerSec is the intra-site staging rate used for same-site
	// replicas (default 10e9, netsim's local rate).
	LANBytesPerSec float64
	// OSDCapacity is the per-OSD capacity in bytes (default 1e12).
	OSDCapacity float64
}

func (c *FabricConfig) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.LANBytesPerSec <= 0 {
		c.LANBytesPerSec = 10e9
	}
	if c.OSDCapacity <= 0 {
		c.OSDCapacity = 1e12
	}
}

// Fabric wires the simulated substrate the scheduler places onto: a cluster
// of nodes, a netsim WAN between their sites, and a dataset manager whose
// objstore replicas define data gravity.
//
// Two independent virtual clocks keep the lock order acyclic: the data clock
// drives the objstore and is only touched under the dataset manager's lock;
// the control clock drives the cluster, network, and metric registry and is
// only touched under the scheduler's lock. Neither clock advances on its
// own, so metric series stay single-sample (Registry.record collapses
// same-timestamp writes).
type Fabric struct {
	cfg FabricConfig

	Cluster  *cluster.Cluster
	Net      *netsim.Network
	Datasets *dataset.Manager

	reg   *metrics.Registry
	store *objstore.Store // construction-time only; runtime access via Datasets

	nodes     map[string]*NodeSpec
	nodeNames []string
	osdNode   map[string]string // OSD id -> node name
}

// NewFabric builds an empty fabric; populate with AddSite/AddLink/AddNode.
func NewFabric(cfg FabricConfig) *Fabric {
	cfg.defaults()
	ctrlClk := sim.NewClock()
	reg := metrics.NewRegistry(ctrlClk)
	dataClk := sim.NewClock()
	store := objstore.NewStore(dataClk, nil, objstore.Config{Replicas: cfg.Replicas})
	return &Fabric{
		cfg:      cfg,
		Cluster:  cluster.New(ctrlClk, reg),
		Net:      netsim.NewNetwork(ctrlClk, reg),
		Datasets: dataset.NewManager(store.MountBucket("datasets"), dataset.Config{}),
		reg:      reg,
		store:    store,
		nodes:    make(map[string]*NodeSpec),
		osdNode:  make(map[string]string),
	}
}

// Registry exposes the fabric's control-plane metric registry.
func (f *Fabric) Registry() *metrics.Registry { return f.reg }

// AddSite registers a network site (idempotent).
func (f *Fabric) AddSite(name string) { f.Net.AddSite(name) }

// AddLink joins two sites with a WAN link.
func (f *Fabric) AddLink(a, b string, capacityBps float64, latency time.Duration) {
	f.Net.AddLink(a, b, capacityBps, latency)
}

// AddNode joins a node (and its co-located OSD, if declared) to the fabric.
// The site is registered implicitly.
func (f *Fabric) AddNode(spec NodeSpec) error {
	if _, dup := f.nodes[spec.Name]; dup {
		return cluster.ErrDuplicate
	}
	f.Net.AddSite(spec.Site)
	if _, err := f.Cluster.AddNode(spec.Name, spec.Site, spec.Capacity, spec.Labels); err != nil {
		return err
	}
	if spec.OSD != "" {
		if _, dup := f.osdNode[spec.OSD]; dup {
			return fmt.Errorf("sched: OSD %q already placed: %w", spec.OSD, cluster.ErrDuplicate)
		}
		f.store.AddOSD(spec.OSD, spec.Site, f.cfg.OSDCapacity, 1)
		f.osdNode[spec.OSD] = spec.Name
	}
	sp := spec
	f.nodes[spec.Name] = &sp
	f.nodeNames = append(f.nodeNames, spec.Name)
	sort.Strings(f.nodeNames)
	return nil
}

// AddOSD registers a storage-only daemon at a site (no co-located compute —
// replicas there are reachable but never replica-local).
func (f *Fabric) AddOSD(id, site string) {
	f.Net.AddSite(site)
	f.store.AddOSD(id, site, f.cfg.OSDCapacity, 1)
}

// Node returns the spec for a fabric node, or nil.
func (f *Fabric) Node(name string) *NodeSpec { return f.nodes[name] }

// NodeNames returns all fabric node names, sorted.
func (f *Fabric) NodeNames() []string { return append([]string(nil), f.nodeNames...) }

// DefaultFabric is the three-site reference topology used by `chased serve
// --cluster`: UCSD, UCI and SDSU pairwise-linked (the Pacific Research
// Platform's southern-California core), two FIONA8 appliances per site, and
// one OSD co-located on the first appliance of each site. Replication factor
// 2 means every dataset has exactly two replica-local nodes.
func DefaultFabric() *Fabric {
	f := NewFabric(FabricConfig{Replicas: 2})
	sites := []string{"sdsu", "ucsd", "uci"}
	for _, s := range sites {
		f.AddSite(s)
	}
	f.AddLink("ucsd", "sdsu", netsim.Gbps(40), 2*time.Millisecond)
	f.AddLink("ucsd", "uci", netsim.Gbps(40), 2*time.Millisecond)
	f.AddLink("sdsu", "uci", netsim.Gbps(10), 3*time.Millisecond)
	for _, s := range sites {
		for i := 0; i < 2; i++ {
			spec := NodeSpec{
				Name:     fmt.Sprintf("fiona-%s-%d", s, i),
				Site:     s,
				Capacity: cluster.FIONA8Capacity(),
				Model:    gpusim.Powered1080Ti(),
				Labels:   map[string]string{"gpu": "1080ti"},
			}
			if i == 0 {
				spec.OSD = "osd-" + s
			}
			if err := f.AddNode(spec); err != nil {
				panic(err)
			}
		}
	}
	return f
}
