// Package loadtest is an open-loop sustained-RPS load generator for the
// chased gateway: arrivals are scheduled on a fixed clock (request i fires
// at start + i/RPS) regardless of how fast earlier requests complete, so
// the measured latencies reflect what real independent clients would see —
// a slow server faces a growing backlog instead of a politely slowing
// generator (the coordinated-omission trap closed-loop harnesses fall
// into).
//
// N tenant identities round-robin over the arrival stream; per-request
// submit latency, end-to-end (submit→terminal) latency, and the
// accepted/shed/failed split are recorded into metrics.Histogram and
// summarized as p50/p95/p99 in the Report — the numbers the
// serve_sustained_* benchjson series and the CI smoke publish.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/metrics"
)

// Tenant is one load-generating identity: requests carry its bearer token
// (empty Token = anonymous).
type Tenant struct {
	Name  string
	Token string
}

// Config drives one Run.
type Config struct {
	// BaseURL is the gateway root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// RPS is the open-loop arrival rate across all tenants (> 0).
	RPS float64
	// Duration bounds the arrival window (> 0). In-flight requests get a
	// grace period to finish after the last arrival.
	Duration time.Duration
	// Tenants round-robin over arrivals; empty means one anonymous tenant.
	Tenants []Tenant
	// Body is the JSON job request every arrival submits (api.JobRequest).
	Body []byte
	// WaitTerminal polls each accepted job to a terminal state and records
	// end-to-end latency; off, only submit latency is measured.
	WaitTerminal bool
	// PollInterval is the WaitTerminal poll cadence (<= 0 = 10ms).
	PollInterval time.Duration
	// MaxInFlight bounds concurrently outstanding requests (<= 0 = 4096).
	// Arrivals past the bound are counted Dropped, not silently skipped —
	// an open-loop generator must not block the clock.
	MaxInFlight int
	// Client overrides the HTTP client (nil = a dedicated one with a
	// generous connection pool).
	Client *http.Client
}

// TenantStats is one tenant's accepted/shed split.
type TenantStats struct {
	Sent     int64
	Accepted int64
	Shed     int64 // 429s: rate limit or admission backpressure
	Failed   int64 // transport errors and non-2xx, non-429 replies
}

// Report is a Run's measured outcome.
type Report struct {
	Sent     int64
	Accepted int64
	Shed     int64
	Failed   int64
	Dropped  int64 // arrivals skipped at the MaxInFlight bound
	// Completed counts WaitTerminal jobs that reached a terminal state.
	Completed int64
	Duration  time.Duration
	// AcceptedRPS is accepted submits per second of arrival window.
	AcceptedRPS float64

	SubmitP50, SubmitP95, SubmitP99, SubmitMax time.Duration
	// E2E quantiles are zero unless WaitTerminal was set.
	E2EP50, E2EP95, E2EP99, E2EMax time.Duration

	Tenants map[string]*TenantStats
}

// Login obtains bearer tokens for users against the gateway's /v1/login
// (each user's domain must have a registered provider).
func Login(baseURL string, client *http.Client, users ...string) ([]Tenant, error) {
	if client == nil {
		client = http.DefaultClient
	}
	tenants := make([]Tenant, 0, len(users))
	for _, user := range users {
		body, _ := json.Marshal(map[string]string{"user": user})
		resp, err := client.Post(baseURL+"/v1/login", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("loadtest: login %s: %w", user, err)
		}
		var out struct {
			Token string `json:"token"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || out.Token == "" {
			return nil, fmt.Errorf("loadtest: login %s: status %d %s", user, resp.StatusCode, out.Error)
		}
		tenants = append(tenants, Tenant{Name: user, Token: out.Token})
	}
	return tenants, nil
}

// run is one Run's shared state.
type run struct {
	cfg    Config
	client *http.Client

	submitH *metrics.Histogram // seconds
	e2eH    *metrics.Histogram // seconds

	sent, accepted, shed, failed atomic.Int64
	dropped, completed           atomic.Int64

	mu      sync.Mutex
	tenants map[string]*TenantStats
}

// Run drives the gateway at cfg.RPS for cfg.Duration and reports the
// measured latency and shed profile. ctx cancellation stops new arrivals
// and abandons in-flight waits.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadtest: BaseURL required")
	}
	if cfg.RPS <= 0 || cfg.Duration <= 0 {
		return nil, errors.New("loadtest: RPS and Duration must be positive")
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []Tenant{{Name: "anonymous"}}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 256
		client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}

	r := &run{
		cfg:    cfg,
		client: client,
		// 10µs .. 10s covers in-process submits through heavily-backlogged
		// end-to-end waits at ~8% relative bucket error.
		submitH: metrics.NewHistogram(10e-6, 10, 30),
		e2eH:    metrics.NewHistogram(10e-6, 10, 30),
		tenants: make(map[string]*TenantStats),
	}
	for _, t := range cfg.Tenants {
		r.tenants[t.Name] = &TenantStats{}
	}

	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.RPS)
arrivals:
	for i := 0; ; i++ {
		target := start.Add(time.Duration(i) * interval)
		if target.Sub(start) >= cfg.Duration {
			break
		}
		if d := time.Until(target); d > 0 {
			select {
			case <-ctx.Done():
				break arrivals
			case <-time.After(d):
			}
		} else if ctx.Err() != nil {
			break
		}
		tenant := cfg.Tenants[i%len(cfg.Tenants)]
		select {
		case sem <- struct{}{}:
		default:
			// Open-loop discipline: never block the arrival clock. The drop
			// is reported, so a saturating run shows up as drops + shed, not
			// as a silently lowered offered rate.
			r.dropped.Add(1)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r.one(ctx, tenant)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Sent:      r.sent.Load(),
		Accepted:  r.accepted.Load(),
		Shed:      r.shed.Load(),
		Failed:    r.failed.Load(),
		Dropped:   r.dropped.Load(),
		Completed: r.completed.Load(),
		Duration:  elapsed,
		SubmitP50: secs(r.submitH.Quantile(0.50)),
		SubmitP95: secs(r.submitH.Quantile(0.95)),
		SubmitP99: secs(r.submitH.Quantile(0.99)),
		SubmitMax: secs(r.submitH.Max()),
		E2EP50:    secs(r.e2eH.Quantile(0.50)),
		E2EP95:    secs(r.e2eH.Quantile(0.95)),
		E2EP99:    secs(r.e2eH.Quantile(0.99)),
		E2EMax:    secs(r.e2eH.Max()),
		Tenants:   r.tenants,
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.AcceptedRPS = float64(rep.Accepted) / s
	}
	return rep, nil
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// one submits a single arrival and (optionally) waits it to terminal.
func (r *run) one(ctx context.Context, tenant Tenant) {
	r.sent.Add(1)
	ts := r.stats(tenant.Name)
	atomic.AddInt64(&ts.Sent, 1)

	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.cfg.BaseURL+"/v1/jobs", bytes.NewReader(r.cfg.Body))
	if err != nil {
		r.failed.Add(1)
		atomic.AddInt64(&ts.Failed, 1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant.Token != "" {
		req.Header.Set("Authorization", "Bearer "+tenant.Token)
	}
	resp, err := r.client.Do(req)
	submitLat := time.Since(t0)
	if err != nil {
		r.failed.Add(1)
		atomic.AddInt64(&ts.Failed, 1)
		return
	}
	var sub api.SubmitResponse
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sub)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	r.submitH.Observe(submitLat.Seconds())

	switch {
	case resp.StatusCode == http.StatusAccepted && decErr == nil && sub.ID != "":
		r.accepted.Add(1)
		atomic.AddInt64(&ts.Accepted, 1)
	case resp.StatusCode == http.StatusTooManyRequests:
		r.shed.Add(1)
		atomic.AddInt64(&ts.Shed, 1)
		return
	default:
		r.failed.Add(1)
		atomic.AddInt64(&ts.Failed, 1)
		return
	}
	if !r.cfg.WaitTerminal {
		return
	}
	if r.waitTerminal(ctx, tenant, sub.ID) {
		r.completed.Add(1)
		r.e2eH.Observe(time.Since(t0).Seconds())
	}
}

// waitTerminal polls the job until a terminal state or ctx death.
func (r *run) waitTerminal(ctx context.Context, tenant Tenant, id string) bool {
	url := r.cfg.BaseURL + "/v1/jobs/" + id
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return false
		}
		if tenant.Token != "" {
			req.Header.Set("Authorization", "Bearer "+tenant.Token)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			return false
		}
		var st api.JobStatus
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			return false
		}
		if st.State.Terminal() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(r.cfg.PollInterval):
		}
	}
}

func (r *run) stats(name string) *TenantStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.tenants[name]
	if ts == nil {
		ts = &TenantStats{}
		r.tenants[name] = ts
	}
	return ts
}

// String renders the report as a one-screen human summary.
func (rep *Report) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sent %d  accepted %d (%.1f/s)  shed %d  failed %d  dropped %d  in %v\n",
		rep.Sent, rep.Accepted, rep.AcceptedRPS, rep.Shed, rep.Failed, rep.Dropped,
		rep.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "submit latency  p50 %v  p95 %v  p99 %v  max %v\n",
		rep.SubmitP50.Round(time.Microsecond), rep.SubmitP95.Round(time.Microsecond),
		rep.SubmitP99.Round(time.Microsecond), rep.SubmitMax.Round(time.Microsecond))
	if rep.Completed > 0 {
		fmt.Fprintf(&b, "e2e latency     p50 %v  p95 %v  p99 %v  max %v  (%d completed)\n",
			rep.E2EP50.Round(time.Microsecond), rep.E2EP95.Round(time.Microsecond),
			rep.E2EP99.Round(time.Microsecond), rep.E2EMax.Round(time.Microsecond), rep.Completed)
	}
	return b.String()
}
