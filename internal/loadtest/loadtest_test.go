package loadtest_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/loadtest"
	"chaseci/internal/queue"
	"chaseci/internal/service"
)

// tinyWorkflowBody is the cheapest valid job the full registry accepts: a
// one-step workflow with 1ms of virtual duration.
func tinyWorkflowBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(&api.JobRequest{
		Kind: api.KindWorkflow,
		Name: "loadtest-smoke",
		Workflow: &api.WorkflowSpec{
			Name:  "smoke",
			Steps: []api.WorkflowStep{{Name: "s", DurationMS: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newGateway(t *testing.T, opts service.GatewayOptions) (*service.Runner, *httptest.Server) {
	t.Helper()
	runner := service.NewRunner(service.DefaultRegistry(), queue.NewStore(), 4)
	t.Cleanup(runner.Close)
	if opts.Providers == nil {
		opts.Providers = map[string]string{"ucsd.edu": "UCSD", "sdsc.edu": "SDSC"}
	}
	if opts.PollInterval == 0 {
		opts.PollInterval = 2 * time.Millisecond
	}
	opts.TokenTTL = time.Hour
	srv := httptest.NewServer(service.NewGateway(runner, opts))
	t.Cleanup(srv.Close)
	return runner, srv
}

// TestSustainedSmoke is the CI smoke: a short open-loop run against a real
// in-process gateway must complete every accepted job and produce sane
// latency quantiles for the serve_sustained_* series.
func TestSustainedSmoke(t *testing.T) {
	_, srv := newGateway(t, service.GatewayOptions{})

	tenants, err := loadtest.Login(srv.URL, nil, "a@ucsd.edu", "b@sdsc.edu")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadtest.Run(context.Background(), loadtest.Config{
		BaseURL:      srv.URL,
		RPS:          200,
		Duration:     500 * time.Millisecond,
		Tenants:      tenants,
		Body:         tinyWorkflowBody(t),
		WaitTerminal: true,
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)

	if rep.Sent < 50 {
		t.Fatalf("Sent = %d, want a real arrival stream (>= 50)", rep.Sent)
	}
	if rep.Failed != 0 {
		t.Fatalf("Failed = %d, want 0 (report: %s)", rep.Failed, rep)
	}
	if rep.Accepted == 0 || rep.Completed != rep.Accepted {
		t.Fatalf("Accepted = %d, Completed = %d: every accepted job must finish", rep.Accepted, rep.Completed)
	}
	if rep.AcceptedRPS <= 0 {
		t.Fatalf("AcceptedRPS = %v", rep.AcceptedRPS)
	}
	if rep.SubmitP50 <= 0 || rep.SubmitP99 < rep.SubmitP50 {
		t.Fatalf("submit quantiles p50=%v p99=%v", rep.SubmitP50, rep.SubmitP99)
	}
	if rep.E2EP50 <= 0 || rep.E2EMax < rep.E2EP50 {
		t.Fatalf("e2e quantiles p50=%v max=%v", rep.E2EP50, rep.E2EMax)
	}
	for _, name := range []string{"a@ucsd.edu", "b@sdsc.edu"} {
		ts := rep.Tenants[name]
		if ts == nil || ts.Sent == 0 {
			t.Fatalf("tenant %s missing from the round-robin (%+v)", name, ts)
		}
	}
}

// TestShedVisibleInReport drives an arrival rate far past a tight gateway
// rate limit: the 429s must land in Shed (per tenant too), never Failed.
func TestShedVisibleInReport(t *testing.T) {
	_, srv := newGateway(t, service.GatewayOptions{
		AllowAnonymous: true,
		RateLimit:      20,
		RateBurst:      5,
	})
	rep, err := loadtest.Run(context.Background(), loadtest.Config{
		BaseURL:  srv.URL,
		RPS:      300,
		Duration: 300 * time.Millisecond,
		Body:     tinyWorkflowBody(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("Failed = %d, want 0 (report: %s)", rep.Failed, rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("Shed = 0 at 300 RPS against a 20/s limit (report: %s)", rep)
	}
	if ts := rep.Tenants["anonymous"]; ts == nil || ts.Shed == 0 {
		t.Fatalf("per-tenant shed not recorded: %+v", ts)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := loadtest.Run(context.Background(), loadtest.Config{RPS: 1, Duration: time.Second}); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
	if _, err := loadtest.Run(context.Background(), loadtest.Config{BaseURL: "http://x", Duration: time.Second}); err == nil {
		t.Fatal("zero RPS accepted")
	}
	if _, err := loadtest.Run(context.Background(), loadtest.Config{BaseURL: "http://x", RPS: 1}); err == nil {
		t.Fatal("zero Duration accepted")
	}
}
