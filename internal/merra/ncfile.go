package merra

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// NC4-lite: a minimal self-describing binary container standing in for
// NetCDF4. Layout (all integers little-endian):
//
//	magic   [8]byte  "NC4LITE\x00"
//	time    int64    file timestamp, unix seconds
//	nvars   uint32
//	per variable:
//	  nameLen uint16, name bytes
//	  ndims   uint16, dims []uint32
//	  payload float32 x prod(dims)
//
// The format supports ExtractVariable: reading a single variable from the
// encoded bytes without materializing the others. That capability is exactly
// what the paper exploits through the THREDDS subset tool to shrink the
// transfer from 455 GB to 246 GB.

var ncMagic = [8]byte{'N', 'C', '4', 'L', 'I', 'T', 'E', 0}

// Errors from NC4-lite decoding.
var (
	ErrBadMagic = errors.New("merra: not an NC4-lite file")
	ErrNoVar    = errors.New("merra: variable not found")
)

// Variable is one named array in a file.
type Variable struct {
	Name string
	Dims []int
	Data []float32
}

// Size returns the element count implied by Dims.
func (v *Variable) Size() int {
	n := 1
	for _, d := range v.Dims {
		n *= d
	}
	return n
}

// File is an NC4-lite dataset.
type File struct {
	Time int64
	Vars []Variable
}

// AddVariable appends a variable; it returns an error if data length does
// not match dims.
func (f *File) AddVariable(name string, dims []int, data []float32) error {
	v := Variable{Name: name, Dims: dims, Data: data}
	if v.Size() != len(data) {
		return fmt.Errorf("merra: variable %s dims %v imply %d elements, got %d",
			name, dims, v.Size(), len(data))
	}
	f.Vars = append(f.Vars, v)
	return nil
}

// Var returns the named variable, or nil.
func (f *File) Var(name string) *Variable {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i]
		}
	}
	return nil
}

// Encode serializes the file.
func (f *File) Encode(w io.Writer) error {
	if _, err := w.Write(ncMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, f.Time); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(f.Vars))); err != nil {
		return err
	}
	for _, v := range f.Vars {
		if len(v.Name) > math.MaxUint16 {
			return fmt.Errorf("merra: variable name too long (%d bytes)", len(v.Name))
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(v.Name))); err != nil {
			return err
		}
		if _, err := w.Write([]byte(v.Name)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(v.Dims))); err != nil {
			return err
		}
		for _, d := range v.Dims {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, v.Data); err != nil {
			return err
		}
	}
	return nil
}

// EncodeBytes returns the serialized file.
func (f *File) EncodeBytes() []byte {
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		// bytes.Buffer writes cannot fail; any error is a format bug.
		panic(err)
	}
	return buf.Bytes()
}

// Decode parses an entire NC4-lite stream.
func Decode(r io.Reader) (*File, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != ncMagic {
		return nil, ErrBadMagic
	}
	f := &File{}
	if err := binary.Read(r, binary.LittleEndian, &f.Time); err != nil {
		return nil, err
	}
	var nvars uint32
	if err := binary.Read(r, binary.LittleEndian, &nvars); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nvars; i++ {
		v, err := decodeVar(r, false)
		if err != nil {
			return nil, err
		}
		f.Vars = append(f.Vars, *v)
	}
	return f, nil
}

// DecodeBytes parses a serialized file from memory.
func DecodeBytes(data []byte) (*File, error) { return Decode(bytes.NewReader(data)) }

func decodeVar(r io.Reader, skipData bool) (*Variable, error) {
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	var ndims uint16
	if err := binary.Read(r, binary.LittleEndian, &ndims); err != nil {
		return nil, err
	}
	v := &Variable{Name: string(name), Dims: make([]int, ndims)}
	for d := 0; d < int(ndims); d++ {
		var dim uint32
		if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
			return nil, err
		}
		v.Dims[d] = int(dim)
	}
	n := v.Size()
	if skipData {
		if s, ok := r.(io.Seeker); ok {
			if _, err := s.Seek(int64(n)*4, io.SeekCurrent); err != nil {
				return nil, err
			}
			return v, nil
		}
		if _, err := io.CopyN(io.Discard, r, int64(n)*4); err != nil {
			return nil, err
		}
		return v, nil
	}
	v.Data = make([]float32, n)
	if err := binary.Read(r, binary.LittleEndian, v.Data); err != nil {
		return nil, err
	}
	return v, nil
}

// ExtractVariable reads a single named variable from encoded bytes, skipping
// (not allocating) every other variable's payload — the subset operation.
func ExtractVariable(data []byte, name string) (*Variable, error) {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != ncMagic {
		return nil, ErrBadMagic
	}
	var t int64
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return nil, err
	}
	var nvars uint32
	if err := binary.Read(r, binary.LittleEndian, &nvars); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nvars; i++ {
		// Peek the header to decide whether to read or skip the payload.
		v, err := decodeVar(r, true)
		if err != nil {
			return nil, err
		}
		if v.Name != name {
			continue
		}
		// Rewind over the payload we skipped and read it for real.
		if _, err := r.Seek(-int64(v.Size())*4, io.SeekCurrent); err != nil {
			return nil, err
		}
		v.Data = make([]float32, v.Size())
		if err := binary.Read(r, binary.LittleEndian, v.Data); err != nil {
			return nil, err
		}
		return v, nil
	}
	return nil, ErrNoVar
}

// ListVariables returns the variable headers (no payload) in file order.
func ListVariables(data []byte) ([]Variable, error) {
	r := bytes.NewReader(data)
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != ncMagic {
		return nil, ErrBadMagic
	}
	var t int64
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return nil, err
	}
	var nvars uint32
	if err := binary.Read(r, binary.LittleEndian, &nvars); err != nil {
		return nil, err
	}
	out := make([]Variable, 0, nvars)
	for i := uint32(0); i < nvars; i++ {
		v, err := decodeVar(r, true)
		if err != nil {
			return nil, err
		}
		out = append(out, *v)
	}
	return out, nil
}

// StateFile packages a synthetic state (plus its derived IVT) as an NC4-lite
// file with variables QV, U, V, IVT — the shape a real M2I3NPASM granule has
// for this workflow's purposes.
func StateFile(st *State, levels []float64, timestamp int64) *File {
	g := st.Q.Grid
	f := &File{Time: timestamp}
	dims3 := []int{g.NLev, g.NLat, g.NLon}
	// Errors are impossible here: dims are derived from the slices.
	f.AddVariable("QV", dims3, st.Q.Data)
	f.AddVariable("U", dims3, st.U.Data)
	f.AddVariable("V", dims3, st.V.Data)
	ivt := IVT(st, levels)
	f.AddVariable("IVT", []int{g.NLat, g.NLon}, ivt.Data)
	return f
}
