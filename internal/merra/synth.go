package merra

import (
	"math"

	"chaseci/internal/sim"
)

// Generator produces a deterministic synthetic atmosphere: a moist
// background whose humidity decays with altitude, plus a set of intense
// moisture filaments ("atmospheric rivers") that translate across the grid
// between time steps, embedded in a zonal jet. The construction targets the
// property the CONNECT case study needs: thresholding the derived IVT field
// yields spatially coherent objects that persist and move through time, so
// both the CONNECT baseline and the FFN have meaningful structures to track.
type Generator struct {
	Grid Grid
	Seed uint64
	// Filaments is the number of concurrent AR-like structures (default 4).
	Filaments int

	tracks []arTrack
}

type arTrack struct {
	x0, y0   float64 // position at step 0, grid units
	vx, vy   float64 // drift per step
	length   float64 // filament half-length
	width    float64 // filament half-width
	angle    float64 // orientation
	strength float64 // humidity boost
	birth    int     // first step alive
	life     int     // steps alive
}

// NewGenerator builds a generator for the grid with the given seed.
func NewGenerator(g Grid, seed uint64) *Generator {
	gen := &Generator{Grid: g, Seed: seed, Filaments: 4}
	gen.initTracks()
	return gen
}

func (g *Generator) initTracks() {
	rng := sim.NewRNG(g.Seed)
	// Enough overlapping tracks for ~200 steps of evolution; tracks recycle
	// cyclically so any step index is covered.
	const poolPerFilament = 8
	n := g.Filaments * poolPerFilament
	g.tracks = make([]arTrack, n)
	for i := range g.tracks {
		life := 20 + rng.Intn(30)
		g.tracks[i] = arTrack{
			x0:       rng.Float64() * float64(g.Grid.NLon),
			y0:       (0.2 + 0.6*rng.Float64()) * float64(g.Grid.NLat),
			vx:       0.5 + rng.Float64()*1.5, // eastward drift dominates
			vy:       (rng.Float64() - 0.5) * 0.8,
			length:   float64(g.Grid.NLon) * (0.10 + 0.15*rng.Float64()),
			width:    float64(g.Grid.NLat) * (0.02 + 0.04*rng.Float64()),
			angle:    (rng.Float64() - 0.5) * math.Pi / 3,
			strength: 0.012 + 0.01*rng.Float64(),
			birth:    (i / g.Filaments) * 25,
			life:     life,
		}
	}
}

// trackCycle is the step period after which the track pool repeats.
const trackCycle = 200

// State holds one time step's prognostic variables on the generator grid.
type State struct {
	Step int
	Q    *Field3D // specific humidity, kg/kg
	U    *Field3D // eastward wind, m/s
	V    *Field3D // northward wind, m/s
}

// State synthesizes the atmosphere at a time step. The same (grid, seed,
// step) always yields identical bytes.
func (g *Generator) State(step int) *State {
	gr := g.Grid
	st := &State{Step: step, Q: NewField3D(gr), U: NewField3D(gr), V: NewField3D(gr)}
	rng := sim.NewRNG(g.Seed ^ (uint64(step) * 0x9e3779b97f4a7c15))

	cyc := step % trackCycle

	// Per-level vertical profiles: humidity concentrated near the surface
	// (level 0), jet peaking mid-troposphere.
	for k := 0; k < gr.NLev; k++ {
		frac := float64(k) / float64(gr.NLev)
		qProfile := float32(0.01 * math.Exp(-3*frac))
		jet := float32(10 + 25*math.Exp(-math.Pow((frac-0.35)/0.25, 2)))
		for j := 0; j < gr.NLat; j++ {
			// Meridional humidity gradient: moist tropics, dry poles.
			latFrac := float64(j)/float64(gr.NLat-1)*2 - 1 // -1..1
			qLat := float32(math.Exp(-math.Pow(latFrac/0.6, 2)))
			for i := 0; i < gr.NLon; i++ {
				idx := st.Q.Index(i, j, k)
				st.Q.Data[idx] = qProfile * qLat
				st.U.Data[idx] = jet * float32(1-0.5*math.Abs(latFrac))
				st.V.Data[idx] = 0
			}
		}
	}

	// Superpose moving filaments.
	for _, tr := range g.tracks {
		age := cyc - tr.birth
		if age < 0 || age >= tr.life {
			continue
		}
		cx := math.Mod(tr.x0+tr.vx*float64(cyc), float64(gr.NLon))
		cy := tr.y0 + tr.vy*float64(cyc)
		// Intensity ramps up then down over the track's life.
		lifeFrac := float64(age) / float64(tr.life)
		amp := tr.strength * math.Sin(lifeFrac*math.Pi)
		sinA, cosA := math.Sin(tr.angle), math.Cos(tr.angle)
		// Paint a rotated anisotropic Gaussian, wrapping in longitude.
		reach := tr.length * 2.5
		for j := 0; j < gr.NLat; j++ {
			dy := float64(j) - cy
			if math.Abs(dy) > reach {
				continue
			}
			for i := 0; i < gr.NLon; i++ {
				dx := wrapDelta(float64(i)-cx, float64(gr.NLon))
				if math.Abs(dx) > reach {
					continue
				}
				// Rotate into filament frame.
				a := dx*cosA + dy*sinA
				b := -dx*sinA + dy*cosA
				w := amp * math.Exp(-(a*a)/(2*tr.length*tr.length)-(b*b)/(2*tr.width*tr.width))
				if w < amp*1e-3 {
					continue
				}
				for k := 0; k < gr.NLev/2; k++ { // moisture lives low
					frac := float64(k) / float64(gr.NLev)
					idx := st.Q.Index(i, j, k)
					st.Q.Data[idx] += float32(w * math.Exp(-4*frac))
					// Winds strengthen along the filament axis.
					st.U.Data[idx] += float32(w * 2500 * cosA)
					st.V.Data[idx] += float32(w * 2500 * sinA)
				}
			}
		}
	}

	// Small-scale noise so fields are not perfectly smooth.
	for idx := range st.Q.Data {
		st.Q.Data[idx] *= float32(1 + 0.05*(rng.Float64()-0.5))
	}
	return st
}

// wrapDelta returns dx wrapped into [-period/2, period/2).
func wrapDelta(dx, period float64) float64 {
	dx = math.Mod(dx, period)
	if dx >= period/2 {
		dx -= period
	}
	if dx < -period/2 {
		dx += period
	}
	return dx
}
