//go:build !race

package merra

// raceEnabled mirrors race_on_test.go for non-race builds.
const raceEnabled = false
