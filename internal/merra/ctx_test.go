package merra

import (
	"context"
	"errors"
	"testing"
)

// TestIVTCtxMatchesIVT pins the wrapper equivalence bit-exactly.
func TestIVTCtxMatchesIVT(t *testing.T) {
	g := Grid{NLon: 24, NLat: 18, NLev: 5}
	gen := NewGenerator(g, 9)
	levels := PressureLevels(g.NLev)
	st := gen.State(3)
	want := IVT(st, levels)
	got, err := IVTCtx(context.Background(), st, levels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("IVT value %d diverges: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestIVTCtxPreCancelled(t *testing.T) {
	g := Grid{NLon: 16, NLat: 12, NLev: 4}
	gen := NewGenerator(g, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := IVTCtx(ctx, gen.State(0), PressureLevels(g.NLev))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled IVT must not return a field")
	}
}

// TestIVTVolumeCtxCancelMidVolume cancels from the per-step progress
// callback and expects a prompt stop.
func TestIVTVolumeCtxCancelMidVolume(t *testing.T) {
	g := Grid{NLon: 16, NLat: 12, NLev: 4}
	gen := NewGenerator(g, 9)
	levels := PressureLevels(g.NLev)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	maxDone := 0
	vol, err := IVTVolumeCtx(ctx, gen, levels, 0, 8, func(done, total int) {
		maxDone = done
		if done == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if vol != nil {
		t.Fatal("cancelled volume derivation must not return a volume")
	}
	if maxDone != 3 {
		t.Fatalf("stopped after %d steps, want 3", maxDone)
	}
}

// TestIVTVolumeCtxMatchesIVTVolume pins the wrapper equivalence.
func TestIVTVolumeCtxMatchesIVTVolume(t *testing.T) {
	g := Grid{NLon: 16, NLat: 12, NLev: 4}
	gen := NewGenerator(g, 9)
	levels := PressureLevels(g.NLev)
	want := IVTVolume(gen, levels, 2, 4)
	got, err := IVTVolumeCtx(context.Background(), gen, levels, 2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("volume value %d diverges", i)
		}
	}
}
