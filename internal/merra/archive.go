package merra

import (
	"fmt"
	"time"
)

// ArchiveSpec models the M2I3NPASM holdings the case study downloads: a
// 3-hourly sequence of granules between Start and End inclusive, with the
// paper's aggregate sizes. File *sizes* are modeled (the simulation moves
// sized objects over the WAN); file *contents* at experiment scale come from
// Generator.
type ArchiveSpec struct {
	Start     time.Time
	End       time.Time
	StepHours int
	// FullFileBytes is the average size of a whole granule (all variables).
	FullFileBytes float64
	// SubsetFileBytes is the size of the IVT-only subset of a granule.
	SubsetFileBytes float64
}

// MERRA2 returns the paper's archive: 3-hourly from 1980-01-01 through
// 2018-05-31 (112,249 granules), 455 GB full, 246 GB subset. The paper's
// count of 112,249 works out to the instantaneous 00:00 UTC granule of
// June 1 being included as the archive's closing bound.
func MERRA2() ArchiveSpec {
	const files = 112249
	return ArchiveSpec{
		Start:           time.Date(1980, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC),
		StepHours:       3,
		FullFileBytes:   455e9 / files,
		SubsetFileBytes: 246e9 / files,
	}
}

// NumFiles returns the number of granules in the archive.
func (a ArchiveSpec) NumFiles() int {
	if a.End.Before(a.Start) || a.StepHours <= 0 {
		return 0
	}
	step := time.Duration(a.StepHours) * time.Hour
	return int(a.End.Sub(a.Start)/step) + 1
}

// FileTime returns the timestamp of granule i.
func (a ArchiveSpec) FileTime(i int) time.Time {
	return a.Start.Add(time.Duration(i) * time.Duration(a.StepHours) * time.Hour)
}

// FileName returns the MERRA-2-style granule name for index i, e.g.
// "MERRA2_100.inst3_3d_asm_Np.19800101_0000.nc4".
func (a ArchiveSpec) FileName(i int) string {
	t := a.FileTime(i)
	// MERRA-2 production streams: 100 (80s), 200 (90s), 300 (00s), 400 (10s+).
	stream := 100
	switch {
	case t.Year() >= 2011:
		stream = 400
	case t.Year() >= 2001:
		stream = 300
	case t.Year() >= 1992:
		stream = 200
	}
	return fmt.Sprintf("MERRA2_%d.inst3_3d_asm_Np.%04d%02d%02d_%02d%02d.nc4",
		stream, t.Year(), int(t.Month()), t.Day(), t.Hour(), t.Minute())
}

// TotalBytes returns the archive size; subset selects IVT-only granules.
func (a ArchiveSpec) TotalBytes(subset bool) float64 {
	per := a.FullFileBytes
	if subset {
		per = a.SubsetFileBytes
	}
	return per * float64(a.NumFiles())
}

// Slice returns a copy of the spec covering only the first n granules,
// used to run the workflow at reduced scale with identical shape.
func (a ArchiveSpec) Slice(n int) ArchiveSpec {
	if n <= 0 {
		n = 1
	}
	if n > a.NumFiles() {
		n = a.NumFiles()
	}
	out := a
	out.End = a.FileTime(n - 1)
	return out
}
