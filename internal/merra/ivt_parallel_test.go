package merra

import (
	"fmt"
	"math"
	"testing"

	"chaseci/internal/parallel"
)

// ivtScalarReference is the original per-point trapezoidal integration,
// kept as the ground truth for the latitude-sharded kernel.
func ivtScalarReference(st *State, levels []float64) *Field2D {
	g := st.Q.Grid
	out := NewField2D(g.NLon, g.NLat)
	for j := 0; j < g.NLat; j++ {
		for i := 0; i < g.NLon; i++ {
			var fx, fy float64
			for k := 0; k < g.NLev-1; k++ {
				dp := levels[k] - levels[k+1]
				quA := float64(st.Q.At(i, j, k)) * float64(st.U.At(i, j, k))
				quB := float64(st.Q.At(i, j, k+1)) * float64(st.U.At(i, j, k+1))
				qvA := float64(st.Q.At(i, j, k)) * float64(st.V.At(i, j, k))
				qvB := float64(st.Q.At(i, j, k+1)) * float64(st.V.At(i, j, k+1))
				fx += 0.5 * (quA + quB) * dp
				fy += 0.5 * (qvA + qvB) * dp
			}
			fx /= gravity
			fy /= gravity
			out.Set(i, j, float32(math.Sqrt(fx*fx+fy*fy)))
		}
	}
	return out
}

// TestIVTAllocBound pins the integration's allocation budget: beyond the
// output Field2D (struct + data = 2 allocations), the pooled dispatch task
// and row buffers must make steady-state IVT derivation allocation-free at
// every worker count.
func TestIVTAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc pins run in the non-race job")
	}
	g := Grid{NLon: 96, NLat: 64, NLev: 16}
	gen := NewGenerator(g, 3)
	st := gen.State(0)
	levels := PressureLevels(g.NLev)
	dst := NewField2D(g.NLon, g.NLat)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			IVT(st, levels) // warm task + row pools
			allocs := testing.AllocsPerRun(20, func() {
				IVT(st, levels)
			})
			if allocs > 2 {
				t.Fatalf("IVT steady-state allocs/op = %v, want <= 2 (output Field2D only)", allocs)
			}
			allocs = testing.AllocsPerRun(20, func() {
				IVTInto(dst, st, levels)
			})
			if allocs != 0 {
				t.Fatalf("IVTInto steady-state allocs/op = %v, want 0", allocs)
			}
		})
	}
}

// TestIVTIntoMatchesIVT: the into-variant writes the same field IVT
// returns, fully overwriting stale destination contents.
func TestIVTIntoMatchesIVT(t *testing.T) {
	g := Grid{NLon: 24, NLat: 17, NLev: 8}
	gen := NewGenerator(g, 9)
	st := gen.State(3)
	levels := PressureLevels(g.NLev)
	want := IVT(st, levels)
	dst := NewField2D(g.NLon, g.NLat)
	for i := range dst.Data {
		dst.Data[i] = -1 // stale garbage IVTInto must overwrite
	}
	IVTInto(dst, st, levels)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("element %d: got %v, want %v", i, dst.Data[i], want.Data[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("grid-mismatched destination did not panic")
		}
	}()
	IVTInto(NewField2D(g.NLon+1, g.NLat), st, levels)
}

// TestIVTParallelMatchesScalar requires the sharded row-walking kernel to be
// bit-exact with the original per-point integration at every worker count:
// each output element is computed by exactly one worker with an identical
// operation sequence.
func TestIVTParallelMatchesScalar(t *testing.T) {
	for _, g := range []Grid{{NLon: 7, NLat: 5, NLev: 3}, {NLon: 24, NLat: 17, NLev: 8}, {NLon: 33, NLat: 32, NLev: 5}} {
		gen := NewGenerator(g, 9)
		st := gen.State(3)
		levels := PressureLevels(g.NLev)
		want := ivtScalarReference(st, levels)
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%v/workers=%d", g, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				got := IVT(st, levels)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("element %d: got %v, want %v (not bit-exact)", i, got.Data[i], want.Data[i])
					}
				}
			})
		}
	}
}
