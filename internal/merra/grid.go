// Package merra is the data substrate of the CONNECT case study: a
// deterministic synthetic stand-in for NASA's MERRA-2 reanalysis
// (M2I3NPASM). It provides (1) the archive catalog model with the paper's
// exact file counts and sizes (112,249 3-hourly NetCDF files, 455 GB full /
// 246 GB IVT-variable subset), (2) a generator producing physically
// plausible specific-humidity and wind fields with moving "atmospheric
// river" filaments, (3) the Integrated Water Vapor Transport (IVT)
// computation the case study segments, and (4) an "NC4-lite" binary
// container with variable-level subsetting, standing in for NetCDF4 +
// THREDDS subsetting.
package merra

import "fmt"

// Grid describes the discretization: NLon x NLat horizontal points and NLev
// pressure levels. MERRA-2's full grid is 576 x 361 x 42.
type Grid struct {
	NLon, NLat, NLev int
}

// FullGrid returns the paper's MERRA-2 resolution (0.625 x 0.5 degrees,
// 42 levels).
func FullGrid() Grid { return Grid{NLon: 576, NLat: 361, NLev: 42} }

// HorizontalSize returns NLon*NLat.
func (g Grid) HorizontalSize() int { return g.NLon * g.NLat }

// Size returns NLon*NLat*NLev.
func (g Grid) Size() int { return g.NLon * g.NLat * g.NLev }

// Valid reports whether all dimensions are positive.
func (g Grid) Valid() bool { return g.NLon > 0 && g.NLat > 0 && g.NLev > 0 }

func (g Grid) String() string { return fmt.Sprintf("%dx%dx%d", g.NLon, g.NLat, g.NLev) }

// Field2D is a horizontal scalar field, row-major by latitude.
type Field2D struct {
	NLon, NLat int
	Data       []float32
}

// NewField2D allocates a zero field.
func NewField2D(nlon, nlat int) *Field2D {
	return &Field2D{NLon: nlon, NLat: nlat, Data: make([]float32, nlon*nlat)}
}

// At returns the value at (lon i, lat j).
func (f *Field2D) At(i, j int) float32 { return f.Data[j*f.NLon+i] }

// Set stores the value at (lon i, lat j).
func (f *Field2D) Set(i, j int, v float32) { f.Data[j*f.NLon+i] = v }

// Max returns the maximum value, or 0 for an empty field.
func (f *Field2D) Max() float32 {
	var m float32
	for idx, v := range f.Data {
		if idx == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean.
func (f *Field2D) Mean() float64 {
	if len(f.Data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range f.Data {
		sum += float64(v)
	}
	return sum / float64(len(f.Data))
}

// Quantile returns the q-th (0..1) quantile by sampling sort.
func (f *Field2D) Quantile(q float64) float32 {
	if len(f.Data) == 0 {
		return 0
	}
	cp := make([]float32, len(f.Data))
	copy(cp, f.Data)
	quickselectSort(cp)
	idx := int(q * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

func quickselectSort(a []float32) {
	// Simple insertion-based sort is fine for the modest test grids; large
	// grids use a shell sort for reasonable performance without pulling in
	// sort.Float64s conversions.
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for j >= gap && a[j-gap] > v {
				a[j] = a[j-gap]
				j -= gap
			}
			a[j] = v
		}
	}
}

// Field3D is a volumetric scalar field indexed (level k, lat j, lon i).
type Field3D struct {
	Grid Grid
	Data []float32
}

// NewField3D allocates a zero field on g.
func NewField3D(g Grid) *Field3D {
	return &Field3D{Grid: g, Data: make([]float32, g.Size())}
}

// Index returns the flat offset of (i, j, k).
func (f *Field3D) Index(i, j, k int) int {
	return (k*f.Grid.NLat+j)*f.Grid.NLon + i
}

// At returns the value at (lon i, lat j, level k).
func (f *Field3D) At(i, j, k int) float32 { return f.Data[f.Index(i, j, k)] }

// Set stores the value at (lon i, lat j, level k).
func (f *Field3D) Set(i, j, k int, v float32) { f.Data[f.Index(i, j, k)] = v }
