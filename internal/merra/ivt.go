package merra

import "math"

// Integrated Water Vapor Transport: the vertically integrated horizontal
// moisture flux,
//
//	IVT = (1/g) * sqrt( (integral q*u dp)^2 + (integral q*v dp)^2 )
//
// computed with pressure-level weights. This is the variable the case study
// selects from M2I3NPASM via THREDDS subsetting and the quantity whose
// intense filaments ("atmospheric rivers") the CONNECT algorithm and the FFN
// segment.

const gravity = 9.80665 // m/s^2

// PressureLevels returns a plausible MERRA-2-like level set in Pa, surface
// first, for n levels spanning 1000 hPa down to 100 hPa.
func PressureLevels(n int) []float64 {
	levels := make([]float64, n)
	for k := 0; k < n; k++ {
		frac := float64(k) / float64(n-1)
		levels[k] = (1000 - 900*frac) * 100 // Pa
	}
	if n == 1 {
		levels[0] = 100000
	}
	return levels
}

// IVT computes the transport magnitude field from a state, using trapezoidal
// integration over the given pressure levels (surface first, decreasing).
// It panics if the level count disagrees with the state's grid, since that
// is always a wiring bug in experiment setup.
func IVT(st *State, levels []float64) *Field2D {
	g := st.Q.Grid
	if len(levels) != g.NLev {
		panic("merra: IVT level count mismatch")
	}
	out := NewField2D(g.NLon, g.NLat)
	for j := 0; j < g.NLat; j++ {
		for i := 0; i < g.NLon; i++ {
			var fx, fy float64
			for k := 0; k < g.NLev-1; k++ {
				dp := levels[k] - levels[k+1] // positive, Pa
				quA := float64(st.Q.At(i, j, k)) * float64(st.U.At(i, j, k))
				quB := float64(st.Q.At(i, j, k+1)) * float64(st.U.At(i, j, k+1))
				qvA := float64(st.Q.At(i, j, k)) * float64(st.V.At(i, j, k))
				qvB := float64(st.Q.At(i, j, k+1)) * float64(st.V.At(i, j, k+1))
				fx += 0.5 * (quA + quB) * dp
				fy += 0.5 * (qvA + qvB) * dp
			}
			fx /= gravity
			fy /= gravity
			out.Set(i, j, float32(math.Sqrt(fx*fx+fy*fy)))
		}
	}
	return out
}

// LabelMask thresholds an IVT field into the binary representation used for
// FFN training ("a binary representation of locations on earth where intense
// large-scale moisture transport (IVT) processes exist"). Values >= threshold
// become 1.
func LabelMask(ivt *Field2D, threshold float32) *Field2D {
	out := NewField2D(ivt.NLon, ivt.NLat)
	for idx, v := range ivt.Data {
		if v >= threshold {
			out.Data[idx] = 1
		}
	}
	return out
}

// IVTVolume stacks per-step IVT fields into a (time, lat, lon) volume — the
// 576x361x240 training volume of the paper's step 2 at whatever scale the
// grid dictates. The returned Field3D uses NLev as the time axis.
func IVTVolume(gen *Generator, levels []float64, startStep, steps int) *Field3D {
	g := gen.Grid
	vol := NewField3D(Grid{NLon: g.NLon, NLat: g.NLat, NLev: steps})
	for t := 0; t < steps; t++ {
		f := IVT(gen.State(startStep+t), levels)
		copy(vol.Data[t*g.NLon*g.NLat:(t+1)*g.NLon*g.NLat], f.Data)
	}
	return vol
}

// MaskVolume thresholds an IVT volume into a binary volume, the label data
// for FFN training and the input to the CONNECT baseline.
func MaskVolume(vol *Field3D, threshold float32) *Field3D {
	out := NewField3D(vol.Grid)
	for idx, v := range vol.Data {
		if v >= threshold {
			out.Data[idx] = 1
		}
	}
	return out
}
