package merra

import (
	"context"
	"math"
	"sync"

	"chaseci/internal/parallel"
)

// Integrated Water Vapor Transport: the vertically integrated horizontal
// moisture flux,
//
//	IVT = (1/g) * sqrt( (integral q*u dp)^2 + (integral q*v dp)^2 )
//
// computed with pressure-level weights. This is the variable the case study
// selects from M2I3NPASM via THREDDS subsetting and the quantity whose
// intense filaments ("atmospheric rivers") the CONNECT algorithm and the FFN
// segment.

const gravity = 9.80665 // m/s^2

// PressureLevels returns a plausible MERRA-2-like level set in Pa, surface
// first, for n levels spanning 1000 hPa down to 100 hPa.
func PressureLevels(n int) []float64 {
	levels := make([]float64, n)
	for k := 0; k < n; k++ {
		frac := float64(k) / float64(n-1)
		levels[k] = (1000 - 900*frac) * 100 // Pa
	}
	if n == 1 {
		levels[0] = 100000
	}
	return levels
}

// IVT computes the transport magnitude field from a state, using trapezoidal
// integration over the given pressure levels (surface first, decreasing).
// It panics if the level count disagrees with the state's grid, since that
// is always a wiring bug in experiment setup.
//
// The integration is sharded over latitude rows (each output element is
// computed entirely by one worker, so results are bit-exact at every worker
// count) and walks levels row-wise so each q*u / q*v product is computed
// once instead of twice as both trapezoid endpoints.
func IVT(st *State, levels []float64) *Field2D {
	out, _ := IVTCtx(context.Background(), st, levels)
	return out
}

// ivtRows is one shard's reusable row buffers: the running integrals and
// the previous level's products (the trapezoid's lower endpoints). Rows
// recycle through ivtRowsPool so steady-state IVT derivation allocates
// nothing per shard.
type ivtRows struct {
	fx, fy, quPrev, qvPrev []float64
}

var ivtRowsPool sync.Pool

func getIVTRows(nlon int) *ivtRows {
	if r, _ := ivtRowsPool.Get().(*ivtRows); r != nil && len(r.fx) >= nlon {
		return r
	}
	return &ivtRows{
		fx: make([]float64, nlon), fy: make([]float64, nlon),
		quPrev: make([]float64, nlon), qvPrev: make([]float64, nlon),
	}
}

// ivtTask is the pooled integration Task: one Run processes a chunk of
// latitude rows with its own pooled row buffers, so dispatch allocates
// nothing once warm.
type ivtTask struct {
	ctx        context.Context
	out        []float32
	q, u, v    []float32
	levels     []float64
	nlon, nlev int
	hw         int
}

var ivtTaskPool = sync.Pool{New: func() any { return new(ivtTask) }}

func (t *ivtTask) Run(j0, j1 int) {
	nlon := t.nlon
	r := getIVTRows(nlon)
	fx, fy := r.fx[:nlon], r.fy[:nlon]
	quPrev, qvPrev := r.quPrev[:nlon], r.qvPrev[:nlon]
	q, u, vv := t.q, t.u, t.v
	for j := j0; j < j1; j++ {
		if t.ctx.Err() != nil {
			break
		}
		base := j * nlon
		for i := 0; i < nlon; i++ {
			fx[i], fy[i] = 0, 0
			qf := float64(q[base+i])
			quPrev[i] = qf * float64(u[base+i])
			qvPrev[i] = qf * float64(vv[base+i])
		}
		for k := 1; k < t.nlev; k++ {
			dp := t.levels[k-1] - t.levels[k] // positive, Pa
			lbase := k*t.hw + base
			for i := 0; i < nlon; i++ {
				qf := float64(q[lbase+i])
				qu := qf * float64(u[lbase+i])
				qv := qf * float64(vv[lbase+i])
				fx[i] += 0.5 * (quPrev[i] + qu) * dp
				fy[i] += 0.5 * (qvPrev[i] + qv) * dp
				quPrev[i], qvPrev[i] = qu, qv
			}
		}
		for i := 0; i < nlon; i++ {
			x := fx[i] / gravity
			y := fy[i] / gravity
			t.out[base+i] = float32(math.Sqrt(x*x + y*y))
		}
	}
	ivtRowsPool.Put(r)
}

// IVTCtx is the context-aware IVT: cancellation is checked once per
// latitude row inside the sharded integration, and a cancelled context
// returns (nil, ctx.Err()). With a background context the field is
// bit-exactly IVT's. It panics on a level-count mismatch, like IVT.
// Beyond the output field itself (one Field2D: two allocations), the
// integration allocates nothing in steady state — the dispatch task and
// per-shard row buffers recycle through pools; see IVTInto for the
// fully allocation-free variant.
func IVTCtx(ctx context.Context, st *State, levels []float64) (*Field2D, error) {
	g := st.Q.Grid
	out := NewField2D(g.NLon, g.NLat)
	if err := ivtIntoCtx(ctx, out.Data, st, levels); err != nil {
		return nil, err
	}
	return out, nil
}

// IVTInto computes the transport magnitude field into dst, which must match
// the state's horizontal grid (a mismatch panics — a wiring bug, like a bad
// level count). Steady-state derivation through IVTInto allocates nothing:
// the dispatch task and per-shard row buffers recycle through pools and the
// output lives in the caller's buffer.
func IVTInto(dst *Field2D, st *State, levels []float64) {
	g := st.Q.Grid
	if dst.NLon != g.NLon || dst.NLat != g.NLat {
		panic("merra: IVTInto destination grid mismatch")
	}
	_ = ivtIntoCtx(context.Background(), dst.Data, st, levels)
}

// ivtIntoCtx is the shared integration core: it shards the trapezoidal
// integration over latitude rows into out (length NLon*NLat, fully
// overwritten) and reports ctx's error if the run was cancelled.
func ivtIntoCtx(ctx context.Context, out []float32, st *State, levels []float64) error {
	g := st.Q.Grid
	if len(levels) != g.NLev {
		panic("merra: IVT level count mismatch")
	}
	t := ivtTaskPool.Get().(*ivtTask)
	t.ctx = ctx
	t.out = out
	t.q, t.u, t.v = st.Q.Data, st.U.Data, st.V.Data
	t.levels = levels
	t.nlon, t.nlev, t.hw = g.NLon, g.NLev, g.NLon*g.NLat
	parallel.InvokeGrain(g.NLat, 8, t)
	t.ctx, t.out, t.q, t.u, t.v, t.levels = nil, nil, nil, nil, nil, nil
	ivtTaskPool.Put(t)
	return ctx.Err()
}

// LabelMask thresholds an IVT field into the binary representation used for
// FFN training ("a binary representation of locations on earth where intense
// large-scale moisture transport (IVT) processes exist"). Values >= threshold
// become 1.
func LabelMask(ivt *Field2D, threshold float32) *Field2D {
	out := NewField2D(ivt.NLon, ivt.NLat)
	for idx, v := range ivt.Data {
		if v >= threshold {
			out.Data[idx] = 1
		}
	}
	return out
}

// IVTVolume stacks per-step IVT fields into a (time, lat, lon) volume — the
// 576x361x240 training volume of the paper's step 2 at whatever scale the
// grid dictates. The returned Field3D uses NLev as the time axis.
func IVTVolume(gen *Generator, levels []float64, startStep, steps int) *Field3D {
	vol, _ := IVTVolumeCtx(context.Background(), gen, levels, startStep, steps, nil)
	return vol
}

// IVTVolumeCtx is the context-aware IVTVolume: each time step is
// synthesized and integrated under ctx, and a cancelled context returns
// (nil, ctx.Err()). progress (may be nil) is called with
// (stepsDone, steps) after each completed time step. Each step integrates
// directly into the volume's slab — no per-step field or copy.
func IVTVolumeCtx(ctx context.Context, gen *Generator, levels []float64, startStep, steps int, progress func(done, total int)) (*Field3D, error) {
	g := gen.Grid
	vol := NewField3D(Grid{NLon: g.NLon, NLat: g.NLat, NLev: steps})
	hw := g.NLon * g.NLat
	for t := 0; t < steps; t++ {
		if err := ivtIntoCtx(ctx, vol.Data[t*hw:(t+1)*hw], gen.State(startStep+t), levels); err != nil {
			return nil, err
		}
		if progress != nil {
			progress(t+1, steps)
		}
	}
	return vol, nil
}

// MaskVolume thresholds an IVT volume into a binary volume, the label data
// for FFN training and the input to the CONNECT baseline.
func MaskVolume(vol *Field3D, threshold float32) *Field3D {
	out := NewField3D(vol.Grid)
	for idx, v := range vol.Data {
		if v >= threshold {
			out.Data[idx] = 1
		}
	}
	return out
}
