package merra

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var testGrid = Grid{NLon: 48, NLat: 32, NLev: 8}

func TestFullGridMatchesPaper(t *testing.T) {
	g := FullGrid()
	if g.NLon != 576 || g.NLat != 361 || g.NLev != 42 {
		t.Fatalf("FullGrid = %v, want 576x361x42", g)
	}
}

func TestField2DAccessors(t *testing.T) {
	f := NewField2D(4, 3)
	f.Set(2, 1, 7)
	if f.At(2, 1) != 7 {
		t.Fatalf("At = %v, want 7", f.At(2, 1))
	}
	if f.Data[1*4+2] != 7 {
		t.Fatal("Set wrote to wrong flat index")
	}
}

func TestField3DAccessors(t *testing.T) {
	f := NewField3D(testGrid)
	f.Set(5, 6, 2, 3.5)
	if f.At(5, 6, 2) != 3.5 {
		t.Fatal("3D accessor round-trip failed")
	}
	want := (2*testGrid.NLat+6)*testGrid.NLon + 5
	if f.Index(5, 6, 2) != want {
		t.Fatalf("Index = %d, want %d", f.Index(5, 6, 2), want)
	}
}

func TestQuantileOrdering(t *testing.T) {
	f := NewField2D(10, 10)
	for i := range f.Data {
		f.Data[i] = float32(99 - i)
	}
	if q0, q100 := f.Quantile(0), f.Quantile(1); q0 != 0 || q100 != 99 {
		t.Fatalf("quantiles = %v, %v, want 0, 99", q0, q100)
	}
	med := f.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v, want ~49.5", med)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(testGrid, 42).State(7)
	b := NewGenerator(testGrid, 42).State(7)
	for i := range a.Q.Data {
		if a.Q.Data[i] != b.Q.Data[i] {
			t.Fatal("same seed+step produced different humidity")
		}
	}
	c := NewGenerator(testGrid, 43).State(7)
	diff := false
	for i := range a.Q.Data {
		if a.Q.Data[i] != c.Q.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestGeneratorPhysicalPlausibility(t *testing.T) {
	st := NewGenerator(testGrid, 1).State(10)
	for i, q := range st.Q.Data {
		if q < 0 {
			t.Fatalf("negative humidity at %d: %v", i, q)
		}
		if q > 0.1 {
			t.Fatalf("implausible humidity at %d: %v (kg/kg)", i, q)
		}
	}
	// Humidity must decay with altitude on average.
	low, high := 0.0, 0.0
	hs := testGrid.HorizontalSize()
	for idx := 0; idx < hs; idx++ {
		low += float64(st.Q.Data[idx])
		high += float64(st.Q.Data[(testGrid.NLev-1)*hs+idx])
	}
	if low <= high {
		t.Fatalf("humidity does not decay with altitude: surface=%v top=%v", low, high)
	}
}

func TestIVTNonNegativeAndStructured(t *testing.T) {
	gen := NewGenerator(testGrid, 5)
	levels := PressureLevels(testGrid.NLev)
	f := IVT(gen.State(12), levels)
	for i, v := range f.Data {
		if v < 0 {
			t.Fatalf("negative IVT at %d", i)
		}
	}
	// Filaments must create a heavy tail: max well above mean.
	if max, mean := float64(f.Max()), f.Mean(); max < 2*mean {
		t.Fatalf("IVT lacks intense structures: max=%v mean=%v", max, mean)
	}
}

func TestIVTLevelMismatchPanics(t *testing.T) {
	gen := NewGenerator(testGrid, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("IVT with wrong level count did not panic")
		}
	}()
	IVT(gen.State(0), PressureLevels(testGrid.NLev+1))
}

func TestLabelMaskThreshold(t *testing.T) {
	f := NewField2D(2, 2)
	f.Data = []float32{1, 5, 10, 3}
	m := LabelMask(f, 5)
	want := []float32{0, 1, 1, 0}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("mask = %v, want %v", m.Data, want)
		}
	}
}

func TestObjectsPersistAcrossSteps(t *testing.T) {
	// The synthetic ARs must move slowly enough that consecutive masks
	// overlap — the property CONNECT exploits to link objects in time.
	gen := NewGenerator(testGrid, 9)
	levels := PressureLevels(testGrid.NLev)
	a := IVT(gen.State(30), levels)
	b := IVT(gen.State(31), levels)
	th := a.Quantile(0.92)
	ma, mb := LabelMask(a, th), LabelMask(b, th)
	overlap, onA := 0, 0
	for i := range ma.Data {
		if ma.Data[i] == 1 {
			onA++
			if mb.Data[i] == 1 {
				overlap++
			}
		}
	}
	if onA == 0 {
		t.Fatal("no active pixels at 92nd percentile threshold")
	}
	if float64(overlap)/float64(onA) < 0.3 {
		t.Fatalf("mask overlap between consecutive steps = %d/%d, want >= 30%%", overlap, onA)
	}
}

func TestIVTVolumeStacksSteps(t *testing.T) {
	gen := NewGenerator(testGrid, 2)
	levels := PressureLevels(testGrid.NLev)
	vol := IVTVolume(gen, levels, 5, 4)
	if vol.Grid.NLev != 4 {
		t.Fatalf("volume time axis = %d, want 4", vol.Grid.NLev)
	}
	single := IVT(gen.State(6), levels)
	hs := testGrid.HorizontalSize()
	for i := 0; i < hs; i++ {
		if vol.Data[1*hs+i] != single.Data[i] {
			t.Fatal("volume slice 1 disagrees with direct IVT of step 6")
		}
	}
}

func TestNCFileRoundTrip(t *testing.T) {
	gen := NewGenerator(testGrid, 3)
	levels := PressureLevels(testGrid.NLev)
	f := StateFile(gen.State(0), levels, 315532800)
	data := f.EncodeBytes()
	back, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Time != 315532800 {
		t.Fatalf("time = %d", back.Time)
	}
	if len(back.Vars) != 4 {
		t.Fatalf("vars = %d, want 4", len(back.Vars))
	}
	qv := back.Var("QV")
	if qv == nil {
		t.Fatal("QV missing")
	}
	orig := f.Var("QV")
	for i := range orig.Data {
		if qv.Data[i] != orig.Data[i] {
			t.Fatal("QV payload corrupted in round trip")
		}
	}
}

func TestExtractVariableSubsetting(t *testing.T) {
	gen := NewGenerator(testGrid, 3)
	levels := PressureLevels(testGrid.NLev)
	f := StateFile(gen.State(0), levels, 0)
	data := f.EncodeBytes()

	ivtVar, err := ExtractVariable(data, "IVT")
	if err != nil {
		t.Fatal(err)
	}
	if len(ivtVar.Dims) != 2 || ivtVar.Dims[0] != testGrid.NLat || ivtVar.Dims[1] != testGrid.NLon {
		t.Fatalf("IVT dims = %v", ivtVar.Dims)
	}
	want := f.Var("IVT")
	for i := range want.Data {
		if ivtVar.Data[i] != want.Data[i] {
			t.Fatal("extracted IVT differs from encoded IVT")
		}
	}
	// Subset must be much smaller than the full file: 2D vs 3x3D+2D.
	subsetBytes := len(ivtVar.Data) * 4
	if float64(subsetBytes) > 0.2*float64(len(data)) {
		t.Fatalf("subset is %d of %d bytes; expected large reduction", subsetBytes, len(data))
	}
	if _, err := ExtractVariable(data, "NOPE"); err != ErrNoVar {
		t.Fatalf("missing var err = %v, want ErrNoVar", err)
	}
}

func TestListVariables(t *testing.T) {
	gen := NewGenerator(testGrid, 3)
	f := StateFile(gen.State(0), PressureLevels(testGrid.NLev), 0)
	vars, err := ListVariables(f.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"QV", "U", "V", "IVT"}
	if len(vars) != len(names) {
		t.Fatalf("got %d vars", len(vars))
	}
	for i, want := range names {
		if vars[i].Name != want {
			t.Fatalf("var %d = %s, want %s", i, vars[i].Name, want)
		}
		if vars[i].Data != nil {
			t.Fatal("ListVariables materialized payload")
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := DecodeBytes([]byte("not a real file at all")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	gen := NewGenerator(testGrid, 3)
	f := StateFile(gen.State(0), PressureLevels(testGrid.NLev), 0)
	data := f.EncodeBytes()
	if _, err := DecodeBytes(data[:len(data)/2]); err == nil {
		t.Fatal("truncated decode succeeded")
	}
}

func TestAddVariableDimMismatch(t *testing.T) {
	var f File
	if err := f.AddVariable("x", []int{2, 2}, make([]float32, 3)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestArchiveMatchesPaperNumbers(t *testing.T) {
	a := MERRA2()
	if got := a.NumFiles(); got != 112249 {
		t.Fatalf("NumFiles = %d, want 112249", got)
	}
	if got := a.TotalBytes(false); got < 454e9 || got > 456e9 {
		t.Fatalf("full archive = %v bytes, want ~455 GB", got)
	}
	if got := a.TotalBytes(true); got < 245e9 || got > 247e9 {
		t.Fatalf("subset archive = %v bytes, want ~246 GB", got)
	}
}

func TestArchiveFileNames(t *testing.T) {
	a := MERRA2()
	if got := a.FileName(0); got != "MERRA2_100.inst3_3d_asm_Np.19800101_0000.nc4" {
		t.Fatalf("first granule = %s", got)
	}
	last := a.FileName(a.NumFiles() - 1)
	if want := "MERRA2_400.inst3_3d_asm_Np.20180601_0000.nc4"; last != want {
		t.Fatalf("last granule = %s, want %s", last, want)
	}
}

func TestArchiveFileTimesMonotone(t *testing.T) {
	a := MERRA2()
	if a.FileTime(1).Sub(a.FileTime(0)) != 3*time.Hour {
		t.Fatal("granule spacing != 3h")
	}
}

func TestArchiveSlice(t *testing.T) {
	a := MERRA2().Slice(100)
	if a.NumFiles() != 100 {
		t.Fatalf("sliced NumFiles = %d, want 100", a.NumFiles())
	}
	if a.Slice(0).NumFiles() != 1 {
		t.Fatal("Slice(0) should clamp to 1 granule")
	}
}

func TestPropertyNCRoundTripAnyPayload(t *testing.T) {
	f := func(raw []byte, ts int64) bool {
		// Build a payload from arbitrary bytes (as float32 count).
		n := len(raw) % 64
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(raw[i]) / 3
		}
		var file File
		file.Time = ts
		if err := file.AddVariable("X", []int{n}, data); err != nil {
			return false
		}
		back, err := DecodeBytes(file.EncodeBytes())
		if err != nil {
			return false
		}
		if back.Time != ts {
			return false
		}
		x := back.Var("X")
		if x == nil || len(x.Data) != n {
			return false
		}
		return bytes.Equal(f32bytes(x.Data), f32bytes(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func f32bytes(d []float32) []byte {
	out := make([]byte, 0, len(d)*4)
	for _, v := range d {
		u := math.Float32bits(v)
		out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return out
}
