package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantileAccuracy(t *testing.T) {
	// 1..10000 uniformly: quantiles are known exactly; log buckets at 30
	// per decade bound relative error by the bucket ratio (~8%).
	h := NewHistogram(1, 10000, 30)
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000}, {0.95, 9500}, {0.99, 9900},
	} {
		got := h.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.10 {
			t.Errorf("Quantile(%v) = %v, want ~%v (rel err %.1f%%)", tc.q, got, tc.want, rel*100)
		}
	}
	if h.Max() != 10000 {
		t.Fatalf("Max = %v", h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-5000.5) > 1 {
		t.Fatalf("Mean = %v, want ~5000.5", mean)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0.001, 10, 10)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(1e-9) // underflow
	h.Observe(1e9)  // overflow
	if q := h.Quantile(0); q < 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 1e9 {
		t.Fatalf("q1 = %v, want clamped to observed max 1e9", q)
	}
	// Out-of-range q values clamp instead of panicking.
	_ = h.Quantile(-3)
	_ = h.Quantile(7)
	// Degenerate constructor args are clamped, not fatal.
	bad := NewHistogram(-1, -2, 0)
	bad.Observe(0.5)
	if bad.Count() != 1 {
		t.Fatal("clamped histogram dropped an observation")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1e-6, 10, 20)
	var wg sync.WaitGroup
	const gs, per = 8, 5000
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100+1) / 1000)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != gs*per {
		t.Fatalf("Count = %d, want %d (lost updates)", h.Count(), gs*per)
	}
	if q := h.Quantile(0.5); q < 0.02 || q > 0.09 {
		t.Fatalf("median = %v, want ~0.05", q)
	}
}
