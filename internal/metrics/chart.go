package metrics

import (
	"fmt"
	"strings"
	"time"
)

// This file is the "Grafana" of the simulation: it renders time-series as
// terminal charts so cmd/benchtab and cmd/nautilus can show the same
// dashboards the paper screenshots in Figures 3-6.

// ChartOptions controls ASCII rendering.
type ChartOptions struct {
	Width  int    // plot columns (default 72)
	Height int    // plot rows (default 12)
	Title  string // optional header line
	Unit   string // y-axis unit suffix, e.g. "MB/s"
}

func (o *ChartOptions) defaults() {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 12
	}
}

// Chart renders samples as an ASCII area chart. Samples are bucketed into
// Width columns by time with step-function carry-forward between updates.
func Chart(samples []Sample, opts ChartOptions) string {
	opts.defaults()
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	if len(samples) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	t0, t1 := samples[0].At, samples[len(samples)-1].At
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	// Step-function semantics: each column takes the value of the last
	// sample at or before its bucket (carry-forward), so sparse gauge
	// updates render as the plateaus they represent.
	lastIn := make([]float64, opts.Width)
	has := make([]bool, opts.Width)
	for _, s := range samples {
		col := int(int64(s.At-t0) * int64(opts.Width-1) / int64(span))
		lastIn[col] = s.Value
		has[col] = true
	}
	cols := make([]float64, opts.Width)
	maxV := 0.0
	last := 0.0
	for i := range cols {
		if has[i] {
			last = lastIn[i]
		}
		cols[i] = last
		if cols[i] > maxV {
			maxV = cols[i]
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	// Render rows top-down.
	for row := opts.Height; row >= 1; row-- {
		threshold := maxV * (float64(row) - 0.5) / float64(opts.Height)
		label := ""
		if row == opts.Height {
			label = formatValue(maxV, opts.Unit)
		} else if row == 1 {
			label = formatValue(0, opts.Unit)
		}
		fmt.Fprintf(&b, "%12s |", label)
		for _, v := range cols {
			if v >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%12s +%s\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%12s  %-*s%s\n", "", opts.Width-len(fmtDur(t1)), fmtDur(t0), fmtDur(t1))
	return b.String()
}

// Sparkline renders samples as a single-line unicode sparkline, used for
// compact per-worker rows in the Fig 3 reproduction.
func Sparkline(samples []Sample, width int) string {
	if width <= 0 {
		width = 40
	}
	if len(samples) == 0 {
		return strings.Repeat(" ", width)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	t0, t1 := samples[0].At, samples[len(samples)-1].At
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	lastIn := make([]float64, width)
	has := make([]bool, width)
	for _, s := range samples {
		col := int(int64(s.At-t0) * int64(width-1) / int64(span))
		lastIn[col] = s.Value
		has[col] = true
	}
	maxV := 0.0
	vals := make([]float64, width)
	last := 0.0
	for i := range vals {
		if has[i] {
			last = lastIn[i]
		}
		vals[i] = last
		if last > maxV {
			maxV = last
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for _, v := range vals {
		idx := int(v / maxV * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

func formatValue(v float64, unit string) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG%s", v/1e9, unit)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM%s", v/1e6, unit)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk%s", v/1e3, unit)
	default:
		return fmt.Sprintf("%.2f%s", v, unit)
	}
}

func fmtDur(d time.Duration) string {
	d = d.Round(time.Second)
	return d.String()
}

// Dashboard is a named collection of chart panels, the simulation's stand-in
// for a Grafana dashboard page.
type Dashboard struct {
	Title  string
	panels []panel
}

type panel struct {
	samples []Sample
	opts    ChartOptions
}

// NewDashboard creates an empty dashboard.
func NewDashboard(title string) *Dashboard { return &Dashboard{Title: title} }

// AddPanel appends a chart panel.
func (d *Dashboard) AddPanel(samples []Sample, opts ChartOptions) {
	d.panels = append(d.panels, panel{samples: samples, opts: opts})
}

// Render produces the full text dashboard.
func (d *Dashboard) Render() string {
	var b strings.Builder
	bar := strings.Repeat("=", 86)
	fmt.Fprintf(&b, "%s\n%s\n%s\n", bar, center(d.Title, 86), bar)
	for _, p := range d.panels {
		b.WriteString(Chart(p.samples, p.opts))
		b.WriteByte('\n')
	}
	return b.String()
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
