package metrics

import (
	"math"
	"sync"
)

// Histogram is a thread-safe log-bucketed histogram with quantile
// estimation — the latency-recording primitive the sustained-load harness
// (internal/loadtest) and serving benchmarks use. Unlike the Registry's
// Counter/Gauge series (single-threaded, full history), a Histogram takes
// concurrent Observe calls and keeps only bucket counts, so recording a
// million latencies costs a few hundred words.
//
// Buckets are geometric: bucketsPerDecade buckets per 10x between lo and
// hi, plus an underflow and an overflow bucket, so relative quantile error
// is bounded by the bucket ratio (~15% at 15 buckets/decade) across the
// whole range.
type Histogram struct {
	mu     sync.Mutex
	lo     float64
	ratio  float64   // upper/lower bound ratio per bucket
	bounds []float64 // bounds[i] = upper bound of bucket i+1 (bucket 0 = underflow)
	counts []uint64
	n      uint64
	sum    float64
	max    float64
}

// NewHistogram builds a histogram covering [lo, hi] with bucketsPerDecade
// geometric buckets per decade. Arguments are clamped to sane values
// (lo > 0, hi > lo, at least 1 bucket/decade), so callers can pass rough
// ranges without error handling.
func NewHistogram(lo, hi float64, bucketsPerDecade int) *Histogram {
	if lo <= 0 {
		lo = 1e-6
	}
	if hi <= lo {
		hi = lo * 1e3
	}
	if bucketsPerDecade < 1 {
		bucketsPerDecade = 10
	}
	ratio := math.Pow(10, 1/float64(bucketsPerDecade))
	var bounds []float64
	for b := lo * ratio; ; b *= ratio {
		bounds = append(bounds, b)
		if b >= hi {
			break
		}
	}
	return &Histogram{
		lo:     lo,
		ratio:  ratio,
		bounds: bounds,
		// counts[0] covers (-inf, lo]; counts[i] covers (bounds[i-1]/ratio,
		// bounds[i-1]]; the last slot is the overflow bucket.
		counts: make([]uint64, len(bounds)+2),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := h.bucketOf(v)
	h.mu.Lock()
	h.counts[idx]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

func (h *Histogram) bucketOf(v float64) int {
	if v <= h.lo {
		return 0
	}
	// Direct log-index instead of a binary search: one FP log per observe.
	idx := 1 + int(math.Log(v/h.lo)/math.Log(h.ratio))
	if idx < 1 {
		idx = 1
	}
	if idx > len(h.bounds) {
		idx = len(h.bounds) + 1 // overflow
	}
	return idx
}

// bucketBounds returns bucket idx's (lower, upper] value range.
func (h *Histogram) bucketBounds(idx int) (float64, float64) {
	switch {
	case idx == 0:
		return 0, h.lo
	case idx <= len(h.bounds):
		return h.bounds[idx-1] / h.ratio, h.bounds[idx-1]
	default:
		// Overflow: attribute mass to [last bound, observed max].
		return h.bounds[len(h.bounds)-1], h.max
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the containing bucket. Returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum float64
	for idx, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			loB, hiB := h.bucketBounds(idx)
			if hiB < loB {
				hiB = loB
			}
			frac := (rank - cum) / float64(c)
			v := loB + frac*(hiB-loB)
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the observed mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observed value.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}
