package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"chaseci/internal/sim"
)

func newTestRegistry() (*sim.Clock, *Registry) {
	c := sim.NewClock()
	return c, NewRegistry(c)
}

func TestGaugeRecordsAtVirtualTime(t *testing.T) {
	c, r := newTestRegistry()
	g := r.Gauge("cpu_in_use", Labels{"pod": "w1"})
	g.Set(4)
	c.RunUntil(10 * time.Second)
	g.Set(8)
	s := r.Select("cpu_in_use", nil)[0]
	if len(s.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(s.Samples))
	}
	if s.Samples[0] != (Sample{0, 4}) || s.Samples[1] != (Sample{10 * time.Second, 8}) {
		t.Fatalf("samples = %v", s.Samples)
	}
}

func TestGaugeAdd(t *testing.T) {
	_, r := newTestRegistry()
	g := r.Gauge("pods", nil)
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge value = %v, want 2", g.Value())
	}
}

func TestCounterMonotone(t *testing.T) {
	_, r := newTestRegistry()
	cnt := r.Counter("bytes_total", nil)
	cnt.Add(100)
	cnt.Inc()
	if cnt.Value() != 101 {
		t.Fatalf("counter = %v, want 101", cnt.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	cnt.Add(-1)
}

func TestSameInstantOverwrites(t *testing.T) {
	_, r := newTestRegistry()
	g := r.Gauge("g", nil)
	g.Set(1)
	g.Set(2)
	s := r.Select("g", nil)[0]
	if len(s.Samples) != 1 || s.Samples[0].Value != 2 {
		t.Fatalf("samples = %v, want single sample of 2", s.Samples)
	}
}

func TestSelectByLabels(t *testing.T) {
	_, r := newTestRegistry()
	r.Gauge("mem", Labels{"pod": "a", "ns": "x"}).Set(1)
	r.Gauge("mem", Labels{"pod": "b", "ns": "x"}).Set(2)
	r.Gauge("mem", Labels{"pod": "c", "ns": "y"}).Set(3)
	r.Gauge("cpu", Labels{"pod": "a", "ns": "x"}).Set(4)

	if got := len(r.Select("mem", Labels{"ns": "x"})); got != 2 {
		t.Fatalf("Select(mem, ns=x) returned %d series, want 2", got)
	}
	if got := len(r.Select("mem", nil)); got != 3 {
		t.Fatalf("Select(mem) returned %d series, want 3", got)
	}
	if got := len(r.Select("", Labels{"pod": "a"})); got != 2 {
		t.Fatalf("Select(*, pod=a) returned %d series, want 2", got)
	}
}

func TestNames(t *testing.T) {
	_, r := newTestRegistry()
	r.Gauge("b_metric", nil).Set(1)
	r.Gauge("a_metric", nil).Set(1)
	r.Gauge("b_metric", Labels{"x": "1"}).Set(1)
	names := r.Names()
	if len(names) != 2 || names[0] != "b_metric" || names[1] != "a_metric" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestLabelsStringDeterministic(t *testing.T) {
	l := Labels{"z": "1", "a": "2"}
	want := `{a="2",z="1"}`
	if l.String() != want {
		t.Fatalf("labels string = %s, want %s", l.String(), want)
	}
}

func TestValueAt(t *testing.T) {
	c, r := newTestRegistry()
	g := r.Gauge("v", nil)
	g.Set(1)
	c.RunUntil(10 * time.Second)
	g.Set(5)
	s := r.Select("v", nil)[0]

	if v, ok := ValueAt(s, 5*time.Second); !ok || v != 1 {
		t.Fatalf("ValueAt(5s) = %v,%v want 1,true", v, ok)
	}
	if v, ok := ValueAt(s, 10*time.Second); !ok || v != 5 {
		t.Fatalf("ValueAt(10s) = %v,%v want 5,true", v, ok)
	}
	if _, ok := ValueAt(s, -time.Second); ok {
		t.Fatal("ValueAt before first sample reported ok")
	}
}

func TestRateOfCounter(t *testing.T) {
	c, r := newTestRegistry()
	cnt := r.Counter("bytes", nil)
	for i := 0; i < 10; i++ {
		cnt.Add(1000) // 1000 bytes per second
		c.RunUntil(time.Duration(i+1) * time.Second)
	}
	rate := Rate(r.Select("bytes", nil)[0], 2*time.Second, 9*time.Second, time.Second, 2*time.Second)
	for _, s := range rate {
		if s.Value < 900 || s.Value > 1100 {
			t.Fatalf("rate at %v = %v, want ~1000", s.At, s.Value)
		}
	}
}

func TestSumSeries(t *testing.T) {
	c, r := newTestRegistry()
	a := r.Gauge("load", Labels{"w": "a"})
	b := r.Gauge("load", Labels{"w": "b"})
	a.Set(1)
	b.Set(2)
	c.RunUntil(time.Second)
	sum := SumSeries(r.Select("load", nil), 0, time.Second, time.Second)
	if len(sum) != 2 || sum[0].Value != 3 || sum[1].Value != 3 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestIntegralOfStepFunction(t *testing.T) {
	c, r := newTestRegistry()
	g := r.Gauge("gpus", nil)
	g.Set(2) // 2 GPUs for 10s, then 4 GPUs for 10s => 60 gpu-seconds
	c.RunUntil(10 * time.Second)
	g.Set(4)
	c.RunUntil(20 * time.Second)
	got := Integral(r.Select("gpus", nil)[0], 0, 20*time.Second)
	if got != 60 {
		t.Fatalf("Integral = %v, want 60", got)
	}
}

func TestIntegralEmptyRange(t *testing.T) {
	_, r := newTestRegistry()
	g := r.Gauge("g", nil)
	g.Set(5)
	if got := Integral(r.Select("g", nil)[0], time.Second, time.Second); got != 0 {
		t.Fatalf("Integral over empty range = %v, want 0", got)
	}
}

func TestResampleCarriesForward(t *testing.T) {
	c, r := newTestRegistry()
	g := r.Gauge("v", nil)
	g.Set(7)
	c.RunUntil(100 * time.Second)
	out := Resample(r.Select("v", nil)[0], 0, 100*time.Second, 10*time.Second)
	if len(out) != 11 {
		t.Fatalf("resample returned %d points, want 11", len(out))
	}
	for _, s := range out {
		if s.Value != 7 {
			t.Fatalf("resampled value at %v = %v, want 7", s.At, s.Value)
		}
	}
}

func TestMaxMeanOf(t *testing.T) {
	in := []Sample{{0, 1}, {1, 5}, {2, 3}}
	if MaxOf(in) != 5 {
		t.Fatalf("MaxOf = %v, want 5", MaxOf(in))
	}
	if MeanOf(in) != 3 {
		t.Fatalf("MeanOf = %v, want 3", MeanOf(in))
	}
	if MaxOf(nil) != 0 || MeanOf(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestBetween(t *testing.T) {
	c, r := newTestRegistry()
	g := r.Gauge("v", nil)
	for i := 0; i <= 10; i++ {
		g.Set(float64(i))
		c.RunUntil(time.Duration(i+1) * time.Second)
	}
	s := r.Select("v", nil)[0]
	got := s.Between(3*time.Second, 6*time.Second)
	if len(got) != 4 {
		t.Fatalf("Between returned %d samples, want 4", len(got))
	}
	if got[0].At != 3*time.Second || got[3].At != 6*time.Second {
		t.Fatalf("Between bounds wrong: %v", got)
	}
}

func TestChartRendersPeak(t *testing.T) {
	samples := []Sample{{0, 0}, {time.Second, 100}, {2 * time.Second, 0}}
	out := Chart(samples, ChartOptions{Width: 30, Height: 5, Title: "test", Unit: "MB/s"})
	if !strings.Contains(out, "test") {
		t.Fatal("chart missing title")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("chart has no plotted area")
	}
	if !strings.Contains(out, "100.00MB/s") {
		t.Fatalf("chart missing max label:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart(nil, ChartOptions{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestSparklineWidth(t *testing.T) {
	samples := []Sample{{0, 1}, {time.Second, 2}, {2 * time.Second, 3}}
	sp := Sparkline(samples, 20)
	if n := len([]rune(sp)); n != 20 {
		t.Fatalf("sparkline width = %d, want 20", n)
	}
}

func TestDashboardRender(t *testing.T) {
	d := NewDashboard("Nautilus")
	d.AddPanel([]Sample{{0, 1}, {time.Second, 2}}, ChartOptions{Title: "panel-a", Width: 20, Height: 4})
	out := d.Render()
	for _, want := range []string{"Nautilus", "panel-a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestPropertyValueAtMatchesLinearScan(t *testing.T) {
	f := func(raw []uint8, q uint8) bool {
		c := sim.NewClock()
		r := NewRegistry(c)
		g := r.Gauge("p", nil)
		for i, v := range raw {
			c.RunUntil(time.Duration(i+1) * time.Second)
			g.Set(float64(v))
		}
		if len(raw) == 0 {
			return true
		}
		s := r.Select("p", nil)[0]
		tq := time.Duration(q%uint8(len(raw)+2)) * time.Second
		got, ok := ValueAt(s, tq)
		// Linear scan reference.
		var want float64
		var wantOK bool
		for _, sm := range s.Samples {
			if sm.At <= tq {
				want, wantOK = sm.Value, true
			}
		}
		return got == want && ok == wantOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntegralNonNegativeForNonNegativeSeries(t *testing.T) {
	f := func(raw []uint8) bool {
		c := sim.NewClock()
		r := NewRegistry(c)
		g := r.Gauge("p", nil)
		for i, v := range raw {
			g.Set(float64(v))
			c.RunUntil(time.Duration(i+1) * time.Second)
		}
		s := r.Select("p", nil)
		if len(s) == 0 {
			return true
		}
		return Integral(s[0], 0, c.Now()) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
