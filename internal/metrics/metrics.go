// Package metrics is the monitoring substrate of the simulated CHASE-CI
// ecosystem: a Prometheus-like time-series store plus Grafana-like queries
// and terminal chart rendering. Every component (cluster, network, storage,
// workflow steps) records counters and gauges here in virtual time; the
// benchmark harness replays those series to regenerate the paper's Figures
// 3-6 and the per-step rows of Table I.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"chaseci/internal/sim"
)

// Labels is a set of key=value dimensions attached to a series, e.g.
// {"pod": "download-worker-3", "namespace": "connect"}.
type Labels map[string]string

// clone returns a copy so callers cannot mutate stored labels.
func (l Labels) clone() Labels {
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// String renders labels deterministically as {a="1",b="2"}.
func (l Labels) String() string {
	if len(l) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// matches reports whether l contains every key/value pair in sel.
func (l Labels) matches(sel Labels) bool {
	for k, v := range sel {
		if l[k] != v {
			return false
		}
	}
	return true
}

// Sample is one observation at a point in virtual time.
type Sample struct {
	At    time.Duration
	Value float64
}

// Series is a named, labelled sequence of samples ordered by time.
type Series struct {
	Name    string
	Labels  Labels
	Samples []Sample
}

// Last returns the most recent sample, or a zero Sample if empty.
func (s *Series) Last() Sample {
	if len(s.Samples) == 0 {
		return Sample{}
	}
	return s.Samples[len(s.Samples)-1]
}

// ID returns the canonical identity of the series.
func (s *Series) ID() string { return s.Name + s.Labels.String() }

// Between returns the samples with At in [from, to].
func (s *Series) Between(from, to time.Duration) []Sample {
	lo := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].At >= from })
	hi := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].At > to })
	return s.Samples[lo:hi]
}

// Registry stores all series and hands out instruments. It is the simulated
// Prometheus server of the ecosystem.
type Registry struct {
	clock  *sim.Clock
	series map[string]*Series
	order  []string // insertion order for deterministic listings
}

// NewRegistry creates a registry recording at the given virtual clock.
func NewRegistry(clock *sim.Clock) *Registry {
	return &Registry{clock: clock, series: make(map[string]*Series)}
}

// Clock returns the registry's virtual clock.
func (r *Registry) Clock() *sim.Clock { return r.clock }

func (r *Registry) getSeries(name string, labels Labels) *Series {
	key := name + labels.String()
	s, ok := r.series[key]
	if !ok {
		s = &Series{Name: name, Labels: labels.clone()}
		r.series[key] = s
		r.order = append(r.order, key)
	}
	return s
}

func (r *Registry) record(s *Series, v float64) {
	now := r.clock.Now()
	if n := len(s.Samples); n > 0 && s.Samples[n-1].At == now {
		s.Samples[n-1].Value = v
		return
	}
	s.Samples = append(s.Samples, Sample{At: now, Value: v})
}

// Gauge is an instrument whose value can go up and down (e.g. pods running,
// memory in use).
type Gauge struct {
	reg    *Registry
	series *Series
	value  float64
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return &Gauge{reg: r, series: r.getSeries(name, labels)}
}

// Set records an absolute value at the current virtual time.
func (g *Gauge) Set(v float64) {
	g.value = v
	g.reg.record(g.series, v)
}

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) { g.Set(g.value + d) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.value }

// Counter is a monotonically non-decreasing instrument (e.g. bytes
// transferred, files downloaded).
type Counter struct {
	reg    *Registry
	series *Series
	value  float64
}

// Counter returns (creating if needed) the counter for name+labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return &Counter{reg: r, series: r.getSeries(name, labels)}
}

// Add increases the counter. Negative deltas are rejected with a panic:
// counters are monotone by definition and a negative add is always a bug in
// the instrumented component.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: counter %s decreased by %v", c.series.ID(), d))
	}
	c.value += d
	c.reg.record(c.series, c.value)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current counter total.
func (c *Counter) Value() float64 { return c.value }

// Select returns all series with the given name whose labels match sel, in
// creation order. A nil sel matches everything with the name; an empty name
// matches all names.
func (r *Registry) Select(name string, sel Labels) []*Series {
	var out []*Series
	for _, key := range r.order {
		s := r.series[key]
		if name != "" && s.Name != name {
			continue
		}
		if !s.Labels.matches(sel) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Names returns the distinct metric names in creation order.
func (r *Registry) Names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, key := range r.order {
		n := r.series[key].Name
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
