package metrics

import (
	"math"
	"time"
)

// This file is the query layer: the simulated PromQL subset that the
// dashboard renderer and the benchmark harness use to turn raw samples into
// the aggregate numbers the paper reports (peak throughput, per-step totals,
// utilization curves).

// ValueAt returns the series value as of time t (last sample at or before t).
// ok is false if the series has no sample at or before t.
func ValueAt(s *Series, t time.Duration) (v float64, ok bool) {
	samples := s.Samples
	lo, hi := 0, len(samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if samples[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, false
	}
	return samples[lo-1].Value, true
}

// Resample evaluates the series at fixed steps in [from, to], carrying the
// last value forward (the Prometheus "instant vector at step" model). Points
// before the first sample evaluate to 0.
func Resample(s *Series, from, to, step time.Duration) []Sample {
	if step <= 0 || to < from {
		return nil
	}
	var out []Sample
	for t := from; t <= to; t += step {
		v, _ := ValueAt(s, t)
		out = append(out, Sample{At: t, Value: v})
	}
	return out
}

// Rate converts a counter series into a per-second rate series evaluated at
// fixed steps: rate(t) = (value(t) - value(t-window)) / window. This is how
// the Fig 4 "throughput" curve is derived from the bytes-transferred counter.
func Rate(s *Series, from, to, step, window time.Duration) []Sample {
	if step <= 0 || window <= 0 || to < from {
		return nil
	}
	var out []Sample
	for t := from; t <= to; t += step {
		cur, ok1 := ValueAt(s, t)
		prev, _ := ValueAt(s, t-window)
		if !ok1 {
			out = append(out, Sample{At: t, Value: 0})
			continue
		}
		out = append(out, Sample{At: t, Value: (cur - prev) / window.Seconds()})
	}
	return out
}

// SumSeries pointwise-sums several series resampled on a common grid; the
// Grafana "stacked workers" view of Fig 3 is a SumSeries over per-pod gauges.
func SumSeries(list []*Series, from, to, step time.Duration) []Sample {
	if len(list) == 0 {
		return nil
	}
	var out []Sample
	for t := from; t <= to; t += step {
		sum := 0.0
		for _, s := range list {
			v, _ := ValueAt(s, t)
			sum += v
		}
		out = append(out, Sample{At: t, Value: sum})
	}
	return out
}

// MaxOf returns the maximum sample value in samples, or 0 for none.
func MaxOf(samples []Sample) float64 {
	max := math.Inf(-1)
	for _, s := range samples {
		if s.Value > max {
			max = s.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// MeanOf returns the arithmetic mean of samples, or 0 for none.
func MeanOf(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s.Value
	}
	return sum / float64(len(samples))
}

// Integral returns the time integral of a (step-function) series over
// [from, to] in value-seconds: e.g. integrating a GPUs-in-use gauge yields
// GPU-seconds consumed, the quantity behind Table I's resource rows.
func Integral(s *Series, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	total := 0.0
	cur, _ := ValueAt(s, from)
	prev := from
	for _, sm := range s.Between(from, to) {
		if sm.At > prev {
			total += cur * (sm.At - prev).Seconds()
			prev = sm.At
		}
		cur = sm.Value
	}
	if to > prev {
		total += cur * (to - prev).Seconds()
	}
	return total
}
