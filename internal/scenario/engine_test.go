package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestBuiltinMatrix runs every builtin chaos script and requires a clean
// report: all jobs succeeded bit-identically to the undisturbed baseline,
// zero leaked pins/claims/goroutines, transfers within scripted budgets.
func TestBuiltinMatrix(t *testing.T) {
	for _, sc := range Builtin() {
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, Options{Seed: 1, Log: t.Logf})
			if err != nil {
				t.Fatalf("Run(%s): %v", sc.Name, err)
			}
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if len(res.Jobs) != len(sc.Jobs) {
				t.Errorf("got %d job outcomes, want %d", len(res.Jobs), len(sc.Jobs))
			}
			for _, o := range res.Jobs {
				if o.ResultSHA == "" {
					t.Errorf("job %d (%s) has no result hash", o.Index, o.Kind)
				}
			}
		})
	}
}

// TestMatrixCoversRequiredFaults pins the fault classes ISSUE 8 demands so a
// future edit cannot silently drop one from the matrix.
func TestMatrixCoversRequiredFaults(t *testing.T) {
	required := []string{
		"osd_loss_midpipeline", "node_kill_midjob", "partition_heal",
		"wan_loss", "bandwidth_collapse", "worker_panic",
	}
	for _, name := range required {
		if _, err := Lookup(name); err != nil {
			t.Errorf("required script missing from matrix: %v", err)
		}
	}
	if n := len(Builtin()); n < 6 {
		t.Errorf("matrix has %d scripts, need >= 6", n)
	}
	if _, err := Lookup("no_such_script"); err == nil {
		t.Error("Lookup of unknown script did not error")
	}
}

// TestDeterministicReplay reruns one scenario with the same seed and requires
// an identical fingerprint, and a different fingerprint for a different seed
// (the seed feeds the uploaded volume, so results legitimately change).
func TestDeterministicReplay(t *testing.T) {
	sc, err := Lookup("node_kill_midjob")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same seed, different fingerprints:\n  %s\n  %s", a.Fingerprint, b.Fingerprint)
	}
	c, err := Run(sc, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Error("different seeds produced identical fingerprints; seed is not feeding the world")
	}
}

// TestTransferBudgetViolationDetected proves the invariant machinery actually
// fires: an impossible MaxElapsed on a lossy transfer must be reported, not
// swallowed.
func TestTransferBudgetViolationDetected(t *testing.T) {
	sc := Script{
		Name: "negative_budget",
		Jobs: []JobSpec{{Kind: "segment"}},
		Events: []Action{
			{Kind: ActSetLink, LinkA: "ucsd", LinkB: "uci", Loss: 0.5},
			// 5e9 bytes at 5 Gbps effective need ~8s; demand < 1s.
			{Kind: ActTransfer, LinkA: "ucsd", LinkB: "uci", Bytes: 5e9,
				MaxElapsed: 1 * time.Second},
		},
	}
	res, err := Run(sc, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "exceeding the scripted budget") {
			found = true
		}
	}
	if !found {
		t.Errorf("impossible transfer budget not flagged; violations: %v", res.Violations)
	}
}
