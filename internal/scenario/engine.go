package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/dataset"
	"chaseci/internal/gpusim"
	"chaseci/internal/netsim"
	"chaseci/internal/queue"
	"chaseci/internal/sched"
	"chaseci/internal/service"
	"chaseci/internal/sim"
)

// Options configures a scenario run.
type Options struct {
	// Seed drives every random choice (uploaded volume contents, fault
	// victim selection). The same script + seed replays identically.
	Seed uint64
	// WorkersPerNode sizes each fabric node's pool (<= 0 defaults to 2).
	WorkersPerNode int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// JobOutcome is one workload job's final accounting.
type JobOutcome struct {
	Index    int       `json:"index"`
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    api.State `json:"state"`
	Error    string    `json:"error,omitempty"`
	Requeues int       `json:"requeues"`
	// ResultSHA is the hex SHA-256 of the result payload — the bit-exactness
	// token compared against the undisturbed run.
	ResultSHA string `json:"result_sha"`
}

// TransferOutcome records one scripted virtual-time bulk transfer.
type TransferOutcome struct {
	Src         string        `json:"src,omitempty"`
	Dst         string        `json:"dst,omitempty"`
	Bytes       float64       `json:"bytes"`
	Elapsed     time.Duration `json:"elapsed"`
	Transferred float64       `json:"transferred"`
	Stalled     bool          `json:"stalled"`
}

// Result is a scenario run's full report. Violations empty = every invariant
// held. Fingerprint covers the deterministic portion (states + result
// hashes), so rerunning the same script+seed must reproduce it exactly.
type Result struct {
	Script      string            `json:"script"`
	Seed        uint64            `json:"seed"`
	Jobs        []JobOutcome      `json:"jobs"`
	Baseline    []JobOutcome      `json:"baseline"`
	Transfers   []TransferOutcome `json:"transfers,omitempty"`
	Violations  []string          `json:"violations,omitempty"`
	Fingerprint string            `json:"fingerprint"`
	Wall        time.Duration     `json:"wall"`
}

// Passed reports whether every invariant held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// --- handler gate -----------------------------------------------------------

// gate intercepts every job-kind handler, so scripts can deterministically
// hold an execution mid-flight (the "while the job is running" window for
// fault injection) or crash one (worker panic).
type gate struct {
	mu     sync.Mutex
	holdN  int
	panicN int
	held   []chan struct{}
	parked chan struct{} // signaled when an execution blocks
}

func newGate() *gate { return &gate{parked: make(chan struct{}, 64)} }

func (g *gate) wrap(h service.Handler) service.Handler {
	return func(jc *service.JobContext) (any, error) {
		g.mu.Lock()
		if g.panicN > 0 {
			g.panicN--
			g.mu.Unlock()
			panic("scenario: injected worker panic")
		}
		if g.holdN > 0 {
			g.holdN--
			release := make(chan struct{})
			g.held = append(g.held, release)
			g.mu.Unlock()
			select {
			case g.parked <- struct{}{}:
			default:
			}
			select {
			case <-release:
			case <-jc.Ctx().Done():
				return nil, jc.Ctx().Err()
			}
		} else {
			g.mu.Unlock()
		}
		return h(jc)
	}
}

func (g *gate) holdNext(n int)  { g.mu.Lock(); g.holdN += n; g.mu.Unlock() }
func (g *gate) panicNext(n int) { g.mu.Lock(); g.panicN += n; g.mu.Unlock() }

func (g *gate) releaseAll() {
	g.mu.Lock()
	held := g.held
	g.held = nil
	g.mu.Unlock()
	for _, ch := range held {
		close(ch)
	}
}

func (g *gate) awaitHold(d time.Duration) error {
	select {
	case <-g.parked:
		return nil
	case <-time.After(d):
		return fmt.Errorf("scenario: no handler execution parked within %v", d)
	}
}

// --- world ------------------------------------------------------------------

// world is one fully-assembled stack: fabric + cluster runner + HTTP gateway,
// the same wiring `chased -cluster` serves.
type world struct {
	fab    *sched.Fabric
	runner *service.Runner
	srv    *httptest.Server
	gate   *gate
	segRef string   // shared deterministic segment input
	ids    []string // job index -> job id ("" until submitted)
	specs  []JobSpec
}

// defaultTopology mirrors the chased default: three PRP sites, two
// OSD-bearing FIONA nodes and one compute-only node, replication 2.
func defaultTopology() *sched.Fabric {
	fab := sched.NewFabric(sched.FabricConfig{Replicas: 2})
	for _, s := range []string{"ucsd", "sdsu", "uci"} {
		fab.AddSite(s)
	}
	fab.AddLink("ucsd", "sdsu", netsim.Gbps(40), 2*time.Millisecond)
	fab.AddLink("ucsd", "uci", netsim.Gbps(10), 3*time.Millisecond)
	fab.AddLink("sdsu", "uci", netsim.Gbps(10), 3*time.Millisecond)
	nodes := []sched.NodeSpec{
		{Name: "node-0", Site: "ucsd", OSD: "osd-ucsd"},
		{Name: "node-1", Site: "sdsu", OSD: "osd-sdsu"},
		{Name: "node-2", Site: "uci"},
	}
	for _, n := range nodes {
		n.Capacity = cluster.FIONA8Capacity()
		n.Model = gpusim.Powered1080Ti()
		if err := fab.AddNode(n); err != nil {
			panic("scenario: topology: " + err.Error())
		}
	}
	return fab
}

// newWorld assembles the stack. dataRNG seeds the uploaded segment volume —
// fork it identically for the disturbed and baseline worlds so their inputs
// are byte-identical.
func newWorld(specs []JobSpec, workers int, dataRNG *sim.RNG) (*world, error) {
	g := newGate()
	reg := service.DefaultRegistry()
	for _, k := range reg.Kinds() {
		h, _ := reg.Handler(k)
		reg.Register(k, g.wrap(h))
	}
	fab := defaultTopology()
	runner := service.NewClusterRunner(reg, queue.NewStore(), workers, fab)
	// Faults land and clear in milliseconds here; keep backoff in scale.
	runner.SetRetryPolicy(service.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	gw := service.NewGateway(runner, service.GatewayOptions{
		AllowAnonymous: true, PollInterval: 2 * time.Millisecond,
	})
	w := &world{
		fab:    fab,
		runner: runner,
		srv:    httptest.NewServer(gw),
		gate:   g,
		ids:    make([]string, len(specs)),
		specs:  specs,
	}
	// One deterministic volume shared by every segment job: 8x12x12 of
	// seeded values with enough structure for a non-trivial flood fill.
	const d, h, wd = 8, 12, 12
	data := make([]float32, d*h*wd)
	for i := range data {
		data[i] = float32(dataRNG.Float64())
	}
	enc, err := dataset.EncodeVolume(d, h, wd, data)
	if err != nil {
		w.close()
		return nil, err
	}
	resp, err := http.Post(w.srv.URL+"/v1/datasets", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		w.close()
		return nil, err
	}
	var info dataset.Info
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || resp.StatusCode/100 != 2 {
		w.close()
		return nil, fmt.Errorf("scenario: dataset upload: status %d err %v", resp.StatusCode, err)
	}
	w.segRef = info.ID
	return w, nil
}

func (w *world) close() {
	w.srv.Close()
	w.runner.Close()
}

func (w *world) request(spec JobSpec) (*api.JobRequest, error) {
	var req *api.JobRequest
	switch spec.Kind {
	case "segment":
		req = &api.JobRequest{
			Kind:       api.KindSegment,
			ResultMode: api.ResultModeRef,
			Segment: &api.SegmentSpec{
				Source:    api.VolumeSource{Ref: w.segRef},
				Threshold: 0.5,
			},
		}
	case "pipeline":
		req = &api.JobRequest{
			Kind: api.KindPipeline,
			Pipeline: &api.PipelineSpec{
				Synth:      api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 8, Seed: 11},
				SlabSteps:  4,
				Threshold:  120,
				Net:        &api.NetConfig{FOV: [3]int{3, 9, 9}, Features: 4, MoveProb: 0.6},
				SeedStride: [3]int{1, 4, 4},
				MinVoxels:  2,
			},
		}
	case "train_dist":
		td := &api.TrainDistSpec{
			Source:    api.VolumeSource{Ref: w.segRef},
			Threshold: 0.5,
			Workers:   2,
			Rounds:    8,
		}
		if spec.ResumePrev {
			// The checkpoint wins: no net/seed/batch fields, more rounds.
			td.Rounds = 12
		} else {
			td.BatchPerRound = 4
			td.Net = &api.NetConfig{FOV: [3]int{3, 7, 7}, Features: 4, MoveStep: [3]int{1, 2, 2}}
			td.NetSeed = 11
			td.SampleSeed = 13
			td.CheckpointEvery = 2
		}
		req = &api.JobRequest{Kind: api.KindTrainDist, TrainDist: td}
	default:
		return nil, fmt.Errorf("scenario: unknown job kind %q", spec.Kind)
	}
	if spec.Site != "" {
		req.Placement = &api.PlacementSpec{Site: spec.Site}
	}
	return req, nil
}

// awaitCheckpoint waits for job i to succeed and returns the checkpoint ref
// its result names — the resume_prev handoff.
func (w *world) awaitCheckpoint(i int) (string, error) {
	if i < 0 || w.ids[i] == "" {
		return "", fmt.Errorf("scenario: resume_prev: job %d not submitted", i)
	}
	limit := time.Now().Add(defaultDeadline)
	for {
		st, err := w.status(i)
		if err != nil {
			return "", err
		}
		if st.State.Terminal() {
			if st.State != api.StateSucceeded {
				return "", fmt.Errorf("scenario: resume_prev: job %d ended %s: %s", i, st.State, st.Error)
			}
			raw, err := w.result(i)
			if err != nil {
				return "", err
			}
			var tr api.TrainDistResult
			if err := json.Unmarshal(raw, &tr); err != nil {
				return "", err
			}
			if tr.CheckpointRef == "" {
				return "", fmt.Errorf("scenario: job %d produced no checkpoint ref", i)
			}
			return tr.CheckpointRef, nil
		}
		if time.Now().After(limit) {
			return "", fmt.Errorf("scenario: resume_prev: job %d not terminal within %v", i, defaultDeadline)
		}
		time.Sleep(awaitTick)
	}
}

func (w *world) submit(i int) error {
	if w.ids[i] != "" {
		return fmt.Errorf("scenario: job %d already submitted", i)
	}
	req, err := w.request(w.specs[i])
	if err != nil {
		return err
	}
	if w.specs[i].ResumePrev {
		ref, err := w.awaitCheckpoint(i - 1)
		if err != nil {
			return err
		}
		req.TrainDist.ResumeFrom = ref
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(w.srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("scenario: submit job %d: status %d: %s", i, resp.StatusCode, raw)
	}
	var sub api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	w.ids[i] = sub.ID
	return nil
}

func (w *world) status(i int) (api.JobStatus, error) {
	resp, err := http.Get(w.srv.URL + "/v1/jobs/" + w.ids[i])
	if err != nil {
		return api.JobStatus{}, err
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.JobStatus{}, err
	}
	return st, nil
}

func (w *world) result(i int) (json.RawMessage, error) {
	resp, err := http.Get(w.srv.URL + "/v1/jobs/" + w.ids[i] + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var env api.ResultEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, err
	}
	return env.Result, nil
}

// awaitDone polls until every submitted job is terminal, or deadline.
func (w *world) awaitDone(deadline time.Duration) error {
	limit := time.Now().Add(deadline)
	for {
		allDone := true
		for i, id := range w.ids {
			if id == "" {
				continue
			}
			st, err := w.status(i)
			if err != nil {
				return err
			}
			if !st.State.Terminal() {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		if time.Now().After(limit) {
			var stuck []string
			for i, id := range w.ids {
				if id == "" {
					continue
				}
				if st, err := w.status(i); err == nil && !st.State.Terminal() {
					stuck = append(stuck, fmt.Sprintf("%s=%s", id, st.State))
				}
			}
			return fmt.Errorf("no forward progress within %v: %v", deadline, stuck)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (w *world) outcomes() ([]JobOutcome, error) {
	out := make([]JobOutcome, 0, len(w.ids))
	for i, id := range w.ids {
		if id == "" {
			continue
		}
		st, err := w.status(i)
		if err != nil {
			return nil, err
		}
		o := JobOutcome{
			Index: i, ID: id, Kind: w.specs[i].Kind, State: st.State, Error: st.Error,
		}
		if st.Placement != nil {
			o.Requeues = st.Placement.Requeues
		}
		if st.State == api.StateSucceeded {
			raw, err := w.result(i)
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(raw)
			o.ResultSHA = hex.EncodeToString(sum[:])
		}
		out = append(out, o)
	}
	return out, nil
}

// --- engine -----------------------------------------------------------------

const (
	defaultDeadline = 60 * time.Second
	awaitTick       = 2 * time.Millisecond
)

// Run executes the script in a disturbed world, executes the same workload
// in an undisturbed baseline world, and reports every invariant violation:
// non-success terminal states, results that differ from the baseline,
// leaked pins or claims, missed transfer budgets, and stuck goroutines.
func Run(sc Script, opt Options) (*Result, error) {
	start := time.Now()
	if opt.WorkersPerNode <= 0 {
		opt.WorkersPerNode = 2
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	deadline := sc.Deadline
	if deadline <= 0 {
		deadline = defaultDeadline
	}
	goroutines := runtime.NumGoroutine()
	res := &Result{Script: sc.Name, Seed: opt.Seed}

	// Stream discipline: fork order is fixed so the disturbed and baseline
	// worlds draw identical data streams, and each event gets its own
	// independent stream regardless of what earlier events consumed.
	root := sim.NewRNG(opt.Seed)
	dataRNG := root.Fork()
	eventRNG := root.Fork()

	logf("scenario %s: seed %d, %d jobs, %d events", sc.Name, opt.Seed, len(sc.Jobs), len(sc.Events))
	disturbed, err := newWorld(sc.Jobs, opt.WorkersPerNode, dataRNG)
	if err != nil {
		return nil, err
	}
	defer disturbed.close()
	e := &engine{w: disturbed, sc: sc, deadline: deadline, logf: logf, res: res}
	for i := range sc.Jobs {
		if sc.Jobs[i].Deferred {
			continue
		}
		if err := disturbed.submit(i); err != nil {
			return nil, err
		}
	}
	for i, ev := range sc.Events {
		if err := e.apply(i, ev, eventRNG.Fork()); err != nil {
			return nil, err
		}
		e.checkEvent(i, ev)
	}
	disturbed.gate.releaseAll() // scripts may leave holds armed; never wedge
	if err := disturbed.awaitDone(deadline); err != nil {
		res.Violations = append(res.Violations, err.Error())
	}
	if res.Jobs, err = disturbed.outcomes(); err != nil {
		return nil, err
	}
	if err := disturbed.runner.LeakCheck(); err != nil {
		res.Violations = append(res.Violations, err.Error())
	}

	logf("scenario %s: disturbed run done, running baseline", sc.Name)
	baseRoot := sim.NewRNG(opt.Seed)
	baseData := baseRoot.Fork()
	baseline, err := newWorld(sc.Jobs, opt.WorkersPerNode, baseData)
	if err != nil {
		return nil, err
	}
	defer baseline.close()
	for i := range sc.Jobs {
		if err := baseline.submit(i); err != nil {
			return nil, err
		}
	}
	if err := baseline.awaitDone(deadline); err != nil {
		res.Violations = append(res.Violations, "baseline: "+err.Error())
	}
	if res.Baseline, err = baseline.outcomes(); err != nil {
		return nil, err
	}
	if err := baseline.runner.LeakCheck(); err != nil {
		res.Violations = append(res.Violations, "baseline: "+err.Error())
	}

	compare(res)
	disturbed.close()
	baseline.close()
	if leaked := awaitGoroutines(goroutines); leaked != "" {
		res.Violations = append(res.Violations, leaked)
	}
	res.Fingerprint = fingerprint(res)
	res.Wall = time.Since(start)
	sort.Strings(res.Violations)
	return res, nil
}

// compare applies the cross-world invariants: every job succeeded in both
// worlds and the disturbed results hash identically to the baseline's.
func compare(res *Result) {
	base := make(map[int]JobOutcome, len(res.Baseline))
	for _, o := range res.Baseline {
		base[o.Index] = o
	}
	for _, o := range res.Jobs {
		if o.State != api.StateSucceeded {
			res.Violations = append(res.Violations,
				fmt.Sprintf("job %d (%s) ended %s: %s", o.Index, o.ID, o.State, o.Error))
			continue
		}
		b, ok := base[o.Index]
		if !ok || b.State != api.StateSucceeded {
			res.Violations = append(res.Violations,
				fmt.Sprintf("baseline job %d did not succeed (%s)", o.Index, b.State))
			continue
		}
		if o.ResultSHA != b.ResultSHA {
			res.Violations = append(res.Violations,
				fmt.Sprintf("job %d result diverged from undisturbed run: %s vs %s",
					o.Index, o.ResultSHA[:12], b.ResultSHA[:12]))
		}
	}
}

// awaitGoroutines waits for the goroutine count to return to its pre-run
// level (plus slack for runtime pollers); non-empty return = leak.
func awaitGoroutines(before int) string {
	const slack = 8
	limit := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= before+slack {
			return ""
		}
		if time.Now().After(limit) {
			return fmt.Sprintf("goroutine leak: %d before run, %d after close", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fingerprint hashes the deterministic portion of the report: per-job final
// states, result hashes, and transfer virtual timings. Two runs of the same
// script+seed must produce identical fingerprints.
func fingerprint(res *Result) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d\n", res.Script, res.Seed)
	for _, o := range res.Jobs {
		fmt.Fprintf(h, "job|%d|%s|%s\n", o.Index, o.State, o.ResultSHA)
	}
	for _, o := range res.Baseline {
		fmt.Fprintf(h, "base|%d|%s|%s\n", o.Index, o.State, o.ResultSHA)
	}
	for _, tr := range res.Transfers {
		fmt.Fprintf(h, "xfer|%s|%s|%g|%d|%g|%v\n", tr.Src, tr.Dst, tr.Bytes,
			tr.Elapsed, tr.Transferred, tr.Stalled)
	}
	for _, v := range res.Violations {
		fmt.Fprintf(h, "viol|%s\n", v)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// engine interprets one script's events against the disturbed world.
type engine struct {
	w          *world
	sc         Script
	deadline   time.Duration
	logf       func(string, ...any)
	res        *Result
	lastKilled string
}

func (e *engine) apply(i int, ev Action, rng *sim.RNG) error {
	s := e.w.runner.Scheduler()
	e.logf("  event %d: %s", i, ev.Kind)
	switch ev.Kind {
	case ActKillNode:
		node := ev.Node
		if node == "" {
			var err error
			if node, err = e.victim(ev.Job, rng); err != nil {
				return err
			}
		}
		e.lastKilled = node
		return e.w.runner.DrainNode(node)
	case ActRestoreNode:
		node := ev.Node
		if node == "" {
			node = e.lastKilled
		}
		if node == "" {
			return fmt.Errorf("event %d: restore_node with no prior kill", i)
		}
		return e.w.runner.RestoreNode(node)
	case ActFailOSD:
		return s.FailOSD(ev.OSD)
	case ActRecoverOSD:
		return s.RecoverOSD(ev.OSD)
	case ActPartition:
		cut := s.PartitionSite(ev.Site)
		e.logf("  partitioned %s: cut %v", ev.Site, cut)
		return nil
	case ActHeal:
		s.HealSite(ev.Site)
		return nil
	case ActSetLink:
		var ch netsim.LinkChange
		if ev.CapacityBps > 0 {
			ch.Capacity = &ev.CapacityBps
		}
		loss := ev.Loss
		ch.Loss = &loss
		down := ev.Down
		ch.Down = &down
		return s.SetLink(ev.LinkA, ev.LinkB, ch)
	case ActLinkTrace:
		trace := make([]netsim.TracePoint, len(ev.Trace))
		for j, p := range ev.Trace {
			trace[j] = p.netsim()
		}
		return s.ApplyLinkTrace(ev.LinkA, ev.LinkB, trace)
	case ActPanicNext:
		e.w.gate.panicNext(max(ev.Count, 1))
		return nil
	case ActHoldNext:
		e.w.gate.holdNext(max(ev.Count, 1))
		return nil
	case ActRelease:
		e.w.gate.releaseAll()
		return nil
	case ActAwaitHold:
		return e.w.gate.awaitHold(e.deadline)
	case ActAwaitParked:
		return e.await(ev.Job, "parked", func(st api.JobStatus) bool {
			return st.State == api.StateQueued && s.BoundNode(e.w.ids[ev.Job]) == ""
		})
	case ActAwaitBound:
		return e.await(ev.Job, "bound", func(st api.JobStatus) bool {
			return s.BoundNode(e.w.ids[ev.Job]) != "" || st.State.Terminal()
		})
	case ActAwaitDone:
		return e.await(ev.Job, "done", func(st api.JobStatus) bool {
			return st.State.Terminal()
		})
	case ActSubmit:
		return e.w.submit(ev.Job)
	case ActTransfer:
		rep, err := s.RunTransfer(ev.LinkA, ev.LinkB, ev.Bytes)
		if err != nil {
			return err
		}
		out := TransferOutcome{
			Src: rep.Src, Dst: rep.Dst, Bytes: rep.Bytes,
			Elapsed: rep.Elapsed, Transferred: rep.Transferred, Stalled: rep.Stalled,
		}
		e.res.Transfers = append(e.res.Transfers, out)
		e.logf("  transfer %s->%s: %.0fB in %v (stalled=%v)", rep.Src, rep.Dst,
			rep.Transferred, rep.Elapsed, rep.Stalled)
		if rep.Stalled {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("event %d: transfer stalled after %.0f/%.0f bytes", i, rep.Transferred, rep.Bytes))
		}
		if ev.MinElapsed > 0 && rep.Elapsed < ev.MinElapsed {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("event %d: transfer finished in %v, faster than the scripted conditions allow (min %v)",
					i, rep.Elapsed, ev.MinElapsed))
		}
		if ev.MaxElapsed > 0 && rep.Elapsed > ev.MaxElapsed {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("event %d: transfer took %v, exceeding the scripted budget (max %v)",
					i, rep.Elapsed, ev.MaxElapsed))
		}
		return nil
	default:
		return fmt.Errorf("event %d: unknown action kind %q", i, ev.Kind)
	}
}

// victim resolves a kill target: the node the given job is bound to, or —
// if the job is not bound — a seeded-random ready node, so adversity stays
// reproducible from the seed alone.
func (e *engine) victim(jobIdx int, rng *sim.RNG) (string, error) {
	s := e.w.runner.Scheduler()
	if jobIdx >= 0 && jobIdx < len(e.w.ids) && e.w.ids[jobIdx] != "" {
		limit := time.Now().Add(e.deadline)
		for {
			if node := s.BoundNode(e.w.ids[jobIdx]); node != "" {
				return node, nil
			}
			if time.Now().After(limit) {
				break
			}
			time.Sleep(awaitTick)
		}
	}
	var ready []string
	for _, st := range s.Nodes() {
		if st.Ready {
			ready = append(ready, st.Name)
		}
	}
	if len(ready) == 0 {
		return "", fmt.Errorf("scenario: no ready node to kill")
	}
	sort.Strings(ready)
	return ready[rng.Intn(len(ready))], nil
}

func (e *engine) await(jobIdx int, what string, pred func(api.JobStatus) bool) error {
	if jobIdx < 0 || jobIdx >= len(e.w.ids) || e.w.ids[jobIdx] == "" {
		return fmt.Errorf("scenario: await_%s: job %d not submitted", what, jobIdx)
	}
	limit := time.Now().Add(e.deadline)
	for {
		st, err := e.w.status(jobIdx)
		if err != nil {
			return err
		}
		if pred(st) {
			return nil
		}
		if time.Now().After(limit) {
			return fmt.Errorf("scenario: job %d never became %s (state %s)", jobIdx, what, st.State)
		}
		time.Sleep(awaitTick)
	}
}

// checkEvent runs the per-event invariants: no submitted job may be in an
// illegal or prematurely-failed state while the script is still running, and
// requeue accounting must stay within the placement budget.
func (e *engine) checkEvent(i int, ev Action) {
	s := e.w.runner.Scheduler()
	for idx, id := range e.w.ids {
		if id == "" {
			continue
		}
		st, err := e.w.status(idx)
		if err != nil {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("after event %d (%s): job %d status unreadable: %v", i, ev.Kind, idx, err))
			continue
		}
		if st.State == api.StateFailed {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("after event %d (%s): job %d failed early: %s", i, ev.Kind, idx, st.Error))
		}
		if n := s.Requeues(id); n > 6 {
			e.res.Violations = append(e.res.Violations,
				fmt.Sprintf("after event %d (%s): job %d requeued %d times (budget breach)", i, ev.Kind, idx, n))
		}
	}
}
