// Package scenario is the deterministic chaos-replay engine: it runs the
// full gateway → service → sched fabric → objstore/dataset stack inside one
// seeded world and injects scripted adversity — link loss and bandwidth
// collapse on the netsim WAN, OSD loss mid-pipeline, node kill under a
// running job, site partition with heal, worker panics — then checks the
// invariants the platform promises under all of it: results bit-identical to
// an undisturbed run, dataset pins and scheduler claims balanced back to
// zero, exactly-once requeue accounting, and forward progress within a
// deadline. Every random choice (fault victims, injected volumes) draws from
// a forked sim.RNG stream, so a scenario replays exactly from its seed.
package scenario

import (
	"fmt"
	"time"

	"chaseci/internal/netsim"
)

// JobSpec declares one workload job. The engine turns it into an HTTP submit
// against the in-world gateway.
type JobSpec struct {
	// Kind is "segment" (ref-mode segmentation over a seeded volume the
	// engine uploads), "pipeline" (synth-driven slab pipeline exercising
	// intermediate pin/unpin traffic), or "train_dist" (checkpointing
	// data-parallel training over the same seeded volume).
	Kind string `json:"kind"`
	// Site pins placement to one fabric site ("" = anywhere).
	Site string `json:"site,omitempty"`
	// Deferred jobs are not submitted at scenario start; an explicit
	// "submit" event injects them mid-script (e.g. into a partitioned
	// fabric). The undisturbed baseline run submits them normally.
	Deferred bool `json:"deferred,omitempty"`
	// ResumePrev (train_dist only) makes the submit wait for the previous
	// job to succeed and resume from its final checkpoint ref — in the
	// disturbed and baseline worlds alike, so the continued loss curves can
	// be compared bit-for-bit.
	ResumePrev bool `json:"resume_prev,omitempty"`
}

// Action kinds understood by the event interpreter.
const (
	// Fault injection.
	ActKillNode    = "kill_node"    // Node ("" = the node job Job is bound to)
	ActRestoreNode = "restore_node" // Node ("" = last killed)
	ActFailOSD     = "fail_osd"     // OSD
	ActRecoverOSD  = "recover_osd"  // OSD
	ActPartition   = "partition"    // Site: down every WAN link touching it
	ActHeal        = "heal"         // Site: restore them
	ActSetLink     = "link"         // LinkA/LinkB + Capacity/Loss/Down
	ActLinkTrace   = "link_trace"   // LinkA/LinkB + Trace (virtual times)
	ActPanicNext   = "panic_next"   // Count handler executions panic
	ActHoldNext    = "hold_next"    // Count handler executions block
	ActRelease     = "release"      // release all held executions

	// Synchronization: make fault timing deterministic relative to job
	// lifecycles regardless of wall-clock scheduling.
	ActAwaitHold   = "await_hold"   // wait until a held execution is parked
	ActAwaitParked = "await_parked" // wait until job Job is queued & unbound
	ActAwaitBound  = "await_bound"  // wait until job Job is bound to a node
	ActAwaitDone   = "await_done"   // wait until job Job is terminal
	ActSubmit      = "submit"       // submit deferred job Job now

	// Measurement: drive a bulk transfer through the fluid-flow model in
	// virtual time (link traces fire along the way).
	ActTransfer = "transfer" // LinkA -> LinkB sites, Bytes, MinElapsed/MaxElapsed
)

// Action is one scripted disturbance or synchronization point. Flat and
// JSON-able so scripts can live in files.
type Action struct {
	Kind string `json:"kind"`

	Node string `json:"node,omitempty"`
	OSD  string `json:"osd,omitempty"`
	Site string `json:"site,omitempty"`

	LinkA       string        `json:"link_a,omitempty"`
	LinkB       string        `json:"link_b,omitempty"`
	CapacityBps float64       `json:"capacity_bps,omitempty"`
	Loss        float64       `json:"loss,omitempty"`
	Down        bool          `json:"down,omitempty"`
	Trace       []TracePoint  `json:"trace,omitempty"`
	Bytes       float64       `json:"bytes,omitempty"`
	MinElapsed  time.Duration `json:"min_elapsed,omitempty"`
	MaxElapsed  time.Duration `json:"max_elapsed,omitempty"`

	Count int `json:"count,omitempty"` // hold/panic executions
	Job   int `json:"job,omitempty"`   // workload index for await_*/kill_node
}

// TracePoint mirrors netsim.TracePoint with JSON-able fields.
type TracePoint struct {
	At          time.Duration `json:"at"`
	CapacityBps float64       `json:"capacity_bps,omitempty"`
	Loss        float64       `json:"loss,omitempty"`
	Down        *bool         `json:"down,omitempty"`
}

func (p TracePoint) netsim() netsim.TracePoint {
	var ch netsim.LinkChange
	if p.CapacityBps > 0 {
		ch.Capacity = &p.CapacityBps
	}
	if p.Loss > 0 {
		l := p.Loss
		ch.Loss = &l
	}
	if p.Down != nil {
		ch.Down = p.Down
	}
	return netsim.TracePoint{At: p.At, Change: ch}
}

// Script is one declarative scenario: a workload, an ordered event list, and
// a forward-progress deadline. Invariants are implicit — every script must
// end with all jobs succeeded, results bit-identical to an undisturbed run
// of the same workload, zero leaked pins/claims, and no stuck goroutines.
type Script struct {
	Name        string    `json:"name"`
	Description string    `json:"description"`
	Jobs        []JobSpec `json:"jobs"`
	Events      []Action  `json:"events"`
	// Deadline bounds the wall time from last event to quiescence (0 =
	// 60s). Virtual-time components (netsim transfers) are bounded by
	// their own event budgets inside RunTransfer.
	Deadline time.Duration `json:"deadline,omitempty"`
}

// Builtin returns the standard fault matrix — the ≥6 distinct scripts CI
// runs under -race on every push.
func Builtin() []Script {
	return []Script{
		{
			Name:        "osd_loss_midpipeline",
			Description: "an OSD dies while a pipeline job is in flight; reads degrade to the surviving replica",
			Jobs:        []JobSpec{{Kind: "pipeline", Deferred: true}, {Kind: "segment", Deferred: true}},
			Events: []Action{
				{Kind: ActHoldNext, Count: 1},
				{Kind: ActSubmit, Job: 0},
				{Kind: ActSubmit, Job: 1},
				{Kind: ActAwaitHold},
				{Kind: ActFailOSD, OSD: "osd-ucsd"},
				{Kind: ActRelease},
				{Kind: ActRecoverOSD, OSD: "osd-ucsd"},
			},
		},
		{
			Name:        "node_kill_midjob",
			Description: "the node running a job is killed; the job requeues onto the surviving replica holder bit-exactly",
			Jobs:        []JobSpec{{Kind: "segment", Deferred: true}},
			Events: []Action{
				{Kind: ActHoldNext, Count: 1},
				{Kind: ActSubmit, Job: 0},
				{Kind: ActAwaitHold},
				{Kind: ActKillNode, Job: 0}, // kill whatever node job 0 is on
				{Kind: ActRestoreNode},
			},
		},
		{
			Name:        "partition_heal",
			Description: "a site is partitioned from the fabric; jobs pinned there park and complete after heal",
			Jobs:        []JobSpec{{Kind: "segment", Site: "uci", Deferred: true}, {Kind: "segment"}},
			Events: []Action{
				{Kind: ActPartition, Site: "uci"},
				{Kind: ActSubmit, Job: 0},
				{Kind: ActAwaitParked, Job: 0},
				{Kind: ActHeal, Site: "uci"},
				{Kind: ActAwaitBound, Job: 0},
			},
		},
		{
			Name:        "wan_loss",
			Description: "50% loss on a WAN link halves its effective capacity; transfers stretch, results stay exact",
			Jobs:        []JobSpec{{Kind: "segment"}, {Kind: "pipeline"}},
			Events: []Action{
				{Kind: ActSetLink, LinkA: "ucsd", LinkB: "uci", Loss: 0.5},
				// 10 Gbps nominal, 5 Gbps effective: 5e9 bytes take ≥ 8s
				// virtual where the clean link would take 4s.
				{Kind: ActTransfer, LinkA: "ucsd", LinkB: "uci", Bytes: 5e9,
					MinElapsed: 7 * time.Second},
				{Kind: ActSetLink, LinkA: "ucsd", LinkB: "uci", Loss: 0},
			},
		},
		{
			Name:        "bandwidth_collapse",
			Description: "a recorded trace collapses a link to 1% mid-transfer and restores it; virtual elapsed reflects the dip exactly",
			Jobs:        []JobSpec{{Kind: "segment"}},
			Events: []Action{
				{Kind: ActLinkTrace, LinkA: "ucsd", LinkB: "sdsu", Trace: []TracePoint{
					{At: 500 * time.Millisecond, CapacityBps: netsim.Gbps(40) / 100},
					{At: 2500 * time.Millisecond, CapacityBps: netsim.Gbps(40)},
				}},
				// 40 Gbps x 1s of bytes: clean ≈ 1s; through the collapse the
				// flow limps for 2s at 1%, finishing ≈ 2.98s + latency.
				{Kind: ActTransfer, LinkA: "ucsd", LinkB: "sdsu", Bytes: netsim.Gbps(40),
					MinElapsed: 2900 * time.Millisecond, MaxElapsed: 3100 * time.Millisecond},
			},
		},
		{
			Name:        "worker_panic",
			Description: "a worker panics mid-job twice; the transient-retry loop re-runs it to a bit-exact result",
			Jobs:        []JobSpec{{Kind: "segment", Deferred: true}, {Kind: "pipeline", Deferred: true}},
			Events: []Action{
				{Kind: ActPanicNext, Count: 2},
				{Kind: ActSubmit, Job: 0},
				{Kind: ActSubmit, Job: 1},
			},
		},
		{
			Name:        "traindist_ckpt_resume",
			Description: "a training worker's node dies mid-epoch; the requeued run and a checkpoint-resumed follow-on stay bit-exact under OSD loss",
			Jobs: []JobSpec{
				{Kind: "train_dist", Deferred: true},
				{Kind: "train_dist", Deferred: true, ResumePrev: true},
			},
			Events: []Action{
				{Kind: ActHoldNext, Count: 1},
				{Kind: ActSubmit, Job: 0},
				{Kind: ActAwaitHold},
				{Kind: ActKillNode, Job: 0}, // kill the node training job 0
				{Kind: ActRestoreNode},
				{Kind: ActAwaitDone, Job: 0}, // requeued run writes the final checkpoint
				{Kind: ActHoldNext, Count: 1},
				{Kind: ActSubmit, Job: 1}, // resumes from job 0's checkpoint ref
				{Kind: ActAwaitHold},
				{Kind: ActFailOSD, OSD: "osd-ucsd"},
				{Kind: ActRelease}, // resume must read the checkpoint degraded
				{Kind: ActRecoverOSD, OSD: "osd-ucsd"},
			},
		},
		{
			Name:        "skew_cascade",
			Description: "slow-start cascade: latency and capacity degrade in steps across two links, then recover",
			Jobs:        []JobSpec{{Kind: "segment"}, {Kind: "segment"}},
			Events: []Action{
				{Kind: ActLinkTrace, LinkA: "ucsd", LinkB: "uci", Trace: []TracePoint{
					{At: 200 * time.Millisecond, CapacityBps: netsim.Gbps(10) / 4},
					{At: 1200 * time.Millisecond, CapacityBps: netsim.Gbps(10) / 20},
					{At: 2200 * time.Millisecond, CapacityBps: netsim.Gbps(10)},
				}},
				{Kind: ActSetLink, LinkA: "sdsu", LinkB: "uci", Loss: 0.25},
				{Kind: ActTransfer, LinkA: "ucsd", LinkB: "uci", Bytes: 2.5e9,
					MinElapsed: 2 * time.Second},
				{Kind: ActSetLink, LinkA: "sdsu", LinkB: "uci", Loss: 0},
			},
		},
	}
}

// Lookup returns the builtin script with the given name.
func Lookup(name string) (Script, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Script{}, fmt.Errorf("scenario: unknown script %q", name)
}
