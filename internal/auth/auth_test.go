package auth

import (
	"errors"
	"testing"
	"time"

	"chaseci/internal/sim"
)

func newFed() (*sim.Clock, *Federation) {
	clk := sim.NewClock()
	f := NewFederation(clk, time.Hour, 1)
	f.RegisterProvider("UCSD SSO", "ucsd.edu")
	f.RegisterProvider("UC Merced SSO", "ucmerced.edu")
	return clk, f
}

func TestLoginAndValidate(t *testing.T) {
	_, f := newFed()
	tok, err := f.Login("ialtintas@ucsd.edu")
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Validate(tok)
	if err != nil {
		t.Fatal(err)
	}
	if id.User != "ialtintas@ucsd.edu" || id.Provider != "UCSD SSO" {
		t.Fatalf("identity = %+v", id)
	}
}

func TestLoginUnknownProvider(t *testing.T) {
	_, f := newFed()
	if _, err := f.Login("x@nowhere.org"); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("err = %v, want ErrUnknownProvider", err)
	}
}

func TestLoginMalformedIdentity(t *testing.T) {
	_, f := newFed()
	for _, bad := range []string{"", "nodomain", "@ucsd.edu", "user@"} {
		if _, err := f.Login(bad); !errors.Is(err, ErrBadIdentity) && !errors.Is(err, ErrUnknownProvider) {
			t.Fatalf("Login(%q) err = %v", bad, err)
		}
	}
}

func TestTokenExpiry(t *testing.T) {
	clk, f := newFed()
	tok, _ := f.Login("user@ucsd.edu")
	clk.RunUntil(59 * time.Minute)
	if _, err := f.Validate(tok); err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
	clk.RunUntil(61 * time.Minute)
	if _, err := f.Validate(tok); !errors.Is(err, ErrExpiredToken) {
		t.Fatalf("err = %v, want ErrExpiredToken", err)
	}
}

func TestRevoke(t *testing.T) {
	_, f := newFed()
	tok, _ := f.Login("user@ucsd.edu")
	f.Revoke(tok)
	if _, err := f.Validate(tok); !errors.Is(err, ErrBadToken) {
		t.Fatalf("err = %v, want ErrBadToken", err)
	}
}

func TestBadToken(t *testing.T) {
	_, f := newFed()
	if _, err := f.Validate("tok-forged"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("err = %v, want ErrBadToken", err)
	}
}

func TestTokensUnique(t *testing.T) {
	_, f := newFed()
	seen := map[Token]bool{}
	for i := 0; i < 100; i++ {
		tok, err := f.Login("user@ucsd.edu")
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok] {
			t.Fatal("token reuse")
		}
		seen[tok] = true
	}
}

func TestProvidersSorted(t *testing.T) {
	_, f := newFed()
	ps := f.Providers()
	if len(ps) != 2 || ps[0].Domain != "ucmerced.edu" || ps[1].Domain != "ucsd.edu" {
		t.Fatalf("providers = %v", ps)
	}
}

func TestDomainCaseInsensitive(t *testing.T) {
	_, f := newFed()
	if _, err := f.Login("user@UCSD.EDU"); err != nil {
		t.Fatalf("uppercase domain rejected: %v", err)
	}
}
