// Package auth simulates the CILogon federated authentication layer of
// Section IV: users "log on and claim their identity" through one of
// thousands of campus identity providers rather than creating new accounts,
// and namespace administrators then add authenticated users to their virtual
// clusters. Tokens are opaque, expiring bearer credentials issued against a
// registered provider.
package auth

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"chaseci/internal/sim"
)

// Errors returned by the federation.
var (
	ErrUnknownProvider = errors.New("auth: identity provider not registered")
	ErrBadIdentity     = errors.New("auth: identity does not belong to provider domain")
	ErrBadToken        = errors.New("auth: unknown or malformed token")
	ErrExpiredToken    = errors.New("auth: token expired")
)

// Provider is a federated identity provider (a campus SSO endpoint).
type Provider struct {
	Name   string
	Domain string // email domain it vouches for, e.g. "ucsd.edu"
}

// Identity is a claimed, authenticated identity.
type Identity struct {
	User     string // full identity, e.g. "ialtintas@ucsd.edu"
	Provider string
	IssuedAt time.Duration
}

// Token is an opaque bearer credential.
type Token string

// Federation is the CILogon stand-in: a provider registry plus token
// issuance and validation in virtual time.
type Federation struct {
	clock *sim.Clock
	rng   *sim.RNG
	ttl   time.Duration

	providers map[string]Provider // by domain
	tokens    map[Token]Identity
	expiry    map[Token]time.Duration
}

// NewFederation creates a federation whose tokens live for ttl.
func NewFederation(clock *sim.Clock, ttl time.Duration, seed uint64) *Federation {
	if ttl <= 0 {
		ttl = 12 * time.Hour
	}
	return &Federation{
		clock:     clock,
		rng:       sim.NewRNG(seed),
		ttl:       ttl,
		providers: make(map[string]Provider),
		tokens:    make(map[Token]Identity),
		expiry:    make(map[Token]time.Duration),
	}
}

// RegisterProvider adds an identity provider. Duplicate domains overwrite,
// as a campus re-registering its endpoint would.
func (f *Federation) RegisterProvider(name, domain string) Provider {
	p := Provider{Name: name, Domain: strings.ToLower(domain)}
	f.providers[p.Domain] = p
	return p
}

// Providers lists registered providers sorted by domain.
func (f *Federation) Providers() []Provider {
	out := make([]Provider, 0, len(f.providers))
	for _, p := range f.providers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Login authenticates user (an email-style identity) against its domain's
// provider and returns a bearer token. Users claim existing identities; no
// account creation happens here, mirroring CILogon's model.
func (f *Federation) Login(user string) (Token, error) {
	at := strings.LastIndexByte(user, '@')
	if at <= 0 || at == len(user)-1 {
		return "", fmt.Errorf("%w: %q", ErrBadIdentity, user)
	}
	domain := strings.ToLower(user[at+1:])
	p, ok := f.providers[domain]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownProvider, domain)
	}
	tok := Token(fmt.Sprintf("tok-%016x%016x", f.rng.Uint64(), f.rng.Uint64()))
	f.tokens[tok] = Identity{User: user, Provider: p.Name, IssuedAt: f.clock.Now()}
	f.expiry[tok] = f.clock.Now() + f.ttl
	return tok, nil
}

// Validate resolves a token to its identity, rejecting unknown and expired
// tokens.
func (f *Federation) Validate(tok Token) (Identity, error) {
	id, ok := f.tokens[tok]
	if !ok {
		return Identity{}, ErrBadToken
	}
	if f.clock.Now() >= f.expiry[tok] {
		return Identity{}, ErrExpiredToken
	}
	return id, nil
}

// Revoke invalidates a token immediately.
func (f *Federation) Revoke(tok Token) {
	delete(f.tokens, tok)
	delete(f.expiry, tok)
}
