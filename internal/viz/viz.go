// Package viz is the workflow's step 4: result inspection. In the paper this
// is a JupyterLab notebook (and, in related work, the SunCAVE wall) reading
// results straight from the Ceph Object Store; here it renders segmentation
// masks and IVT fields as PGM/PPM images, ASCII previews, and object
// statistics reports, all pure stdlib.
package viz

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"chaseci/internal/connect"
	"chaseci/internal/ffn"
)

// RenderPGM encodes a single (H x W) float32 slice as a binary PGM (P5)
// grayscale image, auto-scaled to the slice's value range.
func RenderPGM(data []float32, h, w int) []byte {
	if len(data) != h*w {
		panic(fmt.Sprintf("viz: RenderPGM got %d values for %dx%d", len(data), h, w))
	}
	lo, hi := minMax(data)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n255\n", w, h)
	for _, v := range data {
		buf.WriteByte(byte((v - lo) / span * 255))
	}
	return buf.Bytes()
}

// RenderOverlayPPM encodes an image slice with a mask overlay as a binary
// PPM (P6): grayscale background, masked voxels in red.
func RenderOverlayPPM(image, mask []float32, h, w int) []byte {
	if len(image) != h*w || len(mask) != h*w {
		panic("viz: RenderOverlayPPM size mismatch")
	}
	lo, hi := minMax(image)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P6\n%d %d\n255\n", w, h)
	for i, v := range image {
		g := byte((v - lo) / span * 255)
		if mask[i] > 0.5 {
			buf.Write([]byte{255, g / 2, g / 2})
		} else {
			buf.Write([]byte{g, g, g})
		}
	}
	return buf.Bytes()
}

func minMax(data []float32) (lo, hi float32) {
	if len(data) == 0 {
		return 0, 0
	}
	lo, hi = data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// ASCIISlice renders an (H x W) slice as characters by intensity, downscaled
// to at most maxCols columns — the terminal "notebook preview".
func ASCIISlice(data []float32, h, w, maxCols int) string {
	if maxCols <= 0 {
		maxCols = 72
	}
	scale := 1
	for w/scale > maxCols {
		scale++
	}
	ramp := []byte(" .:-=+*#%@")
	lo, hi := minMax(data)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for y := 0; y < h; y += scale * 2 { // characters are ~2x taller than wide
		for x := 0; x < w; x += scale {
			// Mean over the cell.
			var sum float32
			n := 0
			for yy := y; yy < y+scale*2 && yy < h; yy++ {
				for xx := x; xx < x+scale && xx < w; xx++ {
					sum += data[yy*w+xx]
					n++
				}
			}
			v := (sum/float32(n) - lo) / span
			idx := int(v * float32(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ObjectReport renders CONNECT object statistics as the post-processing
// table a notebook cell would show: per-object life cycle plus aggregates.
func ObjectReport(r *connect.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %10s %24s\n",
		"id", "voxels", "genesis", "term", "peak-area", "genesis-centroid(y,x)")
	objs := append([]*connect.Object(nil), r.Objects...)
	sort.Slice(objs, func(i, j int) bool { return objs[i].Voxels > objs[j].Voxels })
	for _, o := range objs {
		cy, cx := 0.0, 0.0
		if len(o.Pathway) > 0 {
			cy, cx = o.Pathway[0][0], o.Pathway[0][1]
		}
		fmt.Fprintf(&b, "%-6d %8d %8d %8d %10d %12.1f,%9.1f\n",
			o.ID, o.Voxels, o.Genesis, o.Termination, o.PeakArea, cy, cx)
	}
	s := connect.Summarize(r)
	fmt.Fprintf(&b, "\n%d objects, %d voxels total, mean duration %.1f steps, max %d steps\n",
		s.Objects, s.TotalVoxels, s.MeanDuration, s.MaxDuration)
	return b.String()
}

// SegmentationReport compares an FFN mask against reference labels — the
// validation cell of the step 4 notebook.
func SegmentationReport(pred, truth *ffn.Volume) string {
	prec, rec := ffn.PrecisionRecall(pred, truth)
	iou := ffn.IoU(pred, truth)
	f1 := 0.0
	if prec+rec > 0 {
		f1 = 2 * prec * rec / (prec + rec)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "segmentation vs reference labels\n")
	fmt.Fprintf(&b, "  precision: %.3f\n  recall:    %.3f\n  F1:        %.3f\n  IoU:       %.3f\n",
		prec, rec, f1, iou)
	return b.String()
}

// VolumeSlice extracts time-step z of an ffn.Volume as a flat H*W slice.
func VolumeSlice(v *ffn.Volume, z int) []float32 {
	if z < 0 || z >= v.D {
		panic(fmt.Sprintf("viz: slice %d out of range [0,%d)", z, v.D))
	}
	return v.Data[z*v.H*v.W : (z+1)*v.H*v.W]
}
