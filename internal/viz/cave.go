package viz

import (
	"bytes"
	"fmt"
)

// Tiled-wall rendering for the SunCAVE path (Section III-E4: "displaying the
// results on a large scale visualization system that runs on Nautilus, such
// as the SunCAVE"; Section VII: driving displays from 11 remote GPU nodes).
// A field is split into a grid of tiles, each rendered independently (in the
// cluster, by its own labeled GPU pod) and reassembled into the wall image.

// Tile is one rendered wall segment.
type Tile struct {
	Row, Col int
	H, W     int
	Pixels   []byte // grayscale, H*W
}

// TileGrid describes the wall: Rows x Cols tiles over an H x W field.
type TileGrid struct {
	Rows, Cols int
	H, W       int
}

// Bounds returns the pixel rectangle [y0,y1) x [x0,x1) of tile (r, c); edge
// tiles absorb the remainder.
func (g TileGrid) Bounds(r, c int) (y0, y1, x0, x1 int) {
	if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
		panic(fmt.Sprintf("viz: tile (%d,%d) outside %dx%d grid", r, c, g.Rows, g.Cols))
	}
	th, tw := g.H/g.Rows, g.W/g.Cols
	y0, x0 = r*th, c*tw
	y1, x1 = y0+th, x0+tw
	if r == g.Rows-1 {
		y1 = g.H
	}
	if c == g.Cols-1 {
		x1 = g.W
	}
	return y0, y1, x0, x1
}

// RenderTile rasterizes one tile of a float32 field with the given global
// value range (all tiles must share the range or seams appear).
func RenderTile(data []float32, g TileGrid, r, c int, lo, hi float32) Tile {
	if len(data) != g.H*g.W {
		panic(fmt.Sprintf("viz: RenderTile got %d values for %dx%d", len(data), g.H, g.W))
	}
	y0, y1, x0, x1 := g.Bounds(r, c)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	t := Tile{Row: r, Col: c, H: y1 - y0, W: x1 - x0}
	t.Pixels = make([]byte, t.H*t.W)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			t.Pixels[(y-y0)*t.W+(x-x0)] = byte((data[y*g.W+x] - lo) / span * 255)
		}
	}
	return t
}

// AssembleWall stitches tiles back into a full-wall PGM image. It errors if
// any tile is missing or misshapen — a lost render pod must be visible, not
// silently black.
func AssembleWall(g TileGrid, tiles []Tile) ([]byte, error) {
	seen := make(map[[2]int]bool)
	canvas := make([]byte, g.H*g.W)
	for _, t := range tiles {
		y0, y1, x0, x1 := g.Bounds(t.Row, t.Col)
		if t.H != y1-y0 || t.W != x1-x0 {
			return nil, fmt.Errorf("viz: tile (%d,%d) is %dx%d, want %dx%d",
				t.Row, t.Col, t.H, t.W, y1-y0, x1-x0)
		}
		if seen[[2]int{t.Row, t.Col}] {
			return nil, fmt.Errorf("viz: duplicate tile (%d,%d)", t.Row, t.Col)
		}
		seen[[2]int{t.Row, t.Col}] = true
		for y := 0; y < t.H; y++ {
			copy(canvas[(y0+y)*g.W+x0:(y0+y)*g.W+x1], t.Pixels[y*t.W:(y+1)*t.W])
		}
	}
	if len(seen) != g.Rows*g.Cols {
		return nil, fmt.Errorf("viz: assembled %d/%d tiles", len(seen), g.Rows*g.Cols)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n255\n", g.W, g.H)
	buf.Write(canvas)
	return buf.Bytes(), nil
}
