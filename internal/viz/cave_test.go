package viz

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTileGridBoundsCoverField(t *testing.T) {
	g := TileGrid{Rows: 3, Cols: 4, H: 25, W: 37} // uneven splits
	covered := make([]int, g.H*g.W)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			y0, y1, x0, x1 := g.Bounds(r, c)
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					covered[y*g.W+x]++
				}
			}
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("pixel %d covered %d times", i, n)
		}
	}
}

func TestTileGridBoundsPanicsOutOfRange(t *testing.T) {
	g := TileGrid{Rows: 2, Cols: 2, H: 10, W: 10}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range tile did not panic")
		}
	}()
	g.Bounds(2, 0)
}

func fieldFor(g TileGrid) []float32 {
	data := make([]float32, g.H*g.W)
	for i := range data {
		data[i] = float32(i % 251)
	}
	return data
}

func TestAssembleMatchesDirectRender(t *testing.T) {
	g := TileGrid{Rows: 2, Cols: 3, H: 20, W: 33}
	data := fieldFor(g)
	var tiles []Tile
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			tiles = append(tiles, RenderTile(data, g, r, c, 0, 250))
		}
	}
	wall, err := AssembleWall(g, tiles)
	if err != nil {
		t.Fatal(err)
	}
	// Direct render of the same field with the same range.
	direct := make([]byte, g.H*g.W)
	for i, v := range data {
		direct[i] = byte(v / 250 * 255)
	}
	header := []byte("P5\n33 20\n255\n")
	if !bytes.HasPrefix(wall, header) {
		t.Fatalf("wall header = %q", wall[:len(header)])
	}
	if !bytes.Equal(wall[len(header):], direct) {
		t.Fatal("tiled assembly differs from direct render — seams present")
	}
}

func TestAssembleMissingTile(t *testing.T) {
	g := TileGrid{Rows: 2, Cols: 2, H: 10, W: 10}
	data := fieldFor(g)
	tiles := []Tile{
		RenderTile(data, g, 0, 0, 0, 250),
		RenderTile(data, g, 0, 1, 0, 250),
		RenderTile(data, g, 1, 0, 0, 250),
		// (1,1) missing: a lost render pod
	}
	if _, err := AssembleWall(g, tiles); err == nil {
		t.Fatal("missing tile not detected")
	}
}

func TestAssembleDuplicateTile(t *testing.T) {
	g := TileGrid{Rows: 1, Cols: 2, H: 4, W: 8}
	data := fieldFor(g)
	a := RenderTile(data, g, 0, 0, 0, 250)
	if _, err := AssembleWall(g, []Tile{a, a}); err == nil {
		t.Fatal("duplicate tile not detected")
	}
}

func TestAssembleMisshapenTile(t *testing.T) {
	g := TileGrid{Rows: 1, Cols: 2, H: 4, W: 8}
	data := fieldFor(g)
	a := RenderTile(data, g, 0, 0, 0, 250)
	b := RenderTile(data, g, 0, 1, 0, 250)
	b.W++ // corrupt
	if _, err := AssembleWall(g, []Tile{a, b}); err == nil {
		t.Fatal("misshapen tile not detected")
	}
}

func TestPropertyTilingLossless(t *testing.T) {
	// For any grid shape, render-tiles + assemble == direct scaling.
	f := func(rowsRaw, colsRaw, hRaw, wRaw uint8) bool {
		rows := int(rowsRaw%4) + 1
		cols := int(colsRaw%4) + 1
		h := int(hRaw%20) + rows
		w := int(wRaw%20) + cols
		g := TileGrid{Rows: rows, Cols: cols, H: h, W: w}
		data := fieldFor(g)
		var tiles []Tile
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				tiles = append(tiles, RenderTile(data, g, r, c, 0, 250))
			}
		}
		wall, err := AssembleWall(g, tiles)
		if err != nil {
			return false
		}
		// Wall payload must reproduce every pixel.
		idx := bytes.IndexByte(wall, '\n')
		idx += bytes.IndexByte(wall[idx+1:], '\n') + 1
		idx += bytes.IndexByte(wall[idx+1:], '\n') + 2
		payload := wall[idx:]
		if len(payload) != h*w {
			return false
		}
		for i, v := range data {
			if payload[i] != byte(v/250*255) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
