package viz

import (
	"bytes"
	"strings"
	"testing"

	"chaseci/internal/connect"
	"chaseci/internal/ffn"
)

func TestRenderPGMHeaderAndSize(t *testing.T) {
	data := make([]float32, 6)
	for i := range data {
		data[i] = float32(i)
	}
	img := RenderPGM(data, 2, 3)
	if !bytes.HasPrefix(img, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("header = %q", img[:12])
	}
	payload := img[len("P5\n3 2\n255\n"):]
	if len(payload) != 6 {
		t.Fatalf("payload = %d bytes, want 6", len(payload))
	}
	if payload[0] != 0 || payload[5] != 255 {
		t.Fatalf("scaling wrong: first=%d last=%d", payload[0], payload[5])
	}
}

func TestRenderPGMConstantField(t *testing.T) {
	img := RenderPGM(make([]float32, 4), 2, 2)
	if len(img) == 0 {
		t.Fatal("constant field render failed")
	}
}

func TestRenderPGMSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	RenderPGM(make([]float32, 5), 2, 3)
}

func TestRenderOverlayPPMMarksMask(t *testing.T) {
	image := []float32{0, 0, 0, 0}
	mask := []float32{0, 1, 0, 0}
	img := RenderOverlayPPM(image, mask, 2, 2)
	header := "P6\n2 2\n255\n"
	if !bytes.HasPrefix(img, []byte(header)) {
		t.Fatalf("header = %q", img[:len(header)])
	}
	px := img[len(header):]
	// Pixel 1 must be red-dominated.
	if px[3] != 255 {
		t.Fatalf("masked pixel R = %d, want 255", px[3])
	}
	// Pixel 0 must be gray (R==G==B).
	if px[0] != px[1] || px[1] != px[2] {
		t.Fatalf("unmasked pixel not gray: %v", px[:3])
	}
}

func TestASCIISliceShape(t *testing.T) {
	data := make([]float32, 16*64)
	for i := range data {
		data[i] = float32(i % 64)
	}
	out := ASCIISlice(data, 16, 64, 32)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines {
		if len(l) > 32 {
			t.Fatalf("line width %d exceeds 32", len(l))
		}
	}
	if !strings.ContainsAny(out, ".:-=+*#%@") {
		t.Fatal("ascii render has no intensity variation")
	}
}

func TestObjectReportListsObjects(t *testing.T) {
	v := connect.NewVolume(3, 4, 4)
	v.Set(0, 1, 1)
	v.Set(1, 1, 1)
	v.Set(0, 3, 3)
	r := connect.Label(v, connect.Conn26, 0)
	out := ObjectReport(r)
	if !strings.Contains(out, "2 objects") {
		t.Fatalf("report:\n%s", out)
	}
	if !strings.Contains(out, "genesis") {
		t.Fatal("missing header")
	}
}

func TestSegmentationReportValues(t *testing.T) {
	pred, truth := ffn.NewVolume(1, 1, 4), ffn.NewVolume(1, 1, 4)
	pred.Data = []float32{1, 1, 0, 0}
	truth.Data = []float32{1, 0, 1, 0}
	out := SegmentationReport(pred, truth)
	if !strings.Contains(out, "precision: 0.500") || !strings.Contains(out, "IoU:       0.333") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestVolumeSlice(t *testing.T) {
	v := ffn.NewVolume(2, 2, 2)
	for i := range v.Data {
		v.Data[i] = float32(i)
	}
	s := VolumeSlice(v, 1)
	if len(s) != 4 || s[0] != 4 {
		t.Fatalf("slice = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	VolumeSlice(v, 5)
}
