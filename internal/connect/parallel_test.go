package connect

import (
	"fmt"
	"sort"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

// labelSerialReference is the seed repository's original single-goroutine
// implementation (voxel-level union-find plus map-based statistics), kept
// verbatim as the ground truth for the block-parallel rewrite.
func labelSerialReference(v *Volume, conn Connectivity, minVoxels int) *Result {
	n := v.T * v.H * v.W
	uf := newUnionFind(n)
	idx := func(t, y, x int) int32 { return int32((t*v.H+y)*v.W + x) }
	offs := neighborOffsets(conn)

	for t := 0; t < v.T; t++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if !v.At(t, y, x) {
					continue
				}
				me := idx(t, y, x)
				for _, o := range offs {
					nt, ny, nx := t+o[0], y+o[1], x+o[2]
					if nt < 0 || ny < 0 || ny >= v.H || nx < 0 || nx >= v.W {
						continue
					}
					if v.At(nt, ny, nx) {
						uf.union(me, idx(nt, ny, nx))
					}
				}
			}
		}
	}

	res := &Result{Labels: make([]int32, n), T: v.T, H: v.H, W: v.W}
	rootID := make(map[int32]int32)
	type acc struct {
		voxels               int
		genesis, termination int
		bbox                 [6]int
		perStepCount         map[int]int
		perStepSumY          map[int]float64
		perStepSumX          map[int]float64
	}
	accs := make(map[int32]*acc)
	var order []int32 // roots in first-voxel scan order, for a stable sort

	for t := 0; t < v.T; t++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if !v.At(t, y, x) {
					continue
				}
				root := uf.find(idx(t, y, x))
				a, ok := accs[root]
				if !ok {
					a = &acc{
						genesis: t, termination: t,
						bbox:         [6]int{t, t, y, y, x, x},
						perStepCount: make(map[int]int),
						perStepSumY:  make(map[int]float64),
						perStepSumX:  make(map[int]float64),
					}
					accs[root] = a
					order = append(order, root)
				}
				a.voxels++
				if t > a.termination {
					a.termination = t
				}
				a.bbox[0] = min(a.bbox[0], t)
				a.bbox[1] = max(a.bbox[1], t)
				a.bbox[2] = min(a.bbox[2], y)
				a.bbox[3] = max(a.bbox[3], y)
				a.bbox[4] = min(a.bbox[4], x)
				a.bbox[5] = max(a.bbox[5], x)
				a.perStepCount[t]++
				a.perStepSumY[t] += float64(y)
				a.perStepSumX[t] += float64(x)
			}
		}
	}

	sort.SliceStable(order, func(i, j int) bool {
		a, b := accs[order[i]], accs[order[j]]
		if a.genesis != b.genesis {
			return a.genesis < b.genesis
		}
		if a.voxels != b.voxels {
			return a.voxels > b.voxels
		}
		return a.bbox != b.bbox && lessBBox(a.bbox, b.bbox)
	})

	nextID := int32(1)
	for _, root := range order {
		a := accs[root]
		if a.voxels < minVoxels {
			continue
		}
		rootID[root] = nextID
		obj := &Object{
			ID:      int(nextID),
			Voxels:  a.voxels,
			Genesis: a.genesis, Termination: a.termination,
			BBox: a.bbox,
		}
		var lastY, lastX float64
		for t := a.genesis; t <= a.termination; t++ {
			if c := a.perStepCount[t]; c > 0 {
				lastY = a.perStepSumY[t] / float64(c)
				lastX = a.perStepSumX[t] / float64(c)
				if c > obj.PeakArea {
					obj.PeakArea = c
				}
			}
			obj.Pathway = append(obj.Pathway, [2]float64{lastY, lastX})
		}
		res.Objects = append(res.Objects, obj)
		nextID++
	}

	for t := 0; t < v.T; t++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if !v.At(t, y, x) {
					continue
				}
				if id, ok := rootID[uf.find(idx(t, y, x))]; ok {
					res.Labels[(t*v.H+y)*v.W+x] = id
				}
			}
		}
	}
	return res
}

func randomMask(seed uint64, t, h, w int, density float64) *Volume {
	rng := sim.NewRNG(seed)
	v := NewVolume(t, h, w)
	for i := range v.Data {
		if rng.Float64() < density {
			v.Data[i] = 1
		}
	}
	return v
}

func requireSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Objects) != len(want.Objects) {
		t.Fatalf("object count: got %d, want %d", len(got.Objects), len(want.Objects))
	}
	for i, o := range got.Objects {
		r := want.Objects[i]
		if o.ID != r.ID || o.Voxels != r.Voxels || o.Genesis != r.Genesis ||
			o.Termination != r.Termination || o.BBox != r.BBox || o.PeakArea != r.PeakArea {
			t.Fatalf("object %d: got %+v, want %+v", i, o, r)
		}
		if len(o.Pathway) != len(r.Pathway) {
			t.Fatalf("object %d pathway length: got %d, want %d", i, len(o.Pathway), len(r.Pathway))
		}
		for s := range o.Pathway {
			if o.Pathway[s] != r.Pathway[s] {
				t.Fatalf("object %d pathway step %d: got %v, want %v", i, s, o.Pathway[s], r.Pathway[s])
			}
		}
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label voxel %d: got %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
}

// TestLabelBlockParallelMatchesSerial sweeps shapes, densities,
// connectivities, pruning thresholds, and worker counts, requiring the
// block-parallel labelling to reproduce the original serial implementation
// exactly: same labels, same objects, same life cycles.
func TestLabelBlockParallelMatchesSerial(t *testing.T) {
	shapes := [][3]int{{1, 5, 7}, {4, 9, 8}, {7, 16, 15}, {16, 12, 11}}
	for si, shape := range shapes {
		for _, density := range []float64{0.05, 0.2, 0.55} {
			v := randomMask(uint64(si)*31+uint64(density*100), shape[0], shape[1], shape[2], density)
			for _, conn := range []Connectivity{Conn6, Conn26} {
				for _, minVoxels := range []int{0, 4} {
					want := labelSerialReference(v, conn, minVoxels)
					for _, workers := range []int{1, 2, 8} {
						name := fmt.Sprintf("shape=%v/density=%v/conn=%d/min=%d/workers=%d",
							shape, density, conn, minVoxels, workers)
						t.Run(name, func(t *testing.T) {
							prev := parallel.SetWorkers(workers)
							defer parallel.SetWorkers(prev)
							requireSameResult(t, Label(v, conn, minVoxels), want)
						})
					}
				}
			}
		}
	}
}

// TestLabelSolidAndEmpty covers the degenerate extremes at several worker
// counts.
func TestLabelSolidAndEmpty(t *testing.T) {
	for _, workers := range []int{1, 8} {
		prev := parallel.SetWorkers(workers)
		empty := NewVolume(3, 4, 5)
		if res := Label(empty, Conn26, 0); len(res.Objects) != 0 {
			t.Fatalf("workers=%d: empty volume produced %d objects", workers, len(res.Objects))
		}
		solid := NewVolume(3, 4, 5)
		for i := range solid.Data {
			solid.Data[i] = 1
		}
		res := Label(solid, Conn26, 0)
		if len(res.Objects) != 1 || res.Objects[0].Voxels != 60 {
			t.Fatalf("workers=%d: solid volume labelling wrong: %+v", workers, res.Objects)
		}
		parallel.SetWorkers(prev)
	}
}
