// Package connect implements the CONNECT algorithm (Sellars et al., 2013,
// 2017): the paper's baseline for earth-science object segmentation. CONNECT
// thresholds a geophysical field (here IVT), labels the resulting binary
// voxels into CONNected objECTs across both space and time (x, y, t), and
// tracks each object's full life cycle — genesis, pathway, and termination.
// The original ran as MATLAB functions on a single CPU; this is a from-
// scratch Go implementation using union-find, serving both as the accuracy
// reference for the FFN and as the single-CPU baseline in the scaling
// benches.
package connect

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"chaseci/internal/parallel"
)

// Volume is a binary (T, H, W) mask: time-major, matching ffn.Volume layout.
type Volume struct {
	T, H, W int
	Data    []float32
}

// NewVolume allocates a zero volume.
func NewVolume(t, h, w int) *Volume {
	return &Volume{T: t, H: h, W: w, Data: make([]float32, t*h*w)}
}

// At reports whether voxel (t, y, x) is set.
func (v *Volume) At(t, y, x int) bool { return v.Data[(t*v.H+y)*v.W+x] > 0.5 }

// Set marks voxel (t, y, x).
func (v *Volume) Set(t, y, x int) { v.Data[(t*v.H+y)*v.W+x] = 1 }

// Connectivity selects the neighborhood used to join voxels.
type Connectivity int

const (
	// Conn6 joins face neighbors only (±x, ±y, ±t).
	Conn6 Connectivity = 6
	// Conn26 joins all voxels in the 3x3x3 neighborhood, the CONNECT
	// default: objects stay linked across diagonal motion between frames.
	Conn26 Connectivity = 26
)

// Object is one tracked connected object with life-cycle statistics.
type Object struct {
	ID     int
	Voxels int
	// Genesis and Termination are the first and last time steps the object
	// exists.
	Genesis, Termination int
	// Pathway holds the per-step centroid (y, x) from genesis to
	// termination; steps where the object momentarily vanishes under Conn26
	// linking keep the previous centroid.
	Pathway [][2]float64
	// PeakArea is the largest single-step voxel count.
	PeakArea int
	// BBox is the object's bounding box: [t0, t1, y0, y1, x0, x1].
	BBox [6]int
}

// Duration returns the object's lifetime in steps (inclusive).
func (o *Object) Duration() int { return o.Termination - o.Genesis + 1 }

func (o *Object) String() string {
	return fmt.Sprintf("object %d: %d voxels, t=[%d,%d], peak area %d",
		o.ID, o.Voxels, o.Genesis, o.Termination, o.PeakArea)
}

// Result is a labelled volume plus per-object statistics.
type Result struct {
	Labels  []int32 // same layout as the input volume; 0 = background
	Objects []*Object
	T, H, W int
}

// LabelAt returns the object ID at (t, y, x), 0 for background.
func (r *Result) LabelAt(t, y, x int) int32 { return r.Labels[(t*r.H+y)*r.W+x] }

// unionFind is a weighted quick-union with path compression.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// labelBufs pools Label's large per-call working arrays (union-find state
// and the root compaction table) so repeated labelling of same-sized
// volumes stops hitting the allocator.
type labelBufs struct {
	parent, size, rootSlot []int32
}

var labelBufPool = sync.Pool{New: func() any { return new(labelBufs) }}

func getLabelBufs(n int) *labelBufs {
	b := labelBufPool.Get().(*labelBufs)
	if cap(b.parent) < n {
		b.parent = make([]int32, n)
		b.size = make([]int32, n)
		b.rootSlot = make([]int32, n)
	}
	b.parent, b.size, b.rootSlot = b.parent[:n], b.size[:n], b.rootSlot[:n]
	// parent/size are initialized lazily as labels are allocated; only the
	// compaction table needs clearing.
	for i := range b.rootSlot {
		b.rootSlot[i] = 0
	}
	return b
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int32) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// neighborOffsets returns the offsets with strictly negative lexicographic
// order (already-visited voxels only), so each pair is united exactly once.
func neighborOffsets(conn Connectivity) [][3]int {
	var offs [][3]int
	switch conn {
	case Conn6:
		offs = [][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}}
	case Conn26:
		for dt := -1; dt <= 0; dt++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dt == 0 && (dy > 0 || (dy == 0 && dx >= 0)) {
						continue
					}
					offs = append(offs, [3]int{dt, dy, dx})
				}
			}
		}
	default:
		panic(fmt.Sprintf("connect: unsupported connectivity %d", conn))
	}
	return offs
}

// labelSlab assigns provisional labels to time slab [t0, t1) with a
// Rosenfeld-style raster scan: each set voxel adopts the label of any
// already-labelled backward neighbor inside the slab, allocating a fresh
// label when it has none and uniting labels only when two distinct ones
// meet. Labels are allocated from the slab-private range starting at
// nextLabel (uf entries are initialized lazily on allocation), so slabs
// touch disjoint label ranges and disjoint regions of the labels array —
// which is what makes the slab pass safe to run in parallel. Neighbor pairs
// reaching back into t0-1 are left to the caller's boundary stitch. Returns
// one past the last label allocated.
func labelSlab(ctx context.Context, v *Volume, uf *unionFind, labels []int32, conn Connectivity, t0, t1 int, nextLabel int32, tick func()) int32 {
	H, W := v.H, v.W
	data := v.Data
	for t := t0; t < t1; t++ {
		// Cooperative cancellation, checked once per time step: the caller
		// discards everything when the context is cancelled, so the slab
		// can stop with labels half-assigned.
		if ctx.Err() != nil {
			return nextLabel
		}
		withPrevT := t > t0 // t-1 pairs at the slab start are stitched later
		for y := 0; y < H; y++ {
			rowBase := (t*H + y) * W
			cur := data[rowBase:][:W]
			curLbl := labels[rowBase:][:W]
			// Backward neighbor rows: (t, y-1), and for Conn26 also
			// (t-1, y-1), (t-1, y), (t-1, y+1). For Conn6 the only
			// off-row neighbors are (t, y-1, x) and (t-1, y, x).
			var nbr [4][]int32
			nRows := 0
			diag := conn == Conn26
			if y > 0 {
				nbr[nRows] = labels[rowBase-W:][:W]
				nRows++
			}
			if withPrevT {
				pBase := ((t-1)*H + y) * W
				if diag && y > 0 {
					nbr[nRows] = labels[pBase-W:][:W]
					nRows++
				}
				nbr[nRows] = labels[pBase:][:W]
				nRows++
				if diag && y < H-1 {
					nbr[nRows] = labels[pBase+W:][:W]
					nRows++
				}
			}
			for x := 0; x < W; x++ {
				if cur[x] <= 0.5 {
					continue
				}
				var lbl int32
				if x > 0 {
					lbl = curLbl[x-1]
				}
				if diag {
					// Center-first: horizontally adjacent set voxels in any
					// one row are already left-linked, so when the center
					// probe hits, its side neighbors carry the same
					// component and need no probe.
					for r := 0; r < nRows; r++ {
						row := nbr[r]
						if l := row[x]; l != 0 {
							if lbl == 0 {
								lbl = l
							} else if l != lbl {
								uf.union(lbl, l)
							}
							continue
						}
						if x > 0 {
							if l := row[x-1]; l != 0 {
								if lbl == 0 {
									lbl = l
								} else if l != lbl {
									uf.union(lbl, l)
								}
							}
						}
						if x < W-1 {
							if l := row[x+1]; l != 0 {
								if lbl == 0 {
									lbl = l
								} else if l != lbl {
									uf.union(lbl, l)
								}
							}
						}
					}
				} else {
					for r := 0; r < nRows; r++ {
						if l := nbr[r][x]; l != 0 {
							if lbl == 0 {
								lbl = l
							} else if l != lbl {
								uf.union(lbl, l)
							}
						}
					}
				}
				if lbl == 0 {
					lbl = nextLabel
					uf.parent[lbl] = lbl
					uf.size[lbl] = 1
					nextLabel++
				}
				curLbl[x] = lbl
			}
		}
		if tick != nil {
			tick()
		}
	}
	return nextLabel
}

// labelAcc accumulates one object's statistics; per-step data is indexed by
// t - genesis (flat slices instead of the maps the original used, which
// dominated Label's runtime).
type labelAcc struct {
	voxels               int
	genesis, termination int
	bbox                 [6]int
	stepCount            []int32
	stepSumY, stepSumX   []float64
}

// Label performs connected-object labelling on a binary volume. minVoxels
// discards objects smaller than the threshold (CONNECT prunes noise
// objects); 0 keeps everything.
//
// The union pass is a two-pass block-parallel union-find: the time axis is
// split into slabs whose internal unions run concurrently (backward-looking
// offsets keep each slab's parent entries disjoint), then the slab
// boundaries are stitched serially. Components — and therefore labels,
// objects, and statistics — are identical at every worker count.
func Label(v *Volume, conn Connectivity, minVoxels int) *Result {
	res, _ := LabelCtx(context.Background(), v, conn, minVoxels, nil)
	return res
}

// LabelCtx is the context-aware Label: cancellation is checked once per
// time step inside the parallel slab scan, between passes, and per time
// step of the statistics pass, so a cancelled context stops the labelling
// within one time slice of work per worker. On cancellation it returns
// (nil, ctx.Err()) — provisional labels are meaningless half-done, so
// partial progress is reported only through the callback. progress (may be
// nil) is called with (timeStepsLabelled, v.T) as pass-1 slabs complete
// time steps; it may fire concurrently from multiple workers. With a
// background context the result is identical to Label's.
func LabelCtx(ctx context.Context, v *Volume, conn Connectivity, minVoxels int, progress func(done, total int)) (*Result, error) {
	n := v.T * v.H * v.W
	neighborOffsets(conn) // validates conn
	res := &Result{Labels: make([]int32, n), T: v.T, H: v.H, W: v.W}
	labels := res.Labels // provisional label ids until the final remap

	var tick func()
	if progress != nil {
		var done atomic.Int64
		total := v.T
		tick = func() { progress(int(done.Add(1)), total) }
	}

	// Pass 1: parallel per-slab provisional labelling. Each slab draws
	// label ids from its own range [starts[k], starts[k+1]): a fresh label
	// is only needed where the left neighbor is unset, so a row uses at
	// most ceil(W/2) labels.
	slabs := parallel.Ranges(v.T)
	perRow := int32((v.W + 1) / 2)
	starts := make([]int32, len(slabs)+1)
	starts[0] = 1 // 0 is background
	for k, s := range slabs {
		starts[k+1] = starts[k] + int32(s[1]-s[0])*int32(v.H)*perRow
	}
	bufs := getLabelBufs(int(starts[len(slabs)]))
	defer labelBufPool.Put(bufs)
	uf := &unionFind{parent: bufs.parent, size: bufs.size}
	parallel.For(len(slabs), func(s0, s1 int) {
		for k := s0; k < s1; k++ {
			labelSlab(ctx, v, uf, labels, conn, slabs[k][0], slabs[k][1], starts[k], tick)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 2: serial boundary stitch — unite labels across each slab's
	// first time step and the step before it. A voxel is set iff its
	// provisional label is nonzero, so the stitch reads only labels.
	H, W := v.H, v.W
	for _, slab := range slabs[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := slab[0]
		for y := 0; y < H; y++ {
			rowBase := (t*H + y) * W
			cur := labels[rowBase:][:W]
			var nbr [3][]int32
			nRows := 0
			if conn == Conn26 {
				for ny := y - 1; ny <= y+1; ny++ {
					if ny >= 0 && ny < H {
						nbr[nRows] = labels[((t-1)*H+ny)*W:][:W]
						nRows++
					}
				}
			} else {
				nbr[nRows] = labels[((t-1)*H+y)*W:][:W]
				nRows++
			}
			for x := 0; x < W; x++ {
				l1 := cur[x]
				if l1 == 0 {
					continue
				}
				if conn == Conn6 {
					if l2 := nbr[0][x]; l2 != 0 && l2 != l1 {
						uf.union(l1, l2)
					}
					continue
				}
				for r := 0; r < nRows; r++ {
					row := nbr[r]
					if l2 := row[x]; l2 != 0 {
						if l2 != l1 {
							uf.union(l1, l2)
						}
						continue // sides are already united with the center
					}
					if x > 0 {
						if l2 := row[x-1]; l2 != 0 && l2 != l1 {
							uf.union(l1, l2)
						}
					}
					if x < W-1 {
						if l2 := row[x+1]; l2 != 0 && l2 != l1 {
							uf.union(l1, l2)
						}
					}
				}
			}
		}
	}

	// Stats pass: compact label roots to dense slots in scan order (first
	// voxel encountered — deterministic regardless of union order and
	// worker count) and accumulate per-object statistics. Labels
	// temporarily hold slot ids.
	rootSlot := bufs.rootSlot // 0 = unseen, else slot+1
	var accs []labelAcc
	for t := 0; t < v.T; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for y := 0; y < v.H; y++ {
			rowBase := (t*v.H + y) * v.W
			for x := 0; x < v.W; x++ {
				i := rowBase + x
				l := labels[i]
				if l == 0 {
					continue
				}
				// rootSlot memoizes the component slot for every label id
				// (root or not), so most voxels resolve with one load.
				slot := rootSlot[l]
				if slot == 0 {
					root := uf.find(l)
					slot = rootSlot[root]
					if slot == 0 {
						accs = append(accs, labelAcc{
							genesis: t, termination: t,
							bbox: [6]int{t, t, y, y, x, x},
						})
						slot = int32(len(accs))
						rootSlot[root] = slot
					}
					rootSlot[l] = slot
				}
				a := &accs[slot-1]
				a.voxels++
				if t > a.termination {
					a.termination = t
				}
				a.bbox[0] = min(a.bbox[0], t)
				a.bbox[1] = max(a.bbox[1], t)
				a.bbox[2] = min(a.bbox[2], y)
				a.bbox[3] = max(a.bbox[3], y)
				a.bbox[4] = min(a.bbox[4], x)
				a.bbox[5] = max(a.bbox[5], x)
				for len(a.stepCount) <= t-a.genesis {
					a.stepCount = append(a.stepCount, 0)
					a.stepSumY = append(a.stepSumY, 0)
					a.stepSumX = append(a.stepSumX, 0)
				}
				a.stepCount[t-a.genesis]++
				a.stepSumY[t-a.genesis] += float64(y)
				a.stepSumX[t-a.genesis] += float64(x)
				res.Labels[i] = slot
			}
		}
	}

	// Deterministic ordering: by genesis, then size desc, then bbox.
	order := make([]int32, len(accs))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := &accs[order[i]], &accs[order[j]]
		if a.genesis != b.genesis {
			return a.genesis < b.genesis
		}
		if a.voxels != b.voxels {
			return a.voxels > b.voxels
		}
		return a.bbox != b.bbox && lessBBox(a.bbox, b.bbox)
	})

	// Assign final IDs (0 drops the object) and build Object records.
	slotID := make([]int32, len(accs)+1)
	nextID := int32(1)
	for _, slot := range order {
		a := &accs[slot]
		if a.voxels < minVoxels {
			continue
		}
		slotID[slot+1] = nextID
		obj := &Object{
			ID:      int(nextID),
			Voxels:  a.voxels,
			Genesis: a.genesis, Termination: a.termination,
			BBox: a.bbox,
		}
		var lastY, lastX float64
		for t := a.genesis; t <= a.termination; t++ {
			var c int32
			if t-a.genesis < len(a.stepCount) {
				c = a.stepCount[t-a.genesis]
			}
			if c > 0 {
				lastY = a.stepSumY[t-a.genesis] / float64(c)
				lastX = a.stepSumX[t-a.genesis] / float64(c)
				if int(c) > obj.PeakArea {
					obj.PeakArea = int(c)
				}
			}
			obj.Pathway = append(obj.Pathway, [2]float64{lastY, lastX})
		}
		res.Objects = append(res.Objects, obj)
		nextID++
	}

	// Remap temporary slots to final IDs.
	for i, slot := range res.Labels {
		if slot != 0 {
			res.Labels[i] = slotID[slot]
		}
	}
	return res, nil
}

func lessBBox(a, b [6]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FromMask adapts any float32 time-major mask (e.g. an ffn.Volume or a
// thresholded merra volume) into a connect.Volume without copying.
func FromMask(t, h, w int, data []float32) *Volume {
	if len(data) != t*h*w {
		panic("connect: FromMask dimension mismatch")
	}
	return &Volume{T: t, H: h, W: w, Data: data}
}

// Stats summarizes a labelling for reports.
type Stats struct {
	Objects      int
	TotalVoxels  int
	MeanDuration float64
	MaxDuration  int
	MeanVoxels   float64
}

// Summarize computes aggregate statistics of a result.
func Summarize(r *Result) Stats {
	s := Stats{Objects: len(r.Objects)}
	for _, o := range r.Objects {
		s.TotalVoxels += o.Voxels
		s.MeanDuration += float64(o.Duration())
		s.MeanVoxels += float64(o.Voxels)
		if o.Duration() > s.MaxDuration {
			s.MaxDuration = o.Duration()
		}
	}
	if len(r.Objects) > 0 {
		s.MeanDuration /= float64(len(r.Objects))
		s.MeanVoxels /= float64(len(r.Objects))
	}
	return s
}
