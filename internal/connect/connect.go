// Package connect implements the CONNECT algorithm (Sellars et al., 2013,
// 2017): the paper's baseline for earth-science object segmentation. CONNECT
// thresholds a geophysical field (here IVT), labels the resulting binary
// voxels into CONNected objECTs across both space and time (x, y, t), and
// tracks each object's full life cycle — genesis, pathway, and termination.
// The original ran as MATLAB functions on a single CPU; this is a from-
// scratch Go implementation using union-find, serving both as the accuracy
// reference for the FFN and as the single-CPU baseline in the scaling
// benches.
package connect

import (
	"fmt"
	"sort"
)

// Volume is a binary (T, H, W) mask: time-major, matching ffn.Volume layout.
type Volume struct {
	T, H, W int
	Data    []float32
}

// NewVolume allocates a zero volume.
func NewVolume(t, h, w int) *Volume {
	return &Volume{T: t, H: h, W: w, Data: make([]float32, t*h*w)}
}

// At reports whether voxel (t, y, x) is set.
func (v *Volume) At(t, y, x int) bool { return v.Data[(t*v.H+y)*v.W+x] > 0.5 }

// Set marks voxel (t, y, x).
func (v *Volume) Set(t, y, x int) { v.Data[(t*v.H+y)*v.W+x] = 1 }

// Connectivity selects the neighborhood used to join voxels.
type Connectivity int

const (
	// Conn6 joins face neighbors only (±x, ±y, ±t).
	Conn6 Connectivity = 6
	// Conn26 joins all voxels in the 3x3x3 neighborhood, the CONNECT
	// default: objects stay linked across diagonal motion between frames.
	Conn26 Connectivity = 26
)

// Object is one tracked connected object with life-cycle statistics.
type Object struct {
	ID     int
	Voxels int
	// Genesis and Termination are the first and last time steps the object
	// exists.
	Genesis, Termination int
	// Pathway holds the per-step centroid (y, x) from genesis to
	// termination; steps where the object momentarily vanishes under Conn26
	// linking keep the previous centroid.
	Pathway [][2]float64
	// PeakArea is the largest single-step voxel count.
	PeakArea int
	// BBox is the object's bounding box: [t0, t1, y0, y1, x0, x1].
	BBox [6]int
}

// Duration returns the object's lifetime in steps (inclusive).
func (o *Object) Duration() int { return o.Termination - o.Genesis + 1 }

func (o *Object) String() string {
	return fmt.Sprintf("object %d: %d voxels, t=[%d,%d], peak area %d",
		o.ID, o.Voxels, o.Genesis, o.Termination, o.PeakArea)
}

// Result is a labelled volume plus per-object statistics.
type Result struct {
	Labels  []int32 // same layout as the input volume; 0 = background
	Objects []*Object
	T, H, W int
}

// LabelAt returns the object ID at (t, y, x), 0 for background.
func (r *Result) LabelAt(t, y, x int) int32 { return r.Labels[(t*r.H+y)*r.W+x] }

// unionFind is a weighted quick-union with path compression.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int32) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}

// Label performs connected-object labelling on a binary volume. minVoxels
// discards objects smaller than the threshold (CONNECT prunes noise
// objects); 0 keeps everything.
func Label(v *Volume, conn Connectivity, minVoxels int) *Result {
	n := v.T * v.H * v.W
	uf := newUnionFind(n)
	idx := func(t, y, x int) int32 { return int32((t*v.H+y)*v.W + x) }

	// Neighbor offsets with strictly negative lexicographic order (already-
	// visited voxels only), so each pair is united exactly once.
	var offs [][3]int
	switch conn {
	case Conn6:
		offs = [][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}}
	case Conn26:
		for dt := -1; dt <= 0; dt++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dt == 0 && (dy > 0 || (dy == 0 && dx >= 0)) {
						continue
					}
					offs = append(offs, [3]int{dt, dy, dx})
				}
			}
		}
	default:
		panic(fmt.Sprintf("connect: unsupported connectivity %d", conn))
	}

	for t := 0; t < v.T; t++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if !v.At(t, y, x) {
					continue
				}
				me := idx(t, y, x)
				for _, o := range offs {
					nt, ny, nx := t+o[0], y+o[1], x+o[2]
					if nt < 0 || ny < 0 || ny >= v.H || nx < 0 || nx >= v.W {
						continue
					}
					if v.At(nt, ny, nx) {
						uf.union(me, idx(nt, ny, nx))
					}
				}
			}
		}
	}

	// Compact roots to sequential IDs and accumulate statistics.
	res := &Result{Labels: make([]int32, n), T: v.T, H: v.H, W: v.W}
	rootID := make(map[int32]int32)
	type acc struct {
		voxels               int
		genesis, termination int
		bbox                 [6]int
		perStepCount         map[int]int
		perStepSumY          map[int]float64
		perStepSumX          map[int]float64
	}
	accs := make(map[int32]*acc)

	for t := 0; t < v.T; t++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if !v.At(t, y, x) {
					continue
				}
				root := uf.find(idx(t, y, x))
				a, ok := accs[root]
				if !ok {
					a = &acc{
						genesis: t, termination: t,
						bbox:         [6]int{t, t, y, y, x, x},
						perStepCount: make(map[int]int),
						perStepSumY:  make(map[int]float64),
						perStepSumX:  make(map[int]float64),
					}
					accs[root] = a
				}
				a.voxels++
				if t > a.termination {
					a.termination = t
				}
				a.bbox[0] = min(a.bbox[0], t)
				a.bbox[1] = max(a.bbox[1], t)
				a.bbox[2] = min(a.bbox[2], y)
				a.bbox[3] = max(a.bbox[3], y)
				a.bbox[4] = min(a.bbox[4], x)
				a.bbox[5] = max(a.bbox[5], x)
				a.perStepCount[t]++
				a.perStepSumY[t] += float64(y)
				a.perStepSumX[t] += float64(x)
			}
		}
	}

	// Deterministic ordering: by genesis, then size desc, then bbox.
	roots := make([]int32, 0, len(accs))
	for r := range accs {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := accs[roots[i]], accs[roots[j]]
		if a.genesis != b.genesis {
			return a.genesis < b.genesis
		}
		if a.voxels != b.voxels {
			return a.voxels > b.voxels
		}
		return a.bbox != b.bbox && lessBBox(a.bbox, b.bbox)
	})

	nextID := int32(1)
	for _, root := range roots {
		a := accs[root]
		if a.voxels < minVoxels {
			continue
		}
		rootID[root] = nextID
		obj := &Object{
			ID:      int(nextID),
			Voxels:  a.voxels,
			Genesis: a.genesis, Termination: a.termination,
			BBox: a.bbox,
		}
		var lastY, lastX float64
		for t := a.genesis; t <= a.termination; t++ {
			if c := a.perStepCount[t]; c > 0 {
				lastY = a.perStepSumY[t] / float64(c)
				lastX = a.perStepSumX[t] / float64(c)
				if c > obj.PeakArea {
					obj.PeakArea = c
				}
			}
			obj.Pathway = append(obj.Pathway, [2]float64{lastY, lastX})
		}
		res.Objects = append(res.Objects, obj)
		nextID++
	}

	// Write labels.
	for t := 0; t < v.T; t++ {
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if !v.At(t, y, x) {
					continue
				}
				if id, ok := rootID[uf.find(idx(t, y, x))]; ok {
					res.Labels[(t*v.H+y)*v.W+x] = id
				}
			}
		}
	}
	return res
}

func lessBBox(a, b [6]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FromMask adapts any float32 time-major mask (e.g. an ffn.Volume or a
// thresholded merra volume) into a connect.Volume without copying.
func FromMask(t, h, w int, data []float32) *Volume {
	if len(data) != t*h*w {
		panic("connect: FromMask dimension mismatch")
	}
	return &Volume{T: t, H: h, W: w, Data: data}
}

// Stats summarizes a labelling for reports.
type Stats struct {
	Objects      int
	TotalVoxels  int
	MeanDuration float64
	MaxDuration  int
	MeanVoxels   float64
}

// Summarize computes aggregate statistics of a result.
func Summarize(r *Result) Stats {
	s := Stats{Objects: len(r.Objects)}
	for _, o := range r.Objects {
		s.TotalVoxels += o.Voxels
		s.MeanDuration += float64(o.Duration())
		s.MeanVoxels += float64(o.Voxels)
		if o.Duration() > s.MaxDuration {
			s.MaxDuration = o.Duration()
		}
	}
	if len(r.Objects) > 0 {
		s.MeanDuration /= float64(len(r.Objects))
		s.MeanVoxels /= float64(len(r.Objects))
	}
	return s
}
