package connect

import (
	"context"
	"errors"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

// noisyVolume builds a binary volume with scattered blobs across many time
// steps so pass 1 has real work in every slab.
func noisyVolume(seed uint64, tSteps, h, w int) *Volume {
	rng := sim.NewRNG(seed)
	v := NewVolume(tSteps, h, w)
	for i := range v.Data {
		if rng.Float64() < 0.35 {
			v.Data[i] = 1
		}
	}
	return v
}

// TestLabelCtxMatchesLabel requires the context-aware entrypoint with a
// background context to reproduce Label exactly at several worker counts.
func TestLabelCtxMatchesLabel(t *testing.T) {
	v := noisyVolume(3, 12, 18, 20)
	for _, workers := range []int{1, 4} {
		prev := parallel.SetWorkers(workers)
		want := Label(v, Conn26, 2)
		var lastDone, lastTotal int
		got, err := LabelCtx(context.Background(), v, Conn26, 2, func(done, total int) {
			lastDone, lastTotal = done, total
		})
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if len(got.Objects) != len(want.Objects) {
			t.Fatalf("workers=%d: %d objects, want %d", workers, len(got.Objects), len(want.Objects))
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("workers=%d: label %d diverges", workers, i)
			}
		}
		if lastDone != v.T || lastTotal != v.T {
			t.Fatalf("workers=%d: progress ended at %d/%d, want %d/%d", workers, lastDone, lastTotal, v.T, v.T)
		}
	}
}

// TestLabelCtxPreCancelled: an already-cancelled context returns before
// doing meaningful work.
func TestLabelCtxPreCancelled(t *testing.T) {
	v := noisyVolume(3, 8, 10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := LabelCtx(ctx, v, Conn26, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled labelling must not return a result")
	}
}

// TestLabelCtxCancelMidScan cancels from the progress callback once half
// the time steps are labelled — deterministic mid-flight cancellation.
func TestLabelCtxCancelMidScan(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	v := noisyVolume(5, 16, 14, 14)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	maxSeen := 0
	res, err := LabelCtx(ctx, v, Conn26, 0, func(done, total int) {
		if done > maxSeen {
			maxSeen = done
		}
		if done == total/2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled labelling must not return a result")
	}
	if maxSeen == 0 || maxSeen >= v.T {
		t.Fatalf("progress reached %d of %d steps; want a genuine mid-flight stop", maxSeen, v.T)
	}
}
