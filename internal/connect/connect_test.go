package connect

import (
	"testing"
	"testing/quick"

	"chaseci/internal/merra"
	"chaseci/internal/sim"
)

func TestEmptyVolume(t *testing.T) {
	r := Label(NewVolume(4, 4, 4), Conn26, 0)
	if len(r.Objects) != 0 {
		t.Fatalf("objects = %d, want 0", len(r.Objects))
	}
}

func TestSingleVoxel(t *testing.T) {
	v := NewVolume(3, 3, 3)
	v.Set(1, 1, 1)
	r := Label(v, Conn6, 0)
	if len(r.Objects) != 1 {
		t.Fatalf("objects = %d, want 1", len(r.Objects))
	}
	o := r.Objects[0]
	if o.Voxels != 1 || o.Genesis != 1 || o.Termination != 1 || o.Duration() != 1 {
		t.Fatalf("object = %+v", o)
	}
	if r.LabelAt(1, 1, 1) != 1 {
		t.Fatal("voxel not labelled")
	}
}

func TestTwoSeparateObjects(t *testing.T) {
	v := NewVolume(1, 5, 5)
	v.Set(0, 0, 0)
	v.Set(0, 4, 4)
	r := Label(v, Conn26, 0)
	if len(r.Objects) != 2 {
		t.Fatalf("objects = %d, want 2", len(r.Objects))
	}
	if r.LabelAt(0, 0, 0) == r.LabelAt(0, 4, 4) {
		t.Fatal("separate voxels share a label")
	}
}

func TestDiagonalConnectivityDiffers(t *testing.T) {
	v := NewVolume(1, 2, 2)
	v.Set(0, 0, 0)
	v.Set(0, 1, 1) // diagonal neighbor
	if got := len(Label(v, Conn6, 0).Objects); got != 2 {
		t.Fatalf("Conn6 objects = %d, want 2", got)
	}
	if got := len(Label(v, Conn26, 0).Objects); got != 1 {
		t.Fatalf("Conn26 objects = %d, want 1", got)
	}
}

func TestTemporalLinking(t *testing.T) {
	// An object present at the same place across 4 steps is one object with
	// duration 4 — CONNECT's defining property versus per-frame labelling.
	v := NewVolume(4, 5, 5)
	for step := 0; step < 4; step++ {
		v.Set(step, 2, 2)
	}
	r := Label(v, Conn6, 0)
	if len(r.Objects) != 1 {
		t.Fatalf("objects = %d, want 1", len(r.Objects))
	}
	if d := r.Objects[0].Duration(); d != 4 {
		t.Fatalf("duration = %d, want 4", d)
	}
}

func TestMovingObjectTrackedAcrossTime(t *testing.T) {
	// Object drifts +1 x per step; Conn26 keeps it linked, and the pathway
	// centroids must drift monotonically.
	v := NewVolume(5, 5, 10)
	for step := 0; step < 5; step++ {
		v.Set(step, 2, step+1)
		v.Set(step, 2, step+2)
	}
	r := Label(v, Conn26, 0)
	if len(r.Objects) != 1 {
		t.Fatalf("objects = %d, want 1", len(r.Objects))
	}
	o := r.Objects[0]
	if len(o.Pathway) != 5 {
		t.Fatalf("pathway length = %d, want 5", len(o.Pathway))
	}
	for i := 1; i < len(o.Pathway); i++ {
		if o.Pathway[i][1] <= o.Pathway[i-1][1] {
			t.Fatalf("pathway x not increasing: %v", o.Pathway)
		}
	}
}

func TestGenesisAndTermination(t *testing.T) {
	v := NewVolume(6, 3, 3)
	v.Set(2, 1, 1)
	v.Set(3, 1, 1)
	v.Set(4, 1, 1)
	r := Label(v, Conn6, 0)
	o := r.Objects[0]
	if o.Genesis != 2 || o.Termination != 4 {
		t.Fatalf("genesis/termination = %d/%d, want 2/4", o.Genesis, o.Termination)
	}
}

func TestMinVoxelsPrunes(t *testing.T) {
	v := NewVolume(1, 5, 5)
	v.Set(0, 0, 0) // size 1
	v.Set(0, 3, 3) // size 2 blob
	v.Set(0, 3, 4)
	r := Label(v, Conn26, 2)
	if len(r.Objects) != 1 {
		t.Fatalf("objects = %d, want 1 after pruning", len(r.Objects))
	}
	if r.Objects[0].Voxels != 2 {
		t.Fatalf("surviving object voxels = %d, want 2", r.Objects[0].Voxels)
	}
	if r.LabelAt(0, 0, 0) != 0 {
		t.Fatal("pruned voxel still labelled")
	}
}

func TestPeakAreaAndBBox(t *testing.T) {
	v := NewVolume(2, 4, 4)
	v.Set(0, 1, 1)
	v.Set(1, 1, 1)
	v.Set(1, 1, 2)
	v.Set(1, 2, 1)
	r := Label(v, Conn26, 0)
	o := r.Objects[0]
	if o.PeakArea != 3 {
		t.Fatalf("peak area = %d, want 3", o.PeakArea)
	}
	want := [6]int{0, 1, 1, 2, 1, 2}
	if o.BBox != want {
		t.Fatalf("bbox = %v, want %v", o.BBox, want)
	}
}

func TestLabelsDeterministic(t *testing.T) {
	rng := sim.NewRNG(5)
	v := NewVolume(4, 10, 10)
	for i := range v.Data {
		if rng.Float64() < 0.3 {
			v.Data[i] = 1
		}
	}
	a := Label(v, Conn26, 0)
	b := Label(v, Conn26, 0)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labelling is not deterministic")
		}
	}
}

func TestSummarize(t *testing.T) {
	v := NewVolume(3, 4, 4)
	v.Set(0, 0, 0)
	v.Set(1, 0, 0)
	v.Set(0, 3, 3)
	r := Label(v, Conn6, 0)
	s := Summarize(r)
	if s.Objects != 2 || s.TotalVoxels != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxDuration != 2 || s.MeanDuration != 1.5 {
		t.Fatalf("durations = %+v", s)
	}
}

func TestFromMaskSharesData(t *testing.T) {
	data := make([]float32, 8)
	v := FromMask(2, 2, 2, data)
	data[0] = 1
	if !v.At(0, 0, 0) {
		t.Fatal("FromMask copied instead of sharing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch not caught")
		}
	}()
	FromMask(3, 2, 2, data)
}

func TestOnSyntheticIVTScene(t *testing.T) {
	// End-to-end sanity: CONNECT on synthetic IVT masks finds a handful of
	// long-lived objects, not thousands of specks and not one blob.
	g := merra.Grid{NLon: 48, NLat: 32, NLev: 6}
	gen := merra.NewGenerator(g, 21)
	levels := merra.PressureLevels(g.NLev)
	const steps = 10
	vol := merra.IVTVolume(gen, levels, 10, steps)
	f2 := merra.Field2D{NLon: len(vol.Data), NLat: 1, Data: vol.Data}
	th := f2.Quantile(0.92)
	mask := merra.MaskVolume(vol, th)
	r := Label(FromMask(steps, g.NLat, g.NLon, mask.Data), Conn26, 4)
	if len(r.Objects) == 0 {
		t.Fatal("no objects found in synthetic scene")
	}
	if len(r.Objects) > 60 {
		t.Fatalf("%d objects — mask is noise, not structures", len(r.Objects))
	}
	s := Summarize(r)
	if s.MaxDuration < 3 {
		t.Fatalf("max duration = %d; objects do not persist in time", s.MaxDuration)
	}
}

func TestPropertyLabelsPartitionForeground(t *testing.T) {
	// Every foreground voxel gets a label; no background voxel does; voxel
	// counts per object sum to the foreground count (with minVoxels 0).
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		v := NewVolume(3, 6, 6)
		fg := 0
		for i := range v.Data {
			if rng.Float64() < 0.35 {
				v.Data[i] = 1
				fg++
			}
		}
		r := Label(v, Conn26, 0)
		sum := 0
		for _, o := range r.Objects {
			sum += o.Voxels
		}
		if sum != fg {
			return false
		}
		for i, l := range r.Labels {
			if (v.Data[i] > 0.5) != (l != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConnectedPairsShareLabel(t *testing.T) {
	// Any two face-adjacent foreground voxels must share a label under both
	// connectivities.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		v := NewVolume(3, 5, 5)
		for i := range v.Data {
			if rng.Float64() < 0.4 {
				v.Data[i] = 1
			}
		}
		for _, conn := range []Connectivity{Conn6, Conn26} {
			r := Label(v, conn, 0)
			for t := 0; t < v.T; t++ {
				for y := 0; y < v.H; y++ {
					for x := 0; x < v.W; x++ {
						if !v.At(t, y, x) {
							continue
						}
						for _, o := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
							nt, ny, nx := t+o[0], y+o[1], x+o[2]
							if nt >= v.T || ny >= v.H || nx >= v.W {
								continue
							}
							if v.At(nt, ny, nx) && r.LabelAt(t, y, x) != r.LabelAt(nt, ny, nx) {
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
