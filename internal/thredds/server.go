// Package thredds implements the data-access substrate of the workflow's
// step 1: a THREDDS-like catalog server offering both whole-granule download
// and NetCDF Subset Service (NCSS) style variable subsetting, plus an
// aria2-like parallel download client. The server really serves NC4-lite
// bytes over HTTP (stdlib net/http) from a deterministic merra.Generator, so
// the subsetting ratio the paper exploits (455 GB -> 246 GB) is observable as
// actual byte counts at experiment scale.
package thredds

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"chaseci/internal/merra"
)

// Catalog binds an archive spec to a content generator. Granule bytes are
// rendered lazily and cached, keyed by index.
type Catalog struct {
	Spec merra.ArchiveSpec
	Gen  *merra.Generator

	levels []float64

	mu    sync.Mutex
	cache map[int][]byte
}

// NewCatalog creates a catalog over the first n granules of spec, generating
// content on g's grid.
func NewCatalog(spec merra.ArchiveSpec, gen *merra.Generator) *Catalog {
	return &Catalog{
		Spec:   spec,
		Gen:    gen,
		levels: merra.PressureLevels(gen.Grid.NLev),
		cache:  make(map[int][]byte),
	}
}

// GranuleBytes renders (and caches) the full NC4-lite encoding of granule i.
func (c *Catalog) GranuleBytes(i int) ([]byte, error) {
	if i < 0 || i >= c.Spec.NumFiles() {
		return nil, fmt.Errorf("thredds: granule %d out of range [0,%d)", i, c.Spec.NumFiles())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.cache[i]; ok {
		return b, nil
	}
	st := c.Gen.State(i)
	f := merra.StateFile(st, c.levels, c.Spec.FileTime(i).Unix())
	b := f.EncodeBytes()
	c.cache[i] = b
	return b, nil
}

// SubsetBytes renders granule i reduced to a single variable.
func (c *Catalog) SubsetBytes(i int, variable string) ([]byte, error) {
	full, err := c.GranuleBytes(i)
	if err != nil {
		return nil, err
	}
	v, err := merra.ExtractVariable(full, variable)
	if err != nil {
		return nil, err
	}
	out := &merra.File{Time: c.Spec.FileTime(i).Unix()}
	if err := out.AddVariable(v.Name, v.Dims, v.Data); err != nil {
		return nil, err
	}
	return out.EncodeBytes(), nil
}

// IndexByName resolves a granule file name to its index.
func (c *Catalog) IndexByName(name string) (int, bool) {
	// Names are strictly ordered and formulaic; linear scan is fine for the
	// experiment-scale catalogs served over HTTP.
	for i := 0; i < c.Spec.NumFiles(); i++ {
		if c.Spec.FileName(i) == name {
			return i, true
		}
	}
	return 0, false
}

// Server is the HTTP face of a catalog:
//
//	GET /thredds/catalog.json                    -> {"datasets": [names...]}
//	GET /thredds/fileServer/<name>               -> full granule bytes
//	GET /thredds/ncss/<name>?var=IVT             -> single-variable subset
type Server struct {
	Catalog *Catalog
	httpSrv *http.Server
	ln      net.Listener
}

// Serve starts the server on addr ("127.0.0.1:0" for ephemeral).
func Serve(catalog *Catalog, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Catalog: catalog, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/thredds/catalog.json", s.handleCatalog)
	mux.HandleFunc("/thredds/fileServer/", s.handleFile)
	mux.HandleFunc("/thredds/ncss/", s.handleSubset)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return s, nil
}

// Addr returns the listening host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// BaseURL returns "http://host:port".
func (s *Server) BaseURL() string { return "http://" + s.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.httpSrv.Close() }

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	n := s.Catalog.Spec.NumFiles()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = s.Catalog.Spec.FileName(i)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"datasets": names})
}

func (s *Server) handleFile(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/thredds/fileServer/")
	i, ok := s.Catalog.IndexByName(name)
	if !ok {
		http.Error(w, "no such dataset", http.StatusNotFound)
		return
	}
	b, err := s.Catalog.GranuleBytes(i)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

func (s *Server) handleSubset(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/thredds/ncss/")
	variable := r.URL.Query().Get("var")
	if variable == "" {
		http.Error(w, "missing var parameter", http.StatusBadRequest)
		return
	}
	i, ok := s.Catalog.IndexByName(name)
	if !ok {
		http.Error(w, "no such dataset", http.StatusNotFound)
		return
	}
	b, err := s.Catalog.SubsetBytes(i, variable)
	if err == merra.ErrNoVar {
		http.Error(w, "no such variable", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Write(b)
}

// FileURL returns the full-granule URL for a dataset name.
func (s *Server) FileURL(name string) string {
	return s.BaseURL() + "/thredds/fileServer/" + name
}

// SubsetURL returns the NCSS subset URL for a dataset and variable.
func (s *Server) SubsetURL(name, variable string) string {
	return s.BaseURL() + "/thredds/ncss/" + name + "?var=" + variable
}
