package thredds

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"chaseci/internal/sim"
)

// Downloader is the aria2 stand-in: it fetches a list of URLs with a bounded
// number of parallel streams (the paper runs "20 parallel downloads" per
// worker) and hands each completed body to a sink callback.
type Downloader struct {
	// Parallel is the concurrent stream count (default 20, aria2's common
	// configuration in the paper).
	Parallel int
	// Client is the HTTP client; nil uses http.DefaultClient.
	Client *http.Client
	// MaxAttempts bounds tries per URL including the first (<= 0 means 3).
	// Transport errors, 5xx, and 429 retry with full-jitter exponential
	// backoff; other 4xx fail immediately (re-requesting a 404 just burns
	// the archive's bandwidth).
	MaxAttempts int
	// BaseDelay/MaxDelay shape the backoff (defaults 100ms / 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration

	rngMu sync.Mutex
	rng   *sim.RNG
}

// Result describes one fetched URL.
type Result struct {
	URL   string
	Bytes int64
	Err   error
}

// Fetch downloads every URL, calling sink (which may be nil) with each body
// as it completes. Sink calls are serialized; bodies are discarded after the
// sink returns. Fetch returns per-URL results in input order and the total
// payload bytes moved. Cancelling ctx aborts in-flight requests and skips
// URLs not yet started (their results carry ctx.Err()), so dataset ingestion
// honors job cancellation like every other kernel.
func (d *Downloader) Fetch(ctx context.Context, urls []string, sink func(url string, body []byte)) ([]Result, int64) {
	if ctx == nil {
		ctx = context.Background()
	}
	parallel := d.Parallel
	if parallel <= 0 {
		parallel = 20
	}
	client := d.Client
	if client == nil {
		client = http.DefaultClient
	}
	results := make([]Result, len(urls))
	var total int64
	var totalMu sync.Mutex
	var sinkMu sync.Mutex

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = Result{URL: u, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			body, err := d.fetchRetry(ctx, client, u)
			results[i] = Result{URL: u, Bytes: int64(len(body)), Err: err}
			if err != nil {
				return
			}
			totalMu.Lock()
			total += int64(len(body))
			totalMu.Unlock()
			if sink != nil {
				sinkMu.Lock()
				sink(u, body)
				sinkMu.Unlock()
			}
		}(i, u)
	}
	wg.Wait()
	return results, total
}

// fetchRetry wraps fetchOne with jittered exponential backoff on transient
// failures. Context cancellation interrupts the backoff sleep immediately.
func (d *Downloader) fetchRetry(ctx context.Context, client *http.Client, url string) ([]byte, error) {
	attempts := d.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	base, maxd := d.BaseDelay, d.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	var err error
	for attempt := 1; ; attempt++ {
		var body []byte
		var retryable bool
		body, retryable, err = fetchOne(ctx, client, url)
		if err == nil {
			return body, nil
		}
		if !retryable || attempt >= attempts || ctx.Err() != nil {
			return nil, err
		}
		// Full jitter: uniform in (0, base*2^(attempt-1)], capped at maxd.
		ceil := min(base<<(attempt-1), maxd)
		d.rngMu.Lock()
		if d.rng == nil {
			d.rng = sim.NewRNG(0x7468726564647321) // "thredds!"
		}
		delay := time.Duration(d.rng.Float64() * float64(ceil))
		d.rngMu.Unlock()
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("%v (retry interrupted: %w)", err, ctx.Err())
		}
	}
}

// fetchOne performs a single GET. retryable reports whether the failure is
// transient: transport errors, 5xx, and 429 retry; other statuses do not.
func fetchOne(ctx context.Context, client *http.Client, url string) (body []byte, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		retryable = resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		return nil, retryable, fmt.Errorf("thredds: GET %s: %s", url, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	return body, err != nil, err
}
