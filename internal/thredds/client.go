package thredds

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Downloader is the aria2 stand-in: it fetches a list of URLs with a bounded
// number of parallel streams (the paper runs "20 parallel downloads" per
// worker) and hands each completed body to a sink callback.
type Downloader struct {
	// Parallel is the concurrent stream count (default 20, aria2's common
	// configuration in the paper).
	Parallel int
	// Client is the HTTP client; nil uses http.DefaultClient.
	Client *http.Client
}

// Result describes one fetched URL.
type Result struct {
	URL   string
	Bytes int64
	Err   error
}

// Fetch downloads every URL, calling sink (which may be nil) with each body
// as it completes. Sink calls are serialized; bodies are discarded after the
// sink returns. Fetch returns per-URL results in input order and the total
// payload bytes moved. Cancelling ctx aborts in-flight requests and skips
// URLs not yet started (their results carry ctx.Err()), so dataset ingestion
// honors job cancellation like every other kernel.
func (d *Downloader) Fetch(ctx context.Context, urls []string, sink func(url string, body []byte)) ([]Result, int64) {
	if ctx == nil {
		ctx = context.Background()
	}
	parallel := d.Parallel
	if parallel <= 0 {
		parallel = 20
	}
	client := d.Client
	if client == nil {
		client = http.DefaultClient
	}
	results := make([]Result, len(urls))
	var total int64
	var totalMu sync.Mutex
	var sinkMu sync.Mutex

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = Result{URL: u, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			body, err := fetchOne(ctx, client, u)
			results[i] = Result{URL: u, Bytes: int64(len(body)), Err: err}
			if err != nil {
				return
			}
			totalMu.Lock()
			total += int64(len(body))
			totalMu.Unlock()
			if sink != nil {
				sinkMu.Lock()
				sink(u, body)
				sinkMu.Unlock()
			}
		}(i, u)
	}
	wg.Wait()
	return results, total
}

func fetchOne(ctx context.Context, client *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("thredds: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
