package thredds

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"chaseci/internal/merra"
)

var testGrid = merra.Grid{NLon: 24, NLat: 16, NLev: 6}

func newTestServer(t *testing.T, granules int) *Server {
	t.Helper()
	spec := merra.MERRA2().Slice(granules)
	cat := NewCatalog(spec, merra.NewGenerator(testGrid, 7))
	srv, err := Serve(cat, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestCatalogEndpoint(t *testing.T) {
	srv := newTestServer(t, 5)
	resp, err := http.Get(srv.BaseURL() + "/thredds/catalog.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Datasets) != 5 {
		t.Fatalf("catalog lists %d datasets, want 5", len(out.Datasets))
	}
	if !strings.HasPrefix(out.Datasets[0], "MERRA2_100.inst3_3d_asm_Np.19800101") {
		t.Fatalf("first dataset = %s", out.Datasets[0])
	}
}

func TestFullGranuleDownloadDecodes(t *testing.T) {
	srv := newTestServer(t, 2)
	name := srv.Catalog.Spec.FileName(1)
	resp, err := http.Get(srv.FileURL(name))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %s", resp.Status)
	}
	f, err := merra.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vars) != 4 {
		t.Fatalf("granule has %d vars, want 4", len(f.Vars))
	}
	if f.Time != srv.Catalog.Spec.FileTime(1).Unix() {
		t.Fatal("granule timestamp mismatch")
	}
}

func TestSubsetSmallerThanFull(t *testing.T) {
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)

	full, err := fetchOne(context.Background(), http.DefaultClient, srv.FileURL(name))
	if err != nil {
		t.Fatal(err)
	}
	subset, err := fetchOne(context.Background(), http.DefaultClient, srv.SubsetURL(name, "IVT"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) >= len(full) {
		t.Fatalf("subset (%d B) not smaller than full granule (%d B)", len(subset), len(full))
	}
	f, err := merra.DecodeBytes(subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vars) != 1 || f.Vars[0].Name != "IVT" {
		t.Fatalf("subset vars = %v", f.Vars)
	}
	// Subset payload must equal the IVT extracted from the full granule.
	want, err := merra.ExtractVariable(full, "IVT")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if f.Vars[0].Data[i] != want.Data[i] {
			t.Fatal("subset IVT differs from full-granule IVT")
		}
	}
}

func TestSubsetMissingVariable(t *testing.T) {
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)
	resp, err := http.Get(srv.SubsetURL(name, "NOPE"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

func TestSubsetMissingVarParam(t *testing.T) {
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)
	resp, err := http.Get(srv.BaseURL() + "/thredds/ncss/" + name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}

func TestUnknownDataset404(t *testing.T) {
	srv := newTestServer(t, 1)
	resp, err := http.Get(srv.FileURL("nope.nc4"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

func TestGranuleBytesDeterministicAndCached(t *testing.T) {
	spec := merra.MERRA2().Slice(3)
	cat := NewCatalog(spec, merra.NewGenerator(testGrid, 7))
	a, err := cat.GranuleBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cat.GranuleBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second GranuleBytes did not hit the cache")
	}
	if _, err := cat.GranuleBytes(99); err == nil {
		t.Fatal("out-of-range granule accepted")
	}
}

func TestDownloaderFetchesAll(t *testing.T) {
	srv := newTestServer(t, 12)
	var urls []string
	for i := 0; i < 12; i++ {
		urls = append(urls, srv.SubsetURL(srv.Catalog.Spec.FileName(i), "IVT"))
	}
	got := make(map[string]int)
	dl := &Downloader{Parallel: 4}
	results, total := dl.Fetch(context.Background(), urls, func(url string, body []byte) {
		got[url] = len(body)
	})
	if len(results) != 12 {
		t.Fatalf("results = %d, want 12", len(results))
	}
	var want int64
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("fetch %s: %v", r.URL, r.Err)
		}
		want += r.Bytes
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if len(got) != 12 {
		t.Fatalf("sink saw %d urls, want 12", len(got))
	}
}

func TestDownloaderReportsErrors(t *testing.T) {
	srv := newTestServer(t, 1)
	urls := []string{
		srv.SubsetURL(srv.Catalog.Spec.FileName(0), "IVT"),
		srv.FileURL("missing.nc4"),
	}
	dl := &Downloader{Parallel: 2}
	results, _ := dl.Fetch(context.Background(), urls, nil)
	if results[0].Err != nil {
		t.Fatalf("good url errored: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("404 url did not error")
	}
}

func TestDownloaderDefaultParallelism(t *testing.T) {
	srv := newTestServer(t, 3)
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, srv.FileURL(srv.Catalog.Spec.FileName(i)))
	}
	dl := &Downloader{} // default 20 streams
	results, total := dl.Fetch(context.Background(), urls, nil)
	if total <= 0 {
		t.Fatal("no bytes fetched")
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestSubsetRatioApproximatesPaper(t *testing.T) {
	// On the full MERRA-2 spec the modeled subset ratio is 246/455; the
	// rendered NC4-lite files should show the same direction of savings
	// (subset strictly under half the full size for the 4-variable granule).
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)
	full, _ := fetchOne(context.Background(), http.DefaultClient, srv.FileURL(name))
	subset, _ := fetchOne(context.Background(), http.DefaultClient, srv.SubsetURL(name, "IVT"))
	ratio := float64(len(subset)) / float64(len(full))
	if ratio >= 0.5 {
		t.Fatalf("subset ratio = %.2f, want < 0.5", ratio)
	}
	spec := merra.MERRA2()
	modelRatio := spec.TotalBytes(true) / spec.TotalBytes(false)
	if modelRatio < 0.5 || modelRatio > 0.6 {
		t.Fatalf("modeled ratio = %.3f, want ~0.54 (246/455)", modelRatio)
	}
}

func TestDownloaderHonorsCancellation(t *testing.T) {
	srv := newTestServer(t, 6)
	var urls []string
	for i := 0; i < 6; i++ {
		urls = append(urls, srv.SubsetURL(srv.Catalog.Spec.FileName(i), "IVT"))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dl := &Downloader{Parallel: 2}
	results, total := dl.Fetch(ctx, urls, func(url string, body []byte) {
		t.Errorf("sink called for %s after cancellation", url)
	})
	if total != 0 {
		t.Fatalf("cancelled fetch moved %d bytes", total)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("cancelled fetch of %s reported no error", r.URL)
		}
	}
}
