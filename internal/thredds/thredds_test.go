package thredds

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chaseci/internal/merra"
)

var testGrid = merra.Grid{NLon: 24, NLat: 16, NLev: 6}

func newTestServer(t *testing.T, granules int) *Server {
	t.Helper()
	spec := merra.MERRA2().Slice(granules)
	cat := NewCatalog(spec, merra.NewGenerator(testGrid, 7))
	srv, err := Serve(cat, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestCatalogEndpoint(t *testing.T) {
	srv := newTestServer(t, 5)
	resp, err := http.Get(srv.BaseURL() + "/thredds/catalog.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []string `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Datasets) != 5 {
		t.Fatalf("catalog lists %d datasets, want 5", len(out.Datasets))
	}
	if !strings.HasPrefix(out.Datasets[0], "MERRA2_100.inst3_3d_asm_Np.19800101") {
		t.Fatalf("first dataset = %s", out.Datasets[0])
	}
}

func TestFullGranuleDownloadDecodes(t *testing.T) {
	srv := newTestServer(t, 2)
	name := srv.Catalog.Spec.FileName(1)
	resp, err := http.Get(srv.FileURL(name))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %s", resp.Status)
	}
	f, err := merra.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vars) != 4 {
		t.Fatalf("granule has %d vars, want 4", len(f.Vars))
	}
	if f.Time != srv.Catalog.Spec.FileTime(1).Unix() {
		t.Fatal("granule timestamp mismatch")
	}
}

func TestSubsetSmallerThanFull(t *testing.T) {
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)

	full, _, err := fetchOne(context.Background(), http.DefaultClient, srv.FileURL(name))
	if err != nil {
		t.Fatal(err)
	}
	subset, _, err := fetchOne(context.Background(), http.DefaultClient, srv.SubsetURL(name, "IVT"))
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) >= len(full) {
		t.Fatalf("subset (%d B) not smaller than full granule (%d B)", len(subset), len(full))
	}
	f, err := merra.DecodeBytes(subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vars) != 1 || f.Vars[0].Name != "IVT" {
		t.Fatalf("subset vars = %v", f.Vars)
	}
	// Subset payload must equal the IVT extracted from the full granule.
	want, err := merra.ExtractVariable(full, "IVT")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if f.Vars[0].Data[i] != want.Data[i] {
			t.Fatal("subset IVT differs from full-granule IVT")
		}
	}
}

func TestSubsetMissingVariable(t *testing.T) {
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)
	resp, err := http.Get(srv.SubsetURL(name, "NOPE"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

func TestSubsetMissingVarParam(t *testing.T) {
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)
	resp, err := http.Get(srv.BaseURL() + "/thredds/ncss/" + name)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
}

func TestUnknownDataset404(t *testing.T) {
	srv := newTestServer(t, 1)
	resp, err := http.Get(srv.FileURL("nope.nc4"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

func TestGranuleBytesDeterministicAndCached(t *testing.T) {
	spec := merra.MERRA2().Slice(3)
	cat := NewCatalog(spec, merra.NewGenerator(testGrid, 7))
	a, err := cat.GranuleBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cat.GranuleBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("second GranuleBytes did not hit the cache")
	}
	if _, err := cat.GranuleBytes(99); err == nil {
		t.Fatal("out-of-range granule accepted")
	}
}

func TestDownloaderFetchesAll(t *testing.T) {
	srv := newTestServer(t, 12)
	var urls []string
	for i := 0; i < 12; i++ {
		urls = append(urls, srv.SubsetURL(srv.Catalog.Spec.FileName(i), "IVT"))
	}
	got := make(map[string]int)
	dl := &Downloader{Parallel: 4}
	results, total := dl.Fetch(context.Background(), urls, func(url string, body []byte) {
		got[url] = len(body)
	})
	if len(results) != 12 {
		t.Fatalf("results = %d, want 12", len(results))
	}
	var want int64
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("fetch %s: %v", r.URL, r.Err)
		}
		want += r.Bytes
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if len(got) != 12 {
		t.Fatalf("sink saw %d urls, want 12", len(got))
	}
}

func TestDownloaderReportsErrors(t *testing.T) {
	srv := newTestServer(t, 1)
	urls := []string{
		srv.SubsetURL(srv.Catalog.Spec.FileName(0), "IVT"),
		srv.FileURL("missing.nc4"),
	}
	dl := &Downloader{Parallel: 2}
	results, _ := dl.Fetch(context.Background(), urls, nil)
	if results[0].Err != nil {
		t.Fatalf("good url errored: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("404 url did not error")
	}
}

func TestDownloaderDefaultParallelism(t *testing.T) {
	srv := newTestServer(t, 3)
	var urls []string
	for i := 0; i < 3; i++ {
		urls = append(urls, srv.FileURL(srv.Catalog.Spec.FileName(i)))
	}
	dl := &Downloader{} // default 20 streams
	results, total := dl.Fetch(context.Background(), urls, nil)
	if total <= 0 {
		t.Fatal("no bytes fetched")
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestSubsetRatioApproximatesPaper(t *testing.T) {
	// On the full MERRA-2 spec the modeled subset ratio is 246/455; the
	// rendered NC4-lite files should show the same direction of savings
	// (subset strictly under half the full size for the 4-variable granule).
	srv := newTestServer(t, 1)
	name := srv.Catalog.Spec.FileName(0)
	full, _, _ := fetchOne(context.Background(), http.DefaultClient, srv.FileURL(name))
	subset, _, _ := fetchOne(context.Background(), http.DefaultClient, srv.SubsetURL(name, "IVT"))
	ratio := float64(len(subset)) / float64(len(full))
	if ratio >= 0.5 {
		t.Fatalf("subset ratio = %.2f, want < 0.5", ratio)
	}
	spec := merra.MERRA2()
	modelRatio := spec.TotalBytes(true) / spec.TotalBytes(false)
	if modelRatio < 0.5 || modelRatio > 0.6 {
		t.Fatalf("modeled ratio = %.3f, want ~0.54 (246/455)", modelRatio)
	}
}

// flakyHandler fails the first n requests per URL with the given status,
// then defers to next.
type flakyHandler struct {
	mu    sync.Mutex
	fails map[string]int
	n     int
	code  int
	next  http.Handler
	hits  map[string]int
}

func newFlaky(n, code int, next http.Handler) *flakyHandler {
	return &flakyHandler{fails: map[string]int{}, hits: map[string]int{}, n: n, code: code, next: next}
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits[r.URL.Path]++
	fail := f.fails[r.URL.Path] < f.n
	if fail {
		f.fails[r.URL.Path]++
	}
	f.mu.Unlock()
	if fail {
		http.Error(w, "injected flake", f.code)
		return
	}
	f.next.ServeHTTP(w, r)
}

func (f *flakyHandler) hitCount(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[path]
}

func TestDownloaderRetriesTransient(t *testing.T) {
	srv := newTestServer(t, 1)
	flaky := newFlaky(2, http.StatusServiceUnavailable, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(srv.BaseURL() + r.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	front := httptest.NewServer(flaky)
	defer front.Close()

	name := srv.Catalog.Spec.FileName(0)
	url := front.URL + "/thredds/ncss/" + name + "?var=IVT"
	dl := &Downloader{Parallel: 1, MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	results, total := dl.Fetch(context.Background(), []string{url}, nil)
	if results[0].Err != nil {
		t.Fatalf("fetch after two 503s failed: %v", results[0].Err)
	}
	if total <= 0 {
		t.Fatal("no bytes fetched")
	}
	if got := flaky.hitCount("/thredds/ncss/" + name); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two 503s + success)", got)
	}
}

func TestDownloaderGivesUpAfterMaxAttempts(t *testing.T) {
	flaky := newFlaky(100, http.StatusInternalServerError, nil)
	front := httptest.NewServer(flaky)
	defer front.Close()
	dl := &Downloader{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	results, _ := dl.Fetch(context.Background(), []string{front.URL + "/x"}, nil)
	if results[0].Err == nil {
		t.Fatal("persistent 500 did not error")
	}
	if got := flaky.hitCount("/x"); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly 3", got)
	}
}

func TestDownloaderDoesNotRetryNotFound(t *testing.T) {
	flaky := newFlaky(100, http.StatusNotFound, nil)
	front := httptest.NewServer(flaky)
	defer front.Close()
	dl := &Downloader{MaxAttempts: 5, BaseDelay: time.Millisecond}
	results, _ := dl.Fetch(context.Background(), []string{front.URL + "/gone"}, nil)
	if results[0].Err == nil {
		t.Fatal("404 did not error")
	}
	if got := flaky.hitCount("/gone"); got != 1 {
		t.Fatalf("404 was retried: %d attempts, want 1", got)
	}
}

func TestDownloaderRetryBackoffInterruptedByCancel(t *testing.T) {
	flaky := newFlaky(100, http.StatusServiceUnavailable, nil)
	front := httptest.NewServer(flaky)
	defer front.Close()
	ctx, cancel := context.WithCancel(context.Background())
	// Long backoff so cancellation must cut the sleep short.
	dl := &Downloader{MaxAttempts: 5, BaseDelay: 30 * time.Second, MaxDelay: 60 * time.Second}
	done := make(chan []Result, 1)
	go func() {
		results, _ := dl.Fetch(ctx, []string{front.URL + "/y"}, nil)
		done <- results
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and park in backoff
	cancel()
	select {
	case results := <-done:
		if results[0].Err == nil {
			t.Fatal("cancelled retry reported no error")
		}
		if !strings.Contains(results[0].Err.Error(), "retry interrupted") {
			t.Fatalf("err = %v, want retry-interrupted wrap", results[0].Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestDownloaderHonorsCancellation(t *testing.T) {
	srv := newTestServer(t, 6)
	var urls []string
	for i := 0; i < 6; i++ {
		urls = append(urls, srv.SubsetURL(srv.Catalog.Spec.FileName(i), "IVT"))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dl := &Downloader{Parallel: 2}
	results, total := dl.Fetch(ctx, urls, func(url string, body []byte) {
		t.Errorf("sink called for %s after cancellation", url)
	})
	if total != 0 {
		t.Fatalf("cancelled fetch moved %d bytes", total)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatalf("cancelled fetch of %s reported no error", r.URL)
		}
	}
}
