package cluster

import (
	"testing"
	"time"
)

// zero reports whether r is the zero allocation.
func zero(r Resources) bool {
	return r.CPU == 0 && r.Memory == 0 && r.GPUs == 0
}

// TestDoubleDrainReleasesOnce is the regression test for node-loss
// accounting: killing a node twice (or otherwise reaching finishPod through
// overlapping drain paths) must release each pod's resources exactly once.
func TestDoubleDrainReleasesOnce(t *testing.T) {
	clk, c := testCluster(1)
	req := Resources{CPU: 4, Memory: GB(8), GPUs: 2}
	p, err := c.CreatePod(PodSpec{
		Name: "w", Namespace: "connect", Requests: req,
		Run: sleepPod(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(time.Second) // bind
	n := c.Node("fiona8-00")
	if got := n.Allocated(); got != req {
		t.Fatalf("allocated = %v, want %v", got, req)
	}
	if err := c.KillNode("fiona8-00"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode("fiona8-00"); err != nil { // second drain must be a no-op
		t.Fatal(err)
	}
	// Belt and suspenders: drive finishPod at the already-terminal pod again.
	c.finishPod(p, PodFailed, "NodeLost")
	if got := n.Allocated(); !zero(got) {
		t.Fatalf("allocated after double drain = %v, want zero", got)
	}
	if got := c.Namespace("connect").Used(); !zero(got) {
		t.Fatalf("namespace used after double drain = %v, want zero", got)
	}
	// Kill → restore → kill must not go negative either.
	if err := c.RestoreNode("fiona8-00"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode("fiona8-00"); err != nil {
		t.Fatal(err)
	}
	if got := n.Allocated(); !zero(got) {
		t.Fatalf("allocated after kill/restore/kill = %v, want zero", got)
	}
}

// TestDeletePendingPodNotifiesOwner pins the fix for the controller
// accounting gap: deleting a Pending pod must flow through the terminal
// path so its owner drops it from the active set.
func TestDeletePendingPodNotifiesOwner(t *testing.T) {
	clk, c := testCluster(1)
	// Saturate the node so replica pods beyond the first stay Pending.
	whole := FIONA8Capacity()
	rs, err := c.CreateReplicaSet(ReplicaSetSpec{
		Name: "train", Namespace: "connect", Replicas: 3,
		Template: PodTemplate{
			Requests: Resources{CPU: whole.CPU, Memory: whole.Memory, GPUs: whole.GPUs},
			Run:      sleepPod(time.Hour),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(time.Second)
	if got := c.PodsInPhase("connect", PodPending); got != 2 {
		t.Fatalf("pending pods = %d, want 2", got)
	}
	rs.Scale(1)
	if got := rs.Active(); got != 1 {
		t.Fatalf("active after scale-down of pending pods = %d, want 1", got)
	}
	if got := c.PodsInPhase("connect", PodPending); got != 0 {
		t.Fatalf("pending pods after scale-down = %d, want 0", got)
	}
}

func TestClaimLifecycle(t *testing.T) {
	_, c := testCluster(1)
	req := Resources{CPU: 2, Memory: GB(4), GPUs: 1}
	if err := c.Claim("nope", "job-1", req); err != ErrNodeUnknown {
		t.Fatalf("claim on unknown node: err = %v, want ErrNodeUnknown", err)
	}
	if err := c.Claim("fiona8-00", "job-1", req); err != nil {
		t.Fatal(err)
	}
	if err := c.Claim("fiona8-00", "job-1", req); err != ErrDuplicate {
		t.Fatalf("duplicate claim: err = %v, want ErrDuplicate", err)
	}
	if err := c.Claim("fiona8-00", "job-2", Resources{GPUs: 99}); err != ErrInsufficient {
		t.Fatalf("oversized claim: err = %v, want ErrInsufficient", err)
	}
	n := c.Node("fiona8-00")
	if got := n.Allocated(); got != req {
		t.Fatalf("allocated = %v, want %v", got, req)
	}
	if !c.ReleaseClaim("fiona8-00", "job-1") {
		t.Fatal("first release returned false")
	}
	if c.ReleaseClaim("fiona8-00", "job-1") {
		t.Fatal("second release returned true; must be exactly-once")
	}
	if got := n.Allocated(); !zero(got) {
		t.Fatalf("allocated after release = %v, want zero", got)
	}
}

// TestKillNodeDropsClaimsOnce: node loss releases claims exactly once and
// reports their ids in the NodeEvent; a later ReleaseClaim by the claim's
// owner is inert.
func TestKillNodeDropsClaimsOnce(t *testing.T) {
	_, c := testCluster(1)
	req := Resources{CPU: 2, Memory: GB(4), GPUs: 1}
	for _, id := range []string{"job-b", "job-a"} {
		if err := c.Claim("fiona8-00", id, req); err != nil {
			t.Fatal(err)
		}
	}
	var events []NodeEvent
	c.OnNodeEvent(func(ev NodeEvent) { events = append(events, ev) })
	if err := c.KillNode("fiona8-00"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Ready {
		t.Fatalf("events = %+v, want one not-ready event", events)
	}
	got := events[0].DroppedClaims
	if len(got) != 2 || got[0] != "job-a" || got[1] != "job-b" {
		t.Fatalf("dropped claims = %v, want [job-a job-b]", got)
	}
	n := c.Node("fiona8-00")
	if got := n.Allocated(); !zero(got) {
		t.Fatalf("allocated after node loss = %v, want zero", got)
	}
	if c.ReleaseClaim("fiona8-00", "job-a") {
		t.Fatal("release after node loss returned true; claim was already dropped")
	}
	if got := n.Allocated(); !zero(got) {
		t.Fatalf("allocated went negative after stale release: %v", got)
	}
	// Claims cannot land on a lost node.
	if err := c.Claim("fiona8-00", "job-c", req); err != ErrNodeNotReady {
		t.Fatalf("claim on lost node: err = %v, want ErrNodeNotReady", err)
	}
	if err := c.RestoreNode("fiona8-00"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || !events[1].Ready {
		t.Fatalf("events after restore = %+v, want ready event appended", events)
	}
	if err := c.Claim("fiona8-00", "job-c", req); err != nil {
		t.Fatalf("claim after restore: %v", err)
	}
	if got := c.Claims("fiona8-00"); len(got) != 1 || got[0] != "job-c" {
		t.Fatalf("claims = %v, want [job-c]", got)
	}
}
