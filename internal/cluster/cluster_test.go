package cluster

import (
	"fmt"
	"testing"
	"time"

	"chaseci/internal/metrics"
	"chaseci/internal/sim"
)

// testCluster builds a cluster with n FIONA8 nodes and a "connect" namespace.
func testCluster(n int) (*sim.Clock, *Cluster) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("connect", nil)
	for i := 0; i < n; i++ {
		c.AddNode(fmt.Sprintf("fiona8-%02d", i), fmt.Sprintf("site-%d", i%3),
			FIONA8Capacity(), map[string]string{"gpu": "1080ti"})
	}
	return clk, c
}

// sleepPod returns a Run func that succeeds after d of virtual time.
func sleepPod(d time.Duration) func(*PodCtx) {
	return func(ctx *PodCtx) {
		ctx.After(d, ctx.Succeed)
	}
}

func TestPodSchedulesAndRuns(t *testing.T) {
	clk, c := testCluster(2)
	p, err := c.CreatePod(PodSpec{
		Name: "w", Namespace: "connect",
		Requests: Resources{CPU: 2, Memory: GB(4)},
		Run:      sleepPod(time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Phase != PodPending {
		t.Fatalf("initial phase = %v, want Pending", p.Phase)
	}
	clk.Run()
	if p.Phase != PodSucceeded {
		t.Fatalf("final phase = %v, want Succeeded", p.Phase)
	}
	if p.Node == "" {
		t.Fatal("pod never bound to a node")
	}
	if p.EndedAt-p.StartedAt != time.Minute {
		t.Fatalf("runtime = %v, want 1m", p.EndedAt-p.StartedAt)
	}
}

func TestPodUnknownNamespace(t *testing.T) {
	_, c := testCluster(1)
	if _, err := c.CreatePod(PodSpec{Name: "x", Namespace: "nope", Run: sleepPod(0)}); err != ErrNamespaceUnknown {
		t.Fatalf("err = %v, want ErrNamespaceUnknown", err)
	}
}

func TestResourceAccounting(t *testing.T) {
	clk, c := testCluster(1)
	req := Resources{CPU: 4, Memory: GB(8), GPUs: 2}
	c.CreatePod(PodSpec{Name: "a", Namespace: "connect", Requests: req, Run: sleepPod(time.Hour)})
	clk.RunUntil(time.Second)
	n := c.Node("fiona8-00")
	if n.Allocated() != req {
		t.Fatalf("allocated = %v, want %v", n.Allocated(), req)
	}
	clk.Run()
	if !n.Allocated().IsZero() {
		t.Fatalf("allocated after completion = %v, want zero", n.Allocated())
	}
}

func TestNodeNeverOversubscribed(t *testing.T) {
	clk, c := testCluster(1) // 24 CPU, 8 GPU
	for i := 0; i < 10; i++ {
		c.CreatePod(PodSpec{
			Name: fmt.Sprintf("p%d", i), Namespace: "connect",
			Requests: Resources{CPU: 10, GPUs: 3},
			Run:      sleepPod(time.Minute),
		})
	}
	over := false
	c.OnPodPhase(func(p *Pod) {
		for _, n := range c.Nodes() {
			a := n.Allocated()
			if a.CPU > n.Capacity.CPU+1e-9 || a.GPUs > n.Capacity.GPUs {
				over = true
			}
		}
	})
	clk.Run()
	if over {
		t.Fatal("node was oversubscribed")
	}
	if got := c.PodsInPhase("connect", PodSucceeded); got != 10 {
		t.Fatalf("succeeded = %d, want 10 (queued pods must run as space frees)", got)
	}
}

func TestNodeSelector(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("cpu-node", "a", FIONACapacity(), map[string]string{"kind": "cpu"})
	c.AddNode("gpu-node", "a", FIONA8Capacity(), map[string]string{"kind": "gpu"})
	p, _ := c.CreatePod(PodSpec{
		Name: "viz", Namespace: "ns",
		NodeSelector: map[string]string{"kind": "gpu"},
		Run:          sleepPod(time.Second),
	})
	clk.Run()
	if p.Node != "gpu-node" {
		t.Fatalf("pod bound to %s, want gpu-node", p.Node)
	}
}

func TestUnschedulablePodWaitsForNode(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	p, _ := c.CreatePod(PodSpec{
		Name: "w", Namespace: "ns",
		Requests: Resources{GPUs: 1},
		Run:      sleepPod(time.Second),
	})
	clk.RunFor(time.Minute)
	if p.Phase != PodPending || p.Reason != "Unschedulable" {
		t.Fatalf("phase=%v reason=%q, want Pending/Unschedulable", p.Phase, p.Reason)
	}
	c.AddNode("late", "a", FIONA8Capacity(), nil)
	clk.Run()
	if p.Phase != PodSucceeded {
		t.Fatalf("phase after node join = %v, want Succeeded", p.Phase)
	}
}

func TestQuotaBlocksThenAdmits(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	quota := Resources{CPU: 4, Memory: GB(100), GPUs: 8}
	c.CreateNamespace("capped", &quota)
	c.AddNode("n", "a", FIONA8Capacity(), nil)
	a, _ := c.CreatePod(PodSpec{Name: "a", Namespace: "capped",
		Requests: Resources{CPU: 3}, Run: sleepPod(time.Minute)})
	b, _ := c.CreatePod(PodSpec{Name: "b", Namespace: "capped",
		Requests: Resources{CPU: 3}, Run: sleepPod(time.Minute)})
	clk.RunUntil(30 * time.Second)
	if a.Phase != PodRunning {
		t.Fatalf("pod a phase = %v, want Running", a.Phase)
	}
	if b.Phase != PodPending || b.Reason != "QuotaExceeded" {
		t.Fatalf("pod b phase=%v reason=%q, want Pending/QuotaExceeded", b.Phase, b.Reason)
	}
	clk.Run()
	if b.Phase != PodSucceeded {
		t.Fatalf("pod b final phase = %v, want Succeeded after quota freed", b.Phase)
	}
}

func TestQuotaIsPerNamespace(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	quota := Resources{CPU: 1, Memory: GB(1)}
	c.CreateNamespace("small", &quota)
	c.CreateNamespace("big", nil)
	c.AddNode("n", "a", FIONA8Capacity(), nil)
	blocked, _ := c.CreatePod(PodSpec{Name: "x", Namespace: "small",
		Requests: Resources{CPU: 8}, Run: sleepPod(time.Second)})
	free, _ := c.CreatePod(PodSpec{Name: "y", Namespace: "big",
		Requests: Resources{CPU: 8}, Run: sleepPod(time.Second)})
	clk.RunFor(time.Minute)
	if blocked.Phase != PodPending {
		t.Fatalf("over-quota pod phase = %v, want Pending", blocked.Phase)
	}
	if free.Phase != PodSucceeded {
		t.Fatalf("other-namespace pod phase = %v, want Succeeded", free.Phase)
	}
}

func TestKillNodeFailsPods(t *testing.T) {
	clk, c := testCluster(1)
	p, _ := c.CreatePod(PodSpec{Name: "w", Namespace: "connect",
		Requests: Resources{CPU: 1}, Run: sleepPod(time.Hour)})
	clk.RunUntil(time.Second)
	if p.Phase != PodRunning {
		t.Fatalf("phase = %v, want Running", p.Phase)
	}
	c.KillNode("fiona8-00")
	if p.Phase != PodFailed || p.Reason != "NodeLost" {
		t.Fatalf("phase=%v reason=%q after node kill", p.Phase, p.Reason)
	}
	// The pod's pending sleep callback must not fire Succeed afterwards.
	clk.Run()
	if p.Phase != PodFailed {
		t.Fatalf("pod phase changed after death: %v", p.Phase)
	}
}

func TestRestoreNodeSchedulesPending(t *testing.T) {
	clk, c := testCluster(1)
	c.KillNode("fiona8-00")
	p, _ := c.CreatePod(PodSpec{Name: "w", Namespace: "connect",
		Requests: Resources{CPU: 1}, Run: sleepPod(time.Second)})
	clk.RunFor(time.Minute)
	if p.Phase != PodPending {
		t.Fatalf("phase = %v, want Pending with no ready nodes", p.Phase)
	}
	c.RestoreNode("fiona8-00")
	clk.Run()
	if p.Phase != PodSucceeded {
		t.Fatalf("phase = %v, want Succeeded after restore", p.Phase)
	}
}

func TestSchedulerSpreadsLoad(t *testing.T) {
	clk, c := testCluster(4)
	counts := map[string]int{}
	var pods []*Pod
	for i := 0; i < 8; i++ {
		p, _ := c.CreatePod(PodSpec{Name: fmt.Sprintf("w%d", i), Namespace: "connect",
			Requests: Resources{CPU: 4, GPUs: 2}, Run: sleepPod(time.Hour)})
		pods = append(pods, p)
	}
	clk.RunUntil(time.Second)
	for _, p := range pods {
		counts[p.Node]++
	}
	for node, n := range counts {
		if n != 2 {
			t.Fatalf("node %s got %d pods, want 2 (even spread): %v", node, n, counts)
		}
	}
}

func TestClusterMetricsPublished(t *testing.T) {
	clk := sim.NewClock()
	reg := metrics.NewRegistry(clk)
	c := New(clk, reg)
	c.CreateNamespace("ns", nil)
	c.AddNode("n", "a", FIONA8Capacity(), nil)
	c.CreatePod(PodSpec{Name: "w", Namespace: "ns",
		Requests: Resources{CPU: 5, GPUs: 3}, Run: sleepPod(time.Minute)})
	clk.RunUntil(time.Second)
	if v := reg.Select("k8s_gpus_in_use", nil)[0].Last().Value; v != 3 {
		t.Fatalf("gpus_in_use = %v, want 3", v)
	}
	if v := reg.Select("k8s_cpu_in_use", nil)[0].Last().Value; v != 5 {
		t.Fatalf("cpu_in_use = %v, want 5", v)
	}
	clk.Run()
	if v := reg.Select("k8s_pods_running", nil)[0].Last().Value; v != 0 {
		t.Fatalf("pods_running at end = %v, want 0", v)
	}
}

func TestEventsLogged(t *testing.T) {
	clk, c := testCluster(1)
	c.CreatePod(PodSpec{Name: "w", Namespace: "connect", Run: sleepPod(time.Second)})
	clk.Run()
	kinds := map[string]bool{}
	for _, e := range c.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"NodeReady", "PodCreated", "PodScheduled", "PodSucceeded"} {
		if !kinds[want] {
			t.Fatalf("event log missing %s: %v", want, kinds)
		}
	}
}

func TestNamespaceAdmin(t *testing.T) {
	_, c := testCluster(1)
	ns := c.Namespace("connect")
	ns.GrantAdmin("ialtintas@ucsd.edu")
	if !ns.IsAdmin("ialtintas@ucsd.edu") {
		t.Fatal("granted admin not recognized")
	}
	if ns.IsAdmin("someone@else.edu") {
		t.Fatal("ungranted user recognized as admin")
	}
}

func TestDuplicateNodeAndNamespace(t *testing.T) {
	_, c := testCluster(1)
	if _, err := c.AddNode("fiona8-00", "x", FIONACapacity(), nil); err != ErrDuplicate {
		t.Fatalf("duplicate node err = %v, want ErrDuplicate", err)
	}
	if _, err := c.CreateNamespace("connect", nil); err != ErrDuplicate {
		t.Fatalf("duplicate namespace err = %v, want ErrDuplicate", err)
	}
}

func TestPodFailPropagates(t *testing.T) {
	clk, c := testCluster(1)
	p, _ := c.CreatePod(PodSpec{Name: "w", Namespace: "connect",
		Run: func(ctx *PodCtx) {
			ctx.After(time.Second, func() { ctx.Fail("OOMKilled") })
		}})
	clk.Run()
	if p.Phase != PodFailed || p.Reason != "OOMKilled" {
		t.Fatalf("phase=%v reason=%q", p.Phase, p.Reason)
	}
}

func TestTotalCapacityTracksReadyNodes(t *testing.T) {
	_, c := testCluster(3)
	want := 3 * 8
	if got := c.TotalCapacity().GPUs; got != want {
		t.Fatalf("GPUs = %d, want %d", got, want)
	}
	c.KillNode("fiona8-01")
	if got := c.TotalCapacity().GPUs; got != 16 {
		t.Fatalf("GPUs after kill = %d, want 16", got)
	}
}
