package cluster

import (
	"fmt"
	"time"
)

// PodPhase is the lifecycle state of a pod.
type PodPhase int

// Pod lifecycle phases, mirroring the Kubernetes state machine.
const (
	PodPending PodPhase = iota
	PodRunning
	PodSucceeded
	PodFailed
)

func (p PodPhase) String() string {
	switch p {
	case PodPending:
		return "Pending"
	case PodRunning:
		return "Running"
	case PodSucceeded:
		return "Succeeded"
	case PodFailed:
		return "Failed"
	}
	return fmt.Sprintf("PodPhase(%d)", int(p))
}

// Terminal reports whether the phase is final.
func (p PodPhase) Terminal() bool { return p == PodSucceeded || p == PodFailed }

// PodSpec declares a pod: what it requests and what its container does.
type PodSpec struct {
	Name      string
	Namespace string
	Requests  Resources
	// NodeSelector restricts scheduling to nodes whose labels contain every
	// listed pair ("Kubernetes object labeling conventions enabled
	// straightforward targeting of specific nodes").
	NodeSelector map[string]string
	// Tolerations allow scheduling onto tainted nodes: key -> value ("" =
	// tolerate any value of the key).
	Tolerations map[string]string
	Labels      map[string]string
	// Run is the container entrypoint, invoked in virtual time when the pod
	// starts on a node. The workload drives itself with ctx's clock and must
	// eventually call ctx.Succeed or ctx.Fail; pods whose node dies first are
	// failed by the node controller.
	Run func(ctx *PodCtx)

	// pinnedNode binds the pod to one node (DaemonSet placement).
	pinnedNode string
}

// Pod is a scheduled (or waiting) instance of a PodSpec.
type Pod struct {
	Spec  PodSpec
	UID   uint64
	Phase PodPhase
	// Node is the binding; empty while pending.
	Node string
	// Reason describes why the pod is in a non-normal state
	// (e.g. "NodeLost", "QuotaExceeded", "Unschedulable").
	Reason    string
	Index     int // worker index assigned by the owning Job/ReplicaSet
	CreatedAt time.Duration
	StartedAt time.Duration
	EndedAt   time.Duration

	cluster *Cluster
	ctx     *PodCtx
	owner   podOwner
	// released latches once node/namespace accounting has been returned, so
	// overlapping drain paths cannot double-subtract (see finishPod).
	released bool
}

// podOwner is implemented by controllers that need pod phase notifications.
type podOwner interface {
	podTerminated(p *Pod)
}

// Name returns namespace/name[uid] for logs.
func (p *Pod) Name() string {
	return fmt.Sprintf("%s/%s", p.Spec.Namespace, p.Spec.Name)
}

// PodCtx is the container's view of the world while running.
type PodCtx struct {
	pod     *Pod
	cluster *Cluster
	alive   bool
}

// Pod returns the pod this context belongs to.
func (c *PodCtx) Pod() *Pod { return c.pod }

// Index returns the worker index assigned by the owning controller.
func (c *PodCtx) Index() int { return c.pod.Index }

// NodeName returns the node the pod runs on.
func (c *PodCtx) NodeName() string { return c.pod.Node }

// Alive reports whether the container is still running (false once the pod
// terminated, e.g. because its node was lost). Long-running workloads should
// check this between virtual-time steps.
func (c *PodCtx) Alive() bool { return c.alive }

// After schedules fn on the virtual clock; fn is skipped if the pod has
// terminated by then, so workloads need no explicit cancellation plumbing.
func (c *PodCtx) After(d time.Duration, fn func()) {
	c.cluster.clock.After(d, func() {
		if c.alive {
			fn()
		}
	})
}

// Succeed marks the pod complete.
func (c *PodCtx) Succeed() { c.cluster.finishPod(c.pod, PodSucceeded, "") }

// Fail marks the pod failed with a reason.
func (c *PodCtx) Fail(reason string) { c.cluster.finishPod(c.pod, PodFailed, reason) }
