package cluster

import (
	"strings"
	"testing"
	"time"

	"chaseci/internal/sim"
)

func TestTaintRepelsUntoleratingPods(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("viz-node", "ucsd", FIONA8Capacity(), nil)
	if err := c.TaintNode("viz-node", Taint{Key: "reserved", Value: "suncave"}); err != nil {
		t.Fatal(err)
	}
	p, _ := c.CreatePod(PodSpec{Name: "plain", Namespace: "ns", Run: sleepPod(time.Second)})
	clk.RunFor(time.Minute)
	if p.Phase != PodPending || p.Reason != "Unschedulable" {
		t.Fatalf("untolerating pod phase=%v reason=%q, want Pending/Unschedulable", p.Phase, p.Reason)
	}
}

func TestTolerationAdmits(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("viz-node", "ucsd", FIONA8Capacity(), nil)
	c.TaintNode("viz-node", Taint{Key: "reserved", Value: "suncave"})
	p, _ := c.CreatePod(PodSpec{
		Name: "wall", Namespace: "ns",
		Tolerations: map[string]string{"reserved": "suncave"},
		Run:         sleepPod(time.Second),
	})
	clk.Run()
	if p.Phase != PodSucceeded || p.Node != "viz-node" {
		t.Fatalf("tolerating pod phase=%v node=%s", p.Phase, p.Node)
	}
}

func TestTolerateAnyValue(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("n", "s", FIONA8Capacity(), nil)
	c.TaintNode("n", Taint{Key: "tenant", Value: "groupA"})
	p, _ := c.CreatePod(PodSpec{
		Name: "w", Namespace: "ns",
		Tolerations: map[string]string{"tenant": ""}, // any value
		Run:         sleepPod(time.Second),
	})
	clk.Run()
	if p.Phase != PodSucceeded {
		t.Fatalf("any-value toleration rejected: %v/%s", p.Phase, p.Reason)
	}
}

func TestTolerationValueMismatch(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("n", "s", FIONA8Capacity(), nil)
	c.TaintNode("n", Taint{Key: "tenant", Value: "groupA"})
	p, _ := c.CreatePod(PodSpec{
		Name: "w", Namespace: "ns",
		Tolerations: map[string]string{"tenant": "groupB"},
		Run:         sleepPod(time.Second),
	})
	clk.RunFor(time.Minute)
	if p.Phase != PodPending {
		t.Fatalf("mismatched toleration admitted: %v", p.Phase)
	}
}

func TestUntaintUnblocksPending(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("n", "s", FIONA8Capacity(), nil)
	c.TaintNode("n", Taint{Key: "maintenance", Value: "1"})
	p, _ := c.CreatePod(PodSpec{Name: "w", Namespace: "ns", Run: sleepPod(time.Second)})
	clk.RunFor(time.Minute)
	if p.Phase != PodPending {
		t.Fatalf("pod phase = %v before untaint", p.Phase)
	}
	c.UntaintNode("n", "maintenance")
	clk.Run()
	if p.Phase != PodSucceeded {
		t.Fatalf("pod phase = %v after untaint", p.Phase)
	}
}

func TestTaintOverwriteAndList(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.AddNode("n", "s", FIONACapacity(), nil)
	c.TaintNode("n", Taint{Key: "k", Value: "v1"})
	c.TaintNode("n", Taint{Key: "k", Value: "v2"})
	taints := c.Node("n").Taints()
	if len(taints) != 1 || taints[0].Value != "v2" {
		t.Fatalf("taints = %v", taints)
	}
	if err := c.TaintNode("ghost", Taint{Key: "k"}); err != ErrNodeUnknown {
		t.Fatalf("taint unknown node err = %v", err)
	}
	if err := c.UntaintNode("ghost", "k"); err != ErrNodeUnknown {
		t.Fatalf("untaint unknown node err = %v", err)
	}
}

func TestRunningPodsSurviveNewTaint(t *testing.T) {
	// NoSchedule semantics: tainting does not evict running pods.
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("ns", nil)
	c.AddNode("n", "s", FIONA8Capacity(), nil)
	p, _ := c.CreatePod(PodSpec{Name: "w", Namespace: "ns", Run: sleepPod(time.Hour)})
	clk.RunFor(time.Second)
	if p.Phase != PodRunning {
		t.Fatalf("pod phase = %v", p.Phase)
	}
	c.TaintNode("n", Taint{Key: "reserved", Value: "x"})
	clk.Run()
	if p.Phase != PodSucceeded {
		t.Fatalf("running pod was disturbed by taint: %v/%s", p.Phase, p.Reason)
	}
}

func TestFormatNodes(t *testing.T) {
	clk, c := testCluster(2)
	_ = clk
	out := c.FormatNodes()
	for _, want := range []string{"NAME", "fiona8-00", "Ready", "gpu=1080ti"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatNodes missing %q:\n%s", want, out)
		}
	}
	c.KillNode("fiona8-00")
	if !strings.Contains(c.FormatNodes(), "NotReady") {
		t.Fatal("killed node not shown NotReady")
	}
}

func TestFormatPods(t *testing.T) {
	clk, c := testCluster(1)
	c.CreatePod(PodSpec{Name: "w1", Namespace: "connect", Run: sleepPod(time.Minute)})
	clk.RunFor(time.Second)
	out := c.FormatPods("connect")
	for _, want := range []string{"connect/w1", "Running", "fiona8-00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatPods missing %q:\n%s", want, out)
		}
	}
	if got := c.FormatPods("other"); strings.Contains(got, "w1") {
		t.Fatal("namespace filter leaked")
	}
}

func TestFormatEventsTail(t *testing.T) {
	clk, c := testCluster(1)
	c.CreatePod(PodSpec{Name: "w", Namespace: "connect", Run: sleepPod(time.Second)})
	clk.Run()
	out := c.FormatEvents(2)
	lines := strings.Count(out, "\n")
	if lines != 3 { // header + 2 events
		t.Fatalf("FormatEvents(2) rendered %d lines:\n%s", lines, out)
	}
}
