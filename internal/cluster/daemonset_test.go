package cluster

import (
	"fmt"
	"testing"
	"time"

	"chaseci/internal/sim"
)

// exporterTemplate is a node-exporter-like long-running daemon.
func exporterTemplate() PodTemplate {
	return PodTemplate{
		Requests: Resources{CPU: 0.1, Memory: 1e8},
		Labels:   map[string]string{"app": "node-exporter"},
		Run:      func(pc *PodCtx) {},
	}
}

func TestDaemonSetCoversAllNodes(t *testing.T) {
	clk, c := testCluster(5)
	ds, err := c.CreateDaemonSet(DaemonSetSpec{
		Name: "node-exporter", Namespace: "connect",
		Template: exporterTemplate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Second)
	if ds.Active() != 5 {
		t.Fatalf("active daemons = %d, want 5", ds.Active())
	}
	for _, n := range c.Nodes() {
		p := ds.PodOn(n.Name)
		if p == nil {
			t.Fatalf("no daemon tracked for %s", n.Name)
		}
		if p.Node != n.Name {
			t.Fatalf("daemon for %s bound to %s", n.Name, p.Node)
		}
	}
}

func TestDaemonSetFollowsNodeJoin(t *testing.T) {
	clk, c := testCluster(2)
	ds, _ := c.CreateDaemonSet(DaemonSetSpec{
		Name: "exp", Namespace: "connect", Template: exporterTemplate(),
	})
	clk.RunFor(time.Second)
	if ds.Active() != 2 {
		t.Fatalf("active = %d, want 2", ds.Active())
	}
	c.AddNode("late-node", "site-9", FIONA8Capacity(), nil)
	clk.RunFor(time.Second)
	if ds.Active() != 3 {
		t.Fatalf("active after join = %d, want 3", ds.Active())
	}
	if p := ds.PodOn("late-node"); p == nil || p.Node != "late-node" {
		t.Fatal("daemon did not land on the new node")
	}
}

func TestDaemonSetNodeLossAndReturn(t *testing.T) {
	clk, c := testCluster(3)
	ds, _ := c.CreateDaemonSet(DaemonSetSpec{
		Name: "exp", Namespace: "connect", Template: exporterTemplate(),
	})
	clk.RunFor(time.Second)
	c.KillNode("fiona8-01")
	clk.RunFor(time.Second)
	if ds.Active() != 2 {
		t.Fatalf("active after node loss = %d, want 2", ds.Active())
	}
	if ds.PodOn("fiona8-01") != nil {
		t.Fatal("daemon still tracked on dead node")
	}
	c.RestoreNode("fiona8-01")
	clk.RunFor(time.Second)
	if ds.Active() != 3 {
		t.Fatalf("active after restore = %d, want 3", ds.Active())
	}
}

func TestDaemonSetSelector(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("mon", nil)
	c.AddNode("gpu-1", "a", FIONA8Capacity(), map[string]string{"kind": "gpu"})
	c.AddNode("cpu-1", "a", FIONACapacity(), map[string]string{"kind": "cpu"})
	ds, _ := c.CreateDaemonSet(DaemonSetSpec{
		Name: "gpu-exporter", Namespace: "mon",
		NodeSelector: map[string]string{"kind": "gpu"},
		Template:     exporterTemplate(),
	})
	clk.RunFor(time.Second)
	if ds.Active() != 1 || ds.PodOn("gpu-1") == nil {
		t.Fatalf("selector not honored: active=%d", ds.Active())
	}
}

func TestDaemonSetReplacesCrashedDaemon(t *testing.T) {
	clk, c := testCluster(1)
	crashes := 0
	ds, _ := c.CreateDaemonSet(DaemonSetSpec{
		Name: "flaky", Namespace: "connect",
		Template: PodTemplate{Run: func(pc *PodCtx) {
			if crashes == 0 {
				crashes++
				pc.After(time.Second, func() { pc.Fail("panic") })
			}
		}},
	})
	clk.RunFor(time.Minute)
	if ds.Active() != 1 {
		t.Fatalf("active = %d, want 1 (replacement after crash)", ds.Active())
	}
	if crashes != 1 {
		t.Fatalf("crashes = %d", crashes)
	}
}

func TestDaemonSetDelete(t *testing.T) {
	clk, c := testCluster(3)
	ds, _ := c.CreateDaemonSet(DaemonSetSpec{
		Name: "exp", Namespace: "connect", Template: exporterTemplate(),
	})
	clk.RunFor(time.Second)
	ds.Delete()
	clk.RunFor(time.Second)
	if ds.Active() != 0 {
		t.Fatalf("active after delete = %d", ds.Active())
	}
	if got := c.PodsInPhase("connect", PodRunning); got != 0 {
		t.Fatalf("%d daemons still running after delete", got)
	}
	// New nodes must not resurrect it.
	c.AddNode("post-delete", "s", FIONACapacity(), nil)
	clk.RunFor(time.Second)
	if ds.Active() != 0 {
		t.Fatal("deleted daemonset reconciled onto new node")
	}
}

func TestDaemonSetValidation(t *testing.T) {
	_, c := testCluster(1)
	if _, err := c.CreateDaemonSet(DaemonSetSpec{Name: "x", Namespace: "connect"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if _, err := c.CreateDaemonSet(DaemonSetSpec{Name: "x", Namespace: "ghost",
		Template: exporterTemplate()}); err != ErrNamespaceUnknown {
		t.Fatalf("unknown namespace err = %v", err)
	}
}

func TestDaemonSetManyNodes(t *testing.T) {
	clk := sim.NewClock()
	c := New(clk, nil)
	c.CreateNamespace("mon", nil)
	for i := 0; i < 40; i++ {
		c.AddNode(fmt.Sprintf("n-%02d", i), "s", FIONA8Capacity(), nil)
	}
	ds, _ := c.CreateDaemonSet(DaemonSetSpec{
		Name: "exp", Namespace: "mon", Template: exporterTemplate(),
	})
	clk.RunFor(time.Second)
	if ds.Active() != 40 {
		t.Fatalf("active = %d, want 40", ds.Active())
	}
}
