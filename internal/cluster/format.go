package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// kubectl-style renderings of cluster state, used by cmd/nautilus and the
// examples to show what an operator would see.

// FormatNodes renders `kubectl get nodes -o wide`-ish output.
func (c *Cluster) FormatNodes() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-8s %-10s %10s %12s %6s %s\n",
		"NAME", "STATUS", "SITE", "CPU", "MEMORY", "GPUS", "LABELS")
	for _, n := range c.Nodes() {
		status := "Ready"
		if !n.Ready {
			status = "NotReady"
		}
		cpu := fmt.Sprintf("%.0f/%.0f", n.allocated.CPU, n.Capacity.CPU)
		mem := fmt.Sprintf("%.0fG/%.0fG", n.allocated.Memory/1e9, n.Capacity.Memory/1e9)
		gpus := fmt.Sprintf("%d/%d", n.allocated.GPUs, n.Capacity.GPUs)
		fmt.Fprintf(&b, "%-24s %-8s %-10s %10s %12s %6s %s\n",
			n.Name, status, n.Site, cpu, mem, gpus, formatLabels(n.Labels))
	}
	return b.String()
}

// FormatPods renders `kubectl get pods -n namespace`-ish output; empty
// namespace lists all.
func (c *Cluster) FormatPods(namespace string) string {
	var pods []*Pod
	for _, p := range c.pods {
		if namespace == "" || p.Spec.Namespace == namespace {
			pods = append(pods, p)
		}
	}
	sort.Slice(pods, func(i, j int) bool { return pods[i].UID < pods[j].UID })
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %-10s %-22s %10s %s\n", "NAME", "STATUS", "NODE", "AGE", "REASON")
	for _, p := range pods {
		age := c.clock.Now() - p.CreatedAt
		fmt.Fprintf(&b, "%-32s %-10s %-22s %10s %s\n",
			p.Name(), p.Phase, p.Node, age.Round(time.Second), p.Reason)
	}
	return b.String()
}

// FormatEvents renders the last n events, newest last.
func (c *Cluster) FormatEvents(n int) string {
	events := c.events
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %-28s %s\n", "AGE", "KIND", "OBJECT", "MESSAGE")
	for _, e := range events {
		fmt.Fprintf(&b, "%-12s %-18s %-28s %s\n",
			(c.clock.Now() - e.At).Round(time.Second), e.Kind, e.Object, e.Message)
	}
	return b.String()
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return "<none>"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}
