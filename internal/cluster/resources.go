// Package cluster is the simulated Kubernetes layer of CHASE-CI: nodes
// (FIONAs and FIONA8 GPU appliances) register capacity, namespaces partition
// the cluster into virtual clusters with quotas, and controllers (Job,
// ReplicaSet, Service) reconcile declared state while a scheduler binds pods
// to nodes. Nodes can join and leave at any time; pods on a lost node are
// failed and their controllers respawn them elsewhere, reproducing the
// self-healing behaviour Section V of the paper describes. All activity runs
// in virtual time on a sim.Clock.
package cluster

import "fmt"

// Resources describes compute capacity or a pod's request: CPU cores, bytes
// of memory, and whole GPUs (exposed through the device-plugin model the
// paper uses for CHASE-CI's game GPUs).
type Resources struct {
	CPU    float64
	Memory float64
	GPUs   int
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, Memory: r.Memory + o.Memory, GPUs: r.GPUs + o.GPUs}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPU: r.CPU - o.CPU, Memory: r.Memory - o.Memory, GPUs: r.GPUs - o.GPUs}
}

// Fits reports whether a request r fits within available a.
func (r Resources) Fits(a Resources) bool {
	return r.CPU <= a.CPU+1e-9 && r.Memory <= a.Memory+1e-9 && r.GPUs <= a.GPUs
}

// IsZero reports whether all fields are zero.
func (r Resources) IsZero() bool { return r.CPU == 0 && r.Memory == 0 && r.GPUs == 0 }

func (r Resources) String() string {
	return fmt.Sprintf("cpu=%.1f mem=%.1fGB gpus=%d", r.CPU, r.Memory/1e9, r.GPUs)
}

// GB is a convenience for expressing memory sizes.
func GB(n float64) float64 { return n * 1e9 }

// FIONACapacity is the basic Calit2 FIONA build from Section II: dual
// 12-core CPUs, 96 GB RAM, no GPUs.
func FIONACapacity() Resources { return Resources{CPU: 24, Memory: GB(96), GPUs: 0} }

// FIONA8Capacity is the multi-tenant "FIONA8" appliance: eight game GPUs.
func FIONA8Capacity() Resources { return Resources{CPU: 24, Memory: GB(96), GPUs: 8} }
