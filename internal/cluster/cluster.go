package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"chaseci/internal/metrics"
	"chaseci/internal/sim"
)

// Errors returned by cluster operations.
var (
	ErrNamespaceUnknown = errors.New("cluster: unknown namespace")
	ErrNodeUnknown      = errors.New("cluster: unknown node")
	ErrDuplicate        = errors.New("cluster: object already exists")
	ErrNodeNotReady     = errors.New("cluster: node not ready")
	ErrInsufficient     = errors.New("cluster: insufficient capacity")
)

// Node is a cluster member: a FIONA appliance at some PRP site.
type Node struct {
	Name     string
	Site     string
	Capacity Resources
	Labels   map[string]string
	Ready    bool

	allocated Resources
	pods      map[uint64]*Pod
	taints    []Taint
	claims    map[string]Resources
}

// Allocated returns resources currently bound to pods on the node.
func (n *Node) Allocated() Resources { return n.allocated }

// Available returns unallocated capacity.
func (n *Node) Available() Resources { return n.Capacity.Sub(n.allocated) }

// Namespace is a virtual cluster with optional resource quota (Section IV).
type Namespace struct {
	Name string
	// Quota caps the summed requests of non-terminal pods. Nil means
	// unlimited.
	Quota *Resources

	used   Resources
	admins map[string]bool
}

// Used returns requests consumed by non-terminal pods in the namespace.
func (ns *Namespace) Used() Resources { return ns.used }

// NodeEvent describes a node lifecycle transition for external observers
// (e.g. the placement scheduler in internal/sched).
type NodeEvent struct {
	Node  string
	Site  string
	Ready bool
	// DroppedClaims lists the ids of external claims the node held when it
	// was lost. Their resources are already released; the ids let observers
	// requeue the work they backed without racing a second release.
	DroppedClaims []string
}

// Event is an entry in the cluster's event log.
type Event struct {
	At      time.Duration
	Kind    string // e.g. "PodScheduled", "NodeLost"
	Object  string
	Message string
}

// Cluster is the simulated control plane: state store, scheduler, and node
// lifecycle. Controllers (Job, ReplicaSet) are layered on top in
// controllers.go.
type Cluster struct {
	clock *sim.Clock
	reg   *metrics.Registry

	nodes      map[string]*Node
	nodeNames  []string
	namespaces map[string]*Namespace
	pods       map[uint64]*Pod
	pending    []*Pod
	events     []Event
	nextUID    uint64

	schedDelay    time.Duration
	schedPending  bool
	phaseWatchers []func(*Pod)
	nodeWatchers  []func(NodeEvent)
	daemonSets    []*DaemonSet

	podsRunning *metrics.Gauge
	cpuInUse    *metrics.Gauge
	memInUse    *metrics.Gauge
	gpusInUse   *metrics.Gauge
}

// New creates an empty cluster on the clock. reg may be nil.
func New(clock *sim.Clock, reg *metrics.Registry) *Cluster {
	c := &Cluster{
		clock:      clock,
		reg:        reg,
		nodes:      make(map[string]*Node),
		namespaces: make(map[string]*Namespace),
		pods:       make(map[uint64]*Pod),
		schedDelay: 200 * time.Millisecond,
	}
	if reg != nil {
		c.podsRunning = reg.Gauge("k8s_pods_running", nil)
		c.cpuInUse = reg.Gauge("k8s_cpu_in_use", nil)
		c.memInUse = reg.Gauge("k8s_mem_in_use_bytes", nil)
		c.gpusInUse = reg.Gauge("k8s_gpus_in_use", nil)
	}
	return c
}

// Clock returns the cluster's virtual clock.
func (c *Cluster) Clock() *sim.Clock { return c.clock }

// Registry returns the metric registry (may be nil).
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// SetSchedulerDelay adjusts the virtual latency between a pod becoming
// schedulable and its binding (default 200ms).
func (c *Cluster) SetSchedulerDelay(d time.Duration) { c.schedDelay = d }

// logEvent appends to the cluster event log.
func (c *Cluster) logEvent(kind, object, format string, args ...any) {
	c.events = append(c.events, Event{
		At: c.clock.Now(), Kind: kind, Object: object,
		Message: fmt.Sprintf(format, args...),
	})
}

// Events returns the event log.
func (c *Cluster) Events() []Event { return c.events }

// OnPodPhase registers a watcher invoked on every pod phase transition.
func (c *Cluster) OnPodPhase(fn func(*Pod)) { c.phaseWatchers = append(c.phaseWatchers, fn) }

// OnNodeEvent registers a watcher invoked on every node join/loss/restore.
func (c *Cluster) OnNodeEvent(fn func(NodeEvent)) { c.nodeWatchers = append(c.nodeWatchers, fn) }

func (c *Cluster) notifyNode(ev NodeEvent) {
	for _, w := range c.nodeWatchers {
		w(ev)
	}
}

// --- Namespaces -----------------------------------------------------------

// CreateNamespace registers a virtual cluster. quota may be nil (unlimited).
func (c *Cluster) CreateNamespace(name string, quota *Resources) (*Namespace, error) {
	if _, dup := c.namespaces[name]; dup {
		return nil, ErrDuplicate
	}
	ns := &Namespace{Name: name, Quota: quota, admins: make(map[string]bool)}
	c.namespaces[name] = ns
	c.logEvent("NamespaceCreated", name, "quota=%v", quota)
	return ns, nil
}

// Namespace returns the namespace, or nil.
func (c *Cluster) Namespace(name string) *Namespace { return c.namespaces[name] }

// GrantAdmin makes user an administrator of the namespace (the paper's "PI
// of a given research group is granted the role namespace administrator").
func (ns *Namespace) GrantAdmin(user string) { ns.admins[user] = true }

// IsAdmin reports whether user administers the namespace.
func (ns *Namespace) IsAdmin(user string) bool { return ns.admins[user] }

// --- Nodes ----------------------------------------------------------------

// AddNode joins a node to the cluster and kicks the scheduler: CHASE-CI is
// "very dynamic in the fact that nodes can join and leave the cluster at any
// time".
func (c *Cluster) AddNode(name, site string, capacity Resources, labels map[string]string) (*Node, error) {
	if _, dup := c.nodes[name]; dup {
		return nil, ErrDuplicate
	}
	n := &Node{
		Name: name, Site: site, Capacity: capacity,
		Labels: labels, Ready: true,
		pods:   make(map[uint64]*Pod),
		claims: make(map[string]Resources),
	}
	c.nodes[name] = n
	c.nodeNames = append(c.nodeNames, name)
	sort.Strings(c.nodeNames)
	c.logEvent("NodeReady", name, "site=%s capacity=%v", site, capacity)
	c.kickScheduler()
	c.reconcileDaemonSets()
	c.notifyNode(NodeEvent{Node: name, Site: site, Ready: true})
	return n, nil
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// Nodes returns all nodes in name order.
func (c *Cluster) Nodes() []*Node {
	out := make([]*Node, 0, len(c.nodeNames))
	for _, n := range c.nodeNames {
		out = append(out, c.nodes[n])
	}
	return out
}

// KillNode marks a node lost. Every pod on it fails with reason NodeLost and
// owning controllers reschedule replacements elsewhere.
func (c *Cluster) KillNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return ErrNodeUnknown
	}
	if !n.Ready {
		return nil
	}
	n.Ready = false
	c.logEvent("NodeLost", name, "node taken offline")
	// Drop external claims before failing pods: each claim releases its
	// allocation exactly once here, and the ids travel in the NodeEvent so
	// observers requeue without issuing a second ReleaseClaim.
	dropped := make([]string, 0, len(n.claims))
	for id := range n.claims {
		dropped = append(dropped, id)
	}
	sort.Strings(dropped)
	for _, id := range dropped {
		n.allocated = n.allocated.Sub(n.claims[id])
		delete(n.claims, id)
	}
	// Fail pods on the node. Copy first: finishPod mutates n.pods.
	var victims []*Pod
	for _, p := range n.pods {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].UID < victims[j].UID })
	for _, p := range victims {
		c.finishPod(p, PodFailed, "NodeLost")
	}
	c.notifyNode(NodeEvent{Node: name, Site: n.Site, Ready: false, DroppedClaims: dropped})
	return nil
}

// RestoreNode brings a lost node back as schedulable.
func (c *Cluster) RestoreNode(name string) error {
	n, ok := c.nodes[name]
	if !ok {
		return ErrNodeUnknown
	}
	if n.Ready {
		return nil
	}
	n.Ready = true
	c.logEvent("NodeReady", name, "node restored")
	c.kickScheduler()
	c.reconcileDaemonSets()
	c.notifyNode(NodeEvent{Node: name, Site: n.Site, Ready: true})
	return nil
}

// --- External claims --------------------------------------------------------

// Claim reserves resources on a node under a caller-chosen id, outside the
// pod lifecycle. The placement scheduler uses claims to pin a job's requests
// to a node while the job executes in the service layer rather than as a
// simulated pod. A claim is released by ReleaseClaim or, exactly once, when
// the node is lost (the id is then reported via OnNodeEvent).
func (c *Cluster) Claim(node, id string, req Resources) error {
	n, ok := c.nodes[node]
	if !ok {
		return ErrNodeUnknown
	}
	if !n.Ready {
		return ErrNodeNotReady
	}
	if _, dup := n.claims[id]; dup {
		return ErrDuplicate
	}
	if !req.Fits(n.Available()) {
		return ErrInsufficient
	}
	n.claims[id] = req
	n.allocated = n.allocated.Add(req)
	c.publishUsage()
	return nil
}

// ReleaseClaim frees a claim. It returns false when the claim no longer
// exists — already released, or dropped by KillNode — so double releases
// (the historical double-drain bug) are inert.
func (c *Cluster) ReleaseClaim(node, id string) bool {
	n, ok := c.nodes[node]
	if !ok {
		return false
	}
	req, ok := n.claims[id]
	if !ok {
		return false
	}
	n.allocated = n.allocated.Sub(req)
	delete(n.claims, id)
	c.publishUsage()
	c.kickScheduler()
	return true
}

// Claims returns the ids of live external claims on a node, sorted.
func (c *Cluster) Claims(node string) []string {
	n, ok := c.nodes[node]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(n.claims))
	for id := range n.claims {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TotalCapacity sums capacity over ready nodes.
func (c *Cluster) TotalCapacity() Resources {
	var sum Resources
	for _, n := range c.nodes {
		if n.Ready {
			sum = sum.Add(n.Capacity)
		}
	}
	return sum
}

// --- Pods and scheduling ---------------------------------------------------

// CreatePod submits a pod for scheduling. The returned pod is Pending until
// the scheduler binds it.
func (c *Cluster) CreatePod(spec PodSpec) (*Pod, error) {
	if _, ok := c.namespaces[spec.Namespace]; !ok {
		return nil, ErrNamespaceUnknown
	}
	if spec.Run == nil {
		return nil, errors.New("cluster: PodSpec.Run is nil")
	}
	c.nextUID++
	p := &Pod{
		Spec: spec, UID: c.nextUID, Phase: PodPending,
		CreatedAt: c.clock.Now(), cluster: c,
	}
	c.pods[p.UID] = p
	c.pending = append(c.pending, p)
	c.logEvent("PodCreated", p.Name(), "requests=%v", spec.Requests)
	c.kickScheduler()
	return p, nil
}

// kickScheduler schedules a scheduling pass after the configured delay.
// Multiple kicks coalesce into one pass.
func (c *Cluster) kickScheduler() {
	if c.schedPending || len(c.pending) == 0 {
		return
	}
	c.schedPending = true
	c.clock.After(c.schedDelay, func() {
		c.schedPending = false
		c.schedulePass()
	})
}

// schedulePass tries to bind every pending pod, in FIFO order.
func (c *Cluster) schedulePass() {
	var still []*Pod
	for _, p := range c.pending {
		if p.Phase != PodPending {
			continue // cancelled or failed while queued
		}
		if !c.quotaAdmits(p) {
			p.Reason = "QuotaExceeded"
			still = append(still, p)
			continue
		}
		node := c.pickNode(p)
		if node == nil {
			p.Reason = "Unschedulable"
			still = append(still, p)
			continue
		}
		c.bind(p, node)
	}
	c.pending = still
}

// quotaAdmits checks the namespace quota for the pod's requests.
func (c *Cluster) quotaAdmits(p *Pod) bool {
	ns := c.namespaces[p.Spec.Namespace]
	if ns == nil || ns.Quota == nil {
		return true
	}
	return ns.used.Add(p.Spec.Requests).Fits(*ns.Quota)
}

// pickNode filters ready nodes by selector and fit, then scores by most
// available CPU+GPU (spreading load), breaking ties by name for determinism.
func (c *Cluster) pickNode(p *Pod) *Node {
	var best *Node
	var bestScore float64
	for _, name := range c.nodeNames {
		n := c.nodes[name]
		if !n.Ready {
			continue
		}
		if p.Spec.pinnedNode != "" && name != p.Spec.pinnedNode {
			continue
		}
		if !matchesSelector(n.Labels, p.Spec.NodeSelector) {
			continue
		}
		if !tolerates(p.Spec.Tolerations, n.taints) {
			continue
		}
		if !p.Spec.Requests.Fits(n.Available()) {
			continue
		}
		av := n.Available()
		score := av.CPU + float64(av.GPUs)*10
		if best == nil || score > bestScore {
			best = n
			bestScore = score
		}
	}
	return best
}

func matchesSelector(labels, sel map[string]string) bool {
	for k, v := range sel {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// bind assigns the pod to the node and starts its container.
func (c *Cluster) bind(p *Pod, n *Node) {
	p.Phase = PodRunning
	p.Node = n.Name
	p.Reason = ""
	p.StartedAt = c.clock.Now()
	n.allocated = n.allocated.Add(p.Spec.Requests)
	n.pods[p.UID] = p
	ns := c.namespaces[p.Spec.Namespace]
	ns.used = ns.used.Add(p.Spec.Requests)
	c.logEvent("PodScheduled", p.Name(), "bound to %s", n.Name)
	c.publishUsage()
	c.notifyPhase(p)

	ctx := &PodCtx{pod: p, cluster: c, alive: true}
	p.ctx = ctx
	p.Spec.Run(ctx)
}

// finishPod transitions a pod to a terminal phase and releases resources.
func (c *Cluster) finishPod(p *Pod, phase PodPhase, reason string) {
	if p.Phase.Terminal() {
		return
	}
	wasRunning := p.Phase == PodRunning
	p.Phase = phase
	p.Reason = reason
	p.EndedAt = c.clock.Now()
	if p.ctx != nil {
		p.ctx.alive = false
	}
	if wasRunning && !p.released {
		// One-shot guard: a pod's node/namespace accounting must be returned
		// exactly once no matter how many drain paths reach it.
		p.released = true
		n := c.nodes[p.Node]
		if n != nil {
			n.allocated = n.allocated.Sub(p.Spec.Requests)
			delete(n.pods, p.UID)
		}
		ns := c.namespaces[p.Spec.Namespace]
		ns.used = ns.used.Sub(p.Spec.Requests)
	}
	c.logEvent("Pod"+phase.String(), p.Name(), "%s", reason)
	c.publishUsage()
	c.notifyPhase(p)
	if p.owner != nil {
		p.owner.podTerminated(p)
	}
	// Freed resources may unblock queued pods.
	c.kickScheduler()
}

// DeletePod force-terminates a pod (kubectl delete pod). Pending pods go
// through the same terminal path as running ones so owning controllers hear
// about the termination; previously they were marked Failed in place and
// lingered in controller active sets forever.
func (c *Cluster) DeletePod(p *Pod) {
	c.finishPod(p, PodFailed, "Deleted")
}

func (c *Cluster) notifyPhase(p *Pod) {
	for _, w := range c.phaseWatchers {
		w(p)
	}
}

func (c *Cluster) publishUsage() {
	if c.reg == nil {
		return
	}
	var used Resources
	running := 0
	for _, n := range c.nodes {
		if n.Ready {
			used = used.Add(n.allocated)
			running += len(n.pods)
		}
	}
	c.podsRunning.Set(float64(running))
	c.cpuInUse.Set(used.CPU)
	c.memInUse.Set(used.Memory)
	c.gpusInUse.Set(float64(used.GPUs))
}

// reconcileDaemonSets lets every DaemonSet cover newly eligible nodes.
func (c *Cluster) reconcileDaemonSets() {
	for _, ds := range c.daemonSets {
		ds.reconcile()
	}
}

// PodsInPhase counts pods of a namespace in a phase ("" = all namespaces).
func (c *Cluster) PodsInPhase(namespace string, phase PodPhase) int {
	n := 0
	for _, p := range c.pods {
		if namespace != "" && p.Spec.Namespace != namespace {
			continue
		}
		if p.Phase == phase {
			n++
		}
	}
	return n
}
