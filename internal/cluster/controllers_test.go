package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"chaseci/internal/sim"
)

func TestJobRunsToCompletion(t *testing.T) {
	clk, c := testCluster(3)
	var completedOK *bool
	j, err := c.CreateJob(JobSpec{
		Name: "download", Namespace: "connect",
		Parallelism: 10,
		Template: PodTemplate{
			Requests: Resources{CPU: 3},
			Run:      sleepPod(10 * time.Minute),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j.OnComplete(func(ok bool) { completedOK = &ok })
	clk.Run()
	if !j.Done() {
		t.Fatal("job not done")
	}
	if j.Succeeded() != 10 {
		t.Fatalf("succeeded = %d, want 10", j.Succeeded())
	}
	if completedOK == nil || !*completedOK {
		t.Fatal("OnComplete not fired with ok=true")
	}
}

func TestJobParallelismRespected(t *testing.T) {
	clk, c := testCluster(10)
	j, _ := c.CreateJob(JobSpec{
		Name: "j", Namespace: "connect",
		Parallelism: 4, Completions: 12,
		Template: PodTemplate{Requests: Resources{CPU: 1}, Run: sleepPod(time.Minute)},
	})
	maxActive := 0
	c.OnPodPhase(func(p *Pod) {
		if j.Active() > maxActive {
			maxActive = j.Active()
		}
	})
	clk.Run()
	if maxActive > 4 {
		t.Fatalf("active pods peaked at %d, want <= 4", maxActive)
	}
	if !j.Done() || j.Succeeded() != 12 {
		t.Fatalf("done=%v succeeded=%d, want true/12", j.Done(), j.Succeeded())
	}
}

func TestJobWorkerIndicesDistinct(t *testing.T) {
	clk, c := testCluster(3)
	seen := map[int]bool{}
	c.CreateJob(JobSpec{
		Name: "j", Namespace: "connect", Parallelism: 5,
		Template: PodTemplate{Run: func(ctx *PodCtx) {
			if seen[ctx.Index()] {
				t.Errorf("duplicate worker index %d", ctx.Index())
			}
			seen[ctx.Index()] = true
			ctx.After(time.Second, ctx.Succeed)
		}},
	})
	clk.Run()
	if len(seen) != 5 {
		t.Fatalf("saw %d indices, want 5", len(seen))
	}
}

func TestJobRespawnsAfterNodeLoss(t *testing.T) {
	clk, c := testCluster(3)
	j, _ := c.CreateJob(JobSpec{
		Name: "j", Namespace: "connect", Parallelism: 3,
		Template: PodTemplate{Requests: Resources{CPU: 2}, Run: sleepPod(20 * time.Minute)},
	})
	clk.RunUntil(time.Minute)
	// Kill a node hosting at least one job pod.
	var victim string
	for _, p := range j.Pods() {
		if p.Phase == PodRunning {
			victim = p.Node
			break
		}
	}
	c.KillNode(victim)
	clk.Run()
	if !j.Done() {
		t.Fatalf("job did not complete after node loss (failures=%d)", j.Failures())
	}
	if j.Failures() != 0 {
		t.Fatalf("node loss charged %d failures against backoff, want 0", j.Failures())
	}
	if len(j.Pods()) <= 3 {
		t.Fatalf("expected respawned pods, total created = %d", len(j.Pods()))
	}
}

func TestJobBackoffLimit(t *testing.T) {
	clk, c := testCluster(2)
	failed := false
	j, _ := c.CreateJob(JobSpec{
		Name: "crashy", Namespace: "connect",
		Parallelism: 1, BackoffLimit: 2,
		Template: PodTemplate{Run: func(ctx *PodCtx) {
			ctx.After(time.Second, func() { ctx.Fail("CrashLoop") })
		}},
	})
	j.OnComplete(func(ok bool) { failed = !ok })
	clk.Run()
	if !j.Failed() || !failed {
		t.Fatalf("job failed=%v callback-failed=%v, want true/true", j.Failed(), failed)
	}
	// BackoffLimit=2 tolerates 2 failures; the 3rd kills it => 3 pods total.
	if got := len(j.Pods()); got != 3 {
		t.Fatalf("created %d pods, want 3", got)
	}
}

func TestJobCompletionsDefaultToParallelism(t *testing.T) {
	clk, c := testCluster(3)
	j, _ := c.CreateJob(JobSpec{
		Name: "j", Namespace: "connect", Parallelism: 7,
		Template: PodTemplate{Run: sleepPod(time.Second)},
	})
	clk.Run()
	if j.Succeeded() != 7 {
		t.Fatalf("succeeded = %d, want 7", j.Succeeded())
	}
}

func TestJobInvalidSpecs(t *testing.T) {
	_, c := testCluster(1)
	if _, err := c.CreateJob(JobSpec{Name: "x", Namespace: "connect",
		Template: PodTemplate{Run: sleepPod(0)}}); err == nil {
		t.Fatal("zero parallelism accepted")
	}
	if _, err := c.CreateJob(JobSpec{Name: "x", Namespace: "connect",
		Parallelism: 1}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestReplicaSetMaintainsReplicas(t *testing.T) {
	clk, c := testCluster(3)
	rs, err := c.CreateReplicaSet(ReplicaSetSpec{
		Name: "train", Namespace: "connect", Replicas: 4,
		Template: PodTemplate{
			Requests: Resources{GPUs: 1},
			Labels:   map[string]string{"app": "train"},
			Run:      func(ctx *PodCtx) {}, // long-running service
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Minute)
	if rs.Active() != 4 {
		t.Fatalf("active = %d, want 4", rs.Active())
	}
	if got := c.PodsInPhase("connect", PodRunning); got != 4 {
		t.Fatalf("running pods = %d, want 4", got)
	}
}

func TestReplicaSetReplacesLostPods(t *testing.T) {
	clk, c := testCluster(3)
	rs, _ := c.CreateReplicaSet(ReplicaSetSpec{
		Name: "svc", Namespace: "connect", Replicas: 3,
		Template: PodTemplate{Requests: Resources{CPU: 2}, Run: func(ctx *PodCtx) {}},
	})
	clk.RunFor(time.Minute)
	c.KillNode("fiona8-00")
	clk.RunFor(time.Minute)
	if rs.Active() != 3 {
		t.Fatalf("active after node loss = %d, want 3", rs.Active())
	}
	for _, n := range c.Nodes() {
		if !n.Ready && len(n.pods) != 0 {
			t.Fatal("dead node still hosts pods")
		}
	}
}

func TestReplicaSetScaleUpDown(t *testing.T) {
	clk, c := testCluster(4)
	rs, _ := c.CreateReplicaSet(ReplicaSetSpec{
		Name: "workers", Namespace: "connect", Replicas: 2,
		Template: PodTemplate{Run: func(ctx *PodCtx) {}},
	})
	clk.RunFor(time.Second)
	rs.Scale(6)
	clk.RunFor(time.Second)
	if rs.Active() != 6 {
		t.Fatalf("active after scale-up = %d, want 6", rs.Active())
	}
	rs.Scale(1)
	clk.RunFor(time.Second)
	if rs.Active() != 1 {
		t.Fatalf("active after scale-down = %d, want 1", rs.Active())
	}
	rs.Delete()
	clk.RunFor(time.Second)
	if rs.Active() != 0 {
		t.Fatalf("active after delete = %d, want 0", rs.Active())
	}
}

func TestServiceEndpointsTrackPods(t *testing.T) {
	clk, c := testCluster(3)
	c.CreateReplicaSet(ReplicaSetSpec{
		Name: "ps", Namespace: "connect", Replicas: 3,
		Template: PodTemplate{
			Labels: map[string]string{"app": "tf-train"},
			Run:    func(ctx *PodCtx) {},
		},
	})
	svc := c.CreateService("tf-train", "connect", map[string]string{"app": "tf-train"})
	clk.RunFor(time.Second)
	eps := svc.Endpoints()
	if len(eps) != 3 {
		t.Fatalf("endpoints = %d, want 3", len(eps))
	}
	// Kill the node of the first endpoint; service must re-resolve to 3
	// running pods (replaced elsewhere).
	c.KillNode(eps[0].Node)
	clk.RunFor(time.Second)
	eps = svc.Endpoints()
	if len(eps) != 3 {
		t.Fatalf("endpoints after node loss = %d, want 3", len(eps))
	}
	for _, p := range eps {
		if p.Phase != PodRunning {
			t.Fatalf("endpoint %s phase = %v", p.Spec.Name, p.Phase)
		}
	}
}

func TestServiceSelectorFilters(t *testing.T) {
	clk, c := testCluster(2)
	c.CreatePod(PodSpec{Name: "a", Namespace: "connect",
		Labels: map[string]string{"app": "x"}, Run: func(ctx *PodCtx) {}})
	c.CreatePod(PodSpec{Name: "b", Namespace: "connect",
		Labels: map[string]string{"app": "y"}, Run: func(ctx *PodCtx) {}})
	svc := c.CreateService("x-only", "connect", map[string]string{"app": "x"})
	clk.RunFor(time.Second)
	eps := svc.Endpoints()
	if len(eps) != 1 || eps[0].Spec.Name != "a" {
		t.Fatalf("endpoints = %v", eps)
	}
}

func TestPropertyJobAlwaysCompletesOnHealthyCluster(t *testing.T) {
	// Any job with parallelism/completions within cluster capacity completes
	// with exactly `completions` successes and no failures.
	f := func(seed uint64, parRaw, compRaw uint8) bool {
		par := int(parRaw%8) + 1
		comp := int(compRaw%20) + 1
		clk, c := testCluster(4)
		rng := sim.NewRNG(seed)
		j, err := c.CreateJob(JobSpec{
			Name: "p", Namespace: "connect",
			Parallelism: par, Completions: comp,
			Template: PodTemplate{
				Requests: Resources{CPU: 2},
				Run: func(ctx *PodCtx) {
					d := time.Duration(rng.Intn(1000)+1) * time.Millisecond
					ctx.After(d, ctx.Succeed)
				},
			},
		})
		if err != nil {
			return false
		}
		clk.Run()
		return j.Done() && j.Succeeded() == comp && j.Failures() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNamespaceQuotaNeverExceeded(t *testing.T) {
	// Under random pod churn, the namespace's in-use requests never exceed
	// its quota.
	f := func(seed uint64, nPodsRaw uint8) bool {
		nPods := int(nPodsRaw%30) + 1
		clk := sim.NewClock()
		c := New(clk, nil)
		quota := Resources{CPU: 10, Memory: GB(50), GPUs: 4}
		c.CreateNamespace("q", &quota)
		for i := 0; i < 3; i++ {
			c.AddNode(fmt.Sprintf("n%d", i), "s", FIONA8Capacity(), nil)
		}
		rng := sim.NewRNG(seed)
		violated := false
		c.OnPodPhase(func(*Pod) {
			if !c.Namespace("q").Used().Fits(quota) {
				violated = true
			}
		})
		for i := 0; i < nPods; i++ {
			c.CreatePod(PodSpec{
				Name: fmt.Sprintf("p%d", i), Namespace: "q",
				Requests: Resources{CPU: float64(rng.Intn(6)), GPUs: rng.Intn(3)},
				Run:      sleepPod(time.Duration(rng.Intn(300)) * time.Second),
			})
		}
		clk.Run()
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
