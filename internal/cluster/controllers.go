package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the scheduling controllers the paper's workflows use:
// the Job resource ("for a workflow it is usually the Job resource that is
// most prevalent because it can execute batch process at scale") and the
// ReplicaSet (planned for distributed TensorFlow training), plus Services
// for stable naming. Controllers watch pod terminations and reconcile toward
// declared state, including respawning pods lost to node failures.

// PodTemplate declares the pods a controller stamps out. Run receives the
// pod context; the worker index is available via ctx.Index().
type PodTemplate struct {
	Requests     Resources
	NodeSelector map[string]string
	Tolerations  map[string]string
	Labels       map[string]string
	Run          func(ctx *PodCtx)
}

// JobSpec declares a batch job.
type JobSpec struct {
	Name      string
	Namespace string
	// Parallelism is the number of pods kept running simultaneously.
	Parallelism int
	// Completions is the number of successful pods required to complete the
	// job. Zero defaults to Parallelism (the work-queue pattern used by the
	// paper's download step: each worker drains the Redis queue and exits).
	Completions int
	// BackoffLimit is the number of pod failures tolerated before the job is
	// marked failed. Node-loss restarts do not count against the limit,
	// matching Kubernetes' treatment of evictions.
	BackoffLimit int
	Template     PodTemplate
}

// Job is a running batch job.
type Job struct {
	Spec JobSpec

	cluster    *Cluster
	succeeded  int
	failures   int
	active     map[uint64]*Pod
	nextIndex  int
	done       bool
	failed     bool
	onComplete []func(ok bool)
	pods       []*Pod // every pod ever created, for inspection
}

// CreateJob submits a job; the controller immediately creates Parallelism
// pods.
func (c *Cluster) CreateJob(spec JobSpec) (*Job, error) {
	if spec.Parallelism <= 0 {
		return nil, errors.New("cluster: JobSpec.Parallelism must be positive")
	}
	if spec.Completions <= 0 {
		spec.Completions = spec.Parallelism
	}
	if spec.Template.Run == nil {
		return nil, errors.New("cluster: JobSpec.Template.Run is nil")
	}
	j := &Job{Spec: spec, cluster: c, active: make(map[uint64]*Pod)}
	c.logEvent("JobCreated", spec.Namespace+"/"+spec.Name,
		"parallelism=%d completions=%d", spec.Parallelism, spec.Completions)
	j.reconcile()
	return j, nil
}

// Succeeded returns the count of successfully completed pods.
func (j *Job) Succeeded() int { return j.succeeded }

// Active returns the number of live pods.
func (j *Job) Active() int { return len(j.active) }

// Failures returns pod failures charged against the backoff limit.
func (j *Job) Failures() int { return j.failures }

// Done reports whether the job reached Completions successes.
func (j *Job) Done() bool { return j.done }

// Failed reports whether the job exceeded its backoff limit.
func (j *Job) Failed() bool { return j.failed }

// Pods returns every pod the job has created, in creation order.
func (j *Job) Pods() []*Pod { return j.pods }

// OnComplete registers fn to run when the job finishes; ok is true for
// success. If already finished, fn runs immediately.
func (j *Job) OnComplete(fn func(ok bool)) {
	if j.done || j.failed {
		fn(j.done)
		return
	}
	j.onComplete = append(j.onComplete, fn)
}

// reconcile tops up active pods until the remaining completions are covered.
func (j *Job) reconcile() {
	if j.done || j.failed {
		return
	}
	want := j.Spec.Parallelism
	if remaining := j.Spec.Completions - j.succeeded; want > remaining {
		want = remaining
	}
	for len(j.active) < want {
		idx := j.nextIndex
		j.nextIndex++
		spec := PodSpec{
			Name:         fmt.Sprintf("%s-%d", j.Spec.Name, idx),
			Namespace:    j.Spec.Namespace,
			Requests:     j.Spec.Template.Requests,
			NodeSelector: j.Spec.Template.NodeSelector,
			Tolerations:  j.Spec.Template.Tolerations,
			Labels:       j.Spec.Template.Labels,
			Run:          j.Spec.Template.Run,
		}
		p, err := j.cluster.CreatePod(spec)
		if err != nil {
			// Namespace vanished: fail the job.
			j.failed = true
			j.finish()
			return
		}
		p.Index = idx
		p.owner = j
		j.active[p.UID] = p
		j.pods = append(j.pods, p)
	}
}

// podTerminated implements podOwner.
func (j *Job) podTerminated(p *Pod) {
	delete(j.active, p.UID)
	if j.done || j.failed {
		return
	}
	switch {
	case p.Phase == PodSucceeded:
		j.succeeded++
		if j.succeeded >= j.Spec.Completions {
			j.done = true
			j.cluster.logEvent("JobComplete", j.Spec.Namespace+"/"+j.Spec.Name,
				"%d completions", j.succeeded)
			j.finish()
			return
		}
	case p.Reason == "NodeLost":
		// Eviction: respawn without charging backoff.
		j.cluster.logEvent("JobPodEvicted", p.Name(), "respawning after node loss")
	default:
		j.failures++
		if j.failures > j.Spec.BackoffLimit {
			j.failed = true
			j.cluster.logEvent("JobFailed", j.Spec.Namespace+"/"+j.Spec.Name,
				"backoff limit %d exceeded", j.Spec.BackoffLimit)
			j.finish()
			return
		}
	}
	j.reconcile()
}

func (j *Job) finish() {
	// Terminate any stragglers (e.g. remaining workers once completions met).
	var rest []*Pod
	for _, p := range j.active {
		rest = append(rest, p)
	}
	sort.Slice(rest, func(a, b int) bool { return rest[a].UID < rest[b].UID })
	for _, p := range rest {
		j.cluster.DeletePod(p)
	}
	j.active = make(map[uint64]*Pod)
	for _, fn := range j.onComplete {
		fn(j.done)
	}
	j.onComplete = nil
}

// ReplicaSetSpec declares a long-running replicated workload (the paper's
// planned distributed-training topology: "a Kubernetes ReplicaSet ... a
// single client image that would need to be scaled").
type ReplicaSetSpec struct {
	Name      string
	Namespace string
	Replicas  int
	Template  PodTemplate
}

// ReplicaSet keeps Replicas pods running, replacing any that terminate.
type ReplicaSet struct {
	Spec ReplicaSetSpec

	cluster   *Cluster
	active    map[uint64]*Pod
	nextIndex int
	deleted   bool
}

// CreateReplicaSet submits a replica set.
func (c *Cluster) CreateReplicaSet(spec ReplicaSetSpec) (*ReplicaSet, error) {
	if spec.Replicas < 0 {
		return nil, errors.New("cluster: negative replica count")
	}
	if spec.Template.Run == nil {
		return nil, errors.New("cluster: ReplicaSetSpec.Template.Run is nil")
	}
	rs := &ReplicaSet{Spec: spec, cluster: c, active: make(map[uint64]*Pod)}
	c.logEvent("ReplicaSetCreated", spec.Namespace+"/"+spec.Name, "replicas=%d", spec.Replicas)
	rs.reconcile()
	return rs, nil
}

// Active returns the number of live replicas.
func (rs *ReplicaSet) Active() int { return len(rs.active) }

// Scale changes the desired replica count up or down.
func (rs *ReplicaSet) Scale(replicas int) {
	if replicas < 0 {
		replicas = 0
	}
	rs.Spec.Replicas = replicas
	rs.cluster.logEvent("ReplicaSetScaled", rs.Spec.Namespace+"/"+rs.Spec.Name,
		"replicas=%d", replicas)
	rs.reconcile()
}

// Delete tears the replica set down.
func (rs *ReplicaSet) Delete() {
	rs.deleted = true
	var pods []*Pod
	for _, p := range rs.active {
		pods = append(pods, p)
	}
	sort.Slice(pods, func(a, b int) bool { return pods[a].UID < pods[b].UID })
	for _, p := range pods {
		rs.cluster.DeletePod(p)
	}
	rs.active = make(map[uint64]*Pod)
}

func (rs *ReplicaSet) reconcile() {
	if rs.deleted {
		return
	}
	// Scale down: delete newest first, like the Kubernetes controller.
	if len(rs.active) > rs.Spec.Replicas {
		var pods []*Pod
		for _, p := range rs.active {
			pods = append(pods, p)
		}
		sort.Slice(pods, func(a, b int) bool { return pods[a].UID > pods[b].UID })
		for _, p := range pods[:len(pods)-rs.Spec.Replicas] {
			rs.cluster.DeletePod(p)
		}
		return
	}
	for len(rs.active) < rs.Spec.Replicas {
		idx := rs.nextIndex
		rs.nextIndex++
		spec := PodSpec{
			Name:         fmt.Sprintf("%s-%d", rs.Spec.Name, idx),
			Namespace:    rs.Spec.Namespace,
			Requests:     rs.Spec.Template.Requests,
			NodeSelector: rs.Spec.Template.NodeSelector,
			Tolerations:  rs.Spec.Template.Tolerations,
			Labels:       rs.Spec.Template.Labels,
			Run:          rs.Spec.Template.Run,
		}
		p, err := rs.cluster.CreatePod(spec)
		if err != nil {
			return
		}
		p.Index = idx
		p.owner = rs
		rs.active[p.UID] = p
	}
}

// podTerminated implements podOwner: any termination is replaced.
func (rs *ReplicaSet) podTerminated(p *Pod) {
	delete(rs.active, p.UID)
	rs.reconcile()
}

// Service gives a stable name to a labelled set of pods ("hostnames will be
// used instead of IP addresses by creating a service"). Resolution returns
// the names of running pods whose labels match the selector.
type Service struct {
	Name      string
	Namespace string
	Selector  map[string]string

	cluster *Cluster
}

// CreateService registers a service.
func (c *Cluster) CreateService(name, namespace string, selector map[string]string) *Service {
	s := &Service{Name: name, Namespace: namespace, Selector: selector, cluster: c}
	c.logEvent("ServiceCreated", namespace+"/"+name, "selector=%v", selector)
	return s
}

// Endpoints returns the running pods backing the service, sorted by name.
// Endpoints re-resolve on every call, so pods that moved between nodes keep
// their service identity — the dynamic-communication property Section III-E2
// wants for distributed training.
func (s *Service) Endpoints() []*Pod {
	var out []*Pod
	for _, p := range s.cluster.pods {
		if p.Spec.Namespace != s.Namespace || p.Phase != PodRunning {
			continue
		}
		if matchesSelector(p.Spec.Labels, s.Selector) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}
