package cluster

// Taints and tolerations: the multi-tenancy control the FIONA8 appliances
// need — a site can reserve nodes (e.g. for the local visualization wall, as
// in the paper's remote-rendering demo) by tainting them, and only pods that
// explicitly tolerate the taint schedule there. Only the NoSchedule effect
// is modeled; running pods are not evicted by a new taint, matching
// Kubernetes' NoSchedule semantics.

// Taint marks a node as repelling non-tolerating pods.
type Taint struct {
	Key   string
	Value string
}

// TaintNode adds a taint; duplicate keys overwrite. Unknown nodes return
// ErrNodeUnknown.
func (c *Cluster) TaintNode(name string, taint Taint) error {
	n, ok := c.nodes[name]
	if !ok {
		return ErrNodeUnknown
	}
	for i, t := range n.taints {
		if t.Key == taint.Key {
			n.taints[i] = taint
			return nil
		}
	}
	n.taints = append(n.taints, taint)
	c.logEvent("NodeTainted", name, "%s=%s", taint.Key, taint.Value)
	return nil
}

// UntaintNode removes the taint with the given key (no-op if absent).
func (c *Cluster) UntaintNode(name, key string) error {
	n, ok := c.nodes[name]
	if !ok {
		return ErrNodeUnknown
	}
	out := n.taints[:0]
	for _, t := range n.taints {
		if t.Key != key {
			out = append(out, t)
		}
	}
	n.taints = out
	c.logEvent("NodeUntainted", name, "%s", key)
	c.kickScheduler()
	return nil
}

// Taints returns the node's taints.
func (n *Node) Taints() []Taint { return append([]Taint(nil), n.taints...) }

// Tolerates reports whether a set of tolerations covers all of the given
// taints, using the same matching rule as pod scheduling. Exported for
// placement backends (the sched package) that filter nodes before ever
// creating a pod.
func Tolerates(tolerations map[string]string, taints []Taint) bool {
	return tolerates(tolerations, taints)
}

// tolerates reports whether a pod's tolerations cover all of a node's
// taints. A toleration matches a taint when the key matches and the value
// matches or the toleration value is empty (tolerate-any-value).
func tolerates(tolerations map[string]string, taints []Taint) bool {
	for _, t := range taints {
		v, ok := tolerations[t.Key]
		if !ok {
			return false
		}
		if v != "" && v != t.Value {
			return false
		}
	}
	return true
}
