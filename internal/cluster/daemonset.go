package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// DaemonSet runs exactly one pod on every ready node that matches its
// selector — the shape of the monitoring exporters behind the paper's
// Grafana dashboards ("software to monitor the health, availability, and
// performance of resources"). Pods follow node lifecycle: a joining node
// gets a pod, a lost node's pod is replaced when the node returns.
type DaemonSetSpec struct {
	Name      string
	Namespace string
	// NodeSelector restricts which nodes run the daemon (empty = all).
	NodeSelector map[string]string
	Template     PodTemplate
}

// DaemonSet is the running controller.
type DaemonSet struct {
	Spec DaemonSetSpec

	cluster *Cluster
	byNode  map[string]*Pod
	deleted bool
}

// CreateDaemonSet starts the controller and schedules daemons onto current
// nodes; later node joins are covered automatically.
func (c *Cluster) CreateDaemonSet(spec DaemonSetSpec) (*DaemonSet, error) {
	if spec.Template.Run == nil {
		return nil, errors.New("cluster: DaemonSetSpec.Template.Run is nil")
	}
	if _, ok := c.namespaces[spec.Namespace]; !ok {
		return nil, ErrNamespaceUnknown
	}
	ds := &DaemonSet{Spec: spec, cluster: c, byNode: make(map[string]*Pod)}
	c.daemonSets = append(c.daemonSets, ds)
	c.logEvent("DaemonSetCreated", spec.Namespace+"/"+spec.Name, "selector=%v", spec.NodeSelector)
	ds.reconcile()
	return ds, nil
}

// Active returns the number of live daemon pods.
func (ds *DaemonSet) Active() int { return len(ds.byNode) }

// PodOn returns the daemon pod on the named node, or nil.
func (ds *DaemonSet) PodOn(node string) *Pod { return ds.byNode[node] }

// Delete tears all daemons down and stops reconciliation.
func (ds *DaemonSet) Delete() {
	ds.deleted = true
	names := make([]string, 0, len(ds.byNode))
	for n := range ds.byNode {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ds.cluster.DeletePod(ds.byNode[n])
	}
	ds.byNode = make(map[string]*Pod)
}

// reconcile creates missing daemons on eligible nodes. Called on node
// lifecycle changes and pod terminations.
func (ds *DaemonSet) reconcile() {
	if ds.deleted {
		return
	}
	for _, name := range ds.cluster.nodeNames {
		n := ds.cluster.nodes[name]
		if !n.Ready || !matchesSelector(n.Labels, ds.Spec.NodeSelector) {
			continue
		}
		if _, ok := ds.byNode[name]; ok {
			continue
		}
		spec := PodSpec{
			Name:         fmt.Sprintf("%s-%s", ds.Spec.Name, name),
			Namespace:    ds.Spec.Namespace,
			Requests:     ds.Spec.Template.Requests,
			NodeSelector: mergeSelectors(ds.Spec.Template.NodeSelector, nil),
			Tolerations:  ds.Spec.Template.Tolerations,
			Labels:       ds.Spec.Template.Labels,
			Run:          ds.Spec.Template.Run,
			pinnedNode:   name,
		}
		p, err := ds.cluster.CreatePod(spec)
		if err != nil {
			return
		}
		p.owner = ds
		ds.byNode[name] = p
	}
}

// podTerminated implements podOwner: drop the binding; if the node is still
// ready (daemon crashed rather than node lost) replace it.
func (ds *DaemonSet) podTerminated(p *Pod) {
	for node, pod := range ds.byNode {
		if pod == p {
			delete(ds.byNode, node)
			break
		}
	}
	ds.reconcile()
}

func mergeSelectors(a, b map[string]string) map[string]string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make(map[string]string, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
