package workflow

import (
	"context"
	"fmt"
	"sync"
)

// Streaming pipelines. Where the Workflow type executes a measured DAG in
// virtual time, RunStream executes a real-compute stage pipeline over an
// ordered sequence of items with bounded buffering: stage s of item i runs
// concurrently with stage s-1 of item i+1 and stage s+1 of item i-1, which
// is exactly the overlap the chased `pipeline` job kind uses to hide IVT
// synthesis and CONNECT labelling behind FFN segmentation of adjacent time
// slabs. Each stage runs on one goroutine and the connecting channels are
// FIFO, so items traverse every stage in index order and per-stage effects
// (progress callbacks, stage-owned state) need no further synchronization
// against themselves — only against the other stages.

// StreamStage is one stage of a streaming pipeline. Run receives the item's
// index and the previous stage's output (nil for the first stage) and
// returns the value handed to the next stage. Run must honor ctx promptly;
// it is never called concurrently with itself.
type StreamStage struct {
	Name string
	Run  func(ctx context.Context, index int, item any) (any, error)
}

// StreamOptions tunes RunStream.
type StreamOptions struct {
	// Sequential disables overlap: every item runs through all stages in a
	// strict loop on the calling goroutine. Output and per-stage effects are
	// identical to the overlapped mode (stages see items in the same order);
	// only wall-clock differs. Used as the pipeline baseline in benchmarks.
	Sequential bool
	// Buffer is each inter-stage channel's capacity (<= 0 defaults to 1),
	// bounding how far a stage may run ahead of its downstream.
	Buffer int
	// OnAdvance, if non-nil, is called after stage `stage` completes item
	// `item`. In overlapped mode it fires concurrently from stage
	// goroutines and must be safe for concurrent use.
	OnAdvance func(stage, item int)
}

// streamMsg carries one item between stages.
type streamMsg struct {
	i int
	v any
}

// RunStream pushes items 0..items-1 through the stages and returns the
// final stage's outputs in index order. On error or cancellation the run
// stops promptly (in-flight stages finish their current item), the partial
// results gathered so far keep their slots, and unreached slots stay nil.
func RunStream(ctx context.Context, stages []StreamStage, items int, opts StreamOptions) ([]any, error) {
	results := make([]any, items)
	if items == 0 || len(stages) == 0 {
		return results, ctx.Err()
	}
	if opts.Sequential {
		for i := 0; i < items; i++ {
			var v any
			for s, st := range stages {
				if err := ctx.Err(); err != nil {
					return results, err
				}
				var err error
				v, err = st.Run(ctx, i, v)
				if err != nil {
					return results, fmt.Errorf("workflow: stream stage %q item %d: %w", st.Name, i, err)
				}
				if opts.OnAdvance != nil {
					opts.OnAdvance(s, i)
				}
			}
			results[i] = v
		}
		return results, ctx.Err()
	}

	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 1
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Feeder: item indices enter the first stage's channel.
	feed := make(chan streamMsg, buffer)
	go func() {
		defer close(feed)
		for i := 0; i < items; i++ {
			select {
			case feed <- streamMsg{i: i}:
			case <-cctx.Done():
				return
			}
		}
	}()

	// One goroutine per stage, chained by bounded channels. After a failure
	// every stage keeps draining its input without doing work, so upstream
	// senders never block and all channels close in order.
	var wg sync.WaitGroup
	cur := feed
	for s, st := range stages {
		out := make(chan streamMsg, buffer)
		wg.Add(1)
		go func(s int, st StreamStage, in <-chan streamMsg, out chan<- streamMsg) {
			defer wg.Done()
			defer close(out)
			for m := range in {
				if cctx.Err() != nil {
					continue // drain
				}
				v, err := st.Run(cctx, m.i, m.v)
				if err != nil {
					fail(fmt.Errorf("workflow: stream stage %q item %d: %w", st.Name, m.i, err))
					continue
				}
				if opts.OnAdvance != nil {
					opts.OnAdvance(s, m.i)
				}
				select {
				case out <- streamMsg{i: m.i, v: v}:
				case <-cctx.Done():
				}
			}
		}(s, st, cur, out)
		cur = out
	}

	for m := range cur {
		results[m.i] = m.v
	}
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}
