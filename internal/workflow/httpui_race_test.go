package workflow

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStatusServerConcurrentUpdateClose hammers Update from several
// goroutines while HTTP readers poll and another goroutine closes the
// server mid-stream. Run under -race (the CI race job does) this pins the
// snapshot-swap/Close synchronization; without -race it still checks that
// late Updates are harmless no-ops and Close is idempotent.
func TestStatusServerConcurrentUpdateClose(t *testing.T) {
	clk, w := newUIWorkflow(t)
	w.Run(nil)
	clk.RunUntil(5 * time.Minute)

	srv, err := ServeStatus(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 200; j++ {
				srv.Update(w)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				resp, err := http.Get("http://" + addr + "/status")
				if err != nil {
					return // server closed mid-loop; expected
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	close(start)
	wg.Wait()

	// Idempotent close, and Update after Close must not panic.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	srv.Update(w)
}
