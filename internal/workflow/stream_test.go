package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// streamStages builds a simple two-stage arithmetic pipeline used by
// several tests: stage 0 doubles the index, stage 1 adds one.
func streamStages() []StreamStage {
	return []StreamStage{
		{Name: "double", Run: func(_ context.Context, i int, _ any) (any, error) {
			return 2 * i, nil
		}},
		{Name: "inc", Run: func(_ context.Context, _ int, v any) (any, error) {
			return v.(int) + 1, nil
		}},
	}
}

// TestRunStreamOrderAndResults checks that every item traverses every stage
// in index order, in both modes, with identical results.
func TestRunStreamOrderAndResults(t *testing.T) {
	for _, seq := range []bool{false, true} {
		var mu sync.Mutex
		seen := map[int][]int{} // stage -> item order
		got, err := RunStream(context.Background(), streamStages(), 9, StreamOptions{
			Sequential: seq,
			OnAdvance: func(stage, item int) {
				mu.Lock()
				seen[stage] = append(seen[stage], item)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("sequential=%v: %v", seq, err)
		}
		for i, v := range got {
			if v.(int) != 2*i+1 {
				t.Fatalf("sequential=%v: item %d = %v, want %d", seq, i, v, 2*i+1)
			}
		}
		for stage, order := range seen {
			for i, item := range order {
				if item != i {
					t.Fatalf("sequential=%v: stage %d processed %v, want index order", seq, stage, order)
				}
			}
		}
	}
}

// TestRunStreamOverlaps proves stages actually overlap: stage 0 of item 1
// blocks until stage 1 reports it started item 0, which can only resolve
// when the two stages run concurrently.
func TestRunStreamOverlaps(t *testing.T) {
	stage1Started := make(chan struct{})
	stages := []StreamStage{
		{Name: "produce", Run: func(ctx context.Context, i int, _ any) (any, error) {
			if i == 1 {
				select {
				case <-stage1Started:
				case <-time.After(5 * time.Second):
					return nil, errors.New("stages never overlapped")
				}
			}
			return i, nil
		}},
		{Name: "consume", Run: func(_ context.Context, i int, v any) (any, error) {
			if i == 0 {
				close(stage1Started)
			}
			return v, nil
		}},
	}
	if _, err := RunStream(context.Background(), stages, 3, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestRunStreamSequentialNeverOverlaps pins the baseline mode: at most one
// stage Run in flight at any moment.
func TestRunStreamSequentialNeverOverlaps(t *testing.T) {
	var inFlight, maxSeen atomic.Int32
	mk := func(name string) StreamStage {
		return StreamStage{Name: name, Run: func(_ context.Context, i int, _ any) (any, error) {
			n := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if n <= m || maxSeen.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return nil, nil
		}}
	}
	if _, err := RunStream(context.Background(), []StreamStage{mk("a"), mk("b"), mk("c")}, 5, StreamOptions{Sequential: true}); err != nil {
		t.Fatal(err)
	}
	if maxSeen.Load() != 1 {
		t.Fatalf("sequential mode ran %d stages concurrently", maxSeen.Load())
	}
}

// TestRunStreamBoundedBuffer verifies a stage cannot run more than
// buffer+1 items ahead of its downstream.
func TestRunStreamBoundedBuffer(t *testing.T) {
	const items = 16
	var produced, consumed atomic.Int32
	var maxLead atomic.Int32
	release := make(chan struct{})
	stages := []StreamStage{
		{Name: "fast", Run: func(_ context.Context, i int, _ any) (any, error) {
			lead := produced.Add(1) - consumed.Load()
			for {
				m := maxLead.Load()
				if lead <= m || maxLead.CompareAndSwap(m, lead) {
					break
				}
			}
			return i, nil
		}},
		{Name: "slow", Run: func(_ context.Context, i int, v any) (any, error) {
			<-release
			consumed.Add(1)
			return v, nil
		}},
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		for i := 0; i < items; i++ {
			release <- struct{}{}
		}
	}()
	if _, err := RunStream(context.Background(), stages, items, StreamOptions{Buffer: 2}); err != nil {
		t.Fatal(err)
	}
	// fast may be: in-flight (1) + buffered out (2) + one parked in send +
	// slow's in-flight read (1) ahead of the consumed counter.
	if lead := maxLead.Load(); lead > 5 {
		t.Fatalf("stage ran %d items ahead with buffer 2", lead)
	}
}

// TestRunStreamError requires a mid-stream failure to stop the run
// promptly, name the stage and item, and keep earlier results.
func TestRunStreamError(t *testing.T) {
	for _, seq := range []bool{false, true} {
		boom := errors.New("boom")
		stages := []StreamStage{
			{Name: "gen", Run: func(_ context.Context, i int, _ any) (any, error) { return i, nil }},
			{Name: "explode", Run: func(_ context.Context, i int, v any) (any, error) {
				if i == 3 {
					return nil, boom
				}
				return v, nil
			}},
		}
		results, err := RunStream(context.Background(), stages, 8, StreamOptions{Sequential: seq})
		if !errors.Is(err, boom) {
			t.Fatalf("sequential=%v: err = %v, want wrapped boom", seq, err)
		}
		if !strings.Contains(err.Error(), `"explode"`) || !strings.Contains(err.Error(), "item 3") {
			t.Fatalf("sequential=%v: error %q does not name stage and item", seq, err)
		}
		for i := 0; i < 3; i++ {
			if seq && results[i] == nil {
				t.Fatalf("sequential=%v: result %d lost", seq, i)
			}
		}
		for i := 3; i < 8; i++ {
			if results[i] != nil {
				t.Fatalf("sequential=%v: item %d completed after failure", seq, i)
			}
		}
	}
}

// TestRunStreamCancel requires prompt teardown on context cancellation.
func TestRunStreamCancel(t *testing.T) {
	for _, seq := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		stages := []StreamStage{
			{Name: "gen", Run: func(ctx context.Context, i int, _ any) (any, error) {
				if i == 2 {
					cancel()
					// Wait until the cancellation is observable so the
					// sequential loop cannot race past it.
					<-ctx.Done()
				}
				return i, nil
			}},
		}
		done := make(chan struct{})
		var err error
		go func() {
			_, err = RunStream(ctx, stages, 1000, StreamOptions{Sequential: seq})
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("sequential=%v: cancelled stream did not terminate", seq)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sequential=%v: err = %v, want context.Canceled", seq, err)
		}
		cancel()
	}
}

// TestRunStreamEmpty covers the degenerate inputs.
func TestRunStreamEmpty(t *testing.T) {
	if res, err := RunStream(context.Background(), streamStages(), 0, StreamOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("items=0: res=%v err=%v", res, err)
	}
	if res, err := RunStream(context.Background(), nil, 4, StreamOptions{}); err != nil || len(res) != 4 {
		t.Fatalf("no stages: res=%v err=%v", res, err)
	}
}

// TestRunStreamManyItems pushes enough items through a three-stage pipeline
// to exercise channel reuse and ordering under real scheduling pressure.
func TestRunStreamManyItems(t *testing.T) {
	stages := []StreamStage{
		{Name: "a", Run: func(_ context.Context, i int, _ any) (any, error) { return fmt.Sprintf("i%d", i), nil }},
		{Name: "b", Run: func(_ context.Context, _ int, v any) (any, error) { return v.(string) + "b", nil }},
		{Name: "c", Run: func(_ context.Context, _ int, v any) (any, error) { return v.(string) + "c", nil }},
	}
	const items = 500
	res, err := RunStream(context.Background(), stages, items, StreamOptions{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if want := fmt.Sprintf("i%dbc", i); v.(string) != want {
			t.Fatalf("item %d = %v, want %s", i, v, want)
		}
	}
}
