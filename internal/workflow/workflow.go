// Package workflow is the paper's contribution 5: a step-by-step workflow
// engine with built-in measurement (the PPoDS — Process for the Practice of
// Data Science — methodology). A Workflow is a DAG of named steps; each step
// runs asynchronously in virtual time, records arbitrary named measurements
// (pods, CPUs, GPUs, bytes moved), and the engine captures per-step wall
// time. The final Report reproduces the structure of the paper's Table I;
// the Plan rendering reproduces Figure 2's step diagram.
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"chaseci/internal/sim"
)

// Status is a step's lifecycle state.
type Status int

// Step states.
const (
	StatusPending Status = iota
	StatusRunning
	StatusSucceeded
	StatusFailed
	StatusSkipped // a dependency failed
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "Pending"
	case StatusRunning:
		return "Running"
	case StatusSucceeded:
		return "Succeeded"
	case StatusFailed:
		return "Failed"
	case StatusSkipped:
		return "Skipped"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Errors returned by workflow construction and execution.
var (
	ErrDuplicateStep = errors.New("workflow: duplicate step name")
	ErrUnknownDep    = errors.New("workflow: dependency on unknown step")
	ErrCycle         = errors.New("workflow: dependency cycle")
	ErrAlreadyRun    = errors.New("workflow: already run")
	// ErrStalled means the clock's event queue drained before every step
	// finished — some step never arranged for Done to be called.
	ErrStalled = errors.New("workflow: event queue drained before completion")
)

// Ctx is a running step's handle for measurement and completion.
type Ctx struct {
	wf   *Workflow
	step *step
	done bool
}

// Clock returns the workflow's virtual clock.
func (c *Ctx) Clock() *sim.Clock { return c.wf.clock }

// After schedules fn in virtual time (sugar over Clock().After).
func (c *Ctx) After(d time.Duration, fn func()) { c.wf.clock.After(d, fn) }

// Record stores a named measurement on the step (e.g. "pods", "gpus",
// "bytes"). Repeated records of the same key overwrite.
func (c *Ctx) Record(key string, value float64) {
	c.step.measurements[key] = value
}

// Done completes the step; a non-nil err fails it and skips dependents.
// Calling Done twice is a bug in the step implementation and panics.
func (c *Ctx) Done(err error) {
	if c.done {
		panic(fmt.Sprintf("workflow: step %q completed twice", c.step.name))
	}
	c.done = true
	c.wf.finishStep(c.step, err)
}

// StepSpec declares one step of a workflow.
type StepSpec struct {
	Name      string
	DependsOn []string
	// Run starts the step's (possibly long) virtual-time work; it must
	// arrange for ctx.Done to be called eventually.
	Run func(ctx *Ctx)
}

type step struct {
	name         string
	deps         []string
	run          func(*Ctx)
	status       Status
	started      time.Duration
	ended        time.Duration
	err          error
	measurements map[string]float64
}

// Workflow is a measured DAG of steps bound to a virtual clock.
type Workflow struct {
	Name string

	clock      *sim.Clock
	steps      map[string]*step
	order      []string
	started    bool
	finished   bool
	failed     bool
	onComplete func(ok bool)
}

// New creates an empty workflow.
func New(name string, clock *sim.Clock) *Workflow {
	return &Workflow{Name: name, clock: clock, steps: make(map[string]*step)}
}

// AddStep registers a step; dependencies may be declared before the steps
// they name, and are validated at Run.
func (w *Workflow) AddStep(spec StepSpec) error {
	if spec.Name == "" || spec.Run == nil {
		return errors.New("workflow: step needs a name and a Run func")
	}
	if _, dup := w.steps[spec.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateStep, spec.Name)
	}
	w.steps[spec.Name] = &step{
		name: spec.Name, deps: spec.DependsOn, run: spec.Run,
		measurements: make(map[string]float64),
	}
	w.order = append(w.order, spec.Name)
	return nil
}

// validate checks dependency references and acyclicity (Kahn's algorithm).
func (w *Workflow) validate() error {
	indeg := make(map[string]int)
	for _, s := range w.steps {
		for _, d := range s.deps {
			if _, ok := w.steps[d]; !ok {
				return fmt.Errorf("%w: %s -> %s", ErrUnknownDep, s.name, d)
			}
		}
		indeg[s.name] = len(s.deps)
	}
	var queue []string
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	seen := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range w.steps {
			for _, d := range s.deps {
				if d == cur {
					indeg[s.name]--
					if indeg[s.name] == 0 {
						queue = append(queue, s.name)
					}
				}
			}
		}
	}
	if seen != len(w.steps) {
		return ErrCycle
	}
	return nil
}

// Run validates the DAG and starts all dependency-free steps. onComplete
// (may be nil) fires when every step reaches a terminal state; ok is true
// when all succeeded. Drive the clock to make progress.
func (w *Workflow) Run(onComplete func(ok bool)) error {
	if w.started {
		return ErrAlreadyRun
	}
	if err := w.validate(); err != nil {
		return err
	}
	w.started = true
	w.onComplete = onComplete
	w.startReady()
	w.maybeFinish()
	return nil
}

// startReady launches every pending step whose dependencies all succeeded.
func (w *Workflow) startReady() {
	for _, name := range w.order {
		s := w.steps[name]
		if s.status != StatusPending {
			continue
		}
		ready := true
		skip := false
		for _, d := range s.deps {
			switch w.steps[d].status {
			case StatusSucceeded:
			case StatusFailed, StatusSkipped:
				skip = true
			default:
				ready = false
			}
		}
		if skip {
			s.status = StatusSkipped
			continue
		}
		if !ready {
			continue
		}
		s.status = StatusRunning
		s.started = w.clock.Now()
		ctx := &Ctx{wf: w, step: s}
		s.run(ctx)
	}
}

func (w *Workflow) finishStep(s *step, err error) {
	s.ended = w.clock.Now()
	if err != nil {
		s.status = StatusFailed
		s.err = err
		w.failed = true
	} else {
		s.status = StatusSucceeded
	}
	w.startReady()
	w.maybeFinish()
}

func (w *Workflow) maybeFinish() {
	if w.finished {
		return
	}
	for _, s := range w.steps {
		if s.status == StatusPending || s.status == StatusRunning {
			return
		}
	}
	w.finished = true
	if w.onComplete != nil {
		w.onComplete(!w.failed)
	}
}

// ExecuteCtx is the context-aware way to run a workflow to completion: it
// validates and starts the DAG, then drives the virtual clock event by
// event, checking ctx between events. A cancelled context stops the run
// promptly and returns the report accumulated so far together with
// ctx.Err(); a drained event queue with unfinished steps returns ErrStalled
// with the partial report. Step failures are not an execution error — the
// returned report carries them and Failed() reports true.
//
// The clock must not be driven concurrently by anything else; events
// belonging to other components sharing the clock are executed as they
// come due, exactly as an external driver loop would.
func (w *Workflow) ExecuteCtx(ctx context.Context) (Report, error) {
	if err := w.Run(nil); err != nil {
		return Report{}, err
	}
	for !w.finished {
		if err := ctx.Err(); err != nil {
			return w.Report(), err
		}
		if !w.clock.Step() {
			return w.Report(), ErrStalled
		}
	}
	return w.Report(), nil
}

// Done reports whether every step reached a terminal state.
func (w *Workflow) Done() bool { return w.finished }

// Failed reports whether any step failed.
func (w *Workflow) Failed() bool { return w.failed }

// Status returns a step's state; unknown steps report Pending.
func (w *Workflow) Status(name string) Status {
	if s, ok := w.steps[name]; ok {
		return s.status
	}
	return StatusPending
}

// StepError returns the failure of a step, or nil.
func (w *Workflow) StepError(name string) error {
	if s, ok := w.steps[name]; ok {
		return s.err
	}
	return nil
}

// --- Reporting (Table I / Fig 2 shapes) ------------------------------------

// StepReport is the measured record of one step.
type StepReport struct {
	Name         string
	Status       Status
	Duration     time.Duration
	Measurements map[string]float64
}

// Report summarizes a workflow run.
type Report struct {
	Workflow string
	Steps    []StepReport
	Total    time.Duration
}

// Report collects per-step durations and measurements in declaration order.
func (w *Workflow) Report() Report {
	r := Report{Workflow: w.Name}
	for _, name := range w.order {
		s := w.steps[name]
		sr := StepReport{
			Name:         s.name,
			Status:       s.status,
			Measurements: make(map[string]float64, len(s.measurements)),
		}
		if s.status == StatusSucceeded || s.status == StatusFailed {
			sr.Duration = s.ended - s.started
		}
		for k, v := range s.measurements {
			sr.Measurements[k] = v
		}
		r.Steps = append(r.Steps, sr)
		r.Total += sr.Duration
	}
	return r
}

// RenderTable renders the report as a resource-summary table with one column
// per step and one row per measurement key — the layout of the paper's
// Table I. Keys are the union across steps, sorted.
func (r Report) RenderTable() string {
	keySet := make(map[string]bool)
	for _, s := range r.Steps {
		for k := range s.Measurements {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "")
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "%16s", s.Name)
	}
	b.WriteByte('\n')
	for _, k := range keys {
		fmt.Fprintf(&b, "%-16s", k)
		for _, s := range r.Steps {
			if v, ok := s.Measurements[k]; ok {
				fmt.Fprintf(&b, "%16s", formatMeasure(k, v))
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-16s", "Total Time")
	for _, s := range r.Steps {
		if s.Duration > 0 {
			fmt.Fprintf(&b, "%16s", s.Duration.Round(time.Minute))
		} else {
			fmt.Fprintf(&b, "%16s", "NA")
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func formatMeasure(key string, v float64) string {
	if strings.Contains(key, "bytes") || strings.Contains(key, "Data") || strings.Contains(key, "Memory") {
		switch {
		case v >= 1e12:
			return fmt.Sprintf("%.1fTB", v/1e12)
		case v >= 1e9:
			return fmt.Sprintf("%.1fGB", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.1fMB", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.1fKB", v/1e3)
		}
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// RenderPlan renders the step DAG as an indented list with dependency
// arrows, the textual equivalent of the paper's Figure 2.
func (w *Workflow) RenderPlan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %q\n", w.Name)
	for i, name := range w.order {
		s := w.steps[name]
		arrow := ""
		if len(s.deps) > 0 {
			arrow = " <- " + strings.Join(s.deps, ", ")
		}
		fmt.Fprintf(&b, "  %d. %s%s\n", i+1, name, arrow)
	}
	return b.String()
}
