package workflow

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"sync"
	"time"
)

// StatusServer is the web face of Section VI's collaborative workflow
// interface: "a web-based CHASE-CI interface ... with the list of steps
// connected to each other in a visual and meaningful way, along with a set
// of tools for measuring and testing". It serves
//
//	GET /           an HTML view of the step list with states and timings
//	GET /status     the same as JSON
//
// The simulation is single-threaded, so the server holds an immutable
// snapshot that the driver refreshes with Update between clock steps;
// HTTP handlers never touch live workflow state.
type StatusServer struct {
	httpSrv *http.Server
	ln      net.Listener

	mu     sync.RWMutex
	closed bool
	snap   statusSnapshot
}

type statusSnapshot struct {
	Workflow string           `json:"workflow"`
	Now      time.Duration    `json:"virtual_now"`
	Done     bool             `json:"done"`
	Failed   bool             `json:"failed"`
	Steps    []statusStepView `json:"steps"`
}

type statusStepView struct {
	Name         string             `json:"name"`
	DependsOn    []string           `json:"depends_on"`
	Status       string             `json:"status"`
	Duration     string             `json:"duration"`
	Measurements map[string]float64 `json:"measurements"`
	Error        string             `json:"error,omitempty"`
}

// ServeStatus starts a status server on addr ("127.0.0.1:0" for ephemeral)
// pre-loaded with the workflow's current state.
func ServeStatus(w *Workflow, addr string) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &StatusServer{ln: ln}
	s.Update(w)
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleJSON)
	mux.HandleFunc("/", s.handleHTML)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return s, nil
}

// Addr returns the listening host:port.
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. It is idempotent and safe to call
// concurrently with Update: the snapshot swap and the closed flag share
// the server mutex, so an Update racing a Close either lands before the
// shutdown or becomes a no-op.
func (s *StatusServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.httpSrv.Close()
}

// Update refreshes the served snapshot from the workflow's current state.
// Call it from the simulation driver (never concurrently with clock
// steps). Update may race Close from another goroutine: after Close it is
// a no-op.
func (s *StatusServer) Update(w *Workflow) {
	snap := statusSnapshot{
		Workflow: w.Name,
		Now:      w.clock.Now(),
		Done:     w.finished,
		Failed:   w.failed,
	}
	for _, name := range w.order {
		st := w.steps[name]
		view := statusStepView{
			Name:         st.name,
			DependsOn:    append([]string(nil), st.deps...),
			Status:       st.status.String(),
			Measurements: make(map[string]float64, len(st.measurements)),
		}
		switch st.status {
		case StatusSucceeded, StatusFailed:
			view.Duration = (st.ended - st.started).Round(time.Second).String()
		case StatusRunning:
			view.Duration = (w.clock.Now() - st.started).Round(time.Second).String() + " (running)"
		}
		for k, v := range st.measurements {
			view.Measurements[k] = v
		}
		if st.err != nil {
			view.Error = st.err.Error()
		}
		snap.Steps = append(snap.Steps, view)
	}
	s.mu.Lock()
	if !s.closed {
		s.snap = snap
	}
	s.mu.Unlock()
}

func (s *StatusServer) handleJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

var statusTmpl = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><title>{{.Workflow}} — CHASE-CI workflow</title></head>
<body>
<h1>workflow: {{.Workflow}}</h1>
<p>virtual time {{.Now}} — done={{.Done}} failed={{.Failed}}</p>
<table border="1" cellpadding="4">
<tr><th>#</th><th>step</th><th>depends on</th><th>status</th><th>duration</th><th>measurements</th></tr>
{{range $i, $s := .Steps}}
<tr>
<td>{{$i}}</td><td>{{$s.Name}}</td>
<td>{{range $s.DependsOn}}{{.}} {{end}}</td>
<td>{{$s.Status}}</td><td>{{$s.Duration}}</td>
<td>{{range $k, $v := $s.Measurements}}{{$k}}={{printf "%.4g" $v}} {{end}}</td>
</tr>
{{end}}
</table>
</body></html>`))

func (s *StatusServer) handleHTML(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, snap); err != nil {
		fmt.Fprintf(w, "<!-- render error: %v -->", err)
	}
}
