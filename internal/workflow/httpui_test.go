package workflow

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"chaseci/internal/sim"
)

func newUIWorkflow(t *testing.T) (*sim.Clock, *Workflow) {
	t.Helper()
	clk := sim.NewClock()
	w := New("connect-segmentation", clk)
	w.AddStep(StepSpec{Name: "download", Run: func(ctx *Ctx) {
		ctx.Record("pods", 14)
		ctx.After(37*time.Minute, func() { ctx.Done(nil) })
	}})
	w.AddStep(StepSpec{Name: "train", DependsOn: []string{"download"}, Run: func(ctx *Ctx) {
		ctx.After(306*time.Minute, func() { ctx.Done(nil) })
	}})
	return clk, w
}

func TestStatusJSONMidRun(t *testing.T) {
	clk, w := newUIWorkflow(t)
	w.Run(nil)
	clk.RunUntil(10 * time.Minute)

	srv, err := ServeStatus(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Workflow string `json:"workflow"`
		Done     bool   `json:"done"`
		Steps    []struct {
			Name         string             `json:"name"`
			Status       string             `json:"status"`
			Measurements map[string]float64 `json:"measurements"`
		} `json:"steps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workflow != "connect-segmentation" || snap.Done {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Steps[0].Status != "Running" || snap.Steps[1].Status != "Pending" {
		t.Fatalf("statuses = %s/%s", snap.Steps[0].Status, snap.Steps[1].Status)
	}
	if snap.Steps[0].Measurements["pods"] != 14 {
		t.Fatalf("measurements = %v", snap.Steps[0].Measurements)
	}
}

func TestStatusUpdateReflectsCompletion(t *testing.T) {
	clk, w := newUIWorkflow(t)
	w.Run(nil)
	srv, err := ServeStatus(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clk.Run()
	srv.Update(w)

	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Done  bool `json:"done"`
		Steps []struct {
			Status   string `json:"status"`
			Duration string `json:"duration"`
		} `json:"steps"`
	}
	json.NewDecoder(resp.Body).Decode(&snap)
	if !snap.Done {
		t.Fatal("snapshot not done after Update")
	}
	for i, s := range snap.Steps {
		if s.Status != "Succeeded" {
			t.Fatalf("step %d status = %s", i, s.Status)
		}
		if s.Duration == "" {
			t.Fatalf("step %d missing duration", i)
		}
	}
}

func TestStatusHTMLPage(t *testing.T) {
	clk, w := newUIWorkflow(t)
	w.Run(nil)
	clk.Run()
	srv, err := ServeStatus(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	page := string(body)
	for _, want := range []string{"connect-segmentation", "download", "train", "Succeeded"} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q:\n%s", want, page)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %s", ct)
	}
}

func TestStatusUnknownPath404(t *testing.T) {
	_, w := newUIWorkflow(t)
	srv, err := ServeStatus(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

func TestStatusFailedStepHasError(t *testing.T) {
	clk := sim.NewClock()
	w := New("failing", clk)
	w.AddStep(StepSpec{Name: "boom", Run: func(ctx *Ctx) {
		ctx.After(time.Second, func() { ctx.Done(errDownload) })
	}})
	w.Run(nil)
	clk.Run()
	srv, err := ServeStatus(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Failed bool `json:"failed"`
		Steps  []struct {
			Error string `json:"error"`
		} `json:"steps"`
	}
	json.NewDecoder(resp.Body).Decode(&snap)
	if !snap.Failed || snap.Steps[0].Error == "" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

var errDownload = errFor("download exploded")

type errFor string

func (e errFor) Error() string { return string(e) }
