package workflow

import (
	"context"
	"errors"
	"testing"
	"time"

	"chaseci/internal/sim"
)

// TestExecuteCtxRunsToCompletion drives a small DAG end to end without an
// external clock loop.
func TestExecuteCtxRunsToCompletion(t *testing.T) {
	clk := sim.NewClock()
	w := New("exec", clk)
	w.AddStep(StepSpec{Name: "a", Run: func(ctx *Ctx) {
		ctx.Record("pods", 2)
		ctx.After(10*time.Minute, func() { ctx.Done(nil) })
	}})
	w.AddStep(StepSpec{Name: "b", DependsOn: []string{"a"}, Run: func(ctx *Ctx) {
		ctx.After(5*time.Minute, func() { ctx.Done(nil) })
	}})
	report, err := w.ExecuteCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !w.Done() || w.Failed() {
		t.Fatalf("done=%v failed=%v after ExecuteCtx", w.Done(), w.Failed())
	}
	if report.Total != 15*time.Minute {
		t.Fatalf("total = %v, want 15m", report.Total)
	}
}

// TestExecuteCtxCancelled: a cancelled context stops the clock drive and
// returns the partial report.
func TestExecuteCtxCancelled(t *testing.T) {
	clk := sim.NewClock()
	w := New("exec-cancel", clk)
	w.AddStep(StepSpec{Name: "long", Run: func(ctx *Ctx) {
		ctx.After(time.Hour, func() { ctx.Done(nil) })
	}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := w.ExecuteCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if w.Done() {
		t.Fatal("workflow must not be done after cancellation")
	}
	if len(report.Steps) != 1 || report.Steps[0].Status != StatusRunning {
		t.Fatalf("partial report = %+v", report)
	}
}

// TestExecuteCtxStalled: a step that never completes drains the event
// queue and surfaces ErrStalled instead of hanging.
func TestExecuteCtxStalled(t *testing.T) {
	clk := sim.NewClock()
	w := New("stall", clk)
	w.AddStep(StepSpec{Name: "zombie", Run: func(ctx *Ctx) {}}) // never Done
	_, err := w.ExecuteCtx(context.Background())
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestExecuteCtxInvalidDAG propagates Run's validation errors.
func TestExecuteCtxInvalidDAG(t *testing.T) {
	clk := sim.NewClock()
	w := New("bad", clk)
	w.AddStep(StepSpec{Name: "a", DependsOn: []string{"ghost"}, Run: func(ctx *Ctx) { ctx.Done(nil) }})
	if _, err := w.ExecuteCtx(context.Background()); !errors.Is(err, ErrUnknownDep) {
		t.Fatalf("err = %v, want ErrUnknownDep", err)
	}
}
