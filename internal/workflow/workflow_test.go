package workflow

import (
	"errors"
	"strings"
	"testing"
	"time"

	"chaseci/internal/sim"
)

// timedStep returns a StepSpec that succeeds after d.
func timedStep(name string, d time.Duration, deps ...string) StepSpec {
	return StepSpec{
		Name: name, DependsOn: deps,
		Run: func(ctx *Ctx) {
			ctx.After(d, func() { ctx.Done(nil) })
		},
	}
}

func TestLinearWorkflowRunsInOrder(t *testing.T) {
	clk := sim.NewClock()
	w := New("connect", clk)
	var order []string
	mk := func(name string, deps ...string) StepSpec {
		return StepSpec{Name: name, DependsOn: deps, Run: func(ctx *Ctx) {
			ctx.After(time.Minute, func() {
				order = append(order, name)
				ctx.Done(nil)
			})
		}}
	}
	w.AddStep(mk("download"))
	w.AddStep(mk("train", "download"))
	w.AddStep(mk("inference", "train"))
	w.AddStep(mk("visualize", "inference"))
	var ok *bool
	if err := w.Run(func(b bool) { ok = &b }); err != nil {
		t.Fatal(err)
	}
	clk.Run()
	if !w.Done() || ok == nil || !*ok {
		t.Fatalf("done=%v ok=%v", w.Done(), ok)
	}
	want := []string{"download", "train", "inference", "visualize"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if clk.Now() != 4*time.Minute {
		t.Fatalf("total virtual time = %v, want 4m", clk.Now())
	}
}

func TestParallelStepsOverlap(t *testing.T) {
	clk := sim.NewClock()
	w := New("par", clk)
	w.AddStep(timedStep("a", 10*time.Minute))
	w.AddStep(timedStep("b", 10*time.Minute))
	w.Run(nil)
	clk.Run()
	if clk.Now() != 10*time.Minute {
		t.Fatalf("parallel steps took %v, want 10m", clk.Now())
	}
}

func TestDiamondDependency(t *testing.T) {
	clk := sim.NewClock()
	w := New("diamond", clk)
	w.AddStep(timedStep("root", time.Minute))
	w.AddStep(timedStep("left", 2*time.Minute, "root"))
	w.AddStep(timedStep("right", 3*time.Minute, "root"))
	w.AddStep(timedStep("join", time.Minute, "left", "right"))
	w.Run(nil)
	clk.Run()
	// 1 + max(2,3) + 1 = 5 minutes.
	if clk.Now() != 5*time.Minute {
		t.Fatalf("diamond took %v, want 5m", clk.Now())
	}
	if w.Status("join") != StatusSucceeded {
		t.Fatalf("join = %v", w.Status("join"))
	}
}

func TestFailureSkipsDependents(t *testing.T) {
	clk := sim.NewClock()
	w := New("fail", clk)
	boom := errors.New("download failed")
	w.AddStep(StepSpec{Name: "download", Run: func(ctx *Ctx) {
		ctx.After(time.Second, func() { ctx.Done(boom) })
	}})
	w.AddStep(timedStep("train", time.Minute, "download"))
	w.AddStep(timedStep("infer", time.Minute, "train"))
	w.AddStep(timedStep("independent", time.Minute))
	var ok *bool
	w.Run(func(b bool) { ok = &b })
	clk.Run()
	if !w.Failed() || ok == nil || *ok {
		t.Fatalf("failed=%v ok=%v", w.Failed(), ok)
	}
	if w.Status("train") != StatusSkipped || w.Status("infer") != StatusSkipped {
		t.Fatalf("dependents = %v/%v, want Skipped", w.Status("train"), w.Status("infer"))
	}
	if w.Status("independent") != StatusSucceeded {
		t.Fatalf("independent step = %v, want Succeeded", w.Status("independent"))
	}
	if !errors.Is(w.StepError("download"), boom) {
		t.Fatalf("StepError = %v", w.StepError("download"))
	}
}

func TestCycleDetected(t *testing.T) {
	clk := sim.NewClock()
	w := New("cycle", clk)
	w.AddStep(timedStep("a", time.Second, "b"))
	w.AddStep(timedStep("b", time.Second, "a"))
	if err := w.Run(nil); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestUnknownDependency(t *testing.T) {
	clk := sim.NewClock()
	w := New("dangling", clk)
	w.AddStep(timedStep("a", time.Second, "ghost"))
	if err := w.Run(nil); !errors.Is(err, ErrUnknownDep) {
		t.Fatalf("err = %v, want ErrUnknownDep", err)
	}
}

func TestDuplicateStepRejected(t *testing.T) {
	clk := sim.NewClock()
	w := New("dup", clk)
	w.AddStep(timedStep("a", time.Second))
	if err := w.AddStep(timedStep("a", time.Second)); !errors.Is(err, ErrDuplicateStep) {
		t.Fatalf("err = %v, want ErrDuplicateStep", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	clk := sim.NewClock()
	w := New("twice", clk)
	w.AddStep(timedStep("a", time.Second))
	w.Run(nil)
	if err := w.Run(nil); !errors.Is(err, ErrAlreadyRun) {
		t.Fatalf("err = %v, want ErrAlreadyRun", err)
	}
}

func TestDoneTwicePanics(t *testing.T) {
	clk := sim.NewClock()
	w := New("dbl", clk)
	w.AddStep(StepSpec{Name: "a", Run: func(ctx *Ctx) {
		ctx.Done(nil)
		defer func() {
			if recover() == nil {
				t.Error("second Done did not panic")
			}
		}()
		ctx.Done(nil)
	}})
	w.Run(nil)
	clk.Run()
}

func TestMeasurementsInReport(t *testing.T) {
	clk := sim.NewClock()
	w := New("measured", clk)
	w.AddStep(StepSpec{Name: "download", Run: func(ctx *Ctx) {
		ctx.Record("pods", 14)
		ctx.Record("gpus", 0)
		ctx.Record("data_bytes", 246e9)
		ctx.After(37*time.Minute, func() { ctx.Done(nil) })
	}})
	w.AddStep(StepSpec{Name: "train", DependsOn: []string{"download"}, Run: func(ctx *Ctx) {
		ctx.Record("pods", 1)
		ctx.Record("gpus", 1)
		ctx.After(306*time.Minute, func() { ctx.Done(nil) })
	}})
	w.Run(nil)
	clk.Run()
	r := w.Report()
	if len(r.Steps) != 2 {
		t.Fatalf("report has %d steps", len(r.Steps))
	}
	if r.Steps[0].Duration != 37*time.Minute || r.Steps[1].Duration != 306*time.Minute {
		t.Fatalf("durations = %v, %v", r.Steps[0].Duration, r.Steps[1].Duration)
	}
	if r.Steps[0].Measurements["pods"] != 14 {
		t.Fatalf("download pods = %v", r.Steps[0].Measurements["pods"])
	}
	if r.Total != 343*time.Minute {
		t.Fatalf("total = %v", r.Total)
	}
}

func TestRenderTableShape(t *testing.T) {
	clk := sim.NewClock()
	w := New("tbl", clk)
	w.AddStep(StepSpec{Name: "s1", Run: func(ctx *Ctx) {
		ctx.Record("pods", 14)
		ctx.Record("data_bytes", 246e9)
		ctx.After(time.Minute, func() { ctx.Done(nil) })
	}})
	w.AddStep(StepSpec{Name: "s2", DependsOn: []string{"s1"}, Run: func(ctx *Ctx) {
		ctx.Record("pods", 1)
		ctx.Done(nil)
	}})
	w.Run(nil)
	clk.Run()
	out := w.Report().RenderTable()
	for _, want := range []string{"s1", "s2", "pods", "246.0GB", "Total Time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderPlan(t *testing.T) {
	clk := sim.NewClock()
	w := New("connect", clk)
	w.AddStep(timedStep("download", time.Second))
	w.AddStep(timedStep("train", time.Second, "download"))
	out := w.RenderPlan()
	if !strings.Contains(out, "1. download") || !strings.Contains(out, "2. train <- download") {
		t.Fatalf("plan:\n%s", out)
	}
}

func TestImmediateStepCompletion(t *testing.T) {
	// A step that calls Done synchronously inside Run must not deadlock the
	// engine or fire onComplete twice.
	clk := sim.NewClock()
	w := New("sync", clk)
	w.AddStep(StepSpec{Name: "instant", Run: func(ctx *Ctx) { ctx.Done(nil) }})
	calls := 0
	w.Run(func(bool) { calls++ })
	clk.Run()
	if calls != 1 {
		t.Fatalf("onComplete fired %d times", calls)
	}
	if !w.Done() {
		t.Fatal("workflow not done")
	}
}
