// Package dataset is the content-addressed data plane of the chased
// service: volumes and masks live once in the community fabric (the
// simulated Rook/Ceph objstore) and every layer above — the Job API, the
// service handlers, the streamed pipeline, the CLI — moves 64-hex SHA-256
// *references* instead of inline float payloads. This is the paper's core
// bet made concrete: workflows ship refs to data held near the compute
// ("data is moved to where it is needed"), so a 128^3 segment job submits a
// ~70-byte ref where the inline path shipped ~8 MB of JSON text.
//
// The codec is deliberately compact and self-describing:
//
//	magic   "CDS1" (4 bytes)
//	kind    uint8  (1 = float32 volume, 2 = 1-bit packed binary mask)
//	pad     3 bytes (zero)
//	d, h, w uint32 little-endian
//	payload volume: d*h*w float32 LE; mask: ceil(d*h*w/8) bytes, LSB-first
//
// A dataset's ID is the lowercase hex SHA-256 of its full encoding, so IDs
// are self-verifying: the gateway recomputes the hash on upload and a
// corrupt or mislabeled blob can never resolve.
package dataset

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"chaseci/internal/objstore"
	"chaseci/internal/sim"
)

// Kind discriminates the payload encodings.
type Kind uint8

// The payload kinds.
const (
	// KindVolume is a dense row-major (d, h, w) float32 field.
	KindVolume Kind = 1
	// KindMask is a binary (d, h, w) field packed 1 bit per voxel —
	// ~32x smaller than the float32 encoding for segmentation masks.
	KindMask Kind = 2
	// KindCheckpoint is an opaque training-checkpoint byte string (the FFN
	// FFNCKPT format). d carries the payload byte length; h and w are 1.
	KindCheckpoint Kind = 3
)

// String names the kind for listings.
func (k Kind) String() string {
	switch k {
	case KindVolume:
		return "volume"
	case KindMask:
		return "mask"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Codec errors.
var (
	ErrBadEncoding = errors.New("dataset: bad encoding")
	ErrNotFound    = errors.New("dataset: not found")
	ErrBadID       = errors.New("dataset: malformed id")
	ErrTooLarge    = errors.New("dataset: exceeds size limit")
)

var magic = [4]byte{'C', 'D', 'S', '1'}

// HeaderSize is the fixed codec prefix before the payload.
const HeaderSize = 20

// maxVoxels mirrors the api package's inline-volume cap (64M voxels =
// 256 MB f32), so a ref can never resolve to a volume the service would
// have refused inline.
const maxVoxels = 64 << 20

// MaxEncodedBytes is the largest valid dataset encoding.
const MaxEncodedBytes = HeaderSize + maxVoxels*4

// voxels returns d*h*w when positive and within maxVoxels, division-checked
// so the product cannot overflow.
func voxels(d, h, w int) (int, bool) {
	if d <= 0 || h <= 0 || w <= 0 {
		return 0, false
	}
	if d > maxVoxels/h {
		return 0, false
	}
	dh := d * h
	if dh > maxVoxels/w {
		return 0, false
	}
	return dh * w, true
}

// PackBits packs a float32 field into 1 bit per element, LSB-first: any
// non-zero value becomes a set bit. It is the shared mask encoding of the
// dataset codec and the Job API's inline mask_bits result field.
func PackBits(data []float32) []byte {
	out := make([]byte, (len(data)+7)/8)
	for i, v := range data {
		if v != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// UnpackBits expands n LSB-first packed bits into a 0/1 float32 field.
// Stray set bits beyond n are rejected: one logical mask must have exactly
// one encoding (and therefore one content address), like the zero header
// padding the codec also enforces.
func UnpackBits(bits []byte, n int) ([]float32, error) {
	if n < 0 || len(bits) != (n+7)/8 {
		return nil, fmt.Errorf("%w: %d packed bytes cannot hold %d bits", ErrBadEncoding, len(bits), n)
	}
	if rem := n % 8; rem != 0 && bits[len(bits)-1]>>rem != 0 {
		return nil, fmt.Errorf("%w: non-zero padding bits past bit %d", ErrBadEncoding, n)
	}
	out := make([]float32, n)
	for i := range out {
		if bits[i/8]&(1<<(i%8)) != 0 {
			out[i] = 1
		}
	}
	return out, nil
}

func encodeHeader(kind Kind, d, h, w, payload int) []byte {
	b := make([]byte, HeaderSize, HeaderSize+payload)
	copy(b, magic[:])
	b[4] = byte(kind)
	binary.LittleEndian.PutUint32(b[8:], uint32(d))
	binary.LittleEndian.PutUint32(b[12:], uint32(h))
	binary.LittleEndian.PutUint32(b[16:], uint32(w))
	return b
}

// EncodeVolume encodes a dense float32 volume.
func EncodeVolume(d, h, w int, data []float32) ([]byte, error) {
	n, ok := voxels(d, h, w)
	if !ok || len(data) != n {
		return nil, fmt.Errorf("%w: volume %dx%dx%d with %d values", ErrBadEncoding, d, h, w, len(data))
	}
	b := encodeHeader(KindVolume, d, h, w, 4*n)
	for _, v := range data {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
	}
	return b, nil
}

// EncodeMask encodes a binary volume 1 bit per voxel; non-zero values are
// set bits.
func EncodeMask(d, h, w int, data []float32) ([]byte, error) {
	n, ok := voxels(d, h, w)
	if !ok || len(data) != n {
		return nil, fmt.Errorf("%w: mask %dx%dx%d with %d values", ErrBadEncoding, d, h, w, len(data))
	}
	b := encodeHeader(KindMask, d, h, w, (n+7)/8)
	return append(b, PackBits(data)...), nil
}

// EncodeCheckpoint encodes an opaque checkpoint byte string. The byte
// length rides in the d dimension, so the header path's size validation
// applies unchanged.
func EncodeCheckpoint(payload []byte) ([]byte, error) {
	if _, ok := voxels(len(payload), 1, 1); !ok {
		return nil, fmt.Errorf("%w: checkpoint of %d bytes", ErrBadEncoding, len(payload))
	}
	b := encodeHeader(KindCheckpoint, len(payload), 1, 1, len(payload))
	return append(b, payload...), nil
}

// Blob is a decoded dataset. Data/Raw are shared with the manager's resolve
// cache — treat them as read-only and CloneData before mutating.
type Blob struct {
	Kind    Kind
	D, H, W int
	Data    []float32
	// Raw holds a checkpoint's opaque payload bytes (nil for volume/mask).
	Raw []byte
}

// Voxels returns the element count.
func (b *Blob) Voxels() int { return b.D * b.H * b.W }

// CloneData returns a private copy of the payload, for callers (like the
// FFN's in-place Normalize) that mutate it.
func (b *Blob) CloneData() []float32 {
	return append([]float32(nil), b.Data...)
}

// DecodeHeader reads just the codec prefix, validating magic, kind, dims,
// and that the byte length matches the dims exactly.
func DecodeHeader(enc []byte) (kind Kind, d, h, w int, err error) {
	if len(enc) < HeaderSize || [4]byte(enc[:4]) != magic {
		return 0, 0, 0, 0, fmt.Errorf("%w: missing CDS1 header", ErrBadEncoding)
	}
	kind = Kind(enc[4])
	if enc[5] != 0 || enc[6] != 0 || enc[7] != 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: non-zero header padding", ErrBadEncoding)
	}
	d = int(binary.LittleEndian.Uint32(enc[8:]))
	h = int(binary.LittleEndian.Uint32(enc[12:]))
	w = int(binary.LittleEndian.Uint32(enc[16:]))
	n, ok := voxels(d, h, w)
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("%w: dims %dx%dx%d out of range", ErrBadEncoding, d, h, w)
	}
	var want int
	switch kind {
	case KindVolume:
		want = 4 * n
	case KindMask:
		want = (n + 7) / 8
	case KindCheckpoint:
		if h != 1 || w != 1 {
			return 0, 0, 0, 0, fmt.Errorf("%w: checkpoint dims %dx%dx%d, want Nx1x1", ErrBadEncoding, d, h, w)
		}
		want = n
	default:
		return 0, 0, 0, 0, fmt.Errorf("%w: unknown kind %d", ErrBadEncoding, enc[4])
	}
	if len(enc) != HeaderSize+want {
		return 0, 0, 0, 0, fmt.Errorf("%w: %d payload bytes, dims %dx%dx%d require %d",
			ErrBadEncoding, len(enc)-HeaderSize, d, h, w, want)
	}
	// Canonical-form check for masks (the store validates uploads through
	// this header path alone): stray set bits in the final byte would let
	// one logical mask hash to many content addresses, defeating dedup.
	if kind == KindMask {
		if rem := n % 8; rem != 0 && enc[len(enc)-1]>>rem != 0 {
			return 0, 0, 0, 0, fmt.Errorf("%w: non-zero padding bits past bit %d", ErrBadEncoding, n)
		}
	}
	return kind, d, h, w, nil
}

// Decode parses a full encoding into a Blob. Masks are expanded to a 0/1
// float32 field, so every dataset resolves to the same in-memory shape the
// kernels consume.
func Decode(enc []byte) (*Blob, error) {
	kind, d, h, w, err := DecodeHeader(enc)
	if err != nil {
		return nil, err
	}
	n := d * h * w
	b := &Blob{Kind: kind, D: d, H: h, W: w}
	switch kind {
	case KindVolume:
		b.Data = make([]float32, n)
		for i := range b.Data {
			b.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(enc[HeaderSize+4*i:]))
		}
	case KindMask:
		b.Data, err = UnpackBits(enc[HeaderSize:], n)
		if err != nil {
			return nil, err
		}
	case KindCheckpoint:
		// Opaque bytes: no float32 expansion.
		b.Raw = append([]byte(nil), enc[HeaderSize:]...)
	}
	return b, nil
}

// ID returns the dataset's content address: lowercase hex SHA-256 over the
// full encoding.
func ID(enc []byte) string {
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// ValidID reports whether s has the shape of a content address (64 lowercase
// hex chars).
func ValidID(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Info summarizes a stored dataset for listings.
type Info struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	D     int    `json:"d"`
	H     int    `json:"h"`
	W     int    `json:"w"`
	Bytes int    `json:"bytes"`
	Owner string `json:"owner,omitempty"`
}

// Config tunes a Manager.
type Config struct {
	// CacheBytes bounds the decoded-blob resolve cache (<= 0 = 128 MB).
	CacheBytes int
}

// Manager is the content-addressed dataset store: encoded blobs persist in
// an objstore bucket (replicated, heal-on-OSD-loss — the Ceph/Rook layer),
// and an LRU-bounded cache keeps recently resolved volumes decoded so a
// client that uploads once and submits many jobs pays the decode once.
// All methods are safe for concurrent use; the underlying objstore.Store is
// single-threaded, so every touch goes through the manager's mutex.
type Manager struct {
	mu     sync.Mutex
	mount  *objstore.Mount
	meta   map[string]Info
	owners map[string]map[string]bool // id -> every identity that put it
	pins   map[string]int
	kept   map[string]bool
	doomed map[string]bool

	cacheBytes    int
	cacheCapacity int
	cache         map[string]*list.Element
	lru           *list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	id    string
	blob  *Blob
	bytes int
}

// NewManager builds a manager over a mount (one bucket of a store).
func NewManager(mount *objstore.Mount, cfg Config) *Manager {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 128 << 20
	}
	return &Manager{
		mount:         mount,
		meta:          make(map[string]Info),
		owners:        make(map[string]map[string]bool),
		pins:          make(map[string]int),
		kept:          make(map[string]bool),
		doomed:        make(map[string]bool),
		cacheCapacity: cfg.CacheBytes,
		cache:         make(map[string]*list.Element),
		lru:           list.New(),
	}
}

// NewLocal builds a self-contained manager for in-process use (the default
// the service Runner falls back to): a private virtual-time objstore with
// three OSDs and 3-way replication, mounted at the "datasets" bucket.
func NewLocal() *Manager {
	clk := sim.NewClock()
	store := objstore.NewStore(clk, nil, objstore.Config{Replicas: 3})
	for i := 0; i < 3; i++ {
		store.AddOSD(fmt.Sprintf("osd-%d", i), "local", 1e12, 1)
	}
	return NewManager(store.MountBucket("datasets"), Config{})
}

// Put validates and stores an encoded dataset, returning its Info. Putting
// bytes that already exist is an idempotent no-op (content addressing:
// same bytes, same id); every putter is registered as an owner — they
// proved possession of the content, so a duplicate upload grants them the
// same read/submit scope as the first. Put marks the dataset kept
// (durable user data: uploads, result offloads, ingests) — Delete never
// removes kept ids; producers of transient intermediates use PutNew.
func (m *Manager) Put(enc []byte, owner string) (Info, error) {
	info, _, err := m.put(enc, owner, true, false)
	return info, err
}

// PutNew is Put without the kept mark, additionally reporting whether the
// bytes were newly stored (false means the content was already present,
// possibly owned by someone else). Producers of deletable intermediates
// use it to know which ids are theirs to release — and promote an
// intermediate to durable data with Keep when it becomes a result.
func (m *Manager) PutNew(enc []byte, owner string) (Info, bool, error) {
	return m.put(enc, owner, false, false)
}

// PutPinned is PutNew with a Pin taken under the same lock acquisition,
// closing the window where a concurrent releaser could delete a
// content-colliding id between the put and a separate Pin call. The
// caller owes one Unpin.
func (m *Manager) PutPinned(enc []byte, owner string) (Info, bool, error) {
	return m.put(enc, owner, false, true)
}

// put stores (or re-registers) encoded bytes under one lock acquisition,
// so the kept mark and/or pin land atomically with the write — a
// concurrent intermediate release can never delete a just-Put dataset.
// The returned Info carries the caller's own identity in Owner (never
// another uploader's), so duplicate-upload replies leak nothing.
func (m *Manager) put(enc []byte, owner string, keep, pin bool) (Info, bool, error) {
	if len(enc) > MaxEncodedBytes {
		return Info{}, false, fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(enc), MaxEncodedBytes)
	}
	kind, d, h, w, err := DecodeHeader(enc)
	if err != nil {
		return Info{}, false, err
	}
	id := ID(enc)
	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-putting content revokes any pending deferred delete: the bytes
	// are wanted again.
	delete(m.doomed, id)
	if info, ok := m.meta[id]; ok {
		m.addOwnerLocked(id, owner)
		if keep {
			m.kept[id] = true
		}
		if pin {
			m.pins[id]++
		}
		info.Owner = owner
		return info, false, nil
	}
	if err := m.mount.WriteFile(id, enc); err != nil {
		return Info{}, false, err
	}
	info := Info{ID: id, Kind: kind.String(), D: d, H: h, W: w, Bytes: len(enc), Owner: owner}
	m.meta[id] = info
	m.addOwnerLocked(id, owner)
	if keep {
		m.kept[id] = true
	}
	if pin {
		m.pins[id]++
	}
	return info, true, nil
}

// addOwnerLocked registers an identity on the dataset. m.mu held.
func (m *Manager) addOwnerLocked(id, owner string) {
	set := m.owners[id]
	if set == nil {
		set = make(map[string]bool, 1)
		m.owners[id] = set
	}
	set[owner] = true
}

// VisibleTo reports whether caller is in the dataset's ownership scope:
// open datasets (any owner registered as "", "anonymous", or never
// recorded) are visible to everyone; otherwise the caller must be a
// registered owner. This single predicate backs both the gateway's
// dataset endpoints and the service's submit-time ref check, so the two
// can never drift.
func (m *Manager) VisibleTo(id, caller string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.meta[id]; !ok {
		return false
	}
	// Every live dataset has at least one registered owner (put always
	// records one, "" included); an empty set means the last claim was
	// dropped and only a pin is holding the bytes for a running job —
	// nobody may see it anymore.
	set := m.owners[id]
	return set[""] || set["anonymous"] || set[caller]
}

// IsOwner reports whether caller personally put (or ingested) the dataset
// — stricter than VisibleTo, which open markers satisfy too.
func (m *Manager) IsOwner(id, caller string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owners[id][caller]
}

// Drop removes caller's ownership claim on a dataset — the reclamation
// path for kept data, bounding the store against upload-and-forget
// growth. When the last claim drops, the kept mark is lifted and the
// dataset deleted (deferred while pinned, as usual). An anonymous caller
// may drop the open markers ("" / "anonymous"). Reports whether a claim
// was removed.
func (m *Manager) Drop(id, caller string) bool {
	if !ValidID(id) {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.owners[id]
	who := caller
	if !set[who] && caller == "anonymous" && set[""] {
		who = ""
	}
	if !set[who] {
		return false
	}
	delete(set, who)
	if len(set) > 0 {
		return true
	}
	delete(m.owners, id)
	delete(m.kept, id)
	if m.pins[id] > 0 {
		m.doomed[id] = true
		return true
	}
	m.deleteLocked(id)
	return true
}

// Keep marks a dataset durable: Delete (including a deferred one pending
// on its pins) will never remove it. Call while holding a Pin (or before
// any concurrent deleter can see the id) to make promotion race-free.
func (m *Manager) Keep(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.meta[id]; ok {
		m.kept[id] = true
		delete(m.doomed, id)
	}
}

// PutVolume encodes and stores a float32 volume.
func (m *Manager) PutVolume(d, h, w int, data []float32, owner string) (Info, error) {
	enc, err := EncodeVolume(d, h, w, data)
	if err != nil {
		return Info{}, err
	}
	return m.Put(enc, owner)
}

// PutMask encodes and stores a binary mask (1 bit/voxel).
func (m *Manager) PutMask(d, h, w int, data []float32, owner string) (Info, error) {
	enc, err := EncodeMask(d, h, w, data)
	if err != nil {
		return Info{}, err
	}
	return m.Put(enc, owner)
}

// GetBytes returns the raw encoding of a dataset — the gateway's GET body.
func (m *Manager) GetBytes(id string) ([]byte, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	enc, err := m.mount.ReadFile(id)
	if errors.Is(err, objstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return enc, err
}

// Resolve returns the decoded dataset, serving repeat resolves from the LRU
// cache. The returned Blob is shared — read-only (see Blob.CloneData).
func (m *Manager) Resolve(id string) (*Blob, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadID, id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.cache[id]; ok {
		m.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).blob, nil
	}
	enc, err := m.mount.ReadFile(id)
	if errors.Is(err, objstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	blob, err := Decode(enc)
	if err != nil {
		return nil, err
	}
	m.cacheLocked(id, blob)
	return blob, nil
}

// cacheLocked inserts a decoded blob and evicts LRU entries past the byte
// budget. m.mu held.
func (m *Manager) cacheLocked(id string, blob *Blob) {
	cost := 4*len(blob.Data) + len(blob.Raw)
	if cost > m.cacheCapacity {
		return // larger than the whole cache; don't thrash it
	}
	m.cache[id] = m.lru.PushFront(&cacheEntry{id: id, blob: blob, bytes: cost})
	m.cacheBytes += cost
	for m.cacheBytes > m.cacheCapacity {
		el := m.lru.Back()
		if el == nil {
			break
		}
		ent := m.lru.Remove(el).(*cacheEntry)
		delete(m.cache, ent.id)
		m.cacheBytes -= ent.bytes
	}
}

// CachedBytes reports the resolve cache's current footprint (tests).
func (m *Manager) CachedBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheBytes
}

// Stat returns a dataset's Info without touching its payload.
func (m *Manager) Stat(id string) (Info, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	info, ok := m.meta[id]
	return info, ok
}

// Placement resolves the objstore replica set currently holding a dataset's
// bytes — which OSDs, at which sites, and whether each daemon is up. The
// placement scheduler scores node candidates against it (data gravity). The
// underlying store is single-threaded, so the query runs under the
// manager's lock like every other store touch.
func (m *Manager) Placement(id string) []objstore.Replica {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mount.ReplicaPlacement(id)
}

// FailOSD marks a storage daemon down, immediately remapping its placement
// groups to surviving OSDs — after it returns, Placement only names
// survivors. RecoverOSD reverses it. Both run under the manager's lock so
// fault injection cannot race a concurrent Resolve.
func (m *Manager) FailOSD(osd string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.mount.FailOSD(osd)
	return err
}

// RecoverOSD brings a failed daemon back into placement.
func (m *Manager) RecoverOSD(osd string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mount.RecoverOSD(osd)
}

// List returns every stored dataset's Info, sorted by id.
func (m *Manager) List() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.meta))
	for _, info := range m.meta {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Pin marks a dataset in-use: deleting a pinned id is deferred until its
// last Unpin, so a producer releasing its intermediates cannot pull a blob
// out from under a concurrent job that content-collided into the same id.
func (m *Manager) Pin(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pins[id]++
}

// PinCount returns the dataset's live pin count. Lifecycle tests use it to
// assert pins balance (every submit-time Pin matched by exactly one Unpin,
// including across cluster-mode drain/requeue cycles).
func (m *Manager) PinCount(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pins[id]
}

// Pinned snapshots every live pin count, keyed by dataset id. Leak checks
// assert it is empty once all jobs are terminal: each submit-time or
// producer-side Pin must have been matched by exactly one Unpin.
func (m *Manager) Pinned() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.pins))
	for id, n := range m.pins {
		out[id] = n
	}
	return out
}

// Unpin reverses one Pin, executing a deferred Delete when the last pin
// drops and no Put has revived the content in the meantime.
func (m *Manager) Unpin(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pins[id] > 1 {
		m.pins[id]--
		return
	}
	delete(m.pins, id)
	if m.doomed[id] {
		delete(m.doomed, id)
		m.deleteLocked(id)
	}
}

// Delete removes a dataset and its cache entry. Deleting a missing or
// kept id is a no-op; deleting a pinned id is deferred until its last
// Unpin (unless a Put or Keep revives the content first), so intent to
// delete is neither lost nor able to destroy data another party claimed —
// even across jobs sharing a content-collided id.
func (m *Manager) Delete(id string) {
	if !ValidID(id) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.meta[id]; !ok || m.kept[id] {
		return
	}
	if m.pins[id] > 0 {
		m.doomed[id] = true
		return
	}
	m.deleteLocked(id)
}

// deleteLocked drops the dataset, its metadata, and its cache entry. m.mu
// held.
func (m *Manager) deleteLocked(id string) {
	if el, ok := m.cache[id]; ok {
		ent := m.lru.Remove(el).(*cacheEntry)
		delete(m.cache, ent.id)
		m.cacheBytes -= ent.bytes
	}
	if _, ok := m.meta[id]; ok {
		delete(m.meta, id)
		delete(m.owners, id)
		delete(m.kept, id)
		_ = m.mount.Remove(id)
	}
}
