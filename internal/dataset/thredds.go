package dataset

import (
	"context"
	"fmt"

	"chaseci/internal/merra"
	"chaseci/internal/thredds"
)

// IngestReport describes one FromTHREDDS pull.
type IngestReport struct {
	ID string
	// Granules is the number of URLs fetched; BytesMoved the total payload
	// bytes that crossed the wire (the quantity the paper's subset tool
	// shrinks); StoredBytes the encoded dataset size at rest.
	Granules    int
	BytesMoved  int64
	StoredBytes int
}

// FromTHREDDS pulls NC4-lite granules from a THREDDS catalog through the
// aria2-style Downloader, extracts one variable from each, stacks the
// slices in URL order into a single (time, lat, lon) volume, and stores it
// content-addressed — the ingestion edge of the data plane: catalog bytes
// come in once, and every downstream job moves only the returned ref.
//
// Each granule must carry the variable with trailing dims (H, W); 2-D
// variables contribute one time slice, 3-D (L, H, W) variables contribute
// L slices. All granules must agree on H and W. Cancelling ctx aborts the
// downloads mid-flight.
func FromTHREDDS(ctx context.Context, m *Manager, dl *thredds.Downloader, urls []string, variable, owner string) (IngestReport, error) {
	if len(urls) == 0 {
		return IngestReport{}, fmt.Errorf("dataset: FromTHREDDS needs at least one URL")
	}
	if dl == nil {
		dl = &thredds.Downloader{}
	}
	// The variable is extracted inside the (already serialized) sink, so
	// each granule's raw bytes are dropped as soon as its slice is out —
	// peak memory is one body plus the stacked variable, not every body.
	vars := make(map[string]*merra.Variable, len(urls))
	var extractErrs []error
	results, moved := dl.Fetch(ctx, urls, func(url string, body []byte) {
		v, err := merra.ExtractVariable(body, variable)
		if err != nil {
			extractErrs = append(extractErrs, fmt.Errorf("dataset: %s in %s: %w", variable, url, err))
			return
		}
		vars[url] = v
	})
	for _, r := range results {
		if r.Err != nil {
			return IngestReport{}, fmt.Errorf("dataset: fetch %s: %w", r.URL, r.Err)
		}
	}
	if len(extractErrs) > 0 {
		return IngestReport{}, extractErrs[0]
	}

	var data []float32
	var h, w, steps int
	for _, u := range urls {
		v := vars[u]
		var gh, gw, slices int
		switch len(v.Dims) {
		case 2:
			gh, gw, slices = v.Dims[0], v.Dims[1], 1
		case 3:
			slices, gh, gw = v.Dims[0], v.Dims[1], v.Dims[2]
		default:
			return IngestReport{}, fmt.Errorf("dataset: %s in %s has %d dims, want 2 or 3", variable, u, len(v.Dims))
		}
		if h == 0 {
			h, w = gh, gw
		} else if gh != h || gw != w {
			return IngestReport{}, fmt.Errorf("dataset: %s grid mismatch: %dx%d vs %dx%d", u, gh, gw, h, w)
		}
		data = append(data, v.Data...)
		steps += slices
	}

	info, err := m.PutVolume(steps, h, w, data, owner)
	if err != nil {
		return IngestReport{}, err
	}
	return IngestReport{ID: info.ID, Granules: len(urls), BytesMoved: moved, StoredBytes: info.Bytes}, nil
}
