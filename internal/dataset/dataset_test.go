package dataset

import (
	"context"
	"fmt"
	"testing"

	"chaseci/internal/api"
	"chaseci/internal/merra"
	"chaseci/internal/thredds"
)

func testVolume(d, h, w int, seed float32) []float32 {
	data := make([]float32, d*h*w)
	for i := range data {
		data[i] = seed + float32(i%97)*0.5
	}
	return data
}

func TestVolumeRoundTrip(t *testing.T) {
	d, h, w := 3, 5, 7
	data := testVolume(d, h, w, 1.25)
	enc, err := EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if blob.Kind != KindVolume || blob.D != d || blob.H != h || blob.W != w {
		t.Fatalf("header mismatch: %+v", blob)
	}
	for i := range data {
		if blob.Data[i] != data[i] {
			t.Fatalf("voxel %d: got %v want %v", i, blob.Data[i], data[i])
		}
	}
}

func TestMaskRoundTripAndCompression(t *testing.T) {
	d, h, w := 16, 32, 32
	data := make([]float32, d*h*w)
	for i := range data {
		if i%3 == 0 || i%7 == 0 {
			data[i] = 1
		}
	}
	enc, err := EncodeMask(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	// The satellite's point: 1 bit/voxel, ~32x smaller than float32.
	if want := HeaderSize + (d*h*w+7)/8; len(enc) != want {
		t.Fatalf("mask encoding is %d bytes, want %d", len(enc), want)
	}
	volEnc, _ := EncodeVolume(d, h, w, data)
	if ratio := float64(len(volEnc)) / float64(len(enc)); ratio < 25 {
		t.Fatalf("mask only %.1fx smaller than volume encoding", ratio)
	}
	blob, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if blob.Kind != KindMask {
		t.Fatalf("kind = %v", blob.Kind)
	}
	for i := range data {
		if blob.Data[i] != data[i] {
			t.Fatalf("voxel %d: got %v want %v", i, blob.Data[i], data[i])
		}
	}
}

func TestMaskNonBinaryValuesPackToOne(t *testing.T) {
	data := []float32{0, 0.5, -2, 1}
	enc, err := EncodeMask(1, 2, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, 1, 1}
	for i := range want {
		if blob.Data[i] != want[i] {
			t.Fatalf("voxel %d: got %v want %v", i, blob.Data[i], want[i])
		}
	}
}

func TestPackUnpackBitsPartialByte(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		data := make([]float32, n)
		for i := range data {
			if i%2 == 0 {
				data[i] = 1
			}
		}
		bits := PackBits(data)
		back, err := UnpackBits(bits, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("n=%d bit %d: got %v want %v", n, i, back[i], data[i])
			}
		}
	}
	if _, err := UnpackBits([]byte{1, 2}, 3); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, _ := EncodeVolume(2, 2, 2, make([]float32, 8))
	cases := map[string][]byte{
		"short":         enc[:HeaderSize-1],
		"bad magic":     append([]byte("XXXX"), enc[4:]...),
		"bad kind":      append(append([]byte{}, enc[:4]...), append([]byte{9}, enc[5:]...)...),
		"truncated":     enc[:len(enc)-1],
		"trailing junk": append(append([]byte{}, enc...), 0),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decode accepted corrupt bytes", name)
		}
	}
	// Zero dim.
	bad := append([]byte{}, enc...)
	bad[8], bad[9], bad[10], bad[11] = 0, 0, 0, 0
	if _, err := Decode(bad); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestIDIsContentAddress(t *testing.T) {
	a1, _ := EncodeVolume(1, 2, 2, []float32{1, 2, 3, 4})
	a2, _ := EncodeVolume(1, 2, 2, []float32{1, 2, 3, 4})
	b, _ := EncodeVolume(1, 2, 2, []float32{1, 2, 3, 5})
	if ID(a1) != ID(a2) {
		t.Fatal("same content, different ids")
	}
	if ID(a1) == ID(b) {
		t.Fatal("different content, same id")
	}
	if !ValidID(ID(a1)) {
		t.Fatalf("ID %q not ValidID", ID(a1))
	}
	for _, bad := range []string{"", "abc", ID(a1)[:63], ID(a1) + "0", "G" + ID(a1)[1:], "ABCDEF" + ID(a1)[6:]} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestManagerPutResolveRoundTrip(t *testing.T) {
	m := NewLocal()
	data := testVolume(4, 6, 8, 3)
	info, err := m.PutVolume(4, 6, 8, data, "alice@ucsd.edu")
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "volume" || info.D != 4 || info.Owner != "alice@ucsd.edu" {
		t.Fatalf("info = %+v", info)
	}
	blob, err := m.Resolve(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if blob.Data[i] != data[i] {
			t.Fatalf("voxel %d mismatch", i)
		}
	}
	// Raw bytes round-trip and re-hash to the same id.
	enc, err := m.GetBytes(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ID(enc) != info.ID {
		t.Fatal("GetBytes returned bytes hashing to a different id")
	}
}

func TestManagerPutIdempotentRegistersCoOwners(t *testing.T) {
	m := NewLocal()
	data := []float32{1, 2, 3, 4}
	i1, err := m.PutVolume(1, 2, 2, data, "first")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := m.PutVolume(1, 2, 2, data, "second")
	if err != nil {
		t.Fatal(err)
	}
	if i1.ID != i2.ID {
		t.Fatalf("dedup broken: %s vs %s", i1.ID, i2.ID)
	}
	// Each uploader sees their own identity in the reply (no leak), and
	// both — having proved possession — are in the visibility scope.
	if i1.Owner != "first" || i2.Owner != "second" {
		t.Fatalf("reply owners: %q, %q", i1.Owner, i2.Owner)
	}
	for _, who := range []string{"first", "second"} {
		if !m.VisibleTo(i1.ID, who) {
			t.Fatalf("co-owner %s not in visibility scope", who)
		}
	}
	if m.VisibleTo(i1.ID, "third") {
		t.Fatal("non-owner in visibility scope")
	}
	if got := len(m.List()); got != 1 {
		t.Fatalf("List has %d entries, want 1", got)
	}
}

func TestManagerMissingAndBadIDs(t *testing.T) {
	m := NewLocal()
	missing := ID([]byte("nope"))
	if _, err := m.Resolve(missing); err == nil {
		t.Fatal("resolve of missing id succeeded")
	}
	if _, err := m.Resolve("not-an-id"); err == nil {
		t.Fatal("resolve of malformed id succeeded")
	}
	if _, err := m.GetBytes("not-an-id"); err == nil {
		t.Fatal("GetBytes of malformed id succeeded")
	}
	m.Delete("not-an-id") // no-op, must not panic
	m.Delete(missing)
}

func TestManagerLRUCacheBounded(t *testing.T) {
	m := NewLocal()
	m.cacheCapacity = 3 * 4 * 1000 // room for ~3 volumes of 1000 voxels

	var ids []string
	for i := 0; i < 5; i++ {
		info, err := m.PutVolume(10, 10, 10, testVolume(10, 10, 10, float32(i)), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		if _, err := m.Resolve(info.ID); err != nil {
			t.Fatal(err)
		}
	}
	if m.CachedBytes() > m.cacheCapacity {
		t.Fatalf("cache %d bytes over its %d cap", m.CachedBytes(), m.cacheCapacity)
	}
	// Every id still resolves (cache is a cache, not the store).
	for _, id := range ids {
		if _, err := m.Resolve(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	// Repeat resolve returns the identical shared blob (a cache hit).
	b1, _ := m.Resolve(ids[len(ids)-1])
	b2, _ := m.Resolve(ids[len(ids)-1])
	if &b1.Data[0] != &b2.Data[0] {
		t.Fatal("repeat resolve re-decoded instead of hitting the cache")
	}
}

func TestManagerDeleteEvictsCache(t *testing.T) {
	m := NewLocal()
	// PutNew: an unkept intermediate, the only kind Delete removes.
	enc, err := EncodeVolume(2, 2, 2, testVolume(2, 2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := m.PutNew(enc, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatal(err)
	}
	m.Delete(info.ID)
	if m.CachedBytes() != 0 {
		t.Fatalf("cache holds %d bytes after delete", m.CachedBytes())
	}
	if _, err := m.Resolve(info.ID); err == nil {
		t.Fatal("deleted id still resolves")
	}
	if _, ok := m.Stat(info.ID); ok {
		t.Fatal("deleted id still in Stat")
	}
}

func TestFromTHREDDS(t *testing.T) {
	g := merra.Grid{NLon: 12, NLat: 8, NLev: 4}
	gen := merra.NewGenerator(g, 7)
	spec := merra.MERRA2().Slice(4)
	catalog := thredds.NewCatalog(spec, gen)
	srv, err := thredds.Serve(catalog, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	urls := make([]string, 3)
	for i := range urls {
		urls[i] = srv.SubsetURL(spec.FileName(i), "IVT")
	}
	m := NewLocal()
	rep, err := FromTHREDDS(context.Background(), m, &thredds.Downloader{Parallel: 2}, urls, "IVT", "ingest@ucsd.edu")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Granules != 3 || rep.BytesMoved <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	blob, err := m.Resolve(rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	if blob.D != 3 || blob.H != g.NLat || blob.W != g.NLon {
		t.Fatalf("ingested dims %dx%dx%d, want 3x%dx%d", blob.D, blob.H, blob.W, g.NLat, g.NLon)
	}
	// Slices must match the generator's own IVT, in URL order.
	levels := merra.PressureLevels(g.NLev)
	for i := 0; i < 3; i++ {
		want := merra.IVT(gen.State(i), levels)
		slice := blob.Data[i*g.NLat*g.NLon : (i+1)*g.NLat*g.NLon]
		for j := range want.Data {
			if slice[j] != want.Data[j] {
				t.Fatalf("granule %d voxel %d: got %v want %v", i, j, slice[j], want.Data[j])
			}
		}
	}
}

func TestFromTHREDDSCancelled(t *testing.T) {
	g := merra.Grid{NLon: 12, NLat: 8, NLev: 4}
	gen := merra.NewGenerator(g, 7)
	spec := merra.MERRA2().Slice(2)
	catalog := thredds.NewCatalog(spec, gen)
	srv, err := thredds.Serve(catalog, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	urls := []string{srv.SubsetURL(spec.FileName(0), "IVT")}
	if _, err := FromTHREDDS(ctx, NewLocal(), nil, urls, "IVT", ""); err == nil {
		t.Fatal("cancelled ingest succeeded")
	}
}

func TestFromTHREDDSBadVariable(t *testing.T) {
	g := merra.Grid{NLon: 12, NLat: 8, NLev: 4}
	gen := merra.NewGenerator(g, 7)
	spec := merra.MERRA2().Slice(1)
	catalog := thredds.NewCatalog(spec, gen)
	srv, err := thredds.Serve(catalog, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	urls := []string{srv.FileURL(spec.FileName(0))}
	if _, err := FromTHREDDS(context.Background(), NewLocal(), nil, urls, "NOPE", ""); err == nil {
		t.Fatal("missing variable accepted")
	}
}

func BenchmarkResolveCached(b *testing.B) {
	m := NewLocal()
	info, err := m.PutVolume(16, 64, 64, testVolume(16, 64, 64, 1), "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Resolve(info.ID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Resolve(info.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleID() {
	enc, _ := EncodeVolume(1, 1, 2, []float32{1, 2})
	fmt.Println(len(ID(enc)))
	// Output: 64
}

// TestValidRefMatchesValidID pins api.ValidRef (the schema layer's local
// copy, kept dependency-free) to dataset.ValidID so the two cannot drift.
func TestValidRefMatchesValidID(t *testing.T) {
	enc, _ := EncodeVolume(1, 1, 2, []float32{1, 2})
	id := ID(enc)
	cases := []string{id, "", "abc", id[:63], id + "0", "G" + id[1:], "ABCDEF" + id[6:]}
	for _, s := range cases {
		if api.ValidRef(s) != ValidID(s) {
			t.Errorf("api.ValidRef(%q) = %v but dataset.ValidID = %v", s, api.ValidRef(s), ValidID(s))
		}
	}
}

func TestPutKeepsDataset(t *testing.T) {
	m := NewLocal()
	info, err := m.PutVolume(1, 2, 2, []float32{1, 2, 3, 4}, "user")
	if err != nil {
		t.Fatal(err)
	}
	// Put-ed (user-facing) datasets are kept: Delete is a no-op.
	m.Delete(info.ID)
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatalf("kept dataset deleted: %v", err)
	}
}

func TestPinDefersDeleteUntilUnpin(t *testing.T) {
	m := NewLocal()
	enc, _ := EncodeVolume(1, 2, 2, []float32{5, 6, 7, 8})
	info, created, err := m.PutNew(enc, "")
	if err != nil || !created {
		t.Fatalf("PutNew: created=%v err=%v", created, err)
	}
	m.Pin(info.ID)
	m.Pin(info.ID)
	m.Delete(info.ID) // deferred: two pins outstanding
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatalf("pinned dataset deleted early: %v", err)
	}
	m.Unpin(info.ID)
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatalf("dataset deleted with one pin left: %v", err)
	}
	m.Unpin(info.ID) // last pin: the deferred delete fires
	if _, err := m.Resolve(info.ID); err == nil {
		t.Fatal("deferred delete never fired")
	}
}

func TestPutRevivesDoomedDataset(t *testing.T) {
	m := NewLocal()
	enc, _ := EncodeVolume(1, 2, 2, []float32{5, 6, 7, 8})
	info, _, err := m.PutNew(enc, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Pin(info.ID)
	m.Delete(info.ID) // deferred
	// The content is wanted again before the pin drops.
	if _, _, err := m.PutNew(enc, ""); err != nil {
		t.Fatal(err)
	}
	m.Unpin(info.ID)
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatalf("revived dataset still deleted: %v", err)
	}
}

func TestKeepCancelsDeferredDelete(t *testing.T) {
	m := NewLocal()
	enc, _ := EncodeVolume(1, 2, 2, []float32{5, 6, 7, 8})
	info, _, err := m.PutNew(enc, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Pin(info.ID)
	m.Delete(info.ID) // deferred by the pin
	m.Keep(info.ID)   // promoted to durable while still pinned
	m.Unpin(info.ID)
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatalf("kept dataset deleted by stale deferred delete: %v", err)
	}
	m.Delete(info.ID) // and direct deletes stay no-ops
	if _, err := m.Resolve(info.ID); err != nil {
		t.Fatalf("kept dataset deleted directly: %v", err)
	}
}

func TestDropWhilePinnedHidesDataset(t *testing.T) {
	m := NewLocal()
	info, err := m.PutVolume(1, 2, 2, []float32{1, 2, 3, 4}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	m.Pin(info.ID) // a running job holds the bytes
	if !m.Drop(info.ID, "alice") {
		t.Fatal("drop failed")
	}
	// The last claim is gone: nobody — alice included — may see the
	// pinned remnant, and it is not listed as anyone's data.
	for _, caller := range []string{"alice", "bob", "anonymous", ""} {
		if m.VisibleTo(info.ID, caller) {
			t.Fatalf("claim-free pinned dataset visible to %q", caller)
		}
	}
	m.Unpin(info.ID) // job done: deferred reclamation fires
	if _, ok := m.Stat(info.ID); ok {
		t.Fatal("dataset survives after last pin of a claim-free id")
	}
}

func TestPutPinnedAtomicWithRelease(t *testing.T) {
	m := NewLocal()
	enc, _ := EncodeVolume(1, 2, 2, []float32{9, 9, 9, 9})
	// Producer A: put + pin atomically.
	infoA, createdA, err := m.PutPinned(enc, "")
	if err != nil || !createdA {
		t.Fatalf("first PutPinned: created=%v err=%v", createdA, err)
	}
	// Producer B content-collides; its pin also lands inside the put.
	infoB, createdB, err := m.PutPinned(enc, "")
	if err != nil || createdB || infoB.ID != infoA.ID {
		t.Fatalf("second PutPinned: %+v created=%v err=%v", infoB, createdB, err)
	}
	// A releases (delete defers on B's pin); B must still resolve it.
	m.Delete(infoA.ID)
	m.Unpin(infoA.ID)
	if _, err := m.Resolve(infoA.ID); err != nil {
		t.Fatalf("blob deleted while a colliding producer still pinned it: %v", err)
	}
	m.Unpin(infoB.ID)
	if _, err := m.Resolve(infoA.ID); err == nil {
		t.Fatal("deferred delete never fired after the last pin")
	}
}

func TestMaskEncodingMustBeCanonical(t *testing.T) {
	enc, err := EncodeMask(1, 1, 3, []float32{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc); err != nil {
		t.Fatalf("canonical mask rejected: %v", err)
	}
	// Stray set bits past bit n would let one logical mask hash to many
	// content addresses; both the decode and the upload-validation path
	// (DecodeHeader) must reject them.
	bad := append([]byte{}, enc...)
	bad[len(bad)-1] |= 0xF8
	if _, err := Decode(bad); err == nil {
		t.Fatal("non-canonical mask decoded")
	}
	if _, _, _, _, err := DecodeHeader(bad); err == nil {
		t.Fatal("non-canonical mask passed header validation")
	}
	m := NewLocal()
	if _, err := m.Put(bad, ""); err == nil {
		t.Fatal("non-canonical mask accepted by the store")
	}
}
