package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock Pending() = %d, want 0", c.Pending())
	}
}

func TestAfterAdvancesTime(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(5*time.Second, func() { fired = true })
	if fired {
		t.Fatal("event fired before Step")
	}
	if !c.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", c.Now())
	}
}

func TestEventsFireInDeadlineOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(3*time.Second, func() { order = append(order, 3) })
	c.After(1*time.Second, func() { order = append(order, 1) })
	c.After(2*time.Second, func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want %d", i, order[i], i)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	fired := false
	tm := c.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	c.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFireReturnsFalse(t *testing.T) {
	c := NewClock()
	tm := c.After(time.Second, func() {})
	c.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	c := NewClock()
	c.RunUntil(10 * time.Second)
	var at time.Duration
	c.After(-5*time.Second, func() { at = c.Now() })
	c.Run()
	if at != 10*time.Second {
		t.Fatalf("event fired at %v, want 10s", at)
	}
}

func TestRunUntilAdvancesEvenWithoutEvents(t *testing.T) {
	c := NewClock()
	c.RunUntil(time.Minute)
	if c.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", c.Now())
	}
}

func TestRunUntilDoesNotRunLaterEvents(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(2*time.Minute, func() { fired = true })
	c.RunUntil(time.Minute)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if c.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", c.Now())
	}
	c.Run()
	if !fired || c.Now() != 2*time.Minute {
		t.Fatalf("after Run: fired=%v Now=%v", fired, c.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	var times []time.Duration
	c.After(time.Second, func() {
		times = append(times, c.Now())
		c.After(time.Second, func() {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	c := NewClock()
	var fires []time.Duration
	tk := c.Every(10*time.Second, func() {
		fires = append(fires, c.Now())
	})
	c.RunUntil(35 * time.Second)
	tk.Stop()
	c.Run()
	if len(fires) != 3 {
		t.Fatalf("got %d fires, want 3: %v", len(fires), fires)
	}
	for i, want := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		if fires[i] != want {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want)
		}
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	c := NewClock()
	n := 0
	var tk *Ticker
	tk = c.Every(time.Second, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.Run()
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestRunWhile(t *testing.T) {
	c := NewClock()
	n := 0
	c.Every(time.Second, func() { n++ })
	ok := c.RunWhile(func() bool { return n < 5 })
	if !ok {
		t.Fatal("RunWhile reported queue drained")
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestRunWhileDrainedQueue(t *testing.T) {
	c := NewClock()
	if c.RunWhile(func() bool { return true }) {
		t.Fatal("RunWhile reported condition met on empty queue")
	}
}

func TestStepsCounter(t *testing.T) {
	c := NewClock()
	for i := 0; i < 7; i++ {
		c.After(time.Duration(i)*time.Second, func() {})
	}
	c.Run()
	if c.Steps() != 7 {
		t.Fatalf("Steps() = %d, want 7", c.Steps())
	}
}

func TestAtClampsPast(t *testing.T) {
	c := NewClock()
	c.RunUntil(time.Hour)
	var at time.Duration
	c.At(time.Minute, func() { at = c.Now() })
	c.Run()
	if at != time.Hour {
		t.Fatalf("past At fired at %v, want 1h", at)
	}
}

func TestPropertyEventOrderMatchesSort(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock()
		var fired []time.Duration
		for _, d := range delays {
			c.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, c.Now())
			})
		}
		c.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds agreed on %d/100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("Intn(10) value %d drawn %d/10000 times, badly non-uniform", v, n)
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(1234)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.03 || mean > 0.03 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	a := child.Uint64()
	b := parent.Uint64()
	if a == b {
		t.Fatal("fork stream equals parent stream")
	}
}
