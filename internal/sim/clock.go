// Package sim provides the discrete-event simulation kernel that the rest of
// the chaseci ecosystem runs on. A Clock holds a priority queue of future
// events in virtual time; components schedule callbacks with After/At and the
// driver advances time with Step/Run/RunFor. Virtual time lets the simulator
// reproduce the paper's multi-hour cluster runs (37-minute downloads,
// 1133-minute inference jobs) in milliseconds of wall time while preserving
// every ordering and contention effect the paper measures.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event virtual clock. The zero value is not usable; use
// NewClock. Clock is not safe for concurrent use: the simulation is
// single-threaded by design so that event ordering is deterministic.
type Clock struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	nsteps uint64
}

// NewClock returns a clock at virtual time zero with no pending events.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time, measured from the simulation epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Steps returns the number of events executed so far. Useful for detecting
// runaway simulations in tests.
func (c *Clock) Steps() uint64 { return c.nsteps }

// Pending returns the number of scheduled events that have not yet fired or
// been stopped.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.events {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event. Stop cancels it if it has not fired.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.fired {
		return false
	}
	t.ev.stopped = true
	return true
}

// After schedules fn to run d from now. A negative d is treated as zero.
// Events scheduled for the same instant fire in scheduling order.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now+d, fn)
}

// At schedules fn to run at absolute virtual time t. Times in the past are
// clamped to now.
func (c *Clock) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < c.now {
		t = c.now
	}
	c.seq++
	ev := &event{at: t, seq: c.seq, fn: fn}
	heap.Push(&c.events, ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (c *Clock) Step() bool {
	for c.events.Len() > 0 {
		ev := heap.Pop(&c.events).(*event)
		if ev.stopped {
			continue
		}
		if ev.at > c.now {
			c.now = ev.at
		}
		ev.fired = true
		c.nsteps++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain. Components that reschedule
// themselves forever (tickers) must be stopped first or Run will not return;
// prefer RunFor/RunUntil in that case.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to t (even if no event fired exactly at t).
func (c *Clock) RunUntil(t time.Duration) {
	for {
		ev := c.peek()
		if ev == nil || ev.at > t {
			break
		}
		c.Step()
	}
	if t > c.now {
		c.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now + d) }

// RunWhile steps the clock while cond returns true and events remain. It
// reports whether cond is false on return (i.e. the condition was met rather
// than the event queue draining).
func (c *Clock) RunWhile(cond func() bool) bool {
	for cond() {
		if !c.Step() {
			return !cond()
		}
	}
	return true
}

func (c *Clock) peek() *event {
	for c.events.Len() > 0 {
		ev := c.events[0]
		if !ev.stopped {
			return ev
		}
		heap.Pop(&c.events)
	}
	return nil
}

// Ticker fires fn every period until stopped. The first firing is one period
// from the moment of creation.
type Ticker struct {
	clock   *Clock
	period  time.Duration
	fn      func()
	timer   *Timer
	stopped bool
}

// Every creates and starts a Ticker. period must be positive.
func (c *Clock) Every(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with non-positive period %v", period))
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.clock.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
