package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64).
// Every stochastic component in the simulator draws from a seeded RNG so that
// experiments reproduce bit-for-bit. The zero value is a valid generator
// seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child generator; the child's stream does not
// overlap the parent's for any practical sequence length.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
