package queue

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreSetGetDel(t *testing.T) {
	s := NewStore()
	s.Set("k", "v")
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if n := s.Del("k"); n != 1 {
		t.Fatalf("Del = %d, want 1", n)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("key survives Del")
	}
	if n := s.Del("k"); n != 0 {
		t.Fatalf("Del missing = %d, want 0", n)
	}
}

func TestStoreFIFOOrder(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.LPush("q", fmt.Sprintf("m%d", i))
	}
	for i := 0; i < 5; i++ {
		v, ok := s.RPop("q")
		if !ok || v != fmt.Sprintf("m%d", i) {
			t.Fatalf("pop %d = %q,%v", i, v, ok)
		}
	}
	if _, ok := s.RPop("q"); ok {
		t.Fatal("pop from empty list succeeded")
	}
}

func TestStoreRPushLPop(t *testing.T) {
	s := NewStore()
	s.RPush("q", "a", "b", "c")
	if v, _ := s.LPop("q"); v != "a" {
		t.Fatalf("LPop = %q, want a", v)
	}
	if n := s.LLen("q"); n != 2 {
		t.Fatalf("LLen = %d, want 2", n)
	}
}

func TestStoreIncr(t *testing.T) {
	s := NewStore()
	if got := s.Incr("n", 5); got != 5 {
		t.Fatalf("Incr = %d, want 5", got)
	}
	if got := s.Incr("n", -2); got != 3 {
		t.Fatalf("Incr = %d, want 3", got)
	}
	if v, _ := s.Get("n"); v != "3" {
		t.Fatalf("Get after Incr = %q, want 3", v)
	}
}

func TestStoreLRange(t *testing.T) {
	s := NewStore()
	s.RPush("l", "a", "b", "c", "d")
	if got := s.LRange("l", 1, 2); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("LRange(1,2) = %v", got)
	}
	if got := s.LRange("l", 0, -1); len(got) != 4 {
		t.Fatalf("LRange(0,-1) = %v", got)
	}
	if got := s.LRange("l", 5, 9); got != nil {
		t.Fatalf("out-of-range LRange = %v, want nil", got)
	}
}

func TestStoreKeys(t *testing.T) {
	s := NewStore()
	s.Set("b", "1")
	s.LPush("a", "x")
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStoreConcurrentPops(t *testing.T) {
	// Many concurrent consumers must drain the queue exactly once per item,
	// the guarantee the paper's 10 download workers rely on.
	s := NewStore()
	const items = 1000
	for i := 0; i < items; i++ {
		s.LPush("q", fmt.Sprintf("file-%d", i))
	}
	var mu sync.Mutex
	got := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := s.RPop("q")
				if !ok {
					return
				}
				mu.Lock()
				got[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != items {
		t.Fatalf("drained %d distinct items, want %d", len(got), items)
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("item %s popped %d times", k, n)
		}
	}
}

func newServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestServerPing(t *testing.T) {
	_, cl := newServer(t)
	v, err := cl.Do("PING")
	if err != nil || v != "PONG" {
		t.Fatalf("PING = %v, %v", v, err)
	}
}

func TestServerSetGet(t *testing.T) {
	_, cl := newServer(t)
	if _, err := cl.Do("SET", "k", "hello"); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Do("GET", "k")
	if err != nil || v != "hello" {
		t.Fatalf("GET = %v, %v", v, err)
	}
	if _, err := cl.Do("GET", "missing"); err != ErrNil {
		t.Fatalf("GET missing err = %v, want ErrNil", err)
	}
}

func TestServerQueueRoundTrip(t *testing.T) {
	_, cl := newServer(t)
	for i := 0; i < 3; i++ {
		if _, err := cl.LPush("urls", fmt.Sprintf("http://thredds/f%d.nc", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := cl.LLen("urls"); n != 3 {
		t.Fatalf("LLEN = %d, want 3", n)
	}
	for i := 0; i < 3; i++ {
		v, err := cl.RPop("urls")
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("http://thredds/f%d.nc", i); v != want {
			t.Fatalf("RPop = %q, want %q", v, want)
		}
	}
	if _, err := cl.RPop("urls"); err != ErrNil {
		t.Fatalf("RPop empty err = %v, want ErrNil", err)
	}
}

func TestServerLRangeArray(t *testing.T) {
	_, cl := newServer(t)
	cl.Do("RPUSH", "l", "a", "b", "c")
	v, err := cl.Do("LRANGE", "l", "0", "-1")
	if err != nil {
		t.Fatal(err)
	}
	arr := v.([]string)
	if len(arr) != 3 || arr[0] != "a" || arr[2] != "c" {
		t.Fatalf("LRANGE = %v", arr)
	}
}

func TestServerIncrBy(t *testing.T) {
	_, cl := newServer(t)
	v, err := cl.Do("INCRBY", "files_done", "7")
	if err != nil || v.(int64) != 7 {
		t.Fatalf("INCRBY = %v, %v", v, err)
	}
}

func TestServerErrors(t *testing.T) {
	_, cl := newServer(t)
	if _, err := cl.Do("NOSUCH"); err == nil {
		t.Fatal("unknown command did not error")
	}
	if _, err := cl.Do("SET", "only-key"); err == nil {
		t.Fatal("arity error not reported")
	}
}

func TestServerMultipleClients(t *testing.T) {
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const items = 200
	seed, _ := Dial(srv.Addr())
	defer seed.Close()
	for i := 0; i < items; i++ {
		if _, err := seed.LPush("q", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for {
				v, err := cl.RPop("q")
				if err == ErrNil {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate delivery %q", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != items {
		t.Fatalf("consumed %d items, want %d", len(seen), items)
	}
}

func TestPropertyListOrderPreserved(t *testing.T) {
	// RPush then LPop replays any sequence in order (per-producer FIFO).
	f := func(vals []uint16) bool {
		s := NewStore()
		for _, v := range vals {
			s.RPush("q", fmt.Sprint(v))
		}
		for _, v := range vals {
			got, ok := s.LPop("q")
			if !ok || got != fmt.Sprint(v) {
				return false
			}
		}
		_, ok := s.LPop("q")
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIncrMatchesSum(t *testing.T) {
	f := func(deltas []int16) bool {
		s := NewStore()
		var want int64
		var got int64
		for _, d := range deltas {
			got = s.Incr("n", int64(d))
			want += int64(d)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
