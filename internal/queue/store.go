// Package queue is the simulated Redis of CHASE-CI's download step: "the
// Redis queue holds a list of files that contain urls to download ... each
// pod pops a message off the queue". The core is Store, a synchronous
// in-memory list/key-value engine that simulation callbacks use directly;
// Server exposes the same store over TCP with a RESP-like line protocol so
// examples and tests can exercise the real network path with the stdlib net
// package.
package queue

import (
	"sort"
	"sync"
)

// Store is an in-memory Redis-like data store: string keys and list keys.
// It is safe for concurrent use (the TCP server serves multiple
// connections); simulation code calls it synchronously.
type Store struct {
	mu    sync.Mutex
	kv    map[string]string
	lists map[string][]string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{kv: make(map[string]string), lists: make(map[string][]string)}
}

// Set stores a string value.
func (s *Store) Set(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kv[key] = value
}

// Get fetches a string value; ok is false for missing keys.
func (s *Store) Get(key string) (value string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	value, ok = s.kv[key]
	return value, ok
}

// Del removes string and list entries for key, reporting how many existed.
func (s *Store) Del(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	if _, ok := s.kv[key]; ok {
		delete(s.kv, key)
		n++
	}
	if _, ok := s.lists[key]; ok {
		delete(s.lists, key)
		n++
	}
	return n
}

// Incr atomically adds delta to an integer-valued key, returning the result.
// A missing key counts from zero.
func (s *Store) Incr(key string, delta int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := parseInt(s.kv[key])
	cur += delta
	s.kv[key] = formatInt(cur)
	return cur
}

func parseInt(v string) int64 {
	var n int64
	neg := false
	for i := 0; i < len(v); i++ {
		c := v[i]
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n
}

func formatInt(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// LPush prepends values to the list at key, returning the new length.
func (s *Store) LPush(key string, values ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[key]
	for _, v := range values {
		l = append([]string{v}, l...)
	}
	s.lists[key] = l
	return len(l)
}

// RPush appends values to the list at key, returning the new length.
func (s *Store) RPush(key string, values ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lists[key] = append(s.lists[key], values...)
	return len(s.lists[key])
}

// RPop removes and returns the last element; ok is false if empty. LPush +
// RPop together give the FIFO the download workers consume.
func (s *Store) RPop(key string) (value string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[key]
	if len(l) == 0 {
		return "", false
	}
	value = l[len(l)-1]
	s.lists[key] = l[:len(l)-1]
	if len(s.lists[key]) == 0 {
		delete(s.lists, key)
	}
	return value, true
}

// LPop removes and returns the first element; ok is false if empty.
func (s *Store) LPop(key string) (value string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[key]
	if len(l) == 0 {
		return "", false
	}
	value = l[0]
	s.lists[key] = l[1:]
	if len(s.lists[key]) == 0 {
		delete(s.lists, key)
	}
	return value, true
}

// LLen returns the list length at key (0 for missing).
func (s *Store) LLen(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lists[key])
}

// LRange returns elements [start, stop] (inclusive, clamped), like Redis.
// Negative indices count from the end.
func (s *Store) LRange(key string, start, stop int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[key]
	n := len(l)
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if n == 0 || start > stop {
		return nil
	}
	out := make([]string, stop-start+1)
	copy(out, l[start:stop+1])
	return out
}

// Keys returns every key (string and list) in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for k := range s.kv {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range s.lists {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
