package queue

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Server exposes a Store over TCP with a line-oriented RESP-like protocol:
//
//	request:  COMMAND [arg ...]\n          (args with spaces are not needed
//	                                        by the workflow's URL-list keys)
//	replies:  +OK\n            simple ok
//	          :<n>\n           integer
//	          $<len>\n<data>\n bulk string
//	          $-1\n            nil
//	          -ERR <msg>\n     error
//
// Supported commands: PING, SET, GET, DEL, INCRBY, LPUSH, RPUSH, LPOP, RPOP,
// LLEN, LRANGE, KEYS.
type Server struct {
	store *Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a server for store on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns once listening.
func Serve(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		// Tolerate interactive clients (telnet, nc -C): CRLF line endings
		// are trimmed and blank keep-alive lines are skipped without a
		// reply. Unknown commands answer -ERR (dispatch) rather than
		// dropping the connection, so a typo costs one error line, not the
		// session.
		parts := strings.Fields(strings.TrimRight(line, "\r\n"))
		if len(parts) == 0 {
			continue
		}
		reply := s.dispatch(parts)
		if _, err := w.WriteString(reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func bulk(v string) string { return fmt.Sprintf("$%d\n%s\n", len(v), v) }

const nilReply = "$-1\n"

func (s *Server) dispatch(parts []string) string {
	if len(parts) == 0 {
		return "-ERR empty command\n"
	}
	cmd := strings.ToUpper(parts[0])
	args := parts[1:]
	switch cmd {
	case "PING":
		return "+PONG\n"
	case "SET":
		if len(args) != 2 {
			return "-ERR SET needs key value\n"
		}
		s.store.Set(args[0], args[1])
		return "+OK\n"
	case "GET":
		if len(args) != 1 {
			return "-ERR GET needs key\n"
		}
		v, ok := s.store.Get(args[0])
		if !ok {
			return nilReply
		}
		return bulk(v)
	case "DEL":
		if len(args) != 1 {
			return "-ERR DEL needs key\n"
		}
		return fmt.Sprintf(":%d\n", s.store.Del(args[0]))
	case "INCRBY":
		if len(args) != 2 {
			return "-ERR INCRBY needs key delta\n"
		}
		d, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "-ERR bad integer\n"
		}
		return fmt.Sprintf(":%d\n", s.store.Incr(args[0], d))
	case "LPUSH", "RPUSH":
		if len(args) < 2 {
			return "-ERR " + cmd + " needs key value...\n"
		}
		var n int
		if cmd == "LPUSH" {
			n = s.store.LPush(args[0], args[1:]...)
		} else {
			n = s.store.RPush(args[0], args[1:]...)
		}
		return fmt.Sprintf(":%d\n", n)
	case "LPOP", "RPOP":
		if len(args) != 1 {
			return "-ERR " + cmd + " needs key\n"
		}
		var v string
		var ok bool
		if cmd == "LPOP" {
			v, ok = s.store.LPop(args[0])
		} else {
			v, ok = s.store.RPop(args[0])
		}
		if !ok {
			return nilReply
		}
		return bulk(v)
	case "LLEN":
		if len(args) != 1 {
			return "-ERR LLEN needs key\n"
		}
		return fmt.Sprintf(":%d\n", s.store.LLen(args[0]))
	case "LRANGE":
		if len(args) != 3 {
			return "-ERR LRANGE needs key start stop\n"
		}
		start, err1 := strconv.Atoi(args[1])
		stop, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return "-ERR bad index\n"
		}
		items := s.store.LRange(args[0], start, stop)
		var b strings.Builder
		fmt.Fprintf(&b, "*%d\n", len(items))
		for _, it := range items {
			b.WriteString(bulk(it))
		}
		return b.String()
	case "KEYS":
		keys := s.store.Keys()
		var b strings.Builder
		fmt.Fprintf(&b, "*%d\n", len(keys))
		for _, k := range keys {
			b.WriteString(bulk(k))
		}
		return b.String()
	default:
		return fmt.Sprintf("-ERR unknown command %q\n", cmd)
	}
}

// Client is a minimal synchronous client for Server's protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ErrNil is returned for nil replies (missing key / empty list).
var ErrNil = errors.New("queue: nil reply")

// Do sends a command and decodes one reply. Integer replies return int64,
// bulk strings return string, arrays return []string, +OK/+PONG return
// their text.
func (c *Client) Do(parts ...string) (any, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", strings.Join(parts, " ")); err != nil {
		return nil, err
	}
	return c.readReply()
}

func (c *Client) readReply() (any, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	line = strings.TrimSuffix(line, "\n")
	if line == "" {
		return nil, errors.New("queue: empty reply")
	}
	switch line[0] {
	case '+':
		return line[1:], nil
	case '-':
		return nil, errors.New(strings.TrimPrefix(line[1:], "ERR "))
	case ':':
		return strconv.ParseInt(line[1:], 10, 64)
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, ErrNil
		}
		buf := make([]byte, n+1) // payload + newline
		if _, err := readFull(c.r, buf); err != nil {
			return nil, err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return nil, err
		}
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			v, err := c.readReply()
			if err != nil {
				return nil, err
			}
			s, ok := v.(string)
			if !ok {
				return nil, errors.New("queue: non-string array element")
			}
			out = append(out, s)
		}
		return out, nil
	}
	return nil, fmt.Errorf("queue: bad reply %q", line)
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Convenience wrappers used by examples.

// RPop pops the tail of a list; ErrNil when empty.
func (c *Client) RPop(key string) (string, error) {
	v, err := c.Do("RPOP", key)
	if err != nil {
		return "", err
	}
	return v.(string), nil
}

// LPush pushes a value, returning the new length.
func (c *Client) LPush(key, value string) (int64, error) {
	v, err := c.Do("LPUSH", key, value)
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// LLen returns the list length.
func (c *Client) LLen(key string) (int64, error) {
	v, err := c.Do("LLEN", key)
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}
