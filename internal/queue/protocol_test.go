package queue

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// protoConn wraps a raw connection to the line-protocol server for
// edge-case tests that the cooked Client cannot express.
type protoConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialProto(t *testing.T) (*Server, *protoConn) {
	t.Helper()
	srv, err := Serve(NewStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, &protoConn{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (p *protoConn) send(raw string) {
	p.t.Helper()
	if _, err := p.conn.Write([]byte(raw)); err != nil {
		p.t.Fatalf("write %q: %v", raw, err)
	}
}

func (p *protoConn) expect(want string) {
	p.t.Helper()
	p.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := p.r.ReadString('\n')
	if err != nil {
		p.t.Fatalf("read (want %q): %v", want, err)
	}
	if line != want {
		p.t.Fatalf("reply = %q, want %q", line, want)
	}
}

// TestProtocolTrailingCR: telnet-style CRLF commands parse cleanly, with no
// stray \r glued onto the last argument.
func TestProtocolTrailingCR(t *testing.T) {
	_, c := dialProto(t)
	c.send("PING\r\n")
	c.expect("+PONG\n")
	c.send("SET greeting hello\r\n")
	c.expect("+OK\n")
	// A value stored via CRLF must read back without the \r.
	c.send("GET greeting\r\n")
	c.expect("$5\n")
	c.expect("hello\n")
}

// TestProtocolBlankLinesSkipped: empty and whitespace-only lines (telnet
// keep-alives, sloppy scripts) produce no reply instead of an error, and
// the next real command still works.
func TestProtocolBlankLinesSkipped(t *testing.T) {
	_, c := dialProto(t)
	c.send("\n")
	c.send("\r\n")
	c.send("   \n")
	// If any blank line had produced a reply, this PING would read it
	// instead of +PONG and fail.
	c.send("PING\n")
	c.expect("+PONG\n")
}

// TestProtocolUnknownCommandKeepsConnection: a bogus command answers -ERR
// and the session continues.
func TestProtocolUnknownCommandKeepsConnection(t *testing.T) {
	_, c := dialProto(t)
	c.send("FLUSHALL\n")
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(line, "-ERR unknown command") {
		t.Fatalf("reply = %q, want -ERR unknown command ...", line)
	}
	c.send("LPUSH q a\n")
	c.expect(":1\n")
	c.send("RPOP q\n")
	c.expect("$1\n")
	c.expect("a\n")
}

// TestProtocolArityErrorsKeepConnection: wrong-arity commands answer -ERR
// without dropping the session.
func TestProtocolArityErrorsKeepConnection(t *testing.T) {
	_, c := dialProto(t)
	c.send("SET onlykey\n")
	c.expect("-ERR SET needs key value\n")
	c.send("LRANGE q 0\n")
	c.expect("-ERR LRANGE needs key start stop\n")
	c.send("INCRBY n notanumber\n")
	c.expect("-ERR bad integer\n")
	c.send("PING\n")
	c.expect("+PONG\n")
}

// TestProtocolLowercaseCommands: command words are case-insensitive.
func TestProtocolLowercaseCommands(t *testing.T) {
	_, c := dialProto(t)
	c.send("ping\r\n")
	c.expect("+PONG\n")
	c.send("set k v\n")
	c.expect("+OK\n")
	c.send("get k\n")
	c.expect("$1\n")
	c.expect("v\n")
}
