// Package gpusim is the hardware-timing substrate: it converts work sizes
// (voxels processed by FFN training, inference, or data preparation) into
// virtual-time durations for the NVIDIA 1080ti-class game GPUs CHASE-CI
// deploys. The throughput constants are calibrated so the paper's three
// measured step durations land exactly at full scale:
//
//	step 1 prep+train volume: 576 x 361 x 240 = 49.9M voxels
//	step 2: 306 min total on one 1080ti (Fig 5: prep then training)
//	step 3: 2.3e10 voxels over 50 GPUs in 1133 min (Fig 6 / Table I)
//
// The real FFN in internal/ffn measures pure-Go voxels/sec at laptop scale;
// EXPERIMENTS.md records the ratio between that and these constants as the
// modeled GPU speedup.
package gpusim

import (
	"fmt"
	"time"
)

// Model holds throughput constants for one accelerator class, in voxels per
// second of virtual time.
type Model struct {
	Name string
	// TrainVoxelsPerSec covers the FFN optimization pass over a labelled
	// volume (many FOV steps per voxel amortized in).
	TrainVoxelsPerSec float64
	// InferVoxelsPerSec covers flood-fill inference.
	InferVoxelsPerSec float64
	// PrepVoxelsPerSec covers CPU-side data preparation (NetCDF -> protobuf
	// conversion feeding TensorFlow); attributed to the pod's CPUs, not the
	// GPU, but expressed in the same voxel currency.
	PrepVoxelsPerSec float64
}

// trainVolumeVoxels is the paper's training volume (576x361x240).
const trainVolumeVoxels = 576 * 361 * 240

// inferVoxelsTotal is the paper's full inference workload (2.3e10 voxels).
const inferVoxelsTotal = 2.3e10

// GTX1080Ti returns the calibrated 1080ti model. Step 2's 306 minutes are
// split ~56 min of data preparation and ~250 min of training, matching the
// Fig 5 shape (a shorter purple prep phase preceding the green training
// phase).
func GTX1080Ti() Model {
	prepSeconds := 56.0 * 60
	trainSeconds := 250.0 * 60
	inferSecondsPerGPU := 1133.0 * 60 // each of the 50 GPUs works this long
	return Model{
		Name:              "NVIDIA GTX 1080 Ti",
		TrainVoxelsPerSec: trainVolumeVoxels / trainSeconds,
		InferVoxelsPerSec: inferVoxelsTotal / 50 / inferSecondsPerGPU,
		PrepVoxelsPerSec:  trainVolumeVoxels / prepSeconds,
	}
}

// SingleCPU returns the MATLAB-era baseline platform from the CONNECT
// prior work ("a single CPU, limited memory"): roughly 40x slower than a
// 1080ti at segmentation-class work, the class of gap the paper's
// motivation cites for moving to the GPU cluster.
func SingleCPU() Model {
	g := GTX1080Ti()
	return Model{
		Name:              "single CPU (MATLAB-era baseline)",
		TrainVoxelsPerSec: g.TrainVoxelsPerSec / 40,
		InferVoxelsPerSec: g.InferVoxelsPerSec / 40,
		PrepVoxelsPerSec:  g.PrepVoxelsPerSec, // prep is CPU-bound either way
	}
}

func secsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// TrainTime returns the virtual duration to train on a volume.
func (m Model) TrainTime(voxels float64) time.Duration {
	return secsToDuration(voxels / m.TrainVoxelsPerSec)
}

// InferTime returns the virtual duration for one device to infer voxels.
func (m Model) InferTime(voxels float64) time.Duration {
	return secsToDuration(voxels / m.InferVoxelsPerSec)
}

// PrepTime returns the virtual duration of data preparation.
func (m Model) PrepTime(voxels float64) time.Duration {
	return secsToDuration(voxels / m.PrepVoxelsPerSec)
}

// ShardedInferTime returns the wall time for `gpus` devices to split voxels
// evenly — the paper's step 3 pattern ("the entire 246GB ... is evenly
// distributed across the 50 GPUs"). The slowest shard (ceiling division)
// sets the completion time.
func (m Model) ShardedInferTime(voxels float64, gpus int) time.Duration {
	if gpus <= 0 {
		panic(fmt.Sprintf("gpusim: ShardedInferTime with %d gpus", gpus))
	}
	shard := voxels / float64(gpus)
	return m.InferTime(shard)
}

// DistTrainConfig parameterizes the Section III-E2 extension: TensorFlow
// data-parallel distributed training over a Kubernetes ReplicaSet.
type DistTrainConfig struct {
	// ParamBytes is the model size exchanged per synchronization.
	ParamBytes float64
	// SyncsPerVolume is how many gradient synchronizations happen while a
	// full training volume streams through.
	SyncsPerVolume float64
	// InterconnectBytesPerSec is the pod-to-pod bandwidth (PRP WAN or
	// intra-site).
	InterconnectBytesPerSec float64
}

// DefaultDistTrain mirrors the experiment setup: an FFN-sized model
// (~10 MB of float32 parameters), one sync per training batch (~2000 per
// volume), 10 Gbps pod interconnect.
func DefaultDistTrain() DistTrainConfig {
	return DistTrainConfig{
		ParamBytes:              10e6,
		SyncsPerVolume:          2000,
		InterconnectBytesPerSec: 10e9 / 8,
	}
}

// DistTrainTime models data-parallel training time on `gpus` workers: the
// compute shrinks as 1/gpus while every sync pays a ring all-reduce cost of
// 2*(g-1)/g * ParamBytes over the interconnect. With one GPU there is no
// communication. The resulting curve has the classic diminishing-returns
// shape the paper's future-work section anticipates measuring.
func (m Model) DistTrainTime(voxels float64, gpus int, cfg DistTrainConfig) time.Duration {
	if gpus <= 0 {
		panic(fmt.Sprintf("gpusim: DistTrainTime with %d gpus", gpus))
	}
	compute := voxels / m.TrainVoxelsPerSec / float64(gpus)
	comm := 0.0
	if gpus > 1 {
		perSync := 2 * float64(gpus-1) / float64(gpus) * cfg.ParamBytes / cfg.InterconnectBytesPerSec
		comm = perSync * cfg.SyncsPerVolume
	}
	return secsToDuration(compute + comm)
}

// Speedup returns t1/tg as a convenience for scaling tables.
func Speedup(t1, tg time.Duration) float64 {
	if tg <= 0 {
		return 0
	}
	return float64(t1) / float64(tg)
}

// PaperWorkload bundles the full-scale workload constants for reuse by the
// bench harness.
type PaperWorkload struct {
	TrainVoxels float64
	InferVoxels float64
	InferGPUs   int
}

// Paper returns the case study's workload sizes.
func Paper() PaperWorkload {
	return PaperWorkload{
		TrainVoxels: trainVolumeVoxels,
		InferVoxels: inferVoxelsTotal,
		InferGPUs:   50,
	}
}
