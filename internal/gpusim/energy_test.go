package gpusim

import (
	"math"
	"testing"
	"time"
)

func TestEnergyBasicAccounting(t *testing.T) {
	m := Powered1080Ti()
	// 50 boards for one hour at 250 W = 12.5 kWh.
	j := m.EnergyJoules(time.Hour, 50)
	if got := KWh(j); got < 12.49 || got > 12.51 {
		t.Fatalf("energy = %v kWh, want 12.5", got)
	}
}

func TestInferEnergyIndependentOfDeviceCount(t *testing.T) {
	// Perfect sharding: halving the time by doubling boards keeps energy
	// constant.
	m := Powered1080Ti()
	w := Paper()
	e50 := m.InferEnergyJoules(w.InferVoxels, 50)
	e100 := m.InferEnergyJoules(w.InferVoxels, 100)
	if diff := (e50 - e100) / e50; diff > 0.001 || diff < -0.001 {
		t.Fatalf("energy changed with device count: %v vs %v", e50, e100)
	}
}

func TestNvNMoreEfficientThanGPU(t *testing.T) {
	gpu, nvn := Powered1080Ti(), NvN()
	if nvn.JoulesPerVoxel() >= gpu.JoulesPerVoxel() {
		t.Fatalf("NvN %v J/voxel not better than GPU %v", nvn.JoulesPerVoxel(), gpu.JoulesPerVoxel())
	}
	// But slower wall-clock at equal device count.
	w := Paper()
	if nvn.ShardedInferTime(w.InferVoxels, 50) <= gpu.ShardedInferTime(w.InferVoxels, 50) {
		t.Fatal("NvN should trade speed for efficiency")
	}
}

func TestNvNCannotTrain(t *testing.T) {
	if NvN().TrainVoxelsPerSec != 0 {
		t.Fatal("NvN modeled as training-capable")
	}
	if NvN().InferEnergyJoules(1e9, 10) <= 0 {
		t.Fatal("NvN inference energy should be positive")
	}
	zero := PoweredModel{}
	if zero.InferEnergyJoules(1e9, 10) != 0 {
		t.Fatal("zero model should report zero energy")
	}
}

func TestStep3EnergyComparison(t *testing.T) {
	// The headline comparison: full step-3 workload on three platforms.
	w := Paper()
	gpu := Powered1080Ti().InferEnergyJoules(w.InferVoxels, 50)
	cpu := PoweredCPU().InferEnergyJoules(w.InferVoxels, 1)
	nvn := NvN().InferEnergyJoules(w.InferVoxels, 50)
	if !(nvn < gpu) {
		t.Fatalf("energy ordering wrong: nvn=%v gpu=%v", KWh(nvn), KWh(gpu))
	}
	// The single CPU is slower AND burns more total energy than the GPU
	// fleet for this workload (40x slower at ~1/3 the per-board power).
	if !(cpu > gpu) {
		t.Fatalf("CPU total energy %v kWh should exceed GPU fleet %v kWh", KWh(cpu), KWh(gpu))
	}
}

func TestTrainEnergyJoules(t *testing.T) {
	m := Powered1080Ti()
	voxels := 64.0 * 64 * 64
	one := m.TrainEnergyJoules(voxels, 1)
	if want := m.Watts * voxels / m.TrainVoxelsPerSec; math.Abs(one-want) > want*1e-9 {
		t.Fatalf("1-device train energy = %g J, want %g J", one, want)
	}
	// Data-parallel training over n devices draws n boards for 1/n the time:
	// total joules are invariant in this model.
	if four := m.TrainEnergyJoules(voxels, 4); math.Abs(four-one) > one*1e-9 {
		t.Fatalf("4-device train energy = %g J, want %g J", four, one)
	}
	if got := NvN().TrainEnergyJoules(voxels, 1); got != 0 {
		t.Fatalf("inference-only silicon train energy = %g, want 0", got)
	}
	if got := m.TrainEnergyJoules(voxels, 0); got != 0 {
		t.Fatalf("0-device train energy = %g, want 0", got)
	}
}
