package gpusim

import (
	"testing"
	"time"
)

func within(got, want, tolFrac time.Duration) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= tolFrac
}

func TestCalibrationReproducesStep2(t *testing.T) {
	m := GTX1080Ti()
	w := Paper()
	total := m.PrepTime(w.TrainVoxels) + m.TrainTime(w.TrainVoxels)
	want := 306 * time.Minute
	if !within(total, want, time.Minute) {
		t.Fatalf("step 2 time = %v, want ~%v", total, want)
	}
}

func TestCalibrationReproducesStep3(t *testing.T) {
	m := GTX1080Ti()
	w := Paper()
	got := m.ShardedInferTime(w.InferVoxels, w.InferGPUs)
	want := 1133 * time.Minute
	if !within(got, want, time.Minute) {
		t.Fatalf("step 3 time = %v, want ~%v", got, want)
	}
}

func TestInferenceScalesInversely(t *testing.T) {
	m := GTX1080Ti()
	w := Paper()
	t50 := m.ShardedInferTime(w.InferVoxels, 50)
	t100 := m.ShardedInferTime(w.InferVoxels, 100)
	t25 := m.ShardedInferTime(w.InferVoxels, 25)
	if s := Speedup(t25, t50); s < 1.9 || s > 2.1 {
		t.Fatalf("25->50 GPU speedup = %v, want ~2", s)
	}
	if s := Speedup(t50, t100); s < 1.9 || s > 2.1 {
		t.Fatalf("50->100 GPU speedup = %v, want ~2", s)
	}
}

func TestSingleCPUBaselineSlower(t *testing.T) {
	gpu, cpu := GTX1080Ti(), SingleCPU()
	w := Paper()
	ratio := float64(cpu.InferTime(w.InferVoxels)) / float64(gpu.InferTime(w.InferVoxels))
	if ratio < 30 || ratio > 50 {
		t.Fatalf("CPU/GPU inference ratio = %v, want ~40", ratio)
	}
}

func TestShardedInferPanicsOnZeroGPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero GPUs")
		}
	}()
	GTX1080Ti().ShardedInferTime(1e9, 0)
}

func TestDistTrainNoCommOnSingleGPU(t *testing.T) {
	m := GTX1080Ti()
	cfg := DefaultDistTrain()
	if m.DistTrainTime(1e6, 1, cfg) != m.TrainTime(1e6) {
		t.Fatal("single-GPU distributed training should equal serial training")
	}
}

func TestDistTrainDiminishingReturns(t *testing.T) {
	m := GTX1080Ti()
	cfg := DefaultDistTrain()
	w := Paper()
	t1 := m.DistTrainTime(w.TrainVoxels, 1, cfg)
	t2 := m.DistTrainTime(w.TrainVoxels, 2, cfg)
	t8 := m.DistTrainTime(w.TrainVoxels, 8, cfg)
	t64 := m.DistTrainTime(w.TrainVoxels, 64, cfg)
	if t2 >= t1 {
		t.Fatalf("2 GPUs (%v) not faster than 1 (%v)", t2, t1)
	}
	s8 := Speedup(t1, t8)
	s64 := Speedup(t1, t64)
	if s8 <= 1 {
		t.Fatalf("8-GPU speedup = %v, want > 1", s8)
	}
	// Efficiency must degrade: speedup-per-GPU at 64 below that at 8.
	if s64/64 >= s8/8 {
		t.Fatalf("no diminishing returns: eff(64)=%v >= eff(8)=%v", s64/64, s8/8)
	}
}

func TestDistTrainCommBoundAtScale(t *testing.T) {
	// With a slow interconnect, large worker counts must be slower than
	// moderate ones (communication dominates).
	m := GTX1080Ti()
	cfg := DefaultDistTrain()
	cfg.InterconnectBytesPerSec = 1e6 // pathological 8 Mbps
	w := Paper()
	t4 := m.DistTrainTime(w.TrainVoxels, 4, cfg)
	t128 := m.DistTrainTime(w.TrainVoxels, 128, cfg)
	if t128 <= t4 {
		t.Fatalf("comm-bound regime missing: t128=%v <= t4=%v", t128, t4)
	}
}

func TestSpeedupZeroDenominator(t *testing.T) {
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("Speedup with zero denominator should be 0")
	}
}

func TestPrepFasterThanTraining(t *testing.T) {
	m := GTX1080Ti()
	w := Paper()
	if m.PrepTime(w.TrainVoxels) >= m.TrainTime(w.TrainVoxels) {
		t.Fatal("Fig 5 shape violated: prep should be shorter than training")
	}
}
