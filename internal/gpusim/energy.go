package gpusim

import "time"

// Energy accounting for the NSF requirement the paper opens with:
// "exploitation of new-generation energy efficient NvN [non-von Neumann]
// processors". Each device model carries a board power; workloads can then
// be compared in joules as well as hours, and the NvN model quantifies the
// efficiency argument for the inference-heavy step 3.

// Power draws in watts for the modeled device classes under load.
const (
	Watts1080Ti = 250.0
	WattsCPU    = 85.0
	WattsNvN    = 30.0
)

// PoweredModel pairs a throughput model with its board power.
type PoweredModel struct {
	Model
	Watts float64
}

// Powered1080Ti returns the calibrated 1080ti with its 250 W board power.
func Powered1080Ti() PoweredModel {
	return PoweredModel{Model: GTX1080Ti(), Watts: Watts1080Ti}
}

// PoweredCPU returns the MATLAB-era single CPU at 85 W.
func PoweredCPU() PoweredModel {
	return PoweredModel{Model: SingleCPU(), Watts: WattsCPU}
}

// NvN returns a non-von-Neumann inference accelerator: event-driven
// hardware runs the FFN's sparse flood-fill at about half a 1080ti's
// throughput but at an eighth of the power, and it does not train (gradient
// computation is off-chip). The numbers model the neuromorphic-class parts
// CHASE-CI planned to host; the qualitative claim under test is
// joules-per-voxel, not absolute speed.
func NvN() PoweredModel {
	g := GTX1080Ti()
	return PoweredModel{
		Model: Model{
			Name:              "NvN inference accelerator",
			TrainVoxelsPerSec: 0, // inference-only silicon
			InferVoxelsPerSec: g.InferVoxelsPerSec / 2,
			PrepVoxelsPerSec:  g.PrepVoxelsPerSec,
		},
		Watts: WattsNvN,
	}
}

// EnergyJoules returns the energy for `devices` boards running for d.
func (m PoweredModel) EnergyJoules(d time.Duration, devices int) float64 {
	return m.Watts * float64(devices) * d.Seconds()
}

// InferEnergyJoules returns the total board energy to infer `voxels` sharded
// evenly over `devices` boards.
func (m PoweredModel) InferEnergyJoules(voxels float64, devices int) float64 {
	if m.InferVoxelsPerSec <= 0 {
		return 0
	}
	d := m.ShardedInferTime(voxels, devices)
	return m.EnergyJoules(d, devices)
}

// TrainEnergyJoules returns the total board energy to train on `voxels`
// data-parallel over `devices` boards (each board sees voxels/devices but
// all boards draw power for the slowest shard's duration). Zero for
// inference-only silicon.
func (m PoweredModel) TrainEnergyJoules(voxels float64, devices int) float64 {
	if m.TrainVoxelsPerSec <= 0 || devices <= 0 {
		return 0
	}
	d := m.TrainTime(voxels / float64(devices))
	return m.EnergyJoules(d, devices)
}

// KWh converts joules to kilowatt-hours.
func KWh(joules float64) float64 { return joules / 3.6e6 }

// JoulesPerVoxel is the efficiency figure of merit for inference silicon.
func (m PoweredModel) JoulesPerVoxel() float64 {
	if m.InferVoxelsPerSec <= 0 {
		return 0
	}
	return m.Watts / m.InferVoxelsPerSec
}
