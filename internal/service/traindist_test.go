package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"chaseci/internal/api"
	"chaseci/internal/dataset"
	"chaseci/internal/queue"
)

// distRequest builds a small but real train_dist job over a seeded synthetic
// IVT volume — every test that wants comparable loss curves must use the
// same source seed and training seeds.
func distRequest(workers, rounds int) *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindTrainDist,
		Name: "dist",
		TrainDist: &api.TrainDistSpec{
			Source:        api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:     130,
			Workers:       workers,
			Rounds:        rounds,
			BatchPerRound: 8,
			Net:           &api.NetConfig{FOV: [3]int{3, 7, 7}, Features: 4, MoveStep: [3]int{1, 2, 2}},
			NetSeed:       7,
			SampleSeed:    7,
		},
	}
}

func distResult(t *testing.T, f *gwFixture, req *api.JobRequest) api.TrainDistResult {
	t.Helper()
	st, env := f.submitAndWait(req)
	if st.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	var res api.TrainDistResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGatewayTrainDistWorkerInvariance is the acceptance check for the
// tentpole: end to end through the HTTP gateway, the loss sequence is
// bit-identical at 1, 2, and 4 workers, and only the modeled all-reduce
// traffic changes.
func TestGatewayTrainDistWorkerInvariance(t *testing.T) {
	f := newGWFixture(t, true)
	base := distResult(t, f, distRequest(1, 8))
	if len(base.Losses) != 8 || base.Workers != 1 || base.Rounds != 8 {
		t.Fatalf("baseline result = %+v", base)
	}
	if base.CommBytes != 0 {
		t.Fatalf("single worker modeled %v comm bytes, want 0", base.CommBytes)
	}
	for _, w := range []int{2, 4} {
		res := distResult(t, f, distRequest(w, 8))
		if len(res.Losses) != len(base.Losses) {
			t.Fatalf("workers=%d: %d losses, want %d", w, len(res.Losses), len(base.Losses))
		}
		for r := range res.Losses {
			if res.Losses[r] != base.Losses[r] {
				t.Fatalf("workers=%d round %d: loss %v != single-worker %v", w, r, res.Losses[r], base.Losses[r])
			}
		}
		want := float64(8*2*(w-1)) * res.GradBytes
		if res.CommBytes != want {
			t.Fatalf("workers=%d: comm bytes %v, want %v", w, res.CommBytes, want)
		}
		// Identical final state -> identical content-addressed checkpoint.
		if res.CheckpointRef != base.CheckpointRef {
			t.Fatalf("workers=%d checkpoint %s != baseline %s", w, res.CheckpointRef, base.CheckpointRef)
		}
	}
	blob, err := f.runner.Datasets().Resolve(base.CheckpointRef)
	if err != nil {
		t.Fatalf("final checkpoint unresolvable: %v", err)
	}
	if blob.Kind != dataset.KindCheckpoint {
		t.Fatalf("checkpoint ref resolves to a %s dataset", blob.Kind)
	}
	if err := f.runner.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayTrainDistElastic: an elastic schedule that grows and shrinks
// the worker pool mid-run leaves the losses untouched.
func TestGatewayTrainDistElastic(t *testing.T) {
	f := newGWFixture(t, true)
	base := distResult(t, f, distRequest(2, 9))

	req := distRequest(1, 9)
	req.TrainDist.Elastic = []api.ElasticStep{{Round: 3, Workers: 4}, {Round: 6, Workers: 2}}
	res := distResult(t, f, req)
	if res.Workers != 2 {
		t.Fatalf("final width = %d, want 2 after the last elastic step", res.Workers)
	}
	for r := range res.Losses {
		if res.Losses[r] != base.Losses[r] {
			t.Fatalf("elastic round %d: loss %v != steady %v", r, res.Losses[r], base.Losses[r])
		}
	}
}

// TestGatewayTrainDistCheckpointResume drives the full recovery story over
// HTTP: run with periodic checkpoints, then start a second job from the
// round-6 checkpoint and require the continued curve — and even the final
// checkpoint ref — to match the undisturbed run bit for bit.
func TestGatewayTrainDistCheckpointResume(t *testing.T) {
	f := newGWFixture(t, true)
	req := distRequest(2, 10)
	req.TrainDist.CheckpointEvery = 3
	full := distResult(t, f, req)
	if len(full.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %+v, want rounds 3, 6, 9", full.Checkpoints)
	}
	for i, want := range []int{3, 6, 9} {
		if full.Checkpoints[i].Round != want || full.Checkpoints[i].Ref == "" {
			t.Fatalf("checkpoint[%d] = %+v, want round %d", i, full.Checkpoints[i], want)
		}
	}

	resume := &api.JobRequest{
		Kind: api.KindTrainDist,
		Name: "dist-resume",
		TrainDist: &api.TrainDistSpec{
			Source:     api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:  130,
			Workers:    4,
			Rounds:     10,
			ResumeFrom: full.Checkpoints[1].Ref,
		},
	}
	res := distResult(t, f, resume)
	if res.StartRound != 6 || res.ResumedFrom != full.Checkpoints[1].Ref {
		t.Fatalf("resume started at %d from %q", res.StartRound, res.ResumedFrom)
	}
	if len(res.Losses) != len(full.Losses) {
		t.Fatalf("resumed history has %d losses, want %d", len(res.Losses), len(full.Losses))
	}
	for r := range res.Losses {
		if res.Losses[r] != full.Losses[r] {
			t.Fatalf("resumed round %d: loss %v != undisturbed %v", r, res.Losses[r], full.Losses[r])
		}
	}
	if res.CheckpointRef != full.CheckpointRef {
		t.Fatalf("resumed final checkpoint %s != undisturbed %s", res.CheckpointRef, full.CheckpointRef)
	}
	if err := f.runner.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayTrainDistResumeRejections: a dangling resume ref dies at
// submit with a 400, and a ref of the wrong dataset kind fails the job.
func TestGatewayTrainDistResumeRejections(t *testing.T) {
	f := newGWFixture(t, true)
	req := &api.JobRequest{
		Kind: api.KindTrainDist,
		TrainDist: &api.TrainDistSpec{
			Source:     api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:  130,
			Workers:    1,
			Rounds:     2,
			ResumeFrom: strings.Repeat("ab", 32),
		},
	}
	var apiErr api.ErrorResponse
	resp := f.do("POST", "/v1/jobs", req, &apiErr)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr.Error, "dataset store") {
		t.Fatalf("dangling resume ref: status %d, err %q", resp.StatusCode, apiErr.Error)
	}

	// A real ref of the wrong kind: a segment mask.
	seg := tinySegmentRequest()
	seg.ResultMode = api.ResultModeRef
	seg.Segment.ReturnMask = true
	st, env := f.submitAndWait(seg)
	if st.State != api.StateSucceeded {
		t.Fatalf("segment: %s (%s)", st.State, st.Error)
	}
	var segRes api.SegmentResult
	if err := json.Unmarshal(env.Result, &segRes); err != nil {
		t.Fatal(err)
	}
	if segRes.MaskRef == "" {
		t.Fatal("segment in ref mode returned no mask ref")
	}
	req.TrainDist.ResumeFrom = segRes.MaskRef
	var sub api.SubmitResponse
	if resp := f.do("POST", "/v1/jobs", req, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("wrong-kind resume submit: status %d", resp.StatusCode)
	}
	var stat api.JobStatus
	for !stat.State.Terminal() {
		f.do("GET", "/v1/jobs/"+sub.ID, nil, &stat)
	}
	if stat.State != api.StateFailed || !strings.Contains(stat.Error, "want checkpoint") {
		t.Fatalf("wrong-kind resume: %s (%s)", stat.State, stat.Error)
	}
}

// TestGatewaySweepLeaderboard runs a 4-candidate sweep through the gateway
// and checks leaderboard shape, ordering, and early-stop accounting.
func TestGatewaySweepLeaderboard(t *testing.T) {
	f := newGWFixture(t, true)
	req := &api.JobRequest{
		Kind: api.KindSweep,
		Name: "hp",
		Sweep: &api.SweepSpec{
			Source:        api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:     130,
			TrainFraction: 0.67,
			LRs:           []float32{0.01, 0.03},
			Momentums:     []float32{0.9},
			Features:      []int{4, 6},
			TrainSteps:    []int{40},
			Seed:          5,
		},
	}
	st, env := f.submitAndWait(req)
	if st.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	var res api.SweepResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 4 || len(res.Leaderboard) != 4 {
		t.Fatalf("candidates = %d, leaderboard = %d, want 4/4", res.Candidates, len(res.Leaderboard))
	}
	if res.EarlyStopped != 0 {
		t.Fatalf("early stopped %d candidates without early_stop", res.EarlyStopped)
	}
	for i, e := range res.Leaderboard {
		if e.JobID == "" || e.Params.TrainSteps != 40 {
			t.Fatalf("leaderboard[%d] = %+v", i, e)
		}
		if i > 0 && e.Better(res.Leaderboard[i-1]) {
			t.Fatalf("leaderboard out of order at %d", i)
		}
	}
	if res.Best != res.Leaderboard[0] {
		t.Fatalf("best %+v != leaderboard head %+v", res.Best, res.Leaderboard[0])
	}
	if err := f.runner.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepEarlyStopHalvesBudgets: with early_stop, losers keep their
// half-budget rung metrics and only survivors post full-budget entries.
func TestSweepEarlyStopHalvesBudgets(t *testing.T) {
	f := newGWFixture(t, true)
	req := &api.JobRequest{
		Kind: api.KindSweep,
		Sweep: &api.SweepSpec{
			Source:        api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:     130,
			TrainFraction: 0.67,
			LRs:           []float32{0.001, 0.01, 0.03, 0.05},
			Momentums:     []float32{0.9},
			Features:      []int{4},
			TrainSteps:    []int{40},
			EarlyStop:     true,
			Seed:          5,
		},
	}
	st, env := f.submitAndWait(req)
	if st.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	var res api.SweepResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	stopped := 0
	for _, e := range res.Leaderboard {
		if e.EarlyStopped {
			stopped++
			if e.Params.TrainSteps != 20 {
				t.Fatalf("early-stopped candidate ran %d steps, want the 20-step rung", e.Params.TrainSteps)
			}
		} else if e.Params.TrainSteps != 40 {
			t.Fatalf("survivor ran %d steps, want the full 40", e.Params.TrainSteps)
		}
	}
	if stopped != res.EarlyStopped {
		t.Fatalf("flags count %d, result says %d", stopped, res.EarlyStopped)
	}
	if res.Leaderboard[0].EarlyStopped {
		t.Fatal("the winner was early-stopped")
	}
}

// TestSweepSingleWorkerNoDeadlock: a sweep occupying the only pool worker
// must help-drain its own children instead of deadlocking on them.
func TestSweepSingleWorkerNoDeadlock(t *testing.T) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 1)
	defer runner.Close()
	st, err := runner.Submit(&api.JobRequest{
		Kind: api.KindSweep,
		Sweep: &api.SweepSpec{
			Source:        api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11}},
			Threshold:     130,
			TrainFraction: 0.67,
			LRs:           []float32{0.01, 0.03},
			Momentums:     []float32{0.9},
			Features:      []int{4},
			TrainSteps:    []int{20},
			Seed:          5,
		},
	}, "solo")
	if err != nil {
		t.Fatal(err)
	}
	raw, status, err := awaitTestJob(runner, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", status.State, status.Error)
	}
	var res api.SweepResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 2 || len(res.Leaderboard) != 2 {
		t.Fatalf("result = %+v", res)
	}
}

// awaitTestJob polls a runner until the job is terminal.
func awaitTestJob(r *Runner, id string) (json.RawMessage, api.JobStatus, error) {
	for {
		raw, st, ok := r.Result(id)
		if !ok {
			return nil, st, fmt.Errorf("job %s vanished", id)
		}
		if st.State.Terminal() {
			return raw, st, nil
		}
	}
}
