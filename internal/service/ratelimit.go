package service

import (
	"sync"
	"time"
)

// maxRateBuckets bounds the rate limiter's per-tenant state: beyond this
// many tracked identities, fully-refilled (i.e. long-idle) buckets are
// reaped — a fresh bucket behaves identically to a full one, so the reap
// is lossless.
const maxRateBuckets = 4096

// rateLimiter enforces a per-tenant token-bucket submit rate at the
// gateway: rate tokens/second refill up to a burst cap, one token per
// submit. Dry buckets report how long until the next token so the 429
// reply can carry an honest Retry-After.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket depth
	buckets map[string]*rateBucket
}

type rateBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		// Default depth: ~2 seconds of sustained rate, at least one token,
		// so honest bursty clients ride through scheduling jitter.
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*rateBucket)}
}

// allow spends one token for tenant, or reports how long the caller must
// wait for the next one.
func (l *rateLimiter) allow(tenant string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &rateBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
		if len(l.buckets) > maxRateBuckets {
			l.reapLocked(now, b)
		}
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// reapLocked deletes buckets idle long enough to have fully refilled
// (keep is the entry that just went in). l.mu held.
func (l *rateLimiter) reapLocked(now time.Time, keep *rateBucket) {
	for k, b := range l.buckets {
		if b == keep {
			continue
		}
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}
