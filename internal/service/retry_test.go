package service

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/gpusim"
	"chaseci/internal/netsim"
	"chaseci/internal/queue"
	"chaseci/internal/sched"
)

// assertNoLeaks polls LeakCheck until it passes: terminal state lands just
// before ref release in execute, so the last Unpin can trail a Status read
// by a scheduler tick.
func assertNoLeaks(t *testing.T, r *Runner) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := r.LeakCheck()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak check: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func tightRetries(r *Runner, attempts int) {
	r.SetRetryPolicy(RetryPolicy{
		MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
	})
}

func TestTransientErrorRetriesToSuccess(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("store briefly unavailable: %w", ErrTransient)
		}
		return map[string]int{"ok": 1}, nil
	})
	r, _ := newTestRunner(t, reg, 1)
	tightRetries(r, 4)
	st, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateSucceeded {
		t.Fatalf("want succeeded after retries, got %s (%s)", final.State, final.Error)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3", got)
	}
	if !strings.Contains(r.MetricsText(), `jobs_retried{kind="workflow"} 2`) {
		t.Fatalf("jobs_retried metric missing:\n%s", r.MetricsText())
	}
	assertNoLeaks(t, r)
}

func TestTransientErrorExhaustsAttempts(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		calls.Add(1)
		return nil, fmt.Errorf("always flaky: %w", ErrTransient)
	})
	r, _ := newTestRunner(t, reg, 1)
	tightRetries(r, 3)
	st, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateFailed {
		t.Fatalf("want failed, got %s", final.State)
	}
	if !strings.Contains(final.Error, "gave up after 3 attempts") {
		t.Fatalf("error should report exhaustion: %q", final.Error)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3", got)
	}
	assertNoLeaks(t, r)
}

func TestNonTransientErrorFailsFirstAttempt(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		calls.Add(1)
		return nil, fmt.Errorf("bad input, retrying cannot help")
	})
	r, _ := newTestRunner(t, reg, 1)
	tightRetries(r, 5)
	st, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateFailed || calls.Load() != 1 {
		t.Fatalf("want 1 failed attempt, got state=%s calls=%d", final.State, calls.Load())
	}
	assertNoLeaks(t, r)
}

func TestRetryBackoffInterruptedByCancel(t *testing.T) {
	started := make(chan struct{}, 16)
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		started <- struct{}{}
		if jc.Ctx().Err() != nil {
			return nil, jc.Ctx().Err()
		}
		return nil, fmt.Errorf("flaky: %w", ErrTransient)
	})
	r, _ := newTestRunner(t, reg, 1)
	// Long delays: without the context-aware sleep the cancel below would
	// stall behind a multi-second backoff.
	r.SetRetryPolicy(RetryPolicy{MaxAttempts: 50, BaseDelay: 10 * time.Second, MaxDelay: 30 * time.Second})
	st, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !r.Cancel(st.ID) {
		t.Fatal("cancel refused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := r.Status(st.ID)
		if cur.State.Terminal() {
			if cur.State != api.StateCancelled {
				t.Fatalf("want cancelled, got %s (%s)", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel did not interrupt retry backoff")
		}
		time.Sleep(time.Millisecond)
	}
	assertNoLeaks(t, r)
}

// threeNodeFabric is twoNodeFabric plus a storage-less third site: when both
// OSD-bearing nodes die, node-2 still has compute but no replica of anything
// — the ErrNoReplicas geometry.
func threeNodeFabric(t *testing.T) *sched.Fabric {
	t.Helper()
	f := sched.NewFabric(sched.FabricConfig{Replicas: 2})
	f.AddSite("ucsd")
	f.AddSite("sdsu")
	f.AddSite("uci")
	f.AddLink("ucsd", "sdsu", netsim.Gbps(40), 2*time.Millisecond)
	f.AddLink("ucsd", "uci", netsim.Gbps(10), 3*time.Millisecond)
	f.AddLink("sdsu", "uci", netsim.Gbps(10), 3*time.Millisecond)
	for i, site := range []string{"ucsd", "sdsu"} {
		err := f.AddNode(sched.NodeSpec{
			Name:     fmt.Sprintf("node-%d", i),
			Site:     site,
			Capacity: cluster.FIONA8Capacity(),
			Model:    gpusim.Powered1080Ti(),
			OSD:      "osd-" + site,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := f.AddNode(sched.NodeSpec{
		Name: "node-2", Site: "uci", Capacity: cluster.FIONA8Capacity(),
		Model: gpusim.Powered1080Ti(),
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestPlacementFailsTerminalWhenAllReplicasLost drains every node holding a
// replica of the job's input while the job runs: re-placement must reach
// terminal failed with a descriptive ErrNoReplicas message, not requeue
// forever against data that no longer exists.
func TestPlacementFailsTerminalWhenAllReplicasLost(t *testing.T) {
	reg := NewRegistry()
	reg.Register(api.KindSegment, func(jc *JobContext) (any, error) {
		<-jc.Ctx().Done()
		return nil, jc.Ctx().Err()
	})
	fab := threeNodeFabric(t)
	r := NewClusterRunner(reg, queue.NewStore(), 2, fab)
	defer r.Close()
	tightRetries(r, 2)

	d, h, w, data := clusterSegmentVolume()
	info, err := r.Datasets().PutVolume(d, h, w, data, "anonymous")
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Submit(refSegmentRequest(info.ID), "anonymous")
	if err != nil {
		t.Fatal(err)
	}

	// Kill whichever OSD-bearing node the job is on, twice: the second kill
	// leaves no up replica anywhere, so re-placement goes terminal.
	for kills := 0; kills < 2; kills++ {
		var node string
		waitFor(t, func() bool {
			node = r.Scheduler().BoundNode(st.ID)
			return node == "node-0" || node == "node-1"
		}, "job bound to a replica holder")
		if err := r.DrainNode(node); err != nil {
			t.Fatal(err)
		}
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateFailed {
		t.Fatalf("want terminal failed, got %s (%s)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "none up") {
		t.Fatalf("error should describe the replica loss: %q", final.Error)
	}
	assertNoLeaks(t, r)
}

// TestPlacementRetryBudgetExhausted bounces one node-pinned job through six
// kill/restore cycles: requeue 6 exceeds the budget of 5 and the job goes
// terminal failed instead of looping forever.
func TestPlacementRetryBudgetExhausted(t *testing.T) {
	reg := NewRegistry()
	reg.Register(api.KindSegment, func(jc *JobContext) (any, error) {
		<-jc.Ctx().Done()
		return nil, jc.Ctx().Err()
	})
	fab := twoNodeFabric(t)
	r := NewClusterRunner(reg, queue.NewStore(), 2, fab)
	defer r.Close()

	d, h, w, data := clusterSegmentVolume()
	info, err := r.Datasets().PutVolume(d, h, w, data, "anonymous")
	if err != nil {
		t.Fatal(err)
	}
	req := refSegmentRequest(info.ID)
	req.Placement = &api.PlacementSpec{Node: "node-0"}
	st, err := r.Submit(req, "anonymous")
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 1; cycle <= maxPlacementRetries+1; cycle++ {
		waitFor(t, func() bool {
			return r.Scheduler().BoundNode(st.ID) == "node-0"
		}, "job bound to node-0")
		if err := r.DrainNode("node-0"); err != nil {
			t.Fatal(err)
		}
		if cycle > maxPlacementRetries {
			break // over budget: no restore needed, the job must fail now
		}
		// The pinned job parks while its only eligible node is down.
		waitFor(t, func() bool {
			cur, _ := r.Status(st.ID)
			return cur.State == api.StateQueued && r.Scheduler().BoundNode(st.ID) == ""
		}, "job parked during outage")
		if err := r.RestoreNode("node-0"); err != nil {
			t.Fatal(err)
		}
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateFailed {
		t.Fatalf("want terminal failed, got %s (%s)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "placement retry budget exhausted") {
		t.Fatalf("error should name the budget: %q", final.Error)
	}
	if got := r.Scheduler().Requeues(st.ID); got != 0 {
		t.Fatalf("requeue accounting should clear at terminal, got %d", got)
	}
	assertNoLeaks(t, r)
}
