package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chaseci/internal/api"
	"chaseci/internal/dataset"
	"chaseci/internal/merra"
	"chaseci/internal/queue"
)

// testIVTField materializes the deterministic synthetic IVT volume the
// ref-vs-inline tests submit both ways.
func testIVTField(steps int) (d, h, w int, data []float32) {
	g := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	gen := merra.NewGenerator(g, 11)
	vol := merra.IVTVolume(gen, merra.PressureLevels(g.NLev), 0, steps)
	return steps, g.NLat, g.NLon, vol.Data
}

// putDataset uploads encoded bytes through the gateway and returns the Info.
func (f *gwFixture) putDataset(enc []byte) dataset.Info {
	f.t.Helper()
	id := dataset.ID(enc)
	req, err := http.NewRequest("PUT", f.srv.URL+"/v1/datasets/"+id, bytes.NewReader(enc))
	if err != nil {
		f.t.Fatal(err)
	}
	if f.token != "" {
		req.Header.Set("Authorization", "Bearer "+f.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("PUT dataset: status %d: %s", resp.StatusCode, body)
	}
	var info dataset.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		f.t.Fatal(err)
	}
	return info
}

// getDataset fetches a dataset's raw bytes through the gateway.
func (f *gwFixture) getDataset(id string) []byte {
	f.t.Helper()
	req, err := http.NewRequest("GET", f.srv.URL+"/v1/datasets/"+id, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	if f.token != "" {
		req.Header.Set("Authorization", "Bearer "+f.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		f.t.Fatalf("GET dataset %s: status %d: %s", id, resp.StatusCode, body)
	}
	enc, err := io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatal(err)
	}
	return enc
}

func TestGatewayDatasetPutGetRoundTrip(t *testing.T) {
	f := newGWFixture(t, true)
	d, h, w, data := testIVTField(2)
	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}

	info := f.putDataset(enc)
	if info.ID != dataset.ID(enc) || info.Kind != "volume" || info.D != d {
		t.Fatalf("info = %+v", info)
	}
	// Re-upload is idempotent.
	if again := f.putDataset(enc); again.ID != info.ID {
		t.Fatalf("re-upload changed id: %s vs %s", again.ID, info.ID)
	}
	back := f.getDataset(info.ID)
	if !bytes.Equal(back, enc) {
		t.Fatal("downloaded bytes differ from upload")
	}
	// Listing includes it.
	var list []dataset.Info
	if resp := f.do("GET", "/v1/datasets", nil, &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	if len(list) != 1 || list[0].ID != info.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestGatewayDatasetPutRejectsBadUploads(t *testing.T) {
	f := newGWFixture(t, true)
	d, h, w, data := testIVTField(1)
	enc, _ := dataset.EncodeVolume(d, h, w, data)

	// Path id that is not the content's hash -> 400.
	wrong := strings.Repeat("ab", 32)
	req, _ := http.NewRequest("PUT", f.srv.URL+"/v1/datasets/"+wrong, bytes.NewReader(enc))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hash mismatch: status %d, want 400", resp.StatusCode)
	}
	// Malformed id -> 400.
	req, _ = http.NewRequest("PUT", f.srv.URL+"/v1/datasets/not-hex", bytes.NewReader(enc))
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
	}
	// Corrupt body -> 400 (POST path: server computes the id).
	req, _ = http.NewRequest("POST", f.srv.URL+"/v1/datasets", bytes.NewReader([]byte("junk")))
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body: status %d, want 400", resp.StatusCode)
	}
	// Missing dataset -> 404.
	req, _ = http.NewRequest("GET", f.srv.URL+"/v1/datasets/"+strings.Repeat("cd", 32), nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing dataset: status %d, want 404", resp.StatusCode)
	}
}

func TestGatewayDatasetOwnership(t *testing.T) {
	f := newGWFixture(t, false)
	login := func(user string) string {
		var out struct {
			Token string `json:"token"`
		}
		if resp := f.do("POST", "/v1/login", map[string]string{"user": user}, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("login %s: status %d", user, resp.StatusCode)
		}
		return out.Token
	}
	alice, bob := login("alice@ucsd.edu"), login("bob@sdsc.edu")

	d, h, w, data := testIVTField(1)
	enc, _ := dataset.EncodeVolume(d, h, w, data)
	f.token = alice
	info := f.putDataset(enc)

	// Bob cannot fetch Alice's dataset — and the reply is the same 404 a
	// truly missing id gets, so GET is not an existence oracle for
	// content hashes. His listing excludes it too.
	f.token = bob
	req, _ := http.NewRequest("GET", f.srv.URL+"/v1/datasets/"+info.ID, nil)
	req.Header.Set("Authorization", "Bearer "+bob)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bob GET: status %d, want 404 (indistinguishable from missing)", resp.StatusCode)
	}
	var list []dataset.Info
	f.do("GET", "/v1/datasets", nil, &list)
	if len(list) != 0 {
		t.Fatalf("bob sees %d datasets, want 0", len(list))
	}
	// Bob also cannot compute over Alice's ref: submit enforces the same
	// ownership scope, with the same reply as a missing ref so submit is
	// not an existence oracle for private refs.
	jobReq := &api.JobRequest{Kind: api.KindLabel, Label: &api.LabelSpec{
		Source:    api.VolumeSource{Ref: info.ID},
		Threshold: 0.5,
	}}
	resp = f.do("POST", "/v1/jobs", jobReq, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bob submit over alice's ref: status %d, want 400", resp.StatusCode)
	}
	f.token = alice
	if got := f.getDataset(info.ID); !bytes.Equal(got, enc) {
		t.Fatal("alice cannot read her own dataset")
	}
	// And alice can compute over it.
	var sub api.SubmitResponse
	if resp = f.do("POST", "/v1/jobs", jobReq, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice submit over her own ref: status %d, want 202", resp.StatusCode)
	}

	// If bob uploads the identical bytes he proves possession of the
	// content: the dedup reply carries *his* identity (not alice's), and
	// he gains the same read/submit scope as any owner.
	f.token = bob
	dup := f.putDataset(enc)
	if dup.ID != info.ID {
		t.Fatalf("duplicate upload changed id: %s vs %s", dup.ID, info.ID)
	}
	if dup.Owner != "bob@sdsc.edu" {
		t.Fatalf("duplicate-upload reply leaks owner %q", dup.Owner)
	}
	if got := f.getDataset(info.ID); !bytes.Equal(got, enc) {
		t.Fatal("co-owner bob cannot read the dataset he uploaded")
	}
	if resp = f.do("POST", "/v1/jobs", jobReq, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("co-owner bob submit: status %d, want 202", resp.StatusCode)
	}
	// His listing shows the entry under his own identity.
	f.do("GET", "/v1/datasets", nil, &list)
	if len(list) != 1 || list[0].Owner != "bob@sdsc.edu" {
		t.Fatalf("bob's listing after co-upload = %+v", list)
	}
}

func TestGatewaySubmitDanglingRef(t *testing.T) {
	f := newGWFixture(t, true)
	req := &api.JobRequest{Kind: api.KindLabel, Label: &api.LabelSpec{
		Source:    api.VolumeSource{Ref: strings.Repeat("ef", 32)},
		Threshold: 0.5,
	}}
	resp := f.do("POST", "/v1/jobs", req, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dangling ref: status %d, want 400", resp.StatusCode)
	}
}

// TestGatewayRefSubmitBitExactVsInline is the PR's acceptance check: a
// segment job submitted by ref returns bit-identical mask and stats to the
// same job submitted inline, end to end through the HTTP gateway.
func TestGatewayRefSubmitBitExactVsInline(t *testing.T) {
	f := newGWFixture(t, true)
	d, h, w, data := testIVTField(4)
	segSpec := func(src api.VolumeSource) *api.SegmentSpec {
		return &api.SegmentSpec{
			Source:     src,
			Threshold:  120,
			Net:        &api.NetConfig{FOV: [3]int{3, 7, 7}, Features: 6, MoveProb: 0.6},
			SeedStride: [3]int{1, 4, 4},
			ReturnMask: true,
		}
	}

	// Inline submit: the whole volume rides the request, the mask rides
	// the result (1-bit packed).
	st, env := f.submitAndWait(&api.JobRequest{
		Kind:    api.KindSegment,
		Segment: segSpec(api.VolumeSource{D: d, H: h, W: w, Data: data}),
	})
	if st.State != api.StateSucceeded {
		t.Fatalf("inline job: %s (%s)", st.State, st.Error)
	}
	var inline api.SegmentResult
	if err := json.Unmarshal(env.Result, &inline); err != nil {
		t.Fatal(err)
	}
	if inline.MaskBits == nil || inline.MaskRef != "" {
		t.Fatalf("inline result carries wrong mask form: %+v", st)
	}

	// Ref submit: upload once, submit the 64-byte ref, get a mask ref back.
	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	info := f.putDataset(enc)
	st, env = f.submitAndWait(&api.JobRequest{
		Kind:       api.KindSegment,
		ResultMode: api.ResultModeRef,
		Segment:    segSpec(api.VolumeSource{Ref: info.ID}),
	})
	if st.State != api.StateSucceeded {
		t.Fatalf("ref job: %s (%s)", st.State, st.Error)
	}
	var byRef api.SegmentResult
	if err := json.Unmarshal(env.Result, &byRef); err != nil {
		t.Fatal(err)
	}
	if byRef.MaskRef == "" || byRef.MaskBits != nil {
		t.Fatalf("ref result carries wrong mask form: mask_ref=%q", byRef.MaskRef)
	}

	// Stats bit-identical.
	if inline.Steps != byRef.Steps || inline.Moves != byRef.Moves ||
		inline.SeedsUsed != byRef.SeedsUsed || inline.MaskVoxels != byRef.MaskVoxels ||
		inline.VoxelsTotal != byRef.VoxelsTotal {
		t.Fatalf("stats diverge: inline %+v vs ref %+v", inline, byRef)
	}
	// Masks bit-identical: unpack the inline bits, fetch + decode the ref.
	inlineMask, err := dataset.UnpackBits(inline.MaskBits, d*h*w)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := dataset.Decode(f.getDataset(byRef.MaskRef))
	if err != nil {
		t.Fatal(err)
	}
	if blob.Kind != dataset.KindMask || blob.D != d || blob.H != h || blob.W != w {
		t.Fatalf("mask dataset header: %+v", blob)
	}
	for i := range inlineMask {
		if inlineMask[i] != blob.Data[i] {
			t.Fatalf("mask voxel %d differs: inline %v, ref %v", i, inlineMask[i], blob.Data[i])
		}
	}
}

// TestIVTRefChainsIntoLabel: an IVT job in ref mode emits a volume ref a
// label job can consume directly — the derived field never crosses the
// gateway.
func TestIVTRefChainsIntoLabel(t *testing.T) {
	r := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer r.Close()
	synth := api.SynthSpec{NLon: 36, NLat: 24, NLev: 6, Steps: 3, Seed: 11}

	st, err := r.Submit(&api.JobRequest{
		Kind:       api.KindIVT,
		ResultMode: api.ResultModeRef,
		IVT:        &api.IVTSpec{Synth: synth},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ := r.Result(st.ID)
	var ivtRes api.IVTResult
	if err := json.Unmarshal(raw, &ivtRes); err != nil {
		t.Fatal(err)
	}
	if ivtRes.VolumeRef == "" {
		t.Fatal("ref-mode ivt job returned no volume_ref")
	}
	blob, err := r.Datasets().Resolve(ivtRes.VolumeRef)
	if err != nil {
		t.Fatal(err)
	}
	if blob.D != synth.Steps || blob.H != synth.NLat || blob.W != synth.NLon {
		t.Fatalf("volume_ref dims %dx%dx%d", blob.D, blob.H, blob.W)
	}

	labelSpec := func(src api.VolumeSource) *api.LabelSpec {
		return &api.LabelSpec{Source: src, Threshold: 150, MinVoxels: 2}
	}
	st, err = r.Submit(&api.JobRequest{Kind: api.KindLabel, Label: labelSpec(api.VolumeSource{Ref: ivtRes.VolumeRef})}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ = r.Result(st.ID)
	var byRef api.LabelResult
	if err := json.Unmarshal(raw, &byRef); err != nil {
		t.Fatal(err)
	}

	st, err = r.Submit(&api.JobRequest{Kind: api.KindLabel, Label: labelSpec(api.VolumeSource{
		D: blob.D, H: blob.H, W: blob.W, Data: blob.CloneData(),
	})}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ = r.Result(st.ID)
	var inline api.LabelResult
	if err := json.Unmarshal(raw, &inline); err != nil {
		t.Fatal(err)
	}
	if inline.Objects != byRef.Objects || inline.TotalVoxels != byRef.TotalVoxels ||
		inline.MaxDuration != byRef.MaxDuration {
		t.Fatalf("label by ref %+v diverges from inline %+v", byRef, inline)
	}
}

// TestPipelineRefLifecycle: ref-mode pipeline jobs keep per-slab mask refs
// (resolvable, voxel counts matching); inline-mode jobs release every
// intermediate dataset on completion.
func TestPipelineRefLifecycle(t *testing.T) {
	r := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer r.Close()
	req := pipelineRequest(2, true)

	req.ResultMode = api.ResultModeRef
	st, err := r.Submit(req, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ := r.Result(st.ID)
	var refRes api.PipelineResult
	if err := json.Unmarshal(raw, &refRes); err != nil {
		t.Fatal(err)
	}
	if refRes.SlabsDone == 0 {
		t.Fatal("no slabs completed")
	}
	for _, sl := range refRes.PerSlab {
		if sl.MaskRef == "" {
			t.Fatalf("slab %d has no mask_ref", sl.Slab)
		}
		blob, err := r.Datasets().Resolve(sl.MaskRef)
		if err != nil {
			t.Fatalf("slab %d mask: %v", sl.Slab, err)
		}
		voxels := 0
		for _, v := range blob.Data {
			if v != 0 {
				voxels++
			}
		}
		if voxels != sl.MaskVoxels {
			t.Fatalf("slab %d mask has %d voxels, result says %d", sl.Slab, voxels, sl.MaskVoxels)
		}
	}
	// Only the masks were kept: raw slab fields are gone. Identical masks
	// dedup to one stored dataset, so count unique refs.
	uniqueMasks := make(map[string]bool)
	for _, sl := range refRes.PerSlab {
		uniqueMasks[sl.MaskRef] = true
	}
	if got, want := len(r.Datasets().List()), len(uniqueMasks); got != want {
		t.Fatalf("store holds %d datasets after ref-mode pipeline, want %d masks", got, want)
	}

	// Inline mode releases everything.
	req2 := pipelineRequest(2, true)
	st, err = r.Submit(req2, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ = r.Result(st.ID)
	var inlineRes api.PipelineResult
	if err := json.Unmarshal(raw, &inlineRes); err != nil {
		t.Fatal(err)
	}
	for i := range inlineRes.PerSlab {
		if inlineRes.PerSlab[i].MaskRef != "" {
			t.Fatal("inline-mode pipeline leaked a mask_ref into the result")
		}
		// Identical analysis modulo the ref bookkeeping.
		a, b := inlineRes.PerSlab[i], refRes.PerSlab[i]
		a.MaskRef, b.MaskRef = "", ""
		if a != b {
			t.Fatalf("slab %d diverges between modes: %+v vs %+v", i, a, b)
		}
	}
	if got, want := len(r.Datasets().List()), len(uniqueMasks); got != want {
		t.Fatalf("store holds %d datasets after inline pipeline, want the %d kept masks only", got, want)
	}
}

// bench64Volume builds the 64^3 volume the submit-path benchmarks ship.
func bench64Volume() (int, int, int, []float32) {
	const n = 64
	data := make([]float32, n*n*n)
	for i := range data {
		data[i] = float32(i%251) * 0.7
	}
	return n, n, n, data
}

// benchSegmentSpec is a segmentation job tuned so the submit path, not the
// kernel, dominates: one seed, one network application.
func benchSegmentSpec(src api.VolumeSource) *api.SegmentSpec {
	return &api.SegmentSpec{
		Source:     src,
		Seeds:      [][3]int{{32, 32, 32}},
		MaxSteps:   1,
		ReturnMask: true,
	}
}

// submitAndMeasure posts a job, waits for it, fetches the result, and
// returns the total bytes that crossed the gateway (request + both response
// bodies) plus the decoded result.
func submitAndMeasure(b testing.TB, srv string, runner *Runner, req *api.JobRequest) (int64, api.SegmentResult) {
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	wire := int64(len(body))
	resp, err := http.Post(srv+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	ack, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	wire += int64(len(ack))
	var sub api.SubmitResponse
	if err := json.Unmarshal(ack, &sub); err != nil || sub.ID == "" {
		b.Fatalf("submit failed: %s", ack)
	}
	for {
		st, ok := runner.Status(sub.ID)
		if !ok {
			b.Fatalf("job %s vanished", sub.ID)
		}
		if st.State.Terminal() {
			if st.State != api.StateSucceeded {
				b.Fatalf("job %s: %s (%s)", sub.ID, st.State, st.Error)
			}
			break
		}
	}
	resp, err = http.Get(srv + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		b.Fatal(err)
	}
	envRaw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	wire += int64(len(envRaw))
	var env api.ResultEnvelope
	if err := json.Unmarshal(envRaw, &env); err != nil {
		b.Fatal(err)
	}
	var res api.SegmentResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		b.Fatal(err)
	}
	return wire, res
}

// BenchmarkJobSubmitInline is the old data plane: a 64^3 volume rides every
// submit as JSON text and the mask rides the result. The wire-bytes metric
// is the quantity BenchmarkJobSubmitRef divides.
func BenchmarkJobSubmitInline(b *testing.B) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer runner.Close()
	srv := httptest.NewServer(NewGateway(runner, GatewayOptions{AllowAnonymous: true, TokenSeed: 1}))
	defer srv.Close()
	d, h, w, data := bench64Volume()
	req := &api.JobRequest{Kind: api.KindSegment, Segment: benchSegmentSpec(api.VolumeSource{D: d, H: h, W: w, Data: data})}
	var wire int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, _ = submitAndMeasure(b, srv.URL, runner, req)
	}
	b.ReportMetric(float64(wire), "wire-bytes/op")
}

// BenchmarkJobSubmitRef is the refactored data plane: the volume is
// uploaded once (untimed), and every submit moves a 64-hex ref in and a
// mask ref out. The acceptance bar is >= 5x fewer gateway bytes than
// inline for the same 64^3 job; in practice it is orders of magnitude.
func BenchmarkJobSubmitRef(b *testing.B) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer runner.Close()
	srv := httptest.NewServer(NewGateway(runner, GatewayOptions{AllowAnonymous: true, TokenSeed: 1}))
	defer srv.Close()
	d, h, w, data := bench64Volume()
	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		b.Fatal(err)
	}
	info, err := runner.Datasets().Put(enc, "")
	if err != nil {
		b.Fatal(err)
	}
	req := &api.JobRequest{
		Kind:       api.KindSegment,
		ResultMode: api.ResultModeRef,
		Segment:    benchSegmentSpec(api.VolumeSource{Ref: info.ID}),
	}
	var wire int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, _ = submitAndMeasure(b, srv.URL, runner, req)
	}
	b.ReportMetric(float64(wire), "wire-bytes/op")
}

// TestRefSubmitWireBytesRatio pins the acceptance criterion in plain `go
// test`: for a 64^3 volume, submitting by ref moves >= 5x fewer bytes
// through the HTTP gateway than submitting inline, with identical results.
func TestRefSubmitWireBytesRatio(t *testing.T) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer runner.Close()
	srv := httptest.NewServer(NewGateway(runner, GatewayOptions{AllowAnonymous: true, TokenSeed: 1}))
	defer srv.Close()
	d, h, w, data := bench64Volume()

	inlineWire, inlineRes := submitAndMeasure(t, srv.URL, runner, &api.JobRequest{
		Kind:    api.KindSegment,
		Segment: benchSegmentSpec(api.VolumeSource{D: d, H: h, W: w, Data: data}),
	})

	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	info, err := runner.Datasets().Put(enc, "")
	if err != nil {
		t.Fatal(err)
	}
	refWire, refRes := submitAndMeasure(t, srv.URL, runner, &api.JobRequest{
		Kind:       api.KindSegment,
		ResultMode: api.ResultModeRef,
		Segment:    benchSegmentSpec(api.VolumeSource{Ref: info.ID}),
	})

	if inlineRes.Steps != refRes.Steps || inlineRes.MaskVoxels != refRes.MaskVoxels {
		t.Fatalf("results diverge: inline %+v vs ref %+v", inlineRes, refRes)
	}
	ratio := float64(inlineWire) / float64(refWire)
	t.Logf("wire bytes: inline %d, ref %d (%.0fx)", inlineWire, refWire, ratio)
	if ratio < 5 {
		t.Fatalf("ref submit moved only %.1fx fewer gateway bytes, want >= 5x", ratio)
	}
}

// TestGatewayDatasetDeleteDropsClaims: DELETE removes the caller's claim;
// the bytes go away when the last claim drops, and a running job's pin
// defers (but does not lose) the reclamation.
func TestGatewayDatasetDeleteDropsClaims(t *testing.T) {
	f := newGWFixture(t, false)
	login := func(user string) string {
		var out struct {
			Token string `json:"token"`
		}
		if resp := f.do("POST", "/v1/login", map[string]string{"user": user}, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("login %s: status %d", user, resp.StatusCode)
		}
		return out.Token
	}
	alice, bob := login("alice@ucsd.edu"), login("bob@sdsc.edu")

	d, h, w, data := testIVTField(1)
	enc, _ := dataset.EncodeVolume(d, h, w, data)
	f.token = alice
	info := f.putDataset(enc)
	f.token = bob
	f.putDataset(enc) // bob becomes co-owner

	// Alice drops her claim: dataset survives on bob's.
	f.token = alice
	var reply struct {
		Deleted bool `json:"deleted"`
	}
	if resp := f.do("DELETE", "/v1/datasets/"+info.ID, nil, &reply); resp.StatusCode != http.StatusOK || reply.Deleted {
		t.Fatalf("alice drop: status %d deleted=%v, want 200 + retained", resp.StatusCode, reply.Deleted)
	}
	// Alice no longer sees it (same 404 as missing).
	if resp := f.do("GET", "/v1/datasets/"+info.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("alice GET after drop: status %d, want 404", resp.StatusCode)
	}
	f.token = bob
	if got := f.getDataset(info.ID); !bytes.Equal(got, enc) {
		t.Fatal("bob lost access when alice dropped her claim")
	}
	// Bob drops the last claim: bytes reclaimed.
	if resp := f.do("DELETE", "/v1/datasets/"+info.ID, nil, &reply); resp.StatusCode != http.StatusOK || !reply.Deleted {
		t.Fatalf("bob drop: status %d deleted=%v, want 200 + deleted", resp.StatusCode, reply.Deleted)
	}
	if _, ok := f.runner.Datasets().Stat(info.ID); ok {
		t.Fatal("dataset bytes survive after the last claim dropped")
	}
	// Double-delete and foreign delete are the same 404.
	if resp := f.do("DELETE", "/v1/datasets/"+info.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", resp.StatusCode)
	}
}

// TestSubmitPinsSourceRefs: a ref accepted at submit stays resolvable
// until the job runs, even if every ownership claim is dropped in between.
func TestSubmitPinsSourceRefs(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	reg.Register(api.KindLabel, func(jc *JobContext) (any, error) {
		<-release
		return LabelHandler(jc)
	})
	r := NewRunner(reg, queue.NewStore(), 1)
	defer r.Close()

	d, h, w, data := testIVTField(1)
	enc, _ := dataset.EncodeVolume(d, h, w, data)
	info, err := r.Datasets().Put(enc, "alice")
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Submit(&api.JobRequest{Kind: api.KindLabel, Label: &api.LabelSpec{
		Source: api.VolumeSource{Ref: info.ID}, Threshold: 120,
	}}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	// The only claim is dropped while the job is queued/blocked; the
	// submit-time pin defers the reclamation.
	if !r.Datasets().Drop(info.ID, "alice") {
		t.Fatal("drop failed")
	}
	close(release)
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateSucceeded {
		t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Error)
	}
	// With the job done, the deferred delete has fired.
	if _, ok := r.Datasets().Stat(info.ID); ok {
		t.Fatal("dropped dataset survives after its last pin released")
	}
}
