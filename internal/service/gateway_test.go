package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/queue"
)

// gwFixture is an HTTP-level test harness around a full gateway stack.
type gwFixture struct {
	t      *testing.T
	runner *Runner
	srv    *httptest.Server
	token  string
}

func newGWFixture(t *testing.T, anon bool) *gwFixture {
	t.Helper()
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	t.Cleanup(runner.Close)
	gw := NewGateway(runner, GatewayOptions{
		Providers:      map[string]string{"ucsd.edu": "UCSD", "sdsc.edu": "SDSC"},
		TokenTTL:       time.Hour,
		AllowAnonymous: anon,
		PollInterval:   2 * time.Millisecond,
		TokenSeed:      1,
	})
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)
	return &gwFixture{t: t, runner: runner, srv: srv}
}

// do issues a request with the fixture's token (if any) and decodes the
// JSON reply into out (skipped when out is nil).
func (f *gwFixture) do(method, path string, body any, out any) *http.Response {
	f.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			f.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, f.srv.URL+path, rd)
	if err != nil {
		f.t.Fatal(err)
	}
	if f.token != "" {
		req.Header.Set("Authorization", "Bearer "+f.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			f.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp
}

// submitAndWait submits over HTTP and polls until terminal.
func (f *gwFixture) submitAndWait(req *api.JobRequest) (api.JobStatus, api.ResultEnvelope) {
	f.t.Helper()
	var sub api.SubmitResponse
	resp := f.do("POST", "/v1/jobs", req, &sub)
	if resp.StatusCode != http.StatusAccepted {
		f.t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	var st api.JobStatus
	for {
		if time.Now().After(deadline) {
			f.t.Fatalf("timeout waiting on %s (state %s)", sub.ID, st.State)
		}
		f.do("GET", "/v1/jobs/"+sub.ID, nil, &st)
		if st.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var env api.ResultEnvelope
	f.do("GET", "/v1/jobs/"+sub.ID+"/result", nil, &env)
	return st, env
}

// TestGatewayAllKernelsEndToEnd is the acceptance check: every kernel kind
// runs end to end through the HTTP gateway.
func TestGatewayAllKernelsEndToEnd(t *testing.T) {
	f := newGWFixture(t, true)

	t.Run("segment", func(t *testing.T) {
		st, env := f.submitAndWait(tinySegmentRequest())
		if st.State != api.StateSucceeded {
			t.Fatalf("state = %s (%s)", st.State, st.Error)
		}
		var res api.SegmentResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.SeedsUsed != 1 || res.Steps != 1 {
			t.Fatalf("result = %+v", res)
		}
	})

	t.Run("label", func(t *testing.T) {
		st, env := f.submitAndWait(&api.JobRequest{
			Kind: api.KindLabel,
			Label: &api.LabelSpec{
				Source:    api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 8, Seed: 11}},
				Threshold: 130,
			},
		})
		if st.State != api.StateSucceeded {
			t.Fatalf("state = %s (%s)", st.State, st.Error)
		}
		var res api.LabelResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Objects == 0 || len(res.Top) == 0 {
			t.Fatalf("labelling found nothing: %+v", res)
		}
	})

	t.Run("ivt", func(t *testing.T) {
		st, env := f.submitAndWait(&api.JobRequest{
			Kind: api.KindIVT,
			IVT: &api.IVTSpec{
				Synth:     api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 6, Seed: 11},
				Threshold: 130,
			},
		})
		if st.State != api.StateSucceeded {
			t.Fatalf("state = %s (%s)", st.State, st.Error)
		}
		var res api.IVTResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Steps != 6 || len(res.PerStep) != 6 || res.Max <= res.Mean || res.Mean <= 0 {
			t.Fatalf("result = %+v", res)
		}
	})

	t.Run("train", func(t *testing.T) {
		st, env := f.submitAndWait(&api.JobRequest{
			Kind: api.KindTrain,
			Train: &api.TrainSpec{
				Source:    api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 8, Seed: 11}},
				Threshold: 130,
				Steps:     12,
			},
		})
		if st.State != api.StateSucceeded {
			t.Fatalf("state = %s (%s)", st.State, st.Error)
		}
		var res api.TrainResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Steps != 12 || res.LossHead == 0 {
			t.Fatalf("result = %+v", res)
		}
	})

	t.Run("workflow", func(t *testing.T) {
		st, env := f.submitAndWait(&api.JobRequest{
			Kind: api.KindWorkflow,
			Workflow: &api.WorkflowSpec{
				Name: "connect-segmentation",
				Steps: []api.WorkflowStep{
					{Name: "download", DurationMS: 2220000, Measurements: map[string]float64{"pods": 14}},
					{Name: "train", DependsOn: []string{"download"}, DurationMS: 18360000},
					{Name: "inference", DependsOn: []string{"train"}, DurationMS: 67980000},
					{Name: "visualize", DependsOn: []string{"inference"}, DurationMS: 600000},
				},
			},
		})
		if st.State != api.StateSucceeded {
			t.Fatalf("state = %s (%s)", st.State, st.Error)
		}
		var res api.WorkflowResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatal(err)
		}
		if len(res.Steps) != 4 || res.Failed || !strings.Contains(res.Table, "pods") {
			t.Fatalf("result = %+v", res)
		}
	})

	// Metrics observed every kind.
	resp, err := http.Get(f.srv.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, kind := range []string{"segment", "label", "ivt", "train", "workflow"} {
		if !strings.Contains(buf.String(), fmt.Sprintf(`jobs_succeeded{kind=%q} 1`, kind)) {
			t.Fatalf("metricz missing %s success:\n%s", kind, buf.String())
		}
	}
}

func TestGatewayAuthRequired(t *testing.T) {
	f := newGWFixture(t, false)

	// No token -> 401.
	resp := f.do("POST", "/v1/jobs", tinySegmentRequest(), nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", resp.StatusCode)
	}
	// Unknown provider -> 401.
	resp = f.do("POST", "/v1/login", map[string]string{"user": "who@unknown.example"}, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown provider: status %d, want 401", resp.StatusCode)
	}
	// Registered provider -> token.
	var login struct {
		Token string `json:"token"`
	}
	resp = f.do("POST", "/v1/login", map[string]string{"user": "ialtintas@ucsd.edu"}, &login)
	if resp.StatusCode != http.StatusOK || login.Token == "" {
		t.Fatalf("login failed: status %d, token %q", resp.StatusCode, login.Token)
	}
	// Garbage token -> 401.
	f.token = "tok-bogus"
	if resp = f.do("GET", "/v1/jobs", nil, nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("garbage token: status %d, want 401", resp.StatusCode)
	}
	// Real token -> job runs, owner recorded.
	f.token = login.Token
	st, _ := f.submitAndWait(tinySegmentRequest())
	if st.State != api.StateSucceeded || st.Owner != "ialtintas@ucsd.edu" {
		t.Fatalf("status = %+v", st)
	}
}

// TestGatewayOwnershipEnforced: with auth on, one identity cannot poll,
// cancel, or read another identity's job.
func TestGatewayOwnershipEnforced(t *testing.T) {
	f := newGWFixture(t, false)
	login := func(user string) string {
		var out struct {
			Token string `json:"token"`
		}
		if resp := f.do("POST", "/v1/login", map[string]string{"user": user}, &out); resp.StatusCode != http.StatusOK {
			t.Fatalf("login %s: status %d", user, resp.StatusCode)
		}
		return out.Token
	}
	alice, bob := login("alice@ucsd.edu"), login("bob@sdsc.edu")

	f.token = alice
	st, _ := f.submitAndWait(tinySegmentRequest())
	if st.Owner != "alice@ucsd.edu" {
		t.Fatalf("owner = %q", st.Owner)
	}

	f.token = bob
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + st.ID},
		{"GET", "/v1/jobs/" + st.ID + "/result"},
		{"GET", "/v1/jobs/" + st.ID + "/events"},
		{"POST", "/v1/jobs/" + st.ID + "/cancel"},
	} {
		if resp := f.do(probe.method, probe.path, nil, nil); resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s as bob: status %d, want 403", probe.method, probe.path, resp.StatusCode)
		}
	}
	f.token = alice
	if resp := f.do("GET", "/v1/jobs/"+st.ID+"/result", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner read: status %d, want 200", resp.StatusCode)
	}
}

// TestGatewayTokenJobsProtectedInAnonMode: even with anonymous traffic
// allowed, a job submitted under a federated identity is not visible or
// cancellable to anonymous callers.
func TestGatewayTokenJobsProtectedInAnonMode(t *testing.T) {
	f := newGWFixture(t, true)
	var login struct {
		Token string `json:"token"`
	}
	if resp := f.do("POST", "/v1/login", map[string]string{"user": "alice@ucsd.edu"}, &login); resp.StatusCode != http.StatusOK {
		t.Fatalf("login: status %d", resp.StatusCode)
	}
	f.token = login.Token
	st, _ := f.submitAndWait(tinySegmentRequest())
	if st.Owner != "alice@ucsd.edu" {
		t.Fatalf("owner = %q", st.Owner)
	}

	f.token = "" // anonymous caller
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/" + st.ID},
		{"POST", "/v1/jobs/" + st.ID + "/cancel"},
	} {
		if resp := f.do(probe.method, probe.path, nil, nil); resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s anonymously: status %d, want 403", probe.method, probe.path, resp.StatusCode)
		}
	}
	var list []api.JobStatus
	f.do("GET", "/v1/jobs", nil, &list)
	for _, s := range list {
		if s.ID == st.ID {
			t.Fatalf("token-owned job leaked into anonymous listing")
		}
	}
}

func TestGatewayValidationAndRouting(t *testing.T) {
	f := newGWFixture(t, true)

	// Schema violation -> 400 with the api error.
	var apiErr api.ErrorResponse
	resp := f.do("POST", "/v1/jobs", &api.JobRequest{Kind: api.KindSegment}, &apiErr)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(apiErr.Error, "segment spec") {
		t.Fatalf("status %d, err %q", resp.StatusCode, apiErr.Error)
	}
	// Unknown JSON field -> 400 (DisallowUnknownFields catches typos).
	req, _ := http.NewRequest("POST", f.srv.URL+"/v1/jobs", strings.NewReader(`{"kind":"segment","segmnt":{}}`))
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo field: status %d, want 400", raw.StatusCode)
	}
	// Unknown job -> 404 on status, result, cancel.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result"} {
		if resp := f.do("GET", path, nil, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	if resp := f.do("POST", "/v1/jobs/job-999999/cancel", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", resp.StatusCode)
	}
	// Kinds and health endpoints.
	var kinds []api.Kind
	f.do("GET", "/v1/kinds", nil, &kinds)
	if len(kinds) != len(api.Kinds()) {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestGatewayResultNotReady(t *testing.T) {
	f := newGWFixture(t, true)
	var sub api.SubmitResponse
	f.do("POST", "/v1/jobs", bigSegmentRequest(), &sub)
	// Immediately asking for the result must 409 while queued/running.
	resp := f.do("GET", "/v1/jobs/"+sub.ID+"/result", nil, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	f.do("POST", "/v1/jobs/"+sub.ID+"/cancel", nil, nil)
}

func TestGatewayCancelEndpoint(t *testing.T) {
	f := newGWFixture(t, true)
	var sub api.SubmitResponse
	f.do("POST", "/v1/jobs", bigSegmentRequest(), &sub)

	// Wait over HTTP until mid-flight in the segment stage.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st api.JobStatus
		f.do("GET", "/v1/jobs/"+sub.ID, nil, &st)
		if st.Stage == "segment" && st.Done > 0 {
			break
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("never observed mid-flight: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	var cres struct {
		Cancelled bool `json:"cancelled"`
	}
	f.do("POST", "/v1/jobs/"+sub.ID+"/cancel", nil, &cres)
	if !cres.Cancelled {
		t.Fatal("cancel endpoint reported cancelled=false")
	}
	var st api.JobStatus
	for !st.State.Terminal() {
		f.do("GET", "/v1/jobs/"+sub.ID, nil, &st)
	}
	if st.State != api.StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	var env api.ResultEnvelope
	f.do("GET", "/v1/jobs/"+sub.ID+"/result", nil, &env)
	var res api.SegmentResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatalf("cancelled job lost its partial stats: %+v", res)
	}
}

// TestGatewayEventsStream reads the NDJSON progress stream to completion
// and requires a terminal final line.
func TestGatewayEventsStream(t *testing.T) {
	f := newGWFixture(t, true)
	var sub api.SubmitResponse
	f.do("POST", "/v1/jobs", tinySegmentRequest(), &sub)

	resp, err := http.Get(f.srv.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %s", ct)
	}
	var last api.JobStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 || !last.State.Terminal() {
		t.Fatalf("stream ended after %d lines in state %s", lines, last.State)
	}
}

// BenchmarkJobSubmit measures gateway submit -> complete overhead for a
// tiny segment job over real HTTP (satellite requirement: the measured
// end-to-end path should be dominated by the kernel, not the gateway).
func BenchmarkJobSubmit(b *testing.B) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer runner.Close()
	gw := NewGateway(runner, GatewayOptions{AllowAnonymous: true, PollInterval: time.Millisecond, TokenSeed: 1})
	srv := httptest.NewServer(gw)
	defer srv.Close()

	body, err := json.Marshal(tinySegmentRequest())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sub api.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for {
			st, ok := runner.Status(sub.ID)
			if !ok {
				b.Fatalf("job %s vanished", sub.ID)
			}
			if st.State.Terminal() {
				if st.State != api.StateSucceeded {
					b.Fatalf("job %s: %s (%s)", sub.ID, st.State, st.Error)
				}
				break
			}
		}
	}
}

// BenchmarkSubmitOverheadInProcess isolates the job-lifecycle overhead —
// validation, persistence, queue hop, worker scheduling, metrics — with a
// no-op handler, so it can be compared against kernel time directly.
func BenchmarkSubmitOverheadInProcess(b *testing.B) {
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) { return struct{}{}, nil })
	runner := NewRunner(reg, queue.NewStore(), 1)
	defer runner.Close()
	req := blockingWorkflowRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := runner.Submit(req, "bench")
		if err != nil {
			b.Fatal(err)
		}
		for {
			s, _ := runner.Status(st.ID)
			if s.State.Terminal() {
				break
			}
			runtime.Gosched()
		}
	}
}

// BenchmarkStatusPoll pins the satellite's alloc target: 0 allocs/op on
// the in-process status-poll path.
func BenchmarkStatusPoll(b *testing.B) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 1)
	defer runner.Close()
	st, err := runner.Submit(tinySegmentRequest(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	for {
		s, _ := runner.Status(st.ID)
		if s.State.Terminal() {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink api.JobStatus
	for i := 0; i < b.N; i++ {
		sink, _ = runner.Status(st.ID)
	}
	_ = sink
}
