package service

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/auth"
	"chaseci/internal/dataset"
	"chaseci/internal/sched"
)

// GatewayOptions configures the HTTP face of the service.
type GatewayOptions struct {
	// Providers registers identity providers (email domain -> provider
	// name) with the CILogon-style federation backing /v1/login.
	Providers map[string]string
	// TokenTTL is the bearer-token lifetime (<= 0 defaults to 12h).
	TokenTTL time.Duration
	// AllowAnonymous accepts requests without an Authorization header,
	// attributing them to the "anonymous" owner.
	AllowAnonymous bool
	// PollInterval is the progress-stream poll cadence (<= 0 = 50ms).
	PollInterval time.Duration
	// TokenSeed seeds the token RNG; 0 derives one from the wall clock.
	TokenSeed uint64
	// RateLimit is the per-tenant sustained submit rate (requests/second)
	// enforced with a token bucket; <= 0 disables gateway rate limiting.
	// Over-rate submits get 429 with a Retry-After header before the body
	// is even read.
	RateLimit float64
	// RateBurst is the token-bucket depth (<= 0 defaults to ~2s of
	// RateLimit, minimum 1).
	RateBurst int
}

// Gateway is the chased HTTP/JSON front-end: submit, poll, stream
// progress, fetch results, cancel — the uniform service face over every
// compute kernel. It implements http.Handler.
//
//	POST /v1/login            {"user": "who@domain"} -> {"token": ...}
//	POST /v1/jobs             api.JobRequest -> 202 api.SubmitResponse
//	GET  /v1/jobs             [api.JobStatus, ...]
//	GET  /v1/jobs/{id}        api.JobStatus
//	GET  /v1/jobs/{id}/events NDJSON stream of api.JobStatus until terminal
//	GET  /v1/jobs/{id}/result api.ResultEnvelope (409 until terminal)
//	POST /v1/jobs/{id}/cancel {"id": ..., "cancelled": bool}
//	POST /v1/datasets         raw CDS1 bytes -> 201 dataset.Info (server ids)
//	PUT  /v1/datasets/{id}    raw CDS1 bytes -> 201 dataset.Info (id verified)
//	GET  /v1/datasets         [dataset.Info, ...]
//	GET  /v1/datasets/{id}    raw CDS1 bytes
//	GET  /v1/kinds            [kind, ...]
//	GET  /healthz             liveness + job count
//	GET  /metricz             text metrics (internal/metrics counters)
//
// The reused internal/auth federation runs on a virtual clock; the gateway
// pins that clock to wall-elapsed time under a mutex, so token expiry
// behaves like real time while the federation stays single-threaded.
//
// Authentication model: the federation simulates CILogon identity
// claiming — /v1/login vouches that the identity's domain has a
// registered provider, it does not verify a credential. Ownership
// scoping therefore isolates cooperating tenants (and accidents), not a
// malicious caller who asserts someone else's identity; real deployments
// would swap the login handler for an actual SSO exchange.
type Gateway struct {
	runner  *Runner
	mux     *http.ServeMux
	poll    time.Duration
	anon    bool
	limiter *rateLimiter // nil when rate limiting is off

	aclk *wallClock
	fed  *auth.Federation
}

// NewGateway builds a Gateway over runner.
func NewGateway(runner *Runner, opts GatewayOptions) *Gateway {
	aclk := newWallClock()
	seed := opts.TokenSeed
	if seed == 0 {
		// Token ids must not be guessable from process start time.
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		} else {
			seed = uint64(time.Now().UnixNano())
		}
	}
	fed := auth.NewFederation(aclk.clock, opts.TokenTTL, seed)
	for domain, name := range opts.Providers {
		fed.RegisterProvider(name, domain)
	}
	poll := opts.PollInterval
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	g := &Gateway{
		runner: runner,
		mux:    http.NewServeMux(),
		poll:   poll,
		anon:   opts.AllowAnonymous,
		aclk:   aclk,
		fed:    fed,
	}
	if opts.RateLimit > 0 {
		g.limiter = newRateLimiter(opts.RateLimit, opts.RateBurst)
	}
	g.mux.HandleFunc("POST /v1/login", g.handleLogin)
	g.mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	g.mux.HandleFunc("GET /v1/jobs", g.handleList)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleStatus)
	g.mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleEvents)
	g.mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	g.mux.HandleFunc("POST /v1/jobs/{id}/cancel", g.handleCancel)
	g.mux.HandleFunc("POST /v1/datasets", g.handleDatasetPost)
	g.mux.HandleFunc("PUT /v1/datasets/{id}", g.handleDatasetPut)
	g.mux.HandleFunc("GET /v1/datasets", g.handleDatasetList)
	g.mux.HandleFunc("GET /v1/datasets/{id}", g.handleDatasetGet)
	g.mux.HandleFunc("DELETE /v1/datasets/{id}", g.handleDatasetDelete)
	g.mux.HandleFunc("GET /v1/kinds", g.handleKinds)
	g.mux.HandleFunc("GET /v1/nodes", g.handleNodes)
	g.mux.HandleFunc("POST /v1/nodes/{name}/drain", g.handleNodeDrain)
	g.mux.HandleFunc("POST /v1/nodes/{name}/restore", g.handleNodeRestore)
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /metricz", g.handleMetrics)
	return g
}

// ServeHTTP dispatches to the gateway's routes.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Request-body caps: the schema layer bounds what a request may make the
// service allocate, but json decoding allocates while parsing, so the
// byte stream itself must be bounded first. maxSubmitBytes fits the
// largest valid inline volume (maxVoxels floats) even at full ~16-byte
// JSON precision per value.
const (
	maxSubmitBytes = 1536 << 20
	maxLoginBytes  = 4 << 10
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSecs renders a backoff as whole seconds for the Retry-After
// header (rounded up, minimum 1 — the header has no sub-second form).
func retryAfterSecs(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// authenticate resolves the request's identity: a Bearer token validated
// against the federation, or "anonymous" when allowed.
func (g *Gateway) authenticate(r *http.Request) (string, error) {
	h := r.Header.Get("Authorization")
	if h == "" {
		if g.anon {
			return "anonymous", nil
		}
		return "", errors.New("missing Authorization: Bearer <token> header")
	}
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok {
		return "", errors.New("malformed Authorization header, want Bearer <token>")
	}
	g.aclk.Lock()
	defer g.aclk.Unlock()
	id, err := g.fed.Validate(auth.Token(tok))
	if err != nil {
		return "", err
	}
	return id.User, nil
}

func (g *Gateway) handleLogin(w http.ResponseWriter, r *http.Request) {
	var body struct {
		User string `json:"user"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLoginBytes)).Decode(&body); err != nil || body.User == "" {
		writeErr(w, http.StatusBadRequest, "body must be {\"user\": \"who@domain\"}")
		return
	}
	g.aclk.Lock()
	tok, err := g.fed.Login(body.User)
	g.aclk.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"token": string(tok), "user": body.User})
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	owner, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	// Rate limit before reading the body: an over-rate tenant costs the
	// gateway a map lookup, not a JSON decode.
	if g.limiter != nil {
		if ok, wait := g.limiter.allow(owner, time.Now()); !ok {
			g.runner.countTenant("submits_rate_limited", owner)
			w.Header().Set("Retry-After", retryAfterSecs(wait))
			writeErr(w, http.StatusTooManyRequests,
				"submit rate limit exceeded for %s; retry after %v", owner, wait)
			return
		}
	}
	var req api.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	st, err := g.runner.Submit(&req, owner)
	if err != nil {
		var ov *OverloadError
		if errors.As(err, &ov) {
			// Admission shed: explicit backpressure, not an error the client
			// did anything wrong to earn. Retry-After tells it when the
			// queue is expected to have drained.
			w.Header().Set("Retry-After", retryAfterSecs(ov.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		code := http.StatusInternalServerError
		if errors.Is(err, api.ErrInvalid) {
			code = http.StatusBadRequest
		} else if errors.Is(err, ErrClosed) {
			code = http.StatusServiceUnavailable
		} else if errors.Is(err, sched.ErrUnschedulable) || errors.Is(err, sched.ErrQuotaExceeded) ||
			errors.Is(err, sched.ErrNoReplicas) {
			// The request is well-formed but the fabric cannot admit it.
			code = http.StatusConflict
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{ID: st.ID, State: st.State})
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	caller, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	// Same ownership scope as the per-job endpoints: an identity lists
	// its own jobs plus anonymous-owned ones.
	all := g.runner.List()
	mine := make([]api.JobStatus, 0, len(all))
	for _, st := range all {
		if visibleTo(st, caller) {
			mine = append(mine, st)
		}
	}
	writeJSON(w, http.StatusOK, mine)
}

// anonOwner is the identity recorded on jobs submitted without a token.
const anonOwner = "anonymous"

// visibleTo reports whether a job is in the caller's ownership scope:
// jobs submitted by a federated identity are visible only to that
// identity, even when the gateway also accepts anonymous traffic;
// anonymous-owned jobs are open.
func visibleTo(st api.JobStatus, caller string) bool {
	return st.Owner == "" || st.Owner == anonOwner || st.Owner == caller
}

// jobForCaller authenticates the request and resolves the {id} job
// (falling back to the persisted store record for jobs evicted from the
// in-memory index), enforcing ownership. It writes the error reply
// itself and reports ok=false on any failure.
func (g *Gateway) jobForCaller(w http.ResponseWriter, r *http.Request) (api.JobStatus, bool) {
	caller, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return api.JobStatus{}, false
	}
	id := r.PathValue("id")
	st, ok := g.runner.Lookup(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return api.JobStatus{}, false
	}
	if !visibleTo(st, caller) {
		writeErr(w, http.StatusForbidden, "job %s belongs to another identity", id)
		return api.JobStatus{}, false
	}
	return st, true
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := g.jobForCaller(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams NDJSON status snapshots: one line per observed
// change, ending with the terminal snapshot.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := g.jobForCaller(w, r)
	if !ok {
		return
	}
	id := st.ID
	// Count the live stream so LeakCheck can assert every one exited; the
	// decrement is deferred, so a slow or disconnecting consumer can never
	// leave the count (or the goroutine serving it) behind.
	g.runner.streamAdd(1)
	defer g.runner.streamAdd(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	last := api.JobStatus{}
	for {
		if st != last {
			if err := enc.Encode(st); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			last = st
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(g.poll):
		}
		st, ok = g.runner.Lookup(id)
		if !ok {
			return
		}
	}
}

func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := g.jobForCaller(w, r)
	if !ok {
		return
	}
	if !st.State.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", st.ID, st.State)
		return
	}
	raw, _, _ := g.runner.Result(st.ID)
	writeJSON(w, http.StatusOK, api.ResultEnvelope{
		ID: st.ID, Kind: st.Kind, State: st.State, Error: st.Error, Result: raw,
	})
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := g.jobForCaller(w, r)
	if !ok {
		return
	}
	cancelled := g.runner.Cancel(st.ID)
	writeJSON(w, http.StatusOK, map[string]any{"id": st.ID, "cancelled": cancelled})
}

// readDatasetBody slurps an upload capped at the codec's own maximum, so a
// client cannot stream unbounded bytes at the gateway.
func readDatasetBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, dataset.MaxEncodedBytes))
}

// storeDataset validates + stores an upload and writes the reply. wantID,
// when non-empty, must match the content's actual hash (the PUT contract:
// the path id is a claim the server verifies).
func (g *Gateway) storeDataset(w http.ResponseWriter, r *http.Request, wantID string) {
	owner, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	enc, err := readDatasetBody(w, r)
	if err != nil {
		// Only an actual cap overflow is 413; a short or broken body is
		// the client's 400, not a size problem.
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeErr(w, code, "dataset body: %v", err)
		return
	}
	if wantID != "" && dataset.ID(enc) != wantID {
		writeErr(w, http.StatusBadRequest,
			"content hashes to %s, not the id in the request path", dataset.ID(enc))
		return
	}
	info, err := g.runner.Datasets().Put(enc, owner)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, dataset.ErrTooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleDatasetPost uploads a dataset; the server computes and returns its
// content address.
func (g *Gateway) handleDatasetPost(w http.ResponseWriter, r *http.Request) {
	g.storeDataset(w, r, "")
}

// handleDatasetPut uploads a dataset at a claimed id, verified server-side.
func (g *Gateway) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !dataset.ValidID(id) {
		writeErr(w, http.StatusBadRequest, "malformed dataset id %q", id)
		return
	}
	g.storeDataset(w, r, id)
}

// handleDatasetGet streams a dataset's raw encoding back to its owners
// (everyone who put the content — dataset.Manager.VisibleTo is the single
// ownership predicate, shared with the submit-time ref check).
func (g *Gateway) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	caller, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	id := r.PathValue("id")
	// Missing and forbidden collapse into one reply: ids are content
	// hashes, so a distinguishable 403 would confirm to a non-owner that
	// someone uploaded those exact bytes (the same non-oracle rule the
	// submit-time ref check follows).
	if !g.runner.Datasets().VisibleTo(id, caller) {
		writeErr(w, http.StatusNotFound, "unknown dataset %q", id)
		return
	}
	enc, err := g.runner.Datasets().GetBytes(id)
	if errors.Is(err, dataset.ErrNotFound) {
		// Deleted between the visibility check and the read: same 404 as
		// never-existed, keeping the endpoint non-oracle.
		writeErr(w, http.StatusNotFound, "unknown dataset %q", id)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(enc)))
	w.Write(enc)
}

// handleDatasetDelete drops the caller's ownership claim — the
// reclamation path that keeps upload-and-forget from growing the store
// forever. The dataset's bytes are removed when the last claim drops
// (deferred while a running job still pins them). Missing, forbidden, and
// claim-free ids all produce the same 404 (non-oracle, as everywhere).
func (g *Gateway) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	caller, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	id := r.PathValue("id")
	if !g.runner.Datasets().VisibleTo(id, caller) || !g.runner.Datasets().Drop(id, caller) {
		writeErr(w, http.StatusNotFound, "unknown dataset %q", id)
		return
	}
	_, remains := g.runner.Datasets().Stat(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": !remains})
}

// handleDatasetList lists the caller's visible datasets.
func (g *Gateway) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	caller, err := g.authenticate(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	ds := g.runner.Datasets()
	all := ds.List()
	mine := make([]dataset.Info, 0, len(all))
	for _, info := range all {
		if !ds.VisibleTo(info.ID, caller) {
			continue
		}
		// A co-owner sees their own identity on the entry, not the first
		// uploader's — content addressing must not leak who else has it.
		// A caller who merely reaches an open dataset sees a neutral
		// owner, not a fabricated claim.
		if info.Owner != "" && info.Owner != anonOwner && info.Owner != caller {
			if ds.IsOwner(info.ID, caller) {
				info.Owner = caller
			} else {
				info.Owner = ""
			}
		}
		mine = append(mine, info)
	}
	writeJSON(w, http.StatusOK, mine)
}

func (g *Gateway) handleKinds(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.runner.reg.Kinds())
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": g.runner.Count()})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, g.runner.MetricsText())
}

// --- Cluster-mode node endpoints -------------------------------------------

func (g *Gateway) handleNodes(w http.ResponseWriter, r *http.Request) {
	if _, err := g.authenticate(r); err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	if !g.runner.ClusterMode() {
		writeErr(w, http.StatusConflict, "not a cluster deployment")
		return
	}
	writeJSON(w, http.StatusOK, g.runner.Nodes())
}

func (g *Gateway) handleNodeDrain(w http.ResponseWriter, r *http.Request) {
	g.nodeLifecycle(w, r, g.runner.DrainNode, "draining")
}

func (g *Gateway) handleNodeRestore(w http.ResponseWriter, r *http.Request) {
	g.nodeLifecycle(w, r, g.runner.RestoreNode, "restoring")
}

func (g *Gateway) nodeLifecycle(w http.ResponseWriter, r *http.Request, op func(string) error, verb string) {
	if _, err := g.authenticate(r); err != nil {
		writeErr(w, http.StatusUnauthorized, "%v", err)
		return
	}
	if !g.runner.ClusterMode() {
		writeErr(w, http.StatusConflict, "not a cluster deployment")
		return
	}
	name := r.PathValue("name")
	if err := op(name); err != nil {
		writeErr(w, http.StatusNotFound, "%s node %q: %v", verb, name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": name, "ok": true})
}
