package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/connect"
	"chaseci/internal/dataset"
	"chaseci/internal/ffn"
	"chaseci/internal/merra"
	"chaseci/internal/sim"
	"chaseci/internal/workflow"
)

// DefaultRegistry returns a registry with the built-in handler for every
// api kind — the uniform front-end over the heterogeneous kernels.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(api.KindSegment, SegmentHandler)
	r.Register(api.KindLabel, LabelHandler)
	r.Register(api.KindIVT, IVTHandler)
	r.Register(api.KindTrain, TrainHandler)
	r.Register(api.KindTrainDist, TrainDistHandler)
	r.Register(api.KindSweep, SweepHandler)
	r.Register(api.KindWorkflow, WorkflowHandler)
	r.Register(api.KindPipeline, PipelineHandler)
	return r
}

// synthIVTVolume materializes the synthetic IVT volume behind a spec,
// reporting per-step progress under the given stage name — the single
// synthesis path shared by every kind that accepts a synth source.
func synthIVTVolume(ctx context.Context, jc *JobContext, sy *api.SynthSpec, stage string) (*merra.Field3D, error) {
	g := merra.Grid{NLon: sy.NLon, NLat: sy.NLat, NLev: sy.NLev}
	gen := merra.NewGenerator(g, sy.Seed)
	jc.Progress(0, int64(sy.Steps), stage)
	return merra.IVTVolumeCtx(ctx, gen, merra.PressureLevels(g.NLev), sy.Start, sy.Steps,
		func(done, total int) { jc.Progress(int64(done), int64(total), stage) })
}

// sourceVolume materializes a job's input volume: a resolve of its dataset
// ref, a copy of the inline data, or the synthetic IVT volume (time-major,
// like ffn.Volume). Every form yields a private buffer the handler may
// mutate (Normalize works in place).
func sourceVolume(ctx context.Context, jc *JobContext, src *api.VolumeSource) (*ffn.Volume, error) {
	if src.Ref != "" {
		jc.Progress(0, 1, "resolve")
		blob, err := jc.Datasets().Resolve(src.Ref)
		if err != nil {
			return nil, err
		}
		jc.Progress(1, 1, "resolve")
		return &ffn.Volume{D: blob.D, H: blob.H, W: blob.W, Data: blob.CloneData()}, nil
	}
	if src.Synth != nil {
		vol, err := synthIVTVolume(ctx, jc, src.Synth, "synthesize")
		if err != nil {
			return nil, err
		}
		return &ffn.Volume{D: src.Synth.Steps, H: src.Synth.NLat, W: src.Synth.NLon, Data: vol.Data}, nil
	}
	v := ffn.NewVolume(src.D, src.H, src.W)
	copy(v.Data, src.Data)
	return v, nil
}

// thresholdVolume builds the binary mask raw >= threshold.
func thresholdVolume(raw *ffn.Volume, threshold float32) *ffn.Volume {
	out := ffn.NewVolume(raw.D, raw.H, raw.W)
	for i, v := range raw.Data {
		if v >= threshold {
			out.Data[i] = 1
		}
	}
	return out
}

// netConfig maps an optional api.NetConfig onto ffn defaults.
func netConfig(nc *api.NetConfig) ffn.Config {
	cfg := ffn.DefaultConfig()
	if nc == nil {
		return cfg
	}
	if nc.FOV != [3]int{} {
		cfg.FOV = nc.FOV
	}
	if nc.Features > 0 {
		cfg.Features = nc.Features
	}
	if nc.Modules > 0 {
		cfg.Modules = nc.Modules
	}
	if nc.MoveStep != [3]int{} {
		cfg.MoveStep = nc.MoveStep
	}
	if nc.MoveProb > 0 {
		cfg.MoveProb = nc.MoveProb
	}
	if nc.SegmentProb > 0 {
		cfg.SegmentProb = nc.SegmentProb
	}
	if nc.FloodBatch > 0 {
		cfg.FloodBatch = nc.FloodBatch
	}
	if nc.Precision != "" {
		cfg.Precision = ffn.Precision(nc.Precision)
	}
	return cfg
}

// SegmentHandler runs FFN flood-fill segmentation: optional pretraining on
// the thresholded source, seed selection, then SegmentCtx. A cancelled
// flood still returns the partial mask statistics alongside ctx.Err().
func SegmentHandler(jc *JobContext) (any, error) {
	spec := jc.Request().Segment
	raw, err := sourceVolume(jc.Ctx(), jc, &spec.Source)
	if err != nil {
		return nil, err
	}
	cfg := netConfig(spec.Net)
	net, err := ffn.NewNetwork(cfg, spec.NetSeed)
	if err != nil {
		return nil, err
	}

	// Labels and seeds come from the raw field, before normalization.
	var labels *ffn.Volume
	if spec.TrainSteps > 0 {
		labels = thresholdVolume(raw, spec.Threshold)
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		stride := spec.SeedStride
		if stride == [3]int{} {
			stride = cfg.FOV
		}
		seeds = ffn.GridSeeds(raw, cfg.FOV, stride, spec.Threshold)
	}
	image := raw.Normalize()

	res := api.SegmentResult{}
	if spec.TrainSteps > 0 {
		jc.Progress(0, int64(spec.TrainSteps), "train")
		tr := ffn.NewTrainer(net, 0.05, 0.9, spec.NetSeed+1)
		losses, err := tr.TrainOnVolumeCtx(jc.Ctx(), image, labels, spec.TrainSteps,
			func(step int) { jc.Progress(int64(step), int64(spec.TrainSteps), "train") })
		res.TrainSteps = len(losses)
		if len(losses) > 0 {
			res.TrainLossHead = ffn.MeanTail(losses[:(len(losses)+4)/5], 1)
			res.TrainLossTail = ffn.MeanTail(losses, 0.2)
		}
		if err != nil {
			// Cancelled (or failed) mid-training: keep the partial
			// training stats in the result, matching the flood phase.
			return res, err
		}
	}

	jc.Progress(0, 0, "segment")
	mask, stats, segErr := net.SegmentCtx(jc.Ctx(), image, seeds, spec.MaxSteps,
		func(steps int) { jc.Progress(int64(steps), 0, "segment") })
	res.Steps = stats.Steps
	res.Moves = stats.Moves
	res.SeedsUsed = stats.SeedsUsed
	res.MaskVoxels = stats.MaskVoxels
	res.VoxelsTotal = stats.VoxelsTotal
	if spec.ReturnMask {
		res.D, res.H, res.W = mask.D, mask.H, mask.W
		if jc.RefMode() && segErr == nil {
			info, err := jc.Datasets().PutMask(mask.D, mask.H, mask.W, mask.Data, jc.Owner())
			if err != nil {
				return res, err
			}
			res.MaskRef = info.ID
		} else {
			// Inline (and cancelled-partial) masks travel 1-bit packed:
			// ~32x smaller on the wire than the float array they replace.
			res.MaskBits = dataset.PackBits(mask.Data)
		}
	}
	return res, segErr
}

// LabelHandler thresholds the source and runs CONNECT labelling.
func LabelHandler(jc *JobContext) (any, error) {
	spec := jc.Request().Label
	raw, err := sourceVolume(jc.Ctx(), jc, &spec.Source)
	if err != nil {
		return nil, err
	}
	bin := thresholdVolume(raw, spec.Threshold)
	vol := connect.FromMask(bin.D, bin.H, bin.W, bin.Data)
	conn := connect.Conn26
	if spec.Connectivity == 6 {
		conn = connect.Conn6
	}
	jc.Progress(0, int64(vol.T), "label")
	result, err := connect.LabelCtx(jc.Ctx(), vol, conn, spec.MinVoxels,
		func(done, total int) { jc.Progress(int64(done), int64(total), "label") })
	if err != nil {
		return nil, err
	}
	stats := connect.Summarize(result)
	res := api.LabelResult{
		Objects:      stats.Objects,
		TotalVoxels:  stats.TotalVoxels,
		MeanDuration: stats.MeanDuration,
		MaxDuration:  stats.MaxDuration,
		MeanVoxels:   stats.MeanVoxels,
	}
	maxObjects := spec.MaxObjects
	if maxObjects == 0 {
		maxObjects = 20
	}
	for _, o := range result.Objects {
		if len(res.Top) >= maxObjects {
			break
		}
		res.Top = append(res.Top, api.ObjectSummary{
			ID: o.ID, Voxels: o.Voxels,
			Genesis: o.Genesis, Termination: o.Termination,
			PeakArea: o.PeakArea,
		})
	}
	return res, nil
}

// IVTHandler derives the IVT volume and summarizes each time slice.
func IVTHandler(jc *JobContext) (any, error) {
	spec := jc.Request().IVT
	sy := spec.Synth
	vol, err := synthIVTVolume(jc.Ctx(), jc, &sy, "ivt")
	if err != nil {
		return nil, err
	}
	hw := sy.NLon * sy.NLat
	res := api.IVTResult{Steps: sy.Steps, PerStep: make([]api.IVTStep, sy.Steps)}
	above := 0
	for t := 0; t < sy.Steps; t++ {
		slice := vol.Data[t*hw : (t+1)*hw]
		var sum float64
		var mx float32
		for _, v := range slice {
			sum += float64(v)
			if v > mx {
				mx = v
			}
			if spec.Threshold > 0 && v >= spec.Threshold {
				above++
			}
		}
		res.PerStep[t] = api.IVTStep{Mean: sum / float64(hw), Max: float64(mx)}
		res.Mean += sum / float64(hw)
		if float64(mx) > res.Max {
			res.Max = float64(mx)
		}
	}
	res.Mean /= float64(sy.Steps)
	if spec.Threshold > 0 {
		res.Coverage = float64(above) / float64(sy.Steps*hw)
	}
	if jc.RefMode() {
		// Offload the derived field: downstream segment/label jobs submit
		// the ref and the volume never crosses the gateway.
		info, err := jc.Datasets().PutVolume(sy.Steps, sy.NLat, sy.NLon, vol.Data, jc.Owner())
		if err != nil {
			return res, err
		}
		res.VolumeRef = info.ID
	}
	return res, nil
}

// TrainHandler runs FFN SGD training against the thresholded source. A
// cancelled run reports the losses of the steps actually taken. With
// HoldoutSteps > 0 the trailing time slices are withheld from training and
// the trained model is scored on them (precision/recall/F1/IoU) — the
// evaluation unit sweep jobs fan out over.
func TrainHandler(jc *JobContext) (any, error) {
	spec := jc.Request().Train
	raw, err := sourceVolume(jc.Ctx(), jc, &spec.Source)
	if err != nil {
		return nil, err
	}
	labels := thresholdVolume(raw, spec.Threshold)
	cfg := netConfig(spec.Net)

	holdout := spec.HoldoutSteps
	var testSeeds [][3]int
	if holdout > 0 {
		if holdout >= raw.D {
			return nil, fmt.Errorf("%w: holdout of %d steps leaves no training data in a %d-step volume",
				api.ErrInvalid, holdout, raw.D)
		}
		// Seeds come from the raw held-out slab, before normalization (the
		// same convention SegmentHandler uses for its seed threshold).
		_, _, testRaw, _ := ffn.Split(raw, labels, raw.D-holdout)
		testSeeds = ffn.GridSeeds(testRaw, cfg.FOV, [3]int{1, 4, 4}, spec.Threshold)
	}
	image := raw.Normalize()
	trainImg, trainLbl := image, labels
	var testImg, testLbl *ffn.Volume
	if holdout > 0 {
		trainImg, trainLbl, testImg, testLbl = ffn.Split(image, labels, raw.D-holdout)
	}

	net, err := ffn.NewNetwork(cfg, spec.NetSeed)
	if err != nil {
		return nil, err
	}
	lr, momentum := spec.LR, spec.Momentum
	if lr == 0 {
		lr = 0.05
	}
	if momentum == 0 {
		momentum = 0.9
	}
	tr := ffn.NewTrainer(net, lr, momentum, spec.SampleSeed)
	jc.Progress(0, int64(spec.Steps), "train")
	losses, trainErr := tr.TrainOnVolumeCtx(jc.Ctx(), trainImg, trainLbl, spec.Steps,
		func(step int) { jc.Progress(int64(step), int64(spec.Steps), "train") })
	if len(losses) == 0 {
		return nil, trainErr
	}
	res := api.TrainResult{
		Steps:    len(losses),
		LossHead: ffn.MeanTail(losses[:(len(losses)+4)/5], 1),
		LossTail: ffn.MeanTail(losses, 0.2),
	}
	if trainErr != nil || holdout == 0 {
		return res, trainErr
	}

	jc.Progress(0, 0, "validate")
	mask, _, segErr := net.SegmentCtx(jc.Ctx(), testImg, testSeeds, 0, nil)
	if segErr != nil {
		// An aborted flood must never score as a legitimate (if terrible)
		// model — fail the candidate instead of reporting a zero mask.
		return res, fmt.Errorf("held-out segmentation: %w", segErr)
	}
	prec, rec := ffn.PrecisionRecall(mask, testLbl)
	res.HoldoutSteps = holdout
	res.Precision, res.Recall = prec, rec
	if prec+rec > 0 {
		res.F1 = 2 * prec * rec / (prec + rec)
	}
	res.IoU = ffn.IoU(mask, testLbl)
	return res, nil
}

// WorkflowHandler executes a measured virtual-time DAG on a private clock.
// Virtual durations cost no wall time, so even multi-hour plans finish in
// microseconds; cancellation is checked between events.
func WorkflowHandler(jc *JobContext) (any, error) {
	spec := jc.Request().Workflow
	clk := sim.NewClock()
	wf := workflow.New(spec.Name, clk)
	for _, st := range spec.Steps {
		st := st
		err := wf.AddStep(workflow.StepSpec{
			Name:      st.Name,
			DependsOn: st.DependsOn,
			Run: func(ctx *workflow.Ctx) {
				for k, v := range st.Measurements {
					ctx.Record(k, v)
				}
				ctx.After(time.Duration(st.DurationMS)*time.Millisecond, func() {
					var err error
					if st.Fail != "" {
						err = errors.New(st.Fail)
					}
					ctx.Done(err)
				})
			},
		})
		if err != nil {
			return nil, err
		}
	}
	jc.Progress(0, int64(len(spec.Steps)), "workflow")
	report, execErr := wf.ExecuteCtx(jc.Ctx())

	res := api.WorkflowResult{Workflow: report.Workflow, Failed: wf.Failed()}
	completed := int64(0)
	for _, s := range report.Steps {
		res.Steps = append(res.Steps, api.WorkflowStepResult{
			Name:         s.Name,
			Status:       s.Status.String(),
			DurationMS:   s.Duration.Milliseconds(),
			Measurements: s.Measurements,
		})
		if s.Status == workflow.StatusSucceeded || s.Status == workflow.StatusFailed {
			completed++
		}
	}
	res.TotalMS = report.Total.Milliseconds()
	res.Table = report.RenderTable()
	jc.Progress(completed, int64(len(spec.Steps)), "workflow")
	if execErr != nil {
		return res, execErr
	}
	if wf.Failed() {
		for _, s := range report.Steps {
			if s.Status == workflow.StatusFailed {
				return res, fmt.Errorf("workflow step %q failed: %v", s.Name, wf.StepError(s.Name))
			}
		}
		return res, errors.New("workflow failed")
	}
	return res, nil
}
