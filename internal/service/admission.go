package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded marks a submit refused by admission control: the tenant's
// pending queue (or the global one) is at capacity. The gateway maps it to
// 429 with a Retry-After header — explicit backpressure instead of
// unbounded queue growth.
var ErrOverloaded = errors.New("service: overloaded")

// OverloadError carries the shed decision's detail: which bound tripped
// and how long the caller should back off before retrying.
type OverloadError struct {
	Tenant     string
	Pending    int
	Limit      int
	Scope      string // "tenant" or "global"
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	who := e.Tenant
	if who == "" {
		who = anonOwner
	}
	return fmt.Sprintf("service: %s pending queue full for %s (%d/%d queued); retry after %v",
		e.Scope, who, e.Pending, e.Limit, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// Admission defaults: generous enough that well-behaved interactive use
// never notices them, small enough that a flood cannot grow the process
// without bound before shedding starts.
const (
	defaultMaxPendingPerTenant = 1024
	defaultMaxPending          = 8192
	defaultRetryAfter          = time.Second
)

// admission is the Runner's bounded-queue bookkeeping: pending-job counts
// per tenant and in total, checked and reserved atomically at submit. A
// value <= 0 for a bound means unlimited (RunnerConfig maps its 0 to the
// defaults before construction).
type admission struct {
	mu           sync.Mutex
	maxPerTenant int
	maxTotal     int
	weights      map[string]int
	pending      map[string]int
	total        int
	shed         int64
}

func newAdmission(maxPerTenant, maxTotal int, weights map[string]int) *admission {
	w := make(map[string]int, len(weights))
	for k, v := range weights {
		if v > 0 {
			w[k] = v
		}
	}
	return &admission{
		maxPerTenant: maxPerTenant,
		maxTotal:     maxTotal,
		weights:      w,
		pending:      make(map[string]int),
	}
}

// weight resolves a tenant's fair-queue share (default 1).
func (a *admission) weight(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w, ok := a.weights[tenant]; ok {
		return w
	}
	return 1
}

// tryReserve atomically checks the bounds and counts one pending job for
// tenant, or returns an *OverloadError naming the bound that tripped.
func (a *admission) tryReserve(tenant string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxPerTenant > 0 && a.pending[tenant] >= a.maxPerTenant {
		a.shed++
		return &OverloadError{
			Tenant: tenant, Pending: a.pending[tenant], Limit: a.maxPerTenant,
			Scope: "tenant", RetryAfter: defaultRetryAfter,
		}
	}
	if a.maxTotal > 0 && a.total >= a.maxTotal {
		a.shed++
		return &OverloadError{
			Tenant: tenant, Pending: a.total, Limit: a.maxTotal,
			Scope: "global", RetryAfter: defaultRetryAfter,
		}
	}
	a.pending[tenant]++
	a.total++
	return nil
}

// add adjusts tenant's pending count without a bound check: -1 when a job
// leaves the queue (dispatch, cancel, drain), +1 when a cluster requeue
// puts an already-admitted job back.
func (a *admission) add(tenant string, d int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.pending[tenant] + d
	if n <= 0 {
		delete(a.pending, tenant) // keep the map bounded by live tenants
	} else {
		a.pending[tenant] = n
	}
	a.total += d
	if a.total < 0 {
		a.total = 0
	}
}

// tenantPending returns tenant's current pending count.
func (a *admission) tenantPending(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pending[tenant]
}

// totalPending returns the global pending count.
func (a *admission) totalPending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// shedCount returns how many submits admission has refused.
func (a *admission) shedCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}

// maxTenantSeries caps per-tenant metric label cardinality: beyond this
// many distinct tenants, further ones aggregate into tenant="other" so a
// million-identity tenant space cannot grow the metrics registry without
// bound.
const maxTenantSeries = 64

// tenantLabel normalizes the metrics label for an owner, folding the
// cardinality tail into "other". mclk held (the tenantSeen map is part of
// the metrics state).
func (r *Runner) tenantLabelLocked(owner string) string {
	if owner == "" {
		owner = anonOwner
	}
	if r.tenantSeen[owner] {
		return owner
	}
	if len(r.tenantSeen) >= maxTenantSeries {
		return "other"
	}
	r.tenantSeen[owner] = true
	return owner
}
