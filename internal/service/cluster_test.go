package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/cluster"
	"chaseci/internal/dataset"
	"chaseci/internal/gpusim"
	"chaseci/internal/netsim"
	"chaseci/internal/parallel"
	"chaseci/internal/queue"
	"chaseci/internal/sched"
)

// twoNodeFabric builds the smallest interesting fabric: two sites, one
// FIONA8 + OSD each, replication factor 2 — so every dataset is
// replica-local on both nodes and killing either leaves a full copy.
func twoNodeFabric(t *testing.T) *sched.Fabric {
	t.Helper()
	f := sched.NewFabric(sched.FabricConfig{Replicas: 2})
	f.AddSite("ucsd")
	f.AddSite("sdsu")
	f.AddLink("ucsd", "sdsu", netsim.Gbps(40), 2*time.Millisecond)
	for i, site := range []string{"ucsd", "sdsu"} {
		err := f.AddNode(sched.NodeSpec{
			Name:     fmt.Sprintf("node-%d", i),
			Site:     site,
			Capacity: cluster.FIONA8Capacity(),
			Model:    gpusim.Powered1080Ti(),
			OSD:      "osd-" + site,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// newClusterFixture is newGWFixture over a cluster runner.
func newClusterFixture(t *testing.T, reg *Registry, fab *sched.Fabric) *gwFixture {
	t.Helper()
	runner := NewClusterRunner(reg, queue.NewStore(), 2, fab)
	t.Cleanup(runner.Close)
	gw := NewGateway(runner, GatewayOptions{AllowAnonymous: true, PollInterval: 2 * time.Millisecond})
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)
	return &gwFixture{t: t, runner: runner, srv: srv}
}

// clusterSegmentVolume is a small deterministic field with real structure.
func clusterSegmentVolume() (d, h, w int, data []float32) {
	d, h, w = 8, 12, 12
	data = make([]float32, d*h*w)
	for i := range data {
		data[i] = float32((i*7)%19) / 19
	}
	return
}

func refSegmentRequest(ref string) *api.JobRequest {
	return &api.JobRequest{
		Kind:       api.KindSegment,
		ResultMode: api.ResultModeRef,
		Segment: &api.SegmentSpec{
			Source:    api.VolumeSource{Ref: ref},
			Threshold: 0.5,
		},
	}
}

// baselineSegment runs the same request on a plain single-node runner and
// returns its result JSON — the bit-exactness reference.
func baselineSegment(t *testing.T, enc []byte) json.RawMessage {
	t.Helper()
	r := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	defer r.Close()
	info, err := r.Datasets().Put(enc, "anonymous")
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Submit(refSegmentRequest(info.ID), "anonymous")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := r.Status(st.ID)
		if cur.State.Terminal() {
			if cur.State != api.StateSucceeded {
				t.Fatalf("baseline: %s (%s)", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("baseline timeout")
		}
		time.Sleep(time.Millisecond)
	}
	raw, _, _ := r.Result(st.ID)
	return raw
}

// TestClusterReplicaLocalPlacementE2E is the PR's acceptance path: a
// ref-mode segment job submitted over HTTP lands on a node holding an OSD
// replica of its input, the status reports the decision, and the result is
// bit-identical to the single-node baseline.
func TestClusterReplicaLocalPlacementE2E(t *testing.T) {
	d, h, w, data := clusterSegmentVolume()
	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineSegment(t, enc)

	f := newClusterFixture(t, DefaultRegistry(), twoNodeFabric(t))
	info := f.putDataset(enc)
	st, env := f.submitAndWait(refSegmentRequest(info.ID))
	if st.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Placement == nil {
		t.Fatal("cluster-mode status missing placement")
	}
	if st.Placement.Locality != api.LocalityReplicaLocal {
		t.Fatalf("locality = %q, want %q", st.Placement.Locality, api.LocalityReplicaLocal)
	}
	if st.Placement.Node != "node-0" && st.Placement.Node != "node-1" {
		t.Fatalf("placed on unknown node %q", st.Placement.Node)
	}
	if st.Placement.EstJoules <= 0 {
		t.Fatal("placement missing energy estimate")
	}
	if string(env.Result) != string(want) {
		t.Fatalf("cluster result differs from single-node baseline:\n%s\nvs\n%s", env.Result, want)
	}
	if n := f.runner.Datasets().PinCount(info.ID); n != 0 {
		t.Fatalf("source ref still pinned %d times after terminal job", n)
	}
	assertNoLeaks(t, f.runner)
}

// TestClusterDrainRequeuesBitExact kills the bound node mid-run: the job
// must requeue onto the surviving replica holder and still produce the
// bit-identical result, with the source ref's pins balanced.
func TestClusterDrainRequeuesBitExact(t *testing.T) {
	d, h, w, data := clusterSegmentVolume()
	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineSegment(t, enc)

	// Gate the segment handler: the first run parks on its context (the
	// deterministic "mid-run" window), every later run is the real kernel.
	reg := DefaultRegistry()
	real, _ := reg.Handler(api.KindSegment)
	var runs atomic.Int32
	started := make(chan struct{}, 1)
	reg.Register(api.KindSegment, func(jc *JobContext) (any, error) {
		if runs.Add(1) == 1 {
			started <- struct{}{}
			<-jc.Ctx().Done()
			return nil, jc.Ctx().Err()
		}
		return real(jc)
	})

	f := newClusterFixture(t, reg, twoNodeFabric(t))
	info := f.putDataset(enc)
	var sub api.SubmitResponse
	if resp := f.do("POST", "/v1/jobs", refSegmentRequest(info.ID), &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first run never started")
	}
	var st api.JobStatus
	f.do("GET", "/v1/jobs/"+sub.ID, nil, &st)
	if st.Placement == nil {
		t.Fatal("no placement before drain")
	}
	victim := st.Placement.Node

	if resp := f.do("POST", "/v1/nodes/"+victim+"/drain", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		f.do("GET", "/v1/jobs/"+sub.ID, nil, &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout after drain (state %s)", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Placement == nil || st.Placement.Node == victim {
		t.Fatalf("job did not move off the dead node: %+v", st.Placement)
	}
	if st.Placement.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", st.Placement.Requeues)
	}
	// The surviving OSD holds the only replica now, and the new node hosts
	// it — failover keeps the job replica-local.
	if st.Placement.Locality != api.LocalityReplicaLocal {
		t.Fatalf("post-failover locality = %q", st.Placement.Locality)
	}
	var env api.ResultEnvelope
	f.do("GET", "/v1/jobs/"+sub.ID+"/result", nil, &env)
	if string(env.Result) != string(want) {
		t.Fatalf("post-requeue result differs from baseline:\n%s\nvs\n%s", env.Result, want)
	}
	if n := f.runner.Datasets().PinCount(info.ID); n != 0 {
		t.Fatalf("source ref still pinned %d times after drain/requeue", n)
	}
	assertNoLeaks(t, f.runner)
	// Node inventory reflects the drain.
	var nodes []api.NodeStatus
	f.do("GET", "/v1/nodes", nil, &nodes)
	for _, n := range nodes {
		if n.Name == victim && (n.Ready || n.OSDUp) {
			t.Fatalf("victim still reported up: %+v", n)
		}
	}
	// Restore brings it back schedulable.
	if resp := f.do("POST", "/v1/nodes/"+victim+"/restore", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	f.do("GET", "/v1/nodes", nil, &nodes)
	for _, n := range nodes {
		if n.Name == victim && !n.Ready {
			t.Fatalf("victim not restored: %+v", n)
		}
	}
}

// TestClusterPlacementDeterministicAcrossWorkers pins the determinism
// contract: placement and results are identical whatever
// parallel.SetWorkers says, and repeated submissions of the same request
// against the same cluster state pick the same node.
func TestClusterPlacementDeterministicAcrossWorkers(t *testing.T) {
	d, h, w, data := clusterSegmentVolume()
	enc, err := dataset.EncodeVolume(d, h, w, data)
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetWorkers(parallel.SetWorkers(0))

	var firstNode string
	var firstResult string
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		f := newClusterFixture(t, DefaultRegistry(), twoNodeFabric(t))
		info := f.putDataset(enc)
		st, env := f.submitAndWait(refSegmentRequest(info.ID))
		if st.State != api.StateSucceeded {
			t.Fatalf("workers=%d: %s (%s)", workers, st.State, st.Error)
		}
		if st.Placement == nil {
			t.Fatalf("workers=%d: no placement", workers)
		}
		if firstNode == "" {
			firstNode, firstResult = st.Placement.Node, string(env.Result)
			continue
		}
		if st.Placement.Node != firstNode {
			t.Fatalf("workers=%d: node %q, want %q", workers, st.Placement.Node, firstNode)
		}
		if string(env.Result) != firstResult {
			t.Fatalf("workers=%d: result drifted", workers)
		}
	}
}

// TestClusterSubmitRejections covers the 409 mapping for placement errors.
func TestClusterSubmitRejections(t *testing.T) {
	fab := sched.NewFabric(sched.FabricConfig{
		Replicas:   1,
		OwnerQuota: &cluster.Resources{CPU: 4, Memory: cluster.GB(8), GPUs: 1},
	})
	fab.AddSite("s")
	if err := fab.AddNode(sched.NodeSpec{
		Name: "n0", Site: "s", Capacity: cluster.FIONA8Capacity(),
		Model: gpusim.Powered1080Ti(), OSD: "osd-0",
	}); err != nil {
		t.Fatal(err)
	}
	reg := DefaultRegistry()
	// Park the GPU slot: a handler that blocks until cancelled.
	block := make(chan struct{})
	reg.Register(api.KindSegment, func(jc *JobContext) (any, error) {
		select {
		case <-block:
		case <-jc.Ctx().Done():
		}
		return nil, jc.Ctx().Err()
	})
	f := newClusterFixture(t, reg, fab)
	defer close(block)

	seg := &api.JobRequest{Kind: api.KindSegment, Segment: &api.SegmentSpec{
		Source: api.VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 8)}, Threshold: 0.5,
	}}
	var sub api.SubmitResponse
	if resp := f.do("POST", "/v1/jobs", seg, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	// Second GPU job from the same (anonymous) owner busts the quota -> 409.
	var apiErr api.ErrorResponse
	if resp := f.do("POST", "/v1/jobs", seg, &apiErr); resp.StatusCode != http.StatusConflict {
		t.Fatalf("quota submit status %d (%s)", resp.StatusCode, apiErr.Error)
	}
	if !strings.Contains(apiErr.Error, "quota") {
		t.Fatalf("error = %q", apiErr.Error)
	}
	// A pin to a nonexistent node is unschedulable -> 409.
	pinned := &api.JobRequest{Kind: api.KindLabel, Label: &api.LabelSpec{
		Source: api.VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 8)}, Threshold: 0.5,
	}, Placement: &api.PlacementSpec{Node: "ghost"}}
	if resp := f.do("POST", "/v1/jobs", pinned, &apiErr); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pinned submit status %d (%s)", resp.StatusCode, apiErr.Error)
	}
	// Rejected jobs must not leak into the index.
	var list []api.JobStatus
	f.do("GET", "/v1/jobs", nil, &list)
	if len(list) != 1 {
		t.Fatalf("job list = %d entries, want 1", len(list))
	}
}

// TestQueueDepthGauge pins the new pending metrics on a single-node runner:
// submits park behind a full worker pool, the gauges rise, and they return
// to zero when everything completes.
func TestQueueDepthGauge(t *testing.T) {
	reg := NewRegistry()
	gate := make(chan struct{})
	reg.Register(api.KindLabel, func(jc *JobContext) (any, error) {
		select {
		case <-gate:
			return &api.LabelResult{}, nil
		case <-jc.Ctx().Done():
			return nil, jc.Ctx().Err()
		}
	})
	r := NewRunner(reg, queue.NewStore(), 1)
	defer r.Close()
	req := &api.JobRequest{Kind: api.KindLabel, Label: &api.LabelSpec{
		Source: api.VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 8)}, Threshold: 0.5,
	}}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := r.Submit(req, "anonymous")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// One job occupies the single worker; two sit queued.
	waitFor(t, func() bool {
		return strings.Contains(r.MetricsText(), "queue_depth{} 2")
	}, "queue_depth to reach 2")
	if txt := r.MetricsText(); !strings.Contains(txt, `jobs_pending{kind="label"} 2`) {
		t.Fatalf("missing per-kind pending gauge:\n%s", txt)
	}
	close(gate)
	waitFor(t, func() bool {
		for _, id := range ids {
			if st, _ := r.Status(id); !st.State.Terminal() {
				return false
			}
		}
		return true
	}, "jobs to finish")
	waitFor(t, func() bool {
		txt := r.MetricsText()
		return strings.Contains(txt, "queue_depth{} 0") && strings.Contains(txt, `jobs_pending{kind="label"} 0`)
	}, "gauges to drain")
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
