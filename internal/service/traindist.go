package service

import (
	"fmt"

	"chaseci/internal/api"
	"chaseci/internal/dataset"
	"chaseci/internal/ffn"
)

// The train_dist job: synchronous data-parallel FFN training under the
// service Runner. The kernel (ffn.DistTrainer) is worker-count invariant by
// construction — every round draws one global batch from a round-derived RNG
// and averages gradients in global sample order — so the loss sequence is
// bit-identical at any width, under elastic add/remove between rounds, and
// across a checkpoint/restore boundary. Checkpoints are content-addressed
// CDS1 datasets: a resumed job names one by ref, and two runs that reach the
// same round with the same state collide into the same id.

// putCheckpoint stores the trainer's current state as a checkpoint dataset,
// pinned atomically against a concurrent delete; the tracker's release
// matches the pin and sweeps orphans if the job never completes.
func putCheckpoint(jc *JobContext, refs *pipeRefs, t *ffn.DistTrainer) (string, error) {
	enc, err := dataset.EncodeCheckpoint(t.CheckpointBytes())
	if err != nil {
		return "", err
	}
	info, created, err := jc.Datasets().PutPinned(enc, jc.Owner())
	if err != nil {
		return "", err
	}
	refs.track(refs.masks, info.ID, created)
	return info.ID, nil
}

// TrainDistHandler runs a data-parallel training job: fresh from a spec, or
// resumed from a checkpoint ref (the checkpoint carries model, optimizer
// momentum, sampling seed, batch geometry, and loss history — Rounds means
// total rounds including the resumed history). A cancelled run reports the
// rounds actually completed; its periodic checkpoints are released, but an
// identical re-run re-creates the same content-addressed refs.
func TrainDistHandler(jc *JobContext) (any, error) {
	spec := jc.Request().TrainDist
	raw, err := sourceVolume(jc.Ctx(), jc, &spec.Source)
	if err != nil {
		return nil, err
	}
	labels := thresholdVolume(raw, spec.Threshold)
	image := raw.Normalize()

	var t *ffn.DistTrainer
	res := api.TrainDistResult{}
	if spec.ResumeFrom != "" {
		jc.Progress(0, 1, "resume")
		blob, err := jc.Datasets().Resolve(spec.ResumeFrom)
		if err != nil {
			return nil, err
		}
		if blob.Kind != dataset.KindCheckpoint {
			return nil, fmt.Errorf("%w: resume ref %s is a %s dataset, want checkpoint",
				api.ErrInvalid, spec.ResumeFrom, blob.Kind)
		}
		ck, err := ffn.DecodeCheckpoint(blob.Raw)
		if err != nil {
			return nil, err
		}
		t, err = ffn.ResumeDistTrainer(ck, image, labels, spec.Workers)
		if err != nil {
			return nil, err
		}
		res.ResumedFrom = spec.ResumeFrom
	} else {
		lr, momentum := spec.LR, spec.Momentum
		if lr == 0 {
			lr = 0.05
		}
		if momentum == 0 {
			momentum = 0.9
		}
		net, err := ffn.NewNetwork(netConfig(spec.Net), spec.NetSeed)
		if err != nil {
			return nil, err
		}
		t, err = ffn.NewDistTrainer(net, lr, momentum, image, labels,
			spec.SampleSeed, spec.BatchPerRound, spec.Workers)
		if err != nil {
			return nil, err
		}
	}
	res.StartRound = t.RoundIndex()
	res.GradBytes = t.Net.GradBytes()

	refs := &pipeRefs{ds: jc.Datasets(), masks: make(map[string]*refEntry)}
	defer refs.release()

	elastic := spec.Elastic
	for t.RoundIndex() < spec.Rounds {
		round := t.RoundIndex()
		for len(elastic) > 0 && elastic[0].Round <= round {
			if err := t.SetWorkers(elastic[0].Workers); err != nil {
				return res, err
			}
			elastic = elastic[1:]
		}
		res.CommBytes += t.CommBytesPerRound()
		jc.Progress(int64(round), int64(spec.Rounds), fmt.Sprintf("round %d/%d (%dw)", round, spec.Rounds, t.Workers()))
		if _, err := t.Round(jc.Ctx()); err != nil {
			fillLosses(&res, t)
			return res, err
		}
		done := t.RoundIndex()
		if spec.CheckpointEvery > 0 && done < spec.Rounds && done%spec.CheckpointEvery == 0 {
			ref, err := putCheckpoint(jc, refs, t)
			if err != nil {
				fillLosses(&res, t)
				return res, err
			}
			res.Checkpoints = append(res.Checkpoints, api.CheckpointInfo{Round: done, Ref: ref})
		}
	}
	jc.Progress(int64(spec.Rounds), int64(spec.Rounds), "checkpoint")

	// The final checkpoint is always written: it is what a follow-on job's
	// resume_from names.
	ref, err := putCheckpoint(jc, refs, t)
	if err != nil {
		fillLosses(&res, t)
		return res, err
	}
	res.CheckpointRef = ref
	fillLosses(&res, t)

	// Success: promote every checkpoint this run reported before release
	// unpins them — Delete no-ops on kept ids, so they survive the sweep.
	for _, ck := range res.Checkpoints {
		jc.Datasets().Keep(ck.Ref)
	}
	jc.Datasets().Keep(res.CheckpointRef)
	return res, nil
}

// fillLosses copies the trainer's state into the result — shared by the
// success and cancelled-partial paths.
func fillLosses(res *api.TrainDistResult, t *ffn.DistTrainer) {
	res.Workers = t.Workers()
	res.Rounds = t.RoundIndex()
	losses := t.Losses()
	res.Losses = append([]float64(nil), losses...)
	if len(losses) > 0 {
		res.LossHead = ffn.MeanTail(losses[:(len(losses)+4)/5], 1)
		res.LossTail = ffn.MeanTail(losses, 0.2)
	}
}
