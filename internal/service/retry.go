package service

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"chaseci/internal/objstore"
	"chaseci/internal/sim"
)

// ErrTransient marks an error as worth retrying: the operation failed against
// a resource that is expected to come back (a recovering OSD, a congested
// link, a briefly-overloaded store). Handlers wrap with
// fmt.Errorf("...: %w", service.ErrTransient) — or return an error chain
// containing objstore.ErrAllReplicasDown — to opt a failure into the runner's
// backoff-and-retry loop. Everything else fails the job on the first attempt.
var ErrTransient = errors.New("transient")

// Transient reports whether err is worth a backoff-and-retry: either
// explicitly tagged with ErrTransient, or a degraded-read failure from the
// object store (all replicas down is recoverable; not-found is not).
func Transient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, objstore.ErrAllReplicasDown)
}

// RetryPolicy bounds the runner's transient-error retry loop: up to
// MaxAttempts executions per job dispatch, sleeping a full-jitter exponential
// backoff (BaseDelay doubling per attempt, capped at MaxDelay) between them.
// The sleep is context-aware: cancellation (user cancel, node drain, runner
// shutdown) interrupts it immediately so requeue semantics are unaffected.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// DefaultRetryPolicy is the runner's out-of-the-box policy: 4 attempts,
// 25ms base, 1s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	return p
}

// backoff returns the sleep before retry #attempt (1-based): full jitter in
// (0, min(BaseDelay<<attempt-1, MaxDelay)]. Full jitter decorrelates the
// retry storms of jobs knocked loose by the same fault.
func (p RetryPolicy) backoff(attempt int, u float64) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	j := time.Duration(u * float64(d))
	if j <= 0 {
		j = time.Nanosecond
	}
	return j
}

// retryState is the Runner's retry configuration plus the jitter stream,
// shared by all workers.
type retryState struct {
	mu     sync.Mutex
	policy RetryPolicy
	rng    *sim.RNG
}

func newRetryState() *retryState {
	return &retryState{policy: DefaultRetryPolicy(), rng: sim.NewRNG(0x9272c2a34d58f1e7)}
}

func (rs *retryState) snapshot() (RetryPolicy, float64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.policy, rs.rng.Float64()
}

// SetRetryPolicy replaces the transient-error retry policy (zero fields take
// defaults). Tests and scenario scripts use it to tighten delays.
func (r *Runner) SetRetryPolicy(p RetryPolicy) {
	r.retries.mu.Lock()
	defer r.retries.mu.Unlock()
	r.retries.policy = p.withDefaults()
}

// runWithRetry executes the handler, retrying transient failures under the
// runner's policy. Non-transient errors, success, and context cancellation
// return immediately; the backoff sleep aborts the moment ctx dies so drains
// and user cancels propagate at full speed.
func (r *Runner) runWithRetry(h Handler, jc *JobContext) (any, error) {
	var res any
	var err error
	var policy RetryPolicy
	for attempt := 1; ; attempt++ {
		res, err = runHandler(h, jc)
		var u float64
		policy, u = r.retries.snapshot()
		if err == nil || !Transient(err) || attempt >= policy.MaxAttempts {
			break
		}
		if jc.ctx.Err() != nil {
			// The job's context died while the handler was failing
			// transiently (drain, user cancel, shutdown). Surface the
			// cancellation in the chain so execute's requeue logic sees it.
			return res, fmt.Errorf("%v (retry interrupted: %w)", err, jc.ctx.Err())
		}
		r.count("jobs_retried", jc.job.kind)
		t := time.NewTimer(policy.backoff(attempt, u))
		select {
		case <-jc.ctx.Done():
			t.Stop()
			return res, fmt.Errorf("%v (retry interrupted: %w)", err, jc.ctx.Err())
		case <-t.C:
		}
	}
	if err != nil && Transient(err) {
		err = fmt.Errorf("%v (gave up after %d attempts)", err, policy.MaxAttempts)
	}
	return res, err
}

// LeakCheck verifies the runner's bookkeeping balanced out: no dataset pin,
// no scheduler resource claim, and no open event stream survives once every
// known job is terminal. It errors if a job is still live (the check would
// be vacuous) or if a pin, claim, or stream leaked. Tests call it after
// quiescing; scenario invariants call it at the end of every script.
func (r *Runner) LeakCheck() error {
	var live []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id, j := range sh.jobs {
			if !stateNames[j.state.Load()].Terminal() {
				live = append(live, id)
			}
		}
		sh.mu.Unlock()
	}
	if len(live) > 0 {
		sort.Strings(live)
		return fmt.Errorf("service: leak check before quiescence: %d non-terminal jobs: %s",
			len(live), strings.Join(live, ", "))
	}
	if pinned := r.datasets.Pinned(); len(pinned) > 0 {
		ids := make([]string, 0, len(pinned))
		for id, n := range pinned {
			ids = append(ids, fmt.Sprintf("%s=%d", id[:min(12, len(id))], n))
		}
		sort.Strings(ids)
		return fmt.Errorf("service: leaked dataset pins: %s", strings.Join(ids, ", "))
	}
	if r.sched != nil {
		if claims := r.sched.LiveClaims(); len(claims) > 0 {
			parts := make([]string, 0, len(claims))
			for node, ids := range claims {
				parts = append(parts, fmt.Sprintf("%s:%v", node, ids))
			}
			sort.Strings(parts)
			return fmt.Errorf("service: leaked node claims: %s", strings.Join(parts, ", "))
		}
	}
	if n := r.streams.Load(); n != 0 {
		return fmt.Errorf("service: %d event stream(s) still open after quiescence", n)
	}
	return nil
}
