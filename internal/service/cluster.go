package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/queue"
	"chaseci/internal/sched"
)

// Cluster mode: instead of one global pending queue drained by an anonymous
// pool, each fabric node runs its own worker pool over a node-scoped
// weighted-fair queue, and the sched.Scheduler decides which queue a job
// lands on by data gravity. Node loss drains the node's pool and requeues
// its jobs through placement against the surviving replicas.

// NodePendingKey is the store list previous runner generations used as a
// node's dispatch queue; the current generation dispatches from in-memory
// fair queues but still drains these lists at startup (orphan semantics,
// see drainOrphans).
func NodePendingKey(node string) string { return "jobs:pending:" + node }

// nodePool is one node's worker pool. Its context is a child of the
// runner's, so Close stops every pool; DrainNode stops just this one. fq is
// the node's weighted-fair pending queue, so tenant fairness holds per
// node just as it does on the single-node runner.
type nodePool struct {
	node string
	fq   *fairQueue
	wake chan struct{}
	ctx  context.Context
	stop context.CancelFunc
}

// NewClusterRunner builds a Runner that places jobs on the fabric instead of
// a global queue. workersPerNode <= 0 defaults to 2. The fabric's dataset
// manager becomes the runner's data plane, so submitted refs and OSD
// replica placement live in the same store the scheduler scores against.
func NewClusterRunner(reg *Registry, store *queue.Store, workersPerNode int, fab *sched.Fabric) *Runner {
	return NewClusterRunnerConfigured(reg, store, fab, RunnerConfig{Workers: workersPerNode})
}

// NewClusterRunnerConfigured is NewClusterRunner with explicit sharding,
// admission, and fairness configuration (cfg.Workers is the per-node pool
// size; cfg.Datasets is ignored — the fabric's data plane always wins).
func NewClusterRunnerConfigured(reg *Registry, store *queue.Store, fab *sched.Fabric, cfg RunnerConfig) *Runner {
	workersPerNode := cfg.Workers
	if workersPerNode <= 0 {
		workersPerNode = 2
	}
	r := newRunnerCore(reg, store, fab.Datasets, cfg)
	r.workers = 0 // no global pool; per-node pools below
	r.sched = sched.New(fab)
	r.poolWorkers = workersPerNode
	r.pools = make(map[string]*nodePool)
	r.drains = make(map[string]bool)
	r.wake = make(chan struct{}, 1)
	r.sched.OnBind(r.onBind)
	r.sched.OnDrain(r.onDrain)
	r.sched.OnRestore(r.onRestore)
	r.drainOrphans()
	for _, node := range fab.NodeNames() {
		r.drainNodeOrphans(node)
		r.pools[node] = r.startPool(node)
	}
	return r
}

// drainNodeOrphans applies drainOrphans' logic to one node-scoped list.
func (r *Runner) drainNodeOrphans(node string) {
	for {
		id, ok := r.store.RPop(NodePendingKey(node))
		if !ok {
			return
		}
		rec, ok := r.store.Get(JobKey(id))
		if !ok {
			continue
		}
		var st api.JobStatus
		if json.Unmarshal([]byte(rec), &st) != nil || st.State.Terminal() {
			continue
		}
		st.State = api.StateFailed
		st.Error = "orphaned: runner restarted before execution"
		st.FinishedAt = time.Now().UnixNano()
		if raw, err := json.Marshal(st); err == nil {
			r.store.Set(JobKey(id), string(raw))
		}
	}
}

// startPool launches a node's workers. r.mu may be held by the caller; the
// workers themselves never take it outside execute's helpers.
func (r *Runner) startPool(node string) *nodePool {
	ctx, stop := context.WithCancel(r.baseCtx)
	p := &nodePool{
		node: node,
		fq:   newFairQueue(r.adm.weight),
		wake: make(chan struct{}, r.poolWorkers),
		ctx:  ctx,
		stop: stop,
	}
	r.wg.Add(r.poolWorkers)
	for i := 0; i < r.poolWorkers; i++ {
		go r.poolLoop(p)
	}
	return p
}

func (r *Runner) poolLoop(p *nodePool) {
	defer r.wg.Done()
	for {
		for {
			id, ok := p.fq.Pop()
			if !ok {
				break
			}
			r.execute(id)
			if p.ctx.Err() != nil {
				return
			}
		}
		select {
		case <-p.ctx.Done():
			return
		case <-p.wake:
		}
	}
}

// workloadFor builds the scheduler's view of a job: its pinned refs, an
// input-size estimate for the energy model, and the caller's constraints.
func (r *Runner) workloadFor(j *job) *sched.Workload {
	return &sched.Workload{
		JobID:  j.id,
		Kind:   j.kind,
		Owner:  j.owner,
		Refs:   append([]string(nil), j.refs...),
		Voxels: r.jobVoxels(j.req),
		Spec:   j.req.Placement,
	}
}

// jobVoxels estimates the job's input volume for the placement energy
// estimate (0 = unknown).
func (r *Runner) jobVoxels(req *api.JobRequest) float64 {
	src := func(v *api.VolumeSource) float64 {
		switch {
		case v.Ref != "":
			if info, ok := r.datasets.Stat(v.Ref); ok {
				return float64(info.D) * float64(info.H) * float64(info.W)
			}
			return 0
		case v.Synth != nil:
			return float64(v.Synth.NLon) * float64(v.Synth.NLat) * float64(v.Synth.Steps)
		default:
			return float64(v.D) * float64(v.H) * float64(v.W)
		}
	}
	switch {
	case req.Segment != nil:
		return src(&req.Segment.Source)
	case req.Label != nil:
		return src(&req.Label.Source)
	case req.Train != nil:
		return src(&req.Train.Source)
	case req.IVT != nil:
		s := req.IVT.Synth
		return float64(s.NLon) * float64(s.NLat) * float64(s.Steps)
	case req.Pipeline != nil:
		s := req.Pipeline.Synth
		return float64(s.NLon) * float64(s.NLat) * float64(s.Steps)
	default:
		return 0
	}
}

// bindJob publishes a placement decision and hands the job to the chosen
// node's pool. If the node died between the decision and the enqueue, the
// job is sent back through placement instead of stranding on a dead queue.
func (r *Runner) bindJob(j *job, pl *api.Placement) {
	j.placement.Store(pl)
	r.persist(j)
	r.mu.Lock()
	pool := r.pools[pl.Node]
	if pool != nil {
		// Push under r.mu: the drain path deletes the pool and sweeps its
		// queue under the same mutex discipline, so an id pushed here is
		// either popped by a live pool or reclaimed by the drain's sweep —
		// never stranded.
		pool.fq.Push(j.owner, j.id)
	}
	r.mu.Unlock()
	if pool == nil {
		// The scheduler already unbound the job when the node died; the
		// drain marker tells us whether this path owns the requeue.
		if r.takeDrain(j.id) {
			r.rePlace(j)
		}
		return
	}
	select {
	case pool.wake <- struct{}{}:
	default:
	}
}

// takeDrain consumes the job's drain marker (set when its node was lost).
// Exactly one caller sees true per drain, making the requeue exactly-once.
func (r *Runner) takeDrain(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.drains[id] {
		return false
	}
	delete(r.drains, id)
	return true
}

// requeueJob resets a drained job to queued and runs placement again. The
// job's refs stay pinned across the requeue — re-placement resolves them
// against the surviving replicas.
func (r *Runner) requeueJob(j *job) {
	if !j.state.CompareAndSwap(codeRunning, codeQueued) {
		return
	}
	j.started.Store(0)
	j.done.Store(0)
	j.total.Store(0)
	empty := ""
	j.stage.Store(&empty)
	r.gaugeAdd("jobs_running", j.kind, -1)
	r.pendingAdd(j, +1)
	r.count("jobs_requeued", j.kind)
	r.persist(j)
	r.rePlace(j)
}

// maxPlacementRetries caps how many drain-requeue cycles a single job may
// survive before it goes terminal failed. Without the budget, a fault
// pattern that keeps killing whichever node a job lands on would bounce the
// job (and its pinned refs) through placement forever.
const maxPlacementRetries = 5

// rePlace runs placement for an already-admitted queued job (after a drain
// or a late bind race). Placement failure is terminal: the cluster shrank
// below the job's static needs. A job over its requeue budget is failed
// rather than re-placed.
func (r *Runner) rePlace(j *job) {
	var pl *api.Placement
	var err error
	if n := r.sched.Requeues(j.id); n > maxPlacementRetries {
		err = fmt.Errorf("placement retry budget exhausted (%d requeues > %d allowed)",
			n, maxPlacementRetries)
	} else {
		pl, err = r.sched.Place(j.wl)
	}
	if err != nil {
		if j.state.CompareAndSwap(codeQueued, codeFailed) {
			msg := fmt.Sprintf("placement lost after node failure: %v", err)
			j.errMsg.Store(&msg)
			j.finished.Store(time.Now().UnixNano())
			r.releaseJobRefs(j)
			r.pendingAdd(j, -1)
			r.count("jobs_failed", j.kind)
			r.persist(j)
			r.sched.Release(j.id)
		}
		return
	}
	if pl == nil {
		return // parked; OnBind delivers it when capacity frees
	}
	r.bindJob(j, pl)
}

// onBind delivers a parked job's placement (fires outside sched's lock).
func (r *Runner) onBind(id string, pl *api.Placement) {
	j := r.lookupJob(id)
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if j == nil || closed || j.state.Load() != codeQueued {
		r.sched.Release(id)
		return
	}
	r.bindJob(j, pl)
}

// onDrain tears down a lost node's pool and requeues everything that was
// bound there: running jobs via their context cancellation (execute's
// requeue path), queued jobs via the queue sweep below.
func (r *Runner) onDrain(node string, ids []string) {
	r.mu.Lock()
	pool := r.pools[node]
	delete(r.pools, node)
	for _, id := range ids {
		r.drains[id] = true
	}
	r.mu.Unlock()
	// Cancel funcs live in the job shards; collect them outside r.mu (the
	// two mutexes are never held together) and fire them lock-free.
	var cancels []context.CancelFunc
	for _, id := range ids {
		sh := r.shardFor(id)
		sh.mu.Lock()
		if c := sh.cancels[id]; c != nil {
			cancels = append(cancels, c)
		}
		sh.mu.Unlock()
	}
	for _, c := range cancels {
		c()
	}
	if pool == nil {
		return
	}
	pool.stop()
	select {
	case pool.wake <- struct{}{}:
	default:
	}
	// Sweep the dead node's pending queue. Jobs a pool worker popped before
	// the stop requeue themselves through execute's drain check; everything
	// still queued is reclaimed here.
	for _, id := range pool.fq.PopAll() {
		j := r.lookupJob(id)
		if j == nil || j.state.Load() != codeQueued {
			continue
		}
		if r.takeDrain(id) {
			r.rePlace(j)
		}
	}
}

// onRestore restarts a returned node's pool.
func (r *Runner) onRestore(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if _, live := r.pools[node]; !live {
		r.pools[node] = r.startPool(node)
	}
}

// closeClusterJobs cancels every still-queued job (on node queues or
// parked) during Close, after all pools have exited.
func (r *Runner) closeClusterJobs() {
	var snapshot []*job
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, j := range sh.jobs {
			snapshot = append(snapshot, j)
		}
		sh.mu.Unlock()
	}
	for _, j := range snapshot {
		if !j.state.CompareAndSwap(codeQueued, codeCancelled) {
			continue
		}
		msg := ErrClosed.Error()
		j.errMsg.Store(&msg)
		j.finished.Store(time.Now().UnixNano())
		r.releaseJobRefs(j)
		r.pendingAdd(j, -1)
		r.persist(j)
		r.sched.Release(j.id)
	}
}

// --- Cluster-mode accessors (gateway / CLI surface) -------------------------

// ClusterMode reports whether this runner places jobs on a fabric.
func (r *Runner) ClusterMode() bool { return r.sched != nil }

// Scheduler returns the placement scheduler (nil on single-node runners).
func (r *Runner) Scheduler() *sched.Scheduler { return r.sched }

// Nodes returns the fabric inventory (nil on single-node runners).
func (r *Runner) Nodes() []api.NodeStatus {
	if r.sched == nil {
		return nil
	}
	return r.sched.Nodes()
}

// DrainNode simulates losing a fabric node: its OSD fails, its pool stops,
// and its jobs requeue through placement.
func (r *Runner) DrainNode(name string) error {
	if r.sched == nil {
		return fmt.Errorf("service: not a cluster runner")
	}
	return r.sched.KillNode(name)
}

// RestoreNode brings a drained node (and its OSD) back.
func (r *Runner) RestoreNode(name string) error {
	if r.sched == nil {
		return fmt.Errorf("service: not a cluster runner")
	}
	return r.sched.RestoreNode(name)
}
