// Package service executes Job API requests (internal/api) against the
// real compute kernels. A Registry maps job kinds to handlers; a Runner
// owns a pool of worker goroutines that drain a weighted-fair pending
// queue, execute each job under a cancellable context.Context with
// kernel-reported progress, and persist every state transition back into
// the queue.Store — the same simulated-Redis substrate the paper's
// download step uses, so job records survive in the store whether the
// Runner is fronted by the chased HTTP gateway, the line-protocol
// queue.Server, or both.
//
// Scale model: the job registry is lock-striped (see shards.go) so status
// polls, submits, and terminal transitions on different jobs never contend
// on one mutex; admission control (admission.go) bounds per-tenant and
// global pending queues and sheds with ErrOverloaded instead of growing
// without bound; dispatch order is weighted-fair across tenants
// (fairqueue.go) so a flooding identity cannot starve a light one.
//
// Concurrency model: the Runner is fully concurrent (real goroutines, real
// wall time), while the reused internal/metrics registry is built for the
// single-threaded simulation — so the Runner privately drives a sim.Clock
// pinned to wall-elapsed time and serializes every metrics touch behind
// its own mutex. Lock ordering: r.mu (cluster control plane) and shard
// mutexes are never held together; the fair queues' internal mutexes are
// leaves.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/dataset"
	"chaseci/internal/metrics"
	"chaseci/internal/queue"
	"chaseci/internal/sched"
	"chaseci/internal/sim"
)

// Store keys used for job persistence.
const (
	// PendingKey is the store list previous runner generations used as
	// their dispatch queue. The current generation dispatches from the
	// in-memory fair queue, but still drains this list at startup so
	// records orphaned by an older generation (or a crash) are failed
	// rather than left "queued" forever.
	PendingKey = "jobs:pending"
)

// JobKey returns the store key holding a job's status record (JSON).
func JobKey(id string) string { return "job:" + id }

// ResultKey returns the store key holding a job's result payload (JSON).
func ResultKey(id string) string { return "job:" + id + ":result" }

// seqKey is the store counter that allocates job ids; because it lives in
// the store, ids stay collision-free across runner generations sharing
// one store.
const seqKey = "jobs:seq"

// ErrClosed is returned by Submit after the Runner has been closed.
var ErrClosed = errors.New("service: runner closed")

// maxRetainedJobs bounds the Runner's in-memory job index: once
// exceeded, the oldest terminal jobs (with their result payloads) are
// evicted. Their status and result records remain readable through the
// store fallback (Lookup/Result) until they age past the store cap.
const maxRetainedJobs = 10000

// storeRetainFactor sizes the store's post-eviction tail: up to
// storeRetainFactor*retain evicted jobs keep their store records before
// those too are deleted, so total footprint stays bounded even though
// the store lives in this process.
const storeRetainFactor = 4

// wallClock drives a sim.Clock to wall-elapsed time under a mutex, so the
// single-threaded virtual-time components this package reuses (the
// metrics registry, the auth federation) behave correctly inside the
// concurrent service: Lock() advances the clock to "now" and must be held
// around every touch of the wrapped component.
type wallClock struct {
	mu    sync.Mutex
	clock *sim.Clock
	epoch time.Time
}

func newWallClock() *wallClock {
	return &wallClock{clock: sim.NewClock(), epoch: time.Now()}
}

// Lock acquires the mutex and advances the clock to wall-elapsed time.
func (w *wallClock) Lock() {
	w.mu.Lock()
	w.clock.RunUntil(time.Since(w.epoch))
}

func (w *wallClock) Unlock() { w.mu.Unlock() }

// Handler executes one job kind. It must honor jc.Ctx() cancellation
// promptly and may report progress through jc.Progress. The returned value
// is JSON-marshalled into the job's result; returning a non-nil value
// together with ctx.Err() records a partial result for a cancelled job.
type Handler func(jc *JobContext) (any, error)

// Registry maps job kinds to handlers. It is safe for concurrent use;
// registering an already-registered kind replaces the handler (tests use
// this to stub built-ins).
type Registry struct {
	mu       sync.RWMutex
	handlers map[api.Kind]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[api.Kind]Handler)}
}

// Register installs a handler for kind.
func (r *Registry) Register(kind api.Kind, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[kind] = h
}

// Handler looks up the handler for kind.
func (r *Registry) Handler(kind api.Kind) (Handler, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.handlers[kind]
	return h, ok
}

// Kinds lists registered kinds sorted lexically.
func (r *Registry) Kinds() []api.Kind {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]api.Kind, 0, len(r.handlers))
	for k := range r.handlers {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// state codes; indexes into stateNames. Stored in an atomic so the
// status-poll path reads without locking.
const (
	codeQueued int32 = iota
	codeRunning
	codeSucceeded
	codeFailed
	codeCancelled
)

var stateNames = [...]api.State{
	api.StateQueued, api.StateRunning, api.StateSucceeded, api.StateFailed, api.StateCancelled,
}

// job is the Runner's in-memory record. Progress and lifecycle fields are
// atomics so Status snapshots allocate nothing and never block a running
// handler.
type job struct {
	id    string
	seq   int64 // submit order, from the store's id counter
	kind  api.Kind
	name  string
	owner string
	req   *api.JobRequest
	// refs are the source datasets pinned at submit; released (by exactly
	// one of the terminal transitions) when the job can no longer run.
	refs []string

	state                        atomic.Int32
	done, total                  atomic.Int64
	stage                        atomic.Pointer[string]
	submitted, started, finished atomic.Int64 // wall clock, UnixNano
	errMsg                       atomic.Pointer[string]

	// Cluster-mode fields. wl is the scheduler's view of the job, built once
	// at submit and reused on every re-placement; placement holds the latest
	// (immutable) decision; userCancel distinguishes a caller's Cancel from a
	// drain-induced context cancellation so only the former is terminal.
	wl         *sched.Workload
	placement  atomic.Pointer[api.Placement]
	userCancel atomic.Bool

	mu     sync.Mutex
	result json.RawMessage
}

// JobContext is a running handler's view of its job: the cancellation
// context, progress reporting, and the data plane.
type JobContext struct {
	ctx      context.Context
	job      *job
	datasets *dataset.Manager
	runner   *Runner
}

// Ctx returns the job's cancellation context. Handlers must pass it to the
// context-aware kernel entrypoints.
func (jc *JobContext) Ctx() context.Context { return jc.ctx }

// Request returns the validated job request.
func (jc *JobContext) Request() *api.JobRequest { return jc.job.req }

// Datasets returns the runner's content-addressed dataset manager, against
// which handlers resolve source refs and offload ref-mode results.
func (jc *JobContext) Datasets() *dataset.Manager { return jc.datasets }

// Owner returns the authenticated identity the job was submitted under,
// recorded on datasets the job stores.
func (jc *JobContext) Owner() string { return jc.job.owner }

// RefMode reports whether the job asked for ref-mode results.
func (jc *JobContext) RefMode() bool { return jc.job.req.ResultMode == api.ResultModeRef }

// Progress records kernel progress (total 0 = unknown) and the current
// stage. It is cheap (three atomic stores) and safe to call from multiple
// goroutines, so kernel callbacks can invoke it directly.
func (jc *JobContext) Progress(done, total int64, stage string) {
	jc.job.done.Store(done)
	jc.job.total.Store(total)
	jc.job.stage.Store(&stage)
}

// RunnerConfig tunes a Runner beyond the defaults the plain constructors
// use. The zero value of every field means "default"; negative bounds mean
// unlimited.
type RunnerConfig struct {
	// Workers is the worker pool size: the global pool on single-node
	// runners, per node on cluster runners (<= 0 defaults to 4 / 2).
	Workers int
	// Datasets is the content-addressed data plane (nil = a private local
	// store; cluster runners always use the fabric's).
	Datasets *dataset.Manager
	// Shards is the registry stripe count, rounded up to a power of two
	// (<= 0 defaults to defaultShards). Shards=1 reproduces the old
	// single-mutex registry — the contention benchmark's baseline.
	Shards int
	// MaxPendingPerTenant / MaxPending bound the pending queues; submits
	// beyond a bound shed with ErrOverloaded (0 = defaults, < 0 =
	// unlimited).
	MaxPendingPerTenant int
	MaxPending          int
	// TenantWeights sets weighted-fair dispatch shares (unlisted tenants
	// weigh 1).
	TenantWeights map[string]int
}

func (cfg RunnerConfig) bound(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0 // unlimited in admission terms
	default:
		return v
	}
}

// Runner executes submitted jobs on a fixed worker pool.
type Runner struct {
	reg      *Registry
	store    *queue.Store
	workers  int
	datasets *dataset.Manager

	// Cluster mode (nil/empty on single-node runners): sched places jobs on
	// fabric nodes, pools holds one worker pool per live node, and drains
	// marks jobs knocked off a lost node so exactly one path requeues each.
	sched       *sched.Scheduler
	poolWorkers int

	// retries is the transient-error retry loop's policy + jitter stream.
	retries *retryState

	// Sharded job registry (shards.go): jobs and cancel funcs are striped
	// by job-id hash; njobs tracks the in-memory total, retain the cap.
	shards    []regShard
	shardMask uint32
	njobs     atomic.Int64
	retain    atomic.Int64
	pruneMu   sync.Mutex
	evictMu   sync.Mutex
	evicted   evictFIFO // ids evicted from memory whose store records remain

	// Admission control + weighted-fair dispatch. pending is the
	// single-node dispatch queue (cluster pools carry their own).
	adm     *admission
	pending *fairQueue
	streams atomic.Int64 // live NDJSON event streams (gateway-reported)

	// mu guards the cluster control plane only (pools, drains, closed for
	// restore/bind races); never held together with a shard mutex.
	mu     sync.Mutex
	pools  map[string]*nodePool
	drains map[string]bool
	closed bool

	// Metrics substrate (see the package comment): the reused
	// metrics.Registry behind a wall-pinned clock lock.
	mclk       *wallClock
	metrics    *metrics.Registry
	counters   map[string]*metrics.Counter
	gauges     map[string]*metrics.Gauge
	tenantSeen map[string]bool

	wake    chan struct{}
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// NewRunner builds and starts a Runner with the given worker pool size
// (<= 0 defaults to 4). Jobs persist into store; pass a fresh store or one
// shared with a queue.Server to expose job records over the line protocol.
// The runner gets a private local dataset store; use NewRunnerWithDatasets
// to share one (e.g. with an ingestion path or across runner generations).
func NewRunner(reg *Registry, store *queue.Store, workers int) *Runner {
	return NewRunnerConfigured(reg, store, RunnerConfig{Workers: workers})
}

// NewRunnerWithDatasets is NewRunner over a caller-provided content-
// addressed dataset manager — the data plane every ref in requests and
// results resolves against.
func NewRunnerWithDatasets(reg *Registry, store *queue.Store, workers int, ds *dataset.Manager) *Runner {
	return NewRunnerConfigured(reg, store, RunnerConfig{Workers: workers, Datasets: ds})
}

// NewRunnerConfigured builds and starts a single-node Runner with explicit
// sharding, admission, and fairness configuration.
func NewRunnerConfigured(reg *Registry, store *queue.Store, cfg RunnerConfig) *Runner {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	ds := cfg.Datasets
	if ds == nil {
		ds = dataset.NewLocal()
	}
	r := newRunnerCore(reg, store, ds, cfg)
	r.workers = workers
	// Buffered to the pool size so a burst of submits wakes a worker
	// per job instead of collapsing into one token (signals dropped
	// beyond that are harmless: every worker is already awake and
	// re-drains the queue before sleeping).
	r.wake = make(chan struct{}, workers)
	r.drainOrphans()
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.workerLoop()
	}
	return r
}

// newRunnerCore builds the fields shared by single-node and cluster
// runners: the sharded registry, admission control, fair queue, metrics
// substrate, and lifecycle context.
func newRunnerCore(reg *Registry, store *queue.Store, ds *dataset.Manager, cfg RunnerConfig) *Runner {
	baseCtx, stop := context.WithCancel(context.Background())
	mclk := newWallClock()
	adm := newAdmission(
		cfg.bound(cfg.MaxPendingPerTenant, defaultMaxPendingPerTenant),
		cfg.bound(cfg.MaxPending, defaultMaxPending),
		cfg.TenantWeights,
	)
	shards := newShards(cfg.Shards)
	r := &Runner{
		reg:        reg,
		store:      store,
		datasets:   ds,
		retries:    newRetryState(),
		shards:     shards,
		shardMask:  uint32(len(shards) - 1),
		adm:        adm,
		mclk:       mclk,
		metrics:    metrics.NewRegistry(mclk.clock),
		counters:   make(map[string]*metrics.Counter),
		gauges:     make(map[string]*metrics.Gauge),
		tenantSeen: make(map[string]bool),
		baseCtx:    baseCtx,
		stop:       stop,
	}
	r.pending = newFairQueue(adm.weight)
	r.retain.Store(maxRetainedJobs)
	return r
}

// drainOrphans clears pending ids left behind by a previous runner
// generation sharing this store. Job specs are not persisted — only
// status records are — so an orphaned job cannot be re-executed; its
// stored record is flipped to failed rather than staying "queued"
// forever.
func (r *Runner) drainOrphans() {
	for {
		id, ok := r.store.RPop(PendingKey)
		if !ok {
			return
		}
		rec, ok := r.store.Get(JobKey(id))
		if !ok {
			continue
		}
		var st api.JobStatus
		if json.Unmarshal([]byte(rec), &st) != nil || st.State.Terminal() {
			continue
		}
		st.State = api.StateFailed
		st.Error = "orphaned: runner restarted before execution"
		st.FinishedAt = time.Now().UnixNano()
		if raw, err := json.Marshal(st); err == nil {
			r.store.Set(JobKey(id), string(raw))
		}
	}
}

// Close stops the worker pool: running jobs are cancelled through their
// contexts, and jobs still pending (including one a racing Submit lands
// after the closed check) are marked cancelled rather than stranded
// "queued" forever — specs are not persisted, so no later generation
// could execute them. Close blocks until every worker has exited.
func (r *Runner) Close() {
	// Flip the control-plane flag first so node pools cannot be recreated
	// by a racing restore while the wait group is draining, then every
	// shard's flag under its own mutex: a Submit holding a shard lock
	// either observes closed (and refuses) or completed its insert+enqueue
	// beforehand, in which case the drain below sees it.
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
	}
	r.stop()
	r.wg.Wait()
	for _, id := range r.pending.PopAll() {
		j := r.lookupJob(id)
		if j == nil || !j.state.CompareAndSwap(codeQueued, codeCancelled) {
			continue
		}
		msg := ErrClosed.Error()
		j.errMsg.Store(&msg)
		j.finished.Store(time.Now().UnixNano())
		r.releaseJobRefs(j)
		r.pendingAdd(j, -1)
		r.persist(j)
	}
	if r.sched != nil {
		r.closeClusterJobs()
	}
}

// releaseJobRefs unpins the job's source datasets. Exactly one terminal
// transition calls it per job — execute's completion, Cancel's
// queued→cancelled CAS, or Close's pending drain — so each submit-time
// Pin is matched by one Unpin.
func (r *Runner) releaseJobRefs(j *job) {
	for _, ref := range j.refs {
		r.datasets.Unpin(ref)
	}
	j.refs = nil
}

// Submit validates req, reserves admission for its tenant, persists it as
// a queued job, and wakes the worker pool. owner is the authenticated
// identity recorded on the job; when its pending bound (or the global one)
// is full the submit sheds with an error unwrapping to ErrOverloaded.
func (r *Runner) Submit(req *api.JobRequest, owner string) (api.JobStatus, error) {
	if r.baseCtx.Err() != nil {
		return api.JobStatus{}, ErrClosed
	}
	if err := req.Validate(); err != nil {
		return api.JobStatus{}, err
	}
	if _, ok := r.reg.Handler(req.Kind); !ok {
		return api.JobStatus{}, fmt.Errorf("service: no handler registered for kind %q", req.Kind)
	}
	// Admission first: the bound check-and-reserve is atomic, so the
	// pending count can never overshoot the cap no matter how many submits
	// race. Every refusal below this point must repay the reservation.
	if err := r.adm.tryReserve(owner); err != nil {
		r.countTenant("jobs_shed", owner)
		return api.JobStatus{}, err
	}
	// Dangling refs fail fast at submit (same ErrInvalid surface as schema
	// problems) instead of minutes later on a worker. VisibleTo also
	// enforces the gateway's dataset ownership scope — otherwise a caller
	// who learned another identity's ref could compute over (and read
	// derivatives of) data GET /v1/datasets/{id} would refuse them. Missing
	// and forbidden refs produce the same message, so submit is not an
	// existence oracle for private refs. Each ref is pinned (before the
	// check, so a concurrent delete cannot slip between the two) until the
	// job reaches a terminal state — a ref accepted here is still
	// resolvable when a worker finally runs the job.
	refs := req.Refs()
	for i, ref := range refs {
		r.datasets.Pin(ref)
		if !r.datasets.VisibleTo(ref, owner) {
			for _, p := range refs[:i+1] {
				r.datasets.Unpin(p)
			}
			r.adm.add(owner, -1)
			return api.JobStatus{}, fmt.Errorf("%w: source ref %s is not in the dataset store", api.ErrInvalid, ref)
		}
	}
	seq := r.store.Incr(seqKey, 1)
	j := &job{
		id:    fmt.Sprintf("job-%06d", seq),
		seq:   seq,
		kind:  req.Kind,
		name:  req.Name,
		owner: owner,
		req:   req,
		refs:  refs,
	}
	j.state.Store(codeQueued)
	j.submitted.Store(time.Now().UnixNano())

	// Insert and enqueue under the job's shard mutex — the same one Close
	// flips the shard's closed flag under — so a job is either refused or
	// visible to Close's pending drain, never stranded queued with no
	// worker left to pop it.
	sh := r.shardFor(j.id)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		// The refusal path owes the same compensation as a visibility
		// failure — without it the submit-time pins would outlive any job
		// and make the refs permanently undeletable.
		for _, ref := range refs {
			r.datasets.Unpin(ref)
		}
		r.adm.add(owner, -1)
		return api.JobStatus{}, ErrClosed
	}
	sh.jobs[j.id] = j
	r.njobs.Add(1)
	r.persist(j)
	var pl *api.Placement
	if r.sched != nil {
		// Place while holding the shard lock: Place never dispatches
		// callbacks on this path, and the lock serializes against Close's
		// closed flip so a placed job is always visible to Close's
		// sched-mode drain.
		j.wl = r.workloadFor(j)
		var perr error
		pl, perr = r.sched.Place(j.wl)
		if perr != nil {
			// Rejected (unschedulable / over quota): undo the insert so the
			// job never existed, and repay the submit-time pins.
			delete(sh.jobs, j.id)
			r.njobs.Add(-1)
			r.store.Del(JobKey(j.id))
			sh.mu.Unlock()
			for _, ref := range refs {
				r.datasets.Unpin(ref)
			}
			r.adm.add(owner, -1)
			return api.JobStatus{}, perr
		}
	} else {
		r.pending.Push(owner, j.id)
	}
	sh.mu.Unlock()

	r.count("jobs_submitted", j.kind)
	r.pendingGauges(j, +1)
	if r.sched != nil {
		if pl != nil {
			r.bindJob(j, pl)
		}
		// pl == nil: parked — the scheduler's OnBind callback delivers it to
		// a node pool once capacity frees up.
	} else {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return r.statusOf(j), nil
}

// Status returns a job's poll snapshot. The path is allocation-free: a
// shard hash, a map lookup, and atomic loads into a flat value struct
// (BenchmarkStatusPoll locks this in).
func (r *Runner) Status(id string) (api.JobStatus, bool) {
	j := r.lookupJob(id)
	if j == nil {
		return api.JobStatus{}, false
	}
	return r.statusOf(j), true
}

// Lookup returns a job's status like Status, but falls back to the
// persisted store record for jobs evicted from the in-memory index — the
// gateway's read path, so completed-job ids stay resolvable for as long
// as the store holds them. (Status stays memory-only and allocation-free
// for hot polling.)
func (r *Runner) Lookup(id string) (api.JobStatus, bool) {
	if st, ok := r.Status(id); ok {
		return st, true
	}
	rec, ok := r.store.Get(JobKey(id))
	if !ok {
		return api.JobStatus{}, false
	}
	var st api.JobStatus
	if json.Unmarshal([]byte(rec), &st) != nil {
		return api.JobStatus{}, false
	}
	return st, true
}

// Datasets returns the runner's content-addressed dataset manager — the
// gateway serves PUT/GET /v1/datasets against it.
func (r *Runner) Datasets() *dataset.Manager { return r.datasets }

// Count returns the number of jobs this runner holds in memory.
func (r *Runner) Count() int { return int(r.njobs.Load()) }

// List returns every in-memory job's status in submit order.
func (r *Runner) List() []api.JobStatus {
	type ent struct {
		st  api.JobStatus
		seq int64
	}
	ents := make([]ent, 0, r.njobs.Load())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, j := range sh.jobs {
			ents = append(ents, ent{r.statusOf(j), j.seq})
		}
		sh.mu.Unlock()
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].seq < ents[j].seq })
	out := make([]api.JobStatus, len(ents))
	for i, e := range ents {
		out[i] = e.st
	}
	return out
}

// Result returns a job's result payload (nil until one is recorded) and
// its current status, falling back to the store for evicted jobs.
func (r *Runner) Result(id string) (json.RawMessage, api.JobStatus, bool) {
	j := r.lookupJob(id)
	if j != nil {
		j.mu.Lock()
		raw := j.result
		j.mu.Unlock()
		return raw, r.statusOf(j), true
	}
	st, ok := r.Lookup(id)
	if !ok {
		return nil, api.JobStatus{}, false
	}
	rec, _ := r.store.Get(ResultKey(id))
	return json.RawMessage(rec), st, true
}

// Cancel stops a job: a queued job is marked cancelled before it ever
// runs, and a running job has its context cancelled (the terminal state
// lands when the handler returns). It reports false for unknown or
// already-terminal jobs.
func (r *Runner) Cancel(id string) bool {
	j := r.lookupJob(id)
	if j == nil {
		return false
	}
	// Mark the caller's intent before touching state: the cluster-mode
	// requeue path must not resurrect a job whose context died because the
	// user cancelled it (vs. because its node drained).
	j.userCancel.Store(true)
	if j.state.CompareAndSwap(codeQueued, codeCancelled) {
		msg := "cancelled before start"
		j.errMsg.Store(&msg)
		j.finished.Store(time.Now().UnixNano())
		r.releaseJobRefs(j)
		r.pendingAdd(j, -1)
		r.count("jobs_cancelled", j.kind)
		r.persist(j)
		if r.sched != nil {
			r.sched.Release(id)
		}
		return true
	}
	// Not queued, so execute() already registered the cancel func (it does
	// so before flipping the state to running); a nil lookup means the job
	// is terminal or in its final bookkeeping.
	sh := r.shardFor(id)
	sh.mu.Lock()
	cancel := sh.cancels[id]
	sh.mu.Unlock()
	if cancel != nil {
		cancel()
		return true
	}
	return false
}

func (r *Runner) statusOf(j *job) api.JobStatus {
	st := api.JobStatus{
		ID:          j.id,
		Kind:        j.kind,
		Name:        j.name,
		Owner:       j.owner,
		State:       stateNames[j.state.Load()],
		Done:        j.done.Load(),
		Total:       j.total.Load(),
		SubmittedAt: j.submitted.Load(),
		StartedAt:   j.started.Load(),
		FinishedAt:  j.finished.Load(),
	}
	if p := j.stage.Load(); p != nil {
		st.Stage = *p
	}
	if p := j.errMsg.Load(); p != nil {
		st.Error = *p
	}
	st.Placement = j.placement.Load()
	return st
}

// persist writes the job's status snapshot into the store. Progress fields
// are persisted at transition points, not on every kernel callback; live
// progress is served from memory.
func (r *Runner) persist(j *job) {
	raw, err := json.Marshal(r.statusOf(j))
	if err != nil {
		return // JobStatus is a flat struct; cannot happen
	}
	r.store.Set(JobKey(j.id), string(raw))
}

func (r *Runner) workerLoop() {
	defer r.wg.Done()
	for {
		for {
			id, ok := r.pending.Pop()
			if !ok {
				break
			}
			r.execute(id)
			if r.baseCtx.Err() != nil {
				return
			}
		}
		select {
		case <-r.baseCtx.Done():
			return
		case <-r.wake:
		}
	}
}

func (r *Runner) execute(id string) {
	j := r.lookupJob(id)
	if j == nil {
		return // foreign id enqueued out of band
	}
	// Register the cancel func before flipping to running so Cancel always
	// finds it for a non-queued, non-terminal job.
	ctx, cancel := context.WithCancel(r.baseCtx)
	sh := r.shardFor(id)
	sh.mu.Lock()
	sh.cancels[id] = cancel
	sh.mu.Unlock()
	// Cancelled-while-queued jobs are already terminal; skip them.
	if !j.state.CompareAndSwap(codeQueued, codeRunning) {
		cancel()
		sh.mu.Lock()
		delete(sh.cancels, id)
		sh.mu.Unlock()
		if r.sched != nil {
			r.sched.Release(id) // free any claim a late bind left behind
		}
		return
	}
	j.started.Store(time.Now().UnixNano())
	r.gaugeAdd("jobs_running", j.kind, +1)
	r.pendingAdd(j, -1)
	r.persist(j)

	// The node may have died between this job's pop and now (the drain
	// routine empties the node's pending queue, but a pool worker can beat
	// it to an id); send it straight back through placement without running.
	if r.sched != nil && r.takeDrain(id) {
		cancel()
		sh.mu.Lock()
		delete(sh.cancels, id)
		sh.mu.Unlock()
		r.requeueJob(j)
		return
	}

	h, _ := r.reg.Handler(j.kind)
	res, err := r.runWithRetry(h, &JobContext{ctx: ctx, job: j, datasets: r.datasets, runner: r})
	cancel()
	sh.mu.Lock()
	delete(sh.cancels, id)
	sh.mu.Unlock()

	// A context cancellation caused by node loss — not by the user, not by
	// shutdown — requeues the job instead of finishing it: refs stay
	// pinned, progress resets, and placement runs again against the
	// surviving replicas.
	if r.sched != nil && err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) &&
		r.baseCtx.Err() == nil && !j.userCancel.Load() && r.takeDrain(id) {
		r.requeueJob(j)
		return
	}

	if res != nil {
		if raw, mErr := json.Marshal(res); mErr == nil {
			j.mu.Lock()
			j.result = raw
			j.mu.Unlock()
			r.store.Set(ResultKey(id), string(raw))
		} else if err == nil {
			err = fmt.Errorf("service: result marshal: %w", mErr)
		}
	}

	final, metric := codeSucceeded, "jobs_succeeded"
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		final, metric = codeCancelled, "jobs_cancelled"
	default:
		final, metric = codeFailed, "jobs_failed"
	}
	if err != nil {
		msg := err.Error()
		j.errMsg.Store(&msg)
	}
	j.state.Store(final)
	j.finished.Store(time.Now().UnixNano())
	r.releaseJobRefs(j)
	r.gaugeAdd("jobs_running", j.kind, -1)
	r.count(metric, j.kind)
	r.observeDuration(j)
	r.persist(j)
	if r.sched != nil {
		r.sched.Release(id)
	}

	// The spec (which may hold a large inline volume) is dead weight once
	// the job is terminal; only the executor touches req, so the plain
	// write is safe.
	j.req = nil
	r.pruneIfNeeded()
}

// runHandler isolates handler panics: a gateway must not die because one
// job kind hit a bug. A panic is classified transient — a crashed worker is
// exactly the fault the retry loop exists for — so the job re-runs under the
// retry budget before going terminal failed.
func runHandler(h Handler, jc *JobContext) (res any, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("service: handler panicked: %v (%w)", p, ErrTransient)
		}
	}()
	return h(jc)
}

// --- Admission / stream accessors -------------------------------------------

// ShedCount returns how many submits admission control has refused.
func (r *Runner) ShedCount() int64 { return r.adm.shedCount() }

// PendingTotal returns the global admitted-but-not-running job count.
func (r *Runner) PendingTotal() int { return r.adm.totalPending() }

// TenantPending returns owner's admitted-but-not-running job count.
func (r *Runner) TenantPending(owner string) int { return r.adm.tenantPending(owner) }

// streamAdd moves the live event-stream count (the gateway calls it around
// each NDJSON stream; LeakCheck asserts it returns to zero).
func (r *Runner) streamAdd(d int64) { r.streams.Add(d) }

// LiveStreams returns the number of event streams currently open.
func (r *Runner) LiveStreams() int64 { return r.streams.Load() }

// --- Metrics ---------------------------------------------------------------

func (r *Runner) count(name string, kind api.Kind) {
	r.mclk.Lock()
	defer r.mclk.Unlock()
	key := name + "/" + string(kind)
	c := r.counters[key]
	if c == nil {
		c = r.metrics.Counter(name, metrics.Labels{"kind": string(kind)})
		r.counters[key] = c
	}
	c.Inc()
}

// countTenant increments a per-tenant counter (label cardinality capped by
// tenantLabelLocked).
func (r *Runner) countTenant(name, owner string) {
	r.mclk.Lock()
	defer r.mclk.Unlock()
	t := r.tenantLabelLocked(owner)
	key := name + "//" + t
	c := r.counters[key]
	if c == nil {
		c = r.metrics.Counter(name, metrics.Labels{"tenant": t})
		r.counters[key] = c
	}
	c.Inc()
}

// gaugeLocked returns (creating once) the per-kind gauge. mclk held.
func (r *Runner) gaugeLocked(name string, kind api.Kind) *metrics.Gauge {
	key := name + "/" + string(kind)
	g := r.gauges[key]
	if g == nil {
		g = r.metrics.Gauge(name, metrics.Labels{"kind": string(kind)})
		r.gauges[key] = g
	}
	return g
}

func (r *Runner) gaugeAdd(name string, kind api.Kind, d float64) {
	r.mclk.Lock()
	defer r.mclk.Unlock()
	r.gaugeLocked(name, kind).Add(d)
}

// observeDuration records the finished job's wall duration on a per-kind
// gauge (last value wins, the series keeps history).
func (r *Runner) observeDuration(j *job) {
	started, finished := j.started.Load(), j.finished.Load()
	if started == 0 || finished < started {
		return
	}
	r.mclk.Lock()
	defer r.mclk.Unlock()
	r.gaugeLocked("job_duration_seconds", j.kind).Set(time.Duration(finished - started).Seconds())
}

// MetricsText renders every series' latest value in a Prometheus-flavored
// one-line-per-series text form for the gateway's /metricz endpoint.
func (r *Runner) MetricsText() string {
	r.mclk.Lock()
	var b strings.Builder
	for _, s := range r.metrics.Select("", nil) {
		fmt.Fprintf(&b, "%s%s %g\n", s.Name, s.Labels, s.Last().Value)
	}
	r.mclk.Unlock()
	if r.sched != nil {
		b.WriteString(r.sched.MetricsText())
	}
	return b.String()
}

// pendingGauges moves the per-kind pending gauge, the aggregate
// queue_depth gauge, and the per-tenant pending gauge together: +1 on
// admission, -1 when a job starts running or reaches a terminal state
// without running.
func (r *Runner) pendingGauges(j *job, d float64) {
	r.mclk.Lock()
	defer r.mclk.Unlock()
	r.gaugeLocked("jobs_pending", j.kind).Add(d)
	g := r.gauges["queue_depth"]
	if g == nil {
		g = r.metrics.Gauge("queue_depth", nil)
		r.gauges["queue_depth"] = g
	}
	g.Add(d)
	t := r.tenantLabelLocked(j.owner)
	tkey := "tenant_pending//" + t
	tg := r.gauges[tkey]
	if tg == nil {
		tg = r.metrics.Gauge("tenant_pending", metrics.Labels{"tenant": t})
		r.gauges[tkey] = tg
	}
	tg.Add(d)
}

// pendingAdd moves the admission counts and the pending gauges together
// for a job leaving (d = -1) or re-entering (d = +1, cluster requeue) the
// pending queue. Submit increments admission through tryReserve instead,
// so the bound check stays atomic.
func (r *Runner) pendingAdd(j *job, d int) {
	r.adm.add(j.owner, d)
	r.pendingGauges(j, float64(d))
}
