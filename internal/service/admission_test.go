package service

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/queue"
)

// blockedRunner builds a 1-worker runner whose only worker is stuck inside
// a job named "blocker" until release is closed; every later submit piles
// up in the pending queue, which is exactly the state admission control
// and fair dispatch are about.
func blockedRunner(t *testing.T, cfg RunnerConfig, onRun func(owner string)) (*Runner, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	reg := NewRegistry()
	started := make(chan struct{}, 1)
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		if jc.Request().Name == "blocker" {
			started <- struct{}{}
			select {
			case <-release:
			case <-jc.Ctx().Done():
				return nil, jc.Ctx().Err()
			}
			return nil, nil
		}
		if onRun != nil {
			onRun(jc.Owner())
		}
		return nil, nil
	})
	cfg.Workers = 1
	r := NewRunnerConfigured(reg, queue.NewStore(), cfg)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		r.Close()
	})
	blocker := blockingWorkflowRequest()
	blocker.Name = "blocker"
	if _, err := r.Submit(blocker, "flood@ucsd.edu"); err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now parked inside the blocker
	return r, release
}

func TestSubmitShedsWhenQueuesFull(t *testing.T) {
	r, _ := blockedRunner(t, RunnerConfig{MaxPendingPerTenant: 3, MaxPending: 5}, nil)

	// Tenant A fills its per-tenant bound.
	for i := 0; i < 3; i++ {
		if _, err := r.Submit(blockingWorkflowRequest(), "a@ucsd.edu"); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := r.Submit(blockingWorkflowRequest(), "a@ucsd.edu")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th tenant submit: err = %v, want ErrOverloaded", err)
	}
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Scope != "tenant" || ov.Limit != 3 || ov.RetryAfter <= 0 {
		t.Fatalf("overload detail = %+v", ov)
	}

	// Tenant B can still get in until the global bound trips.
	for i := 0; i < 2; i++ {
		if _, err := r.Submit(blockingWorkflowRequest(), "b@sdsc.edu"); err != nil {
			t.Fatalf("tenant b submit %d: %v", i, err)
		}
	}
	_, err = r.Submit(blockingWorkflowRequest(), "b@sdsc.edu")
	if !errors.As(err, &ov) || ov.Scope != "global" || ov.Limit != 5 {
		t.Fatalf("global overload: err = %v, detail %+v", err, ov)
	}

	if got := r.PendingTotal(); got != 5 {
		t.Fatalf("PendingTotal = %d, want 5 (bounded)", got)
	}
	if got := r.TenantPending("a@ucsd.edu"); got != 3 {
		t.Fatalf("TenantPending(a) = %d, want 3", got)
	}
	if got := r.ShedCount(); got != 2 {
		t.Fatalf("ShedCount = %d, want 2", got)
	}
	text := r.MetricsText()
	if !strings.Contains(text, "jobs_shed") || !strings.Contains(text, "queue_depth") {
		t.Fatalf("metrics missing shed/depth series:\n%s", text)
	}
}

// TestFairDispatchNoStarvation pins the fairness acceptance criterion: a
// tenant flooding the queue cannot starve a light tenant. With start-time
// weighted fair dispatch the light tenant's 5 jobs interleave with the
// flood instead of waiting behind all 20 of its jobs.
func TestFairDispatchNoStarvation(t *testing.T) {
	var mu sync.Mutex
	var order []string
	r, release := blockedRunner(t, RunnerConfig{}, func(owner string) {
		mu.Lock()
		order = append(order, owner)
		mu.Unlock()
	})

	const floods, lights = 20, 5
	submit := func(owner string, n int) {
		for i := 0; i < n; i++ {
			if _, err := r.Submit(blockingWorkflowRequest(), owner); err != nil {
				t.Fatalf("submit %s %d: %v", owner, i, err)
			}
		}
	}
	submit("flood@ucsd.edu", floods) // entire flood queued first
	submit("light@sdsc.edu", lights)

	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == floods+lights {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs executed", n, floods+lights)
		}
		time.Sleep(time.Millisecond)
	}

	lastLight := -1
	for i, owner := range order {
		if owner == "light@sdsc.edu" {
			lastLight = i
		}
	}
	// Equal weights alternate the two tenants, so the light tenant's last
	// job lands around position 2*lights; FIFO would leave it at the very
	// end behind the whole flood.
	if lastLight > 2*lights+2 {
		t.Fatalf("light tenant starved: last job at position %d of %d (order %v)",
			lastLight, len(order), order)
	}
}

// TestWeightedTenantsShareByWeight checks the fair queue end to end: a
// weight-2 tenant drains twice as fast as a weight-1 tenant.
func TestWeightedTenantsShareByWeight(t *testing.T) {
	var mu sync.Mutex
	var order []string
	r, release := blockedRunner(t,
		RunnerConfig{TenantWeights: map[string]int{"heavy@ucsd.edu": 2}},
		func(owner string) {
			mu.Lock()
			order = append(order, owner)
			mu.Unlock()
		})

	for i := 0; i < 8; i++ {
		req := blockingWorkflowRequest()
		if _, err := r.Submit(req, "heavy@ucsd.edu"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		req := blockingWorkflowRequest()
		if _, err := r.Submit(req, "slim@sdsc.edu"); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/12 jobs executed", n)
		}
		time.Sleep(time.Millisecond)
	}
	heavyFirst6 := 0
	for _, owner := range order[:6] {
		if owner == "heavy@ucsd.edu" {
			heavyFirst6++
		}
	}
	if heavyFirst6 < 3 || heavyFirst6 > 5 {
		t.Fatalf("weight-2 tenant got %d of first 6 slots, want ~4 (order %v)", heavyFirst6, order)
	}
}

func TestFairQueueWeightedPopOrder(t *testing.T) {
	fq := newFairQueue(func(tenant string) int {
		if tenant == "heavy" {
			return 2
		}
		return 1
	})
	for i := 0; i < 6; i++ {
		fq.Push("heavy", string(rune('a'+i)))
	}
	for i := 0; i < 3; i++ {
		fq.Push("light", string(rune('x'+i)))
	}
	if fq.Len() != 9 {
		t.Fatalf("Len = %d, want 9", fq.Len())
	}
	heavy := 0
	for i := 0; i < 6; i++ {
		id, ok := fq.Pop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if id >= "a" && id <= "f" {
			heavy++
		}
	}
	if heavy != 4 {
		t.Fatalf("heavy served %d of first 6, want 4 (weight 2:1)", heavy)
	}
	rest := fq.PopAll()
	if len(rest) != 3 || fq.Len() != 0 {
		t.Fatalf("PopAll = %v, Len = %d", rest, fq.Len())
	}
	if _, ok := fq.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

// TestEvictedStoreFallbackWindow exercises the bounded eviction pipeline:
// memory keeps `retain` jobs, the store keeps a storeRetainFactor*retain
// tail of evicted records reachable through Lookup, and everything older
// is deleted from the store too — so neither the evicted FIFO nor the
// store grows without bound.
func TestEvictedStoreFallbackWindow(t *testing.T) {
	r, store := newTestRunner(t, DefaultRegistry(), 1)
	r.SetRetention(2)

	const total = 30
	ids := make([]string, 0, total)
	for i := 0; i < total; i++ {
		st, err := r.Submit(tinySegmentRequest(), "tester@ucsd.edu")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitTerminalAnywhere(t, r, st.ID)
	}

	r.evictMu.Lock()
	evictLen := r.evicted.len()
	r.evictMu.Unlock()
	if limit := storeRetainFactor * 2; evictLen > limit {
		t.Fatalf("evicted FIFO holds %d ids, want <= %d", evictLen, limit)
	}
	if got := r.Count(); got > 3 {
		t.Fatalf("in-memory registry holds %d jobs, want <= 3 (retain 2)", got)
	}

	// The newest jobs resolve from memory or the store tail.
	for _, id := range ids[total-4:] {
		st, ok := r.Lookup(id)
		if !ok {
			t.Fatalf("recent job %s not resolvable", id)
		}
		if st.State != api.StateSucceeded {
			t.Fatalf("recent job %s state = %s", id, st.State)
		}
	}
	// Jobs far beyond the store tail are fully expired: no Lookup hit, no
	// store record, no result blob.
	for _, id := range ids[:total/2] {
		if _, ok := r.Lookup(id); ok {
			t.Fatalf("expired job %s still resolvable", id)
		}
		if _, ok := store.Get(JobKey(id)); ok {
			t.Fatalf("expired job %s still has a store record", id)
		}
		if _, ok := store.Get(ResultKey(id)); ok {
			t.Fatalf("expired job %s still has a result record", id)
		}
	}
}

// waitTerminalAnywhere waits on a job that may be evicted from memory
// between polls (Lookup falls back to the store).
func waitTerminalAnywhere(t *testing.T, r *Runner, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := r.Lookup(id)
		if !ok {
			t.Fatalf("job %s disappeared before finishing", id)
		}
		if st.State.Terminal() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting on job %s", id)
}

// registryThroughput measures mixed submit+poll ops/sec over the registry
// with the given shard count: 8 goroutines, mostly status polls with an
// occasional submit — the serving fast path under contention.
func registryThroughput(tb testing.TB, shardCount, goroutines, opsPerG int) float64 {
	tb.Helper()
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) { return nil, nil })
	r := NewRunnerConfigured(reg, queue.NewStore(), RunnerConfig{
		Workers: 2, Shards: shardCount,
		MaxPending: -1, MaxPendingPerTenant: -1,
	})
	defer r.Close()

	ids := make([]string, 256)
	for i := range ids {
		st, err := r.Submit(blockingWorkflowRequest(), "seed@ucsd.edu")
		if err != nil {
			tb.Fatal(err)
		}
		ids[i] = st.ID
	}

	var start, done sync.WaitGroup
	gate := make(chan struct{})
	start.Add(goroutines)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Done()
			<-gate
			for i := 0; i < opsPerG; i++ {
				if i%64 == 63 {
					r.Submit(blockingWorkflowRequest(), "bench@ucsd.edu")
				} else {
					r.Status(ids[(i*7+g*31)&255])
				}
			}
		}(g)
	}
	start.Wait()
	t0 := time.Now()
	close(gate)
	done.Wait()
	return float64(goroutines*opsPerG) / time.Since(t0).Seconds()
}

// TestShardedRegistryContention is the perf acceptance criterion: at 8
// goroutines the 32-shard registry must beat the single-mutex baseline by
// >= 2x on mixed submit+poll throughput. Lock contention needs real
// parallelism to show up, so the test only runs with >= 4 CPUs (CI); the
// benchmarks below track the same numbers everywhere.
func TestShardedRegistryContention(t *testing.T) {
	if testing.Short() {
		t.Skip("contention measurement skipped in -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: lock contention not measurable without parallelism", runtime.GOMAXPROCS(0))
	}
	registryThroughput(t, 1, 8, 2000) // warm up code paths
	single := registryThroughput(t, 1, 8, 50000)
	sharded := registryThroughput(t, 32, 8, 50000)
	t.Logf("single-mutex: %.0f ops/s, 32-shard: %.0f ops/s (%.2fx)", single, sharded, sharded/single)
	if sharded < 2*single {
		t.Fatalf("sharded registry %.0f ops/s < 2x single-mutex %.0f ops/s", sharded, single)
	}
}

func BenchmarkRegistrySubmitPollSharded(b *testing.B) {
	benchRegistrySubmitPoll(b, 32)
}

func BenchmarkRegistrySubmitPollSingle(b *testing.B) {
	benchRegistrySubmitPoll(b, 1)
}

func benchRegistrySubmitPoll(b *testing.B, shardCount int) {
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) { return nil, nil })
	r := NewRunnerConfigured(reg, queue.NewStore(), RunnerConfig{
		Workers: 2, Shards: shardCount,
		MaxPending: -1, MaxPendingPerTenant: -1,
	})
	defer r.Close()
	ids := make([]string, 256)
	for i := range ids {
		st, err := r.Submit(blockingWorkflowRequest(), "seed@ucsd.edu")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = st.ID
	}
	b.ReportAllocs()
	b.SetParallelism(8) // 8 goroutines per GOMAXPROCS: force queueing on the stripe locks
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%64 == 0 {
				r.Submit(blockingWorkflowRequest(), "bench@ucsd.edu")
			} else {
				r.Status(ids[(i*7)&255])
			}
		}
	})
}
