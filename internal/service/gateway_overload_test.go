package service

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/queue"
)

// newOverloadFixture wires a gateway over a runner whose single worker is
// parked inside a "blocker" job, so HTTP submits pile onto the pending
// queue and trip the configured admission bounds.
func newOverloadFixture(t *testing.T, cfg RunnerConfig, opts GatewayOptions) (*gwFixture, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	reg := NewRegistry()
	started := make(chan struct{}, 1)
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		if jc.Request().Name == "blocker" {
			started <- struct{}{}
			select {
			case <-release:
			case <-jc.Ctx().Done():
				return nil, jc.Ctx().Err()
			}
		}
		return nil, nil
	})
	cfg.Workers = 1
	runner := NewRunnerConfigured(reg, queue.NewStore(), cfg)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		runner.Close()
	})
	opts.AllowAnonymous = true
	if opts.PollInterval == 0 {
		opts.PollInterval = 2 * time.Millisecond
	}
	srv := httptest.NewServer(NewGateway(runner, opts))
	t.Cleanup(srv.Close)
	f := &gwFixture{t: t, runner: runner, srv: srv}

	blocker := blockingWorkflowRequest()
	blocker.Name = "blocker"
	var sub api.SubmitResponse
	if resp := f.do("POST", "/v1/jobs", blocker, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: status %d", resp.StatusCode)
	}
	<-started
	return f, release
}

// TestGatewayShedsWith429 is the backpressure acceptance criterion: under
// deliberate overload the gateway sheds with 429 + Retry-After and the
// pending queue stays at its bound instead of growing.
func TestGatewayShedsWith429(t *testing.T) {
	f, _ := newOverloadFixture(t, RunnerConfig{MaxPendingPerTenant: 2, MaxPending: 4}, GatewayOptions{})

	for i := 0; i < 2; i++ {
		var sub api.SubmitResponse
		if resp := f.do("POST", "/v1/jobs", blockingWorkflowRequest(), &sub); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d", i, resp.StatusCode)
		}
	}

	var shed int
	for i := 0; i < 5; i++ {
		var apiErr api.ErrorResponse
		resp := f.do("POST", "/v1/jobs", blockingWorkflowRequest(), &apiErr)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload submit %d: status %d, want 429", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
			t.Fatalf("429 without a usable Retry-After header (%q)", ra)
		}
		if !strings.Contains(apiErr.Error, "pending queue full") {
			t.Fatalf("429 body = %+v", apiErr)
		}
		shed++
	}

	if got := f.runner.ShedCount(); got < int64(shed) {
		t.Fatalf("ShedCount = %d, want >= %d", got, shed)
	}
	if got := f.runner.PendingTotal(); got > 4 {
		t.Fatalf("PendingTotal = %d after overload, want <= 4 (bounded)", got)
	}
	if text := f.runner.MetricsText(); !strings.Contains(text, "jobs_shed") {
		t.Fatalf("metrics missing jobs_shed after shedding:\n%s", text)
	}
}

// TestGatewayRateLimit429 covers the token-bucket per-tenant submit rate
// limit: after the burst is spent the gateway answers 429 with Retry-After
// before even reading the body, and counts the refusal per tenant.
func TestGatewayRateLimit429(t *testing.T) {
	runner := NewRunner(DefaultRegistry(), queue.NewStore(), 2)
	t.Cleanup(runner.Close)
	srv := httptest.NewServer(NewGateway(runner, GatewayOptions{
		AllowAnonymous: true,
		PollInterval:   2 * time.Millisecond,
		RateLimit:      1, // 1 submit/s steady state
		RateBurst:      2,
	}))
	t.Cleanup(srv.Close)
	f := &gwFixture{t: t, runner: runner, srv: srv}

	accepted, limited := 0, 0
	for i := 0; i < 6; i++ {
		var sub api.SubmitResponse
		resp := f.do("POST", "/v1/jobs", tinySegmentRequest(), &sub)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			limited++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("rate-limit 429 without Retry-After")
			}
		default:
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	if accepted < 1 || accepted > 2 {
		t.Fatalf("accepted = %d, want the burst of <= 2", accepted)
	}
	if limited < 4 {
		t.Fatalf("limited = %d, want >= 4", limited)
	}
	if text := runner.MetricsText(); !strings.Contains(text, "submits_rate_limited") {
		t.Fatalf("metrics missing submits_rate_limited:\n%s", text)
	}
}

// TestEventsStreamDisconnectReleases pins the NDJSON stream accounting: a
// consumer that disconnects mid-stream (slow client, dropped connection)
// must release its stream slot promptly, and LeakCheck counts streams so a
// leak here fails quiescence.
func TestEventsStreamDisconnectReleases(t *testing.T) {
	f, release := newOverloadFixture(t, RunnerConfig{}, GatewayOptions{})

	// The blocker is the only job; find its id.
	jobs := f.runner.List()
	if len(jobs) != 1 {
		t.Fatalf("expected 1 job, got %d", len(jobs))
	}
	id := jobs[0].ID

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", f.srv.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	// Read one status line so the stream is live, then drop the connection
	// while the job is still running.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("first event line: %v", err)
	}
	if got := f.runner.LiveStreams(); got != 1 {
		t.Fatalf("LiveStreams = %d with one open stream, want 1", got)
	}
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for f.runner.LiveStreams() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("LiveStreams = %d long after disconnect, want 0", f.runner.LiveStreams())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Let the blocker finish and assert full quiescence, streams included.
	close(release)
	waitState(t, f.runner, id, terminal)
	assertNoLeaks(t, f.runner)
}
