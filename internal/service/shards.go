package service

import (
	"context"
	"sort"
	"sync"
)

// The job registry is lock-striped: jobs and their cancel funcs live in
// defaultShards shards keyed by an FNV-1a hash of the job id, so status
// polls, submits, and terminal transitions on different jobs never contend
// on one mutex. The count must be a power of two (the hash is masked).
const defaultShards = 32

// regShard is one stripe of the registry. closed is flipped per shard by
// Close under the shard mutex, so every Submit either observes it (and
// refuses) or completed its insert beforehand and is visible to Close's
// drain — the same invariant the old single-mutex design kept.
type regShard struct {
	mu      sync.Mutex
	jobs    map[string]*job
	cancels map[string]context.CancelFunc
	closed  bool
}

func newShards(n int) []regShard {
	if n <= 0 {
		n = defaultShards
	}
	// Round up to a power of two so shardFor can mask instead of mod.
	p := 1
	for p < n {
		p <<= 1
	}
	shards := make([]regShard, p)
	for i := range shards {
		shards[i].jobs = make(map[string]*job)
		shards[i].cancels = make(map[string]context.CancelFunc)
	}
	return shards
}

// shardFor picks the shard owning id. Inline FNV-1a over the id bytes:
// no allocation, so the status-poll fast path stays at 0 allocs/op.
func (r *Runner) shardFor(id string) *regShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &r.shards[h&r.shardMask]
}

// lookupJob resolves id in its shard.
func (r *Runner) lookupJob(id string) *job {
	sh := r.shardFor(id)
	sh.mu.Lock()
	j := sh.jobs[id]
	sh.mu.Unlock()
	return j
}

// evictFIFO is the bounded queue of job ids evicted from memory whose
// store records remain readable. Pop-front uses a head index with periodic
// compaction, so the backing array stays proportional to the live tail
// instead of growing for the life of the process.
type evictFIFO struct {
	buf  []string
	head int
}

func (f *evictFIFO) push(id string) { f.buf = append(f.buf, id) }

func (f *evictFIFO) pop() (string, bool) {
	if f.head >= len(f.buf) {
		return "", false
	}
	id := f.buf[f.head]
	f.buf[f.head] = ""
	f.head++
	if f.head > 64 && f.head > len(f.buf)/2 {
		f.buf = append(f.buf[:0], f.buf[f.head:]...)
		f.head = 0
	}
	return id, true
}

func (f *evictFIFO) len() int { return len(f.buf) - f.head }

// SetRetention replaces the in-memory job retention cap (tests use small
// values to exercise eviction; the default is maxRetainedJobs).
func (r *Runner) SetRetention(n int) {
	if n > 0 {
		r.retain.Store(int64(n))
	}
}

// pruneIfNeeded evicts the oldest terminal jobs once the in-memory index
// exceeds the retention cap (with 10% amortization slack), and deletes the
// store records of jobs that age past the store's larger tail. Global
// across shards: candidates are ordered by submit sequence so eviction
// age-order matches the old single-map design. Callers must hold no shard
// lock.
func (r *Runner) pruneIfNeeded() {
	retain := int(r.retain.Load())
	if int(r.njobs.Load()) <= retain+retain/10+1 {
		return
	}
	// Single-flight: concurrent terminal transitions all spotting the
	// overshoot elect one sweeper; the rest skip (the next transition
	// re-checks).
	if !r.pruneMu.TryLock() {
		return
	}
	defer r.pruneMu.Unlock()

	type cand struct {
		id  string
		seq int64
	}
	var cands []cand
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		total += len(sh.jobs)
		for id, j := range sh.jobs {
			if stateNames[j.state.Load()].Terminal() {
				cands = append(cands, cand{id, j.seq})
			}
		}
		sh.mu.Unlock()
	}
	excess := total - retain
	if excess <= 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	if excess > len(cands) {
		excess = len(cands)
	}
	for _, c := range cands[:excess] {
		sh := r.shardFor(c.id)
		sh.mu.Lock()
		j := sh.jobs[c.id]
		// Re-verify under the lock: a Lookup cannot race a half-removed
		// record, and a job resurrected by id reuse (impossible today, ids
		// are store-sequenced) would be left alone.
		if j != nil && stateNames[j.state.Load()].Terminal() {
			delete(sh.jobs, c.id)
			r.njobs.Add(-1)
			sh.mu.Unlock()
			r.evictMu.Lock()
			r.evicted.push(c.id)
			r.evictMu.Unlock()
		} else {
			sh.mu.Unlock()
		}
	}
	// Age the eviction tail: ids beyond the store retention window lose
	// their store records too, bounding total footprint.
	storeCap := storeRetainFactor * retain
	r.evictMu.Lock()
	var expired []string
	for r.evicted.len() > storeCap {
		id, ok := r.evicted.pop()
		if !ok {
			break
		}
		expired = append(expired, id)
	}
	r.evictMu.Unlock()
	for _, id := range expired {
		r.store.Del(JobKey(id))
		r.store.Del(ResultKey(id))
	}
}
