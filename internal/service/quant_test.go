package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"chaseci/internal/api"
)

// int8SegmentRequest is a mid-size segment job with the mask inlined, so a
// test can compare the exact voxels an f32 and an int8 run produce.
func int8SegmentRequest(precision string) *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindSegment,
		Segment: &api.SegmentSpec{
			Source:     api.VolumeSource{Synth: &api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 8, Seed: 11}},
			Threshold:  130,
			SeedStride: [3]int{1, 4, 4},
			MaxSteps:   400,
			ReturnMask: true,
			Net:        &api.NetConfig{MoveProb: 0.55, Precision: precision},
		},
	}
}

// TestGatewaySegmentInt8EndToEnd runs the same segment job through the HTTP
// gateway at f32 and int8 precision and holds the int8 mask to the
// documented error bound: at most 2% of voxels may disagree with f32 (the
// same bound TestSegmentInt8ErrorBounded enforces at the ffn layer).
func TestGatewaySegmentInt8EndToEnd(t *testing.T) {
	f := newGWFixture(t, true)

	run := func(precision string) api.SegmentResult {
		st, env := f.submitAndWait(int8SegmentRequest(precision))
		if st.State != api.StateSucceeded {
			t.Fatalf("precision %q: state = %s (%s)", precision, st.State, st.Error)
		}
		var res api.SegmentResult
		if err := json.Unmarshal(env.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Steps == 0 || res.MaskVoxels == 0 || len(res.MaskBits) == 0 {
			t.Fatalf("precision %q: degenerate result %+v", precision, res)
		}
		return res
	}
	f32 := run("f32")
	i8 := run("int8")

	if f32.VoxelsTotal != i8.VoxelsTotal || len(f32.MaskBits) != len(i8.MaskBits) {
		t.Fatalf("shape mismatch: f32 %+v vs int8 %+v", f32, i8)
	}
	var diff int
	for i := range f32.MaskBits {
		for x := f32.MaskBits[i] ^ i8.MaskBits[i]; x != 0; x &= x - 1 {
			diff++
		}
	}
	rate := float64(diff) / float64(f32.VoxelsTotal)
	t.Logf("gateway int8 vs f32: %d/%d mask voxels disagree (%.4f%%), mask voxels %d vs %d",
		diff, f32.VoxelsTotal, 100*rate, i8.MaskVoxels, f32.MaskVoxels)
	if rate > 0.02 {
		t.Fatalf("mask disagreement rate %.4f exceeds the documented 2%% bound", rate)
	}
}

// TestGatewayRejectsUnknownPrecision: validation errors surface as HTTP 400
// before a job is enqueued.
func TestGatewayRejectsUnknownPrecision(t *testing.T) {
	f := newGWFixture(t, true)
	resp := f.do("POST", "/v1/jobs", int8SegmentRequest("fp16"), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("submit with precision fp16: status %d, want 400", resp.StatusCode)
	}
}
