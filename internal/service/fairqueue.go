package service

import (
	"container/heap"
	"sync"
)

// fairQueue is a weighted-fair queue of pending job ids grouped by tenant
// (the authenticated submit identity). Jobs within a tenant dequeue FIFO;
// across tenants, Pop interleaves by start-time fair queuing: each tenant
// carries a virtual finish time advanced by 1/weight per dequeued job, and
// Pop always serves the tenant furthest behind. A tenant that floods the
// queue therefore cannot starve a light tenant — the light tenant's few
// jobs dequeue at their fair share no matter how deep the flood is.
//
// The Runner's single-node dispatch uses one fairQueue; every cluster-mode
// node pool carries its own, so fairness holds per node queue too.
type fairQueue struct {
	mu sync.Mutex
	// weight resolves a tenant's share (>= 1); nil means every tenant
	// weighs 1.
	weight func(tenant string) int

	tenants map[string]*tenantQ
	active  tenantHeap
	vtime   float64 // global virtual time = vt of the last dequeued tenant
	size    int
}

// tenantQ is one tenant's FIFO backlog plus its fair-queuing state.
type tenantQ struct {
	name string
	ids  []string
	head int     // index of the FIFO front inside ids
	vt   float64 // virtual finish time of the tenant's next dequeue
	hidx int     // position in the active heap; -1 when idle
}

func newFairQueue(weight func(string) int) *fairQueue {
	return &fairQueue{weight: weight, tenants: make(map[string]*tenantQ)}
}

func (f *fairQueue) weightOf(tenant string) float64 {
	if f.weight == nil {
		return 1
	}
	if w := f.weight(tenant); w > 0 {
		return float64(w)
	}
	return 1
}

// Push enqueues id under tenant.
func (f *fairQueue) Push(tenant, id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	q := f.tenants[tenant]
	if q == nil {
		q = &tenantQ{name: tenant, hidx: -1}
		f.tenants[tenant] = q
	}
	q.ids = append(q.ids, id)
	f.size++
	if q.hidx < 0 {
		// (Re)activating: the tenant resumes no earlier than the global
		// virtual time, so an idle period cannot bank credit for a burst.
		if q.vt < f.vtime {
			q.vt = f.vtime
		}
		heap.Push(&f.active, q)
	}
}

// Pop dequeues the next id by weighted fairness. ok is false when empty.
func (f *fairQueue) Pop() (id string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.active) == 0 {
		return "", false
	}
	q := f.active[0]
	id = q.ids[q.head]
	q.ids[q.head] = "" // release the string for GC
	q.head++
	f.size--
	f.vtime = q.vt
	q.vt += 1 / f.weightOf(q.name)
	if q.head == len(q.ids) {
		q.ids = q.ids[:0]
		q.head = 0
		heap.Pop(&f.active)
	} else {
		// Compact the drained prefix once it dominates the backing array so
		// a long-lived tenant's slice stays proportional to its backlog.
		if q.head > 64 && q.head > len(q.ids)/2 {
			q.ids = append(q.ids[:0], q.ids[q.head:]...)
			q.head = 0
		}
		heap.Fix(&f.active, 0)
	}
	return id, true
}

// PopAll drains every pending id (Close and node-drain sweeps).
func (f *fairQueue) PopAll() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, f.size)
	for _, q := range f.tenants {
		out = append(out, q.ids[q.head:]...)
		q.ids = q.ids[:0]
		q.head = 0
		if q.hidx >= 0 {
			q.hidx = -1
		}
	}
	f.active = f.active[:0]
	f.size = 0
	return out
}

// Len returns the total number of queued ids.
func (f *fairQueue) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// tenantHeap orders active tenants by virtual finish time (ties broken by
// name so dequeue order is deterministic).
type tenantHeap []*tenantQ

func (h tenantHeap) Len() int { return len(h) }
func (h tenantHeap) Less(i, j int) bool {
	if h[i].vt != h[j].vt {
		return h[i].vt < h[j].vt
	}
	return h[i].name < h[j].name
}
func (h tenantHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hidx, h[j].hidx = i, j
}
func (h *tenantHeap) Push(x any) {
	q := x.(*tenantQ)
	q.hidx = len(*h)
	*h = append(*h, q)
}
func (h *tenantHeap) Pop() any {
	old := *h
	q := old[len(old)-1]
	old[len(old)-1] = nil
	q.hidx = -1
	*h = old[:len(old)-1]
	return q
}
