package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/ffn"
)

// The sweep job: hyperparameter search as a job that submits jobs. Each
// candidate in the ffn.Grid cartesian product becomes a train job with a
// held-out validation slab, submitted through the same admission-controlled
// fair queue as everything else — a sweep enjoys no back door around tenant
// bounds. While its children run, the sweep worker "helps": it drains the
// pending queue like any pool worker, so a single-worker runner cannot
// deadlock on a job that is waiting for jobs.

// errNoRunner marks a JobContext built without a runner (test harnesses);
// job kinds that submit child jobs cannot run there.
var errNoRunner = errors.New("service: job context has no runner to submit child jobs")

// submitChild submits a child job under the parent's identity, helping the
// pool when admission sheds the submit instead of failing the parent.
func (jc *JobContext) submitChild(req *api.JobRequest) (api.JobStatus, error) {
	if jc.runner == nil {
		return api.JobStatus{}, errNoRunner
	}
	for {
		st, err := jc.runner.Submit(req, jc.Owner())
		if err == nil || !errors.Is(err, ErrOverloaded) {
			return st, err
		}
		if !jc.helpOnce() {
			select {
			case <-jc.ctx.Done():
				return api.JobStatus{}, jc.ctx.Err()
			case <-time.After(time.Millisecond):
			}
		}
	}
}

// helpOnce pops one pending job and executes it inline on the calling
// worker's goroutine. False when the pending queue is empty (or this is a
// cluster runner, whose node pools carry their own queues).
func (jc *JobContext) helpOnce() bool {
	if jc.runner == nil {
		return false
	}
	id, ok := jc.runner.pending.Pop()
	if !ok {
		return false
	}
	jc.runner.execute(id)
	return true
}

// sweepDepth reports the time depth of the sweep's source volume without
// materializing it.
func sweepDepth(jc *JobContext, src *api.VolumeSource) (int, error) {
	switch {
	case src.Ref != "":
		info, ok := jc.Datasets().Stat(src.Ref)
		if !ok {
			return 0, fmt.Errorf("%w: source ref %s is not in the dataset store", api.ErrInvalid, src.Ref)
		}
		return info.D, nil
	case src.Synth != nil:
		return src.Synth.Steps, nil
	default:
		return src.D, nil
	}
}

// sweepChild builds candidate i's train job. The network seed is shared
// across candidates (so architectures differ only where the grid says they
// do) and the sampling seed is derived the same way ffn.Evaluate derives it.
func sweepChild(spec *api.SweepSpec, name string, i int, h ffn.Hyperparams, steps, holdout int) *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindTrain,
		Name: fmt.Sprintf("%s/cand-%02d", name, i),
		Train: &api.TrainSpec{
			Source:       spec.Source,
			Threshold:    spec.Threshold,
			Steps:        steps,
			LR:           h.LR,
			Momentum:     h.Momentum,
			NetSeed:      spec.Seed,
			SampleSeed:   spec.Seed ^ 0xabcd,
			HoldoutSteps: holdout,
			Net: &api.NetConfig{
				FOV:      [3]int{3, 7, 7},
				Features: h.Features,
				Modules:  h.Modules,
				MoveStep: [3]int{1, 2, 2},
			},
		},
	}
}

// runCandidates executes one rung: every candidate trains for its given
// step count and is scored on the holdout slab. Parallelism is bounded by
// spec.Parallel (0 defaults to 2, matching the api doc); the sweep worker
// helps drain the pool while it waits.
func runCandidates(jc *JobContext, spec *api.SweepSpec, name string, cands []ffn.Hyperparams, steps []int, holdout int, stage string, entries []api.SweepEntry) error {
	limit := spec.Parallel
	if limit <= 0 {
		limit = 2
	}
	ids := make([]string, len(cands))
	inflight := make(map[string]int)
	next, done := 0, 0
	cancelInflight := func() {
		for id := range inflight {
			jc.runner.Cancel(id)
		}
	}
	for done < len(cands) {
		for next < len(cands) && len(inflight) < limit {
			st, err := jc.submitChild(sweepChild(spec, name, next, cands[next], steps[next], holdout))
			if err != nil {
				cancelInflight()
				return err
			}
			ids[next] = st.ID
			inflight[st.ID] = next
			next++
		}
		progressed := false
		for id, idx := range inflight {
			raw, st, ok := jc.runner.Result(id)
			if !ok {
				cancelInflight()
				return fmt.Errorf("service: sweep candidate %s vanished", id)
			}
			if !st.State.Terminal() {
				continue
			}
			delete(inflight, id)
			done++
			progressed = true
			if st.State != api.StateSucceeded {
				cancelInflight()
				return fmt.Errorf("service: sweep candidate %s (%s): %s", id, st.Name, st.Error)
			}
			var tr api.TrainResult
			if err := json.Unmarshal(raw, &tr); err != nil {
				cancelInflight()
				return fmt.Errorf("service: sweep candidate %s result: %w", id, err)
			}
			h := cands[idx]
			entries[idx] = api.SweepEntry{
				Params: api.SweepParams{
					LR: h.LR, Momentum: h.Momentum,
					Features: h.Features, Modules: h.Modules, TrainSteps: steps[idx],
				},
				JobID:     id,
				TrainLoss: tr.LossTail,
				Precision: tr.Precision,
				Recall:    tr.Recall,
				F1:        tr.F1,
				IoU:       tr.IoU,
			}
			jc.Progress(int64(done), int64(len(cands)), fmt.Sprintf("%s %d/%d", stage, done, len(cands)))
		}
		if done == len(cands) {
			break
		}
		if !progressed && !jc.helpOnce() {
			select {
			case <-jc.Ctx().Done():
				cancelInflight()
				return jc.Ctx().Err()
			case <-time.After(time.Millisecond):
			}
		}
	}
	return nil
}

// SweepHandler fans a hyperparameter grid out over train jobs and returns
// the leaderboard. With EarlyStop, candidates first train a half-step rung;
// those at or below the median F1 stop there (their rung-1 scores stand,
// flagged EarlyStopped) and only the survivors train the full budget — the
// successive-halving economics without a scheduler in the client.
func SweepHandler(jc *JobContext) (any, error) {
	if jc.runner == nil {
		return nil, errNoRunner
	}
	spec := jc.Request().Sweep
	name := jc.Request().Name
	if name == "" {
		name = "sweep"
	}
	cands := ffn.Grid(spec.LRs, spec.Momentums, spec.Features, spec.Modules, spec.TrainSteps)

	depth, err := sweepDepth(jc, &spec.Source)
	if err != nil {
		return nil, err
	}
	frac := spec.TrainFraction
	if frac == 0 {
		frac = 0.5
	}
	trainSteps := int(frac * float64(depth))
	if trainSteps < 1 {
		trainSteps = 1
	}
	holdout := depth - trainSteps
	if holdout < 1 {
		return nil, fmt.Errorf("%w: train fraction %g leaves no holdout in a %d-step volume",
			api.ErrInvalid, frac, depth)
	}

	res := api.SweepResult{Candidates: len(cands)}
	entries := make([]api.SweepEntry, len(cands))
	full := make([]int, len(cands))
	for i, h := range cands {
		full[i] = h.TrainSteps
	}

	survivors := cands
	steps := full
	if spec.EarlyStop && len(cands) > 1 {
		rung := make([]int, len(cands))
		for i, s := range full {
			rung[i] = (s + 1) / 2
		}
		if err := runCandidates(jc, spec, name+"/rung1", cands, rung, holdout, "rung1", entries); err != nil {
			return nil, err
		}
		f1s := make([]float64, len(entries))
		for i, e := range entries {
			f1s[i] = e.F1
		}
		sort.Float64s(f1s)
		median := f1s[(len(f1s)-1)/2]
		survivors, steps = nil, nil
		idxs := make([]int, 0, len(cands))
		for i, e := range entries {
			if e.F1 > median {
				survivors = append(survivors, cands[i])
				steps = append(steps, full[i])
				idxs = append(idxs, i)
			} else {
				entries[i].EarlyStopped = true
				res.EarlyStopped++
			}
		}
		if len(survivors) == 0 {
			// A flat rung (every candidate at the median) promotes everyone:
			// stopping all of them would leave the sweep with no full run.
			survivors, steps, idxs = cands, full, idxs[:0]
			for i := range cands {
				idxs = append(idxs, i)
				entries[i].EarlyStopped = false
			}
			res.EarlyStopped = 0
		}
		sub := make([]api.SweepEntry, len(survivors))
		if err := runCandidates(jc, spec, name+"/final", survivors, steps, holdout, "final", sub); err != nil {
			return nil, err
		}
		for k, i := range idxs {
			entries[i] = sub[k]
		}
	} else {
		if err := runCandidates(jc, spec, name, survivors, steps, holdout, "train", entries); err != nil {
			return nil, err
		}
	}

	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Better(entries[j]) })
	res.Leaderboard = entries
	res.Best = entries[0]
	return res, nil
}
