package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/queue"
)

// waitState polls until the job reaches a terminal state or pred(st) holds.
func waitState(t *testing.T, r *Runner, id string, pred func(api.JobStatus) bool) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := r.Status(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if pred(st) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := r.Status(id)
	t.Fatalf("timeout waiting on job %s (state %s, %d/%d %s)", id, st.State, st.Done, st.Total, st.Stage)
	return st
}

func terminal(st api.JobStatus) bool { return st.State.Terminal() }

// tinySegmentRequest is a segment job sized to finish in a few
// milliseconds: a FOV-sized volume with one explicit center seed.
func tinySegmentRequest() *api.JobRequest {
	d, h, w := 5, 9, 9
	data := make([]float32, d*h*w)
	for i := range data {
		data[i] = float32(i%7) - 3
	}
	return &api.JobRequest{
		Kind: api.KindSegment,
		Name: "tiny-segment",
		Segment: &api.SegmentSpec{
			Source:   api.VolumeSource{D: d, H: h, W: w, Data: data},
			Seeds:    [][3]int{{2, 4, 4}},
			MaxSteps: 2,
		},
	}
}

// bigSegmentRequest is a segment job large enough to observe and cancel
// mid-flight: a synthetic scene with dense grid seeding and an unbounded
// flood (several thousand FOV applications).
func bigSegmentRequest() *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindSegment,
		Segment: &api.SegmentSpec{
			Source:     api.VolumeSource{Synth: &api.SynthSpec{NLon: 72, NLat: 48, NLev: 4, Steps: 12, Seed: 7}},
			Threshold:  1, // IVT magnitudes are O(100); nearly every voxel seeds
			SeedStride: [3]int{1, 3, 3},
			Net:        &api.NetConfig{MoveProb: 0.55},
		},
	}
}

func newTestRunner(t *testing.T, reg *Registry, workers int) (*Runner, *queue.Store) {
	t.Helper()
	store := queue.NewStore()
	r := NewRunner(reg, store, workers)
	t.Cleanup(r.Close)
	return r, store
}

func TestSubmitRunsSegmentJob(t *testing.T) {
	r, store := newTestRunner(t, DefaultRegistry(), 2)
	st, err := r.Submit(tinySegmentRequest(), "tester@ucsd.edu")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateQueued || st.Owner != "tester@ucsd.edu" {
		t.Fatalf("submit status = %+v", st)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}

	raw, _, ok := r.Result(st.ID)
	if !ok || raw == nil {
		t.Fatal("missing result payload")
	}
	var res api.SegmentResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	// The FOV-sized volume admits exactly one application: every move
	// target falls out of bounds.
	if res.Steps != 1 || res.SeedsUsed != 1 || res.VoxelsTotal != 5*9*9 {
		t.Fatalf("result = %+v", res)
	}

	// Job state and result persist in the queue store.
	if rec, ok := store.Get(JobKey(st.ID)); !ok || !strings.Contains(rec, `"succeeded"`) {
		t.Fatalf("store job record = %q, ok=%v", rec, ok)
	}
	if _, ok := store.Get(ResultKey(st.ID)); !ok {
		t.Fatal("store missing result record")
	}
	if got := r.MetricsText(); !strings.Contains(got, `jobs_succeeded{kind="segment"} 1`) {
		t.Fatalf("metrics missing success counter:\n%s", got)
	}
	assertNoLeaks(t, r)
}

func TestSubmitValidatesRequest(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	_, err := r.Submit(&api.JobRequest{Kind: "nonsense"}, "")
	if !errors.Is(err, api.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

func TestCancelRunningJobReportsPartialStats(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	st, err := r.Submit(bigSegmentRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the flood is genuinely mid-flight (progress ticking in the
	// segment stage), then cancel.
	waitState(t, r, st.ID, func(s api.JobStatus) bool {
		return s.Stage == "segment" && s.Done > 0
	})
	if !r.Cancel(st.ID) {
		t.Fatal("Cancel returned false for a running job")
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.FinishedAt == 0 || final.Error == "" {
		t.Fatalf("terminal status incomplete: %+v", final)
	}

	// Partial stats are recorded: the flood took some steps but was cut
	// short of covering the scene.
	raw, _, ok := r.Result(st.ID)
	if !ok || raw == nil {
		t.Fatal("cancelled segment job must record partial stats")
	}
	var res api.SegmentResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatalf("partial result has no steps: %+v", res)
	}
	if got := r.MetricsText(); !strings.Contains(got, `jobs_cancelled{kind="segment"} 1`) {
		t.Fatalf("metrics missing cancel counter:\n%s", got)
	}
}

func TestCancelMidFlightLabelJob(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	req := &api.JobRequest{
		Kind: api.KindLabel,
		Label: &api.LabelSpec{
			Source:    api.VolumeSource{Synth: &api.SynthSpec{NLon: 96, NLat: 64, NLev: 4, Steps: 48, Seed: 3}},
			Threshold: 120,
		},
	}
	st, err := r.Submit(req, "")
	if err != nil {
		t.Fatal(err)
	}
	// The synth stage dominates wall time here; cancelling during it (or
	// during labelling) must stop the job promptly either way.
	waitState(t, r, st.ID, func(s api.JobStatus) bool { return s.Done > 0 })
	if !r.Cancel(st.ID) {
		t.Fatal("Cancel returned false for a running job")
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
}

// blockingWorkflowRequest passes api validation for the workflow kind;
// tests pair it with a stub handler to control execution timing.
func blockingWorkflowRequest() *api.JobRequest {
	return &api.JobRequest{
		Kind:     api.KindWorkflow,
		Workflow: &api.WorkflowSpec{Name: "stub", Steps: []api.WorkflowStep{{Name: "a"}}},
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	reg := NewRegistry()
	started := make(chan string, 8)
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		started <- jc.Request().Name
		<-jc.Ctx().Done()
		return nil, jc.Ctx().Err()
	})
	r, _ := newTestRunner(t, reg, 1)

	blocker := blockingWorkflowRequest()
	blocker.Name = "blocker"
	b, err := r.Submit(blocker, "")
	if err != nil {
		t.Fatal(err)
	}
	queued := blockingWorkflowRequest()
	queued.Name = "queued"
	q, err := r.Submit(queued, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started // blocker occupies the only worker

	if !r.Cancel(q.ID) {
		t.Fatal("Cancel returned false for a queued job")
	}
	st, _ := r.Status(q.ID)
	if st.State != api.StateCancelled || st.StartedAt != 0 {
		t.Fatalf("queued-cancel status = %+v", st)
	}

	// Unblock the worker; the cancelled job must never start.
	r.Cancel(b.ID)
	waitState(t, r, b.ID, terminal)
	time.Sleep(10 * time.Millisecond)
	select {
	case name := <-started:
		t.Fatalf("cancelled queued job %q ran anyway", name)
	default:
	}
}

func TestRunnerCloseCancelsRunning(t *testing.T) {
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		<-jc.Ctx().Done()
		return nil, jc.Ctx().Err()
	})
	store := queue.NewStore()
	r := NewRunner(reg, store, 1)
	st, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, func(s api.JobStatus) bool { return s.State == api.StateRunning })
	r.Close()
	got, _ := r.Status(st.ID)
	if got.State != api.StateCancelled {
		t.Fatalf("state after Close = %s, want cancelled", got.State)
	}
	if _, err := r.Submit(blockingWorkflowRequest(), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
}

func TestHandlerPanicBecomesFailure(t *testing.T) {
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		panic("kaboom")
	})
	r, _ := newTestRunner(t, reg, 1)
	st, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateFailed || !strings.Contains(final.Error, "kaboom") {
		t.Fatalf("status = %+v", final)
	}
}

func TestAllKindsEndToEndInProcess(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 4)
	reqs := []*api.JobRequest{
		tinySegmentRequest(),
		{Kind: api.KindLabel, Label: &api.LabelSpec{
			Source:    api.VolumeSource{Synth: &api.SynthSpec{NLon: 24, NLat: 16, NLev: 3, Steps: 6, Seed: 2}},
			Threshold: 120,
		}},
		{Kind: api.KindIVT, IVT: &api.IVTSpec{
			Synth: api.SynthSpec{NLon: 24, NLat: 16, NLev: 3, Steps: 4, Seed: 2}, Threshold: 120,
		}},
		{Kind: api.KindTrain, Train: &api.TrainSpec{
			Source:    api.VolumeSource{Synth: &api.SynthSpec{NLon: 24, NLat: 16, NLev: 3, Steps: 6, Seed: 2}},
			Threshold: 120, Steps: 10,
		}},
		{Kind: api.KindWorkflow, Workflow: &api.WorkflowSpec{
			Name: "ppods",
			Steps: []api.WorkflowStep{
				{Name: "download", DurationMS: 37 * 60 * 1000, Measurements: map[string]float64{"pods": 14}},
				{Name: "train", DependsOn: []string{"download"}, DurationMS: 306 * 60 * 1000},
			},
		}},
	}
	for _, req := range reqs {
		st, err := r.Submit(req, "")
		if err != nil {
			t.Fatalf("%s: %v", req.Kind, err)
		}
		final := waitState(t, r, st.ID, terminal)
		if final.State != api.StateSucceeded {
			t.Fatalf("%s: state = %s (%s)", req.Kind, final.State, final.Error)
		}
		raw, _, _ := r.Result(st.ID)
		if len(raw) == 0 {
			t.Fatalf("%s: empty result", req.Kind)
		}
	}
	// The virtual-time workflow totals 343 minutes but must cost ~no wall
	// time; its report carries the measured durations.
	sts := r.List()
	last := sts[len(sts)-1]
	raw, _, _ := r.Result(last.ID)
	var wres api.WorkflowResult
	if err := json.Unmarshal(raw, &wres); err != nil {
		t.Fatal(err)
	}
	if wres.TotalMS != 343*60*1000 || wres.Failed {
		t.Fatalf("workflow result = %+v", wres)
	}
	assertNoLeaks(t, r)
}

// TestRunnerRestartOnSharedStore: a new runner generation over a reused
// store must not resurrect or clobber the previous generation's records —
// orphaned pending jobs flip to failed, and job ids keep counting from
// the store's sequence.
func TestCloseCancelsPendingJobs(t *testing.T) {
	store := queue.NewStore()
	reg := NewRegistry()
	reg.Register(api.KindWorkflow, func(jc *JobContext) (any, error) {
		<-jc.Ctx().Done() // runs until the runner closes
		return struct{}{}, nil
	})
	r := NewRunner(reg, store, 1)
	first, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, first.ID, func(s api.JobStatus) bool { return s.State == api.StateRunning })
	// The only worker is occupied, so this stays pending until Close.
	stuck, err := r.Submit(blockingWorkflowRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if st, _ := r.Status(stuck.ID); st.State != api.StateCancelled {
		t.Fatalf("pending job state after Close = %s, want cancelled", st.State)
	}
	if store.LLen(PendingKey) != 0 {
		t.Fatalf("pending list not drained by Close: %d entries", store.LLen(PendingKey))
	}
	if rec, ok := store.Get(JobKey(stuck.ID)); !ok || !strings.Contains(rec, `"cancelled"`) {
		t.Fatalf("store record = %q, ok=%v", rec, ok)
	}
}

// TestRunnerRestartOnSharedStore: a new runner generation over a store
// left behind by a crashed one (pending id + queued record, no Close)
// must not resurrect or clobber the old records.
func TestRunnerRestartOnSharedStore(t *testing.T) {
	store := queue.NewStore()
	// Manufacture the crash leftovers: the seq counter, a queued status
	// record, and its pending-list entry.
	store.Incr(seqKey, 3)
	ghost := api.JobStatus{ID: "job-000002", Kind: api.KindSegment, State: api.StateQueued}
	raw, _ := json.Marshal(ghost)
	store.Set(JobKey(ghost.ID), string(raw))
	store.LPush(PendingKey, ghost.ID)

	r := NewRunner(DefaultRegistry(), store, 1)
	t.Cleanup(r.Close)
	rec, ok := store.Get(JobKey(ghost.ID))
	if !ok || !strings.Contains(rec, `"failed"`) || !strings.Contains(rec, "orphaned") {
		t.Fatalf("orphaned record = %q, ok=%v", rec, ok)
	}
	if store.LLen(PendingKey) != 0 {
		t.Fatalf("pending list not drained: %d entries", store.LLen(PendingKey))
	}
	// New ids continue from the store counter instead of overwriting the
	// previous generation's records.
	st, err := r.Submit(tinySegmentRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-000004" {
		t.Fatalf("id = %s, want job-000004 (sequence continues)", st.ID)
	}
	waitState(t, r, st.ID, terminal)
}

// TestTerminalJobEviction: once the retention cap is exceeded, the
// oldest terminal jobs leave the in-memory index while their store
// records survive.
func TestTerminalJobEviction(t *testing.T) {
	r, store := newTestRunner(t, DefaultRegistry(), 1)
	r.SetRetention(2)
	// With retain=2 the sweep fires when the index exceeds 3 (10% slack
	// rounds to +1), so six jobs guarantee two prunes back down to 2.
	var ids []string
	for i := 0; i < 6; i++ {
		st, err := r.Submit(tinySegmentRequest(), "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		waitState(t, r, st.ID, terminal)
	}
	// The final execute's prune runs after its own terminal persist, so
	// give it a beat, then the index must be at the cap.
	deadline := time.Now().Add(5 * time.Second)
	for r.Count() > 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := r.Count(); got != 2 {
		t.Fatalf("retained %d jobs, want 2", got)
	}
	if _, ok := r.Status(ids[0]); ok {
		t.Fatal("oldest job still in memory after eviction")
	}
	if rec, ok := store.Get(JobKey(ids[0])); !ok || !strings.Contains(rec, `"succeeded"`) {
		t.Fatalf("evicted job lost its store record: %q ok=%v", rec, ok)
	}
	// The read path falls back to the store, so the evicted job's id
	// stays resolvable with its full status and result.
	st, ok := r.Lookup(ids[0])
	if !ok || st.State != api.StateSucceeded || st.ID != ids[0] {
		t.Fatalf("Lookup after eviction = %+v, ok=%v", st, ok)
	}
	raw, st2, ok := r.Result(ids[0])
	if !ok || st2.State != api.StateSucceeded || len(raw) == 0 {
		t.Fatalf("Result after eviction: ok=%v st=%+v raw=%q", ok, st2, raw)
	}
	var res api.SegmentResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
}

// TestCancelDuringPretrainKeepsPartialTrainStats: a segment job
// cancelled in its train stage still records the optimizer steps taken.
func TestCancelDuringPretrainKeepsPartialTrainStats(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	st, err := r.Submit(&api.JobRequest{
		Kind: api.KindSegment,
		Segment: &api.SegmentSpec{
			Source:     api.VolumeSource{Synth: &api.SynthSpec{NLon: 24, NLat: 16, NLev: 3, Steps: 6, Seed: 2}},
			Threshold:  120,
			TrainSteps: 100000, // hours of training; cancelled almost immediately
		},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, func(s api.JobStatus) bool { return s.Stage == "train" && s.Done > 0 })
	r.Cancel(st.ID)
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateCancelled {
		t.Fatalf("state = %s", final.State)
	}
	raw, _, _ := r.Result(st.ID)
	var res api.SegmentResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("missing partial result: %v (raw %q)", err, raw)
	}
	if res.TrainSteps == 0 || res.TrainSteps >= 100000 {
		t.Fatalf("partial train steps = %d", res.TrainSteps)
	}
}

// TestStatusPollAllocFree pins the satellite requirement: the in-process
// status-poll path performs zero allocations.
func TestStatusPollAllocFree(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	st, err := r.Submit(tinySegmentRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	var sink api.JobStatus
	allocs := testing.AllocsPerRun(1000, func() {
		sink, _ = r.Status(st.ID)
	})
	if allocs != 0 {
		t.Fatalf("Status allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}

func TestWorkflowJobFailurePropagates(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	st, err := r.Submit(&api.JobRequest{
		Kind: api.KindWorkflow,
		Workflow: &api.WorkflowSpec{
			Name: "failing",
			Steps: []api.WorkflowStep{
				{Name: "boom", DurationMS: 10, Fail: "disk melted"},
				{Name: "after", DependsOn: []string{"boom"}, DurationMS: 10},
			},
		},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateFailed || !strings.Contains(final.Error, "disk melted") {
		t.Fatalf("status = %+v", final)
	}
	raw, _, _ := r.Result(st.ID)
	var res api.WorkflowResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Steps[1].Status != "Skipped" {
		t.Fatalf("result = %+v", res)
	}
}

// TestCancelledSegmentStopsPromptly times the stop: cancelling a large
// flood must terminate orders of magnitude faster than letting it finish,
// proving the handler really threads the job context into the kernel.
func TestCancelledSegmentStopsPromptly(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	st, err := r.Submit(bigSegmentRequest(), "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, func(s api.JobStatus) bool { return s.State == api.StateRunning })
	r.Cancel(st.ID)
	start := time.Now()
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateCancelled {
		t.Fatalf("state = %s", final.State)
	}
	// "Promptly": a cancelled big job must terminate orders of magnitude
	// faster than the full multi-second flood.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
