package service

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"chaseci/internal/api"
	"chaseci/internal/dataset"
	"chaseci/internal/ffn"
)

// pipelineRequest builds a pipeline job over a deterministic synthetic
// scene sized so every slab floods a few hundred FOVs.
func pipelineRequest(slabSteps int, sequential bool) *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindPipeline,
		Name: "stream",
		Pipeline: &api.PipelineSpec{
			Synth:      api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 8, Seed: 11},
			SlabSteps:  slabSteps,
			Threshold:  120,
			Net:        &api.NetConfig{FOV: [3]int{3, 9, 9}, Features: 4, MoveProb: 0.6},
			SeedStride: [3]int{1, 4, 4},
			MinVoxels:  2,
			Sequential: sequential,
		},
	}
}

// runToResult submits req and returns the decoded pipeline result.
func runToResult(t *testing.T, r *Runner, req *api.JobRequest) api.PipelineResult {
	t.Helper()
	st, err := r.Submit(req, "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateSucceeded {
		t.Fatalf("pipeline state = %s (%s)", final.State, final.Error)
	}
	raw, _, _ := r.Result(st.ID)
	var res api.PipelineResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPipelineMatchesSequentialJobs requires a single-slab pipeline job to
// reproduce exactly what running the three stages as separate jobs yields:
// the IVT summary of an ivt job, the flood statistics of a segment job, and
// the object statistics of a label job over the segment job's mask.
func TestPipelineMatchesSequentialJobs(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 2)
	pres := runToResult(t, r, pipelineRequest(0, false))
	if pres.Slabs != 1 || pres.SlabsDone != 1 || pres.Steps != 8 {
		t.Fatalf("unexpected slab accounting: %+v", pres)
	}
	if pres.SegSteps == 0 || pres.MaskVoxels == 0 || pres.Objects == 0 {
		t.Fatalf("degenerate pipeline scene: %+v", pres)
	}

	synth := api.SynthSpec{NLon: 36, NLat: 24, NLev: 4, Steps: 8, Seed: 11}

	// Stage 1 reference: the ivt job.
	st, err := r.Submit(&api.JobRequest{Kind: api.KindIVT, IVT: &api.IVTSpec{Synth: synth}}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ := r.Result(st.ID)
	var ivtRes api.IVTResult
	if err := json.Unmarshal(raw, &ivtRes); err != nil {
		t.Fatal(err)
	}
	if pres.IVTMax != ivtRes.Max {
		t.Fatalf("pipeline IVTMax %v != ivt job Max %v", pres.IVTMax, ivtRes.Max)
	}
	if diff := math.Abs(pres.IVTMean - ivtRes.Mean); diff > 1e-9*ivtRes.Mean {
		t.Fatalf("pipeline IVTMean %v != ivt job Mean %v", pres.IVTMean, ivtRes.Mean)
	}

	// Stage 2 reference: the segment job with identical net and seeding.
	st, err = r.Submit(&api.JobRequest{Kind: api.KindSegment, Segment: &api.SegmentSpec{
		Source:     api.VolumeSource{Synth: &synth},
		Threshold:  120,
		Net:        &api.NetConfig{FOV: [3]int{3, 9, 9}, Features: 4, MoveProb: 0.6},
		SeedStride: [3]int{1, 4, 4},
		ReturnMask: true,
	}}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ = r.Result(st.ID)
	var segRes api.SegmentResult
	if err := json.Unmarshal(raw, &segRes); err != nil {
		t.Fatal(err)
	}
	if pres.SegSteps != segRes.Steps || pres.SegMoves != segRes.Moves ||
		pres.SeedsUsed != segRes.SeedsUsed || pres.MaskVoxels != segRes.MaskVoxels ||
		pres.VoxelsTotal != segRes.VoxelsTotal {
		t.Fatalf("pipeline segment stats %+v diverge from segment job %+v", pres, segRes)
	}

	// Stage 3 reference: the label job over the segment job's mask
	// (unpacked from the 1-bit inline encoding).
	segMask, err := dataset.UnpackBits(segRes.MaskBits, segRes.D*segRes.H*segRes.W)
	if err != nil {
		t.Fatal(err)
	}
	st, err = r.Submit(&api.JobRequest{Kind: api.KindLabel, Label: &api.LabelSpec{
		Source:    api.VolumeSource{D: segRes.D, H: segRes.H, W: segRes.W, Data: segMask},
		Threshold: 0.5,
		MinVoxels: 2,
	}}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, terminal)
	raw, _, _ = r.Result(st.ID)
	var labRes api.LabelResult
	if err := json.Unmarshal(raw, &labRes); err != nil {
		t.Fatal(err)
	}
	if pres.Objects != labRes.Objects || pres.ObjectVoxels != labRes.TotalVoxels ||
		pres.MaxDuration != labRes.MaxDuration {
		t.Fatalf("pipeline label stats %+v diverge from label job %+v", pres, labRes)
	}
}

// TestPipelineOverlappedMatchesSequentialMode requires the overlapped
// multi-slab pipeline to produce the exact result of the sequential
// baseline mode, per slab and in aggregate.
func TestPipelineOverlappedMatchesSequentialMode(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 2)
	over := runToResult(t, r, pipelineRequest(3, false))
	seq := runToResult(t, r, pipelineRequest(3, true))
	if over.Slabs != 3 || over.SlabsDone != 3 {
		t.Fatalf("slab accounting: %+v", over)
	}
	over.Sequential = false
	seq.Sequential = false
	if !reflect.DeepEqual(over, seq) {
		t.Fatalf("overlapped result diverges from sequential:\n%+v\n%+v", over, seq)
	}
}

// TestPipelineProgressReachesTotal checks the per-stage progress plumbing:
// a finished pipeline reports done == total == 3*slabs and a stage string
// carrying every stage's count.
func TestPipelineProgressReachesTotal(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 1)
	st, err := r.Submit(pipelineRequest(3, false), "")
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateSucceeded {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if final.Total != 9 || final.Done != 9 {
		t.Fatalf("progress %d/%d, want 9/9", final.Done, final.Total)
	}
	for _, stage := range []string{"ivt 3/3", "segment 3/3", "label 3/3"} {
		if !strings.Contains(final.Stage, stage) {
			t.Fatalf("stage %q missing %q", final.Stage, stage)
		}
	}
}

// TestPipelineCancelMidStream cancels a long pipeline mid-flight and
// expects a cancelled job with a partial per-slab result.
func TestPipelineCancelMidStream(t *testing.T) {
	r, _ := newTestRunner(t, DefaultRegistry(), 2)
	req := &api.JobRequest{
		Kind: api.KindPipeline,
		Pipeline: &api.PipelineSpec{
			Synth:      api.SynthSpec{NLon: 48, NLat: 32, NLev: 4, Steps: 30, Seed: 7},
			SlabSteps:  3,
			Threshold:  1, // nearly every voxel seeds: plenty of work
			Net:        &api.NetConfig{FOV: [3]int{3, 9, 9}, Features: 4, MoveProb: 0.55},
			SeedStride: [3]int{1, 3, 3},
		},
	}
	st, err := r.Submit(req, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, st.ID, func(s api.JobStatus) bool { return s.Done > 0 || s.State.Terminal() })
	if !r.Cancel(st.ID) {
		t.Fatal("cancel refused")
	}
	final := waitState(t, r, st.ID, terminal)
	if final.State != api.StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	raw, _, _ := r.Result(st.ID)
	var res api.PipelineResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.SlabsDone >= res.Slabs {
		t.Fatalf("cancelled pipeline completed all %d slabs", res.Slabs)
	}
}

// TestAPIScratchAssumptionsMatchKernelDefaults pins the kernel defaults the
// pure-schema api package assumes in NetConfig.validate's batched-scratch
// budget (api must not import ffn, so the agreement is enforced here, where
// both packages are visible). If this fails, update the literals in
// api.NetConfig.validate alongside the kernel change.
func TestAPIScratchAssumptionsMatchKernelDefaults(t *testing.T) {
	cfg := ffn.DefaultConfig()
	if cfg.FOV != [3]int{5, 9, 9} || cfg.Features != 8 || ffn.DefaultFloodBatch != 8 {
		t.Fatalf("ffn defaults (FOV %v, Features %d, FloodBatch %d) drifted from the values api.NetConfig.validate assumes",
			cfg.FOV, cfg.Features, ffn.DefaultFloodBatch)
	}
	if ffn.MaxFloodBatch != 256 {
		t.Fatalf("ffn.MaxFloodBatch = %d, but api caps flood_batch at 256", ffn.MaxFloodBatch)
	}
	// And the budget itself must reject the all-extremes corner.
	bad := &api.JobRequest{Kind: api.KindSegment, Segment: &api.SegmentSpec{
		Source: api.VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 8)},
		Seeds:  [][3]int{{1, 1, 1}}, MaxSteps: 1,
		Net: &api.NetConfig{FOV: [3]int{65, 65, 65}, Features: 256, FloodBatch: 256},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("all-extremes net config passed validation")
	}
}

// benchPipelineRequest sizes a pipeline so the three stages have comparable
// non-trivial cost, the regime where overlapping pays.
func benchPipelineRequest(sequential bool) *api.JobRequest {
	return &api.JobRequest{
		Kind: api.KindPipeline,
		Pipeline: &api.PipelineSpec{
			Synth:      api.SynthSpec{NLon: 72, NLat: 48, NLev: 24, Steps: 12, Seed: 11},
			SlabSteps:  3,
			Threshold:  120,
			Net:        &api.NetConfig{FOV: [3]int{3, 9, 9}, Features: 6, MoveProb: 0.6},
			SeedStride: [3]int{1, 4, 4},
			Sequential: sequential,
		},
	}
}

// BenchmarkPipelineOverlap measures the streamed IVT -> segment -> label
// pipeline against its sequential baseline on the same multi-timestep
// volume (identical results; the overlapped mode hides the IVT and label
// stages behind segmentation on multi-core).
func BenchmarkPipelineOverlap(b *testing.B) {
	for _, mode := range []struct {
		name string
		seq  bool
	}{{"overlapped", false}, {"sequential", true}} {
		b.Run(mode.name, func(b *testing.B) {
			req := benchPipelineRequest(mode.seq)
			if err := req.Validate(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				jc := &JobContext{ctx: context.Background(), job: &job{req: req}}
				res, err := PipelineHandler(jc)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					pr := res.(api.PipelineResult)
					b.ReportMetric(float64(pr.SegSteps), "seg-steps")
					b.ReportMetric(float64(pr.Objects), "objects")
				}
			}
		})
	}
}

var _ = time.Now // keep time imported for waitState timeouts
