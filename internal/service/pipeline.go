package service

import (
	"context"
	"fmt"
	"sync"

	"chaseci/internal/api"
	"chaseci/internal/connect"
	"chaseci/internal/ffn"
	"chaseci/internal/merra"
	"chaseci/internal/workflow"
)

// The pipeline job: a multi-timestep synthetic volume is cut into time
// slabs, and every slab flows through the three analysis stages the case
// study otherwise runs as separate jobs — IVT derivation, FFN flood-fill
// segmentation, CONNECT labelling — on a workflow.RunStream. While slab t
// is being segmented, slab t+1's IVT is derived and slab t-1's mask is
// labelled, so the two cheaper stages hide behind the expensive one on
// multi-core. Each slab is an independent analysis unit (its own
// normalization, seeding, flood, and labelling), so the aggregate result is
// identical in overlapped and sequential mode at every buffer size.

// pipeSlab is the item flowing through the pipeline stages.
type pipeSlab struct {
	start, steps int         // generator step range
	raw          *ffn.Volume // IVT output; normalized in place by segment
	seeds        [][3]int    // grid seeds (from the raw field)
	mask         *ffn.Volume // segment output
	res          api.PipelineSlabResult
}

// pipeProgress aggregates per-stage completion counts into the single
// JobStatus progress channel: done is stage-completions across all stages,
// and the stage string carries the per-stage breakdown the NDJSON stream
// shows live. The count-increment and Progress store happen under one
// mutex so concurrent stage goroutines cannot publish a stale (smaller)
// snapshot after a newer one — the stream stays monotonic and consistent.
type pipeProgress struct {
	jc    *JobContext
	slabs int

	mu   sync.Mutex
	done [3]int64
}

func (p *pipeProgress) advance(stage, _ int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done[stage]++
	i, s, l := p.done[0], p.done[1], p.done[2]
	p.jc.Progress(i+s+l, int64(3*p.slabs),
		fmt.Sprintf("ivt %d/%d · segment %d/%d · label %d/%d", i, p.slabs, s, p.slabs, l, p.slabs))
}

// PipelineHandler executes a pipeline job. A cancelled run reports the
// slabs that completed all three stages alongside ctx.Err().
func PipelineHandler(jc *JobContext) (any, error) {
	spec := jc.Request().Pipeline
	sy := spec.Synth
	slabSteps := spec.SlabSteps
	if slabSteps <= 0 || slabSteps > sy.Steps {
		slabSteps = sy.Steps
	}
	slabs := (sy.Steps + slabSteps - 1) / slabSteps

	cfg := netConfig(spec.Net)
	net, err := ffn.NewNetwork(cfg, spec.NetSeed)
	if err != nil {
		return nil, err
	}
	stride := spec.SeedStride
	if stride == [3]int{} {
		stride = cfg.FOV
	}
	conn := connect.Conn26
	if spec.Connectivity == 6 {
		conn = connect.Conn6
	}
	g := merra.Grid{NLon: sy.NLon, NLat: sy.NLat, NLev: sy.NLev}
	gen := merra.NewGenerator(g, sy.Seed)
	levels := merra.PressureLevels(g.NLev)
	hw := g.NLon * g.NLat

	prog := &pipeProgress{jc: jc, slabs: slabs}
	prog.jc.Progress(0, int64(3*slabs), "pipeline")

	stages := []workflow.StreamStage{
		{Name: "ivt", Run: func(ctx context.Context, i int, _ any) (any, error) {
			start := sy.Start + i*slabSteps
			steps := slabSteps
			if rem := sy.Steps - i*slabSteps; steps > rem {
				steps = rem
			}
			sl := &pipeSlab{start: start, steps: steps}
			sl.res = api.PipelineSlabResult{Slab: i, StartStep: start, Steps: steps}
			vol, err := merra.IVTVolumeCtx(ctx, gen, levels, start, steps, nil)
			if err != nil {
				return nil, err
			}
			sl.raw = &ffn.Volume{D: steps, H: g.NLat, W: g.NLon, Data: vol.Data}
			var sum float64
			for _, v := range vol.Data {
				sum += float64(v)
				if float64(v) > sl.res.IVTMax {
					sl.res.IVTMax = float64(v)
				}
			}
			sl.res.IVTMean = sum / float64(steps*hw)
			return sl, nil
		}},
		{Name: "segment", Run: func(ctx context.Context, _ int, item any) (any, error) {
			sl := item.(*pipeSlab)
			// Seeds come from the raw field, before normalization — the
			// same order of operations as SegmentHandler.
			sl.seeds = ffn.GridSeeds(sl.raw, cfg.FOV, stride, spec.Threshold)
			image := sl.raw.Normalize()
			mask, stats, err := net.SegmentCtx(ctx, image, sl.seeds, 0, nil)
			if err != nil {
				return nil, err
			}
			sl.mask = mask
			sl.raw = nil // the slab's image is dead weight past this stage
			sl.res.SegSteps = stats.Steps
			sl.res.SegMoves = stats.Moves
			sl.res.SeedsUsed = stats.SeedsUsed
			sl.res.MaskVoxels = stats.MaskVoxels
			return sl, nil
		}},
		{Name: "label", Run: func(ctx context.Context, _ int, item any) (any, error) {
			sl := item.(*pipeSlab)
			result, err := connect.LabelCtx(ctx, connect.FromMask(sl.mask.D, sl.mask.H, sl.mask.W, sl.mask.Data), conn, spec.MinVoxels, nil)
			if err != nil {
				return nil, err
			}
			stats := connect.Summarize(result)
			sl.mask = nil
			sl.res.Objects = stats.Objects
			sl.res.ObjectVoxels = stats.TotalVoxels
			sl.res.MaxDuration = stats.MaxDuration
			return sl, nil
		}},
	}

	results, streamErr := workflow.RunStream(jc.Ctx(), stages, slabs, workflow.StreamOptions{
		Sequential: spec.Sequential,
		Buffer:     spec.Buffer,
		OnAdvance:  prog.advance,
	})

	res := api.PipelineResult{Slabs: slabs, Sequential: spec.Sequential}
	for _, item := range results {
		if item == nil {
			continue
		}
		sl := item.(*pipeSlab)
		res.SlabsDone++
		res.Steps += sl.res.Steps
		res.IVTMean += sl.res.IVTMean * float64(sl.res.Steps)
		if sl.res.IVTMax > res.IVTMax {
			res.IVTMax = sl.res.IVTMax
		}
		res.SegSteps += sl.res.SegSteps
		res.SegMoves += sl.res.SegMoves
		res.SeedsUsed += sl.res.SeedsUsed
		res.MaskVoxels += sl.res.MaskVoxels
		res.VoxelsTotal += sl.res.Steps * hw
		res.Objects += sl.res.Objects
		res.ObjectVoxels += sl.res.ObjectVoxels
		if sl.res.MaxDuration > res.MaxDuration {
			res.MaxDuration = sl.res.MaxDuration
		}
		res.PerSlab = append(res.PerSlab, sl.res)
	}
	if res.Steps > 0 {
		res.IVTMean /= float64(res.Steps)
	}
	return res, streamErr
}
